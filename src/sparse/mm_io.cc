#include "sparse/mm_io.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "simcore/log.hh"

namespace via
{

namespace
{

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return char(std::tolower(c));
    });
    return s;
}

} // namespace

Csr
readMatrixMarketStream(std::istream &in, const std::string &what)
{
    std::string line;
    if (!std::getline(in, line))
        via_fatal(what, ": empty Matrix Market input");

    std::istringstream header(line);
    std::string banner, object, format, field, symmetry;
    header >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket")
        via_fatal(what, ": missing %%MatrixMarket banner");
    object = lower(object);
    format = lower(format);
    field = lower(field);
    symmetry = lower(symmetry);
    if (object != "matrix" || format != "coordinate")
        via_fatal(what, ": only coordinate matrices are supported");
    if (field != "real" && field != "integer" && field != "pattern")
        via_fatal(what, ": unsupported field '", field, "'");
    if (symmetry != "general" && symmetry != "symmetric")
        via_fatal(what, ": unsupported symmetry '", symmetry, "'");

    // Skip comments.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    // Size-line counters are explicitly 64-bit: `long` is 32 bits
    // on LLP64 platforms, where a billion-edge graph's entry count
    // would silently wrap negative and fail the check below.
    std::istringstream sizes(line);
    std::int64_t rows = 0, cols = 0, entries = 0;
    sizes >> rows >> cols >> entries;
    if (rows <= 0 || cols <= 0 || entries < 0)
        via_fatal(what, ": bad size line '", line, "'");
    if (rows > std::numeric_limits<Index>::max() ||
        cols > std::numeric_limits<Index>::max())
        via_fatal(what, ": matrix dimensions ", rows, "x", cols,
                  " exceed the 32-bit simulated index type");

    Coo coo(static_cast<Index>(rows), static_cast<Index>(cols));
    for (std::int64_t e = 0; e < entries; ++e) {
        if (!std::getline(in, line))
            via_fatal(what, ": truncated after ", e, " of ",
                      entries, " entries");
        if (line.empty() || line[0] == '%') {
            --e;
            continue;
        }
        std::istringstream ls(line);
        std::int64_t r = 0, c = 0;
        double v = 1.0;
        ls >> r >> c;
        if (field != "pattern")
            ls >> v;
        if (ls.fail() || r < 1 || r > rows || c < 1 || c > cols)
            via_fatal(what, ": bad entry line '", line, "'");
        coo.add(Index(r - 1), Index(c - 1), Value(v));
        if (symmetry == "symmetric" && r != c)
            coo.add(Index(c - 1), Index(r - 1), Value(v));
    }
    return Csr::fromCoo(std::move(coo));
}

Csr
readMatrixMarket(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        via_fatal("cannot open '", path, "'");
    return readMatrixMarketStream(in, path);
}

void
writeMatrixMarket(const Csr &matrix, std::ostream &out)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by the VIA reproduction library\n";
    out << matrix.rows() << ' ' << matrix.cols() << ' '
        << matrix.nnz() << '\n';
    const auto &row_ptr = matrix.rowPtr();
    const auto &col_idx = matrix.colIdx();
    const auto &values = matrix.values();
    for (Index r = 0; r < matrix.rows(); ++r)
        for (Index k = row_ptr[std::size_t(r)];
             k < row_ptr[std::size_t(r) + 1]; ++k)
            out << (r + 1) << ' ' << (col_idx[std::size_t(k)] + 1)
                << ' ' << values[std::size_t(k)] << '\n';
}

void
writeMatrixMarket(const Csr &matrix, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        via_fatal("cannot open '", path, "' for writing");
    writeMatrixMarket(matrix, out);
}

} // namespace via
