#include "sparse/mm_io.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "simcore/log.hh"

namespace via
{

namespace
{

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return char(std::tolower(c));
    });
    return s;
}

/** The parsed banner + size line of a coordinate .mtx stream. */
struct MmHeader
{
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t entries = 0;
    bool pattern = false;
    bool symmetric = false;
};

/**
 * Parse banner, comments, and size line, leaving @p in positioned
 * at the first entry line. Shared by the one-pass and streaming
 * readers so both accept exactly the same dialect.
 */
MmHeader
parseMmHeader(std::istream &in, const std::string &what)
{
    std::string line;
    if (!std::getline(in, line))
        via_fatal(what, ": empty Matrix Market input");

    std::istringstream header(line);
    std::string banner, object, format, field, symmetry;
    header >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket")
        via_fatal(what, ": missing %%MatrixMarket banner");
    object = lower(object);
    format = lower(format);
    field = lower(field);
    symmetry = lower(symmetry);
    if (object != "matrix" || format != "coordinate")
        via_fatal(what, ": only coordinate matrices are supported");
    if (field != "real" && field != "integer" && field != "pattern")
        via_fatal(what, ": unsupported field '", field, "'");
    if (symmetry != "general" && symmetry != "symmetric")
        via_fatal(what, ": unsupported symmetry '", symmetry, "'");

    // Skip comments.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    // Size-line counters are explicitly 64-bit: `long` is 32 bits
    // on LLP64 platforms, where a billion-edge graph's entry count
    // would silently wrap negative and fail the check below.
    std::istringstream sizes(line);
    MmHeader h;
    sizes >> h.rows >> h.cols >> h.entries;
    if (h.rows <= 0 || h.cols <= 0 || h.entries < 0)
        via_fatal(what, ": bad size line '", line, "'");
    if (h.rows > std::numeric_limits<Index>::max() ||
        h.cols > std::numeric_limits<Index>::max())
        via_fatal(what, ": matrix dimensions ", h.rows, "x", h.cols,
                  " exceed the 32-bit simulated index type");
    h.pattern = field == "pattern";
    h.symmetric = symmetry == "symmetric";
    return h;
}

/** Parse one entry line; false for comment/blank lines. */
bool
parseEntry(const std::string &line, const MmHeader &h,
           const std::string &what, std::int64_t &r, std::int64_t &c,
           double &v)
{
    if (line.empty() || line[0] == '%')
        return false;
    std::istringstream ls(line);
    r = 0;
    c = 0;
    v = 1.0;
    ls >> r >> c;
    if (!h.pattern)
        ls >> v;
    if (ls.fail() || r < 1 || r > h.rows || c < 1 || c > h.cols)
        via_fatal(what, ": bad entry line '", line, "'");
    return true;
}

} // namespace

Csr
readMatrixMarketStream(std::istream &in, const std::string &what)
{
    const MmHeader h = parseMmHeader(in, what);
    std::string line;
    Coo coo(static_cast<Index>(h.rows), static_cast<Index>(h.cols));
    for (std::int64_t e = 0; e < h.entries; ++e) {
        if (!std::getline(in, line))
            via_fatal(what, ": truncated after ", e, " of ",
                      h.entries, " entries");
        std::int64_t r = 0, c = 0;
        double v = 1.0;
        if (!parseEntry(line, h, what, r, c, v)) {
            --e;
            continue;
        }
        coo.add(Index(r - 1), Index(c - 1), Value(v));
        if (h.symmetric && r != c)
            coo.add(Index(c - 1), Index(r - 1), Value(v));
    }
    return Csr::fromCoo(std::move(coo));
}

Csr
readMatrixMarket(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        via_fatal("cannot open '", path, "'");
    return readMatrixMarketStream(in, path);
}

Csr
readMatrixMarketStreaming(const std::string &path)
{
    // Pass 1: count entries per row (symmetric mirrors included).
    std::ifstream in(path);
    if (!in)
        via_fatal("cannot open '", path, "'");
    const MmHeader h = parseMmHeader(in, path);
    const auto n_rows = std::size_t(h.rows);
    std::vector<Index> row_ptr(n_rows + 1, 0);
    std::string line;
    for (std::int64_t e = 0; e < h.entries; ++e) {
        if (!std::getline(in, line))
            via_fatal(path, ": truncated after ", e, " of ",
                      h.entries, " entries");
        std::int64_t r = 0, c = 0;
        double v = 1.0;
        if (!parseEntry(line, h, path, r, c, v)) {
            --e;
            continue;
        }
        ++row_ptr[std::size_t(r - 1) + 1];
        if (h.symmetric && r != c)
            ++row_ptr[std::size_t(c - 1) + 1];
    }
    for (std::size_t r = 0; r < n_rows; ++r)
        row_ptr[r + 1] += row_ptr[r];
    const auto total = std::size_t(row_ptr[n_rows]);

    // Pass 2: place entries into their rows' segments.
    std::ifstream in2(path);
    if (!in2)
        via_fatal("cannot open '", path, "'");
    const MmHeader h2 = parseMmHeader(in2, path);
    if (h2.rows != h.rows || h2.entries != h.entries)
        via_fatal(path, ": file changed between passes");
    std::vector<Index> col_idx(total);
    std::vector<Value> values(total);
    std::vector<Index> next(row_ptr.begin(), row_ptr.end() - 1);
    auto place = [&](std::int64_t r, std::int64_t c, double v) {
        const auto slot = std::size_t(next[std::size_t(r - 1)]++);
        col_idx[slot] = Index(c - 1);
        values[slot] = Value(v);
    };
    for (std::int64_t e = 0; e < h.entries; ++e) {
        if (!std::getline(in2, line))
            via_fatal(path, ": truncated after ", e, " of ",
                      h.entries, " entries");
        std::int64_t r = 0, c = 0;
        double v = 1.0;
        if (!parseEntry(line, h, path, r, c, v)) {
            --e;
            continue;
        }
        place(r, c, v);
        if (h.symmetric && r != c)
            place(c, r, v);
    }

    // Per-row sort + duplicate merge (duplicates sum in file order,
    // exact zeros kept — matching Coo::canonicalize semantics).
    std::vector<std::pair<Index, Value>> tmp;
    std::size_t w = 0;
    std::vector<Index> out_ptr(n_rows + 1, 0);
    for (std::size_t r = 0; r < n_rows; ++r) {
        const auto lo = std::size_t(row_ptr[r]);
        const auto hi = std::size_t(row_ptr[r + 1]);
        tmp.clear();
        for (std::size_t i = lo; i < hi; ++i)
            tmp.emplace_back(col_idx[i], values[i]);
        std::stable_sort(tmp.begin(), tmp.end(),
                         [](const auto &x, const auto &y) {
                             return x.first < y.first;
                         });
        for (std::size_t i = 0; i < tmp.size();) {
            Index col = tmp[i].first;
            Value sum = tmp[i].second;
            std::size_t j = i + 1;
            for (; j < tmp.size() && tmp[j].first == col; ++j)
                sum += tmp[j].second;
            col_idx[w] = col;
            values[w] = sum;
            ++w;
            i = j;
        }
        out_ptr[r + 1] = Index(w);
    }
    col_idx.resize(w);
    values.resize(w);
    return Csr::fromParts(Index(h.rows), Index(h.cols),
                          std::move(out_ptr), std::move(col_idx),
                          std::move(values));
}

void
writeMatrixMarket(const Csr &matrix, std::ostream &out)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by the VIA reproduction library\n";
    out << matrix.rows() << ' ' << matrix.cols() << ' '
        << matrix.nnz() << '\n';
    const auto &row_ptr = matrix.rowPtr();
    const auto &col_idx = matrix.colIdx();
    const auto &values = matrix.values();
    for (Index r = 0; r < matrix.rows(); ++r)
        for (Index k = row_ptr[std::size_t(r)];
             k < row_ptr[std::size_t(r) + 1]; ++k)
            out << (r + 1) << ' ' << (col_idx[std::size_t(k)] + 1)
                << ' ' << values[std::size_t(k)] << '\n';
}

void
writeMatrixMarket(const Csr &matrix, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        via_fatal("cannot open '", path, "' for writing");
    writeMatrixMarket(matrix, out);
}

MatrixMarketWriter::MatrixMarketWriter(const std::string &path,
                                       Index rows, Index cols,
                                       std::size_t nnz)
    : _out(path), _path(path), _declared(nnz)
{
    if (!_out)
        via_fatal("cannot open '", path, "' for writing");
    _out << "%%MatrixMarket matrix coordinate real general\n";
    _out << "% written by the VIA reproduction library\n";
    _out << rows << ' ' << cols << ' ' << nnz << '\n';
}

MatrixMarketWriter::~MatrixMarketWriter()
{
    // No count validation here: a fatal() in a destructor would
    // mask the error that is unwinding. Callers close() to verify.
    if (!_closed)
        _out.flush();
}

void
MatrixMarketWriter::add(Index r, Index c, Value v)
{
    if (_written >= _declared)
        via_fatal(_path, ": more entries than the declared ",
                  _declared);
    _out << (r + 1) << ' ' << (c + 1) << ' ' << v << '\n';
    ++_written;
}

void
MatrixMarketWriter::close()
{
    if (_closed)
        return;
    if (_written != _declared)
        via_fatal(_path, ": wrote ", _written, " of ", _declared,
                  " declared entries");
    _out.flush();
    if (!_out)
        via_fatal(_path, ": write failed");
    _out.close();
    _closed = true;
}

} // namespace via
