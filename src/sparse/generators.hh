/**
 * @file
 * Synthetic sparse-matrix generators.
 *
 * These stand in for the University of Florida collection (see
 * DESIGN.md): each family mirrors a structural class that dominates
 * real applications — banded FEM/stencil operators, block-clustered
 * engineering matrices, power-law graphs, and unstructured random
 * matrices. All generators are deterministic given the Rng.
 */

#ifndef VIA_SPARSE_GENERATORS_HH
#define VIA_SPARSE_GENERATORS_HH

#include "simcore/rng.hh"
#include "sparse/coo.hh"
#include "sparse/csr.hh"

namespace via
{

/**
 * Band matrix: non-zeros only within `bandwidth` of the diagonal,
 * present with probability `fill`. Models FEM/stencil operators.
 */
Csr genBanded(Index n, Index bandwidth, double fill, Rng &rng);

/** Uniformly random: each position non-zero with prob `density`. */
Csr genUniform(Index rows, Index cols, double density, Rng &rng);

/**
 * RMAT-style power-law graph adjacency matrix (a=0.57, b=c=0.19),
 * the structure of social/web graphs. Duplicate edges merge.
 */
Csr genRmat(Index n, std::size_t nnz_target, Rng &rng);

/**
 * Block-clustered: a grid of `blockSide` blocks where each block is
 * dense-ish (`innerFill`) with probability `blockFill`, else empty.
 * Models multiphysics/circuit matrices with natural sub-blocks.
 */
Csr genBlocked(Index n, Index block_side, double block_fill,
               double inner_fill, Rng &rng);

/**
 * Diagonally dominant with a few random off-diagonals per row
 * (Poisson-like mean `off_diag`). Models iterative-solver inputs.
 */
Csr genDiagHeavy(Index n, double off_diag, Rng &rng);

/** Assign a uniform random value in [-1,1) to every element. */
void randomizeValues(Coo &coo, Rng &rng);

} // namespace via

#endif // VIA_SPARSE_GENERATORS_HH
