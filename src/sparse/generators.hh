/**
 * @file
 * Synthetic sparse-matrix generators.
 *
 * These stand in for the University of Florida collection (see
 * DESIGN.md): each family mirrors a structural class that dominates
 * real applications — banded FEM/stencil operators, block-clustered
 * engineering matrices, power-law graphs, and unstructured random
 * matrices. All generators are deterministic given the Rng.
 */

#ifndef VIA_SPARSE_GENERATORS_HH
#define VIA_SPARSE_GENERATORS_HH

#include "simcore/rng.hh"
#include "sparse/coo.hh"
#include "sparse/csr.hh"

namespace via
{

/**
 * Band matrix: non-zeros only within `bandwidth` of the diagonal,
 * present with probability `fill`. Models FEM/stencil operators.
 */
Csr genBanded(Index n, Index bandwidth, double fill, Rng &rng);

/** Uniformly random: each position non-zero with prob `density`. */
Csr genUniform(Index rows, Index cols, double density, Rng &rng);

/**
 * RMAT-style power-law graph adjacency matrix (a=0.57, b=c=0.19),
 * the structure of social/web graphs. Duplicate edges merge.
 */
Csr genRmat(Index n, std::size_t nnz_target, Rng &rng);

/**
 * Block-clustered: a grid of `blockSide` blocks where each block is
 * dense-ish (`innerFill`) with probability `blockFill`, else empty.
 * Models multiphysics/circuit matrices with natural sub-blocks.
 */
Csr genBlocked(Index n, Index block_side, double block_fill,
               double inner_fill, Rng &rng);

/**
 * Diagonally dominant with a few random off-diagonals per row
 * (Poisson-like mean `off_diag`). Models iterative-solver inputs.
 */
Csr genDiagHeavy(Index n, double off_diag, Rng &rng);

/** Assign a uniform random value in [-1,1) to every element. */
void randomizeValues(Coo &coo, Rng &rng);

// --- streaming variants (million-row inputs) ---------------------
//
// The Coo-based generators above hold every triplet plus a global
// canonicalize sort — fine at paper scale (<= 20k rows), wasteful
// at 10^6+. These emit CSR storage directly with no intermediate
// triplet set and no dense structures.

/**
 * genBanded emitting CSR directly. The row-major in-band walk
 * already produces sorted, duplicate-free entries, and the random
 * stream is consumed in exactly genBanded's order, so the result is
 * bit-identical to genBanded for the same Rng state.
 */
Csr genBandedCsr(Index n, Index bandwidth, double fill, Rng &rng);

/**
 * genRmat emitting CSR directly: two passes over a replayed random
 * stream (pass one counts per-row edges on a copy of @p rng, pass
 * two places them), then per-row sort + duplicate merge. @p rng
 * ends in the same state as after genRmat, the structure (row_ptr /
 * col_idx) matches genRmat exactly, and values match except that
 * 3+-way duplicate edges may sum in a different association order
 * than Coo::canonicalize's global unstable sort (allClose, not
 * bit-equal). Peak memory is O(n + nnz_target), with no global
 * triplet sort.
 */
Csr genRmatCsr(Index n, std::size_t nnz_target, Rng &rng);

} // namespace via

#endif // VIA_SPARSE_GENERATORS_HH
