/**
 * @file
 * SPC5-like masked row-block format (Bramas & Kus), the second SpMV
 * baseline of Figure 10.
 *
 * Each block covers one row and a window of VL consecutive columns;
 * a bitmask says which columns inside the window are present and the
 * values are packed without zero padding. The vectorized kernel
 * loads x[firstCol .. firstCol+VL) unit-stride, expands the packed
 * values by the mask, and FMAs — no gather on x.
 */

#ifndef VIA_SPARSE_SPC5_HH
#define VIA_SPARSE_SPC5_HH

#include <cstdint>
#include <vector>

#include "sparse/csr.hh"
#include "sparse/sparse_types.hh"

namespace via
{

/** beta(1, VL) SPC5-style matrix. */
class Spc5
{
  public:
    Spc5() = default;

    /**
     * @param window block width in columns (the vector length)
     */
    static Spc5 fromCsr(const Csr &csr, Index window);

    Index rows() const { return _rows; }
    Index cols() const { return _cols; }
    Index window() const { return _window; }
    std::size_t nnz() const { return _values.size(); }
    std::size_t numBlocks() const { return _blockRow.size(); }

    /** Row of each block (blocks sorted by row, then column). */
    const std::vector<Index> &blockRow() const { return _blockRow; }
    /** First column of each block's window. */
    const std::vector<Index> &blockCol() const { return _blockCol; }
    /** Presence mask over the window's columns. */
    const std::vector<std::uint32_t> &blockMask() const
    {
        return _blockMask;
    }
    /** Offset of each block's packed values (numBlocks+1). */
    const std::vector<Index> &blockPtr() const { return _blockPtr; }
    const std::vector<Value> &values() const { return _values; }

    /** Mean packed values per block (vector utilization proxy). */
    double meanBlockFill() const;

    /** Host-side golden multiply. */
    DenseVector multiply(const DenseVector &x) const;

    void validate() const;

  private:
    Index _rows = 0;
    Index _cols = 0;
    Index _window = 0;
    std::vector<Index> _blockRow;
    std::vector<Index> _blockCol;
    std::vector<std::uint32_t> _blockMask;
    std::vector<Index> _blockPtr;
    std::vector<Value> _values;
};

} // namespace via

#endif // VIA_SPARSE_SPC5_HH
