/**
 * @file
 * The evaluation corpus: a deterministic stand-in for the paper's
 * 1,024 University of Florida matrices (Section V-B).
 *
 * The paper selects real square matrices with <= 20k rows and 0.01%
 * to 2.6% non-zeros from 56 domains. buildCorpus() samples the same
 * structural families and density range; the default sizes are kept
 * smaller so the cycle-level simulation finishes in CI time, and the
 * count scales with the caller's budget. Real .mtx files can be
 * loaded instead via sparse/mm_io.
 */

#ifndef VIA_SPARSE_CORPUS_HH
#define VIA_SPARSE_CORPUS_HH

#include <string>
#include <vector>

#include "sparse/csr.hh"

namespace via
{

/** One corpus matrix with provenance. */
struct CorpusEntry
{
    std::string name;
    std::string family;
    Csr matrix;
};

/** Corpus knobs. */
struct CorpusSpec
{
    std::size_t count = 24;      //!< matrices to generate
    Index minRows = 256;
    Index maxRows = 2048;        //!< paper uses up to 20k
    double minDensity = 0.0001;  //!< 0.01 %
    double maxDensity = 0.026;   //!< 2.6 %
    std::uint64_t seed = 1;
};

/** Generate the corpus (deterministic for a given spec). */
std::vector<CorpusEntry> buildCorpus(const CorpusSpec &spec);

/** Load every .mtx file in a directory as corpus entries. */
std::vector<CorpusEntry> loadCorpusDir(const std::string &dir);

} // namespace via

#endif // VIA_SPARSE_CORPUS_HH
