#include "sparse/convert.hh"

#include <cmath>
#include <map>

#include "simcore/log.hh"

namespace via
{

Csr
csbToCsr(const Csb &m)
{
    return Csr::fromCoo(m.toCoo());
}

Csr
cscToCsr(const Csc &m)
{
    return Csr::fromCoo(m.toCoo());
}

bool
sameElements(const Csr &a, const Csr &b)
{
    return a == b; // CSR is canonical already
}

bool
closeElements(const Csr &a, const Csr &b, double atol)
{
    if (a.rows() != b.rows() || a.cols() != b.cols() ||
        a.rowPtr() != b.rowPtr() || a.colIdx() != b.colIdx())
        return false;
    for (std::size_t i = 0; i < a.values().size(); ++i)
        if (std::abs(double(a.values()[i]) -
                     double(b.values()[i])) > atol)
            return false;
    return true;
}

Csr
addCsr(const Csr &a, const Csr &b)
{
    via_assert(a.rows() == b.rows() && a.cols() == b.cols(),
               "SpMA shape mismatch");
    Coo out(a.rows(), a.cols());
    Coo ca = a.toCoo();
    Coo cb = b.toCoo();
    for (const Triplet &t : ca.elems())
        out.add(t.row, t.col, t.value);
    for (const Triplet &t : cb.elems())
        out.add(t.row, t.col, t.value);
    return Csr::fromCoo(std::move(out));
}

Csr
mulCsr(const Csr &a, const Csr &b)
{
    via_assert(a.cols() == b.rows(), "SpMM shape mismatch: ",
               a.cols(), " inner vs ", b.rows());
    Coo out(a.rows(), b.cols());
    const auto &apos = a.rowPtr();
    const auto &acol = a.colIdx();
    const auto &aval = a.values();
    const auto &bpos = b.rowPtr();
    const auto &bcol = b.colIdx();
    const auto &bval = b.values();

    // Row-by-row accumulation with a sorted map keeps the golden
    // kernel simple and exact in double precision.
    for (Index r = 0; r < a.rows(); ++r) {
        std::map<Index, double> acc;
        for (Index ka = apos[std::size_t(r)];
             ka < apos[std::size_t(r) + 1]; ++ka) {
            Index inner = acol[std::size_t(ka)];
            double av = aval[std::size_t(ka)];
            for (Index kb = bpos[std::size_t(inner)];
                 kb < bpos[std::size_t(inner) + 1]; ++kb) {
                acc[bcol[std::size_t(kb)]] +=
                    av * double(bval[std::size_t(kb)]);
            }
        }
        for (const auto &kv : acc)
            out.add(r, kv.first, Value(kv.second));
    }
    return Csr::fromCoo(std::move(out));
}

} // namespace via
