#include "sparse/sell_c_sigma.hh"

#include <algorithm>
#include <numeric>

#include "simcore/log.hh"

namespace via
{

SellCSigma
SellCSigma::fromCsr(const Csr &csr, Index c, Index sigma)
{
    via_assert(c > 0, "chunk height must be positive");
    via_assert(sigma > 0 && sigma % c == 0,
               "sigma (", sigma, ") must be a positive multiple of "
               "C (", c, ")");
    SellCSigma m;
    m._rows = csr.rows();
    m._cols = csr.cols();
    m._c = c;
    m._sigma = sigma;
    m._nnz = csr.nnz();

    // Sort rows by descending length inside each sigma window.
    m._rowPerm.resize(std::size_t(m._rows));
    std::iota(m._rowPerm.begin(), m._rowPerm.end(), Index(0));
    for (Index w = 0; w < m._rows; w += sigma) {
        Index hi = std::min<Index>(w + sigma, m._rows);
        std::stable_sort(m._rowPerm.begin() + w,
                         m._rowPerm.begin() + hi,
                         [&](Index a, Index b) {
                             return csr.rowNnz(a) > csr.rowNnz(b);
                         });
    }

    Index nchunks = (m._rows + c - 1) / c;
    m._chunkPtr.assign(std::size_t(nchunks) + 1, 0);
    m._chunkWidth.assign(std::size_t(nchunks), 0);

    for (Index ch = 0; ch < nchunks; ++ch) {
        Index width = 0;
        for (Index i = 0; i < c; ++i) {
            Index pos = ch * c + i;
            if (pos < m._rows)
                width = std::max(width,
                                 csr.rowNnz(m._rowPerm[
                                     std::size_t(pos)]));
        }
        m._chunkWidth[std::size_t(ch)] = width;
        m._chunkPtr[std::size_t(ch) + 1] =
            m._chunkPtr[std::size_t(ch)] + width * c;
    }

    auto total = std::size_t(m._chunkPtr.back());
    m._colIdx.assign(total, 0);
    m._values.assign(total, Value(0));

    const auto &row_ptr = csr.rowPtr();
    const auto &col_idx = csr.colIdx();
    const auto &values = csr.values();
    for (Index ch = 0; ch < nchunks; ++ch) {
        Index base = m._chunkPtr[std::size_t(ch)];
        Index width = m._chunkWidth[std::size_t(ch)];
        for (Index i = 0; i < c; ++i) {
            Index pos = ch * c + i;
            if (pos >= m._rows)
                continue;
            Index row = m._rowPerm[std::size_t(pos)];
            Index len = csr.rowNnz(row);
            for (Index j = 0; j < width; ++j) {
                // Column-major inside the chunk: lane i, column j.
                auto slot = std::size_t(base + j * c + i);
                if (j < len) {
                    auto k = std::size_t(
                        row_ptr[std::size_t(row)] + j);
                    m._colIdx[slot] = col_idx[k];
                    m._values[slot] = values[k];
                }
            }
        }
    }
    m.validate();
    return m;
}

Index
SellCSigma::numChunks() const
{
    return Index(_chunkWidth.size());
}

double
SellCSigma::fillRatio() const
{
    return _nnz ? double(_chunkPtr.back()) / double(_nnz) : 1.0;
}

DenseVector
SellCSigma::multiply(const DenseVector &x) const
{
    via_assert(Index(x.size()) == _cols, "SpMV shape mismatch");
    DenseVector y(std::size_t(_rows), Value(0));
    for (Index ch = 0; ch < numChunks(); ++ch) {
        Index base = _chunkPtr[std::size_t(ch)];
        Index width = _chunkWidth[std::size_t(ch)];
        for (Index i = 0; i < _c; ++i) {
            Index pos = ch * _c + i;
            if (pos >= _rows)
                continue;
            double acc = 0.0;
            for (Index j = 0; j < width; ++j) {
                auto slot = std::size_t(base + j * _c + i);
                acc += double(_values[slot]) *
                       double(x[std::size_t(_colIdx[slot])]);
            }
            y[std::size_t(_rowPerm[std::size_t(pos)])] = Value(acc);
        }
    }
    return y;
}

void
SellCSigma::validate() const
{
    via_assert(_colIdx.size() == _values.size(),
               "col/value length mismatch");
    via_assert(_chunkPtr.size() == _chunkWidth.size() + 1,
               "chunk_ptr size mismatch");
    via_assert(std::size_t(_chunkPtr.back()) == _colIdx.size(),
               "chunk_ptr end mismatch");
    for (Index c : _colIdx)
        via_assert(c >= 0 && c < _cols, "column out of range");
    std::vector<bool> seen(std::size_t(_rows), false);
    for (Index r : _rowPerm) {
        via_assert(r >= 0 && r < _rows, "bad row permutation entry");
        via_assert(!seen[std::size_t(r)],
                   "row permutation repeats row ", r);
        seen[std::size_t(r)] = true;
    }
}

} // namespace via
