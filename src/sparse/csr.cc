#include "sparse/csr.hh"

#include <algorithm>

#include "simcore/log.hh"

namespace via
{

Csr
Csr::fromCoo(Coo coo)
{
    coo.canonicalize();
    Csr m;
    m._rows = coo.rows();
    m._cols = coo.cols();
    m._rowPtr.assign(std::size_t(coo.rows()) + 1, 0);
    m._colIdx.reserve(coo.nnz());
    m._values.reserve(coo.nnz());

    for (const Triplet &t : coo.elems()) {
        ++m._rowPtr[std::size_t(t.row) + 1];
        m._colIdx.push_back(t.col);
        m._values.push_back(t.value);
    }
    for (std::size_t r = 1; r < m._rowPtr.size(); ++r)
        m._rowPtr[r] += m._rowPtr[r - 1];
    m.validate();
    return m;
}

Csr
Csr::fromParts(Index rows, Index cols, std::vector<Index> row_ptr,
               std::vector<Index> col_idx, std::vector<Value> values)
{
    Csr m;
    m._rows = rows;
    m._cols = cols;
    m._rowPtr = std::move(row_ptr);
    m._colIdx = std::move(col_idx);
    m._values = std::move(values);
    m.validate();
    return m;
}

Index
Csr::rowNnz(Index r) const
{
    via_assert(r >= 0 && r < _rows, "row ", r, " out of range");
    return _rowPtr[std::size_t(r) + 1] - _rowPtr[std::size_t(r)];
}

Index
Csr::maxRowNnz() const
{
    Index best = 0;
    for (Index r = 0; r < _rows; ++r)
        best = std::max(best, rowNnz(r));
    return best;
}

DenseVector
Csr::multiply(const DenseVector &x) const
{
    via_assert(Index(x.size()) == _cols, "SpMV shape mismatch: ",
               _cols, " cols vs vector of ", x.size());
    DenseVector y(std::size_t(_rows), Value(0));
    for (Index r = 0; r < _rows; ++r) {
        double acc = 0.0;
        for (Index k = _rowPtr[std::size_t(r)];
             k < _rowPtr[std::size_t(r) + 1]; ++k) {
            acc += double(_values[std::size_t(k)]) *
                   double(x[std::size_t(_colIdx[std::size_t(k)])]);
        }
        y[std::size_t(r)] = Value(acc);
    }
    return y;
}

Coo
Csr::toCoo() const
{
    Coo coo(_rows, _cols);
    for (Index r = 0; r < _rows; ++r)
        for (Index k = _rowPtr[std::size_t(r)];
             k < _rowPtr[std::size_t(r) + 1]; ++k)
            coo.add(r, _colIdx[std::size_t(k)],
                    _values[std::size_t(k)]);
    return coo;
}

bool
Csr::operator==(const Csr &o) const
{
    return _rows == o._rows && _cols == o._cols &&
           _rowPtr == o._rowPtr && _colIdx == o._colIdx &&
           _values == o._values;
}

void
Csr::validate() const
{
    via_assert(_rowPtr.size() == std::size_t(_rows) + 1,
               "row_ptr has ", _rowPtr.size(), " entries for ",
               _rows, " rows");
    via_assert(_colIdx.size() == _values.size(),
               "col_idx / data length mismatch");
    via_assert(_rowPtr.front() == 0, "row_ptr must start at 0");
    via_assert(std::size_t(_rowPtr.back()) == _values.size(),
               "row_ptr end does not match nnz");
    for (std::size_t r = 1; r < _rowPtr.size(); ++r)
        via_assert(_rowPtr[r] >= _rowPtr[r - 1],
                   "row_ptr not monotone at row ", r);
    for (Index r = 0; r < _rows; ++r) {
        for (Index k = _rowPtr[std::size_t(r)];
             k < _rowPtr[std::size_t(r) + 1]; ++k) {
            Index c = _colIdx[std::size_t(k)];
            via_assert(c >= 0 && c < _cols, "column ", c,
                       " out of range in row ", r);
            if (k > _rowPtr[std::size_t(r)])
                via_assert(_colIdx[std::size_t(k) - 1] < c,
                           "columns not strictly increasing in row ",
                           r);
        }
    }
}

} // namespace via
