/**
 * @file
 * Sell-C-sigma sliced-ELL format (Kreutzer et al.), one of the SpMV
 * baselines in the paper's Figure 10.
 *
 * Rows are sorted by length within windows of sigma rows, grouped
 * into chunks of C rows, and each chunk is padded to its longest row
 * and stored column-major, so a vector unit can process C rows per
 * instruction with unit-stride loads of values/indices (x is still
 * gathered).
 */

#ifndef VIA_SPARSE_SELL_C_SIGMA_HH
#define VIA_SPARSE_SELL_C_SIGMA_HH

#include <vector>

#include "sparse/csr.hh"
#include "sparse/sparse_types.hh"

namespace via
{

/** Sell-C-sigma sparse matrix. */
class SellCSigma
{
  public:
    SellCSigma() = default;

    /**
     * @param c chunk height (usually the vector length)
     * @param sigma sorting window, a multiple of c
     */
    static SellCSigma fromCsr(const Csr &csr, Index c, Index sigma);

    Index rows() const { return _rows; }
    Index cols() const { return _cols; }
    Index c() const { return _c; }
    Index sigma() const { return _sigma; }
    std::size_t nnz() const { return _nnz; }

    Index numChunks() const;

    /** Offset of a chunk's first entry in colIdx()/values(). */
    const std::vector<Index> &chunkPtr() const { return _chunkPtr; }
    /** Padded width (longest row) of each chunk. */
    const std::vector<Index> &chunkWidth() const
    {
        return _chunkWidth;
    }
    /** Column indices, chunk-column-major; padding stores 0. */
    const std::vector<Index> &colIdx() const { return _colIdx; }
    /** Values, same layout; padding stores 0. */
    const std::vector<Value> &values() const { return _values; }
    /** rowPerm[k] = original row of sorted position k. */
    const std::vector<Index> &rowPerm() const { return _rowPerm; }

    /** Padding overhead: stored slots / nnz. */
    double fillRatio() const;

    /** Host-side golden multiply (for format tests). */
    DenseVector multiply(const DenseVector &x) const;

    void validate() const;

  private:
    Index _rows = 0;
    Index _cols = 0;
    Index _c = 0;
    Index _sigma = 0;
    std::size_t _nnz = 0;
    std::vector<Index> _chunkPtr;
    std::vector<Index> _chunkWidth;
    std::vector<Index> _colIdx;
    std::vector<Value> _values;
    std::vector<Index> _rowPerm;
};

} // namespace via

#endif // VIA_SPARSE_SELL_C_SIGMA_HH
