/**
 * @file
 * Compressed Sparse Column format (paper Figure 1.c) — CSR's
 * transpose-friendly sibling, used as the B operand of the
 * inner-product SpMM kernel (Algorithm 3).
 */

#ifndef VIA_SPARSE_CSC_HH
#define VIA_SPARSE_CSC_HH

#include <vector>

#include "sparse/coo.hh"
#include "sparse/csr.hh"
#include "sparse/sparse_types.hh"

namespace via
{

/** CSC sparse matrix. */
class Csc
{
  public:
    Csc() = default;

    static Csc fromCoo(Coo coo);

    /** Column-compress an existing CSR matrix (same element set). */
    static Csc fromCsr(const Csr &csr);

    Index rows() const { return _rows; }
    Index cols() const { return _cols; }
    std::size_t nnz() const { return _values.size(); }

    const std::vector<Index> &colPtr() const { return _colPtr; }
    const std::vector<Index> &rowIdx() const { return _rowIdx; }
    const std::vector<Value> &values() const { return _values; }

    Index colNnz(Index c) const;
    Index maxColNnz() const;

    Coo toCoo() const;
    void validate() const;

  private:
    Index _rows = 0;
    Index _cols = 0;
    std::vector<Index> _colPtr;
    std::vector<Index> _rowIdx;
    std::vector<Value> _values;
};

} // namespace via

#endif // VIA_SPARSE_CSC_HH
