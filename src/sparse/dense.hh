/**
 * @file
 * Dense vector/matrix helpers used by kernels and tests.
 */

#ifndef VIA_SPARSE_DENSE_HH
#define VIA_SPARSE_DENSE_HH

#include <cstddef>
#include <vector>

#include "sparse/sparse_types.hh"

namespace via
{

class Rng;

/** A dense vector of Values. */
using DenseVector = std::vector<Value>;

/** Row-major dense matrix. */
class DenseMatrix
{
  public:
    DenseMatrix() = default;
    DenseMatrix(Index rows, Index cols);

    Index rows() const { return _rows; }
    Index cols() const { return _cols; }

    Value &at(Index r, Index c);
    Value at(Index r, Index c) const;

    const std::vector<Value> &data() const { return _data; }
    std::vector<Value> &data() { return _data; }

  private:
    Index _rows = 0;
    Index _cols = 0;
    std::vector<Value> _data;
};

/** Uniform random vector in [-1, 1). */
DenseVector randomVector(Index n, Rng &rng);

/** Max-norm distance between two vectors (fatal on size mismatch). */
double maxAbsDiff(const DenseVector &a, const DenseVector &b);

/**
 * Approximate equality with mixed absolute/relative tolerance,
 * suitable for float32 accumulations of different orders.
 */
bool allClose(const DenseVector &a, const DenseVector &b,
              double rtol = 1e-4, double atol = 1e-5);

} // namespace via

#endif // VIA_SPARSE_DENSE_HH
