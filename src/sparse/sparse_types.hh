/**
 * @file
 * Element types shared by all sparse formats.
 *
 * Values are 32-bit floats: the SSPM stores 4-byte blocks (paper
 * Section IV-A) and the AVX2-like vector unit then works with 8
 * lanes. Indices are 32-bit, which covers the paper's input set
 * (matrices up to 20k rows).
 *
 * Index is part of the *simulated* memory layout — kernels upload
 * these arrays byte-for-byte into the machine's backing store — so
 * it must stay 32 bits for the stats fingerprints to hold. Host-side
 * arithmetic whose result scales with the matrix (block-grid sizes,
 * Matrix Market entry counts) is carried in std::int64_t instead;
 * per-array element counts are bounded by nnz < 2^31.
 */

#ifndef VIA_SPARSE_SPARSE_TYPES_HH
#define VIA_SPARSE_SPARSE_TYPES_HH

#include <cstdint>

namespace via
{

/** Matrix value type. */
using Value = float;

/** Row/column index type. */
using Index = std::int32_t;

} // namespace via

#endif // VIA_SPARSE_SPARSE_TYPES_HH
