/**
 * @file
 * Structural statistics used to bucket matrices the way the paper's
 * figures do (block density for Fig 10, nnz for Fig 11).
 */

#ifndef VIA_SPARSE_STRUCTURE_STATS_HH
#define VIA_SPARSE_STRUCTURE_STATS_HH

#include <cstddef>
#include <vector>

#include "sparse/csr.hh"

namespace via
{

/** Summary of one matrix's structure. */
struct StructureStats
{
    Index rows = 0;
    Index cols = 0;
    std::size_t nnz = 0;
    double density = 0.0;
    double meanRowNnz = 0.0;
    Index maxRowNnz = 0;
    /** Mean nnz per non-empty beta x beta block (CSB density). */
    double nnzPerBlock = 0.0;
};

/** Compute structure statistics; beta is the CSB block side. */
StructureStats computeStructure(const Csr &matrix, Index beta);

/**
 * Split items into `buckets` near-equal categories after sorting by
 * key ascending (the paper sorts matrices by block density / nnz and
 * splits evenly into four).
 *
 * @return bucket id (0..buckets-1) per item, aligned with items
 */
std::vector<std::size_t> evenBuckets(const std::vector<double> &keys,
                                     std::size_t buckets);

} // namespace via

#endif // VIA_SPARSE_STRUCTURE_STATS_HH
