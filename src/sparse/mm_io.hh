/**
 * @file
 * Matrix Market I/O so the real University of Florida collection can
 * be dropped in place of the synthetic corpus.
 *
 * Supported: `%%MatrixMarket matrix coordinate (real|integer|pattern)
 * (general|symmetric)`. Pattern entries read as 1.0; symmetric
 * matrices are expanded to general on load.
 */

#ifndef VIA_SPARSE_MM_IO_HH
#define VIA_SPARSE_MM_IO_HH

#include <fstream>
#include <iosfwd>
#include <string>

#include "sparse/csr.hh"

namespace via
{

/** Parse a Matrix Market stream; fatal() on malformed input. */
Csr readMatrixMarketStream(std::istream &in,
                           const std::string &what = "<stream>");

/** Read a .mtx file. */
Csr readMatrixMarket(const std::string &path);

/**
 * Read a .mtx file in two streaming passes: pass one counts
 * entries per row, pass two places them into pre-sized CSR arrays,
 * then each row is sorted and duplicates merged in place. Peak
 * memory is the final CSR plus one counter per row — no triplet
 * set and no global sort, which is what makes 10^6+-row files
 * tractable. For duplicate-free inputs (the normal case) the
 * result is bit-identical to readMatrixMarket.
 */
Csr readMatrixMarketStreaming(const std::string &path);

/** Write coordinate/real/general .mtx. */
void writeMatrixMarket(const Csr &matrix, std::ostream &out);
void writeMatrixMarket(const Csr &matrix, const std::string &path);

/**
 * Incremental coordinate/real/general .mtx writer: the entry count
 * is declared up front and entries stream straight to disk, so a
 * matrix can be written without ever holding a second copy (e.g.
 * piping a streaming generator to a file row by row).
 *
 * Output is byte-identical to writeMatrixMarket when entries are
 * added in CSR order. close() validates the declared count.
 */
class MatrixMarketWriter
{
  public:
    MatrixMarketWriter(const std::string &path, Index rows,
                       Index cols, std::size_t nnz);
    ~MatrixMarketWriter();

    /** Append one entry (0-based indices, emitted 1-based). */
    void add(Index r, Index c, Value v);

    /** Flush and verify the declared entry count; fatal on short
     *  or excess writes. Idempotent. */
    void close();

  private:
    std::ofstream _out;
    std::string _path;
    std::size_t _declared = 0;
    std::size_t _written = 0;
    bool _closed = false;
};

} // namespace via

#endif // VIA_SPARSE_MM_IO_HH
