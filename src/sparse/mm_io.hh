/**
 * @file
 * Matrix Market I/O so the real University of Florida collection can
 * be dropped in place of the synthetic corpus.
 *
 * Supported: `%%MatrixMarket matrix coordinate (real|integer|pattern)
 * (general|symmetric)`. Pattern entries read as 1.0; symmetric
 * matrices are expanded to general on load.
 */

#ifndef VIA_SPARSE_MM_IO_HH
#define VIA_SPARSE_MM_IO_HH

#include <iosfwd>
#include <string>

#include "sparse/csr.hh"

namespace via
{

/** Parse a Matrix Market stream; fatal() on malformed input. */
Csr readMatrixMarketStream(std::istream &in,
                           const std::string &what = "<stream>");

/** Read a .mtx file. */
Csr readMatrixMarket(const std::string &path);

/** Write coordinate/real/general .mtx. */
void writeMatrixMarket(const Csr &matrix, std::ostream &out);
void writeMatrixMarket(const Csr &matrix, const std::string &path);

} // namespace via

#endif // VIA_SPARSE_MM_IO_HH
