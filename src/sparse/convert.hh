/**
 * @file
 * Cross-format conversion helpers and canonical comparison.
 */

#ifndef VIA_SPARSE_CONVERT_HH
#define VIA_SPARSE_CONVERT_HH

#include "sparse/csb.hh"
#include "sparse/csc.hh"
#include "sparse/csr.hh"
#include "sparse/sell_c_sigma.hh"
#include "sparse/spc5.hh"

namespace via
{

/** Csb -> Csr via canonical triplets. */
Csr csbToCsr(const Csb &m);

/** Csc -> Csr via canonical triplets. */
Csr cscToCsr(const Csc &m);

/** Element-wise equality through canonical COO (exact values). */
bool sameElements(const Csr &a, const Csr &b);

/** Element-wise closeness (|diff| <= atol per element). */
bool closeElements(const Csr &a, const Csr &b, double atol = 1e-4);

/** A + B with exact merge semantics (golden SpMA). */
Csr addCsr(const Csr &a, const Csr &b);

/** A * B with double accumulation (golden SpMM). */
Csr mulCsr(const Csr &a, const Csr &b);

} // namespace via

#endif // VIA_SPARSE_CONVERT_HH
