/**
 * @file
 * Coordinate-list (triplet) sparse matrix — the construction format
 * all generators emit and all compressed formats build from.
 */

#ifndef VIA_SPARSE_COO_HH
#define VIA_SPARSE_COO_HH

#include <vector>

#include "sparse/sparse_types.hh"

namespace via
{

/** One non-zero element. */
struct Triplet
{
    Index row = 0;
    Index col = 0;
    Value value = 0;

    bool
    operator==(const Triplet &o) const
    {
        return row == o.row && col == o.col && value == o.value;
    }
};

/** Triplet-form sparse matrix. */
class Coo
{
  public:
    Coo() = default;
    Coo(Index rows, Index cols);

    Index rows() const { return _rows; }
    Index cols() const { return _cols; }
    std::size_t nnz() const { return _elems.size(); }

    /** Append one element (bounds-checked). */
    void add(Index row, Index col, Value value);

    /**
     * Sort by (row, col) and combine duplicates by addition.
     * Elements that sum to exactly zero are kept (structural nnz).
     */
    void canonicalize();

    /** True if sorted by (row, col) with no duplicates. */
    bool isCanonical() const;

    const std::vector<Triplet> &elems() const { return _elems; }
    std::vector<Triplet> &elems() { return _elems; }

    /** Fraction of positions that are non-zero. */
    double density() const;

  private:
    Index _rows = 0;
    Index _cols = 0;
    std::vector<Triplet> _elems;
};

} // namespace via

#endif // VIA_SPARSE_COO_HH
