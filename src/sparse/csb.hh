/**
 * @file
 * Compressed Sparse Block format (paper Figure 1.b/1.d; Buluc et
 * al.). The matrix is tiled into beta x beta blocks; each non-zero
 * stores a single merged in-block index (row << colBits | col) plus
 * its value, and block_ptr delimits the elements of each block in
 * block-row-major order.
 *
 * The VIA CSB SpMV kernel tunes beta so that one block's column
 * range (input vector chunk) plus its row range (output accumulator
 * chunk) fill the SSPM — beta = sramEntries / 2 (Section V-B).
 */

#ifndef VIA_SPARSE_CSB_HH
#define VIA_SPARSE_CSB_HH

#include <cstdint>
#include <vector>

#include "sparse/coo.hh"
#include "sparse/csr.hh"
#include "sparse/sparse_types.hh"

namespace via
{

/** CSB sparse matrix with merged in-block indices. */
class Csb
{
  public:
    Csb() = default;

    /**
     * Tile @p csr into beta x beta blocks.
     * @param beta block side; must be a power of two
     */
    static Csb fromCsr(const Csr &csr, Index beta);

    Index rows() const { return _rows; }
    Index cols() const { return _cols; }
    Index beta() const { return _beta; }
    std::size_t nnz() const { return _values.size(); }

    /** Bits used for the column part of a packed index. */
    std::uint32_t colBits() const { return _colBits; }

    Index blockRows() const; //!< blocks per column of the grid
    Index blockCols() const; //!< blocks per row of the grid

    /**
     * Blocks in the grid. 64-bit: a million-row matrix with a small
     * beta has blockRows * blockCols > 2^31 even though every
     * per-dimension count still fits an Index.
     */
    std::int64_t numBlocks() const;

    /**
     * Grid size for a (rows, cols, beta) shape without building the
     * matrix — the overflow-prone product in one testable place.
     */
    static std::int64_t gridBlocks(Index rows, Index cols, Index beta);

    const std::vector<Index> &blockPtr() const { return _blockPtr; }
    const std::vector<Index> &packedIdx() const { return _packedIdx; }
    const std::vector<Value> &values() const { return _values; }

    /** Elements in block (block_row, block_col). */
    Index blockNnz(Index block_row, Index block_col) const;

    /** Linear block id of (block_row, block_col). */
    std::int64_t blockId(Index block_row, Index block_col) const;

    /** Density of a block: nnz / beta^2. */
    double blockDensity(Index block_row, Index block_col) const;

    /** Mean non-zeros over non-empty blocks (Fig 10's x-axis). */
    double meanNnzPerNonEmptyBlock() const;

    Coo toCoo() const;
    void validate() const;

  private:
    Index _rows = 0;
    Index _cols = 0;
    Index _beta = 0;
    std::uint32_t _colBits = 0;
    std::vector<Index> _blockPtr;
    std::vector<Index> _packedIdx;
    std::vector<Value> _values;
};

} // namespace via

#endif // VIA_SPARSE_CSB_HH
