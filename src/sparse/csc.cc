#include "sparse/csc.hh"

#include <algorithm>

#include "simcore/log.hh"

namespace via
{

Csc
Csc::fromCoo(Coo coo)
{
    // Canonical CSC order is column-major: sort by (col, row).
    std::sort(coo.elems().begin(), coo.elems().end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.col != b.col ? a.col < b.col
                                        : a.row < b.row;
              });
    Csc m;
    m._rows = coo.rows();
    m._cols = coo.cols();
    m._colPtr.assign(std::size_t(coo.cols()) + 1, 0);
    m._rowIdx.reserve(coo.nnz());
    m._values.reserve(coo.nnz());
    for (const Triplet &t : coo.elems()) {
        ++m._colPtr[std::size_t(t.col) + 1];
        m._rowIdx.push_back(t.row);
        m._values.push_back(t.value);
    }
    for (std::size_t c = 1; c < m._colPtr.size(); ++c)
        m._colPtr[c] += m._colPtr[c - 1];
    m.validate();
    return m;
}

Csc
Csc::fromCsr(const Csr &csr)
{
    return fromCoo(csr.toCoo());
}

Index
Csc::colNnz(Index c) const
{
    via_assert(c >= 0 && c < _cols, "column ", c, " out of range");
    return _colPtr[std::size_t(c) + 1] - _colPtr[std::size_t(c)];
}

Index
Csc::maxColNnz() const
{
    Index best = 0;
    for (Index c = 0; c < _cols; ++c)
        best = std::max(best, colNnz(c));
    return best;
}

Coo
Csc::toCoo() const
{
    Coo coo(_rows, _cols);
    for (Index c = 0; c < _cols; ++c)
        for (Index k = _colPtr[std::size_t(c)];
             k < _colPtr[std::size_t(c) + 1]; ++k)
            coo.add(_rowIdx[std::size_t(k)], c,
                    _values[std::size_t(k)]);
    return coo;
}

void
Csc::validate() const
{
    via_assert(_colPtr.size() == std::size_t(_cols) + 1,
               "col_ptr has ", _colPtr.size(), " entries for ",
               _cols, " cols");
    via_assert(_rowIdx.size() == _values.size(),
               "row_idx / data length mismatch");
    via_assert(_colPtr.front() == 0, "col_ptr must start at 0");
    via_assert(std::size_t(_colPtr.back()) == _values.size(),
               "col_ptr end does not match nnz");
    for (Index c = 0; c < _cols; ++c) {
        for (Index k = _colPtr[std::size_t(c)];
             k < _colPtr[std::size_t(c) + 1]; ++k) {
            Index r = _rowIdx[std::size_t(k)];
            via_assert(r >= 0 && r < _rows, "row ", r,
                       " out of range in column ", c);
            if (k > _colPtr[std::size_t(c)])
                via_assert(_rowIdx[std::size_t(k) - 1] < r,
                           "rows not strictly increasing in col ",
                           c);
        }
    }
}

} // namespace via
