#include "sparse/dense.hh"

#include <algorithm>
#include <cmath>

#include "simcore/log.hh"
#include "simcore/rng.hh"

namespace via
{

DenseMatrix::DenseMatrix(Index rows, Index cols)
    : _rows(rows), _cols(cols),
      _data(std::size_t(rows) * std::size_t(cols), Value(0))
{
    via_assert(rows >= 0 && cols >= 0, "negative matrix shape");
}

Value &
DenseMatrix::at(Index r, Index c)
{
    via_assert(r >= 0 && r < _rows && c >= 0 && c < _cols,
               "dense index (", r, ",", c, ") out of range");
    return _data[std::size_t(r) * std::size_t(_cols)
                 + std::size_t(c)];
}

Value
DenseMatrix::at(Index r, Index c) const
{
    return const_cast<DenseMatrix *>(this)->at(r, c);
}

DenseVector
randomVector(Index n, Rng &rng)
{
    DenseVector v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = Value(rng.uniform() * 2.0 - 1.0);
    return v;
}

double
maxAbsDiff(const DenseVector &a, const DenseVector &b)
{
    via_assert(a.size() == b.size(), "vector size mismatch: ",
               a.size(), " vs ", b.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst,
                         std::abs(double(a[i]) - double(b[i])));
    return worst;
}

bool
allClose(const DenseVector &a, const DenseVector &b, double rtol,
         double atol)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double x = a[i], y = b[i];
        if (std::abs(x - y) > atol + rtol * std::max(std::abs(x),
                                                     std::abs(y)))
            return false;
    }
    return true;
}

} // namespace via
