#include "sparse/csb.hh"

#include <algorithm>
#include <bit>

#include "simcore/log.hh"

namespace via
{

Csb
Csb::fromCsr(const Csr &csr, Index beta)
{
    via_assert(beta > 0 && (beta & (beta - 1)) == 0,
               "CSB block side must be a power of two, got ", beta);
    Csb m;
    m._rows = csr.rows();
    m._cols = csr.cols();
    m._beta = beta;
    m._colBits = std::uint32_t(std::countr_zero(std::uint32_t(beta)));

    Index brows = m.blockRows();
    Index bcols = m.blockCols();
    std::size_t nblocks = std::size_t(brows) * std::size_t(bcols);

    // Count elements per block, prefix-sum, then scatter in order.
    std::vector<Index> counts(nblocks, 0);
    Coo coo = csr.toCoo();
    for (const Triplet &t : coo.elems()) {
        std::size_t b = std::size_t(t.row / beta) *
                            std::size_t(bcols) +
                        std::size_t(t.col / beta);
        ++counts[b];
    }
    m._blockPtr.assign(nblocks + 1, 0);
    for (std::size_t b = 0; b < nblocks; ++b)
        m._blockPtr[b + 1] = m._blockPtr[b] + counts[b];

    m._packedIdx.assign(coo.nnz(), 0);
    m._values.assign(coo.nnz(), Value(0));
    std::vector<Index> cursor(m._blockPtr.begin(),
                              m._blockPtr.end() - 1);
    for (const Triplet &t : coo.elems()) {
        std::size_t b = std::size_t(t.row / beta) *
                            std::size_t(bcols) +
                        std::size_t(t.col / beta);
        auto slot = std::size_t(cursor[b]++);
        Index in_row = t.row % beta;
        Index in_col = t.col % beta;
        m._packedIdx[slot] = (in_row << m._colBits) | in_col;
        m._values[slot] = t.value;
    }
    m.validate();
    return m;
}

Index
Csb::blockRows() const
{
    return (_rows + _beta - 1) / _beta;
}

Index
Csb::blockCols() const
{
    return (_cols + _beta - 1) / _beta;
}

std::int64_t
Csb::numBlocks() const
{
    return gridBlocks(_rows, _cols, _beta);
}

std::int64_t
Csb::gridBlocks(Index rows, Index cols, Index beta)
{
    // Widen before multiplying: each dimension's block count fits an
    // Index but their product can exceed 2^31 (e.g. 4M rows x 4M
    // cols at beta = 16 is ~6.6e10 blocks).
    std::int64_t brows = (std::int64_t(rows) + beta - 1) / beta;
    std::int64_t bcols = (std::int64_t(cols) + beta - 1) / beta;
    return brows * bcols;
}

std::int64_t
Csb::blockId(Index block_row, Index block_col) const
{
    via_assert(block_row >= 0 && block_row < blockRows() &&
                   block_col >= 0 && block_col < blockCols(),
               "block (", block_row, ",", block_col,
               ") outside grid");
    return std::int64_t(block_row) * blockCols() + block_col;
}

Index
Csb::blockNnz(Index block_row, Index block_col) const
{
    auto b = std::size_t(blockId(block_row, block_col));
    return _blockPtr[b + 1] - _blockPtr[b];
}

double
Csb::blockDensity(Index block_row, Index block_col) const
{
    return double(blockNnz(block_row, block_col)) /
           (double(_beta) * double(_beta));
}

double
Csb::meanNnzPerNonEmptyBlock() const
{
    std::size_t nonempty = 0;
    for (std::size_t b = 0; b + 1 < _blockPtr.size(); ++b)
        if (_blockPtr[b + 1] > _blockPtr[b])
            ++nonempty;
    return nonempty ? double(nnz()) / double(nonempty) : 0.0;
}

Coo
Csb::toCoo() const
{
    Coo coo(_rows, _cols);
    std::int64_t bcols = blockCols();
    for (std::int64_t b = 0; b < numBlocks(); ++b) {
        Index base_row = Index(b / bcols) * _beta;
        Index base_col = Index(b % bcols) * _beta;
        for (Index k = _blockPtr[std::size_t(b)];
             k < _blockPtr[std::size_t(b) + 1]; ++k) {
            Index packed = _packedIdx[std::size_t(k)];
            Index in_col = packed & (_beta - 1);
            Index in_row = packed >> _colBits;
            coo.add(base_row + in_row, base_col + in_col,
                    _values[std::size_t(k)]);
        }
    }
    return coo;
}

void
Csb::validate() const
{
    via_assert(_blockPtr.size() ==
                   std::size_t(numBlocks()) + 1,
               "block_ptr size mismatch");
    via_assert(_packedIdx.size() == _values.size(),
               "index / data length mismatch");
    via_assert(std::size_t(_blockPtr.back()) == _values.size(),
               "block_ptr end does not match nnz");
    std::int64_t bcols = blockCols();
    for (std::int64_t b = 0; b < numBlocks(); ++b) {
        Index base_row = Index(b / bcols) * _beta;
        Index base_col = Index(b % bcols) * _beta;
        for (Index k = _blockPtr[std::size_t(b)];
             k < _blockPtr[std::size_t(b) + 1]; ++k) {
            Index packed = _packedIdx[std::size_t(k)];
            Index in_col = packed & (_beta - 1);
            Index in_row = packed >> _colBits;
            via_assert(base_row + in_row < _rows &&
                           base_col + in_col < _cols,
                       "packed index escapes the matrix in block ",
                       b);
        }
    }
}

} // namespace via
