#include "sparse/coo.hh"

#include <algorithm>

#include "simcore/log.hh"

namespace via
{

Coo::Coo(Index rows, Index cols)
    : _rows(rows), _cols(cols)
{
    via_assert(rows >= 0 && cols >= 0, "negative matrix shape");
}

void
Coo::add(Index row, Index col, Value value)
{
    via_assert(row >= 0 && row < _rows && col >= 0 && col < _cols,
               "triplet (", row, ",", col, ") outside ", _rows, "x",
               _cols);
    _elems.push_back(Triplet{row, col, value});
}

void
Coo::canonicalize()
{
    std::sort(_elems.begin(), _elems.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.row != b.row ? a.row < b.row
                                        : a.col < b.col;
              });
    std::size_t out = 0;
    for (std::size_t i = 0; i < _elems.size();) {
        Triplet merged = _elems[i];
        std::size_t j = i + 1;
        while (j < _elems.size() && _elems[j].row == merged.row &&
               _elems[j].col == merged.col) {
            merged.value += _elems[j].value;
            ++j;
        }
        _elems[out++] = merged;
        i = j;
    }
    _elems.resize(out);
}

bool
Coo::isCanonical() const
{
    for (std::size_t i = 1; i < _elems.size(); ++i) {
        const Triplet &a = _elems[i - 1];
        const Triplet &b = _elems[i];
        if (a.row > b.row ||
            (a.row == b.row && a.col >= b.col))
            return false;
    }
    return true;
}

double
Coo::density() const
{
    if (_rows == 0 || _cols == 0)
        return 0.0;
    return double(nnz()) / (double(_rows) * double(_cols));
}

} // namespace via
