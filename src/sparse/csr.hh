/**
 * @file
 * Compressed Sparse Row format (paper Figure 1.a).
 *
 * Three arrays: row_ptr (rows+1 entries), col_idx and data (nnz
 * entries each). The reference format for SpMV/SpMA/SpMM baselines.
 */

#ifndef VIA_SPARSE_CSR_HH
#define VIA_SPARSE_CSR_HH

#include <vector>

#include "sparse/coo.hh"
#include "sparse/dense.hh"
#include "sparse/sparse_types.hh"

namespace via
{

/** CSR sparse matrix. */
class Csr
{
  public:
    Csr() = default;

    /** Build from (possibly unsorted, duplicated) triplets. */
    static Csr fromCoo(Coo coo);

    /** Build directly from raw arrays (validated). */
    static Csr fromParts(Index rows, Index cols,
                         std::vector<Index> row_ptr,
                         std::vector<Index> col_idx,
                         std::vector<Value> values);

    Index rows() const { return _rows; }
    Index cols() const { return _cols; }
    std::size_t nnz() const { return _values.size(); }

    const std::vector<Index> &rowPtr() const { return _rowPtr; }
    const std::vector<Index> &colIdx() const { return _colIdx; }
    const std::vector<Value> &values() const { return _values; }

    /** Number of non-zeros in one row. */
    Index rowNnz(Index r) const;

    /** Longest row in the matrix. */
    Index maxRowNnz() const;

    /** y = A x (host-side golden kernel, double accumulation). */
    DenseVector multiply(const DenseVector &x) const;

    /** Back to triplets (canonical order). */
    Coo toCoo() const;

    /** Structural + value equality. */
    bool operator==(const Csr &o) const;

    /** Consistency of the three arrays; panics on violation. */
    void validate() const;

  private:
    Index _rows = 0;
    Index _cols = 0;
    std::vector<Index> _rowPtr;
    std::vector<Index> _colIdx;
    std::vector<Value> _values;
};

} // namespace via

#endif // VIA_SPARSE_CSR_HH
