#include "sparse/structure_stats.hh"

#include <algorithm>
#include <numeric>

#include "simcore/log.hh"
#include "sparse/csb.hh"

namespace via
{

StructureStats
computeStructure(const Csr &matrix, Index beta)
{
    StructureStats s;
    s.rows = matrix.rows();
    s.cols = matrix.cols();
    s.nnz = matrix.nnz();
    s.density = s.rows && s.cols
                    ? double(s.nnz) / (double(s.rows) *
                                       double(s.cols))
                    : 0.0;
    s.meanRowNnz = s.rows ? double(s.nnz) / double(s.rows) : 0.0;
    s.maxRowNnz = matrix.rows() ? matrix.maxRowNnz() : 0;
    Csb csb = Csb::fromCsr(matrix, beta);
    s.nnzPerBlock = csb.meanNnzPerNonEmptyBlock();
    return s;
}

std::vector<std::size_t>
evenBuckets(const std::vector<double> &keys, std::size_t buckets)
{
    via_assert(buckets > 0, "need at least one bucket");
    std::vector<std::size_t> order(keys.size());
    std::iota(order.begin(), order.end(), std::size_t(0));
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return keys[a] < keys[b];
                     });
    std::vector<std::size_t> bucket(keys.size(), 0);
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        bucket[order[pos]] = std::min(buckets - 1,
                                      pos * buckets / order.size());
    }
    return bucket;
}

} // namespace via
