#include "sparse/spc5.hh"

#include <bit>

#include "simcore/log.hh"

namespace via
{

Spc5
Spc5::fromCsr(const Csr &csr, Index window)
{
    via_assert(window > 0 && window <= 32,
               "SPC5 window must be in [1, 32], got ", window);
    Spc5 m;
    m._rows = csr.rows();
    m._cols = csr.cols();
    m._window = window;
    m._blockPtr.push_back(0);

    const auto &row_ptr = csr.rowPtr();
    const auto &col_idx = csr.colIdx();
    const auto &values = csr.values();

    for (Index r = 0; r < m._rows; ++r) {
        Index k = row_ptr[std::size_t(r)];
        Index end = row_ptr[std::size_t(r) + 1];
        while (k < end) {
            // A new block anchored at this element's column.
            Index first = col_idx[std::size_t(k)];
            std::uint32_t mask = 0;
            Index packed = 0;
            while (k < end &&
                   col_idx[std::size_t(k)] < first + window) {
                mask |= 1u << (col_idx[std::size_t(k)] - first);
                m._values.push_back(values[std::size_t(k)]);
                ++packed;
                ++k;
            }
            m._blockRow.push_back(r);
            m._blockCol.push_back(first);
            m._blockMask.push_back(mask);
            m._blockPtr.push_back(m._blockPtr.back() + packed);
        }
    }
    m.validate();
    return m;
}

double
Spc5::meanBlockFill() const
{
    return numBlocks() ? double(nnz()) / double(numBlocks()) : 0.0;
}

DenseVector
Spc5::multiply(const DenseVector &x) const
{
    via_assert(Index(x.size()) == _cols, "SpMV shape mismatch");
    DenseVector y(std::size_t(_rows), Value(0));
    for (std::size_t b = 0; b < numBlocks(); ++b) {
        double acc = 0.0;
        Index v = _blockPtr[b];
        for (Index off = 0; off < _window; ++off) {
            if (_blockMask[b] & (1u << off)) {
                acc += double(_values[std::size_t(v++)]) *
                       double(x[std::size_t(_blockCol[b] + off)]);
            }
        }
        y[std::size_t(_blockRow[b])] += Value(acc);
    }
    return y;
}

void
Spc5::validate() const
{
    via_assert(_blockRow.size() == _blockCol.size() &&
                   _blockRow.size() == _blockMask.size(),
               "block array length mismatch");
    via_assert(_blockPtr.size() == _blockRow.size() + 1,
               "block_ptr size mismatch");
    via_assert(std::size_t(_blockPtr.back()) == _values.size(),
               "block_ptr end does not match packed values");
    for (std::size_t b = 0; b < numBlocks(); ++b) {
        via_assert(_blockMask[b] != 0, "empty block ", b);
        via_assert(std::popcount(_blockMask[b]) ==
                       _blockPtr[b + 1] - _blockPtr[b],
                   "mask popcount does not match packed count in "
                   "block ", b);
        via_assert(_blockCol[b] >= 0 &&
                       _blockCol[b] < _cols,
                   "block column out of range");
        via_assert((_blockMask[b] & 1u) != 0,
                   "block ", b, " mask must anchor at its first "
                   "column");
    }
}

} // namespace via
