#include "sparse/corpus.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <filesystem>
#include <sstream>

#include "simcore/log.hh"
#include "simcore/rng.hh"
#include "sparse/generators.hh"
#include "sparse/mm_io.hh"

namespace via
{

namespace
{

/** Log-uniform sample in [lo, hi]. */
double
logUniform(double lo, double hi, Rng &rng)
{
    return lo * std::exp(rng.uniform() * std::log(hi / lo));
}

Index
roundToPow2(Index n)
{
    return Index(std::bit_floor(std::uint64_t(n)));
}

} // namespace

std::vector<CorpusEntry>
buildCorpus(const CorpusSpec &spec)
{
    via_assert(spec.count > 0, "empty corpus requested");
    via_assert(spec.minRows > 0 && spec.minRows <= spec.maxRows,
               "bad corpus row range");
    Rng rng(spec.seed);
    std::vector<CorpusEntry> corpus;
    corpus.reserve(spec.count);

    // Family mix loosely follows the UF collection: structured
    // problems dominate, graphs and unstructured matrices follow.
    const char *families[] = {"banded", "blocked", "rmat", "uniform",
                              "diag"};
    const double weights[] = {0.30, 0.25, 0.20, 0.15, 0.10};

    for (std::size_t i = 0; i < spec.count; ++i) {
        double pick = rng.uniform();
        std::size_t fam = 0;
        double acc = 0.0;
        for (std::size_t f = 0; f < 5; ++f) {
            acc += weights[f];
            if (pick < acc) {
                fam = f;
                break;
            }
        }

        auto n = Index(logUniform(double(spec.minRows),
                                  double(spec.maxRows), rng));
        double density = logUniform(spec.minDensity,
                                    spec.maxDensity, rng);
        // Real matrices essentially never average below ~1.5
        // non-zeros per row; the UF density floor of 0.01% applies
        // to the 20k-row end of the collection.
        density = std::max(density, 1.5 / double(n));

        Csr m;
        switch (fam) {
          case 0: {
            // Band chosen so in-band fill stays plausible.
            auto bw = Index(std::max<double>(
                1.0, density * double(n) * (2.0 + rng.uniform())));
            double fill = density * double(n) / (2.0 * bw + 1.0);
            m = genBanded(n, bw, std::min(fill, 0.9), rng);
            break;
          }
          case 1: {
            Index side = std::max<Index>(
                4, Index(logUniform(4.0, 64.0, rng)));
            double blocks = std::sqrt(density);
            m = genBlocked(n, side, std::min(blocks, 0.5),
                           std::min(4.0 * std::sqrt(density), 0.8),
                           rng);
            break;
          }
          case 2: {
            Index n2 = roundToPow2(n);
            auto nnz = std::size_t(density * double(n2) *
                                   double(n2));
            m = genRmat(n2, std::max<std::size_t>(nnz, n2), rng);
            break;
          }
          case 3:
            m = genUniform(n, n, density, rng);
            break;
          default:
            m = genDiagHeavy(n, std::max(1.0,
                                         density * double(n)), rng);
            break;
        }

        std::ostringstream name;
        name << families[fam] << '_' << i << "_n" << m.rows()
             << "_nnz" << m.nnz();
        corpus.push_back(CorpusEntry{name.str(), families[fam],
                                     std::move(m)});
    }
    return corpus;
}

std::vector<CorpusEntry>
loadCorpusDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<CorpusEntry> corpus;
    if (!fs::is_directory(dir))
        via_fatal("corpus directory '", dir, "' does not exist");
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".mtx")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const auto &path : files) {
        corpus.push_back(CorpusEntry{path.stem().string(), "mtx",
                                     readMatrixMarket(path.string())});
    }
    return corpus;
}

} // namespace via
