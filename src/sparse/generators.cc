#include "sparse/generators.hh"

#include <algorithm>
#include <cmath>

#include "simcore/log.hh"

namespace via
{

namespace
{

Value
randValue(Rng &rng)
{
    return Value(rng.uniform() * 2.0 - 1.0);
}

} // namespace

void
randomizeValues(Coo &coo, Rng &rng)
{
    for (Triplet &t : coo.elems())
        t.value = randValue(rng);
}

Csr
genBanded(Index n, Index bandwidth, double fill, Rng &rng)
{
    via_assert(n > 0 && bandwidth >= 0, "bad band parameters");
    Coo coo(n, n);
    for (Index r = 0; r < n; ++r) {
        Index lo = std::max<Index>(0, r - bandwidth);
        Index hi = std::min<Index>(n - 1, r + bandwidth);
        for (Index c = lo; c <= hi; ++c) {
            if (c == r || rng.chance(fill))
                coo.add(r, c, randValue(rng));
        }
    }
    return Csr::fromCoo(std::move(coo));
}

Csr
genUniform(Index rows, Index cols, double density, Rng &rng)
{
    via_assert(rows > 0 && cols > 0, "bad shape");
    via_assert(density > 0.0 && density <= 1.0, "bad density ",
               density);
    // Sample nnz positions without materializing the dense grid:
    // geometric skipping over the linearized index space.
    Coo coo(rows, cols);
    double total = double(rows) * double(cols);
    auto target = std::size_t(total * density);
    double skip_mean = total / double(std::max<std::size_t>(target,
                                                            1));
    double pos = 0.0;
    while (true) {
        // Exponential gap with mean skip_mean.
        double u = std::max(rng.uniform(), 1e-12);
        pos += -std::log(u) * skip_mean;
        if (pos >= total)
            break;
        auto linear = std::uint64_t(pos);
        coo.add(Index(linear / std::uint64_t(cols)),
                Index(linear % std::uint64_t(cols)),
                randValue(rng));
    }
    return Csr::fromCoo(std::move(coo));
}

Csr
genRmat(Index n, std::size_t nnz_target, Rng &rng)
{
    via_assert(n > 0 && (n & (n - 1)) == 0,
               "RMAT needs a power-of-two size, got ", n);
    const double a = 0.57, b = 0.19, c = 0.19; // d = 0.05
    Coo coo(n, n);
    for (std::size_t e = 0; e < nnz_target; ++e) {
        Index row = 0, col = 0;
        for (Index bit = n >> 1; bit > 0; bit >>= 1) {
            double p = rng.uniform();
            if (p < a) {
                // top-left: nothing to add
            } else if (p < a + b) {
                col |= bit;
            } else if (p < a + b + c) {
                row |= bit;
            } else {
                row |= bit;
                col |= bit;
            }
        }
        coo.add(row, col, randValue(rng));
    }
    coo.canonicalize();
    return Csr::fromCoo(std::move(coo));
}

Csr
genBlocked(Index n, Index block_side, double block_fill,
           double inner_fill, Rng &rng)
{
    via_assert(block_side > 0 && block_side <= n,
               "bad block side ", block_side);
    Coo coo(n, n);
    Index grid = (n + block_side - 1) / block_side;
    for (Index br = 0; br < grid; ++br) {
        for (Index bc = 0; bc < grid; ++bc) {
            // Keep the diagonal blocks so no row is empty-ish.
            if (br != bc && !rng.chance(block_fill))
                continue;
            Index rlo = br * block_side;
            Index clo = bc * block_side;
            Index rhi = std::min(rlo + block_side, n);
            Index chi = std::min(clo + block_side, n);
            for (Index r = rlo; r < rhi; ++r)
                for (Index c = clo; c < chi; ++c)
                    if (rng.chance(inner_fill))
                        coo.add(r, c, randValue(rng));
        }
    }
    return Csr::fromCoo(std::move(coo));
}

Csr
genDiagHeavy(Index n, double off_diag, Rng &rng)
{
    via_assert(n > 0, "bad size");
    Coo coo(n, n);
    for (Index r = 0; r < n; ++r) {
        coo.add(r, r, Value(2.0 + rng.uniform()));
        // Poisson(off_diag) off-diagonal entries via thinning.
        auto extras = std::size_t(off_diag);
        if (rng.chance(off_diag - double(extras)))
            ++extras;
        for (std::size_t e = 0; e < extras; ++e) {
            auto c = Index(rng.below(std::uint64_t(n)));
            if (c != r)
                coo.add(r, c, randValue(rng));
        }
    }
    coo.canonicalize();
    return Csr::fromCoo(std::move(coo));
}

} // namespace via
