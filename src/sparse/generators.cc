#include "sparse/generators.hh"

#include <algorithm>
#include <cmath>

#include "simcore/log.hh"

namespace via
{

namespace
{

Value
randValue(Rng &rng)
{
    return Value(rng.uniform() * 2.0 - 1.0);
}

} // namespace

void
randomizeValues(Coo &coo, Rng &rng)
{
    for (Triplet &t : coo.elems())
        t.value = randValue(rng);
}

Csr
genBanded(Index n, Index bandwidth, double fill, Rng &rng)
{
    via_assert(n > 0 && bandwidth >= 0, "bad band parameters");
    Coo coo(n, n);
    for (Index r = 0; r < n; ++r) {
        Index lo = std::max<Index>(0, r - bandwidth);
        Index hi = std::min<Index>(n - 1, r + bandwidth);
        for (Index c = lo; c <= hi; ++c) {
            if (c == r || rng.chance(fill))
                coo.add(r, c, randValue(rng));
        }
    }
    return Csr::fromCoo(std::move(coo));
}

Csr
genUniform(Index rows, Index cols, double density, Rng &rng)
{
    via_assert(rows > 0 && cols > 0, "bad shape");
    via_assert(density > 0.0 && density <= 1.0, "bad density ",
               density);
    // Sample nnz positions without materializing the dense grid:
    // geometric skipping over the linearized index space.
    Coo coo(rows, cols);
    double total = double(rows) * double(cols);
    auto target = std::size_t(total * density);
    double skip_mean = total / double(std::max<std::size_t>(target,
                                                            1));
    double pos = 0.0;
    while (true) {
        // Exponential gap with mean skip_mean.
        double u = std::max(rng.uniform(), 1e-12);
        pos += -std::log(u) * skip_mean;
        if (pos >= total)
            break;
        auto linear = std::uint64_t(pos);
        coo.add(Index(linear / std::uint64_t(cols)),
                Index(linear % std::uint64_t(cols)),
                randValue(rng));
    }
    return Csr::fromCoo(std::move(coo));
}

Csr
genRmat(Index n, std::size_t nnz_target, Rng &rng)
{
    via_assert(n > 0 && (n & (n - 1)) == 0,
               "RMAT needs a power-of-two size, got ", n);
    const double a = 0.57, b = 0.19, c = 0.19; // d = 0.05
    Coo coo(n, n);
    for (std::size_t e = 0; e < nnz_target; ++e) {
        Index row = 0, col = 0;
        for (Index bit = n >> 1; bit > 0; bit >>= 1) {
            double p = rng.uniform();
            if (p < a) {
                // top-left: nothing to add
            } else if (p < a + b) {
                col |= bit;
            } else if (p < a + b + c) {
                row |= bit;
            } else {
                row |= bit;
                col |= bit;
            }
        }
        coo.add(row, col, randValue(rng));
    }
    coo.canonicalize();
    return Csr::fromCoo(std::move(coo));
}

Csr
genBandedCsr(Index n, Index bandwidth, double fill, Rng &rng)
{
    via_assert(n > 0 && bandwidth >= 0, "bad band parameters");
    std::vector<Index> row_ptr(std::size_t(n) + 1, 0);
    std::vector<Index> col_idx;
    std::vector<Value> values;
    // The band walk visits (r, c) in row-major order and never
    // repeats a position, so entries land CSR-sorted as drawn.
    for (Index r = 0; r < n; ++r) {
        Index lo = std::max<Index>(0, r - bandwidth);
        Index hi = std::min<Index>(n - 1, r + bandwidth);
        for (Index c = lo; c <= hi; ++c) {
            if (c == r || rng.chance(fill)) {
                col_idx.push_back(c);
                values.push_back(randValue(rng));
            }
        }
        row_ptr[std::size_t(r) + 1] = Index(col_idx.size());
    }
    return Csr::fromParts(n, n, std::move(row_ptr),
                          std::move(col_idx), std::move(values));
}

Csr
genRmatCsr(Index n, std::size_t nnz_target, Rng &rng)
{
    via_assert(n > 0 && (n & (n - 1)) == 0,
               "RMAT needs a power-of-two size, got ", n);
    const double a = 0.57, b = 0.19, c = 0.19; // d = 0.05
    auto draw_edge = [n, a, b, c](Rng &r, Index &row, Index &col) {
        row = 0;
        col = 0;
        for (Index bit = n >> 1; bit > 0; bit >>= 1) {
            double p = r.uniform();
            if (p < a) {
                // top-left: nothing to add
            } else if (p < a + b) {
                col |= bit;
            } else if (p < a + b + c) {
                row |= bit;
            } else {
                row |= bit;
                col |= bit;
            }
        }
    };

    // Pass 1: count edges per row on a copy of the stream. The
    // value draw is consumed and discarded so both passes read the
    // random sequence identically.
    std::vector<Index> row_ptr(std::size_t(n) + 1, 0);
    {
        Rng probe = rng;
        for (std::size_t e = 0; e < nnz_target; ++e) {
            Index row = 0, col = 0;
            draw_edge(probe, row, col);
            (void)randValue(probe);
            ++row_ptr[std::size_t(row) + 1];
        }
    }
    for (Index r = 0; r < n; ++r)
        row_ptr[std::size_t(r) + 1] += row_ptr[std::size_t(r)];

    // Pass 2: place each edge into its row's segment (consuming the
    // caller's rng, which therefore ends exactly as after genRmat).
    std::vector<Index> col_idx(nnz_target);
    std::vector<Value> values(nnz_target);
    std::vector<Index> next(row_ptr.begin(), row_ptr.end() - 1);
    for (std::size_t e = 0; e < nnz_target; ++e) {
        Index row = 0, col = 0;
        draw_edge(rng, row, col);
        const Value v = randValue(rng);
        const auto slot = std::size_t(next[std::size_t(row)]++);
        col_idx[slot] = col;
        values[slot] = v;
    }

    // Per-row sort + duplicate merge (summing in draw order via the
    // stable sort; exact zeros are kept, as in Coo::canonicalize).
    std::vector<Index> out_ptr(std::size_t(n) + 1, 0);
    std::vector<std::pair<Index, Value>> tmp;
    std::size_t w = 0;
    for (Index r = 0; r < n; ++r) {
        const auto lo = std::size_t(row_ptr[std::size_t(r)]);
        const auto hi = std::size_t(row_ptr[std::size_t(r) + 1]);
        tmp.clear();
        for (std::size_t i = lo; i < hi; ++i)
            tmp.emplace_back(col_idx[i], values[i]);
        std::stable_sort(tmp.begin(), tmp.end(),
                         [](const auto &x, const auto &y) {
                             return x.first < y.first;
                         });
        for (std::size_t i = 0; i < tmp.size();) {
            Index col = tmp[i].first;
            Value sum = tmp[i].second;
            std::size_t j = i + 1;
            for (; j < tmp.size() && tmp[j].first == col; ++j)
                sum += tmp[j].second;
            col_idx[w] = col;
            values[w] = sum;
            ++w;
            i = j;
        }
        out_ptr[std::size_t(r) + 1] = Index(w);
    }
    col_idx.resize(w);
    values.resize(w);
    return Csr::fromParts(n, n, std::move(out_ptr),
                          std::move(col_idx), std::move(values));
}

Csr
genBlocked(Index n, Index block_side, double block_fill,
           double inner_fill, Rng &rng)
{
    via_assert(block_side > 0 && block_side <= n,
               "bad block side ", block_side);
    Coo coo(n, n);
    Index grid = (n + block_side - 1) / block_side;
    for (Index br = 0; br < grid; ++br) {
        for (Index bc = 0; bc < grid; ++bc) {
            // Keep the diagonal blocks so no row is empty-ish.
            if (br != bc && !rng.chance(block_fill))
                continue;
            Index rlo = br * block_side;
            Index clo = bc * block_side;
            Index rhi = std::min(rlo + block_side, n);
            Index chi = std::min(clo + block_side, n);
            for (Index r = rlo; r < rhi; ++r)
                for (Index c = clo; c < chi; ++c)
                    if (rng.chance(inner_fill))
                        coo.add(r, c, randValue(rng));
        }
    }
    return Csr::fromCoo(std::move(coo));
}

Csr
genDiagHeavy(Index n, double off_diag, Rng &rng)
{
    via_assert(n > 0, "bad size");
    Coo coo(n, n);
    for (Index r = 0; r < n; ++r) {
        coo.add(r, r, Value(2.0 + rng.uniform()));
        // Poisson(off_diag) off-diagonal entries via thinning.
        auto extras = std::size_t(off_diag);
        if (rng.chance(off_diag - double(extras)))
            ++extras;
        for (std::size_t e = 0; e < extras; ++e) {
            auto c = Index(rng.below(std::uint64_t(n)));
            if (c != r)
                coo.add(r, c, randValue(rng));
        }
    }
    coo.canonicalize();
    return Csr::fromCoo(std::move(coo));
}

} // namespace via
