#include "trace/perfetto_export.hh"

#include <algorithm>
#include <cstdio>
#include <string>

namespace via
{

namespace
{

/** Escape a string for embedding in a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Event display name: mnemonic for instruction-ish records. */
std::string
eventName(const TraceEvent &ev)
{
    switch (ev.kind) {
      case TraceEventKind::InstRetired:
      case TraceEventKind::FivuBusy:
        return std::string(mnemonic(ev.op));
      default:
        return traceEventKindName(ev.kind);
    }
}

void
writeArgs(std::ostream &os, const TraceEvent &ev)
{
    os << "\"args\":{";
    switch (ev.kind) {
      case TraceEventKind::InstRetired:
        os << "\"seq\":" << ev.a0 << ",\"issue\":" << ev.a1
           << ",\"complete\":" << ev.a2;
        break;
      case TraceEventKind::CacheHit:
      case TraceEventKind::CacheMiss:
      case TraceEventKind::LsqForwardStall:
        os << "\"addr\":" << ev.a0;
        break;
      case TraceEventKind::MshrAlloc:
        os << "\"addr\":" << ev.a0 << ",\"mshr_stall\":" << ev.a1;
        break;
      case TraceEventKind::DramBurst:
        os << "\"bytes\":" << ev.a0
           << ",\"write\":" << (ev.a1 ? "true" : "false");
        break;
      case TraceEventKind::SspmReadPhase:
      case TraceEventKind::SspmWritePhase:
        os << "\"elements\":" << ev.a0;
        break;
      case TraceEventKind::SspmPortConflict:
        os << "\"extra_cycles\":" << ev.a0;
        break;
      case TraceEventKind::CamMatch:
      case TraceEventKind::CamMiss:
      case TraceEventKind::CamInsert:
      case TraceEventKind::CamOverflow:
        os << "\"key\":" << std::int64_t(ev.a0);
        break;
      default:
        os << "\"a0\":" << ev.a0;
        break;
    }
    os << "}";
}

} // namespace

void
writePerfetto(const TraceManager &trace, std::ostream &os)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Track naming: one pid for the machine, one tid per component.
    for (std::uint8_t c = 0;
         c < std::uint8_t(TraceComponent::COUNT); ++c) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << int(c) + 1
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << traceComponentName(TraceComponent(c)) << "\"}}";
    }

    for (const TraceEvent &ev : trace.events()) {
        sep();
        int tid = int(ev.comp) + 1;
        os << "{\"name\":\"" << jsonEscape(eventName(ev))
           << "\",\"cat\":\"" << traceComponentName(ev.comp)
           << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":"
           << ev.start << ",";
        if (ev.isSpan())
            os << "\"ph\":\"X\",\"dur\":" << (ev.end - ev.start)
               << ",";
        else
            os << "\"ph\":\"i\",\"s\":\"t\",";
        writeArgs(os, ev);
        os << "}";
    }

    for (const TracePhase &ph : trace.phases()) {
        sep();
        os << "{\"name\":\"" << jsonEscape(ph.name)
           << "\",\"cat\":\"kernel\",\"pid\":1,\"tid\":"
           << int(TraceComponent::Kernel) + 1 << ",\"ts\":"
           << ph.start << ",\"ph\":\"X\",\"dur\":"
           << (std::max(ph.end, ph.start + 1) - ph.start)
           << ",\"args\":{}}";
    }

    os << "\n],\"otherData\":{\"dropped_events\":" << trace.dropped()
       << "}}\n";
}

} // namespace via
