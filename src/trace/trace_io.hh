/**
 * @file
 * Driver-level tracing glue shared by via_sim and the bench
 * harnesses: the trace=/trace_format=/trace_limit=/trace_summary=
 * knobs, enabling a trace on a Machine, and writing the chosen
 * export format at the end of a run.
 */

#ifndef VIA_TRACE_TRACE_IO_HH
#define VIA_TRACE_TRACE_IO_HH

#include <string>

#include "simcore/config.hh"
#include "simcore/options.hh"
#include "simcore/types.hh"

namespace via
{

class Machine;

/** Parsed tracing knobs. */
struct TraceOptions
{
    std::string path;            //!< trace=PATH; empty = disabled
    std::string format = "perfetto"; //!< trace_format=
    std::size_t limit = 1u << 20;    //!< trace_limit= (ring events)
    bool summary = false;            //!< trace_summary=1

    /**
     * Read the knobs from a Config. fatal() on an unknown format.
     * trace_summary=1 alone (no trace=) still collects events for
     * the roll-up, just writes no file.
     */
    static TraceOptions fromConfig(const Config &cfg);

    /** True when any trace collection is requested. */
    bool
    active() const
    {
        return !path.empty() || summary;
    }
};

/**
 * Register the tracing keys (trace, trace_format, trace_limit,
 * trace_summary) with an Options registry; defaults mirror
 * TraceOptions.
 */
void addTraceOptions(Options &opts);

/** Enable tracing on @p m per the options (no-op when inactive). */
void enableTracing(Machine &m, const TraceOptions &opts);

/**
 * Export the machine's trace (if a path was given) and print the
 * roll-up to stdout (if trace_summary=1). @p suffix is inserted
 * before the path's extension, letting sweep points write distinct
 * per-Machine files.
 *
 * @return false if the output file could not be written
 */
bool finishTracing(Machine &m, const TraceOptions &opts,
                   const std::string &suffix = "");

} // namespace via

#endif // VIA_TRACE_TRACE_IO_HH
