/**
 * @file
 * Chrome trace-event JSON export (loadable in Perfetto / chrome://
 * tracing). One track (tid) per hardware component, kernel phases as
 * spans on their own track. Ticks are written as microseconds 1:1 so
 * the viewer's time axis reads directly in simulated cycles.
 */

#ifndef VIA_TRACE_PERFETTO_EXPORT_HH
#define VIA_TRACE_PERFETTO_EXPORT_HH

#include <ostream>

#include "trace/trace.hh"

namespace via
{

/** Write the manager's events as Chrome trace-event JSON. */
void writePerfetto(const TraceManager &trace, std::ostream &os);

} // namespace via

#endif // VIA_TRACE_PERFETTO_EXPORT_HH
