#include "trace/konata_export.hh"

#include <algorithm>
#include <string>
#include <vector>

namespace via
{

void
writeKonata(const TraceManager &trace, std::ostream &os)
{
    // A command line pinned to a cycle; stable sort preserves the
    // per-instruction ordering (S before E of the next stage).
    struct Cmd
    {
        Tick tick;
        std::string text;
    };
    std::vector<Cmd> cmds;

    std::uint64_t kid = 0;
    for (const TraceEvent &ev : trace.events()) {
        if (ev.kind != TraceEventKind::InstRetired)
            continue;
        Tick dispatch = ev.start;
        Tick commit = ev.end;
        Tick issue = Tick(ev.a1);
        Tick complete = Tick(ev.a2);
        std::string id = std::to_string(kid);
        std::string seq = std::to_string(ev.a0);

        cmds.push_back({dispatch, "I\t" + id + "\t" + seq + "\t0"});
        cmds.push_back({dispatch, "L\t" + id + "\t0\t" +
                                      std::string(mnemonic(ev.op)) +
                                      " #" + seq});
        cmds.push_back({dispatch, "S\t" + id + "\t0\tDp"});
        cmds.push_back({issue, "E\t" + id + "\t0\tDp"});
        cmds.push_back({issue, "S\t" + id + "\t0\tEx"});
        cmds.push_back({complete, "E\t" + id + "\t0\tEx"});
        cmds.push_back({complete, "S\t" + id + "\t0\tCm"});
        cmds.push_back({commit, "E\t" + id + "\t0\tCm"});
        cmds.push_back({commit, "R\t" + id + "\t" + seq + "\t0"});
        ++kid;
    }

    std::stable_sort(cmds.begin(), cmds.end(),
                     [](const Cmd &a, const Cmd &b) {
                         return a.tick < b.tick;
                     });

    os << "Kanata\t0004\n";
    Tick cur = cmds.empty() ? 0 : cmds.front().tick;
    os << "C=\t" << cur << "\n";
    for (const Cmd &c : cmds) {
        if (c.tick != cur) {
            os << "C\t" << (c.tick - cur) << "\n";
            cur = c.tick;
        }
        os << c.text << "\n";
    }
}

} // namespace via
