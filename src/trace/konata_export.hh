/**
 * @file
 * Konata pipeline-view export.
 *
 * Writes the InstRetired records as a Kanata 0004 log so the trace
 * can be opened in the Konata pipeline visualizer (one row per
 * dynamic instruction, stages Dp/Ex/Cm). The analytic core computes
 * all stage ticks up front, so the log is generated offline from the
 * finished ring buffer.
 */

#ifndef VIA_TRACE_KONATA_EXPORT_HH
#define VIA_TRACE_KONATA_EXPORT_HH

#include <ostream>

#include "trace/trace.hh"

namespace via
{

/** Write the manager's instruction events in Kanata format. */
void writeKonata(const TraceManager &trace, std::ostream &os);

} // namespace via

#endif // VIA_TRACE_KONATA_EXPORT_HH
