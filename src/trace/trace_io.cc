#include "trace/trace_io.hh"

#include <fstream>
#include <iostream>

#include "cpu/machine.hh"
#include "simcore/log.hh"
#include "trace/konata_export.hh"
#include "trace/perfetto_export.hh"
#include "trace/summary.hh"

namespace via
{

TraceOptions
TraceOptions::fromConfig(const Config &cfg)
{
    TraceOptions opts;
    opts.path = cfg.getString("trace", "");
    opts.format = cfg.getString("trace_format", "perfetto");
    opts.limit = std::size_t(cfg.getUInt("trace_limit", 1u << 20));
    opts.summary = cfg.getBool("trace_summary", false);
    if (opts.format != "perfetto" && opts.format != "konata")
        via_fatal("unknown trace_format '", opts.format,
                  "' (expected perfetto or konata)");
    return opts;
}

void
addTraceOptions(Options &opts)
{
    TraceOptions d;
    opts.addString("trace", "",
                   "write an event trace to this path")
        .addString("trace_format", d.format,
                   "trace export format: perfetto|konata")
        .addUInt("trace_limit", d.limit,
                 "event ring capacity (oldest dropped)", 1)
        .addBool("trace_summary", d.summary,
                 "print a per-component event roll-up");
}

void
enableTracing(Machine &m, const TraceOptions &opts)
{
    if (opts.active())
        m.enableTracing(opts.limit);
}

bool
finishTracing(Machine &m, const TraceOptions &opts,
              const std::string &suffix)
{
    TraceManager *trace = m.trace();
    if (!opts.active() || trace == nullptr)
        return true;
    trace->endPhase(m.cycles());

    if (!opts.path.empty()) {
        std::string path = opts.path;
        if (!suffix.empty()) {
            auto dot = path.rfind('.');
            auto slash = path.rfind('/');
            if (dot == std::string::npos ||
                (slash != std::string::npos && dot < slash))
                path += suffix;
            else
                path.insert(dot, suffix);
        }
        std::ofstream out(path);
        if (!out) {
            std::cerr << "cannot write trace file '" << path
                      << "'\n";
            return false;
        }
        if (opts.format == "konata")
            writeKonata(*trace, out);
        else
            writePerfetto(*trace, out);
        std::cerr << "trace: " << trace->events().size()
                  << " events (" << trace->dropped()
                  << " dropped) -> " << path << "\n";
    }

    if (opts.summary)
        printTraceSummary(summarizeTrace(*trace, m.cycles()),
                          std::cout);
    return true;
}

} // namespace via
