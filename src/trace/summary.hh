/**
 * @file
 * Post-run roll-up of a trace: per-component busy/stall breakdown.
 *
 * Busy time is the union of each component's span intervals (not the
 * sum — overlapping cache misses in flight count once), so for every
 * component busy + idle == the run's total cycles. This answers
 * "what bottlenecked this kernel" textually, without a viewer.
 */

#ifndef VIA_TRACE_SUMMARY_HH
#define VIA_TRACE_SUMMARY_HH

#include <array>
#include <cstdint>
#include <ostream>

#include "trace/trace.hh"

namespace via
{

/** Aggregated activity of one component. */
struct ComponentSummary
{
    std::uint64_t events = 0;   //!< records attributed to it
    Tick busy = 0;              //!< union of its span intervals
    Tick idle = 0;              //!< totalCycles - busy
};

/** The full roll-up. */
struct TraceSummary
{
    Tick totalCycles = 0;
    std::array<ComponentSummary,
               std::size_t(TraceComponent::COUNT)> comps{};
    std::uint64_t droppedEvents = 0;

    // Headline attribution counters.
    std::uint64_t insts = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t camOverflows = 0;
    std::uint64_t sspmPortConflictCycles = 0;

    const ComponentSummary &
    comp(TraceComponent c) const
    {
        return comps[std::size_t(c)];
    }
};

/**
 * Roll the trace up against a run of @p total_cycles (busy intervals
 * are clipped to [0, total_cycles]).
 */
TraceSummary summarizeTrace(const TraceManager &trace,
                            Tick total_cycles);

/** Print the breakdown as an aligned table. */
void printTraceSummary(const TraceSummary &summary, std::ostream &os);

} // namespace via

#endif // VIA_TRACE_SUMMARY_HH
