/**
 * @file
 * Simulation event tracing (the observability subsystem).
 *
 * A TraceManager is a bounded, per-Machine ring buffer of typed
 * timing events. Components hold a nullable TraceManager pointer and
 * emit through VIA_TRACE_EMIT, which compiles to a single null check
 * when tracing is off (and to nothing at all when the build defines
 * VIA_TRACE_DISABLED). Tracing is strictly observation-only: no hook
 * may change timing, statistics, or architectural state.
 *
 * Events fall in two classes:
 *   - timed events, emitted by the timing model with known ticks
 *     (instruction lifecycle, cache misses, DRAM bursts, FIVU
 *     phases);
 *   - staged events, emitted by the functional layer (SSPM/CAM
 *     semantics run at emit time, before the instruction's timing is
 *     known). They are buffered and stamped with the instruction's
 *     issue/complete window when the core folds it into the schedule
 *     (TraceManager::flushStaged).
 *
 * The ring drops the newest events once full and counts the drops,
 * so a trace of an arbitrarily long run has bounded memory.
 *
 * Exporters (perfetto_export, konata_export) and the post-run
 * summary (trace_summary) consume the finished buffer; see
 * docs/tracing.md for the event schema.
 */

#ifndef VIA_TRACE_TRACE_HH
#define VIA_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcodes.hh"
#include "simcore/types.hh"

namespace via
{

/** Hardware component an event is attributed to (one track each). */
enum class TraceComponent : std::uint8_t
{
    Core = 0,
    Lsq,
    CacheL1,
    CacheL2,
    Dram,
    Sspm,
    Cam,
    Fivu,
    Kernel,
    COUNT
};

/** Display name of a component ("core", "l1d", ...). */
const char *traceComponentName(TraceComponent c);

/** Typed trace record kinds. */
enum class TraceEventKind : std::uint8_t
{
    // Core: one record per retired instruction. Span runs from
    // dispatch to commit; a0=seq, a1=issue tick, a2=complete tick.
    InstRetired = 0,
    // Core: front-end redirect. Instant; a0=branch site.
    BranchMispredict,
    // LSQ: a load replayed against an in-flight store. Instant at
    // the forwarding store's completion; a0=address.
    LsqForwardStall,
    // Cache: tag probe outcomes. Instant at the access tick;
    // a0=line address.
    CacheHit,
    CacheMiss,
    // Cache: an MSHR tracked a miss. Span from issue to fill;
    // a0=line address, a1=cycles the miss waited for a free MSHR.
    MshrAlloc,
    // DRAM: one burst occupying the pipe. Span from pipe grant to
    // data return; a0=bytes, a1=1 for writes.
    DramBurst,
    // SSPM: port-limited element phases of one VIA instruction.
    // Span; a0=elements moved.
    SspmReadPhase,
    SspmWritePhase,
    // SSPM: a phase needed more than one cycle because the element
    // count exceeded the ports. Instant; a0=serialization cycles
    // beyond the first.
    SspmPortConflict,
    // CAM (staged from the functional layer): a0=key.
    CamMatch,
    CamMiss,
    CamInsert,
    CamOverflow,
    CamClear,
    // FIVU: unit occupancy for one VIA instruction. Span from
    // acceptance to architectural completion; a0=seq.
    FivuBusy,
    COUNT
};

/** Record kind name ("inst", "cache_miss", ...). */
const char *traceEventKindName(TraceEventKind k);

/** One trace record. POD; ~48 bytes, ring-buffer friendly. */
struct TraceEvent
{
    Tick start = 0;
    Tick end = 0; //!< == start for instant events
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
    std::uint64_t a2 = 0;
    TraceEventKind kind = TraceEventKind::InstRetired;
    TraceComponent comp = TraceComponent::Core;
    Op op = Op::Nop;

    bool isSpan() const { return end > start; }
};

/** A named kernel phase, rendered as a span on the kernel track. */
struct TracePhase
{
    std::string name;
    Tick start = 0;
    Tick end = 0;
};

/**
 * Bounded in-memory event sink. One per Machine: concurrent sweeps
 * each trace their own Machine, so no locking is needed and output
 * is deterministic at any thread count.
 */
class TraceManager
{
  public:
    /** @param capacity ring size in events (>= 1). */
    explicit TraceManager(std::size_t capacity);

    bool enabled() const { return _enabled; }

    /** Pause/resume collection (phases are always recorded). */
    void setEnabled(bool on) { _enabled = on; }

    /** Append one finished event; drops (and counts) when full. */
    void
    emit(const TraceEvent &ev)
    {
        if (_events.size() >= _capacity) {
            ++_dropped;
            return;
        }
        _events.push_back(ev);
    }

    /**
     * Buffer a functional-layer event whose ticks are not yet known.
     * It is stamped and moved into the ring by the next flushStaged.
     */
    void
    stage(TraceEventKind kind, TraceComponent comp, std::uint64_t a0,
          std::uint64_t a1 = 0)
    {
        TraceEvent ev;
        ev.kind = kind;
        ev.comp = comp;
        ev.a0 = a0;
        ev.a1 = a1;
        _staged.push_back(ev);
    }

    /**
     * Stamp all staged events with the owning instruction's
     * [issue, complete] window and append them to the ring.
     */
    void flushStaged(Tick start, Tick end, Op op);

    /** Open a kernel phase at @p tick, closing any open one. */
    void beginPhase(const std::string &name, Tick tick);

    /** Close the open phase at @p tick (no-op when none is open). */
    void endPhase(Tick tick);

    const std::vector<TraceEvent> &events() const { return _events; }
    const std::vector<TracePhase> &phases() const { return _phases; }

    /** Events rejected because the ring was full. */
    std::uint64_t dropped() const { return _dropped; }
    std::size_t capacity() const { return _capacity; }

  private:
    std::size_t _capacity;
    bool _enabled = true;
    std::vector<TraceEvent> _events;
    std::vector<TraceEvent> _staged;
    std::vector<TracePhase> _phases;
    std::uint64_t _dropped = 0;
};

} // namespace via

/**
 * Emission macro: zero work when the component has no manager (the
 * default) and zero code when traces are compiled out.
 */
#ifdef VIA_TRACE_DISABLED
#define VIA_TRACE_EMIT(mgr, ...)                                     \
    do {                                                             \
    } while (0)
#define VIA_TRACE_STAGE(mgr, ...)                                    \
    do {                                                             \
    } while (0)
#else
#define VIA_TRACE_EMIT(mgr, ...)                                     \
    do {                                                             \
        if ((mgr) != nullptr && (mgr)->enabled())                    \
            (mgr)->emit(__VA_ARGS__);                                \
    } while (0)
#define VIA_TRACE_STAGE(mgr, ...)                                    \
    do {                                                             \
        if ((mgr) != nullptr && (mgr)->enabled())                    \
            (mgr)->stage(__VA_ARGS__);                               \
    } while (0)
#endif

#endif // VIA_TRACE_TRACE_HH
