#include "trace/summary.hh"

#include <algorithm>
#include <iomanip>
#include <vector>

namespace via
{

namespace
{

/** Total length of the union of half-open intervals. */
Tick
unionLength(std::vector<std::pair<Tick, Tick>> &spans)
{
    if (spans.empty())
        return 0;
    std::sort(spans.begin(), spans.end());
    Tick total = 0;
    Tick lo = spans.front().first;
    Tick hi = spans.front().second;
    for (const auto &s : spans) {
        if (s.first > hi) {
            total += hi - lo;
            lo = s.first;
            hi = s.second;
        } else {
            hi = std::max(hi, s.second);
        }
    }
    return total + (hi - lo);
}

} // namespace

TraceSummary
summarizeTrace(const TraceManager &trace, Tick total_cycles)
{
    TraceSummary out;
    out.totalCycles = total_cycles;
    out.droppedEvents = trace.dropped();

    std::array<std::vector<std::pair<Tick, Tick>>,
               std::size_t(TraceComponent::COUNT)> spans;

    for (const TraceEvent &ev : trace.events()) {
        auto c = std::size_t(ev.comp);
        ++out.comps[c].events;

        // Occupancy interval: instructions count their execution
        // window (issue..complete); other spans count as recorded.
        Tick lo = ev.start;
        Tick hi = ev.end;
        if (ev.kind == TraceEventKind::InstRetired) {
            lo = Tick(ev.a1);
            hi = Tick(ev.a2);
        }
        lo = std::min(lo, total_cycles);
        hi = std::min(hi, total_cycles);
        if (hi > lo)
            spans[c].push_back({lo, hi});

        switch (ev.kind) {
          case TraceEventKind::InstRetired:
            ++out.insts;
            break;
          case TraceEventKind::BranchMispredict:
            ++out.mispredicts;
            break;
          case TraceEventKind::CacheMiss:
            ++out.cacheMisses;
            break;
          case TraceEventKind::CamOverflow:
            ++out.camOverflows;
            break;
          case TraceEventKind::SspmPortConflict:
            out.sspmPortConflictCycles += ev.a0;
            break;
          default:
            break;
        }
    }

    for (std::size_t c = 0;
         c < std::size_t(TraceComponent::COUNT); ++c) {
        out.comps[c].busy = unionLength(spans[c]);
        out.comps[c].idle = total_cycles - out.comps[c].busy;
    }
    return out;
}

void
printTraceSummary(const TraceSummary &summary, std::ostream &os)
{
    // The percentage formatting below must not leak into whatever
    // the caller prints next (e.g. a stats JSON dump on the same
    // stream).
    std::ios_base::fmtflags flags = os.flags();
    std::streamsize precision = os.precision();

    os << "trace summary (" << summary.totalCycles
       << " cycles):\n";
    os << "  " << std::left << std::setw(8) << "component"
       << std::right << std::setw(12) << "events" << std::setw(12)
       << "busy" << std::setw(12) << "stall/idle" << std::setw(12)
       << "total" << "  busy%\n";
    for (std::size_t c = 0;
         c < std::size_t(TraceComponent::COUNT); ++c) {
        const ComponentSummary &cs = summary.comps[c];
        if (cs.events == 0)
            continue;
        double pct = summary.totalCycles
                         ? 100.0 * double(cs.busy) /
                               double(summary.totalCycles)
                         : 0.0;
        os << "  " << std::left << std::setw(8)
           << traceComponentName(TraceComponent(c)) << std::right
           << std::setw(12) << cs.events << std::setw(12) << cs.busy
           << std::setw(12) << cs.idle << std::setw(12)
           << (cs.busy + cs.idle) << "  " << std::fixed
           << std::setprecision(1) << pct << "%\n";
        os.flags(flags);
        os.precision(precision);
    }
    os << "  insts " << summary.insts << ", mispredicts "
       << summary.mispredicts << ", cache misses "
       << summary.cacheMisses << ", CAM overflows "
       << summary.camOverflows << ", SSPM port conflict cycles "
       << summary.sspmPortConflictCycles << "\n";
    if (summary.droppedEvents)
        os << "  NOTE: ring full, " << summary.droppedEvents
           << " events dropped (raise trace_limit)\n";
}

} // namespace via
