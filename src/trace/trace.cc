#include "trace/trace.hh"

#include <algorithm>

#include "simcore/log.hh"

namespace via
{

const char *
traceComponentName(TraceComponent c)
{
    switch (c) {
      case TraceComponent::Core:
        return "core";
      case TraceComponent::Lsq:
        return "lsq";
      case TraceComponent::CacheL1:
        return "l1d";
      case TraceComponent::CacheL2:
        return "l2";
      case TraceComponent::Dram:
        return "dram";
      case TraceComponent::Sspm:
        return "sspm";
      case TraceComponent::Cam:
        return "cam";
      case TraceComponent::Fivu:
        return "fivu";
      case TraceComponent::Kernel:
        return "kernel";
      case TraceComponent::COUNT:
        break;
    }
    return "?";
}

const char *
traceEventKindName(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::InstRetired:
        return "inst";
      case TraceEventKind::BranchMispredict:
        return "mispredict";
      case TraceEventKind::LsqForwardStall:
        return "fwd_stall";
      case TraceEventKind::CacheHit:
        return "hit";
      case TraceEventKind::CacheMiss:
        return "miss";
      case TraceEventKind::MshrAlloc:
        return "mshr";
      case TraceEventKind::DramBurst:
        return "burst";
      case TraceEventKind::SspmReadPhase:
        return "sspm_read";
      case TraceEventKind::SspmWritePhase:
        return "sspm_write";
      case TraceEventKind::SspmPortConflict:
        return "port_conflict";
      case TraceEventKind::CamMatch:
        return "cam_match";
      case TraceEventKind::CamMiss:
        return "cam_miss";
      case TraceEventKind::CamInsert:
        return "cam_insert";
      case TraceEventKind::CamOverflow:
        return "cam_overflow";
      case TraceEventKind::CamClear:
        return "cam_clear";
      case TraceEventKind::FivuBusy:
        return "fivu_busy";
      case TraceEventKind::COUNT:
        break;
    }
    return "?";
}

TraceManager::TraceManager(std::size_t capacity)
    : _capacity(std::max<std::size_t>(capacity, 1))
{
    _events.reserve(std::min<std::size_t>(_capacity, 1u << 16));
}

void
TraceManager::flushStaged(Tick start, Tick end, Op op)
{
    for (TraceEvent &ev : _staged) {
        ev.start = start;
        ev.end = std::max(start, end);
        ev.op = op;
        emit(ev);
    }
    _staged.clear();
}

void
TraceManager::beginPhase(const std::string &name, Tick tick)
{
    endPhase(tick);
    _phases.push_back(TracePhase{name, tick, tick});
}

void
TraceManager::endPhase(Tick tick)
{
    if (_phases.empty() || _phases.back().end != _phases.back().start)
        return;
    _phases.back().end = std::max(tick, _phases.back().start + 1);
}

} // namespace via
