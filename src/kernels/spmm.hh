/**
 * @file
 * Sparse matrix-matrix multiplication C = A * B (paper Algorithm 3,
 * Section VII-C).
 *
 * The classic inner-product formulation: A in CSR, B in CSC; every
 * (row, column) pair intersects two sorted index lists ("index
 * matching"). The baseline does the two-pointer merge the way
 * scalar library code does. The VIA kernel loads each A row into
 * the CAM once and then streams every B column through vidx.mul.c,
 * turning the entire search into one instruction per VL elements
 * (paper Figure 4).
 */

#ifndef VIA_KERNELS_SPMM_HH
#define VIA_KERNELS_SPMM_HH

#include "cpu/machine.hh"
#include "sparse/csc.hh"
#include "sparse/csr.hh"

namespace via::kernels
{

/** Result of one SpMM run. */
struct SpmmResult
{
    Csr c;
    Tick cycles = 0;
};

/** Scalar two-pointer intersection baseline. */
SpmmResult spmmScalarInner(Machine &m, const Csr &a, const Csc &b);

/** VIA CAM index-matching kernel (Figure 4). */
SpmmResult spmmViaInner(Machine &m, const Csr &a, const Csc &b);

} // namespace via::kernels

#endif // VIA_KERNELS_SPMM_HH
