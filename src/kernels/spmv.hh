/**
 * @file
 * Sparse matrix-vector multiplication kernels (paper Section VII-A).
 *
 * Every variant runs on the simulated machine: the software versions
 * use the baseline vector ISA (gathers, expands, reductions) and the
 * VIA versions use the vidx.* extensions. All compute y = A x with
 * float32 values and return the result read back from simulated
 * memory, so callers can verify against Csr::multiply().
 *
 * Variants:
 *   - scalar CSR           (Algorithm 1, one element at a time)
 *   - vector CSR           (Figure 2: gather on x, per-row reduce)
 *   - vector SPC5          (masked row blocks, unit-stride x)
 *   - vector Sell-C-sigma  (chunked rows, gather on x)
 *   - vector CSB           (software blocks: gather x, gather/scatter
 *                           y partials — the store-load forwarding
 *                           pattern Section II-C describes)
 *   - VIA CSR / SPC5 / Sell-C-sigma / CSB (Section IV)
 */

#ifndef VIA_KERNELS_SPMV_HH
#define VIA_KERNELS_SPMV_HH

#include "cpu/machine.hh"
#include "sparse/csb.hh"
#include "sparse/csr.hh"
#include "sparse/dense.hh"
#include "sparse/sell_c_sigma.hh"
#include "sparse/spc5.hh"

namespace via::kernels
{

/** Result of one kernel run on a machine. */
struct SpmvResult
{
    DenseVector y;   //!< result read back from simulated memory
    Tick cycles = 0; //!< makespan of the kernel's instructions
};

SpmvResult spmvScalarCsr(Machine &m, const Csr &a,
                         const DenseVector &x);
SpmvResult spmvVectorCsr(Machine &m, const Csr &a,
                         const DenseVector &x);
SpmvResult spmvVectorSpc5(Machine &m, const Spc5 &a,
                          const DenseVector &x);
SpmvResult spmvVectorSell(Machine &m, const SellCSigma &a,
                          const DenseVector &x);
SpmvResult spmvVectorCsb(Machine &m, const Csb &a,
                         const DenseVector &x);
/**
 * Scalar CSB (the reference CSB implementation is scalar): per
 * element, unpack the merged index, read x, accumulate y in memory.
 */
SpmvResult spmvScalarCsb(Machine &m, const Csb &a,
                         const DenseVector &x);

SpmvResult spmvViaCsr(Machine &m, const Csr &a, const DenseVector &x);
SpmvResult spmvViaSpc5(Machine &m, const Spc5 &a,
                       const DenseVector &x);
SpmvResult spmvViaSell(Machine &m, const SellCSigma &a,
                       const DenseVector &x);
SpmvResult spmvViaCsb(Machine &m, const Csb &a, const DenseVector &x);

/**
 * Resident-matrix entry points (the serving subsystem's fast path).
 *
 * The one-shot kernels above upload their matrix operands on every
 * call, so a second run on the same machine touches fresh, cold
 * addresses. The Image/At split uploads the matrix once and emits
 * the kernel body against the recorded base addresses: consecutive
 * runs (a request batch against one resident matrix) re-walk the
 * same lines with warm caches, and a checkpoint captured after a
 * warm run restores the resident state for every fan-out batch.
 * The dense x/y pair is still allocated per run — each request
 * brings its own vector.
 *
 * A one-shot call is exactly upload + At, so the two paths emit
 * bit-identical instruction streams.
 */

/** Base addresses of a CSR matrix uploaded once. */
struct CsrImage
{
    Addr rowPtr = 0, colIdx = 0, values = 0;
};
/** Base addresses of an SPC5 matrix uploaded once. */
struct Spc5Image
{
    Addr values = 0, blockRow = 0, blockCol = 0, blockMask = 0;
};
/** Base addresses of a Sell-C-sigma matrix uploaded once. */
struct SellImage
{
    Addr colIdx = 0, values = 0, chunkPtr = 0, rowPerm = 0;
};
/** Base addresses of a CSB matrix uploaded once. */
struct CsbImage
{
    Addr packedIdx = 0, values = 0, blockPtr = 0;
};

CsrImage uploadCsr(Machine &m, const Csr &a);
Spc5Image uploadSpc5(Machine &m, const Spc5 &a);
SellImage uploadSell(Machine &m, const SellCSigma &a);
CsbImage uploadCsb(Machine &m, const Csb &a);

SpmvResult spmvVectorCsrAt(Machine &m, const Csr &a,
                           const CsrImage &img, const DenseVector &x);
SpmvResult spmvViaCsrAt(Machine &m, const Csr &a, const CsrImage &img,
                        const DenseVector &x);
SpmvResult spmvVectorSpc5At(Machine &m, const Spc5 &a,
                            const Spc5Image &img,
                            const DenseVector &x);
SpmvResult spmvViaSpc5At(Machine &m, const Spc5 &a,
                         const Spc5Image &img, const DenseVector &x);
SpmvResult spmvVectorSellAt(Machine &m, const SellCSigma &a,
                            const SellImage &img,
                            const DenseVector &x);
SpmvResult spmvViaSellAt(Machine &m, const SellCSigma &a,
                         const SellImage &img, const DenseVector &x);
SpmvResult spmvVectorCsbAt(Machine &m, const Csb &a,
                           const CsbImage &img, const DenseVector &x);
SpmvResult spmvViaCsbAt(Machine &m, const Csb &a, const CsbImage &img,
                        const DenseVector &x);

/**
 * The CSB block side the VIA kernel wants for a machine: half the
 * SSPM entries (input chunk + accumulator chunk fill the SRAM).
 */
Index viaCsbBeta(const Machine &m);

} // namespace via::kernels

#endif // VIA_KERNELS_SPMV_HH
