/**
 * @file
 * Sparse matrix-vector multiplication kernels (paper Section VII-A).
 *
 * Every variant runs on the simulated machine: the software versions
 * use the baseline vector ISA (gathers, expands, reductions) and the
 * VIA versions use the vidx.* extensions. All compute y = A x with
 * float32 values and return the result read back from simulated
 * memory, so callers can verify against Csr::multiply().
 *
 * Variants:
 *   - scalar CSR           (Algorithm 1, one element at a time)
 *   - vector CSR           (Figure 2: gather on x, per-row reduce)
 *   - vector SPC5          (masked row blocks, unit-stride x)
 *   - vector Sell-C-sigma  (chunked rows, gather on x)
 *   - vector CSB           (software blocks: gather x, gather/scatter
 *                           y partials — the store-load forwarding
 *                           pattern Section II-C describes)
 *   - VIA CSR / SPC5 / Sell-C-sigma / CSB (Section IV)
 */

#ifndef VIA_KERNELS_SPMV_HH
#define VIA_KERNELS_SPMV_HH

#include "cpu/machine.hh"
#include "sparse/csb.hh"
#include "sparse/csr.hh"
#include "sparse/dense.hh"
#include "sparse/sell_c_sigma.hh"
#include "sparse/spc5.hh"

namespace via::kernels
{

/** Result of one kernel run on a machine. */
struct SpmvResult
{
    DenseVector y;   //!< result read back from simulated memory
    Tick cycles = 0; //!< makespan of the kernel's instructions
};

SpmvResult spmvScalarCsr(Machine &m, const Csr &a,
                         const DenseVector &x);
SpmvResult spmvVectorCsr(Machine &m, const Csr &a,
                         const DenseVector &x);
SpmvResult spmvVectorSpc5(Machine &m, const Spc5 &a,
                          const DenseVector &x);
SpmvResult spmvVectorSell(Machine &m, const SellCSigma &a,
                          const DenseVector &x);
SpmvResult spmvVectorCsb(Machine &m, const Csb &a,
                         const DenseVector &x);
/**
 * Scalar CSB (the reference CSB implementation is scalar): per
 * element, unpack the merged index, read x, accumulate y in memory.
 */
SpmvResult spmvScalarCsb(Machine &m, const Csb &a,
                         const DenseVector &x);

SpmvResult spmvViaCsr(Machine &m, const Csr &a, const DenseVector &x);
SpmvResult spmvViaSpc5(Machine &m, const Spc5 &a,
                       const DenseVector &x);
SpmvResult spmvViaSell(Machine &m, const SellCSigma &a,
                       const DenseVector &x);
SpmvResult spmvViaCsb(Machine &m, const Csb &a, const DenseVector &x);

/**
 * The CSB block side the VIA kernel wants for a machine: half the
 * SSPM entries (input chunk + accumulator chunk fill the SRAM).
 */
Index viaCsbBeta(const Machine &m);

} // namespace via::kernels

#endif // VIA_KERNELS_SPMV_HH
