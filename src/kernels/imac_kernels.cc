#include "kernels/backend_kernels.hh"

#include <algorithm>

#include "kernels/kernel_utils.hh"
#include "kernels/reference.hh"
#include "simcore/log.hh"

namespace via::kernels
{

namespace
{

constexpr ElemType VT = ElemType::F32;
constexpr ElemType IT = ElemType::I32;

/** Shared upload of the dense operand and output buffer. */
struct XY
{
    Addr x = 0;
    Addr y = 0;
};

XY
uploadXY(Machine &m, const DenseVector &x, Index rows)
{
    XY a;
    a.x = upload(m, x);
    a.y = allocValues(m, std::size_t(rows));
    return a;
}

/** Canonicalize the merge output (mirrors spma.cc). */
Csr
assembleResult(const Machine &m, Addr c_col, Addr c_val,
               const std::vector<Index> &c_row_ptr, Index rows,
               Index cols)
{
    auto nnz = std::size_t(c_row_ptr.back());
    std::vector<Index> cols_out = downloadIndices(m, c_col, nnz);
    DenseVector vals_out = downloadValues(m, c_val, nnz);
    Coo coo(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index k = c_row_ptr[std::size_t(r)];
             k < c_row_ptr[std::size_t(r) + 1]; ++k)
            coo.add(r, cols_out[std::size_t(k)],
                    vals_out[std::size_t(k)]);
    return Csr::fromCoo(std::move(coo));
}

} // namespace

SpmvResult
spmvImacCsr(Machine &m, const Csr &a, const DenseVector &x)
{
    return spmvImacCsrAt(m, a, uploadCsr(m, a), x);
}

SpmvResult
spmvImacCsrAt(Machine &m, const Csr &a, const CsrImage &img,
              const DenseVector &x)
{
    Addr row_ptr = img.rowPtr;
    Addr col_idx = img.colIdx;
    Addr values = img.values;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    VReg v_val{0}, v_col{1}, v_acc{3};
    SReg s_end{1}, s_acc{5}, s_k{0}, s_r{7};

    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_end, row_ptr + 4 * (Addr(r) + 1), 4);
        m.vbroadcastF(v_acc, 0.0);
        Index lo = a.rowPtr()[std::size_t(r)];
        Index end = a.rowPtr()[std::size_t(r) + 1];
        for (Index k = lo; k < end; k += vl) {
            int n = std::min<Index>(vl, end - k);
            m.vload(v_val, values + 4 * Addr(k), VT, n);
            m.vload(v_col, col_idx + 4 * Addr(k), IT, n);
            // Gather + FMA fuse into the MAC unit; lanes whose x
            // line sits in the row buffer skip the cache.
            m.vimacF(v_acc, xy.x, v_col, v_val, n);
            m.salu(s_k, k + vl, s_k);
            m.sbranch(s_k);
        }
        m.vredsumF(s_acc, v_acc);
        m.sstoreF(xy.y + 4 * Addr(r), s_acc, VT);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvImacSpc5(Machine &m, const Spc5 &a, const DenseVector &x)
{
    return spmvImacSpc5At(m, a, uploadSpc5(m, a), x);
}

SpmvResult
spmvImacSpc5At(Machine &m, const Spc5 &a, const Spc5Image &img,
               const DenseVector &x)
{
    // SPC5 reads x unit-stride per block: there is no indexed
    // traffic for the MAC unit to capture, so the plain vector
    // kernel is the IndexMAC machine's best SPC5 code.
    return spmvVectorSpc5At(m, a, img, x);
}

SpmvResult
spmvImacSell(Machine &m, const SellCSigma &a, const DenseVector &x)
{
    return spmvImacSellAt(m, a, uploadSell(m, a), x);
}

SpmvResult
spmvImacSellAt(Machine &m, const SellCSigma &a, const SellImage &img,
               const DenseVector &x)
{
    Addr col_idx = img.colIdx;
    Addr values = img.values;
    Addr chunk_ptr = img.chunkPtr;
    Addr row_perm = img.rowPerm;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    via_assert(a.c() == Index(vl), "chunk height mismatch");

    VReg v_val{0}, v_col{1}, v_acc{3}, v_rows{4};
    SReg s_w{1}, s_j{0}, s_ch{7};

    for (Index ch = 0; ch < a.numChunks(); ++ch) {
        m.sload(s_w, chunk_ptr + 4 * (Addr(ch) + 1), 4);
        m.vbroadcastF(v_acc, 0.0);
        Index base = a.chunkPtr()[std::size_t(ch)];
        Index width = a.chunkWidth()[std::size_t(ch)];
        int lanes = int(std::min<Index>(vl, a.rows() - ch * vl));
        for (Index j = 0; j < width; ++j) {
            Addr slice = 4 * Addr(base + j * vl);
            m.vload(v_val, values + slice, VT, lanes);
            m.vload(v_col, col_idx + slice, IT, lanes);
            m.vimacF(v_acc, xy.x, v_col, v_val, lanes);
            m.salu(s_j, j + 1, s_j);
            m.sbranch(s_j);
        }
        m.vload(v_rows, row_perm + 4 * Addr(ch) * Addr(vl), IT,
                lanes);
        m.vscatter(xy.y, v_rows, v_acc, VT, lanes);
        m.salu(s_ch, ch + 1, s_ch);
        m.sbranch(s_ch);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvImacCsb(Machine &m, const Csb &a, const DenseVector &x)
{
    return spmvImacCsbAt(m, a, uploadCsb(m, a), x);
}

SpmvResult
spmvImacCsbAt(Machine &m, const Csb &a, const CsbImage &img,
              const DenseVector &x)
{
    Addr packed = img.packedIdx;
    Addr values = img.values;
    Addr block_ptr = img.blockPtr;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    const Index beta = a.beta();
    const auto col_bits = a.colBits();

    VReg v_idx{0}, v_val{1}, v_col{2}, v_row{3}, v_prod{6};
    SReg s_end{1}, s_k{0}, s_b{7};

    Index bcols = a.blockCols();
    for (Index b = 0; b < a.numBlocks(); ++b) {
        m.sload(s_end, block_ptr + 4 * (Addr(b) + 1), 4);
        Index lo = a.blockPtr()[std::size_t(b)];
        Index end = a.blockPtr()[std::size_t(b) + 1];
        if (lo == end) {
            m.sbranch(s_end); // skip empty block
            continue;
        }
        Addr row_base = xy.y + 4 * Addr(b / bcols) * Addr(beta);
        Addr col_base = xy.x + 4 * Addr(b % bcols) * Addr(beta);
        for (Index k = lo; k < end; k += vl) {
            int n = std::min<Index>(vl, end - k);
            m.vload(v_idx, packed + 4 * Addr(k), IT, n);
            m.vload(v_val, values + 4 * Addr(k), VT, n);
            m.vandI(v_col, v_idx, beta - 1, n);
            m.vshrI(v_row, v_idx, col_bits, n);
            // x gather and y update both run through the MAC unit;
            // in-order lanes make duplicate rows combine without
            // the vconflict/vmergeIdx sequence the vector kernel
            // needs.
            m.vbroadcastF(v_prod, 0.0);
            m.vimacF(v_prod, col_base, v_col, v_val, n);
            m.vimacStF(row_base, v_row, v_prod, n);
            m.salu(s_k, k + vl, s_k);
            m.sbranch(s_k);
        }
        m.salu(s_b, b + 1, s_b);
        m.sbranch(s_b);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmaResult
spmaImacCsr(Machine &m, const Csr &a, const Csr &b)
{
    via_assert(a.rows() == b.rows() && a.cols() == b.cols(),
               "SpMA shape mismatch");
    Addr a_ptr = upload(m, a.rowPtr());
    Addr a_col = upload(m, a.colIdx());
    Addr a_val = upload(m, a.values());
    Addr b_ptr = upload(m, b.rowPtr());
    Addr b_col = upload(m, b.colIdx());
    Addr b_val = upload(m, b.values());

    std::size_t worst = a.nnz() + b.nnz();
    Addr c_col = m.mem().alloc(worst * sizeof(Index));
    Addr c_val = m.mem().alloc(worst * sizeof(Value));
    Addr c_ptr = m.mem().alloc((std::size_t(a.rows()) + 1) *
                               sizeof(Index));
    // Dense per-row accumulator: conflict-free vimac.st.f updates in
    // exchange for a cols-sized buffer (the footprint honesty note
    // in backend_kernels.hh).
    Addr acc = allocValues(m, std::size_t(a.cols()));

    const int vl = int(m.vl());
    VReg v_col{0}, v_val{1}, v_keys{2}, v_out{3}, v_zero{4};
    SReg s_ea{0}, s_eb{1}, s_acol{2}, s_bcol{3}, s_v{4}, s_k{5},
        s_out{6}, s_r{7};

    std::vector<Index> c_row_ptr(std::size_t(a.rows()) + 1, 0);
    Index out = 0;
    m.sstore(c_ptr, s_out, 4);
    m.vbroadcastF(v_zero, 0.0);

    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_ea, a_ptr + 4 * (Addr(r) + 1), 4);
        m.sload(s_eb, b_ptr + 4 * (Addr(r) + 1), 4);
        Index ka = a.rowPtr()[std::size_t(r)];
        Index kb = b.rowPtr()[std::size_t(r)];
        Index ea = a.rowPtr()[std::size_t(r) + 1];
        Index eb = b.rowPtr()[std::size_t(r) + 1];

        // Phase 1: both rows accumulate into the dense buffer with
        // vimac.st.f — matching columns combine in the MAC unit.
        for (Index k = ka; k < ea; k += vl) {
            int n = std::min<Index>(vl, ea - k);
            m.vload(v_col, a_col + 4 * Addr(k), IT, n);
            m.vload(v_val, a_val + 4 * Addr(k), VT, n);
            m.vimacStF(acc, v_col, v_val, n);
            m.salu(s_k, k + vl, s_k);
            m.sbranch(s_k);
        }
        for (Index k = kb; k < eb; k += vl) {
            int n = std::min<Index>(vl, eb - k);
            m.vload(v_col, b_col + 4 * Addr(k), IT, n);
            m.vload(v_val, b_val + 4 * Addr(k), VT, n);
            m.vimacStF(acc, v_col, v_val, n);
            m.salu(s_k, k + vl, s_k);
            m.sbranch(s_k);
        }

        // Phase 2: a column-only scalar merge names the union (the
        // values already live in the accumulator, so this walk loads
        // half of what the full merge does).
        Index row_start = out;
        while (ka < ea && kb < eb) {
            m.sload(s_acol, a_col + 4 * Addr(ka), 4);
            m.sload(s_bcol, b_col + 4 * Addr(kb), 4);
            m.salu(s_v, 0, s_acol, s_bcol); // compare
            Index ca = a.colIdx()[std::size_t(ka)];
            Index cb = b.colIdx()[std::size_t(kb)];
            m.sbranchData(s_v, 1, ca == cb);
            if (ca != cb)
                m.sbranchData(s_v, 2, ca < cb);
            if (ca == cb) {
                m.sstore(c_col + 4 * Addr(out), s_acol, 4);
                m.salu(s_ea, ka + 1, s_ea);
                m.salu(s_eb, kb + 1, s_eb);
                ++ka;
                ++kb;
            } else if (ca < cb) {
                m.sstore(c_col + 4 * Addr(out), s_acol, 4);
                m.salu(s_ea, ka + 1, s_ea);
                ++ka;
            } else {
                m.sstore(c_col + 4 * Addr(out), s_bcol, 4);
                m.salu(s_eb, kb + 1, s_eb);
                ++kb;
            }
            m.salu(s_out, out + 1, s_out);
            ++out;
        }
        while (ka < ea) {
            m.sload(s_acol, a_col + 4 * Addr(ka), 4);
            m.sstore(c_col + 4 * Addr(out), s_acol, 4);
            m.salu(s_ea, ka + 1, s_ea);
            m.sbranch(s_ea);
            ++ka;
            ++out;
        }
        while (kb < eb) {
            m.sload(s_bcol, b_col + 4 * Addr(kb), 4);
            m.sstore(c_col + 4 * Addr(out), s_bcol, 4);
            m.salu(s_eb, kb + 1, s_eb);
            m.sbranch(s_eb);
            ++kb;
            ++out;
        }

        // Phase 3: gather the accumulated values at the union
        // columns, then scatter zeros to clear exactly the touched
        // slots for the next row.
        Index cnt = out - row_start;
        for (Index i = 0; i < cnt; i += vl) {
            int n = std::min<Index>(vl, cnt - i);
            m.vload(v_keys, c_col + 4 * Addr(row_start + i), IT, n);
            m.vgather(v_out, acc, v_keys, VT, n);
            m.vstore(c_val + 4 * Addr(row_start + i), v_out, VT, n,
                     s_out);
            m.vscatter(acc, v_keys, v_zero, VT, n);
            m.salu(s_k, i + vl, s_k);
            m.sbranch(s_k);
        }
        m.sstore(c_ptr + 4 * (Addr(r) + 1), s_out, 4);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
        c_row_ptr[std::size_t(r) + 1] = out;
    }

    return SpmaResult{assembleResult(m, c_col, c_val, c_row_ptr,
                                     a.rows(), a.cols()),
                      m.cycles()};
}

SpmmResult
spmmImacGustavson(Machine &m, const Csr &a, const Csc &b)
{
    via_assert(a.cols() == b.rows(), "SpMM shape mismatch");
    // Gustavson walks B by rows; transpose the CSC operand
    // host-side (a format conversion, like Spc5::fromCsr — outside
    // the measured instruction stream, as all conversions are).
    Coo bt(b.rows(), b.cols());
    for (Index j = 0; j < b.cols(); ++j)
        for (Index k = b.colPtr()[std::size_t(j)];
             k < b.colPtr()[std::size_t(j) + 1]; ++k)
            bt.add(b.rowIdx()[std::size_t(k)], j,
                   b.values()[std::size_t(k)]);
    Csr bs = Csr::fromCoo(std::move(bt));

    Addr a_ptr = upload(m, a.rowPtr());
    Addr a_col = upload(m, a.colIdx());
    Addr a_val = upload(m, a.values());
    Addr bs_ptr = upload(m, bs.rowPtr());
    Addr bs_col = upload(m, bs.colIdx());
    Addr bs_val = upload(m, bs.values());

    std::size_t bound = std::size_t(a.rows()) *
                        std::size_t(b.cols());
    std::size_t alt = a.nnz() * std::size_t(std::max<Index>(
                                    bs.maxRowNnz(), 1));
    bound = std::min(bound, alt + 1);
    Addr c_col = m.mem().alloc(bound * sizeof(Index));
    Addr c_val = m.mem().alloc(bound * sizeof(Value));
    Addr c_ptr = m.mem().alloc((std::size_t(a.rows()) + 1) *
                               sizeof(Index));
    // Dense row accumulator plus a touch-mark array: the marks turn
    // the extraction into a chunk scan instead of a full-row
    // re-merge.
    Addr acc = allocValues(m, std::size_t(b.cols()));
    Addr mark = allocValues(m, std::size_t(b.cols()));

    const int vl = int(m.vl());
    VReg v_bcol{0}, v_bval{1}, v_av{2}, v_prod{3}, v_ones{4},
        v_mk{5};
    SReg s_ka{0}, s_kb{1}, s_col{2}, s_av{3}, s_v{4}, s_cnt{5},
        s_out{6}, s_k{7}, s_i{8}, s_r{9}, s_zero{10};

    std::vector<Index> c_row_ptr(std::size_t(a.rows()) + 1, 0);
    Index out = 0;
    std::vector<char> touched(std::size_t(b.cols()), 0);

    m.sstore(c_ptr, s_out, 4);
    m.vbroadcastF(v_ones, 1.0);
    m.simm(s_zero, 0);
    m.setSregF(s_zero, 0.0);

    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_ka, a_ptr + 4 * (Addr(r) + 1), 4);
        Index a_lo = a.rowPtr()[std::size_t(r)];
        Index a_hi = a.rowPtr()[std::size_t(r) + 1];
        if (a_lo == a_hi) {
            m.sbranch(s_ka);
            m.sstore(c_ptr + 4 * (Addr(r) + 1), s_out, 4);
            c_row_ptr[std::size_t(r) + 1] = out;
            continue;
        }
        // Row-times-matrix: every a(r, k) scales B's row k into the
        // accumulator through the MAC unit.
        for (Index k = a_lo; k < a_hi; ++k) {
            m.sload(s_col, a_col + 4 * Addr(k), 4);
            m.sloadF(s_av, a_val + 4 * Addr(k), VT);
            Index acol = a.colIdx()[std::size_t(k)];
            m.sload(s_kb, bs_ptr + 4 * (Addr(acol) + 1), 4, s_col);
            m.vbroadcastF(v_av, double(a.values()[std::size_t(k)]));
            Index b_lo = bs.rowPtr()[std::size_t(acol)];
            Index b_hi = bs.rowPtr()[std::size_t(acol) + 1];
            for (Index kk = b_lo; kk < b_hi; kk += vl) {
                int n = std::min<Index>(vl, b_hi - kk);
                m.vload(v_bcol, bs_col + 4 * Addr(kk), IT, n);
                m.vload(v_bval, bs_val + 4 * Addr(kk), VT, n);
                m.vmulF(v_prod, v_bval, v_av, n);
                m.vimacStF(acc, v_bcol, v_prod, n);
                m.vimacStF(mark, v_bcol, v_ones, n);
                for (Index t = kk; t < kk + n; ++t)
                    touched[std::size_t(
                        bs.colIdx()[std::size_t(t)])] = 1;
                m.salu(s_k, kk + vl, s_k);
                m.sbranch(s_k);
            }
            m.salu(s_i, k + 1, s_i);
            m.sbranch(s_i);
        }
        // Extraction: scan the mark array in chunks; only chunks
        // with touched columns pay the per-element drain.
        for (Index j0 = 0; j0 < b.cols(); j0 += vl) {
            int n = std::min<Index>(vl, b.cols() - j0);
            m.vload(v_mk, mark + 4 * Addr(j0), VT, n);
            m.vredsumF(s_cnt, v_mk, n);
            m.sbranch(s_cnt);
            bool any = false;
            for (Index jj = j0; jj < j0 + n; ++jj)
                any = any || touched[std::size_t(jj)];
            if (!any)
                continue;
            for (Index jj = j0; jj < j0 + n; ++jj) {
                if (!touched[std::size_t(jj)])
                    continue;
                m.sloadF(s_v, acc + 4 * Addr(jj), VT);
                m.simm(s_col, jj);
                m.sstore(c_col + 4 * Addr(out), s_col, 4);
                m.sstoreF(c_val + 4 * Addr(out), s_v, VT);
                m.sstoreF(acc + 4 * Addr(jj), s_zero, VT);
                m.sstoreF(mark + 4 * Addr(jj), s_zero, VT);
                m.salu(s_out, out + 1, s_out);
                ++out;
                touched[std::size_t(jj)] = 0;
            }
        }
        m.sstore(c_ptr + 4 * (Addr(r) + 1), s_out, 4);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
        c_row_ptr[std::size_t(r) + 1] = out;
    }
    auto nnz = std::size_t(c_row_ptr.back());
    std::vector<Index> cols_out = downloadIndices(m, c_col, nnz);
    DenseVector vals_out = downloadValues(m, c_val, nnz);
    return SpmmResult{Csr::fromParts(a.rows(), b.cols(),
                                     std::move(c_row_ptr),
                                     std::move(cols_out),
                                     std::move(vals_out)),
                      m.cycles()};
}

HistResult
histImac(Machine &m, const std::vector<Index> &keys, Index buckets)
{
    for (Index k : keys)
        via_assert(k >= 0 && k < buckets, "key ", k,
                   " outside [0, ", buckets, ")");
    Addr key_arr = upload(m, keys);
    Addr hist = allocValues(m, std::size_t(buckets));

    const int vl = int(m.vl());
    VReg v_keys{0}, v_ones{2};
    SReg s_i{3};

    m.vbroadcastF(v_ones, 1.0);
    for (std::size_t i = 0; i < keys.size();
         i += std::size_t(vl)) {
        int n = int(std::min<std::size_t>(std::size_t(vl),
                                          keys.size() - i));
        m.vload(v_keys, key_arr + 4 * Addr(i), IT, n);
        // The whole gather/conflict/merge/add/scatter sequence of
        // histVector folds into one in-order indexed accumulate;
        // hot buckets hit the MAC row buffer instead of bouncing
        // through store-to-load forwarding.
        m.vimacStF(hist, v_keys, v_ones, n);
        m.salu(s_i, Index(i) + vl, s_i);
        m.sbranch(s_i);
    }
    return HistResult{downloadValues(m, hist, std::size_t(buckets)),
                      m.cycles()};
}

StencilResult
stencilImac(Machine &m, const DenseMatrix &img)
{
    via_assert(img.rows() >= 4 && img.cols() >= 4, "image too small");
    Addr img_base = upload(m, img.data());
    const auto &f = gaussian4x4();
    Addr filt = upload(m, std::vector<Value>(f.begin(), f.end()));
    const Index W = img.cols();
    const Index out_rows = img.rows() - 3;
    const Index out_cols = img.cols() - 3;
    Addr out = m.mem().alloc(std::size_t(out_rows) *
                             std::size_t(out_cols) * sizeof(Value));

    VReg v_f0{0}, v_f1{1}, v_pat0{2}, v_pat1{3}, v_base{4},
        v_idx{5}, v_acc{6};
    SReg s_acc{0}, s_x{1}, s_y{2};

    m.vload(v_f0, filt, ElemType::F32);
    m.vload(v_f1, filt + 4 * 8, ElemType::F32);
    std::vector<std::int64_t> pat0, pat1;
    for (std::int64_t l = 0; l < 8; ++l) {
        pat0.push_back((l / 4) * W + l % 4);
        pat1.push_back((l / 4 + 2) * W + l % 4);
    }
    m.vpatternI(v_pat0, pat0);
    m.vpatternI(v_pat1, pat1);

    for (Index y = 0; y < out_rows; ++y) {
        for (Index x = 0; x < out_cols; ++x) {
            std::int64_t base = std::int64_t(y) * W + x;
            m.vbroadcastI(v_base, base);
            m.vbroadcastF(v_acc, 0.0);
            // Two indexed MACs replace the gather+multiply pairs;
            // neighbouring windows overlap heavily, so most lanes
            // hit the row buffer.
            m.vaddI(v_idx, v_pat0, v_base);
            m.vimacF(v_acc, img_base, v_idx, v_f0, 8);
            m.vaddI(v_idx, v_pat1, v_base);
            m.vimacF(v_acc, img_base, v_idx, v_f1, 8);
            m.vredsumF(s_acc, v_acc);
            m.sstoreF(out + 4 * Addr(y * out_cols + x), s_acc,
                      ElemType::F32);
            m.salu(s_x, x + 1, s_x);
            m.sbranch(s_x);
        }
        m.salu(s_y, y + 1, s_y);
        m.sbranch(s_y);
    }
    DenseMatrix o(out_rows, out_cols);
    o.data() = m.mem().readArray<Value>(
        out, std::size_t(out_rows) * std::size_t(out_cols));
    return StencilResult{std::move(o), m.cycles()};
}

} // namespace via::kernels
