/**
 * @file
 * Sparse matrix addition C = A + B (paper Algorithm 2, Section
 * VII-B).
 *
 * Baseline: the classic sorted two-pointer merge per row, the
 * algorithm state-of-the-art C++ libraries (Eigen) effectively run —
 * it is branchy and processes one element per iteration, which is
 * exactly why the paper attacks it with the CAM.
 *
 * VIA: per row, load A's (col, value) pairs into the CAM
 * (vidx.load.c), stream B through vidx.add.c with SSPM output —
 * matching columns combine in place, new columns insert in order —
 * then read the element count and extract keys/values with
 * vidx.keys / vidx.vals (Section IV-C).
 *
 * The CAM extraction emits each row's elements in insertion order
 * (A's columns, then B-only columns); the paper does not discuss
 * re-sorting, so the returned matrix is canonicalized host-side
 * before comparison.
 *
 * Rows whose union exceeds the CAM capacity are tiled into column
 * ranges host-side; each range runs the same CAM flow.
 */

#ifndef VIA_KERNELS_SPMA_HH
#define VIA_KERNELS_SPMA_HH

#include "cpu/machine.hh"
#include "sparse/csr.hh"

namespace via::kernels
{

/** Result of one SpMA run. */
struct SpmaResult
{
    Csr c;           //!< canonicalized result
    Tick cycles = 0;
};

/** Scalar sorted-merge baseline. */
SpmaResult spmaScalarCsr(Machine &m, const Csr &a, const Csr &b);

/** VIA CAM-union kernel. */
SpmaResult spmaViaCsr(Machine &m, const Csr &a, const Csr &b);

} // namespace via::kernels

#endif // VIA_KERNELS_SPMA_HH
