#include "kernels/backend_kernels.hh"

#include <algorithm>

#include "kernels/kernel_utils.hh"
#include "kernels/reference.hh"
#include "simcore/log.hh"

namespace via::kernels
{

namespace
{

constexpr ElemType VT = ElemType::F32;
constexpr ElemType IT = ElemType::I32;

/** Shared upload of the dense operand and output buffer. */
struct XY
{
    Addr x = 0;
    Addr y = 0;
};

XY
uploadXY(Machine &m, const DenseVector &x, Index rows)
{
    XY a;
    a.x = upload(m, x);
    a.y = allocValues(m, std::size_t(rows));
    return a;
}

/** Canonicalize the merge output (mirrors spma.cc). */
Csr
assembleResult(const Machine &m, Addr c_col, Addr c_val,
               const std::vector<Index> &c_row_ptr, Index rows,
               Index cols)
{
    auto nnz = std::size_t(c_row_ptr.back());
    std::vector<Index> cols_out = downloadIndices(m, c_col, nnz);
    DenseVector vals_out = downloadValues(m, c_val, nnz);
    Coo coo(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index k = c_row_ptr[std::size_t(r)];
             k < c_row_ptr[std::size_t(r) + 1]; ++k)
            coo.add(r, cols_out[std::size_t(k)],
                    vals_out[std::size_t(k)]);
    return Csr::fromCoo(std::move(coo));
}

} // namespace

SpmvResult
spmvSsrCsr(Machine &m, const Csr &a, const DenseVector &x)
{
    return spmvSsrCsrAt(m, a, uploadCsr(m, a), x);
}

SpmvResult
spmvSsrCsrAt(Machine &m, const Csr &a, const CsrImage &img,
             const DenseVector &x)
{
    Addr row_ptr = img.rowPtr;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    VReg v_acc{3};
    SReg s_end{1}, s_acc{5}, s_k{0}, s_r{7};

    // CSR walks values and colIdx contiguously across rows, so one
    // bind pair amortizes the stream setup over the whole kernel:
    // stream 0 delivers the values, stream 1 gathers x through the
    // column indices, and ssr.fma consumes both.
    m.ssrBindAffine(0, img.values, VT);
    m.ssrBindIndirect(1, img.colIdx, IT, xy.x, VT);

    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_end, row_ptr + 4 * (Addr(r) + 1), 4);
        m.vbroadcastF(v_acc, 0.0);
        Index lo = a.rowPtr()[std::size_t(r)];
        Index end = a.rowPtr()[std::size_t(r) + 1];
        for (Index k = lo; k < end; k += vl) {
            int n = std::min<Index>(vl, end - k);
            m.ssrFma(v_acc, 0, 1, n);
            m.salu(s_k, k + vl, s_k);
            m.sbranch(s_k);
        }
        m.vredsumF(s_acc, v_acc);
        m.sstoreF(xy.y + 4 * Addr(r), s_acc, VT);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvSsrSpc5(Machine &m, const Spc5 &a, const DenseVector &x)
{
    return spmvSsrSpc5At(m, a, uploadSpc5(m, a), x);
}

SpmvResult
spmvSsrSpc5At(Machine &m, const Spc5 &a, const Spc5Image &img,
              const DenseVector &x)
{
    Addr brow = img.blockRow;
    Addr bcol = img.blockCol;
    Addr bmask = img.blockMask;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    via_assert(a.window() == Index(vl),
               "SPC5 window must equal the vector length");

    VReg v_packed{0}, v_val{1}, v_x{2}, v_acc{3};
    SReg s_hdr{1}, s_acc{5}, s_b{0}, s_row{7};

    // The packed values are consumed in block order — one affine
    // stream replaces every values load. x stays unit-stride per
    // block (ordinary vload), which is SPC5's selling point.
    m.ssrBindAffine(0, img.values, VT);

    Index cur_row = -1;
    bool acc_live = false;

    auto flush_row = [&](Index row) {
        m.vredsumF(s_acc, v_acc);
        m.sloadF(s_row, xy.y + 4 * Addr(row), VT);
        m.sfadd(s_acc, s_acc, s_row);
        m.sstoreF(xy.y + 4 * Addr(row), s_acc, VT);
    };

    for (std::size_t b = 0; b < a.numBlocks(); ++b) {
        Index row = a.blockRow()[b];
        if (row != cur_row) {
            if (acc_live)
                flush_row(cur_row);
            m.vbroadcastF(v_acc, 0.0);
            cur_row = row;
            acc_live = true;
        }
        m.sload(s_hdr, brow + 4 * Addr(b), 4);
        m.sload(s_hdr, bcol + 4 * Addr(b), 4);
        m.sload(s_hdr, bmask + 4 * Addr(b), 4);

        Index first = a.blockCol()[b];
        Index v0 = a.blockPtr()[b];
        Index packed = a.blockPtr()[b + 1] - v0;

        m.ssrPopV(v_packed, 0, int(packed));
        m.vexpandMask(v_val, v_packed, a.blockMask()[b], vl, s_hdr);
        int n = int(std::min<Index>(vl, a.cols() - first));
        m.vload(v_x, xy.x + 4 * Addr(first), VT, n);
        m.vfmaF(v_acc, v_val, v_x, v_acc, n);
        m.salu(s_b, Index(b) + 1, s_b);
        m.sbranch(s_b);
    }
    if (acc_live)
        flush_row(cur_row);

    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvSsrSell(Machine &m, const SellCSigma &a, const DenseVector &x)
{
    return spmvSsrSellAt(m, a, uploadSell(m, a), x);
}

SpmvResult
spmvSsrSellAt(Machine &m, const SellCSigma &a, const SellImage &img,
              const DenseVector &x)
{
    Addr chunk_ptr = img.chunkPtr;
    Addr row_perm = img.rowPerm;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    via_assert(a.c() == Index(vl), "chunk height mismatch");

    VReg v_acc{3}, v_rows{4};
    SReg s_w{1}, s_j{0}, s_ch{7};

    // Slices advance by a fixed vl stride even when the last chunk
    // has fewer live lanes, so the streams pop with advance = vl.
    m.ssrBindAffine(0, img.values, VT);
    m.ssrBindIndirect(1, img.colIdx, IT, xy.x, VT);

    for (Index ch = 0; ch < a.numChunks(); ++ch) {
        m.sload(s_w, chunk_ptr + 4 * (Addr(ch) + 1), 4);
        m.vbroadcastF(v_acc, 0.0);
        Index width = a.chunkWidth()[std::size_t(ch)];
        int lanes = int(std::min<Index>(vl, a.rows() - ch * vl));
        for (Index j = 0; j < width; ++j) {
            m.ssrFma(v_acc, 0, 1, lanes, vl);
            m.salu(s_j, j + 1, s_j);
            m.sbranch(s_j);
        }
        m.vload(v_rows, row_perm + 4 * Addr(ch) * Addr(vl), IT,
                lanes);
        m.vscatter(xy.y, v_rows, v_acc, VT, lanes);
        m.salu(s_ch, ch + 1, s_ch);
        m.sbranch(s_ch);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvSsrCsb(Machine &m, const Csb &a, const DenseVector &x)
{
    return spmvSsrCsbAt(m, a, uploadCsb(m, a), x);
}

SpmvResult
spmvSsrCsbAt(Machine &m, const Csb &a, const CsbImage &img,
             const DenseVector &x)
{
    Addr block_ptr = img.blockPtr;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    const Index beta = a.beta();
    const auto col_bits = a.colBits();

    VReg v_idx{0}, v_val{1}, v_col{2}, v_row{3}, v_x{4}, v_y{5},
        v_prod{6};
    SReg s_end{1}, s_k{0}, s_b{7};

    // Both element arrays are consumed in block order — two affine
    // streams replace the idx/value loads; the gather-update-scatter
    // traffic on the y partials is untouched (it is data-dependent,
    // which streams cannot express).
    m.ssrBindAffine(0, img.packedIdx, IT);
    m.ssrBindAffine(1, img.values, VT);

    Index bcols = a.blockCols();
    for (Index b = 0; b < a.numBlocks(); ++b) {
        m.sload(s_end, block_ptr + 4 * (Addr(b) + 1), 4);
        Index lo = a.blockPtr()[std::size_t(b)];
        Index end = a.blockPtr()[std::size_t(b) + 1];
        if (lo == end) {
            m.sbranch(s_end); // skip empty block
            continue;
        }
        Addr row_base = xy.y + 4 * Addr(b / bcols) * Addr(beta);
        Addr col_base = xy.x + 4 * Addr(b % bcols) * Addr(beta);
        for (Index k = lo; k < end; k += vl) {
            int n = std::min<Index>(vl, end - k);
            m.ssrPopV(v_idx, 0, n);
            m.ssrPopV(v_val, 1, n);
            m.vandI(v_col, v_idx, beta - 1, n);
            m.vshrI(v_row, v_idx, col_bits, n);
            m.vgather(v_x, col_base, v_col, VT, n);
            m.vmulF(v_prod, v_val, v_x, n);
            m.vconflict(v_y, v_row, n);
            m.vmergeIdx(v_prod, v_prod, v_row, n);
            m.vgather(v_y, row_base, v_row, VT, n);
            m.vaddF(v_y, v_y, v_prod, n);
            m.vscatter(row_base, v_row, v_y, VT, n);
            m.salu(s_k, k + vl, s_k);
            m.sbranch(s_k);
        }
        m.salu(s_b, b + 1, s_b);
        m.sbranch(s_b);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmaResult
spmaSsrCsr(Machine &m, const Csr &a, const Csr &b)
{
    via_assert(a.rows() == b.rows() && a.cols() == b.cols(),
               "SpMA shape mismatch");
    Addr a_ptr = upload(m, a.rowPtr());
    Addr a_col = upload(m, a.colIdx());
    Addr a_val = upload(m, a.values());
    Addr b_ptr = upload(m, b.rowPtr());
    Addr b_col = upload(m, b.colIdx());
    Addr b_val = upload(m, b.values());

    std::size_t worst = a.nnz() + b.nnz();
    Addr c_col = m.mem().alloc(worst * sizeof(Index));
    Addr c_val = m.mem().alloc(worst * sizeof(Value));
    Addr c_ptr = m.mem().alloc((std::size_t(a.rows()) + 1) *
                               sizeof(Index));

    SReg s_ka{0}, s_kb{1}, s_acol{2}, s_bcol{3}, s_v{4}, s_v2{5},
        s_out{6}, s_r{7};

    // All four element arrays are consumed monotonically across the
    // merge, so one bind each covers the kernel; the merge pops the
    // column heads and only pops a value stream when its element is
    // consumed (the streams make the loads, the branches remain).
    m.ssrBindAffine(0, a_col, IT);
    m.ssrBindAffine(1, a_val, VT);
    m.ssrBindAffine(2, b_col, IT);
    m.ssrBindAffine(3, b_val, VT);

    std::vector<Index> c_row_ptr(std::size_t(a.rows()) + 1, 0);
    Index out = 0;
    m.sstore(c_ptr, s_out, 4);

    // A stream head is popped once per element; holding it in a
    // scalar register across non-consuming iterations keeps the pop
    // count equal to the element count (streams are destructive).
    bool need_a = true, need_b = true;

    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_ka, a_ptr + 4 * (Addr(r) + 1), 4);
        m.sload(s_kb, b_ptr + 4 * (Addr(r) + 1), 4);
        Index ka = a.rowPtr()[std::size_t(r)];
        Index kb = b.rowPtr()[std::size_t(r)];
        Index ea = a.rowPtr()[std::size_t(r) + 1];
        Index eb = b.rowPtr()[std::size_t(r) + 1];

        while (ka < ea && kb < eb) {
            if (need_a) {
                m.ssrPopS(s_acol, 0);
                need_a = false;
            }
            if (need_b) {
                m.ssrPopS(s_bcol, 2);
                need_b = false;
            }
            m.salu(s_v, 0, s_acol, s_bcol); // compare
            Index ca = a.colIdx()[std::size_t(ka)];
            Index cb = b.colIdx()[std::size_t(kb)];
            m.sbranchData(s_v, 1, ca == cb);
            if (ca != cb)
                m.sbranchData(s_v, 2, ca < cb);
            if (ca == cb) {
                m.ssrPopS(s_v, 1);
                m.ssrPopS(s_v2, 3);
                m.sfadd(s_v, s_v, s_v2);
                m.sstore(c_col + 4 * Addr(out), s_acol, 4);
                m.sstoreF(c_val + 4 * Addr(out), s_v, VT);
                m.salu(s_ka, ka + 1, s_ka);
                m.salu(s_kb, kb + 1, s_kb);
                ++ka;
                ++kb;
                need_a = need_b = true;
            } else if (ca < cb) {
                m.ssrPopS(s_v, 1);
                m.sstore(c_col + 4 * Addr(out), s_acol, 4);
                m.sstoreF(c_val + 4 * Addr(out), s_v, VT);
                m.salu(s_ka, ka + 1, s_ka);
                ++ka;
                need_a = true;
            } else {
                m.ssrPopS(s_v, 3);
                m.sstore(c_col + 4 * Addr(out), s_bcol, 4);
                m.sstoreF(c_val + 4 * Addr(out), s_v, VT);
                m.salu(s_kb, kb + 1, s_kb);
                ++kb;
                need_b = true;
            }
            m.salu(s_out, out + 1, s_out);
            ++out;
        }
        while (ka < ea) {
            if (need_a)
                m.ssrPopS(s_acol, 0);
            need_a = true;
            m.ssrPopS(s_v, 1);
            m.sstore(c_col + 4 * Addr(out), s_acol, 4);
            m.sstoreF(c_val + 4 * Addr(out), s_v, VT);
            m.salu(s_ka, ka + 1, s_ka);
            m.sbranch(s_ka);
            ++ka;
            ++out;
        }
        while (kb < eb) {
            if (need_b)
                m.ssrPopS(s_bcol, 2);
            need_b = true;
            m.ssrPopS(s_v, 3);
            m.sstore(c_col + 4 * Addr(out), s_bcol, 4);
            m.sstoreF(c_val + 4 * Addr(out), s_v, VT);
            m.salu(s_kb, kb + 1, s_kb);
            m.sbranch(s_kb);
            ++kb;
            ++out;
        }
        m.sstore(c_ptr + 4 * (Addr(r) + 1), s_out, 4);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
        c_row_ptr[std::size_t(r) + 1] = out;
    }

    return SpmaResult{assembleResult(m, c_col, c_val, c_row_ptr,
                                     a.rows(), a.cols()),
                      m.cycles()};
}

SpmmResult
spmmSsrInner(Machine &m, const Csr &a, const Csc &b)
{
    via_assert(a.cols() == b.rows(), "SpMM shape mismatch");
    Addr a_ptr = upload(m, a.rowPtr());
    Addr a_col = upload(m, a.colIdx());
    Addr a_val = upload(m, a.values());
    Addr b_ptr = upload(m, b.colPtr());
    Addr b_row = upload(m, b.rowIdx());
    Addr b_val = upload(m, b.values());

    std::size_t bound = std::size_t(a.rows()) *
                        std::size_t(b.cols());
    std::size_t alt = a.nnz() * std::size_t(std::max<Index>(
                                    b.maxColNnz(), 1));
    bound = std::min(bound, alt + 1);
    Addr c_col = m.mem().alloc(bound * sizeof(Index));
    Addr c_val = m.mem().alloc(bound * sizeof(Value));
    Addr c_ptr = m.mem().alloc((std::size_t(a.rows()) + 1) *
                               sizeof(Index));
    std::vector<Index> c_row_ptr(std::size_t(a.rows()) + 1, 0);
    Index out = 0;

    SReg s_ka{0}, s_kb{1}, s_ai{2}, s_bi{3}, s_v{4}, s_v2{5},
        s_acc{6}, s_out{7}, s_j{8}, s_r{9};

    m.sstore(c_ptr, s_out, 4);
    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_ka, a_ptr + 4 * (Addr(r) + 1), 4);
        Index a_lo = a.rowPtr()[std::size_t(r)];
        Index a_hi = a.rowPtr()[std::size_t(r) + 1];
        if (a_lo == a_hi) {
            m.sbranch(s_ka);
            m.sstore(c_ptr + 4 * (Addr(r) + 1), s_out, 4);
            c_row_ptr[std::size_t(r) + 1] = out;
            continue;
        }
        for (Index j = 0; j < b.cols(); ++j) {
            m.sload(s_kb, b_ptr + 4 * (Addr(j) + 1), 4);
            m.sbranch(s_kb);
            Index b_lo = b.colPtr()[std::size_t(j)];
            Index b_hi = b.colPtr()[std::size_t(j) + 1];
            if (b_lo == b_hi)
                continue;

            // Index matching restarts both lists for every (r, j)
            // pair, so the streams must be re-bound each time —
            // the setup cost stream semantics pay on inner-product
            // SpMM. Values are loaded only on a match (a destructive
            // pop cannot skip the mismatching side's value).
            m.ssrBindAffine(0, a_col + 4 * Addr(a_lo), IT);
            m.ssrBindAffine(1, b_row + 4 * Addr(b_lo), IT);
            m.salu(s_acc, 0);
            Index ka = a_lo, kb = b_lo;
            bool any = false;
            bool need_a = true, need_b = true;
            while (ka < a_hi && kb < b_hi) {
                if (need_a) {
                    m.ssrPopS(s_ai, 0);
                    need_a = false;
                }
                if (need_b) {
                    m.ssrPopS(s_bi, 1);
                    need_b = false;
                }
                m.salu(s_v, 0, s_ai, s_bi); // compare
                Index ca = a.colIdx()[std::size_t(ka)];
                Index cb = b.rowIdx()[std::size_t(kb)];
                m.sbranchData(s_v, 11, ca == cb);
                if (ca != cb)
                    m.sbranchData(s_v, 12, ca < cb);
                if (ca == cb) {
                    m.sloadF(s_v, a_val + 4 * Addr(ka), VT);
                    m.sloadF(s_v2, b_val + 4 * Addr(kb), VT);
                    m.sfmul(s_v, s_v, s_v2);
                    m.sfadd(s_acc, s_acc, s_v);
                    m.salu(s_ka, ka + 1, s_ka);
                    m.salu(s_kb, kb + 1, s_kb);
                    ++ka;
                    ++kb;
                    need_a = need_b = true;
                    any = true;
                } else if (ca < cb) {
                    m.salu(s_ka, ka + 1, s_ka);
                    ++ka;
                    need_a = true;
                } else {
                    m.salu(s_kb, kb + 1, s_kb);
                    ++kb;
                    need_b = true;
                }
            }
            if (any) {
                m.simm(s_v, j);
                m.sstore(c_col + 4 * Addr(out), s_v, 4);
                m.sstoreF(c_val + 4 * Addr(out), s_acc, VT);
                m.salu(s_out, out + 1, s_out);
                ++out;
            }
            m.salu(s_j, j + 1, s_j);
            m.sbranch(s_j);
        }
        m.sstore(c_ptr + 4 * (Addr(r) + 1), s_out, 4);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
        c_row_ptr[std::size_t(r) + 1] = out;
    }
    auto nnz = std::size_t(c_row_ptr.back());
    std::vector<Index> cols_out = downloadIndices(m, c_col, nnz);
    DenseVector vals_out = downloadValues(m, c_val, nnz);
    return SpmmResult{Csr::fromParts(a.rows(), b.cols(),
                                     std::move(c_row_ptr),
                                     std::move(cols_out),
                                     std::move(vals_out)),
                      m.cycles()};
}

HistResult
histSsr(Machine &m, const std::vector<Index> &keys, Index buckets)
{
    for (Index k : keys)
        via_assert(k >= 0 && k < buckets, "key ", k,
                   " outside [0, ", buckets, ")");
    Addr key_arr = upload(m, keys);
    Addr hist = allocValues(m, std::size_t(buckets));

    const int vl = int(m.vl());
    VReg v_keys{0}, v_cf{1}, v_ones{2}, v_cnt{3}, v_old{4};
    SReg s_i{3};

    // The key array is a pure sequential read: one affine stream
    // replaces every key load. The bucket read-modify-write stays in
    // the cache hierarchy exactly as in histVector.
    m.ssrBindAffine(0, key_arr, IT);

    m.vbroadcastF(v_ones, 1.0);
    for (std::size_t i = 0; i < keys.size();
         i += std::size_t(vl)) {
        int n = int(std::min<std::size_t>(std::size_t(vl),
                                          keys.size() - i));
        m.ssrPopV(v_keys, 0, n);
        m.vconflict(v_cf, v_keys, n);
        m.vmergeIdx(v_cnt, v_ones, v_keys, n);
        m.vgather(v_old, hist, v_keys, VT, n);
        m.vaddF(v_old, v_old, v_cnt, n);
        m.vscatter(hist, v_keys, v_old, VT, n);
        m.salu(s_i, Index(i) + vl, s_i);
        m.sbranch(s_i);
    }
    return HistResult{downloadValues(m, hist, std::size_t(buckets)),
                      m.cycles()};
}

StencilResult
stencilSsr(Machine &m, const DenseMatrix &img)
{
    via_assert(img.rows() >= 4 && img.cols() >= 4, "image too small");
    Addr img_base = upload(m, img.data());
    const auto &f = gaussian4x4();
    Addr filt = upload(m, std::vector<Value>(f.begin(), f.end()));
    const Index W = img.cols();
    const Index out_rows = img.rows() - 3;
    const Index out_cols = img.cols() - 3;
    Addr out = m.mem().alloc(std::size_t(out_rows) *
                             std::size_t(out_cols) * sizeof(Value));

    // Per-pixel tap indices, precomputed host-side and consumed
    // through one indirect stream: 16 absolute image offsets per
    // output pixel, window rows 0-1 first, then rows 2-3. (The SSR
    // paper's 2-D affine streams would generate these in hardware;
    // this model has 1-D streams, so the indices are staged like a
    // format conversion.)
    std::vector<Index> taps;
    taps.reserve(std::size_t(out_rows) * std::size_t(out_cols) * 16);
    for (Index y = 0; y < out_rows; ++y)
        for (Index x = 0; x < out_cols; ++x) {
            Index base = y * W + x;
            for (Index l = 0; l < 16; ++l)
                taps.push_back(base + (l / 4) * W + l % 4);
        }
    Addr tap_arr = upload(m, taps);

    VReg v_f0{0}, v_f1{1}, v_tap{2}, v_p0{3}, v_p1{4};
    SReg s_acc{0}, s_x{1}, s_y{2};

    m.vload(v_f0, filt, ElemType::F32);
    m.vload(v_f1, filt + 4 * 8, ElemType::F32);
    m.ssrBindIndirect(0, tap_arr, IT, img_base, ElemType::F32);

    for (Index y = 0; y < out_rows; ++y) {
        for (Index x = 0; x < out_cols; ++x) {
            m.ssrPopV(v_tap, 0, 8);
            m.vmulF(v_p0, v_tap, v_f0, 8);
            m.ssrPopV(v_tap, 0, 8);
            m.vmulF(v_p1, v_tap, v_f1, 8);
            m.vaddF(v_p0, v_p0, v_p1, 8);
            m.vredsumF(s_acc, v_p0);
            m.sstoreF(out + 4 * Addr(y * out_cols + x), s_acc,
                      ElemType::F32);
            m.salu(s_x, x + 1, s_x);
            m.sbranch(s_x);
        }
        m.salu(s_y, y + 1, s_y);
        m.sbranch(s_y);
    }
    DenseMatrix o(out_rows, out_cols);
    o.data() = m.mem().readArray<Value>(
        out, std::size_t(out_rows) * std::size_t(out_cols));
    return StencilResult{std::move(o), m.cycles()};
}

} // namespace via::kernels
