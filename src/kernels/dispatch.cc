#include "kernels/dispatch.hh"

#include <algorithm>

#include "simcore/log.hh"

namespace via::kernels
{

const std::vector<std::string> &
spmvFormats()
{
    static const std::vector<std::string> formats = {
        "csr", "spc5", "sell", "csb"};
    return formats;
}

bool
isSpmvFormat(const std::string &fmt)
{
    const auto &f = spmvFormats();
    return std::find(f.begin(), f.end(), fmt) != f.end();
}

SpmvResult
spmvVia(Machine &m, const Csr &a, const DenseVector &x,
        const std::string &fmt)
{
    if (fmt == "csr")
        return spmvViaCsr(m, a, x);
    if (fmt == "spc5") {
        Spc5 s = Spc5::fromCsr(a, Index(m.vl()));
        return spmvViaSpc5(m, s, x);
    }
    if (fmt == "sell") {
        auto vl = Index(m.vl());
        SellCSigma s = SellCSigma::fromCsr(a, vl, 4 * vl);
        return spmvViaSell(m, s, x);
    }
    if (fmt == "csb") {
        Csb csb = Csb::fromCsr(a, viaCsbBeta(m));
        return spmvViaCsb(m, csb, x);
    }
    via_fatal("unknown SpMV format '", fmt, "'");
}

SpmvResult
spmvBaseline(Machine &m, const Csr &a, const DenseVector &x,
             const std::string &fmt)
{
    if (fmt == "csr")
        return spmvVectorCsr(m, a, x);
    if (fmt == "spc5") {
        Spc5 s = Spc5::fromCsr(a, Index(m.vl()));
        return spmvVectorSpc5(m, s, x);
    }
    if (fmt == "sell") {
        auto vl = Index(m.vl());
        SellCSigma s = SellCSigma::fromCsr(a, vl, 4 * vl);
        return spmvVectorSell(m, s, x);
    }
    if (fmt == "csb") {
        Csb csb = Csb::fromCsr(a, viaCsbBeta(m));
        return spmvVectorCsb(m, csb, x);
    }
    via_fatal("unknown SpMV format '", fmt, "'");
}

} // namespace via::kernels
