#include "kernels/dispatch.hh"

#include <algorithm>

#include "simcore/log.hh"

namespace via::kernels
{

const std::vector<std::string> &
spmvFormats()
{
    static const std::vector<std::string> formats = {
        "csr", "spc5", "sell", "csb"};
    return formats;
}

bool
isSpmvFormat(const std::string &fmt)
{
    const auto &f = spmvFormats();
    return std::find(f.begin(), f.end(), fmt) != f.end();
}

SpmvResult
spmvVia(Machine &m, const Csr &a, const DenseVector &x,
        const std::string &fmt)
{
    if (fmt == "csr")
        return spmvViaCsr(m, a, x);
    if (fmt == "spc5") {
        Spc5 s = Spc5::fromCsr(a, Index(m.vl()));
        return spmvViaSpc5(m, s, x);
    }
    if (fmt == "sell") {
        auto vl = Index(m.vl());
        SellCSigma s = SellCSigma::fromCsr(a, vl, 4 * vl);
        return spmvViaSell(m, s, x);
    }
    if (fmt == "csb") {
        Csb csb = Csb::fromCsr(a, viaCsbBeta(m));
        return spmvViaCsb(m, csb, x);
    }
    via_fatal("unknown SpMV format '", fmt, "'");
}

SpmvResult
spmvBaseline(Machine &m, const Csr &a, const DenseVector &x,
             const std::string &fmt)
{
    if (fmt == "csr")
        return spmvVectorCsr(m, a, x);
    if (fmt == "spc5") {
        Spc5 s = Spc5::fromCsr(a, Index(m.vl()));
        return spmvVectorSpc5(m, s, x);
    }
    if (fmt == "sell") {
        auto vl = Index(m.vl());
        SellCSigma s = SellCSigma::fromCsr(a, vl, 4 * vl);
        return spmvVectorSell(m, s, x);
    }
    if (fmt == "csb") {
        Csb csb = Csb::fromCsr(a, viaCsbBeta(m));
        return spmvVectorCsb(m, csb, x);
    }
    via_fatal("unknown SpMV format '", fmt, "'");
}

SpmvResident::SpmvResident(Machine &m, const Csr &a,
                           const std::string &fmt, bool via)
    : _fmt(fmt), _via(via), _csr(a)
{
    // Same conversion geometry as the one-shot dispatchers above, so
    // the first run() on the constructing machine emits the exact
    // one-shot stream.
    if (fmt == "csr") {
        _csrImg = uploadCsr(m, _csr);
    } else if (fmt == "spc5") {
        _spc5.emplace(Spc5::fromCsr(a, Index(m.vl())));
        _spc5Img = uploadSpc5(m, *_spc5);
    } else if (fmt == "sell") {
        auto vl = Index(m.vl());
        _sell.emplace(SellCSigma::fromCsr(a, vl, 4 * vl));
        _sellImg = uploadSell(m, *_sell);
    } else if (fmt == "csb") {
        _csb.emplace(Csb::fromCsr(a, viaCsbBeta(m)));
        _csbImg = uploadCsb(m, *_csb);
    } else {
        via_fatal("unknown SpMV format '", fmt, "'");
    }
}

SpmvResult
SpmvResident::run(Machine &m, const DenseVector &x) const
{
    if (_fmt == "csr")
        return _via ? spmvViaCsrAt(m, _csr, _csrImg, x)
                    : spmvVectorCsrAt(m, _csr, _csrImg, x);
    if (_fmt == "spc5")
        return _via ? spmvViaSpc5At(m, *_spc5, _spc5Img, x)
                    : spmvVectorSpc5At(m, *_spc5, _spc5Img, x);
    if (_fmt == "sell")
        return _via ? spmvViaSellAt(m, *_sell, _sellImg, x)
                    : spmvVectorSellAt(m, *_sell, _sellImg, x);
    if (_fmt == "csb")
        return _via ? spmvViaCsbAt(m, *_csb, _csbImg, x)
                    : spmvVectorCsbAt(m, *_csb, _csbImg, x);
    via_fatal("unknown SpMV format '", _fmt, "'");
}

} // namespace via::kernels
