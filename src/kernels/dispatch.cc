#include "kernels/dispatch.hh"

#include <algorithm>

#include "kernels/backend_kernels.hh"
#include "simcore/log.hh"

namespace via::kernels
{

const std::vector<std::string> &
spmvFormats()
{
    static const std::vector<std::string> formats = {
        "csr", "spc5", "sell", "csb"};
    return formats;
}

bool
isSpmvFormat(const std::string &fmt)
{
    const auto &f = spmvFormats();
    return std::find(f.begin(), f.end(), fmt) != f.end();
}

SpmvResult
spmvVia(Machine &m, const Csr &a, const DenseVector &x,
        const std::string &fmt)
{
    if (fmt == "csr")
        return spmvViaCsr(m, a, x);
    if (fmt == "spc5") {
        Spc5 s = Spc5::fromCsr(a, Index(m.vl()));
        return spmvViaSpc5(m, s, x);
    }
    if (fmt == "sell") {
        auto vl = Index(m.vl());
        SellCSigma s = SellCSigma::fromCsr(a, vl, 4 * vl);
        return spmvViaSell(m, s, x);
    }
    if (fmt == "csb") {
        Csb csb = Csb::fromCsr(a, viaCsbBeta(m));
        return spmvViaCsb(m, csb, x);
    }
    via_fatal("unknown SpMV format '", fmt, "'");
}

SpmvResult
spmvBaseline(Machine &m, const Csr &a, const DenseVector &x,
             const std::string &fmt)
{
    if (fmt == "csr")
        return spmvVectorCsr(m, a, x);
    if (fmt == "spc5") {
        Spc5 s = Spc5::fromCsr(a, Index(m.vl()));
        return spmvVectorSpc5(m, s, x);
    }
    if (fmt == "sell") {
        auto vl = Index(m.vl());
        SellCSigma s = SellCSigma::fromCsr(a, vl, 4 * vl);
        return spmvVectorSell(m, s, x);
    }
    if (fmt == "csb") {
        Csb csb = Csb::fromCsr(a, viaCsbBeta(m));
        return spmvVectorCsb(m, csb, x);
    }
    via_fatal("unknown SpMV format '", fmt, "'");
}

namespace
{

/** SSR SpMV by format name (one-shot). */
SpmvResult
spmvSsr(Machine &m, const Csr &a, const DenseVector &x,
        const std::string &fmt)
{
    if (fmt == "csr")
        return spmvSsrCsr(m, a, x);
    if (fmt == "spc5") {
        Spc5 s = Spc5::fromCsr(a, Index(m.vl()));
        return spmvSsrSpc5(m, s, x);
    }
    if (fmt == "sell") {
        auto vl = Index(m.vl());
        SellCSigma s = SellCSigma::fromCsr(a, vl, 4 * vl);
        return spmvSsrSell(m, s, x);
    }
    if (fmt == "csb") {
        Csb csb = Csb::fromCsr(a, viaCsbBeta(m));
        return spmvSsrCsb(m, csb, x);
    }
    via_fatal("unknown SpMV format '", fmt, "'");
}

/** IndexMAC SpMV by format name (one-shot). */
SpmvResult
spmvImac(Machine &m, const Csr &a, const DenseVector &x,
         const std::string &fmt)
{
    if (fmt == "csr")
        return spmvImacCsr(m, a, x);
    if (fmt == "spc5") {
        Spc5 s = Spc5::fromCsr(a, Index(m.vl()));
        return spmvImacSpc5(m, s, x);
    }
    if (fmt == "sell") {
        auto vl = Index(m.vl());
        SellCSigma s = SellCSigma::fromCsr(a, vl, 4 * vl);
        return spmvImacSell(m, s, x);
    }
    if (fmt == "csb") {
        Csb csb = Csb::fromCsr(a, viaCsbBeta(m));
        return spmvImacCsb(m, csb, x);
    }
    via_fatal("unknown SpMV format '", fmt, "'");
}

} // namespace

SpmvResult
spmvAccel(Machine &m, const Csr &a, const DenseVector &x,
          const std::string &fmt)
{
    switch (m.backendKind()) {
    case BackendKind::Base:
        return spmvBaseline(m, a, x, fmt);
    case BackendKind::Via:
        return spmvVia(m, a, x, fmt);
    case BackendKind::Ssr:
        return spmvSsr(m, a, x, fmt);
    case BackendKind::IndexMac:
        return spmvImac(m, a, x, fmt);
    }
    via_fatal("unhandled backend kind");
}

SpmaResult
spmaAccel(Machine &m, const Csr &a, const Csr &b)
{
    switch (m.backendKind()) {
    case BackendKind::Base:
        return spmaScalarCsr(m, a, b);
    case BackendKind::Via:
        return spmaViaCsr(m, a, b);
    case BackendKind::Ssr:
        return spmaSsrCsr(m, a, b);
    case BackendKind::IndexMac:
        return spmaImacCsr(m, a, b);
    }
    via_fatal("unhandled backend kind");
}

SpmmResult
spmmAccel(Machine &m, const Csr &a, const Csc &b)
{
    switch (m.backendKind()) {
    case BackendKind::Base:
        return spmmScalarInner(m, a, b);
    case BackendKind::Via:
        return spmmViaInner(m, a, b);
    case BackendKind::Ssr:
        return spmmSsrInner(m, a, b);
    case BackendKind::IndexMac:
        return spmmImacGustavson(m, a, b);
    }
    via_fatal("unhandled backend kind");
}

HistResult
histAccel(Machine &m, const std::vector<Index> &keys, Index buckets)
{
    switch (m.backendKind()) {
    case BackendKind::Base:
        return histVector(m, keys, buckets);
    case BackendKind::Via:
        return histVia(m, keys, buckets);
    case BackendKind::Ssr:
        return histSsr(m, keys, buckets);
    case BackendKind::IndexMac:
        return histImac(m, keys, buckets);
    }
    via_fatal("unhandled backend kind");
}

StencilResult
stencilAccel(Machine &m, const DenseMatrix &img)
{
    switch (m.backendKind()) {
    case BackendKind::Base:
        return stencilVector(m, img);
    case BackendKind::Via:
        return stencilVia(m, img);
    case BackendKind::Ssr:
        return stencilSsr(m, img);
    case BackendKind::IndexMac:
        return stencilImac(m, img);
    }
    via_fatal("unhandled backend kind");
}

SpmvResident::SpmvResident(Machine &m, const Csr &a,
                           const std::string &fmt, BackendKind kind)
    : _fmt(fmt), _kind(kind), _csr(a)
{
    // Same conversion geometry as the one-shot dispatchers above, so
    // the first run() on the constructing machine emits the exact
    // one-shot stream.
    if (fmt == "csr") {
        _csrImg = uploadCsr(m, _csr);
    } else if (fmt == "spc5") {
        _spc5.emplace(Spc5::fromCsr(a, Index(m.vl())));
        _spc5Img = uploadSpc5(m, *_spc5);
    } else if (fmt == "sell") {
        auto vl = Index(m.vl());
        _sell.emplace(SellCSigma::fromCsr(a, vl, 4 * vl));
        _sellImg = uploadSell(m, *_sell);
    } else if (fmt == "csb") {
        _csb.emplace(Csb::fromCsr(a, viaCsbBeta(m)));
        _csbImg = uploadCsb(m, *_csb);
    } else {
        via_fatal("unknown SpMV format '", fmt, "'");
    }
}

SpmvResult
SpmvResident::run(Machine &m, const DenseVector &x) const
{
    if (_fmt == "csr") {
        switch (_kind) {
        case BackendKind::Base:
            return spmvVectorCsrAt(m, _csr, _csrImg, x);
        case BackendKind::Via:
            return spmvViaCsrAt(m, _csr, _csrImg, x);
        case BackendKind::Ssr:
            return spmvSsrCsrAt(m, _csr, _csrImg, x);
        case BackendKind::IndexMac:
            return spmvImacCsrAt(m, _csr, _csrImg, x);
        }
    }
    if (_fmt == "spc5") {
        switch (_kind) {
        case BackendKind::Base:
            return spmvVectorSpc5At(m, *_spc5, _spc5Img, x);
        case BackendKind::Via:
            return spmvViaSpc5At(m, *_spc5, _spc5Img, x);
        case BackendKind::Ssr:
            return spmvSsrSpc5At(m, *_spc5, _spc5Img, x);
        case BackendKind::IndexMac:
            return spmvImacSpc5At(m, *_spc5, _spc5Img, x);
        }
    }
    if (_fmt == "sell") {
        switch (_kind) {
        case BackendKind::Base:
            return spmvVectorSellAt(m, *_sell, _sellImg, x);
        case BackendKind::Via:
            return spmvViaSellAt(m, *_sell, _sellImg, x);
        case BackendKind::Ssr:
            return spmvSsrSellAt(m, *_sell, _sellImg, x);
        case BackendKind::IndexMac:
            return spmvImacSellAt(m, *_sell, _sellImg, x);
        }
    }
    if (_fmt == "csb") {
        switch (_kind) {
        case BackendKind::Base:
            return spmvVectorCsbAt(m, *_csb, _csbImg, x);
        case BackendKind::Via:
            return spmvViaCsbAt(m, *_csb, _csbImg, x);
        case BackendKind::Ssr:
            return spmvSsrCsbAt(m, *_csb, _csbImg, x);
        case BackendKind::IndexMac:
            return spmvImacCsbAt(m, *_csb, _csbImg, x);
        }
    }
    via_fatal("unknown SpMV format '", _fmt, "'");
}

} // namespace via::kernels
