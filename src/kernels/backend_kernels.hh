/**
 * @file
 * SSR and IndexMAC kernel variants of the five workloads.
 *
 * These are the baseline accelerators the VIA paper competes with,
 * each using its own instruction family on a Machine built over the
 * matching backend (Machine::backendKind() must be Ssr / IndexMac):
 *
 * SSR (arXiv 2011.08070) — data movement becomes stream register
 * reads. Affine streams replace unit-stride loads, indirect streams
 * replace gathers, and ssr.fma fuses a whole value*gather(x) chain
 * into one instruction. Streams are bound with ssr.cfg at a setup
 * cost, which the kernels amortize where the access pattern allows
 * (CSR/SELL walk their arrays contiguously, so one bind pair covers
 * the kernel) and pay repeatedly where it does not (inner-product
 * SpMM re-binds per (row, column) pair — an honest weakness of
 * stream semantics on index-matching workloads).
 *
 * IndexMAC (arXiv 2311.07241) — indexed multiply-accumulate executes
 * in a MAC unit next to the L1: vimac.f reads data[idx[l]] and
 * accumulates into a vector register, vimac.st.f accumulates lane
 * values into memory[idx[l]]. A small row buffer short-circuits
 * lanes that hit a recently-touched accumulator line, and the
 * in-order lane walk makes duplicate indices combine without
 * software conflict detection (no vconflict/vmergeIdx sequences).
 * Indexed traffic still moves through the cache hierarchy on row
 * misses — unlike VIA's scratchpad, repeated misses pay cache
 * energy, which is the comparison the paper draws.
 *
 * Modeling notes (kept deliberately honest):
 *   - SSR SpMM/SpMA stream only the index arrays where destructive
 *     pops cannot track the merge's data-dependent consumption of
 *     values; values use ordinary scalar loads on a match.
 *   - The SSR stencil consumes a host-precomputed per-pixel tap
 *     index array through an indirect stream (the model has 1-D
 *     streams only; the paper's 2-D affine streams would generate
 *     these indices in hardware).
 *   - IndexMAC SPC5 falls back to the plain vector kernel: SPC5's x
 *     accesses are unit-stride, so there is no indexed traffic for
 *     the MAC unit to capture.
 *   - The IndexMAC SpMA/SpMM kernels accumulate into a dense column
 *     buffer (Gustavson style), trading memory footprint for
 *     conflict-free vimac.st.f updates.
 */

#ifndef VIA_KERNELS_BACKEND_KERNELS_HH
#define VIA_KERNELS_BACKEND_KERNELS_HH

#include "kernels/histogram.hh"
#include "kernels/spma.hh"
#include "kernels/spmm.hh"
#include "kernels/spmv.hh"
#include "kernels/stencil.hh"

namespace via::kernels
{

// ----- SSR ------------------------------------------------------

SpmvResult spmvSsrCsr(Machine &m, const Csr &a, const DenseVector &x);
SpmvResult spmvSsrCsrAt(Machine &m, const Csr &a, const CsrImage &img,
                        const DenseVector &x);
SpmvResult spmvSsrSpc5(Machine &m, const Spc5 &a,
                       const DenseVector &x);
SpmvResult spmvSsrSpc5At(Machine &m, const Spc5 &a,
                         const Spc5Image &img, const DenseVector &x);
SpmvResult spmvSsrSell(Machine &m, const SellCSigma &a,
                       const DenseVector &x);
SpmvResult spmvSsrSellAt(Machine &m, const SellCSigma &a,
                         const SellImage &img, const DenseVector &x);
SpmvResult spmvSsrCsb(Machine &m, const Csb &a, const DenseVector &x);
SpmvResult spmvSsrCsbAt(Machine &m, const Csb &a, const CsbImage &img,
                        const DenseVector &x);

/** Sorted merge over four streams (cols streamed, values popped). */
SpmaResult spmaSsrCsr(Machine &m, const Csr &a, const Csr &b);

/** Inner-product index matching; streams re-bound per (r, j). */
SpmmResult spmmSsrInner(Machine &m, const Csr &a, const Csc &b);

/** histVector with the key loads replaced by an affine stream. */
HistResult histSsr(Machine &m, const std::vector<Index> &keys,
                   Index buckets);

/** Tap gathers via an indirect stream over a precomputed index
 *  array (see the file comment on the 1-D stream simplification). */
StencilResult stencilSsr(Machine &m, const DenseMatrix &img);

// ----- IndexMAC -------------------------------------------------

SpmvResult spmvImacCsr(Machine &m, const Csr &a,
                       const DenseVector &x);
SpmvResult spmvImacCsrAt(Machine &m, const Csr &a,
                         const CsrImage &img, const DenseVector &x);
SpmvResult spmvImacSpc5(Machine &m, const Spc5 &a,
                        const DenseVector &x);
SpmvResult spmvImacSpc5At(Machine &m, const Spc5 &a,
                          const Spc5Image &img, const DenseVector &x);
SpmvResult spmvImacSell(Machine &m, const SellCSigma &a,
                        const DenseVector &x);
SpmvResult spmvImacSellAt(Machine &m, const SellCSigma &a,
                          const SellImage &img, const DenseVector &x);
SpmvResult spmvImacCsb(Machine &m, const Csb &a,
                       const DenseVector &x);
SpmvResult spmvImacCsbAt(Machine &m, const Csb &a,
                         const CsbImage &img, const DenseVector &x);

/** vimac.st.f both rows into a dense accumulator, then a col-only
 *  scalar merge names the union and a gather/scatter pass extracts
 *  and clears the touched slots. */
SpmaResult spmaImacCsr(Machine &m, const Csr &a, const Csr &b);

/** Row-wise Gustavson product: B is transposed host-side (a format
 *  conversion, like Spc5::fromCsr), partials accumulate through
 *  vimac.st.f into a dense row buffer with a touch-mark array. */
SpmmResult spmmImacGustavson(Machine &m, const Csr &a, const Csc &b);

/** One vimac.st.f per key vector; duplicates need no conflict
 *  sequence (lanes accumulate in order inside the MAC unit). */
HistResult histImac(Machine &m, const std::vector<Index> &keys,
                    Index buckets);

/** Two vimac.f per pixel; the row buffer catches the overlap of
 *  neighbouring 4x4 windows. */
StencilResult stencilImac(Machine &m, const DenseMatrix &img);

} // namespace via::kernels

#endif // VIA_KERNELS_BACKEND_KERNELS_HH
