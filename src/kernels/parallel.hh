/**
 * @file
 * Multi-core variants of the five kernels, driving a MultiMachine.
 *
 * Each kernel uploads its operands once into the shared backing
 * store, partitions the work across the cores, and emits one
 * independent instruction stream per core. Output regions are
 * disjoint per core (rows, block rows, key chunks, image stripes),
 * so the kernels need no locks; the shared LLC resolves the timing
 * side (bank contention, coherence) analytically.
 *
 * Two partitioning policies:
 *
 *  - Static: one balanced contiguous range per core. Zero scheduling
 *    overhead, but skewed inputs (a few dense rows) idle most cores.
 *  - Steal: the range is cut into ~8 chunks per core; each chunk is
 *    handed to whichever core currently has the earliest commit
 *    front (ties to the lowest id). This is a deterministic
 *    idealization of work stealing: the simulator can see every
 *    core's clock, so "stealing" reduces to greedy least-loaded
 *    assignment, and repeated runs schedule identically.
 *
 * Everything is driven from one host thread; determinism holds for
 * any core count.
 */

#ifndef VIA_KERNELS_PARALLEL_HH
#define VIA_KERNELS_PARALLEL_HH

#include <string>
#include <utility>
#include <vector>

#include "cpu/multi_machine.hh"
#include "kernels/histogram.hh"
#include "kernels/spma.hh"
#include "kernels/spmm.hh"
#include "kernels/spmv.hh"
#include "kernels/stencil.hh"
#include "sparse/csc.hh"

namespace via::kernels
{

/** How parallel kernels split their iteration space over cores. */
enum class Partition
{
    Static, //!< balanced contiguous ranges
    Steal,  //!< greedy least-loaded chunk assignment
};

/** Parse "static" / "steal"; fatal on anything else. */
Partition parsePartition(const std::string &name);

/** The harness-facing name of @p p. */
const char *partitionName(Partition p);

/**
 * Balanced contiguous split of [0, n) into @p cores ranges; the
 * first n % cores ranges are one element longer. Empty ranges are
 * returned as (lo, lo). Exposed for tests.
 */
std::vector<std::pair<Index, Index>> staticRanges(Index n,
                                                  unsigned cores);

/**
 * Multi-core SpMV. @p fmt selects csr or csb (the spc5 and sell
 * kernels are inherently sequential over their block/chunk streams
 * and stay single-core); @p via picks the VIA kernel over the
 * vector baseline. Rows (csr) or block rows (csb) partition.
 */
SpmvResult spmvParallel(MultiMachine &mm, const Csr &a,
                        const DenseVector &x, const std::string &fmt,
                        Partition part, bool via);

/** Multi-core SpMA over row ranges; per-core output regions are
 *  assembled host-side. */
SpmaResult spmaParallel(MultiMachine &mm, const Csr &a, const Csr &b,
                        Partition part, bool via);

/** Multi-core SpMM partitioning A's rows. */
SpmmResult spmmParallel(MultiMachine &mm, const Csr &a, const Csc &b,
                        Partition part, bool via);

/**
 * Multi-core histogram: contiguous key chunks per core into private
 * partial arrays, reduced by core 0. Steal degenerates to
 * round-robin chunk interleaving (uniform chunk cost).
 */
HistResult histParallel(MultiMachine &mm,
                        const std::vector<Index> &keys, Index buckets,
                        Partition part, bool via);

/** Multi-core 4x4 stencil over output-row stripes (each core reads
 *  a 3-row halo of its neighbour's input rows). */
StencilResult stencilParallel(MultiMachine &mm, const DenseMatrix &img,
                              Partition part, bool via);

} // namespace via::kernels

#endif // VIA_KERNELS_PARALLEL_HH
