/**
 * @file
 * Run-level metrics collection: cycles, traffic, bandwidth, energy.
 *
 * Kernels are pure emit functions; the runner wraps one kernel run
 * on a fresh Machine and condenses the statistics the benchmark
 * harnesses report.
 */

#ifndef VIA_KERNELS_RUNNER_HH
#define VIA_KERNELS_RUNNER_HH

#include <cstdint>

#include "cpu/machine.hh"
#include "power/energy_model.hh"

namespace via::kernels
{

/** Condensed metrics of one finished kernel run. */
struct RunMetrics
{
    Tick cycles = 0;
    std::uint64_t insts = 0;
    std::uint64_t dramReadBytes = 0;
    std::uint64_t dramWriteBytes = 0;
    double dramBytesPerCycle = 0.0; //!< achieved DRAM bandwidth
    double ipc = 0.0;
    EnergyBreakdown energy;

    std::uint64_t
    dramBytes() const
    {
        return dramReadBytes + dramWriteBytes;
    }
};

/** Snapshot the metrics of a machine after a kernel ran on it. */
RunMetrics collectMetrics(const Machine &m,
                          const EnergyParams &eparams = {});

} // namespace via::kernels

#endif // VIA_KERNELS_RUNNER_HH
