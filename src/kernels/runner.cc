#include "kernels/runner.hh"

namespace via::kernels
{

RunMetrics
collectMetrics(const Machine &m, const EnergyParams &eparams)
{
    RunMetrics r;
    r.cycles = m.cycles();
    const CoreStats &cs = m.core().stats();
    r.insts = cs.insts;
    const DramStats &ds = m.memSystem().dram().stats();
    r.dramReadBytes = ds.bytesRead;
    r.dramWriteBytes = ds.bytesWritten;
    r.dramBytesPerCycle =
        r.cycles ? double(r.dramBytes()) / double(r.cycles) : 0.0;
    r.ipc = r.cycles ? double(r.insts) / double(r.cycles) : 0.0;
    r.energy = computeEnergy(m, eparams);
    return r;
}

} // namespace via::kernels
