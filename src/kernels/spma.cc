#include "kernels/spma.hh"

#include <algorithm>

#include "kernels/kernel_utils.hh"
#include "simcore/log.hh"

namespace via::kernels
{

namespace
{

constexpr ElemType VT = ElemType::F32;
constexpr ElemType IT = ElemType::I32;

/** Build the result matrix from the kernel's output arrays. */
Csr
assembleResult(const Machine &m, Addr c_col, Addr c_val,
               const std::vector<Index> &c_row_ptr, Index rows,
               Index cols)
{
    auto nnz = std::size_t(c_row_ptr.back());
    std::vector<Index> cols_out = downloadIndices(m, c_col, nnz);
    DenseVector vals_out = downloadValues(m, c_val, nnz);

    // CAM extraction order is insertion order; canonicalize by
    // rebuilding from triplets.
    Coo coo(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index k = c_row_ptr[std::size_t(r)];
             k < c_row_ptr[std::size_t(r) + 1]; ++k)
            coo.add(r, cols_out[std::size_t(k)],
                    vals_out[std::size_t(k)]);
    return Csr::fromCoo(std::move(coo));
}

} // namespace

SpmaResult
spmaScalarCsr(Machine &m, const Csr &a, const Csr &b)
{
    via_assert(a.rows() == b.rows() && a.cols() == b.cols(),
               "SpMA shape mismatch");
    Addr a_ptr = upload(m, a.rowPtr());
    Addr a_col = upload(m, a.colIdx());
    Addr a_val = upload(m, a.values());
    Addr b_ptr = upload(m, b.rowPtr());
    Addr b_col = upload(m, b.colIdx());
    Addr b_val = upload(m, b.values());

    std::size_t worst = a.nnz() + b.nnz();
    Addr c_col = m.mem().alloc(worst * sizeof(Index));
    Addr c_val = m.mem().alloc(worst * sizeof(Value));
    Addr c_ptr = m.mem().alloc((std::size_t(a.rows()) + 1) *
                               sizeof(Index));

    SReg s_ka{0}, s_kb{1}, s_acol{2}, s_bcol{3}, s_v{4}, s_v2{5},
        s_out{6}, s_r{7};

    std::vector<Index> c_row_ptr(std::size_t(a.rows()) + 1, 0);
    Index out = 0;
    m.sstore(c_ptr, s_out, 4);

    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_ka, a_ptr + 4 * (Addr(r) + 1), 4);
        m.sload(s_kb, b_ptr + 4 * (Addr(r) + 1), 4);
        Index ka = a.rowPtr()[std::size_t(r)];
        Index kb = b.rowPtr()[std::size_t(r)];
        Index ea = a.rowPtr()[std::size_t(r) + 1];
        Index eb = b.rowPtr()[std::size_t(r) + 1];

        auto emit_copy = [&](const Csr &src, Addr col_arr,
                             Addr val_arr, Index k, SReg cursor) {
            m.sload(s_acol, col_arr + 4 * Addr(k), 4);
            m.sloadF(s_v, val_arr + 4 * Addr(k), VT);
            m.sstore(c_col + 4 * Addr(out), s_acol, 4);
            m.sstoreF(c_val + 4 * Addr(out), s_v, VT);
            m.salu(cursor, k + 1, cursor);
            m.sbranch(cursor);
            (void)src;
        };

        while (ka < ea && kb < eb) {
            m.sload(s_acol, a_col + 4 * Addr(ka), 4);
            m.sload(s_bcol, b_col + 4 * Addr(kb), 4);
            m.salu(s_v, 0, s_acol, s_bcol); // compare
            Index ca = a.colIdx()[std::size_t(ka)];
            Index cb = b.colIdx()[std::size_t(kb)];
            // The merge's control flow depends on the index data —
            // these branches are what real merge loops mispredict.
            m.sbranchData(s_v, 1, ca == cb);
            if (ca != cb)
                m.sbranchData(s_v, 2, ca < cb);
            if (ca == cb) {
                m.sloadF(s_v, a_val + 4 * Addr(ka), VT);
                m.sloadF(s_v2, b_val + 4 * Addr(kb), VT);
                m.sfadd(s_v, s_v, s_v2);
                m.sstore(c_col + 4 * Addr(out), s_acol, 4);
                m.sstoreF(c_val + 4 * Addr(out), s_v, VT);
                m.salu(s_ka, ka + 1, s_ka);
                m.salu(s_kb, kb + 1, s_kb);
                ++ka;
                ++kb;
            } else if (ca < cb) {
                m.sloadF(s_v, a_val + 4 * Addr(ka), VT);
                m.sstore(c_col + 4 * Addr(out), s_acol, 4);
                m.sstoreF(c_val + 4 * Addr(out), s_v, VT);
                m.salu(s_ka, ka + 1, s_ka);
                ++ka;
            } else {
                m.sloadF(s_v, b_val + 4 * Addr(kb), VT);
                m.sstore(c_col + 4 * Addr(out), s_bcol, 4);
                m.sstoreF(c_val + 4 * Addr(out), s_v, VT);
                m.salu(s_kb, kb + 1, s_kb);
                ++kb;
            }
            m.salu(s_out, out + 1, s_out);
            ++out;
        }
        while (ka < ea) {
            emit_copy(a, a_col, a_val, ka, s_ka);
            ++ka;
            ++out;
        }
        while (kb < eb) {
            emit_copy(b, b_col, b_val, kb, s_kb);
            ++kb;
            ++out;
        }
        m.sstore(c_ptr + 4 * (Addr(r) + 1), s_out, 4);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
        c_row_ptr[std::size_t(r) + 1] = out;
    }

    return SpmaResult{assembleResult(m, c_col, c_val, c_row_ptr,
                                     a.rows(), a.cols()),
                      m.cycles()};
}

SpmaResult
spmaViaCsr(Machine &m, const Csr &a, const Csr &b)
{
    via_assert(a.rows() == b.rows() && a.cols() == b.cols(),
               "SpMA shape mismatch");
    Addr a_ptr = upload(m, a.rowPtr());
    Addr a_col = upload(m, a.colIdx());
    Addr a_val = upload(m, a.values());
    Addr b_ptr = upload(m, b.rowPtr());
    Addr b_col = upload(m, b.colIdx());
    Addr b_val = upload(m, b.values());

    std::size_t worst = a.nnz() + b.nnz();
    Addr c_col = m.mem().alloc(worst * sizeof(Index));
    Addr c_val = m.mem().alloc(worst * sizeof(Value));
    Addr c_ptr = m.mem().alloc((std::size_t(a.rows()) + 1) *
                               sizeof(Index));

    const int vl = int(m.vl());
    const auto cam_cap = Index(m.sspm().config().camEntries());

    VReg v_col{0}, v_val{1}, v_keys{2}, v_out{3}, v_dummy{4};
    SReg s_ea{0}, s_eb{1}, s_cnt{2}, s_k{3}, s_out{6}, s_r{7};

    std::vector<Index> c_row_ptr(std::size_t(a.rows()) + 1, 0);
    Index out = 0;
    m.sstore(c_ptr, s_out, 4);

    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_ea, a_ptr + 4 * (Addr(r) + 1), 4);
        m.sload(s_eb, b_ptr + 4 * (Addr(r) + 1), 4);
        Index ka = a.rowPtr()[std::size_t(r)];
        Index kb = b.rowPtr()[std::size_t(r)];
        Index ea = a.rowPtr()[std::size_t(r) + 1];
        Index eb = b.rowPtr()[std::size_t(r) + 1];

        // Tile the row into column ranges whose combined element
        // count bounds the CAM occupancy.
        while (ka < ea || kb < eb) {
            Index seg_a_end = ka, seg_b_end = kb;
            Index budget = cam_cap;
            // Two-pointer walk in column order.
            while (budget > 0 &&
                   (seg_a_end < ea || seg_b_end < eb)) {
                Index ca = seg_a_end < ea
                               ? a.colIdx()[std::size_t(seg_a_end)]
                               : a.cols();
                Index cb = seg_b_end < eb
                               ? b.colIdx()[std::size_t(seg_b_end)]
                               : b.cols();
                if (ca <= cb)
                    ++seg_a_end;
                if (cb <= ca)
                    ++seg_b_end;
                --budget;
            }

            // Phase 1: A's segment into the CAM.
            m.vidxClear();
            for (Index k = ka; k < seg_a_end; k += vl) {
                int n = std::min<Index>(vl, seg_a_end - k);
                m.vload(v_col, a_col + 4 * Addr(k), IT, n);
                m.vload(v_val, a_val + 4 * Addr(k), VT, n);
                m.vidxLoadC(v_val, v_col, n);
                m.salu(s_k, k + vl, s_k);
                m.sbranch(s_k);
            }
            // Phase 2: B's segment merges through the CAM.
            for (Index k = kb; k < seg_b_end; k += vl) {
                int n = std::min<Index>(vl, seg_b_end - k);
                m.vload(v_col, b_col + 4 * Addr(k), IT, n);
                m.vload(v_val, b_val + 4 * Addr(k), VT, n);
                m.vidxAddC(v_val, v_col, ViaOut::Sspm, v_dummy, n);
                m.salu(s_k, k + vl, s_k);
                m.sbranch(s_k);
            }
            // Phase 3: extraction.
            m.vidxCount(s_cnt);
            auto cnt = Index(m.sregI(s_cnt));
            for (Index i = 0; i < cnt; i += vl) {
                int n = std::min<Index>(vl, cnt - i);
                m.vidxKeys(v_keys, std::uint32_t(i), n);
                m.vidxVals(v_out, std::uint32_t(i), n);
                m.vstore(c_col + 4 * Addr(out + i), v_keys, IT, n,
                         s_cnt);
                m.vstore(c_val + 4 * Addr(out + i), v_out, VT, n,
                         s_cnt);
                m.salu(s_k, i + vl, s_k);
                m.sbranch(s_k);
            }
            out += cnt;
            ka = seg_a_end;
            kb = seg_b_end;
        }
        m.sstore(c_ptr + 4 * (Addr(r) + 1), s_out, 4);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
        c_row_ptr[std::size_t(r) + 1] = out;
    }

    return SpmaResult{assembleResult(m, c_col, c_val, c_row_ptr,
                                     a.rows(), a.cols()),
                      m.cycles()};
}

} // namespace via::kernels
