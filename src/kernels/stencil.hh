/**
 * @file
 * 4x4 Gaussian convolution stencil (paper Section IV-F2, Algorithm
 * 6; evaluated in Section VII-D / Figure 12.b).
 *
 * Baseline: per-output-pixel vectorization across the 16 filter
 * taps — the natural compiler-vectorized form of a small 2-D
 * convolution. The 4x4 neighbourhood spans four image rows, so the
 * taps are collected with two 8-element gathers per pixel.
 *
 * VIA: the filter and an image segment are staged in the SSPM;
 * each pixel's taps are read with two vidx.mul.d instructions using
 * access-pattern index vectors (Algorithm 6), reduced, and written
 * out. Neighbour accesses never touch the cache hierarchy.
 */

#ifndef VIA_KERNELS_STENCIL_HH
#define VIA_KERNELS_STENCIL_HH

#include "cpu/machine.hh"
#include "sparse/dense.hh"

namespace via::kernels
{

/** Result of one stencil run. */
struct StencilResult
{
    DenseMatrix out;
    Tick cycles = 0;
};

StencilResult stencilVector(Machine &m, const DenseMatrix &img);
StencilResult stencilVia(Machine &m, const DenseMatrix &img);

} // namespace via::kernels

#endif // VIA_KERNELS_STENCIL_HH
