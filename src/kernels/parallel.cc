#include "kernels/parallel.hh"

#include <algorithm>

#include "kernels/kernel_utils.hh"
#include "kernels/reference.hh"
#include "sparse/coo.hh"
#include "simcore/log.hh"

namespace via::kernels
{

namespace
{

constexpr ElemType VT = ElemType::F32;
constexpr ElemType IT = ElemType::I32;

/** Steal cuts the iteration space into this many chunks per core. */
constexpr Index kStealChunksPerCore = 8;

Index
stealChunk(Index n, unsigned cores)
{
    Index parts = Index(cores) * kStealChunksPerCore;
    return std::max<Index>(1, (n + parts - 1) / parts);
}

/**
 * Hand contiguous ranges of [0, n) to per-core bodies. Static: one
 * balanced range per core. Steal: chunks in range order, each to the
 * core whose commit front is earliest at assignment time (greedy
 * least-loaded; ties resolve to the lowest core id, so the schedule
 * is deterministic).
 */
template <typename Body>
void
dispatchUnits(MultiMachine &mm, Index n, Partition part, Body &&body)
{
    const unsigned cores = mm.cores();
    if (n <= 0)
        return;
    if (cores == 1) {
        body(0, 0, n);
        return;
    }
    if (part == Partition::Static) {
        // The assignment is static, but the *emission* interleaves
        // chunk-sized slices of the per-core ranges round-robin.
        // The cores run concurrently, so their timelines must
        // advance together: the shared LLC banks and DRAM pipe book
        // cycles on a sliding window (Resource), and emitting one
        // core's whole share first would slide the window past its
        // siblings' start times, serializing them behind it.
        auto ranges = staticRanges(n, cores);
        const Index chunk = stealChunk(n, cores);
        for (bool more = true; more;) {
            more = false;
            for (unsigned c = 0; c < cores; ++c) {
                Index lo = ranges[c].first;
                if (lo >= ranges[c].second)
                    continue;
                Index hi =
                    std::min<Index>(lo + chunk, ranges[c].second);
                body(c, lo, hi);
                ranges[c].first = hi;
                if (hi < ranges[c].second)
                    more = true;
            }
        }
        return;
    }
    const Index chunk = stealChunk(n, cores);
    for (Index lo = 0; lo < n; lo += chunk) {
        Index hi = std::min<Index>(lo + chunk, n);
        unsigned best = 0;
        for (unsigned c = 1; c < cores; ++c)
            if (mm.core(c).cycles() < mm.core(best).cycles())
                best = c;
        body(best, lo, hi);
    }
}

/**
 * Pre-computed per-core range lists, for kernels that must see all
 * of a core's work before emitting (the histogram's bucket-tiled
 * passes re-walk the core's whole key share per bucket range).
 * Steal becomes round-robin chunk interleaving: chunk costs are
 * uniform, so least-loaded and round-robin coincide.
 */
std::vector<std::vector<std::pair<Index, Index>>>
assignRanges(unsigned cores, Index n, Partition part)
{
    std::vector<std::vector<std::pair<Index, Index>>> out(cores);
    if (n <= 0)
        return out;
    if (cores == 1) {
        out[0].push_back({0, n});
        return out;
    }
    if (part == Partition::Static) {
        // Same contiguous share per core as dispatchUnits' static
        // split, but sliced into chunk-sized consecutive pieces so
        // the caller can interleave emission across cores (one
        // piece per core per round) and keep the concurrent
        // timelines within the shared resources' booking windows.
        auto ranges = staticRanges(n, cores);
        const Index chunk = stealChunk(n, cores);
        for (unsigned c = 0; c < cores; ++c)
            for (Index lo = ranges[c].first; lo < ranges[c].second;
                 lo += chunk)
                out[c].push_back(
                    {lo, std::min<Index>(lo + chunk,
                                         ranges[c].second)});
        return out;
    }
    const Index chunk = stealChunk(n, cores);
    unsigned c = 0;
    for (Index lo = 0; lo < n; lo += chunk) {
        out[c].push_back({lo, std::min<Index>(lo + chunk, n)});
        c = (c + 1) % cores;
    }
    return out;
}

/** Which core produced a row's slice of a per-core output array. */
struct RowSlice
{
    int core = -1;
    Index start = 0;
    Index count = 0;
};

} // namespace

Partition
parsePartition(const std::string &name)
{
    if (name == "static")
        return Partition::Static;
    if (name == "steal")
        return Partition::Steal;
    via_fatal("unknown partition '", name, "' (static, steal)");
}

const char *
partitionName(Partition p)
{
    return p == Partition::Static ? "static" : "steal";
}

std::vector<std::pair<Index, Index>>
staticRanges(Index n, unsigned cores)
{
    std::vector<std::pair<Index, Index>> out;
    out.reserve(cores);
    Index base = n / Index(cores);
    Index rem = n % Index(cores);
    Index lo = 0;
    for (unsigned c = 0; c < cores; ++c) {
        Index len = base + (Index(c) < rem ? 1 : 0);
        out.push_back({lo, lo + len});
        lo += len;
    }
    return out;
}

// --------------------------------------------------------------- SpMV

namespace
{

SpmvResult
spmvParallelCsr(MultiMachine &mm, const Csr &a, const DenseVector &x,
                Partition part, bool via)
{
    Machine &m0 = mm.core(0);
    Addr row_ptr = upload(m0, a.rowPtr());
    Addr col_idx = upload(m0, a.colIdx());
    Addr values = upload(m0, a.values());
    Addr xa = upload(m0, x);
    Addr ya = allocValues(m0, std::size_t(a.rows()));

    const bool x_fits =
        via && std::uint64_t(a.cols()) <=
                   m0.sspm().config().sramEntries();
    std::vector<char> staged(mm.cores(), 0);

    dispatchUnits(mm, a.rows(), part, [&](unsigned c, Index lo_r,
                                          Index hi_r) {
        Machine &m = mm.core(c);
        const int vl = int(m.vl());
        VReg v_val{0}, v_col{1}, v_x{2}, v_acc{3}, v_idx{4},
            v_prod{5};
        SReg s_end{1}, s_acc{5}, s_k{0}, s_r{7}, s_i{2};

        if (x_fits && !staged[c]) {
            // Stage the dense vector in this core's scratchpad once.
            m.vidxClear();
            for (Index i = 0; i < a.cols(); i += vl) {
                int n = std::min<Index>(vl, a.cols() - i);
                m.vload(v_x, xa + 4 * Addr(i), VT, n);
                m.viotaI(v_idx, i);
                m.vidxLoadD(v_x, v_idx, n);
                m.salu(s_i, i + vl, s_i);
                m.sbranch(s_i);
            }
            staged[c] = 1;
        }

        for (Index r = lo_r; r < hi_r; ++r) {
            m.sload(s_end, row_ptr + 4 * (Addr(r) + 1), 4);
            m.vbroadcastF(v_acc, 0.0);
            Index lo = a.rowPtr()[std::size_t(r)];
            Index end = a.rowPtr()[std::size_t(r) + 1];
            for (Index k = lo; k < end; k += vl) {
                int n = std::min<Index>(vl, end - k);
                m.vload(v_val, values + 4 * Addr(k), VT, n);
                m.vload(v_col, col_idx + 4 * Addr(k), IT, n);
                if (x_fits) {
                    m.vidxMulD(v_val, v_col, ViaOut::Vrf, v_prod, 0,
                               n);
                } else {
                    m.vgather(v_x, xa, v_col, VT, n);
                    m.vmulF(v_prod, v_val, v_x, n);
                }
                m.vaddF(v_acc, v_acc, v_prod, n);
                m.salu(s_k, k + vl, s_k);
                m.sbranch(s_k);
            }
            m.vredsumF(s_acc, v_acc);
            m.sstoreF(ya + 4 * Addr(r), s_acc, VT);
            m.salu(s_r, r + 1, s_r);
            m.sbranch(s_r);
        }
    });

    return SpmvResult{downloadValues(m0, ya, std::size_t(a.rows())),
                      mm.cycles()};
}

SpmvResult
spmvParallelCsb(MultiMachine &mm, const Csr &csr_a,
                const DenseVector &x, Partition part, bool via)
{
    Machine &m0 = mm.core(0);
    const Csb a = Csb::fromCsr(csr_a, viaCsbBeta(m0));

    Addr packed = upload(m0, a.packedIdx());
    Addr values = upload(m0, a.values());
    Addr block_ptr = upload(m0, a.blockPtr());
    Addr xa = upload(m0, x);
    Addr ya = allocValues(m0, std::size_t(a.rows()));

    const Index beta = a.beta();
    const auto col_bits = a.colBits();
    const Index bcols = a.blockCols();
    if (via)
        via_assert(std::uint64_t(2 * beta) <=
                       m0.sspm().config().sramEntries(),
                   "CSB block side ", beta, " does not fit the SSPM");

    // Block rows partition: each owns y rows [br*beta, (br+1)*beta).
    dispatchUnits(mm, a.blockRows(), part, [&](unsigned c,
                                               Index br_lo,
                                               Index br_hi) {
        Machine &m = mm.core(c);
        const int vl = int(m.vl());

        if (!via) {
            VReg v_idx{0}, v_val{1}, v_col{2}, v_row{3}, v_x{4},
                v_y{5}, v_prod{6};
            SReg s_end{1}, s_k{0}, s_b{7};
            for (Index br = br_lo; br < br_hi; ++br) {
                for (Index bc = 0; bc < bcols; ++bc) {
                    Index b = br * bcols + bc;
                    m.sload(s_end, block_ptr + 4 * (Addr(b) + 1), 4);
                    Index lo = a.blockPtr()[std::size_t(b)];
                    Index end = a.blockPtr()[std::size_t(b) + 1];
                    if (lo == end) {
                        m.sbranch(s_end);
                        continue;
                    }
                    Addr row_base = ya + 4 * Addr(br) * Addr(beta);
                    Addr col_base = xa + 4 * Addr(bc) * Addr(beta);
                    for (Index k = lo; k < end; k += vl) {
                        int n = std::min<Index>(vl, end - k);
                        m.vload(v_idx, packed + 4 * Addr(k), IT, n);
                        m.vload(v_val, values + 4 * Addr(k), VT, n);
                        m.vandI(v_col, v_idx, beta - 1, n);
                        m.vshrI(v_row, v_idx, col_bits, n);
                        m.vgather(v_x, col_base, v_col, VT, n);
                        m.vmulF(v_prod, v_val, v_x, n);
                        m.vconflict(v_y, v_row, n);
                        m.vmergeIdx(v_prod, v_prod, v_row, n);
                        m.vgather(v_y, row_base, v_row, VT, n);
                        m.vaddF(v_y, v_y, v_prod, n);
                        m.vscatter(row_base, v_row, v_y, VT, n);
                        m.salu(s_k, k + vl, s_k);
                        m.sbranch(s_k);
                    }
                    m.salu(s_b, b + 1, s_b);
                    m.sbranch(s_b);
                }
            }
            return;
        }

        VReg v_idx{0}, v_val{1}, v_x{2}, v_out{3};
        SReg s_end{1}, s_k{0}, s_b{7}, s_i{2};
        const std::int64_t y_off = beta;

        m.vidxClear();
        for (Index br = br_lo; br < br_hi; ++br) {
            Index row_lo = br * beta;
            Index row_hi = std::min<Index>(row_lo + beta, a.rows());
            for (Index bc = 0; bc < bcols; ++bc) {
                Index b = br * bcols + bc;
                m.sload(s_end, block_ptr + 4 * (Addr(b) + 1), 4);
                Index lo = a.blockPtr()[std::size_t(b)];
                Index end = a.blockPtr()[std::size_t(b) + 1];
                if (lo == end) {
                    m.sbranch(s_end);
                    continue;
                }
                Index col_lo = bc * beta;
                Index col_hi =
                    std::min<Index>(col_lo + beta, a.cols());
                for (Index i = col_lo; i < col_hi; i += vl) {
                    int n = std::min<Index>(vl, col_hi - i);
                    m.vload(v_x, xa + 4 * Addr(i), VT, n);
                    m.viotaI(v_idx, i - col_lo);
                    m.vidxLoadD(v_x, v_idx, n);
                    m.salu(s_i, i + vl, s_i);
                    m.sbranch(s_i);
                }
                for (Index k = lo; k < end; k += vl) {
                    int n = std::min<Index>(vl, end - k);
                    m.vload(v_idx, packed + 4 * Addr(k), IT, n);
                    m.vload(v_val, values + 4 * Addr(k), VT, n);
                    m.vidxBlkMulD(v_val, v_idx, col_bits, y_off, n);
                    m.salu(s_k, k + vl, s_k);
                    m.sbranch(s_k);
                }
                m.salu(s_b, b + 1, s_b);
                m.sbranch(s_b);
            }
            for (Index i = row_lo; i < row_hi; i += vl) {
                int n = std::min<Index>(vl, row_hi - i);
                m.viotaI(v_idx, y_off + (i - row_lo));
                m.vidxMov(v_out, v_idx, n);
                m.vstore(ya + 4 * Addr(i), v_out, VT, n, s_i);
                m.salu(s_i, i + vl, s_i);
                m.sbranch(s_i);
            }
            m.vidxClearSegment(std::uint64_t(y_off),
                               std::uint64_t(y_off + beta));
        }
    });

    return SpmvResult{downloadValues(m0, ya, std::size_t(a.rows())),
                      mm.cycles()};
}

} // namespace

SpmvResult
spmvParallel(MultiMachine &mm, const Csr &a, const DenseVector &x,
             const std::string &fmt, Partition part, bool via)
{
    via_assert(a.cols() == Index(x.size()), "SpMV shape mismatch");
    if (fmt == "csr")
        return spmvParallelCsr(mm, a, x, part, via);
    if (fmt == "csb")
        return spmvParallelCsb(mm, a, x, part, via);
    via_fatal("spmv format '", fmt,
              "' has no multi-core variant (csr, csb)");
}

// --------------------------------------------------------------- SpMA

SpmaResult
spmaParallel(MultiMachine &mm, const Csr &a, const Csr &b,
             Partition part, bool via)
{
    via_assert(a.rows() == b.rows() && a.cols() == b.cols(),
               "SpMA shape mismatch");
    Machine &m0 = mm.core(0);
    Addr a_ptr = upload(m0, a.rowPtr());
    Addr a_col = upload(m0, a.colIdx());
    Addr a_val = upload(m0, a.values());
    Addr b_ptr = upload(m0, b.rowPtr());
    Addr b_col = upload(m0, b.colIdx());
    Addr b_val = upload(m0, b.values());

    // Chunks move between cores under stealing, so every core gets a
    // full worst-case output region; the host stitches rows back
    // together afterwards.
    const std::size_t worst = a.nnz() + b.nnz();
    const unsigned cores = mm.cores();
    std::vector<Addr> c_col(cores), c_val(cores), c_ptr(cores);
    for (unsigned c = 0; c < cores; ++c) {
        c_col[c] = m0.mem().alloc(worst * sizeof(Index));
        c_val[c] = m0.mem().alloc(worst * sizeof(Value));
        c_ptr[c] = m0.mem().alloc((std::size_t(a.rows()) + 1) *
                                  sizeof(Index));
    }
    std::vector<Index> out(cores, 0);
    std::vector<RowSlice> slices(std::size_t(a.rows()));

    dispatchUnits(mm, a.rows(), part, [&](unsigned c, Index lo_r,
                                          Index hi_r) {
        Machine &m = mm.core(c);
        for (Index r = lo_r; r < hi_r; ++r) {
            Index row_start = out[c];
            Index ka = a.rowPtr()[std::size_t(r)];
            Index kb = b.rowPtr()[std::size_t(r)];
            Index ea = a.rowPtr()[std::size_t(r) + 1];
            Index eb = b.rowPtr()[std::size_t(r) + 1];

            if (!via) {
                SReg s_ka{0}, s_kb{1}, s_acol{2}, s_bcol{3}, s_v{4},
                    s_v2{5}, s_out{6}, s_r{7};
                m.sload(s_ka, a_ptr + 4 * (Addr(r) + 1), 4);
                m.sload(s_kb, b_ptr + 4 * (Addr(r) + 1), 4);

                auto emit_copy = [&](Addr col_arr, Addr val_arr,
                                     Index k, SReg cursor) {
                    m.sload(s_acol, col_arr + 4 * Addr(k), 4);
                    m.sloadF(s_v, val_arr + 4 * Addr(k), VT);
                    m.sstore(c_col[c] + 4 * Addr(out[c]), s_acol, 4);
                    m.sstoreF(c_val[c] + 4 * Addr(out[c]), s_v, VT);
                    m.salu(cursor, k + 1, cursor);
                    m.sbranch(cursor);
                };

                while (ka < ea && kb < eb) {
                    m.sload(s_acol, a_col + 4 * Addr(ka), 4);
                    m.sload(s_bcol, b_col + 4 * Addr(kb), 4);
                    m.salu(s_v, 0, s_acol, s_bcol);
                    Index ca = a.colIdx()[std::size_t(ka)];
                    Index cb = b.colIdx()[std::size_t(kb)];
                    m.sbranchData(s_v, 1, ca == cb);
                    if (ca != cb)
                        m.sbranchData(s_v, 2, ca < cb);
                    if (ca == cb) {
                        m.sloadF(s_v, a_val + 4 * Addr(ka), VT);
                        m.sloadF(s_v2, b_val + 4 * Addr(kb), VT);
                        m.sfadd(s_v, s_v, s_v2);
                        m.sstore(c_col[c] + 4 * Addr(out[c]), s_acol,
                                 4);
                        m.sstoreF(c_val[c] + 4 * Addr(out[c]), s_v,
                                  VT);
                        m.salu(s_ka, ka + 1, s_ka);
                        m.salu(s_kb, kb + 1, s_kb);
                        ++ka;
                        ++kb;
                    } else if (ca < cb) {
                        m.sloadF(s_v, a_val + 4 * Addr(ka), VT);
                        m.sstore(c_col[c] + 4 * Addr(out[c]), s_acol,
                                 4);
                        m.sstoreF(c_val[c] + 4 * Addr(out[c]), s_v,
                                  VT);
                        m.salu(s_ka, ka + 1, s_ka);
                        ++ka;
                    } else {
                        m.sloadF(s_v, b_val + 4 * Addr(kb), VT);
                        m.sstore(c_col[c] + 4 * Addr(out[c]), s_bcol,
                                 4);
                        m.sstoreF(c_val[c] + 4 * Addr(out[c]), s_v,
                                  VT);
                        m.salu(s_kb, kb + 1, s_kb);
                        ++kb;
                    }
                    m.salu(s_out, out[c] + 1, s_out);
                    ++out[c];
                }
                while (ka < ea) {
                    emit_copy(a_col, a_val, ka, s_ka);
                    ++ka;
                    ++out[c];
                }
                while (kb < eb) {
                    emit_copy(b_col, b_val, kb, s_kb);
                    ++kb;
                    ++out[c];
                }
                m.sstore(c_ptr[c] + 4 * (Addr(r) + 1), s_out, 4);
                m.salu(s_r, r + 1, s_r);
                m.sbranch(s_r);
            } else {
                const int vl = int(m.vl());
                const auto cam_cap =
                    Index(m.sspm().config().camEntries());
                VReg v_col{0}, v_val{1}, v_keys{2}, v_out{3},
                    v_dummy{4};
                SReg s_ea{0}, s_eb{1}, s_cnt{2}, s_k{3}, s_out{6},
                    s_r{7};
                m.sload(s_ea, a_ptr + 4 * (Addr(r) + 1), 4);
                m.sload(s_eb, b_ptr + 4 * (Addr(r) + 1), 4);

                while (ka < ea || kb < eb) {
                    Index seg_a_end = ka, seg_b_end = kb;
                    Index budget = cam_cap;
                    while (budget > 0 &&
                           (seg_a_end < ea || seg_b_end < eb)) {
                        Index ca =
                            seg_a_end < ea
                                ? a.colIdx()[std::size_t(seg_a_end)]
                                : a.cols();
                        Index cb =
                            seg_b_end < eb
                                ? b.colIdx()[std::size_t(seg_b_end)]
                                : b.cols();
                        if (ca <= cb)
                            ++seg_a_end;
                        if (cb <= ca)
                            ++seg_b_end;
                        --budget;
                    }
                    m.vidxClear();
                    for (Index k = ka; k < seg_a_end; k += vl) {
                        int n = std::min<Index>(vl, seg_a_end - k);
                        m.vload(v_col, a_col + 4 * Addr(k), IT, n);
                        m.vload(v_val, a_val + 4 * Addr(k), VT, n);
                        m.vidxLoadC(v_val, v_col, n);
                        m.salu(s_k, k + vl, s_k);
                        m.sbranch(s_k);
                    }
                    for (Index k = kb; k < seg_b_end; k += vl) {
                        int n = std::min<Index>(vl, seg_b_end - k);
                        m.vload(v_col, b_col + 4 * Addr(k), IT, n);
                        m.vload(v_val, b_val + 4 * Addr(k), VT, n);
                        m.vidxAddC(v_val, v_col, ViaOut::Sspm,
                                   v_dummy, n);
                        m.salu(s_k, k + vl, s_k);
                        m.sbranch(s_k);
                    }
                    m.vidxCount(s_cnt);
                    auto cnt = Index(m.sregI(s_cnt));
                    for (Index i = 0; i < cnt; i += vl) {
                        int n = std::min<Index>(vl, cnt - i);
                        m.vidxKeys(v_keys, std::uint32_t(i), n);
                        m.vidxVals(v_out, std::uint32_t(i), n);
                        m.vstore(c_col[c] + 4 * Addr(out[c] + i),
                                 v_keys, IT, n, s_cnt);
                        m.vstore(c_val[c] + 4 * Addr(out[c] + i),
                                 v_out, VT, n, s_cnt);
                        m.salu(s_k, i + vl, s_k);
                        m.sbranch(s_k);
                    }
                    out[c] += cnt;
                    ka = seg_a_end;
                    kb = seg_b_end;
                }
                m.sstore(c_ptr[c] + 4 * (Addr(r) + 1), s_out, 4);
                m.salu(s_r, r + 1, s_r);
                m.sbranch(s_r);
            }
            slices[std::size_t(r)] =
                RowSlice{int(c), row_start, out[c] - row_start};
        }
    });

    // Stitch the per-core slices back into one canonical matrix.
    std::vector<std::vector<Index>> cols_out(cores);
    std::vector<DenseVector> vals_out(cores);
    for (unsigned c = 0; c < cores; ++c) {
        cols_out[c] =
            downloadIndices(m0, c_col[c], std::size_t(out[c]));
        vals_out[c] =
            downloadValues(m0, c_val[c], std::size_t(out[c]));
    }
    Coo coo(a.rows(), a.cols());
    for (Index r = 0; r < a.rows(); ++r) {
        const RowSlice &s = slices[std::size_t(r)];
        for (Index k = 0; k < s.count; ++k) {
            auto idx = std::size_t(s.start + k);
            coo.add(r, cols_out[unsigned(s.core)][idx],
                    vals_out[unsigned(s.core)][idx]);
        }
    }
    return SpmaResult{Csr::fromCoo(std::move(coo)), mm.cycles()};
}

// --------------------------------------------------------------- SpMM

SpmmResult
spmmParallel(MultiMachine &mm, const Csr &a, const Csc &b,
             Partition part, bool via)
{
    via_assert(a.cols() == b.rows(), "SpMM shape mismatch");
    Machine &m0 = mm.core(0);
    Addr a_ptr = upload(m0, a.rowPtr());
    Addr a_col = upload(m0, a.colIdx());
    Addr a_val = upload(m0, a.values());
    Addr b_ptr = upload(m0, b.colPtr());
    Addr b_row = upload(m0, b.rowIdx());
    Addr b_val = upload(m0, b.values());

    std::size_t bound =
        std::size_t(a.rows()) * std::size_t(b.cols());
    std::size_t alt =
        a.nnz() * std::size_t(std::max<Index>(b.maxColNnz(), 1));
    bound = std::min(bound, alt + 1);

    const unsigned cores = mm.cores();
    std::vector<Addr> c_col(cores), c_val(cores), c_ptr(cores);
    for (unsigned c = 0; c < cores; ++c) {
        c_col[c] = m0.mem().alloc(bound * sizeof(Index));
        c_val[c] = m0.mem().alloc(bound * sizeof(Value));
        c_ptr[c] = m0.mem().alloc((std::size_t(a.rows()) + 1) *
                                  sizeof(Index));
    }
    std::vector<Index> out(cores, 0);
    std::vector<RowSlice> slices(std::size_t(a.rows()));

    if (via) {
        const auto cam_cap = Index(m0.sspm().config().camEntries());
        via_assert(a.maxRowNnz() <= cam_cap, "A row exceeds the CAM (",
                   cam_cap, " entries)");
    }

    dispatchUnits(mm, a.rows(), part, [&](unsigned c, Index lo_r,
                                          Index hi_r) {
        Machine &m = mm.core(c);
        const int vl = int(m.vl());
        for (Index r = lo_r; r < hi_r; ++r) {
            Index row_start = out[c];
            Index a_lo = a.rowPtr()[std::size_t(r)];
            Index a_hi = a.rowPtr()[std::size_t(r) + 1];

            if (!via) {
                SReg s_ka{0}, s_kb{1}, s_ai{2}, s_bi{3}, s_v{4},
                    s_v2{5}, s_acc{6}, s_out{7}, s_j{8}, s_r{9};
                m.sload(s_ka, a_ptr + 4 * (Addr(r) + 1), 4);
                if (a_lo == a_hi) {
                    m.sbranch(s_ka);
                    m.sstore(c_ptr[c] + 4 * (Addr(r) + 1), s_out, 4);
                    slices[std::size_t(r)] =
                        RowSlice{int(c), row_start, 0};
                    continue;
                }
                for (Index j = 0; j < b.cols(); ++j) {
                    m.sload(s_kb, b_ptr + 4 * (Addr(j) + 1), 4);
                    m.sbranch(s_kb);
                    Index b_lo = b.colPtr()[std::size_t(j)];
                    Index b_hi = b.colPtr()[std::size_t(j) + 1];
                    if (b_lo == b_hi)
                        continue;
                    m.salu(s_acc, 0);
                    Index ka = a_lo, kb = b_lo;
                    bool any = false;
                    while (ka < a_hi && kb < b_hi) {
                        m.sload(s_ai, a_col + 4 * Addr(ka), 4);
                        m.sload(s_bi, b_row + 4 * Addr(kb), 4);
                        m.salu(s_v, 0, s_ai, s_bi);
                        Index ca = a.colIdx()[std::size_t(ka)];
                        Index cb = b.rowIdx()[std::size_t(kb)];
                        m.sbranchData(s_v, 11, ca == cb);
                        if (ca != cb)
                            m.sbranchData(s_v, 12, ca < cb);
                        if (ca == cb) {
                            m.sloadF(s_v, a_val + 4 * Addr(ka), VT);
                            m.sloadF(s_v2, b_val + 4 * Addr(kb), VT);
                            m.sfmul(s_v, s_v, s_v2);
                            m.sfadd(s_acc, s_acc, s_v);
                            m.salu(s_ka, ka + 1, s_ka);
                            m.salu(s_kb, kb + 1, s_kb);
                            ++ka;
                            ++kb;
                            any = true;
                        } else if (ca < cb) {
                            m.salu(s_ka, ka + 1, s_ka);
                            ++ka;
                        } else {
                            m.salu(s_kb, kb + 1, s_kb);
                            ++kb;
                        }
                    }
                    if (any) {
                        m.simm(s_v, j);
                        m.sstore(c_col[c] + 4 * Addr(out[c]), s_v,
                                 4);
                        m.sstoreF(c_val[c] + 4 * Addr(out[c]), s_acc,
                                  VT);
                        m.salu(s_out, out[c] + 1, s_out);
                        ++out[c];
                    }
                    m.salu(s_j, j + 1, s_j);
                    m.sbranch(s_j);
                }
                m.sstore(c_ptr[c] + 4 * (Addr(r) + 1), s_out, 4);
                m.salu(s_r, r + 1, s_r);
                m.sbranch(s_r);
            } else {
                VReg v_col{0}, v_val{1}, v_prod{2}, v_acc{3};
                SReg s_ka{0}, s_kb{1}, s_acc{2}, s_out{7}, s_j{8},
                    s_r{9}, s_k{10};
                m.sload(s_ka, a_ptr + 4 * (Addr(r) + 1), 4);
                if (a_lo == a_hi) {
                    m.sbranch(s_ka);
                    m.sstore(c_ptr[c] + 4 * (Addr(r) + 1), s_out, 4);
                    slices[std::size_t(r)] =
                        RowSlice{int(c), row_start, 0};
                    continue;
                }
                m.vidxClear();
                for (Index k = a_lo; k < a_hi; k += vl) {
                    int n = std::min<Index>(vl, a_hi - k);
                    m.vload(v_col, a_col + 4 * Addr(k), IT, n);
                    m.vload(v_val, a_val + 4 * Addr(k), VT, n);
                    m.vidxLoadC(v_val, v_col, n);
                    m.salu(s_k, k + vl, s_k);
                    m.sbranch(s_k);
                }
                for (Index j = 0; j < b.cols(); ++j) {
                    m.sload(s_kb, b_ptr + 4 * (Addr(j) + 1), 4);
                    m.sbranch(s_kb);
                    Index b_lo = b.colPtr()[std::size_t(j)];
                    Index b_hi = b.colPtr()[std::size_t(j) + 1];
                    if (b_lo == b_hi)
                        continue;
                    m.vbroadcastF(v_acc, 0.0);
                    bool any = false;
                    for (Index k = b_lo; k < b_hi; k += vl) {
                        int n = std::min<Index>(vl, b_hi - k);
                        m.vload(v_col, b_row + 4 * Addr(k), IT, n);
                        m.vload(v_val, b_val + 4 * Addr(k), VT, n);
                        m.vidxMulC(v_val, v_col, ViaOut::Vrf, v_prod,
                                   n);
                        m.vaddF(v_acc, v_acc, v_prod, n);
                        m.salu(s_k, k + vl, s_k);
                        m.sbranch(s_k);
                    }
                    for (Index k = b_lo; k < b_hi && !any; ++k) {
                        Index row = b.rowIdx()[std::size_t(k)];
                        const auto &acols = a.colIdx();
                        any = std::binary_search(
                            acols.begin() + a_lo,
                            acols.begin() + a_hi, row);
                    }
                    m.vredsumF(s_acc, v_acc);
                    if (any) {
                        m.simm(s_k, j);
                        m.sstore(c_col[c] + 4 * Addr(out[c]), s_k,
                                 4);
                        m.sstoreF(c_val[c] + 4 * Addr(out[c]), s_acc,
                                  VT);
                        m.salu(s_out, out[c] + 1, s_out);
                        ++out[c];
                    }
                    m.salu(s_j, j + 1, s_j);
                    m.sbranch(s_j);
                }
                m.sstore(c_ptr[c] + 4 * (Addr(r) + 1), s_out, 4);
                m.salu(s_r, r + 1, s_r);
                m.sbranch(s_r);
            }
            slices[std::size_t(r)] =
                RowSlice{int(c), row_start, out[c] - row_start};
        }
    });

    // Concatenate the per-core row slices in row order.
    std::vector<std::vector<Index>> cols_dl(cores);
    std::vector<DenseVector> vals_dl(cores);
    for (unsigned c = 0; c < cores; ++c) {
        cols_dl[c] =
            downloadIndices(m0, c_col[c], std::size_t(out[c]));
        vals_dl[c] =
            downloadValues(m0, c_val[c], std::size_t(out[c]));
    }
    std::vector<Index> ptr(std::size_t(a.rows()) + 1, 0);
    std::vector<Index> cols_cat;
    DenseVector vals_cat;
    for (Index r = 0; r < a.rows(); ++r) {
        const RowSlice &s = slices[std::size_t(r)];
        for (Index k = 0; k < s.count; ++k) {
            auto idx = std::size_t(s.start + k);
            cols_cat.push_back(cols_dl[unsigned(s.core)][idx]);
            vals_cat.push_back(vals_dl[unsigned(s.core)][idx]);
        }
        ptr[std::size_t(r) + 1] = Index(cols_cat.size());
    }
    return SpmmResult{Csr::fromParts(a.rows(), b.cols(),
                                     std::move(ptr),
                                     std::move(cols_cat),
                                     std::move(vals_cat)),
                      mm.cycles()};
}

// ---------------------------------------------------------- Histogram

HistResult
histParallel(MultiMachine &mm, const std::vector<Index> &keys,
             Index buckets, Partition part, bool via)
{
    for (Index k : keys)
        via_assert(k >= 0 && k < buckets, "key ", k, " outside [0, ",
                   buckets, ")");

    Machine &m0 = mm.core(0);
    Addr key_arr = upload(m0, keys);
    Addr hist = allocValues(m0, std::size_t(buckets));
    const unsigned cores = mm.cores();
    std::vector<Addr> partial(cores);
    for (unsigned c = 0; c < cores; ++c)
        partial[c] = allocValues(m0, std::size_t(buckets));

    // The bucket-tiled VIA flow re-walks a core's whole key share
    // once per bucket range, so each core needs its full range list
    // up front (pre-assigned rather than dispatched per chunk).
    auto shares = assignRanges(cores, Index(keys.size()), part);
    std::size_t rounds = 0;
    for (unsigned c = 0; c < cores; ++c)
        rounds = std::max(rounds, shares[c].size());

    // Emission interleaves across cores, one range per core per
    // round: the cores run concurrently, and emitting one core's
    // whole share first would slide the shared resources' booking
    // windows past its siblings' start times (see dispatchUnits).
    if (!via) {
        VReg v_keys{0}, v_cf{1}, v_ones{2}, v_cnt{3}, v_old{4};
        SReg s_i{3};
        for (unsigned c = 0; c < cores; ++c)
            if (!shares[c].empty())
                mm.core(c).vbroadcastF(v_ones, 1.0);
        for (std::size_t j = 0; j < rounds; ++j)
            for (unsigned c = 0; c < cores; ++c) {
                if (j >= shares[c].size())
                    continue;
                Machine &m = mm.core(c);
                const int vl = int(m.vl());
                auto [lo, hi] = shares[c][j];
                for (Index i = lo; i < hi; i += vl) {
                    int n = std::min<Index>(vl, hi - i);
                    m.vload(v_keys, key_arr + 4 * Addr(i), IT, n);
                    m.vconflict(v_cf, v_keys, n);
                    m.vmergeIdx(v_cnt, v_ones, v_keys, n);
                    m.vgather(v_old, partial[c], v_keys, VT, n);
                    m.vaddF(v_old, v_old, v_cnt, n);
                    m.vscatter(partial[c], v_keys, v_old, VT, n);
                    m.salu(s_i, i + vl, s_i);
                    m.sbranch(s_i);
                }
            }
    } else {
        auto capacity = Index(m0.sspm().config().sramEntries());
        VReg v_keys{0}, v_cf{1}, v_ones{2}, v_idx{3}, v_out{4},
            v_dummy{5}, v_lo{6}, v_hi{7}, v_mask{8}, v_m2{9};
        SReg s_i{3};
        for (unsigned c = 0; c < cores; ++c)
            if (!shares[c].empty())
                mm.core(c).vbroadcastF(v_ones, 1.0);

        for (Index blo = 0; blo < buckets; blo += capacity) {
            Index bhi = std::min<Index>(blo + capacity, buckets);
            bool tiled = buckets > capacity;
            for (unsigned c = 0; c < cores; ++c) {
                if (shares[c].empty())
                    continue;
                Machine &m = mm.core(c);
                m.vidxClear();
                if (tiled) {
                    m.vbroadcastI(v_lo, blo);
                    m.vbroadcastI(v_hi, bhi);
                }
            }
            for (std::size_t j = 0; j < rounds; ++j)
                for (unsigned c = 0; c < cores; ++c) {
                    if (j >= shares[c].size())
                        continue;
                    Machine &m = mm.core(c);
                    const int vl = int(m.vl());
                    auto [lo, hi] = shares[c][j];
                    for (Index i = lo; i < hi; i += vl) {
                        int n = std::min<Index>(vl, hi - i);
                        m.vload(v_keys, key_arr + 4 * Addr(i), IT,
                                n);
                        if (tiled) {
                            m.vcmpLtI(v_mask, v_keys, v_hi, n);
                            m.vcmpLtI(v_m2, v_keys, v_lo, n);
                            m.vsubI(v_mask, v_mask, v_m2, n);
                            int active = 0;
                            for (int l = 0; l < n; ++l)
                                active += m.vreg(v_mask).i(l) != 0;
                            m.vsubI(v_keys, v_keys, v_lo, n);
                            m.vcompress(v_keys, v_keys, v_mask, n);
                            if (active == 0) {
                                m.sbranch(s_i);
                                continue;
                            }
                            m.vconflict(v_cf, v_keys, active);
                            m.vidxAddD(v_ones, v_keys, ViaOut::Sspm,
                                       v_dummy, 0, active);
                        } else {
                            m.vconflict(v_cf, v_keys, n);
                            m.vidxAddD(v_ones, v_keys, ViaOut::Sspm,
                                       v_dummy, 0, n);
                        }
                        m.salu(s_i, i + vl, s_i);
                        m.sbranch(s_i);
                    }
                }
            for (unsigned c = 0; c < cores; ++c) {
                if (shares[c].empty())
                    continue;
                Machine &m = mm.core(c);
                const int vl = int(m.vl());
                for (Index i = blo; i < bhi; i += vl) {
                    int n = std::min<Index>(vl, bhi - i);
                    m.viotaI(v_idx, i - blo);
                    m.vidxMov(v_out, v_idx, n);
                    m.vstore(partial[c] + 4 * Addr(i), v_out, VT, n,
                             s_i);
                    m.salu(s_i, i + vl, s_i);
                    m.sbranch(s_i);
                }
            }
        }
    }

    // Core 0 reduces the partial histograms. The reduction runs on
    // core 0's own timeline after its share; the barrier itself is
    // not modeled beyond cycles() taking the slowest core.
    {
        const int vl = int(m0.vl());
        VReg v_acc{0}, v_p{1};
        SReg s_i{3};
        for (Index i = 0; i < buckets; i += vl) {
            int n = std::min<Index>(vl, buckets - i);
            m0.vbroadcastF(v_acc, 0.0);
            for (unsigned c = 0; c < cores; ++c) {
                m0.vload(v_p, partial[c] + 4 * Addr(i), VT, n);
                m0.vaddF(v_acc, v_acc, v_p, n);
            }
            m0.vstore(hist + 4 * Addr(i), v_acc, VT, n, s_i);
            m0.salu(s_i, i + vl, s_i);
            m0.sbranch(s_i);
        }
    }
    return HistResult{downloadValues(m0, hist, std::size_t(buckets)),
                      mm.cycles()};
}

// ------------------------------------------------------------ Stencil

StencilResult
stencilParallel(MultiMachine &mm, const DenseMatrix &img,
                Partition part, bool via)
{
    via_assert(img.rows() >= 4 && img.cols() >= 4, "image too small");
    Machine &m0 = mm.core(0);
    Addr img_a = upload(m0, img.data());
    const auto &f = gaussian4x4();
    Addr filt = upload(m0, std::vector<Value>(f.begin(), f.end()));
    const Index W = img.cols();
    const Index out_rows = img.rows() - 3;
    const Index out_cols = img.cols() - 3;
    Addr out = m0.mem().alloc(std::size_t(out_rows) *
                              std::size_t(out_cols) * sizeof(Value));

    std::vector<char> primed(mm.cores(), 0);

    dispatchUnits(mm, out_rows, part, [&](unsigned c, Index lo,
                                          Index hi) {
        Machine &m = mm.core(c);
        const int vl = int(m.vl());
        VReg v_f0{0}, v_f1{1}, v_pat0{2}, v_pat1{3}, v_base{4},
            v_idx{5}, v_tap{6}, v_p0{7}, v_p1{8}, v_stage{9};
        SReg s_acc{0}, s_x{1}, s_y{2}, s_i{3};

        if (!primed[c]) {
            // Filter taps and neighbourhood patterns live in this
            // core's registers for the whole kernel.
            m.vload(v_f0, filt, VT);
            m.vload(v_f1, filt + 4 * 8, VT);
            std::vector<std::int64_t> pat0, pat1;
            for (std::int64_t l = 0; l < 8; ++l) {
                pat0.push_back((l / 4) * W + l % 4);
                pat1.push_back((l / 4 + 2) * W + l % 4);
            }
            m.vpatternI(v_pat0, pat0);
            m.vpatternI(v_pat1, pat1);
            primed[c] = 1;
        }

        if (!via) {
            for (Index y = lo; y < hi; ++y) {
                for (Index x = 0; x < out_cols; ++x) {
                    std::int64_t base = std::int64_t(y) * W + x;
                    m.vbroadcastI(v_base, base);
                    m.vaddI(v_idx, v_pat0, v_base);
                    m.vgather(v_tap, img_a, v_idx, VT);
                    m.vmulF(v_p0, v_tap, v_f0);
                    m.vaddI(v_idx, v_pat1, v_base);
                    m.vgather(v_tap, img_a, v_idx, VT);
                    m.vmulF(v_p1, v_tap, v_f1);
                    m.vaddF(v_p0, v_p0, v_p1);
                    m.vredsumF(s_acc, v_p0);
                    m.sstoreF(out + 4 * Addr(y * out_cols + x),
                              s_acc, VT);
                    m.salu(s_x, x + 1, s_x);
                    m.sbranch(s_x);
                }
                m.salu(s_y, y + 1, s_y);
                m.sbranch(s_y);
            }
            return;
        }

        auto entries = Index(m.sspm().config().sramEntries());
        Index seg_rows = std::min<Index>(entries / W, img.rows());
        via_assert(seg_rows >= 4, "image row (", W, " px) too wide "
                   "for the SSPM segment staging");

        // A core's stripe stages its own image segments, halo rows
        // included (neighbouring stripes re-read up to 3 rows).
        for (Index seg = lo; seg < hi; seg += seg_rows - 3) {
            Index ilo = seg;
            Index ihi = std::min<Index>(ilo + seg_rows, img.rows());
            m.vidxClear();
            Index seg_elems = (ihi - ilo) * W;
            for (Index i = 0; i < seg_elems; i += vl) {
                int n = std::min<Index>(vl, seg_elems - i);
                m.vload(v_stage, img_a + 4 * Addr(ilo * W + i), VT,
                        n);
                m.viotaI(v_idx, i);
                m.vidxLoadD(v_stage, v_idx, n);
                m.salu(s_i, i + vl, s_i);
                m.sbranch(s_i);
            }
            Index y_hi = std::min<Index>(ihi - 3, hi);
            for (Index y = seg; y < y_hi; ++y) {
                for (Index x = 0; x < out_cols; ++x) {
                    std::int64_t base = std::int64_t(y - ilo) * W + x;
                    m.vbroadcastI(v_base, base);
                    m.vaddI(v_idx, v_pat0, v_base);
                    m.vidxMulD(v_f0, v_idx, ViaOut::Vrf, v_p0, 0);
                    m.vaddI(v_idx, v_pat1, v_base);
                    m.vidxMulD(v_f1, v_idx, ViaOut::Vrf, v_p1, 0);
                    m.vaddF(v_p0, v_p0, v_p1);
                    m.vredsumF(s_acc, v_p0);
                    m.sstoreF(out + 4 * Addr(y * out_cols + x),
                              s_acc, VT);
                    m.salu(s_x, x + 1, s_x);
                    m.sbranch(s_x);
                }
                m.salu(s_y, y + 1, s_y);
                m.sbranch(s_y);
            }
            if (y_hi >= hi)
                break;
        }
    });

    DenseMatrix o(out_rows, out_cols);
    o.data() = m0.mem().readArray<Value>(
        out, std::size_t(out_rows) * std::size_t(out_cols));
    return StencilResult{std::move(o), mm.cycles()};
}

} // namespace via::kernels
