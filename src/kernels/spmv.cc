#include "kernels/spmv.hh"

#include <algorithm>
#include <bit>

#include "kernels/kernel_utils.hh"
#include "simcore/log.hh"

namespace via::kernels
{

namespace
{

constexpr ElemType VT = ElemType::F32;
constexpr ElemType IT = ElemType::I32;

/** Shared upload of the dense operand and output buffer. */
struct XY
{
    Addr x = 0;
    Addr y = 0;
};

XY
uploadXY(Machine &m, const DenseVector &x, Index rows)
{
    XY a;
    a.x = upload(m, x);
    a.y = allocValues(m, std::size_t(rows));
    return a;
}

} // namespace

Index
viaCsbBeta(const Machine &m)
{
    auto entries = m.sspm().config().sramEntries();
    return Index(std::bit_floor(entries / 2));
}

// The matrix-operand uploads, shared by the one-shot wrappers and
// the resident-matrix path. Upload order matches the historical
// one-shot functions exactly, so the emitted streams (and the
// BENCH_simspeed fingerprints) are unchanged.

CsrImage
uploadCsr(Machine &m, const Csr &a)
{
    CsrImage img;
    img.rowPtr = upload(m, a.rowPtr());
    img.colIdx = upload(m, a.colIdx());
    img.values = upload(m, a.values());
    return img;
}

Spc5Image
uploadSpc5(Machine &m, const Spc5 &a)
{
    Spc5Image img;
    img.values = upload(m, a.values());
    img.blockRow = upload(m, a.blockRow());
    img.blockCol = upload(m, a.blockCol());
    img.blockMask = upload(m, a.blockMask());
    return img;
}

SellImage
uploadSell(Machine &m, const SellCSigma &a)
{
    SellImage img;
    img.colIdx = upload(m, a.colIdx());
    img.values = upload(m, a.values());
    img.chunkPtr = upload(m, a.chunkPtr());
    img.rowPerm = upload(m, a.rowPerm());
    return img;
}

CsbImage
uploadCsb(Machine &m, const Csb &a)
{
    CsbImage img;
    img.packedIdx = upload(m, a.packedIdx());
    img.values = upload(m, a.values());
    img.blockPtr = upload(m, a.blockPtr());
    return img;
}

SpmvResult
spmvScalarCsr(Machine &m, const Csr &a, const DenseVector &x)
{
    Addr row_ptr = upload(m, a.rowPtr());
    Addr col_idx = upload(m, a.colIdx());
    Addr values = upload(m, a.values());
    XY xy = uploadXY(m, x, a.rows());

    SReg s_end{1}, s_col{2}, s_val{3}, s_x{4}, s_acc{5}, s_prod{6},
        s_k{0}, s_r{7};

    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_end, row_ptr + 4 * (Addr(r) + 1), 4);
        m.salu(s_acc, 0); // acc = 0 (FP zero shares the bit pattern)
        Index end = a.rowPtr()[std::size_t(r) + 1];
        for (Index k = a.rowPtr()[std::size_t(r)]; k < end; ++k) {
            m.sload(s_col, col_idx + 4 * Addr(k), 4);
            m.sloadF(s_val, values + 4 * Addr(k), VT);
            Index col = a.colIdx()[std::size_t(k)];
            m.sloadF(s_x, xy.x + 4 * Addr(col), VT, s_col);
            m.sfmul(s_prod, s_val, s_x);
            m.sfadd(s_acc, s_acc, s_prod);
            m.salu(s_k, k + 1, s_k);
            m.sbranch(s_k);
        }
        m.sstoreF(xy.y + 4 * Addr(r), s_acc, VT);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvVectorCsr(Machine &m, const Csr &a, const DenseVector &x)
{
    return spmvVectorCsrAt(m, a, uploadCsr(m, a), x);
}

SpmvResult
spmvVectorCsrAt(Machine &m, const Csr &a, const CsrImage &img,
                const DenseVector &x)
{
    Addr row_ptr = img.rowPtr;
    Addr col_idx = img.colIdx;
    Addr values = img.values;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    VReg v_val{0}, v_col{1}, v_x{2}, v_acc{3};
    SReg s_end{1}, s_acc{5}, s_k{0}, s_r{7};

    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_end, row_ptr + 4 * (Addr(r) + 1), 4);
        m.vbroadcastF(v_acc, 0.0);
        Index lo = a.rowPtr()[std::size_t(r)];
        Index end = a.rowPtr()[std::size_t(r) + 1];
        for (Index k = lo; k < end; k += vl) {
            int n = std::min<Index>(vl, end - k);
            m.vload(v_val, values + 4 * Addr(k), VT, n);
            m.vload(v_col, col_idx + 4 * Addr(k), IT, n);
            m.vgather(v_x, xy.x, v_col, VT, n);
            m.vfmaF(v_acc, v_val, v_x, v_acc, n);
            m.salu(s_k, k + vl, s_k);
            m.sbranch(s_k);
        }
        m.vredsumF(s_acc, v_acc);
        m.sstoreF(xy.y + 4 * Addr(r), s_acc, VT);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvVectorSpc5(Machine &m, const Spc5 &a, const DenseVector &x)
{
    return spmvVectorSpc5At(m, a, uploadSpc5(m, a), x);
}

SpmvResult
spmvVectorSpc5At(Machine &m, const Spc5 &a, const Spc5Image &img,
                 const DenseVector &x)
{
    Addr values = img.values;
    Addr brow = img.blockRow;
    Addr bcol = img.blockCol;
    Addr bmask = img.blockMask;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    via_assert(a.window() == Index(vl),
               "SPC5 window must equal the vector length");

    VReg v_packed{0}, v_val{1}, v_x{2}, v_acc{3};
    SReg s_hdr{1}, s_acc{5}, s_b{0}, s_row{7};

    Index cur_row = -1;
    bool acc_live = false;

    auto flush_row = [&](Index row) {
        // y[row] += reduce(acc): rows can span several blocks, so
        // the software baseline re-reads and re-writes y (the
        // store-load forwarding pattern).
        m.vredsumF(s_acc, v_acc);
        m.sloadF(s_row, xy.y + 4 * Addr(row), VT);
        m.sfadd(s_acc, s_acc, s_row);
        m.sstoreF(xy.y + 4 * Addr(row), s_acc, VT);
    };

    for (std::size_t b = 0; b < a.numBlocks(); ++b) {
        Index row = a.blockRow()[b];
        if (row != cur_row) {
            if (acc_live)
                flush_row(cur_row);
            m.vbroadcastF(v_acc, 0.0);
            cur_row = row;
            acc_live = true;
        }
        // Header loads: row, first column, mask.
        m.sload(s_hdr, brow + 4 * Addr(b), 4);
        m.sload(s_hdr, bcol + 4 * Addr(b), 4);
        m.sload(s_hdr, bmask + 4 * Addr(b), 4);

        Index first = a.blockCol()[b];
        Index v0 = a.blockPtr()[b];
        Index packed = a.blockPtr()[b + 1] - v0;

        m.vload(v_packed, values + 4 * Addr(v0), VT, int(packed));
        m.vexpandMask(v_val, v_packed, a.blockMask()[b], vl, s_hdr);
        int n = int(std::min<Index>(vl, a.cols() - first));
        m.vload(v_x, xy.x + 4 * Addr(first), VT, n);
        m.vfmaF(v_acc, v_val, v_x, v_acc, n);
        m.salu(s_b, Index(b) + 1, s_b);
        m.sbranch(s_b);
    }
    if (acc_live)
        flush_row(cur_row);

    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvVectorSell(Machine &m, const SellCSigma &a, const DenseVector &x)
{
    return spmvVectorSellAt(m, a, uploadSell(m, a), x);
}

SpmvResult
spmvVectorSellAt(Machine &m, const SellCSigma &a,
                 const SellImage &img, const DenseVector &x)
{
    Addr col_idx = img.colIdx;
    Addr values = img.values;
    Addr chunk_ptr = img.chunkPtr;
    Addr row_perm = img.rowPerm;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    via_assert(a.c() == Index(vl),
               "Sell-C-sigma chunk height must equal the vector "
               "length");

    VReg v_val{0}, v_col{1}, v_x{2}, v_acc{3}, v_rows{4};
    SReg s_w{1}, s_j{0}, s_ch{7};

    for (Index ch = 0; ch < a.numChunks(); ++ch) {
        m.sload(s_w, chunk_ptr + 4 * (Addr(ch) + 1), 4);
        m.vbroadcastF(v_acc, 0.0);
        Index base = a.chunkPtr()[std::size_t(ch)];
        Index width = a.chunkWidth()[std::size_t(ch)];
        int lanes = int(std::min<Index>(vl, a.rows() - ch * vl));
        for (Index j = 0; j < width; ++j) {
            Addr slice = 4 * Addr(base + j * vl);
            m.vload(v_val, values + slice, VT, lanes);
            m.vload(v_col, col_idx + slice, IT, lanes);
            m.vgather(v_x, xy.x, v_col, VT, lanes);
            m.vfmaF(v_acc, v_val, v_x, v_acc, lanes);
            m.salu(s_j, j + 1, s_j);
            m.sbranch(s_j);
        }
        m.vload(v_rows, row_perm + 4 * Addr(ch) * Addr(vl), IT,
                lanes);
        m.vscatter(xy.y, v_rows, v_acc, VT, lanes);
        m.salu(s_ch, ch + 1, s_ch);
        m.sbranch(s_ch);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvVectorCsb(Machine &m, const Csb &a, const DenseVector &x)
{
    return spmvVectorCsbAt(m, a, uploadCsb(m, a), x);
}

SpmvResult
spmvVectorCsbAt(Machine &m, const Csb &a, const CsbImage &img,
                const DenseVector &x)
{
    Addr packed = img.packedIdx;
    Addr values = img.values;
    Addr block_ptr = img.blockPtr;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    const Index beta = a.beta();
    const auto col_bits = a.colBits();

    VReg v_idx{0}, v_val{1}, v_col{2}, v_row{3}, v_x{4}, v_y{5},
        v_prod{6};
    SReg s_end{1}, s_k{0}, s_b{7};

    Index bcols = a.blockCols();
    for (Index b = 0; b < a.numBlocks(); ++b) {
        m.sload(s_end, block_ptr + 4 * (Addr(b) + 1), 4);
        Index lo = a.blockPtr()[std::size_t(b)];
        Index end = a.blockPtr()[std::size_t(b) + 1];
        if (lo == end) {
            m.sbranch(s_end); // skip empty block
            continue;
        }
        Addr row_base = xy.y + 4 * Addr(b / bcols) * Addr(beta);
        Addr col_base = xy.x + 4 * Addr(b % bcols) * Addr(beta);
        for (Index k = lo; k < end; k += vl) {
            int n = std::min<Index>(vl, end - k);
            m.vload(v_idx, packed + 4 * Addr(k), IT, n);
            m.vload(v_val, values + 4 * Addr(k), VT, n);
            // Unpack the merged in-block index.
            m.vandI(v_col, v_idx, beta - 1, n);
            m.vshrI(v_row, v_idx, col_bits, n);
            // Gather x, gather-update-scatter the y partials: the
            // BBF store-load forwarding traffic of Section II-C.
            m.vgather(v_x, col_base, v_col, VT, n);
            m.vmulF(v_prod, v_val, v_x, n);
            // Duplicate rows in one vector must be combined before
            // the scatter (conflict detection + merge, as AVX-512
            // BBF kernels do).
            m.vconflict(v_y, v_row, n);
            m.vmergeIdx(v_prod, v_prod, v_row, n);
            m.vgather(v_y, row_base, v_row, VT, n);
            m.vaddF(v_y, v_y, v_prod, n);
            m.vscatter(row_base, v_row, v_y, VT, n);
            m.salu(s_k, k + vl, s_k);
            m.sbranch(s_k);
        }
        m.salu(s_b, b + 1, s_b);
        m.sbranch(s_b);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvScalarCsb(Machine &m, const Csb &a, const DenseVector &x)
{
    Addr packed = upload(m, a.packedIdx());
    Addr values = upload(m, a.values());
    Addr block_ptr = upload(m, a.blockPtr());
    XY xy = uploadXY(m, x, a.rows());

    const Index beta = a.beta();
    const auto col_bits = a.colBits();
    const Index bcols = a.blockCols();

    SReg s_end{1}, s_idx{2}, s_col{3}, s_row{4}, s_val{5}, s_x{6},
        s_y{7}, s_k{0}, s_b{8};

    for (Index b = 0; b < a.numBlocks(); ++b) {
        m.sload(s_end, block_ptr + 4 * (Addr(b) + 1), 4);
        m.sbranch(s_end);
        Index lo = a.blockPtr()[std::size_t(b)];
        Index end = a.blockPtr()[std::size_t(b) + 1];
        Addr row_base = xy.y + 4 * Addr(b / bcols) * Addr(beta);
        Addr col_base = xy.x + 4 * Addr(b % bcols) * Addr(beta);
        for (Index k = lo; k < end; ++k) {
            Index pk = a.packedIdx()[std::size_t(k)];
            Index in_col = pk & (beta - 1);
            Index in_row = pk >> col_bits;
            m.sload(s_idx, packed + 4 * Addr(k), 4);
            m.salu(s_col, in_col, s_idx); // unpack: and
            m.salu(s_row, in_row, s_idx); // unpack: shift
            m.sloadF(s_val, values + 4 * Addr(k), VT);
            m.sloadF(s_x, col_base + 4 * Addr(in_col), VT, s_col);
            m.sfmul(s_val, s_val, s_x);
            // y[row] += ...: read-modify-write through memory.
            m.sloadF(s_y, row_base + 4 * Addr(in_row), VT, s_row);
            m.sfadd(s_y, s_y, s_val);
            m.sstoreF(row_base + 4 * Addr(in_row), s_y, VT, s_row);
            m.salu(s_k, k + 1, s_k);
            m.sbranch(s_k);
        }
        m.salu(s_b, b + 1, s_b);
        m.sbranch(s_b);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvViaCsr(Machine &m, const Csr &a, const DenseVector &x)
{
    return spmvViaCsrAt(m, a, uploadCsr(m, a), x);
}

SpmvResult
spmvViaCsrAt(Machine &m, const Csr &a, const CsrImage &img,
             const DenseVector &x)
{
    Addr row_ptr = img.rowPtr;
    Addr col_idx = img.colIdx;
    Addr values = img.values;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    bool x_fits =
        std::uint64_t(a.cols()) <= m.sspm().config().sramEntries();

    VReg v_val{0}, v_col{1}, v_x{2}, v_acc{3}, v_idx{4}, v_prod{5};
    SReg s_end{1}, s_acc{5}, s_k{0}, s_r{7}, s_i{2};

    if (x_fits) {
        // Stage the whole dense vector in the scratchpad once.
        m.vidxClear();
        for (Index i = 0; i < a.cols(); i += vl) {
            int n = std::min<Index>(vl, a.cols() - i);
            m.vload(v_x, xy.x + 4 * Addr(i), VT, n);
            m.viotaI(v_idx, i);
            m.vidxLoadD(v_x, v_idx, n);
            m.salu(s_i, i + vl, s_i);
            m.sbranch(s_i);
        }
    }

    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_end, row_ptr + 4 * (Addr(r) + 1), 4);
        m.vbroadcastF(v_acc, 0.0);
        Index lo = a.rowPtr()[std::size_t(r)];
        Index end = a.rowPtr()[std::size_t(r) + 1];
        for (Index k = lo; k < end; k += vl) {
            int n = std::min<Index>(vl, end - k);
            m.vload(v_val, values + 4 * Addr(k), VT, n);
            m.vload(v_col, col_idx + 4 * Addr(k), IT, n);
            if (x_fits) {
                // x[col] * val straight out of the SSPM.
                m.vidxMulD(v_val, v_col, ViaOut::Vrf, v_prod, 0, n);
            } else {
                m.vgather(v_x, xy.x, v_col, VT, n);
                m.vmulF(v_prod, v_val, v_x, n);
            }
            m.vaddF(v_acc, v_acc, v_prod, n);
            m.salu(s_k, k + vl, s_k);
            m.sbranch(s_k);
        }
        m.vredsumF(s_acc, v_acc);
        m.sstoreF(xy.y + 4 * Addr(r), s_acc, VT);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvViaSpc5(Machine &m, const Spc5 &a, const DenseVector &x)
{
    return spmvViaSpc5At(m, a, uploadSpc5(m, a), x);
}

SpmvResult
spmvViaSpc5At(Machine &m, const Spc5 &a, const Spc5Image &img,
              const DenseVector &x)
{
    Addr values = img.values;
    Addr brow = img.blockRow;
    Addr bcol = img.blockCol;
    Addr bmask = img.blockMask;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    via_assert(a.window() == Index(vl),
               "SPC5 window must equal the vector length");

    // y accumulators live in the SSPM, segmented over the rows.
    auto seg_rows = Index(m.sspm().config().sramEntries());

    VReg v_packed{0}, v_val{1}, v_x{2}, v_prod{3}, v_rowb{4},
        v_idx{5}, v_out{6};
    SReg s_hdr{1}, s_b{0}, s_i{2};

    Index seg_base = 0;
    m.vidxClear();

    auto flush_segment = [&](Index upto) {
        // Drain SSPM accumulators [seg_base, upto) to memory.
        for (Index i = seg_base; i < upto; i += vl) {
            int n = std::min<Index>(vl, upto - i);
            m.viotaI(v_idx, i - seg_base);
            m.vidxMov(v_out, v_idx, n);
            m.vstore(xy.y + 4 * Addr(i), v_out, VT, n, s_i);
            m.salu(s_i, i + vl, s_i);
            m.sbranch(s_i);
        }
        m.vidxClear();
    };

    for (std::size_t b = 0; b < a.numBlocks(); ++b) {
        Index row = a.blockRow()[b];
        if (row >= seg_base + seg_rows) {
            flush_segment(std::min(seg_base + seg_rows, a.rows()));
            seg_base += seg_rows;
            while (row >= seg_base + seg_rows)
                seg_base += seg_rows; // empty segments
        }
        m.sload(s_hdr, brow + 4 * Addr(b), 4);
        m.sload(s_hdr, bcol + 4 * Addr(b), 4);
        m.sload(s_hdr, bmask + 4 * Addr(b), 4);

        Index first = a.blockCol()[b];
        Index v0 = a.blockPtr()[b];
        Index packed = a.blockPtr()[b + 1] - v0;

        m.vload(v_packed, values + 4 * Addr(v0), VT, int(packed));
        m.vexpandMask(v_val, v_packed, a.blockMask()[b], vl, s_hdr);
        int n = int(std::min<Index>(vl, a.cols() - first));
        m.vload(v_x, xy.x + 4 * Addr(first), VT, n);
        m.vmulF(v_prod, v_val, v_x, n);
        // Accumulate the block's partials straight into the SSPM
        // slot of this row: no reduce, no y re-load.
        m.vbroadcastI(v_rowb, row - seg_base);
        m.vidxAddD(v_prod, v_rowb, ViaOut::Sspm, v_out, 0, n);
        m.salu(s_b, Index(b) + 1, s_b);
        m.sbranch(s_b);
    }
    flush_segment(std::min(seg_base + seg_rows, a.rows()));

    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvViaSell(Machine &m, const SellCSigma &a, const DenseVector &x)
{
    return spmvViaSellAt(m, a, uploadSell(m, a), x);
}

SpmvResult
spmvViaSellAt(Machine &m, const SellCSigma &a, const SellImage &img,
              const DenseVector &x)
{
    Addr col_idx = img.colIdx;
    Addr values = img.values;
    Addr chunk_ptr = img.chunkPtr;
    Addr row_perm = img.rowPerm;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    via_assert(a.c() == Index(vl), "chunk height mismatch");
    bool x_fits =
        std::uint64_t(a.cols()) <= m.sspm().config().sramEntries();

    VReg v_val{0}, v_col{1}, v_x{2}, v_acc{3}, v_rows{4}, v_idx{5},
        v_prod{6};
    SReg s_w{1}, s_j{0}, s_ch{7}, s_i{2};

    if (x_fits) {
        m.vidxClear();
        for (Index i = 0; i < a.cols(); i += vl) {
            int n = std::min<Index>(vl, a.cols() - i);
            m.vload(v_x, xy.x + 4 * Addr(i), VT, n);
            m.viotaI(v_idx, i);
            m.vidxLoadD(v_x, v_idx, n);
            m.salu(s_i, i + vl, s_i);
            m.sbranch(s_i);
        }
    }

    for (Index ch = 0; ch < a.numChunks(); ++ch) {
        m.sload(s_w, chunk_ptr + 4 * (Addr(ch) + 1), 4);
        m.vbroadcastF(v_acc, 0.0);
        Index base = a.chunkPtr()[std::size_t(ch)];
        Index width = a.chunkWidth()[std::size_t(ch)];
        int lanes = int(std::min<Index>(vl, a.rows() - ch * vl));
        for (Index j = 0; j < width; ++j) {
            Addr slice = 4 * Addr(base + j * vl);
            m.vload(v_val, values + slice, VT, lanes);
            m.vload(v_col, col_idx + slice, IT, lanes);
            if (x_fits) {
                m.vidxMulD(v_val, v_col, ViaOut::Vrf, v_prod, 0,
                           lanes);
            } else {
                m.vgather(v_x, xy.x, v_col, VT, lanes);
                m.vmulF(v_prod, v_val, v_x, lanes);
            }
            m.vaddF(v_acc, v_acc, v_prod, lanes);
            m.salu(s_j, j + 1, s_j);
            m.sbranch(s_j);
        }
        m.vload(v_rows, row_perm + 4 * Addr(ch) * Addr(vl), IT,
                lanes);
        m.vscatter(xy.y, v_rows, v_acc, VT, lanes);
        m.salu(s_ch, ch + 1, s_ch);
        m.sbranch(s_ch);
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

SpmvResult
spmvViaCsb(Machine &m, const Csb &a, const DenseVector &x)
{
    return spmvViaCsbAt(m, a, uploadCsb(m, a), x);
}

SpmvResult
spmvViaCsbAt(Machine &m, const Csb &a, const CsbImage &img,
             const DenseVector &x)
{
    Addr packed = img.packedIdx;
    Addr values = img.values;
    Addr block_ptr = img.blockPtr;
    XY xy = uploadXY(m, x, a.rows());

    const int vl = int(m.vl());
    const Index beta = a.beta();
    via_assert(std::uint64_t(2 * beta) <=
                   m.sspm().config().sramEntries(),
               "CSB block side ", beta, " does not fit the SSPM; "
               "use viaCsbBeta()");

    VReg v_idx{0}, v_val{1}, v_x{2}, v_out{3};
    SReg s_end{1}, s_k{0}, s_b{7}, s_i{2};

    const Index bcols = a.blockCols();
    const Index brows = a.blockRows();
    // y accumulators live at SSPM[beta ..), x chunks at SSPM[0..beta).
    const std::int64_t y_off = beta;

    m.vidxClear();
    for (Index br = 0; br < brows; ++br) {
        Index row_lo = br * beta;
        Index row_hi = std::min<Index>(row_lo + beta, a.rows());
        for (Index bc = 0; bc < bcols; ++bc) {
            Index b = br * bcols + bc;
            m.sload(s_end, block_ptr + 4 * (Addr(b) + 1), 4);
            Index lo = a.blockPtr()[std::size_t(b)];
            Index end = a.blockPtr()[std::size_t(b) + 1];
            if (lo == end) {
                m.sbranch(s_end); // skip empty block
                continue;
            }
            // Algorithm 4 lines 4-8: stage this block's x chunk.
            Index col_lo = bc * beta;
            Index col_hi = std::min<Index>(col_lo + beta, a.cols());
            for (Index i = col_lo; i < col_hi; i += vl) {
                int n = std::min<Index>(vl, col_hi - i);
                m.vload(v_x, xy.x + 4 * Addr(i), VT, n);
                m.viotaI(v_idx, i - col_lo);
                m.vidxLoadD(v_x, v_idx, n);
                m.salu(s_i, i + vl, s_i);
                m.sbranch(s_i);
            }
            // Algorithm 4 lines 11-15: multiply-accumulate blocks.
            for (Index k = lo; k < end; k += vl) {
                int n = std::min<Index>(vl, end - k);
                m.vload(v_idx, packed + 4 * Addr(k), IT, n);
                m.vload(v_val, values + 4 * Addr(k), VT, n);
                m.vidxBlkMulD(v_val, v_idx, a.colBits(), y_off, n);
                m.salu(s_k, k + vl, s_k);
                m.sbranch(s_k);
            }
            m.salu(s_b, b + 1, s_b);
            m.sbranch(s_b);
        }
        // Drain the accumulators for this block row, then reset.
        for (Index i = row_lo; i < row_hi; i += vl) {
            int n = std::min<Index>(vl, row_hi - i);
            m.viotaI(v_idx, y_off + (i - row_lo));
            m.vidxMov(v_out, v_idx, n);
            m.vstore(xy.y + 4 * Addr(i), v_out, VT, n, s_i);
            m.salu(s_i, i + vl, s_i);
            m.sbranch(s_i);
        }
        m.vidxClearSegment(std::uint64_t(y_off),
                           std::uint64_t(y_off + beta));
    }
    return SpmvResult{downloadValues(m, xy.y,
                                     std::size_t(a.rows())),
                      m.cycles()};
}

} // namespace via::kernels
