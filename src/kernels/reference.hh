/**
 * @file
 * Host-side golden implementations used to verify kernels.
 * (SpMV/SpMA/SpMM goldens live with the formats: Csr::multiply,
 * addCsr, mulCsr.)
 */

#ifndef VIA_KERNELS_REFERENCE_HH
#define VIA_KERNELS_REFERENCE_HH

#include <array>
#include <vector>

#include "sparse/dense.hh"
#include "sparse/sparse_types.hh"

namespace via::kernels
{

/** Count keys into `buckets` bins; keys must be in [0, buckets). */
std::vector<Value> refHistogram(const std::vector<Index> &keys,
                                Index buckets);

/** The 4x4 Gaussian kernel used by the stencil workloads. */
const std::array<float, 16> &gaussian4x4();

/**
 * Valid-region 4x4 convolution: output is
 * (rows-3) x (cols-3), out(y,x) = sum filter(dy,dx)*img(y+dy,x+dx).
 */
DenseMatrix refConvolve4x4(const DenseMatrix &img);

} // namespace via::kernels

#endif // VIA_KERNELS_REFERENCE_HH
