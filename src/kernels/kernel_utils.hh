/**
 * @file
 * Shared helpers for the kernel implementations: uploading host
 * arrays into simulated memory and reading results back.
 */

#ifndef VIA_KERNELS_KERNEL_UTILS_HH
#define VIA_KERNELS_KERNEL_UTILS_HH

#include <vector>

#include "cpu/machine.hh"
#include "sparse/dense.hh"
#include "sparse/sparse_types.hh"

namespace via::kernels
{

/** Upload a host array into simulated memory; returns its base. */
template <typename T>
Addr
upload(Machine &m, const std::vector<T> &host)
{
    return m.mem().allocArray(host);
}

/** Read a Value array back from simulated memory. */
inline DenseVector
downloadValues(const Machine &m, Addr base, std::size_t count)
{
    return m.mem().readArray<Value>(base, count);
}

/** Read an Index array back from simulated memory. */
inline std::vector<Index>
downloadIndices(const Machine &m, Addr base, std::size_t count)
{
    return m.mem().readArray<Index>(base, count);
}

/** Allocate a zero-filled Value array of @p count elements. */
inline Addr
allocValues(Machine &m, std::size_t count)
{
    return m.mem().alloc(count * sizeof(Value));
}

} // namespace via::kernels

#endif // VIA_KERNELS_KERNEL_UTILS_HH
