#include "kernels/stencil.hh"

#include <algorithm>

#include "kernels/kernel_utils.hh"
#include "kernels/reference.hh"
#include "simcore/log.hh"

namespace via::kernels
{

namespace
{

constexpr ElemType VT = ElemType::F32;

/** Upload image (row-major) and the 16 filter taps. */
struct StencilMem
{
    Addr img = 0;
    Addr filt = 0;
    Addr out = 0;
};

StencilMem
uploadStencil(Machine &m, const DenseMatrix &img)
{
    StencilMem s;
    s.img = upload(m, img.data());
    const auto &f = gaussian4x4();
    s.filt = upload(m, std::vector<Value>(f.begin(), f.end()));
    auto out_elems = std::size_t(img.rows() - 3) *
                     std::size_t(img.cols() - 3);
    s.out = m.mem().alloc(out_elems * sizeof(Value));
    return s;
}

DenseMatrix
downloadOut(const Machine &m, Addr out, Index rows, Index cols)
{
    DenseMatrix o(rows, cols);
    o.data() = m.mem().readArray<Value>(
        out, std::size_t(rows) * std::size_t(cols));
    return o;
}

} // namespace

StencilResult
stencilVector(Machine &m, const DenseMatrix &img)
{
    via_assert(img.rows() >= 4 && img.cols() >= 4, "image too small");
    StencilMem mem = uploadStencil(m, img);
    const Index W = img.cols();
    const Index out_rows = img.rows() - 3;
    const Index out_cols = img.cols() - 3;

    VReg v_f0{0}, v_f1{1}, v_pat0{2}, v_pat1{3}, v_base{4},
        v_idx{5}, v_tap{6}, v_p0{7}, v_p1{8};
    SReg s_acc{0}, s_x{1}, s_y{2};

    // Filter taps resident in two vector registers.
    m.vload(v_f0, mem.filt, VT);
    m.vload(v_f1, mem.filt + 4 * 8, VT);
    // Neighbourhood access patterns: taps 0-7 (window rows 0-1) and
    // taps 8-15 (window rows 2-3), relative to the pixel's linear
    // index in the image.
    std::vector<std::int64_t> pat0, pat1;
    for (std::int64_t l = 0; l < 8; ++l) {
        pat0.push_back((l / 4) * W + l % 4);
        pat1.push_back((l / 4 + 2) * W + l % 4);
    }
    m.vpatternI(v_pat0, pat0);
    m.vpatternI(v_pat1, pat1);

    for (Index y = 0; y < out_rows; ++y) {
        for (Index x = 0; x < out_cols; ++x) {
            std::int64_t base = std::int64_t(y) * W + x;
            m.vbroadcastI(v_base, base);
            // Rows 0-1 of the window: gather + multiply.
            m.vaddI(v_idx, v_pat0, v_base);
            m.vgather(v_tap, mem.img, v_idx, VT);
            m.vmulF(v_p0, v_tap, v_f0);
            // Rows 2-3.
            m.vaddI(v_idx, v_pat1, v_base);
            m.vgather(v_tap, mem.img, v_idx, VT);
            m.vmulF(v_p1, v_tap, v_f1);
            m.vaddF(v_p0, v_p0, v_p1);
            m.vredsumF(s_acc, v_p0);
            m.sstoreF(mem.out + 4 * Addr(y * out_cols + x), s_acc,
                      VT);
            m.salu(s_x, x + 1, s_x);
            m.sbranch(s_x);
        }
        m.salu(s_y, y + 1, s_y);
        m.sbranch(s_y);
    }
    return StencilResult{downloadOut(m, mem.out, out_rows, out_cols),
                         m.cycles()};
}

StencilResult
stencilVia(Machine &m, const DenseMatrix &img)
{
    via_assert(img.rows() >= 4 && img.cols() >= 4, "image too small");
    StencilMem mem = uploadStencil(m, img);
    const Index W = img.cols();
    const Index out_rows = img.rows() - 3;
    const Index out_cols = img.cols() - 3;
    const int vl = int(m.vl());

    // Segment: as many whole image rows as fit the scratchpad.
    auto entries = Index(m.sspm().config().sramEntries());
    Index seg_rows = std::min<Index>(entries / W, img.rows());
    via_assert(seg_rows >= 4, "image row (", W, " px) too wide for "
               "the SSPM segment staging");

    VReg v_f0{0}, v_f1{1}, v_pat0{2}, v_pat1{3}, v_base{4},
        v_idx{5}, v_p0{6}, v_p1{7}, v_stage{8};
    SReg s_acc{0}, s_x{1}, s_y{2}, s_i{3};

    // Filter taps resident in the VRF (Algorithm 6 keeps them in
    // the SSPM and reads them per iteration; with a 16-tap filter
    // two registers hold them, which is strictly cheaper for both
    // machines and keeps the comparison fair).
    m.vload(v_f0, mem.filt, VT);
    m.vload(v_f1, mem.filt + 4 * 8, VT);
    // In-segment access patterns (Algorithm 6 lines 2-3); the
    // segment shares the image's row stride.
    std::vector<std::int64_t> pat0, pat1;
    for (std::int64_t l = 0; l < 8; ++l) {
        pat0.push_back((l / 4) * W + l % 4);
        pat1.push_back((l / 4 + 2) * W + l % 4);
    }
    m.vpatternI(v_pat0, pat0);
    m.vpatternI(v_pat1, pat1);

    for (Index seg = 0; seg < out_rows; seg += seg_rows - 3) {
        Index lo = seg;
        Index hi = std::min<Index>(lo + seg_rows, img.rows());
        // Stage image rows [lo, hi) in the SSPM (Algorithm 6 l.6).
        m.vidxClear();
        Index seg_elems = (hi - lo) * W;
        for (Index i = 0; i < seg_elems; i += vl) {
            int n = std::min<Index>(vl, seg_elems - i);
            m.vload(v_stage, mem.img + 4 * Addr(lo * W + i), VT, n);
            m.viotaI(v_idx, i);
            m.vidxLoadD(v_stage, v_idx, n);
            m.salu(s_i, i + vl, s_i);
            m.sbranch(s_i);
        }
        // Output rows computable from this segment.
        Index y_hi = std::min<Index>(hi - 3, out_rows);
        for (Index y = lo; y < y_hi; ++y) {
            for (Index x = 0; x < out_cols; ++x) {
                std::int64_t base = std::int64_t(y - lo) * W + x;
                m.vbroadcastI(v_base, base);
                // Taps come straight from the scratchpad
                // (Algorithm 6 lines 8-10).
                m.vaddI(v_idx, v_pat0, v_base);
                m.vidxMulD(v_f0, v_idx, ViaOut::Vrf, v_p0, 0);
                m.vaddI(v_idx, v_pat1, v_base);
                m.vidxMulD(v_f1, v_idx, ViaOut::Vrf, v_p1, 0);
                m.vaddF(v_p0, v_p0, v_p1);
                m.vredsumF(s_acc, v_p0);
                m.sstoreF(mem.out + 4 * Addr(y * out_cols + x),
                          s_acc, VT);
                m.salu(s_x, x + 1, s_x);
                m.sbranch(s_x);
            }
            m.salu(s_y, y + 1, s_y);
            m.sbranch(s_y);
        }
        if (y_hi >= out_rows)
            break;
    }
    return StencilResult{downloadOut(m, mem.out, out_rows, out_cols),
                         m.cycles()};
}

} // namespace via::kernels
