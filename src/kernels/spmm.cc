#include "kernels/spmm.hh"

#include <algorithm>
#include <cmath>

#include "kernels/kernel_utils.hh"
#include "simcore/log.hh"

namespace via::kernels
{

namespace
{

constexpr ElemType VT = ElemType::F32;
constexpr ElemType IT = ElemType::I32;

/** Output arrays sized for the worst realistic case. */
struct COut
{
    Addr col = 0;
    Addr val = 0;
    Addr ptr = 0;
    std::vector<Index> rowPtr;
    Index out = 0;
};

COut
allocOut(Machine &m, const Csr &a, const Csc &b)
{
    // The inner-product result has at most rows*cols entries, but
    // allocating that is wasteful; a safe, tight-enough bound is
    // min(rows*cols, nnzA * max col nnz).
    std::size_t bound = std::size_t(a.rows()) * std::size_t(b.cols());
    std::size_t alt = a.nnz() * std::size_t(std::max<Index>(
                                    b.maxColNnz(), 1));
    bound = std::min(bound, alt + 1);
    COut c;
    c.col = m.mem().alloc(bound * sizeof(Index));
    c.val = m.mem().alloc(bound * sizeof(Value));
    c.ptr = m.mem().alloc((std::size_t(a.rows()) + 1) *
                          sizeof(Index));
    c.rowPtr.assign(std::size_t(a.rows()) + 1, 0);
    return c;
}

Csr
assemble(const Machine &m, const COut &c, Index rows, Index cols)
{
    auto nnz = std::size_t(c.rowPtr.back());
    std::vector<Index> cols_out = downloadIndices(m, c.col, nnz);
    DenseVector vals_out = downloadValues(m, c.val, nnz);
    std::vector<Index> ptr = c.rowPtr;
    return Csr::fromParts(rows, cols, std::move(ptr),
                          std::move(cols_out), std::move(vals_out));
}

} // namespace

SpmmResult
spmmScalarInner(Machine &m, const Csr &a, const Csc &b)
{
    via_assert(a.cols() == b.rows(), "SpMM shape mismatch");
    Addr a_ptr = upload(m, a.rowPtr());
    Addr a_col = upload(m, a.colIdx());
    Addr a_val = upload(m, a.values());
    Addr b_ptr = upload(m, b.colPtr());
    Addr b_row = upload(m, b.rowIdx());
    Addr b_val = upload(m, b.values());
    COut c = allocOut(m, a, b);

    SReg s_ka{0}, s_kb{1}, s_ai{2}, s_bi{3}, s_v{4}, s_v2{5},
        s_acc{6}, s_out{7}, s_j{8}, s_r{9};

    m.sstore(c.ptr, s_out, 4);
    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_ka, a_ptr + 4 * (Addr(r) + 1), 4);
        Index a_lo = a.rowPtr()[std::size_t(r)];
        Index a_hi = a.rowPtr()[std::size_t(r) + 1];
        if (a_lo == a_hi) {
            m.sbranch(s_ka); // empty row: skip all columns
            m.sstore(c.ptr + 4 * (Addr(r) + 1), s_out, 4);
            c.rowPtr[std::size_t(r) + 1] = c.out;
            continue;
        }
        for (Index j = 0; j < b.cols(); ++j) {
            m.sload(s_kb, b_ptr + 4 * (Addr(j) + 1), 4);
            m.sbranch(s_kb);
            Index b_lo = b.colPtr()[std::size_t(j)];
            Index b_hi = b.colPtr()[std::size_t(j) + 1];
            if (b_lo == b_hi)
                continue;

            // Two-pointer index matching (Algorithm 3 line 4).
            m.salu(s_acc, 0);
            Index ka = a_lo, kb = b_lo;
            bool any = false;
            while (ka < a_hi && kb < b_hi) {
                m.sload(s_ai, a_col + 4 * Addr(ka), 4);
                m.sload(s_bi, b_row + 4 * Addr(kb), 4);
                m.salu(s_v, 0, s_ai, s_bi); // compare
                Index ca = a.colIdx()[std::size_t(ka)];
                Index cb = b.rowIdx()[std::size_t(kb)];
                // Data-dependent index-matching branches.
                m.sbranchData(s_v, 11, ca == cb);
                if (ca != cb)
                    m.sbranchData(s_v, 12, ca < cb);
                if (ca == cb) {
                    m.sloadF(s_v, a_val + 4 * Addr(ka), VT);
                    m.sloadF(s_v2, b_val + 4 * Addr(kb), VT);
                    m.sfmul(s_v, s_v, s_v2);
                    m.sfadd(s_acc, s_acc, s_v);
                    m.salu(s_ka, ka + 1, s_ka);
                    m.salu(s_kb, kb + 1, s_kb);
                    ++ka;
                    ++kb;
                    any = true;
                } else if (ca < cb) {
                    m.salu(s_ka, ka + 1, s_ka);
                    ++ka;
                } else {
                    m.salu(s_kb, kb + 1, s_kb);
                    ++kb;
                }
            }
            if (any) {
                m.simm(s_v, j);
                m.sstore(c.col + 4 * Addr(c.out), s_v, 4);
                m.sstoreF(c.val + 4 * Addr(c.out), s_acc, VT);
                m.salu(s_out, c.out + 1, s_out);
                ++c.out;
            }
            m.salu(s_j, j + 1, s_j);
            m.sbranch(s_j);
        }
        m.sstore(c.ptr + 4 * (Addr(r) + 1), s_out, 4);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
        c.rowPtr[std::size_t(r) + 1] = c.out;
    }
    return SpmmResult{assemble(m, c, a.rows(), b.cols()),
                      m.cycles()};
}

SpmmResult
spmmViaInner(Machine &m, const Csr &a, const Csc &b)
{
    via_assert(a.cols() == b.rows(), "SpMM shape mismatch");
    Addr a_ptr = upload(m, a.rowPtr());
    Addr a_col = upload(m, a.colIdx());
    Addr a_val = upload(m, a.values());
    Addr b_ptr = upload(m, b.colPtr());
    Addr b_row = upload(m, b.rowIdx());
    Addr b_val = upload(m, b.values());
    COut c = allocOut(m, a, b);

    const int vl = int(m.vl());
    const auto cam_cap = Index(m.sspm().config().camEntries());
    via_assert(a.maxRowNnz() <= cam_cap,
               "A row exceeds the CAM (", cam_cap, " entries): the "
               "VIA SpMM kernel requires rows to fit (paper "
               "Section IV: highly sparse inputs)");

    VReg v_col{0}, v_val{1}, v_prod{2}, v_acc{3};
    SReg s_ka{0}, s_kb{1}, s_acc{2}, s_out{7}, s_j{8}, s_r{9},
        s_k{10};

    m.sstore(c.ptr, s_out, 4);
    for (Index r = 0; r < a.rows(); ++r) {
        m.sload(s_ka, a_ptr + 4 * (Addr(r) + 1), 4);
        Index a_lo = a.rowPtr()[std::size_t(r)];
        Index a_hi = a.rowPtr()[std::size_t(r) + 1];
        if (a_lo == a_hi) {
            m.sbranch(s_ka);
            m.sstore(c.ptr + 4 * (Addr(r) + 1), s_out, 4);
            c.rowPtr[std::size_t(r) + 1] = c.out;
            continue;
        }

        // Figure 4 step 1: the A row's (col -> value) pairs enter
        // the CAM once per row.
        m.vidxClear();
        for (Index k = a_lo; k < a_hi; k += vl) {
            int n = std::min<Index>(vl, a_hi - k);
            m.vload(v_col, a_col + 4 * Addr(k), IT, n);
            m.vload(v_val, a_val + 4 * Addr(k), VT, n);
            m.vidxLoadC(v_val, v_col, n);
            m.salu(s_k, k + vl, s_k);
            m.sbranch(s_k);
        }

        for (Index j = 0; j < b.cols(); ++j) {
            m.sload(s_kb, b_ptr + 4 * (Addr(j) + 1), 4);
            m.sbranch(s_kb);
            Index b_lo = b.colPtr()[std::size_t(j)];
            Index b_hi = b.colPtr()[std::size_t(j) + 1];
            if (b_lo == b_hi)
                continue;

            // Figure 4 steps 2-4: stream the column, match in the
            // CAM, multiply and reduce.
            m.vbroadcastF(v_acc, 0.0);
            bool any = false;
            for (Index k = b_lo; k < b_hi; k += vl) {
                int n = std::min<Index>(vl, b_hi - k);
                m.vload(v_col, b_row + 4 * Addr(k), IT, n);
                m.vload(v_val, b_val + 4 * Addr(k), VT, n);
                m.vidxMulC(v_val, v_col, ViaOut::Vrf, v_prod, n);
                m.vaddF(v_acc, v_acc, v_prod, n);
                m.salu(s_k, k + vl, s_k);
                m.sbranch(s_k);
            }
            // Structural-match test mirrors Algorithm 3's k != -1.
            for (Index k = b_lo; k < b_hi && !any; ++k) {
                Index row = b.rowIdx()[std::size_t(k)];
                auto &cols = a.colIdx();
                any = std::binary_search(
                    cols.begin() + a_lo, cols.begin() + a_hi, row);
            }
            m.vredsumF(s_acc, v_acc);
            if (any) {
                m.simm(s_k, j);
                m.sstore(c.col + 4 * Addr(c.out), s_k, 4);
                m.sstoreF(c.val + 4 * Addr(c.out), s_acc, VT);
                m.salu(s_out, c.out + 1, s_out);
                ++c.out;
            }
            m.salu(s_j, j + 1, s_j);
            m.sbranch(s_j);
        }
        m.sstore(c.ptr + 4 * (Addr(r) + 1), s_out, 4);
        m.salu(s_r, r + 1, s_r);
        m.sbranch(s_r);
        c.rowPtr[std::size_t(r) + 1] = c.out;
    }
    return SpmmResult{assemble(m, c, a.rows(), b.cols()),
                      m.cycles()};
}

} // namespace via::kernels
