/**
 * @file
 * SpMV format dispatch shared by the drivers (via_sim, via_fuzz).
 *
 * A format name selects the storage conversion (CSR stays as-is,
 * SPC5/SELL-C-sigma/CSB are built from the CSR with the
 * machine-appropriate geometry) and the kernel pair: the baseline
 * vector variant and the VIA variant. Keeping the mapping in one
 * place means the fuzzer exercises exactly the conversions the
 * interactive driver runs.
 */

#ifndef VIA_KERNELS_DISPATCH_HH
#define VIA_KERNELS_DISPATCH_HH

#include <optional>
#include <string>
#include <vector>

#include "kernels/histogram.hh"
#include "kernels/spma.hh"
#include "kernels/spmm.hh"
#include "kernels/spmv.hh"
#include "kernels/stencil.hh"

namespace via::kernels
{

/** The SpMV format names every driver accepts. */
const std::vector<std::string> &spmvFormats();

/** True if @p fmt names a known SpMV format. */
bool isSpmvFormat(const std::string &fmt);

/**
 * Run the VIA SpMV kernel for @p fmt (converting @p a as needed).
 * Fatal on an unknown format name.
 */
SpmvResult spmvVia(Machine &m, const Csr &a, const DenseVector &x,
                   const std::string &fmt);

/**
 * Run the baseline (non-VIA) vector SpMV kernel for @p fmt on the
 * same converted storage the VIA variant uses.
 *
 * spmvVia/spmvBaseline convert and upload the matrix on every call,
 * so repeated runs on one machine touch fresh cold addresses.
 */
SpmvResult spmvBaseline(Machine &m, const Csr &a,
                        const DenseVector &x, const std::string &fmt);

/**
 * Run the SpMV kernel matching the machine's vector backend: the
 * VIA kernels on backend=via, the SSR / IndexMAC variants on their
 * backends, and the plain vector kernels on backend=base. This is
 * the entry point drivers use when the accelerated column of a
 * comparison should follow `backend=`.
 */
SpmvResult spmvAccel(Machine &m, const Csr &a, const DenseVector &x,
                     const std::string &fmt);

/**
 * The other kernels' backend-following entry points: the accelerated
 * variant matching Machine::backendKind() (VIA CAM / SSR streams /
 * IndexMAC), or the software baseline on backend=base.
 */
SpmaResult spmaAccel(Machine &m, const Csr &a, const Csr &b);
SpmmResult spmmAccel(Machine &m, const Csr &a, const Csc &b);
HistResult histAccel(Machine &m, const std::vector<Index> &keys,
                     Index buckets);
StencilResult stencilAccel(Machine &m, const DenseMatrix &img);

/**
 * A matrix made resident on a machine: the format conversion and
 * the matrix-operand upload happen once in the constructor, and
 * every run() emits the kernel body against the recorded base
 * addresses. Repeated runs re-walk the same lines with warm caches
 * — the serving subsystem's batching benefit — and a checkpoint
 * captured from the warm machine restores the resident matrix for
 * every fan-out batch.
 *
 * The geometry baked in at construction (vector length, CSB block
 * side from viaCsbBeta) comes from the constructing machine, so
 * run() must only be called on that machine, or on machines
 * restored from its checkpoints / built from the same MachineConfig.
 * The first run() on the constructing machine is bit-identical to
 * the matching spmvVia/spmvBaseline one-shot call.
 */
class SpmvResident
{
  public:
    /**
     * Convert @p a to @p fmt and upload it onto @p m once; run()
     * emits the kernel family of @p kind (which must match the
     * machine's backend for Ssr / IndexMac).
     */
    SpmvResident(Machine &m, const Csr &a, const std::string &fmt,
                 BackendKind kind);

    /** Back-compat: via selects BackendKind::Via, else Base. */
    SpmvResident(Machine &m, const Csr &a, const std::string &fmt,
                 bool via)
        : SpmvResident(m, a, fmt,
                       via ? BackendKind::Via : BackendKind::Base)
    {}

    /** Emit y = A x against the resident matrix. */
    SpmvResult run(Machine &m, const DenseVector &x) const;

    const std::string &format() const { return _fmt; }
    bool via() const { return _kind == BackendKind::Via; }
    BackendKind kind() const { return _kind; }
    /** Rows of the resident matrix (the result vector's length). */
    Index rows() const { return _csr.rows(); }

  private:
    std::string _fmt;
    BackendKind _kind;
    Csr _csr; //!< owned copy; also the conversion source
    std::optional<Spc5> _spc5;
    std::optional<SellCSigma> _sell;
    std::optional<Csb> _csb;
    CsrImage _csrImg;
    Spc5Image _spc5Img;
    SellImage _sellImg;
    CsbImage _csbImg;
};

} // namespace via::kernels

#endif // VIA_KERNELS_DISPATCH_HH
