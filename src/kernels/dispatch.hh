/**
 * @file
 * SpMV format dispatch shared by the drivers (via_sim, via_fuzz).
 *
 * A format name selects the storage conversion (CSR stays as-is,
 * SPC5/SELL-C-sigma/CSB are built from the CSR with the
 * machine-appropriate geometry) and the kernel pair: the baseline
 * vector variant and the VIA variant. Keeping the mapping in one
 * place means the fuzzer exercises exactly the conversions the
 * interactive driver runs.
 */

#ifndef VIA_KERNELS_DISPATCH_HH
#define VIA_KERNELS_DISPATCH_HH

#include <string>
#include <vector>

#include "kernels/spmv.hh"

namespace via::kernels
{

/** The SpMV format names every driver accepts. */
const std::vector<std::string> &spmvFormats();

/** True if @p fmt names a known SpMV format. */
bool isSpmvFormat(const std::string &fmt);

/**
 * Run the VIA SpMV kernel for @p fmt (converting @p a as needed).
 * Fatal on an unknown format name.
 */
SpmvResult spmvVia(Machine &m, const Csr &a, const DenseVector &x,
                   const std::string &fmt);

/**
 * Run the baseline (non-VIA) vector SpMV kernel for @p fmt on the
 * same converted storage the VIA variant uses.
 */
SpmvResult spmvBaseline(Machine &m, const Csr &a,
                        const DenseVector &x, const std::string &fmt);

} // namespace via::kernels

#endif // VIA_KERNELS_DISPATCH_HH
