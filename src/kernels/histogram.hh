/**
 * @file
 * Histogram kernels (paper Section IV-F1, Algorithm 5; evaluated in
 * Section VII-D / Figure 12.a).
 *
 * Baselines:
 *   - scalar: load-increment-store per key; duplicate keys serialize
 *     through store-to-load forwarding.
 *   - vector: AVX-512CD style — vpconflictd + merge sequence, then
 *     gather/add/scatter on the bucket array in memory. The
 *     scatter-to-gather dependence on hot buckets is the
 *     store-load-forwarding wall the paper attacks.
 *
 * VIA: same conflict-detection front end, but the accumulation is a
 * single vidx.add.d into the SSPM (Algorithm 5 line 5); buckets
 * never travel through the cache hierarchy until the final drain.
 */

#ifndef VIA_KERNELS_HISTOGRAM_HH
#define VIA_KERNELS_HISTOGRAM_HH

#include <vector>

#include "cpu/machine.hh"
#include "sparse/sparse_types.hh"

namespace via::kernels
{

/** Result of one histogram run. */
struct HistResult
{
    std::vector<Value> hist;
    Tick cycles = 0;
};

HistResult histScalar(Machine &m, const std::vector<Index> &keys,
                      Index buckets);
HistResult histVector(Machine &m, const std::vector<Index> &keys,
                      Index buckets);
HistResult histVia(Machine &m, const std::vector<Index> &keys,
                   Index buckets);

} // namespace via::kernels

#endif // VIA_KERNELS_HISTOGRAM_HH
