#include "kernels/reference.hh"

#include "simcore/log.hh"

namespace via::kernels
{

std::vector<Value>
refHistogram(const std::vector<Index> &keys, Index buckets)
{
    std::vector<Value> hist(std::size_t(buckets), Value(0));
    for (Index k : keys) {
        via_assert(k >= 0 && k < buckets, "key ", k,
                   " outside [0, ", buckets, ")");
        hist[std::size_t(k)] += Value(1);
    }
    return hist;
}

const std::array<float, 16> &
gaussian4x4()
{
    // Binomial 4-tap (1,3,3,1) outer product, normalized by 64.
    static const std::array<float, 16> filter = [] {
        std::array<float, 16> f{};
        const float tap[4] = {1.f, 3.f, 3.f, 1.f};
        for (int y = 0; y < 4; ++y)
            for (int x = 0; x < 4; ++x)
                f[std::size_t(y * 4 + x)] =
                    tap[y] * tap[x] / 64.0f;
        return f;
    }();
    return filter;
}

DenseMatrix
refConvolve4x4(const DenseMatrix &img)
{
    via_assert(img.rows() >= 4 && img.cols() >= 4,
               "image smaller than the filter");
    const auto &f = gaussian4x4();
    DenseMatrix out(img.rows() - 3, img.cols() - 3);
    for (Index y = 0; y < out.rows(); ++y) {
        for (Index x = 0; x < out.cols(); ++x) {
            float acc = 0.0f;
            for (int dy = 0; dy < 4; ++dy)
                for (int dx = 0; dx < 4; ++dx)
                    acc += f[std::size_t(dy * 4 + dx)] *
                           img.at(y + dy, x + dx);
            out.at(y, x) = acc;
        }
    }
    return out;
}

} // namespace via::kernels
