#include "kernels/histogram.hh"

#include <algorithm>

#include "kernels/kernel_utils.hh"
#include "simcore/log.hh"

namespace via::kernels
{

namespace
{

constexpr ElemType VT = ElemType::F32;
constexpr ElemType IT = ElemType::I32;

void
checkKeys(const std::vector<Index> &keys, Index buckets)
{
    for (Index k : keys)
        via_assert(k >= 0 && k < buckets, "key ", k,
                   " outside [0, ", buckets, ")");
}

} // namespace

HistResult
histScalar(Machine &m, const std::vector<Index> &keys, Index buckets)
{
    checkKeys(keys, buckets);
    Addr key_arr = upload(m, keys);
    Addr hist = allocValues(m, std::size_t(buckets));

    SReg s_key{0}, s_v{1}, s_one{2}, s_i{3};
    m.simm(s_one, 0);
    m.setSregF(s_one, 1.0);

    for (std::size_t i = 0; i < keys.size(); ++i) {
        m.sload(s_key, key_arr + 4 * Addr(i), 4);
        Addr slot = hist + 4 * Addr(keys[i]);
        m.sloadF(s_v, slot, VT, s_key);
        m.sfadd(s_v, s_v, s_one);
        m.sstoreF(slot, s_v, VT, s_key);
        m.salu(s_i, Index(i) + 1, s_i);
        m.sbranch(s_i);
    }
    return HistResult{downloadValues(m, hist, std::size_t(buckets)),
                      m.cycles()};
}

HistResult
histVector(Machine &m, const std::vector<Index> &keys, Index buckets)
{
    checkKeys(keys, buckets);
    Addr key_arr = upload(m, keys);
    Addr hist = allocValues(m, std::size_t(buckets));

    const int vl = int(m.vl());
    VReg v_keys{0}, v_cf{1}, v_ones{2}, v_cnt{3}, v_old{4};
    SReg s_i{3};

    m.vbroadcastF(v_ones, 1.0);
    for (std::size_t i = 0; i < keys.size();
         i += std::size_t(vl)) {
        int n = int(std::min<std::size_t>(std::size_t(vl),
                                          keys.size() - i));
        m.vload(v_keys, key_arr + 4 * Addr(i), IT, n);
        // Detect and merge duplicate buckets within the vector.
        m.vconflict(v_cf, v_keys, n);
        m.vmergeIdx(v_cnt, v_ones, v_keys, n);
        // Read-modify-write the bucket array through the caches.
        m.vgather(v_old, hist, v_keys, VT, n);
        m.vaddF(v_old, v_old, v_cnt, n);
        m.vscatter(hist, v_keys, v_old, VT, n);
        m.salu(s_i, Index(i) + vl, s_i);
        m.sbranch(s_i);
    }
    return HistResult{downloadValues(m, hist, std::size_t(buckets)),
                      m.cycles()};
}

HistResult
histVia(Machine &m, const std::vector<Index> &keys, Index buckets)
{
    checkKeys(keys, buckets);
    Addr key_arr = upload(m, keys);
    Addr hist = allocValues(m, std::size_t(buckets));

    const int vl = int(m.vl());
    auto capacity = Index(m.sspm().config().sramEntries());

    VReg v_keys{0}, v_cf{1}, v_ones{2}, v_idx{3}, v_out{4},
        v_dummy{5}, v_lo{6}, v_hi{7}, v_mask{8}, v_m2{9};
    SReg s_i{3};

    m.vbroadcastF(v_ones, 1.0);

    // Bucket ranges beyond the SSPM capacity run as multiple
    // passes over the key stream, one scratchpad-sized range each.
    for (Index lo = 0; lo < buckets; lo += capacity) {
        Index hi = std::min<Index>(lo + capacity, buckets);
        bool tiled = buckets > capacity;
        m.vidxClear();
        if (tiled) {
            m.vbroadcastI(v_lo, lo);
            m.vbroadcastI(v_hi, hi);
        }
        for (std::size_t i = 0; i < keys.size();
             i += std::size_t(vl)) {
            int n = int(std::min<std::size_t>(std::size_t(vl),
                                              keys.size() - i));
            m.vload(v_keys, key_arr + 4 * Addr(i), IT, n);
            if (tiled) {
                // Keep only lanes inside [lo, hi): mask, rebase and
                // compress them to the front.
                m.vcmpLtI(v_mask, v_keys, v_hi, n); // key < hi
                m.vcmpLtI(v_m2, v_keys, v_lo, n);   // key < lo
                m.vsubI(v_mask, v_mask, v_m2, n);   // in-range
                int active = 0;
                for (int l = 0; l < n; ++l)
                    active += m.vreg(v_mask).i(l) != 0;
                // Rebase to the pass-local range and compress.
                m.vsubI(v_keys, v_keys, v_lo, n);
                m.vcompress(v_keys, v_keys, v_mask, n);
                if (active == 0) {
                    m.sbranch(s_i);
                    continue;
                }
                m.vconflict(v_cf, v_keys, active);
                m.vidxAddD(v_ones, v_keys, ViaOut::Sspm, v_dummy,
                           0, active);
            } else {
                // Algorithm 5 line 3: conflict mask (the
                // lane-sequenced SSPM update keeps duplicates
                // exact; the instruction is kept for fidelity).
                m.vconflict(v_cf, v_keys, n);
                // Line 5: accumulate in the scratchpad.
                m.vidxAddD(v_ones, v_keys, ViaOut::Sspm, v_dummy,
                           0, n);
            }
            m.salu(s_i, Index(i) + vl, s_i);
            m.sbranch(s_i);
        }
        // Line 7: drain this range of the histogram to memory.
        for (Index i = lo; i < hi; i += vl) {
            int n = std::min<Index>(vl, hi - i);
            m.viotaI(v_idx, i - lo);
            m.vidxMov(v_out, v_idx, n);
            m.vstore(hist + 4 * Addr(i), v_out, VT, n, s_i);
            m.salu(s_i, i + vl, s_i);
            m.sbranch(s_i);
        }
    }
    return HistResult{downloadValues(m, hist, std::size_t(buckets)),
                      m.cycles()};
}

} // namespace via::kernels
