/**
 * @file
 * Breakpoint / watchpoint engine for the interactive debugger.
 *
 * The engine is a passive condition evaluator: the DebugSession
 * feeds it one StopContext per committed instruction (from its
 * TimingObserver hook) and receives back the conditions that fired.
 * It never touches the machine, so attaching it cannot perturb the
 * schedule — which is what makes "stop, inspect, continue" provably
 * bit-identical to an uninterrupted run.
 *
 * Condition kinds (paper-facing structures in parentheses):
 *   - opcode breakpoints: commit of a given mnemonic;
 *   - address / cache-line watchpoints: any memory access of the
 *     committed instruction overlapping the watched bytes;
 *   - CAM occupancy threshold (IndexTable::count());
 *   - SSPM valid-bitmap pressure threshold (Sspm::validCount()).
 *
 * Threshold watches are edge-triggered: they fire when the observed
 * value crosses from below the threshold to at-or-above it, then
 * re-arm once the value drops below again (a vidx.clear, say).
 * Without the re-arm latch a `continue` after the first hit would
 * stop on every subsequent instruction.
 */

#ifndef VIA_DEBUG_BREAKPOINTS_HH
#define VIA_DEBUG_BREAKPOINTS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "simcore/types.hh"

namespace via::debug
{

enum class StopKind : std::uint8_t
{
    OpBreak,   //!< commit of a given opcode
    AddrWatch, //!< access overlapping [addr, addr + bytes)
    LineWatch, //!< access touching one cache line
    CamWatch,  //!< CAM occupancy >= threshold
    SspmWatch, //!< SSPM valid-bit count >= threshold
};

/** One armed condition. */
struct StopSpec
{
    int id = 0;
    StopKind kind = StopKind::OpBreak;
    bool once = false; //!< delete after the first hit
    Op op = Op::Nop;
    Addr addr = 0;             //!< watch window base (line-aligned
                               //!< for LineWatch)
    std::uint64_t bytes = 1;   //!< watch window size
    std::uint64_t threshold = 0;

    /** Render as "break vidx.addd" / "watch line 0x1000" etc. */
    std::string describe() const;
};

/** Per-instruction snapshot the engine evaluates against. */
struct StopContext
{
    const Inst *inst = nullptr;
    std::uint64_t camCount = 0;  //!< IndexTable occupancy
    std::uint64_t sspmValid = 0; //!< SSPM valid-bitmap popcount
    std::uint64_t lineBytes = 64;
};

class BreakpointEngine
{
  public:
    /** Each add returns the new condition's id (1-based). */
    int addOpBreak(Op op, bool once = false);
    int addAddrWatch(Addr addr, std::uint64_t bytes,
                     bool once = false);
    int addLineWatch(Addr addr, std::uint64_t line_bytes,
                     bool once = false);
    int addCamWatch(std::uint64_t threshold, bool once = false);
    int addSspmWatch(std::uint64_t threshold, bool once = false);

    /** Delete condition @p id; false if no such id. */
    bool remove(int id);

    bool empty() const { return _specs.empty(); }
    std::size_t size() const { return _specs.size(); }

    /** "  1  break vidx.addd" rows, one per armed condition. */
    void list(std::ostream &os) const;

    /**
     * Evaluate every condition against one committed instruction.
     * Returns copies of the specs that fired (once-specs are
     * removed, threshold specs disarmed until re-armed).
     */
    std::vector<StopSpec> evaluate(const StopContext &ctx);

  private:
    struct Armed
    {
        StopSpec spec;
        bool armed = true; //!< threshold re-arm latch
    };

    bool matches(const Armed &a, const StopContext &ctx) const;

    int add(StopSpec spec);

    std::vector<Armed> _specs;
    int _nextId = 1;
};

} // namespace via::debug

#endif // VIA_DEBUG_BREAKPOINTS_HH
