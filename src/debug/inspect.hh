/**
 * @file
 * Pretty-printers for the debugger's `info` commands.
 *
 * Every renderer reads the same component state that saveState
 * serializes — through const accessors only, so inspection can
 * never perturb the machine it describes. Output is deterministic
 * (fixed field order, %.17g for floating-point) so script-mode
 * transcripts diff cleanly and CTest can pin them.
 */

#ifndef VIA_DEBUG_INSPECT_HH
#define VIA_DEBUG_INSPECT_HH

#include <cstdint>
#include <ostream>

#include "simcore/types.hh"

namespace via
{
class Machine;
class StatSet;
} // namespace via

namespace via::debug
{

/** ROB occupancy, size, commit front (`info rob`). */
void infoRob(std::ostream &os, const Machine &m);

/** LQ/SQ slot pressure + store-forward conflicts (`info lsq`). */
void infoLsq(std::ostream &os, const Machine &m);

/** SSPM geometry, valid-bit pressure, access stats (`info sspm`). */
void infoSspm(std::ostream &os, const Machine &m);

/** CAM occupancy and index-table stats (`info cam`). */
void infoCam(std::ostream &os, const Machine &m);

/** Presence of @p addr's line at every cache level + MSHR state
 *  (`info cache <addr>`). */
void infoCache(std::ostream &os, const Machine &m, Addr addr);

/** Backend kind and headline counters (`info backend`). */
void infoBackend(std::ostream &os, const Machine &m);

/** Full stat table (`info stats`): StatSet::dump order. */
void infoStats(std::ostream &os, const Machine &m);

/**
 * FNV-1a 64 over the sorted "name=value;" rendering of a StatSet —
 * the debugger's bit-identity witness. Two runs with identical
 * fingerprints observed identical counters.
 */
std::uint64_t statsFingerprint(const StatSet &stats);

} // namespace via::debug

#endif // VIA_DEBUG_INSPECT_HH
