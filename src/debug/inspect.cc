#include "debug/inspect.hh"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "cpu/machine.hh"
#include "cpu/ooo_core.hh"
#include "mem/mem_system.hh"
#include "simcore/stats.hh"
#include "via/sspm.hh"

namespace via::debug
{

namespace
{

/** Fixed-format double rendering shared with the fingerprint. */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
infoRob(std::ostream &os, const Machine &m)
{
    const OoOCore &core = m.core();
    const RobModel &rob = core.rob();
    const InstTiming &t = core.lastTiming();
    os << "rob: size " << rob.size() << ", pushed " << rob.count()
       << ", commit front " << rob.commitFront() << "\n";
    os << "  occupancy at last dispatch (" << t.dispatch
       << "): " << rob.occupancyAt(t.dispatch) << "\n";
    os << "  occupancy at last commit (" << t.commit
       << "): " << rob.occupancyAt(t.commit) << "\n";
}

void
infoLsq(std::ostream &os, const Machine &m)
{
    const OoOCore &core = m.core();
    const SlotPool &lq = core.loadQueue();
    const SlotPool &sq = core.storeQueue();
    const InstTiming &t = core.lastTiming();
    os << "lq: " << lq.busyAt(t.issue) << "/" << lq.size()
       << " busy at last issue (" << t.issue << "), next free at "
       << lq.freeAt() << "\n";
    os << "sq: " << sq.busyAt(t.issue) << "/" << sq.size()
       << " busy at last issue, next free at " << sq.freeAt()
       << "\n";
    os << "store-forward conflicts: " << core.stores().conflicts()
       << "\n";
}

void
infoSspm(std::ostream &os, const Machine &m)
{
    const Sspm &s = m.sspm();
    const SspmStats &st = s.stats();
    os << "sspm: " << s.validCount() << "/"
       << s.config().sramEntries() << " valid words ("
       << s.config().sspmBytes << " B, " << s.config().valueBytes
       << " B/word)\n";
    os << "  direct reads " << st.directReads << " (invalid "
       << st.invalidReads << "), direct writes " << st.directWrites
       << "\n";
    os << "  cam reads " << st.camReads << ", cam writes "
       << st.camWrites << ", bitmap clears " << st.bitmapClears
       << "\n";
}

void
infoCam(std::ostream &os, const Machine &m)
{
    const Sspm &s = m.sspm();
    const IndexTableStats &st = s.indexTable().stats();
    os << "cam: " << s.count() << "/" << s.config().camEntries()
       << " entries" << (s.camFull() ? " (full)" : "") << "\n";
    os << "  searches " << st.searches << " (hits " << st.hits
       << "), inserts " << st.inserts << ", overflows "
       << st.overflows << "\n";
    os << "  comparisons " << st.comparisons << ", banks searched "
       << st.banksSearched << ", clears " << st.clears << "\n";
}

void
infoCache(std::ostream &os, const Machine &m, Addr addr)
{
    const MemSystem &mem = m.memSystem();
    const std::uint32_t line = mem.lineBytes();
    const Addr line_addr = addr - addr % line;
    char hdr[64];
    std::snprintf(hdr, sizeof(hdr), "line 0x%" PRIx64 ":",
                  (std::uint64_t)line_addr);
    os << hdr << "\n";
    for (std::size_t i = 0; i < mem.numLevels(); ++i) {
        const Cache &c = mem.level(i);
        os << "  " << c.params().name << ": ";
        if (c.containsDirty(line_addr))
            os << "present (dirty)";
        else if (c.contains(line_addr))
            os << "present (clean)";
        else
            os << "absent";
        Tick complete = 0;
        if (c.mshrLookup(line_addr, m.cycles(), complete))
            os << ", miss in flight (completes " << complete << ")";
        os << "\n";
    }
}

void
infoBackend(std::ostream &os, const Machine &m)
{
    const CoreStats &st = m.core().stats();
    os << "backend: " << backendName(m.backendKind()) << "\n";
    os << "  insts " << st.insts << " (scalar " << st.scalarInsts
       << ", vector " << st.vectorInsts << ", accel "
       << st.viaInsts << ", mem " << st.memInsts << ")\n";
    os << "  cache accesses " << st.cacheAccesses
       << ", gathered elements " << st.gatherElements
       << ", branches " << st.branches << " (mispredicts "
       << st.mispredicts << ")\n";
}

void
infoStats(std::ostream &os, const Machine &m)
{
    // dump() sorts by name and is byte-stable across runs.
    m.stats().dump(os);
}

std::uint64_t
statsFingerprint(const StatSet &stats)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const std::string &s) {
        for (char c : s) {
            h ^= std::uint8_t(c);
            h *= 1099511628211ull;
        }
    };
    for (const std::string &name : stats.names()) {
        mix(name);
        mix("=");
        mix(num(stats.get(name)));
        mix(";");
    }
    return h;
}

} // namespace via::debug
