/**
 * @file
 * The interactive / script-driven debugger session.
 *
 * The simulator is emit-driven: a kernel is a host C++ function
 * calling Machine emit methods, with no event loop to pause. The
 * session therefore pauses *inside* the OoOCore's TimingObserver
 * hook — when a stop condition fires, the command loop runs
 * reentrantly while the kernel driver is suspended on the host
 * stack. Observers are passive by contract (they cannot feed back
 * into the schedule), so a paused-and-continued run commits the
 * exact instruction stream of an uninterrupted one; the `final:`
 * line's stats fingerprint makes that checkable from CTest.
 *
 * Rewind works by deterministic replay, not by in-place restore:
 * the suspended kernel driver's host state (loop indices, operand
 * base addresses) is not part of the machine checkpoint, so
 * `checkpoint load` abandons the current run via an exception,
 * rebuilds a fresh target from the factory, re-runs the kernel
 * suppressing every pause until the saved instruction marker, then
 * re-captures and byte-compares against the cached image — turning
 * every rewind into a machine-level determinism proof.
 */

#ifndef VIA_DEBUG_SESSION_HH
#define VIA_DEBUG_SESSION_HH

#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "cpu/multi_machine.hh"
#include "debug/breakpoints.hh"
#include "sample/checkpoint.hh"

namespace via::debug
{

/** The machine under debug: one core or a MultiMachine. */
struct DebugTarget
{
    std::unique_ptr<Machine> machine;    //!< cores == 1
    std::unique_ptr<MultiMachine> multi; //!< cores > 1

    bool single() const { return machine != nullptr; }
    unsigned cores() const
    {
        return machine ? 1 : multi->cores();
    }
    Machine &core(unsigned i)
    {
        return machine ? *machine : multi->core(i);
    }
    const Machine &core(unsigned i) const
    {
        return machine ? *machine : multi->core(i);
    }
    Tick cycles() const
    {
        return machine ? machine->cycles() : multi->cycles();
    }
};

/** Rebuilds a fresh target (used at start and on every rewind). */
using TargetFactory = std::function<DebugTarget()>;

/**
 * Runs the kernel under debug against the target; returns whether
 * the result check passed. Must be deterministic: the factory +
 * kernel pair is re-invoked verbatim on rewind.
 */
using KernelFn = std::function<bool(DebugTarget &)>;

/** I/O wiring for a session. */
struct SessionConfig
{
    std::istream *commands = nullptr; //!< nullptr: std::cin
    std::ostream *out = nullptr;      //!< nullptr: std::cout
    bool echo = false;   //!< echo each command (script transcripts)
    bool prompt = false; //!< print "(via_db) " before reads
};

class DebugSession
{
  public:
    DebugSession(TargetFactory factory, KernelFn kernel,
                 SessionConfig cfg);
    ~DebugSession();

    /**
     * Drive the whole session: pre-run command loop, kernel
     * execution with pauses, post-run command loop. Returns the
     * process exit code (0 = result ok and every checkpoint
     * verification passed).
     */
    int run();

    /** The engine, exposed for unit tests. */
    BreakpointEngine &engine() { return _engine; }

  private:
    /** Thrown through the kernel driver by `checkpoint load`. */
    struct RewindRequest
    {
        std::string name;
    };

    /** Per-core observer relay (identifies the committing core). */
    struct CoreTap : TimingObserver
    {
        DebugSession *sess = nullptr;
        unsigned core = 0;
        void
        onInstTiming(const Inst &inst,
                     const InstTiming &timing) override
        {
            sess->onInst(core, inst, timing);
        }
        void onTimingReset() override {}
    };

    void onInst(unsigned core_id, const Inst &inst,
                const InstTiming &timing);

    void buildTarget();
    void attachTaps();
    void detachTaps();

    /**
     * Read and execute commands until one resumes execution (or
     * input is exhausted, which detaches). @p at_pause selects the
     * wording of state-dependent messages.
     */
    void commandLoop(bool at_pause);

    /** Execute one line; true = resume (leave the command loop). */
    bool execute(const std::string &line, bool at_pause);

    bool cmdInfo(const std::vector<std::string> &words);
    bool cmdBreak(const std::vector<std::string> &words);
    bool cmdWatch(const std::vector<std::string> &words);
    void cmdCheckpointSave(const std::string &name);
    /** True if the load resumes (throws or schedules a rewind). */
    bool cmdCheckpointLoad(const std::string &name, bool at_pause);
    void printHelp();

    void clearResumeConditions();
    void drainPendingRewinds();
    void pause(const std::string &reason, unsigned core_id,
               const InstTiming &timing, const Inst &inst);
    void prepareReplay(const std::string &name);
    /** Re-capture at the marker and byte-compare with the image. */
    void verifyReplay();
    /** Print `result:` + `final:` lines after a completed run. */
    void printFinal(bool ok);
    std::uint64_t combinedFingerprint();

    TargetFactory _factory;
    KernelFn _kernel;
    SessionConfig _cfg;
    std::istream *_in = nullptr;
    std::ostream *_out = nullptr;

    DebugTarget _target;
    std::vector<std::unique_ptr<CoreTap>> _taps;
    BreakpointEngine _engine;
    sample::CheckpointCache _cache;
    /** Checkpoint name -> global instruction count at capture. */
    std::map<std::string, std::uint64_t> _markers;

    std::uint64_t _instCount = 0;

    // one-shot resume conditions (cleared on every stop)
    bool _stepArmed = false;
    std::uint64_t _stepRemaining = 0;
    bool _runToCycleArmed = false;
    Tick _runToCycle = 0;
    bool _runToInstArmed = false;
    std::uint64_t _runToInst = 0;

    bool _running = false;  //!< kernel driver active
    bool _inPause = false;  //!< reentrancy guard for the loop
    bool _detached = false; //!< quit/EOF: run silently to the end
    bool _eof = false;
    bool _failed = false; //!< a verification or command failed

    bool _replaying = false;
    std::uint64_t _replayUntil = 0;
    std::string _replayName;
    std::optional<std::string> _pendingRewind; //!< post-run load
};

} // namespace via::debug

#endif // VIA_DEBUG_SESSION_HH
