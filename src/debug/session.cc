#include "debug/session.hh"

#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "cpu/ooo_core.hh"
#include "debug/inspect.hh"
#include "isa/opcodes.hh"
#include "simcore/serialize.hh"
#include "via/sspm.hh"

namespace via::debug
{

namespace
{

std::vector<std::string>
split(const std::string &line)
{
    std::vector<std::string> words;
    std::istringstream iss(line);
    std::string w;
    while (iss >> w)
        words.push_back(w);
    return words;
}

/** Parse a decimal or 0x-prefixed number; false on junk. */
bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    try {
        std::size_t pos = 0;
        out = std::stoull(s, &pos, 0);
        return pos == s.size();
    } catch (...) {
        return false;
    }
}

/** Mnemonic -> opcode; false for an unknown mnemonic. */
bool
parseOp(const std::string &name, Op &out)
{
    for (int i = 0; i < int(Op::NumOps); ++i) {
        if (mnemonic(Op(i)) == name) {
            out = Op(i);
            return true;
        }
    }
    return false;
}

std::string
hex64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

} // namespace

DebugSession::DebugSession(TargetFactory factory, KernelFn kernel,
                           SessionConfig cfg)
    : _factory(std::move(factory)), _kernel(std::move(kernel)),
      _cfg(cfg),
      _in(cfg.commands != nullptr ? cfg.commands : &std::cin),
      _out(cfg.out != nullptr ? cfg.out : &std::cout)
{}

DebugSession::~DebugSession()
{
    detachTaps();
}

void
DebugSession::buildTarget()
{
    _target = _factory();
}

void
DebugSession::attachTaps()
{
    _taps.clear();
    for (unsigned c = 0; c < _target.cores(); ++c) {
        auto tap = std::make_unique<CoreTap>();
        tap->sess = this;
        tap->core = c;
        _target.core(c).core().addTimingObserver(tap.get());
        _taps.push_back(std::move(tap));
    }
}

void
DebugSession::detachTaps()
{
    if (_target.machine == nullptr && _target.multi == nullptr) {
        _taps.clear();
        return;
    }
    for (unsigned c = 0; c < _target.cores() && c < _taps.size();
         ++c)
        _target.core(c).core().removeTimingObserver(_taps[c].get());
    _taps.clear();
}

int
DebugSession::run()
{
    buildTarget();
    attachTaps();
    commandLoop(/*at_pause=*/false);
    drainPendingRewinds();

    bool ok = false;
    for (;;) {
        bool rewound = false;
        _running = true;
        try {
            ok = _kernel(_target);
        } catch (const RewindRequest &rr) {
            rewound = true;
            _running = false;
            prepareReplay(rr.name);
            drainPendingRewinds();
        }
        _running = false;
        if (rewound)
            continue;

        printFinal(ok);
        if (_detached)
            break;
        commandLoop(/*at_pause=*/false);
        if (_pendingRewind.has_value()) {
            drainPendingRewinds();
            continue;
        }
        break;
    }
    return (ok && !_failed) ? 0 : 1;
}

void
DebugSession::onInst(unsigned core_id, const Inst &inst,
                     const InstTiming &timing)
{
    if (_inPause || !_running)
        return;
    ++_instCount;

    if (_replaying) {
        if (_instCount < _replayUntil)
            return;
        _replaying = false;
        verifyReplay();
        pause("rewound to checkpoint '" + _replayName + "'",
              core_id, timing, inst);
        return;
    }
    if (_detached)
        return;

    std::string reason;
    if (_stepArmed && --_stepRemaining == 0) {
        reason = "step";
    } else if (_runToCycleArmed && timing.commit >= _runToCycle) {
        reason = "run-to-cycle " + std::to_string(_runToCycle);
    } else if (_runToInstArmed && _instCount >= _runToInst) {
        reason = "run-to-inst " + std::to_string(_runToInst);
    }

    const Machine &m = _target.core(core_id);
    StopContext ctx;
    ctx.inst = &inst;
    ctx.camCount = m.sspm().count();
    ctx.sspmValid = m.sspm().validCount();
    ctx.lineBytes = m.memSystem().lineBytes();
    for (const StopSpec &hit : _engine.evaluate(ctx)) {
        if (!reason.empty())
            reason += "; ";
        reason += (hit.kind == StopKind::OpBreak ? "breakpoint "
                                                 : "watchpoint ") +
                  std::to_string(hit.id) + " (" + hit.describe() +
                  ")";
    }

    if (!reason.empty())
        pause(reason, core_id, timing, inst);
}

void
DebugSession::pause(const std::string &reason, unsigned core_id,
                    const InstTiming &timing, const Inst &inst)
{
    clearResumeConditions();
    *_out << "stopped: " << reason;
    if (_target.cores() > 1)
        *_out << " core " << core_id;
    *_out << " at inst " << _instCount << " cycle " << timing.commit
          << " (" << mnemonic(inst.op) << ")\n";
    _inPause = true;
    try {
        commandLoop(/*at_pause=*/true);
    } catch (...) {
        // RewindRequest unwinds through here; the replay run must
        // observe instructions again.
        _inPause = false;
        throw;
    }
    _inPause = false;
}

void
DebugSession::clearResumeConditions()
{
    _stepArmed = false;
    _stepRemaining = 0;
    _runToCycleArmed = false;
    _runToInstArmed = false;
}

void
DebugSession::commandLoop(bool at_pause)
{
    if (_eof || _detached) {
        // Input exhausted: run to completion without stopping.
        _detached = true;
        return;
    }
    std::string line;
    for (;;) {
        if (_cfg.prompt)
            *_out << "(via_db) " << std::flush;
        if (!std::getline(*_in, line)) {
            _eof = true;
            if (_running || !at_pause) {
                // Let the kernel finish so the final lines print.
                _detached = true;
            }
            return;
        }
        if (_cfg.echo && !line.empty())
            *_out << "(via_db) " << line << "\n";
        if (execute(line, at_pause))
            return;
    }
}

bool
DebugSession::execute(const std::string &line, bool at_pause)
{
    const std::vector<std::string> words = split(line);
    if (words.empty() || words[0][0] == '#')
        return false;
    const std::string &cmd = words[0];

    if (cmd == "help") {
        printHelp();
        return false;
    }
    if (cmd == "echo") {
        std::string rest;
        for (std::size_t i = 1; i < words.size(); ++i)
            rest += (i > 1 ? " " : "") + words[i];
        *_out << rest << "\n";
        return false;
    }
    if (cmd == "info")
        return cmdInfo(words);
    if (cmd == "break")
        return cmdBreak(words);
    if (cmd == "watch")
        return cmdWatch(words);
    if (cmd == "delete") {
        std::uint64_t id = 0;
        if (words.size() != 2 || !parseU64(words[1], id)) {
            *_out << "usage: delete <id>\n";
        } else if (!_engine.remove(int(id))) {
            *_out << "no breakpoint " << id << "\n";
        } else {
            *_out << "deleted " << id << "\n";
        }
        return false;
    }
    if (cmd == "list") {
        _engine.list(*_out);
        return false;
    }
    if (cmd == "step") {
        std::uint64_t n = 1;
        if (words.size() > 1 && !parseU64(words[1], n)) {
            *_out << "usage: step [N]\n";
            return false;
        }
        if (!_running && at_pause) {
            *_out << "program is not running\n";
            return false;
        }
        _stepArmed = true;
        _stepRemaining = n > 0 ? n : 1;
        return true;
    }
    if (cmd == "run-to-cycle" || cmd == "run-to-inst") {
        std::uint64_t n = 0;
        if (words.size() != 2 || !parseU64(words[1], n)) {
            *_out << "usage: " << cmd << " N\n";
            return false;
        }
        if (cmd == "run-to-cycle") {
            if (_running && _target.cycles() >= Tick(n)) {
                *_out << "already at cycle " << _target.cycles()
                      << "\n";
                return false;
            }
            _runToCycleArmed = true;
            _runToCycle = Tick(n);
        } else {
            if (_instCount >= n) {
                *_out << "already at inst " << _instCount << "\n";
                return false;
            }
            _runToInstArmed = true;
            _runToInst = n;
        }
        return true;
    }
    if (cmd == "continue")
        return true;
    if (cmd == "quit") {
        if (_running)
            *_out << "detaching: running to completion\n";
        _detached = true;
        return true;
    }
    if (cmd == "checkpoint") {
        if (words.size() != 3 ||
            (words[1] != "save" && words[1] != "load")) {
            *_out << "usage: checkpoint save|load <name>\n";
            return false;
        }
        if (words[1] == "save") {
            cmdCheckpointSave(words[2]);
            return false;
        }
        return cmdCheckpointLoad(words[2], at_pause);
    }

    *_out << "unknown command: " << cmd
          << " (try 'help')\n";
    return false;
}

bool
DebugSession::cmdInfo(const std::vector<std::string> &words)
{
    if (words.size() < 2) {
        *_out << "usage: info "
                 "rob|lsq|sspm|cam|cache <addr>|stats|backend "
                 "[core]\n";
        return false;
    }
    const std::string &what = words[1];
    std::size_t arg_idx = 2;
    Addr addr = 0;
    if (what == "cache") {
        std::uint64_t a = 0;
        if (words.size() < 3 || !parseU64(words[2], a)) {
            *_out << "usage: info cache <addr> [core]\n";
            return false;
        }
        addr = Addr(a);
        arg_idx = 3;
    }
    std::uint64_t core_id = 0;
    if (words.size() > arg_idx &&
        (!parseU64(words[arg_idx], core_id) ||
         core_id >= _target.cores())) {
        *_out << "info: bad core index\n";
        return false;
    }
    const Machine &m = _target.core(unsigned(core_id));

    if (what == "rob")
        infoRob(*_out, m);
    else if (what == "lsq")
        infoLsq(*_out, m);
    else if (what == "sspm")
        infoSspm(*_out, m);
    else if (what == "cam")
        infoCam(*_out, m);
    else if (what == "cache")
        infoCache(*_out, m, addr);
    else if (what == "stats")
        infoStats(*_out, m);
    else if (what == "backend")
        infoBackend(*_out, m);
    else
        *_out << "unknown info target: " << what << "\n";
    return false;
}

bool
DebugSession::cmdBreak(const std::vector<std::string> &words)
{
    if (words.size() < 2) {
        *_out << "usage: break <mnemonic> [once]\n";
        return false;
    }
    Op op = Op::Nop;
    if (!parseOp(words[1], op)) {
        *_out << "unknown mnemonic: " << words[1] << "\n";
        return false;
    }
    const bool once = words.size() > 2 && words[2] == "once";
    const int id = _engine.addOpBreak(op, once);
    *_out << "breakpoint " << id << ": break " << words[1] << "\n";
    return false;
}

bool
DebugSession::cmdWatch(const std::vector<std::string> &words)
{
    const auto usage = [this] {
        *_out << "usage: watch addr <A> [bytes] | watch line <A> | "
                 "watch cam <N> | watch sspm <N>  [once]\n";
    };
    if (words.size() < 3) {
        usage();
        return false;
    }
    const bool once = words.back() == "once";
    const std::string &kind = words[1];
    std::uint64_t a = 0;
    if (!parseU64(words[2], a)) {
        usage();
        return false;
    }
    int id = 0;
    if (kind == "addr") {
        std::uint64_t bytes = 1;
        if (words.size() > 3 && words[3] != "once" &&
            !parseU64(words[3], bytes)) {
            usage();
            return false;
        }
        id = _engine.addAddrWatch(Addr(a), bytes, once);
    } else if (kind == "line") {
        id = _engine.addLineWatch(
            Addr(a), _target.core(0).memSystem().lineBytes(), once);
    } else if (kind == "cam") {
        id = _engine.addCamWatch(a, once);
    } else if (kind == "sspm") {
        id = _engine.addSspmWatch(a, once);
    } else {
        usage();
        return false;
    }
    *_out << "watchpoint " << id << ": watch " << kind << " "
          << words[2] << "\n";
    return false;
}

void
DebugSession::cmdCheckpointSave(const std::string &name)
{
    if (!_target.single()) {
        *_out << "checkpoint: multi-core targets cannot be "
                 "checkpointed\n";
        return;
    }
    try {
        sample::Checkpoint cp =
            sample::Checkpoint::capture(*_target.machine);
        const std::size_t bytes = cp.bytes().size();
        _cache.put(name, std::move(cp));
        _markers[name] = _instCount;
        *_out << "checkpoint '" << name << "' saved at inst "
              << _instCount << " (" << bytes << " bytes)\n";
    } catch (const SerializeError &e) {
        *_out << "checkpoint save failed: " << e.what() << "\n";
        _failed = true;
    }
}

bool
DebugSession::cmdCheckpointLoad(const std::string &name,
                                bool at_pause)
{
    if (_markers.find(name) == _markers.end()) {
        *_out << "no checkpoint '" << name << "'\n";
        return false;
    }
    *_out << "rewinding to checkpoint '" << name << "' (inst "
          << _markers[name] << ") via deterministic replay\n";
    if (at_pause && _running)
        throw RewindRequest{name};
    // Pre-run or post-run: rewind from the session driver instead
    // of unwinding a kernel that is not on the stack.
    _pendingRewind = name;
    return true;
}

void
DebugSession::drainPendingRewinds()
{
    // A replay to a marker at inst 0 re-enters the command loop,
    // which may itself request another rewind; settle them all
    // before (re)starting the kernel.
    while (_pendingRewind.has_value()) {
        const std::string name = *_pendingRewind;
        _pendingRewind.reset();
        prepareReplay(name);
    }
}

void
DebugSession::prepareReplay(const std::string &name)
{
    detachTaps();
    _target = DebugTarget{};
    buildTarget();
    attachTaps();
    _instCount = 0;
    clearResumeConditions();
    _replayName = name;
    _replayUntil = _markers.at(name);
    if (_replayUntil == 0) {
        // Captured before the first instruction: verify against
        // the fresh target and hand control back immediately.
        verifyReplay();
        commandLoop(/*at_pause=*/false);
    } else {
        _replaying = true;
    }
}

void
DebugSession::verifyReplay()
{
    if (!_target.single()) {
        *_out << "replay verification skipped (multi-core)\n";
        return;
    }
    try {
        const sample::Checkpoint now =
            sample::Checkpoint::capture(*_target.machine);
        const sample::Checkpoint &saved = _cache.get(_replayName);
        if (now.bytes() == saved.bytes()) {
            *_out << "checkpoint '" << _replayName
                  << "': replayed to inst " << _instCount
                  << ", state verified bit-identical ("
                  << now.bytes().size() << " bytes)\n";
        } else {
            *_out << "checkpoint '" << _replayName
                  << "': REPLAY MISMATCH (" << now.bytes().size()
                  << " vs " << saved.bytes().size() << " bytes)\n";
            _failed = true;
        }
    } catch (const SerializeError &e) {
        *_out << "replay verification failed: " << e.what() << "\n";
        _failed = true;
    }
}

std::uint64_t
DebugSession::combinedFingerprint()
{
    if (_target.single())
        return statsFingerprint(_target.machine->stats());
    // Fold per-core fingerprints with the shared-level stats.
    std::uint64_t h = 1469598103934665603ull;
    auto mix64 = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (unsigned c = 0; c < _target.cores(); ++c)
        mix64(statsFingerprint(_target.core(c).stats()));
    mix64(statsFingerprint(_target.multi->stats()));
    return h;
}

void
DebugSession::printFinal(bool ok)
{
    *_out << "result: " << (ok ? "ok" : "MISMATCH") << "\n";
    *_out << "final: cycles=" << _target.cycles()
          << " insts=" << _instCount
          << " stats_fnv64=" << hex64(combinedFingerprint()) << "\n";
}

void
DebugSession::printHelp()
{
    *_out <<
        "commands:\n"
        "  step [N]              advance N committed insts "
        "(default 1)\n"
        "  run-to-cycle N        stop at the first commit >= "
        "cycle N\n"
        "  run-to-inst N         stop once N insts committed\n"
        "  continue              run until a breakpoint or the "
        "end\n"
        "  break <mnemonic> [once]\n"
        "  watch addr <A> [bytes] [once]\n"
        "  watch line <A> [once]\n"
        "  watch cam <N> [once]  stop when CAM occupancy >= N\n"
        "  watch sspm <N> [once] stop when SSPM valid words >= N\n"
        "  delete <id> | list\n"
        "  info rob|lsq|sspm|cam|stats|backend [core]\n"
        "  info cache <addr> [core]\n"
        "  checkpoint save <name> | checkpoint load <name>\n"
        "  echo <text> | help | quit\n";
}

} // namespace via::debug
