#include "debug/breakpoints.hh"

#include <algorithm>
#include <cstdio>

#include "isa/opcodes.hh"

namespace via::debug
{

std::string
StopSpec::describe() const
{
    char buf[96];
    switch (kind) {
    case StopKind::OpBreak:
        std::snprintf(buf, sizeof(buf), "break %s",
                      std::string(mnemonic(op)).c_str());
        break;
    case StopKind::AddrWatch:
        std::snprintf(buf, sizeof(buf),
                      "watch addr 0x%llx bytes %llu",
                      (unsigned long long)addr,
                      (unsigned long long)bytes);
        break;
    case StopKind::LineWatch:
        std::snprintf(buf, sizeof(buf), "watch line 0x%llx",
                      (unsigned long long)addr);
        break;
    case StopKind::CamWatch:
        std::snprintf(buf, sizeof(buf), "watch cam >= %llu",
                      (unsigned long long)threshold);
        break;
    case StopKind::SspmWatch:
        std::snprintf(buf, sizeof(buf), "watch sspm >= %llu",
                      (unsigned long long)threshold);
        break;
    }
    std::string s(buf);
    if (once)
        s += " [once]";
    return s;
}

int
BreakpointEngine::add(StopSpec spec)
{
    spec.id = _nextId++;
    _specs.push_back(Armed{spec, true});
    return spec.id;
}

int
BreakpointEngine::addOpBreak(Op op, bool once)
{
    StopSpec s;
    s.kind = StopKind::OpBreak;
    s.op = op;
    s.once = once;
    return add(s);
}

int
BreakpointEngine::addAddrWatch(Addr addr, std::uint64_t bytes,
                               bool once)
{
    StopSpec s;
    s.kind = StopKind::AddrWatch;
    s.addr = addr;
    s.bytes = bytes > 0 ? bytes : 1;
    s.once = once;
    return add(s);
}

int
BreakpointEngine::addLineWatch(Addr addr, std::uint64_t line_bytes,
                               bool once)
{
    StopSpec s;
    s.kind = StopKind::LineWatch;
    s.addr = line_bytes > 0 ? addr - addr % line_bytes : addr;
    s.bytes = line_bytes > 0 ? line_bytes : 1;
    s.once = once;
    return add(s);
}

int
BreakpointEngine::addCamWatch(std::uint64_t threshold, bool once)
{
    StopSpec s;
    s.kind = StopKind::CamWatch;
    s.threshold = threshold;
    s.once = once;
    return add(s);
}

int
BreakpointEngine::addSspmWatch(std::uint64_t threshold, bool once)
{
    StopSpec s;
    s.kind = StopKind::SspmWatch;
    s.threshold = threshold;
    s.once = once;
    return add(s);
}

bool
BreakpointEngine::remove(int id)
{
    auto it = std::find_if(_specs.begin(), _specs.end(),
                           [id](const Armed &a) {
                               return a.spec.id == id;
                           });
    if (it == _specs.end())
        return false;
    _specs.erase(it);
    return true;
}

void
BreakpointEngine::list(std::ostream &os) const
{
    if (_specs.empty()) {
        os << "no breakpoints\n";
        return;
    }
    for (const Armed &a : _specs) {
        os << "  " << a.spec.id << "  " << a.spec.describe();
        if (!a.armed)
            os << " (disarmed until below threshold)";
        os << "\n";
    }
}

bool
BreakpointEngine::matches(const Armed &a, const StopContext &ctx) const
{
    const StopSpec &s = a.spec;
    switch (s.kind) {
    case StopKind::OpBreak:
        return ctx.inst != nullptr && ctx.inst->op == s.op;
    case StopKind::AddrWatch:
    case StopKind::LineWatch: {
        if (ctx.inst == nullptr)
            return false;
        const Addr lo = s.addr;
        const Addr hi = s.addr + s.bytes;
        for (std::uint8_t i = 0; i < ctx.inst->numAccesses; ++i) {
            const MemAccess &acc = ctx.inst->accesses[i];
            if (acc.addr < hi && acc.addr + acc.bytes > lo)
                return true;
        }
        return false;
    }
    case StopKind::CamWatch:
        return ctx.camCount >= s.threshold;
    case StopKind::SspmWatch:
        return ctx.sspmValid >= s.threshold;
    }
    return false;
}

std::vector<StopSpec>
BreakpointEngine::evaluate(const StopContext &ctx)
{
    std::vector<StopSpec> hits;
    for (std::size_t i = 0; i < _specs.size();) {
        Armed &a = _specs[i];
        const bool match = matches(a, ctx);
        const bool threshold = a.spec.kind == StopKind::CamWatch ||
                               a.spec.kind == StopKind::SspmWatch;
        if (threshold && !match)
            a.armed = true; // value dropped below: re-arm
        if (match && a.armed) {
            hits.push_back(a.spec);
            if (a.spec.once) {
                _specs.erase(_specs.begin() +
                             std::ptrdiff_t(i));
                continue; // erased: do not advance
            }
            if (threshold)
                a.armed = false;
        }
        ++i;
    }
    return hits;
}

} // namespace via::debug
