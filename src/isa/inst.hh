/**
 * @file
 * Timing metadata for one dynamic instruction.
 *
 * Functional execution happens eagerly in the Machine facade; the
 * timing model only needs dependencies, the functional-unit class,
 * the memory footprint, and (for VIA ops) the SSPM request counts.
 * Inst is therefore a small POD that flows from the assembler into
 * the out-of-order scheduler.
 */

#ifndef VIA_ISA_INST_HH
#define VIA_ISA_INST_HH

#include <array>
#include <cstdint>

#include "isa/opcodes.hh"
#include "simcore/types.hh"

namespace via
{

/** One cache-visible memory access made by an instruction. */
struct MemAccess
{
    Addr addr = 0;
    std::uint32_t bytes = 0;
    bool isWrite = false;
};

/**
 * Register-id namespace shared by scalar and vector registers:
 * scalar regs occupy ids [0, NUM_SREGS), vector regs follow.
 */
constexpr int REG_NONE = -1;

/** Maximum source operands an instruction can name. */
constexpr int MAX_SRCS = 3;

/** Maximum cache accesses one instruction can carry: up to one per
 *  gather/scatter lane, plus the stream-descriptor chunks an SSR
 *  fused op reads alongside its lanes. */
constexpr std::uint32_t MAX_INST_ACCESSES = 12;

/** Dynamic-instruction timing record. */
struct Inst
{
    Op op = Op::Nop;
    std::uint8_t vl = 0;       //!< active elements (0 for scalar ops)
    std::int16_t dst = REG_NONE;
    std::array<std::int16_t, MAX_SRCS> src{REG_NONE, REG_NONE,
                                           REG_NONE};

    /** Memory accesses (up to one per lane for gathers/scatters). */
    std::array<MemAccess, MAX_INST_ACCESSES> accesses{};
    std::uint8_t numAccesses = 0;

    /** SSPM element requests (VIA ops only). */
    std::uint16_t sspmReads = 0;
    std::uint16_t sspmWrites = 0;
    /** CAM searches performed (VIA CAM-mode ops only). */
    std::uint16_t camSearches = 0;

    /** Data-dependent branch metadata (SBranch only). */
    bool isDataBranch = false;
    bool branchTaken = false;
    std::uint32_t branchSite = 0;

    SeqNum seq = 0;

    void
    addAccess(Addr addr, std::uint32_t bytes, bool is_write)
    {
        accesses[numAccesses++] = MemAccess{addr, bytes, is_write};
    }

    bool isMem() const { return isMemOp(op); }
    bool isVia() const { return isViaOp(op); }
};

/** Per-op execution latencies (cycles in the functional unit). */
struct OpLatencies
{
    Tick intAlu = 1;
    Tick intMul = 3;
    Tick vecAlu = 1;
    Tick vecFp = 4;      //!< FP add/sub
    Tick vecFpMul = 5;   //!< FP mul / FMA
    Tick vecRed = 8;     //!< horizontal reduction
    Tick vecPerm = 3;    //!< cross-lane shuffle
    Tick vecConflict = 17; //!< vpconflictd measured cost on Skylake-X
    /**
     * Fixed startup beyond the per-element cache accesses. The paper
     * cites 22 cycles best case for an 8-lane gather on Intel cores;
     * with 8 L1 hits on 2 ports (4 cycles) that leaves ~18 cycles of
     * index-extraction/merge overhead.
     */
    Tick gatherOverhead = 18;
    Tick scatterOverhead = 14;
    /**
     * L1-port slots consumed per gathered/scattered element: indexed
     * accesses split into address-generation + load uops, so their
     * sustained throughput is well below one element per port-cycle
     * (Haswell: ~0.5-0.7 elements/cycle for vgatherdps).
     */
    Tick gatherPortFactor = 2;
    Tick viaOp = 2;      //!< FIVU pre/post processing overhead
    /**
     * Cycles to (re)program one SSR stream descriptor: address
     * bounds, stride and element type land in the streamer before
     * the first pop can issue (backend=ssr only).
     */
    Tick ssrSetup = 6;
    /**
     * Fixed cost of one indexed-MAC macro-op beyond its cache
     * accesses: index extraction and in-cache accumulate sequencing
     * (backend=indexmac only).
     */
    Tick imacOverhead = 8;
    /** Front-end redirect cost after a mispredicted branch. */
    Tick mispredictPenalty = 14;
    /**
     * Extra stall when a load hits data still sitting in the store
     * queue. Simple aligned scalar cases forward cheaply on real
     * cores, but the scattered partial-result updates of BBF sparse
     * kernels routinely fail fast-forwarding and replay (the
     * "store-load forwarding" cost of paper Section II-C).
     */
    Tick storeForwardPenalty = 10;

    /** Execution latency for @p op, excluding cache/SSPM time. */
    Tick latencyOf(Op op) const;
};

} // namespace via

#endif // VIA_ISA_INST_HH
