/**
 * @file
 * The simulated instruction set: an AVX2-like vector ISA plus the
 * nine VIA extensions from the paper (Section IV-C).
 *
 * Naming note: the paper's OCR'd mnemonics (vldxload, vldxmov, ...)
 * are normalized here to a vidx.* family:
 *
 *   paper                  | here
 *   -----------------------+---------------------------
 *   vldxload.{d,c}         | VidxLoadD / VidxLoadC
 *   vldxmov                | VidxMov      (SSPM -> VRF)
 *   vldxcount              | VidxCount
 *   "load VL consecutive   | VidxKeys     (index table -> VRF,
 *    indices from table"   |               used by SpMA extraction)
 *   vldxclear              | VidxClear
 *   vldx{add,sub,mult}.{d,c}| Vidx{Add,Sub,Mul}{D,C}
 *   vldxblkmult            | VidxBlkMulD
 */

#ifndef VIA_ISA_OPCODES_HH
#define VIA_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace via
{

/** Every simulated operation. */
enum class Op : std::uint8_t
{
    Nop = 0,

    // --- scalar ---
    SAlu,    //!< integer ALU op (add, and, shifts, ...)
    SMul,    //!< integer multiply
    SFAdd,   //!< scalar FP add (shares the vector FP adder)
    SFMul,   //!< scalar FP multiply (shares the FP multiplier)
    SBranch, //!< (predicted) conditional branch
    SLoad,   //!< scalar load
    SStore,  //!< scalar store

    // --- vector memory ---
    VLoad,    //!< unit-stride vector load
    VStore,   //!< unit-stride vector store
    VGather,  //!< indexed load, one cache access per active element
    VScatter, //!< indexed store, one cache access per active element

    // --- vector arithmetic ---
    VAddF, VSubF, VMulF, VFmaF,
    VAddI, VMulI,
    VAndI, VShrI, //!< immediate bitwise ops (CSB index unpack)
    VCmpEqI, VCmpLtI,
    VRedSumF, //!< horizontal sum into a scalar register
    VBroadcastF, VBroadcastI,
    VIota,    //!< lane-index constant generation
    VMove,

    // --- vector shuffles / AVX512CD-style helpers ---
    VCompress, //!< pack active lanes to the front
    VExpand,   //!< inverse of compress
    VPermute,  //!< arbitrary lane shuffle
    VConflict, //!< vpconflictd-like duplicate-index detection
    VMergeIdx, //!< conflict-merge macro-op: sum lanes w/ equal index
               //!< (the log2(VL) permute+add sequence of [39])

    // --- VIA extensions ---
    VidxLoadD,  //!< VRF -> SSPM[idx], direct-mapped
    VidxLoadC,  //!< VRF -> SSPM, CAM insert/update by key
    VidxMov,    //!< SSPM[idx] -> VRF, direct-mapped read
    VidxKeys,   //!< index table[offset..offset+VL) -> VRF
    VidxVals,   //!< SRAM slot contents [offset..offset+VL) -> VRF
    VidxCount,  //!< element count register -> scalar register
    VidxClear,  //!< flash-clear bitmap / index table
    VidxAddD, VidxAddC,
    VidxSubD, VidxSubC,
    VidxMulD, VidxMulC,
    VidxBlkMulD, //!< CSB block multiply-accumulate inside the SSPM

    // --- SSR baseline extensions (stream semantic registers) ---
    SsrCfg,  //!< bind an affine/indirect stream to a stream register
    SsrPopV, //!< pop VL elements from a stream into a vector register
    SsrPopS, //!< pop one element from a stream into a scalar register
    SsrFma,  //!< fused acc += val_stream * mem[idx_stream], per lane

    // --- IndexMAC baseline extensions (indexed MAC via the caches) ---
    VImacF,   //!< acc[l] += val[l] * mem[base + idx[l]], per lane
    VImacStF, //!< mem[base + idx[l]] += val[l], per lane

    NumOps
};

/** Functional-unit classes used by the issue model. */
enum class FuClass : std::uint8_t
{
    None = 0, //!< zero-latency / folded
    IntAlu,
    IntMul,
    VecAlu,   //!< vector int/compare/mask
    VecFp,    //!< vector FP add/sub
    VecFpMul, //!< vector FP mul / FMA
    VecRed,   //!< horizontal reductions
    VecPerm,  //!< cross-lane shuffles, compress, conflict
    LoadPort,
    StorePort,
    Fivu,     //!< VIA instructions
    NumClasses
};

/** True for loads/stores/gathers/scatters (they visit the caches). */
bool isMemOp(Op op);

/** True for any VIA instruction (executes at commit in the FIVU). */
bool isViaOp(Op op);

/** True if the VIA op reads or writes the SSPM in CAM mode. */
bool isCamOp(Op op);

/** True for the SSR stream ops (backend=ssr only). */
bool isSsrOp(Op op);

/** True for the IndexMAC indexed-MAC ops (backend=indexmac only). */
bool isImacOp(Op op);

/** The functional unit class an op issues to. */
FuClass fuClassOf(Op op);

/** Human-readable mnemonic. */
std::string_view mnemonic(Op op);

} // namespace via

#endif // VIA_ISA_OPCODES_HH
