#include "isa/inst.hh"

namespace via
{

Tick
OpLatencies::latencyOf(Op op) const
{
    if (op == Op::VConflict)
        return vecConflict;
    if (op == Op::VMergeIdx) {
        // log2(VL) permute+add stages executed as one macro-op.
        return 3 * (vecPerm + vecFp);
    }
    switch (fuClassOf(op)) {
      case FuClass::None:
        return 0;
      case FuClass::IntAlu:
        return intAlu;
      case FuClass::IntMul:
        return intMul;
      case FuClass::VecAlu:
        return vecAlu;
      case FuClass::VecFp:
        return vecFp;
      case FuClass::VecFpMul:
        return vecFpMul;
      case FuClass::VecRed:
        return vecRed;
      case FuClass::VecPerm:
        return vecPerm;
      case FuClass::LoadPort:
      case FuClass::StorePort:
        // Memory time is computed by the LSQ/MemSystem; the fixed
        // part here covers address generation.
        return op == Op::VGather ? gatherOverhead
             : op == Op::VScatter ? scatterOverhead
             : op == Op::SsrFma ? vecFpMul
             : (op == Op::VImacF || op == Op::VImacStF)
                 ? imacOverhead
             : 1;
      case FuClass::Fivu: {
        // SSPM request serialization is added by the FIVU model.
        switch (op) {
          case Op::VidxMulD:
          case Op::VidxMulC:
          case Op::VidxBlkMulD:
            return viaOp + vecFpMul;
          case Op::VidxAddD:
          case Op::VidxAddC:
          case Op::VidxSubD:
          case Op::VidxSubC:
            return viaOp + vecFp;
          default:
            return viaOp;
        }
      }
      default:
        return 1;
    }
}

} // namespace via
