/**
 * @file
 * Architectural vector state: lane containers and the register file.
 *
 * Registers are 256-bit (AVX2-like) by default: 8 x 32-bit or
 * 4 x 64-bit lanes. Lanes are stored as raw 64-bit containers with
 * typed accessors so one structure serves every element type.
 */

#ifndef VIA_ISA_VREG_HH
#define VIA_ISA_VREG_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "simcore/log.hh"

namespace via
{

/** Element types understood by the vector unit. */
enum class ElemType : std::uint8_t { I32, F32, I64, F64 };

/** Bytes per element. */
constexpr std::uint32_t
elemBytes(ElemType t)
{
    return (t == ElemType::I32 || t == ElemType::F32) ? 4 : 8;
}

/** Hardware vector width in bits. */
constexpr std::uint32_t VECTOR_BITS = 256;

/** Maximum lanes (32-bit elements in a 256-bit register). */
constexpr std::uint32_t MAX_LANES = VECTOR_BITS / 32;

/** Lanes available for a given element type. */
constexpr std::uint32_t
lanesFor(ElemType t)
{
    return VECTOR_BITS / (8 * elemBytes(t));
}

/** One vector register's value: raw 64-bit lane containers. */
struct VecValue
{
    std::array<std::uint64_t, MAX_LANES> raw{};

    std::int64_t
    i(std::uint32_t lane) const
    {
        return std::int64_t(raw[lane]);
    }

    void
    setI(std::uint32_t lane, std::int64_t v)
    {
        raw[lane] = std::uint64_t(v);
    }

    float
    f32(std::uint32_t lane) const
    {
        float out;
        auto bits = std::uint32_t(raw[lane]);
        std::memcpy(&out, &bits, sizeof(out));
        return out;
    }

    void
    setF32(std::uint32_t lane, float v)
    {
        std::uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        raw[lane] = bits;
    }

    double
    f64(std::uint32_t lane) const
    {
        double out;
        std::memcpy(&out, &raw[lane], sizeof(out));
        return out;
    }

    void
    setF64(std::uint32_t lane, double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        raw[lane] = bits;
    }

    /** Generic float read honouring the element type. */
    double
    fAs(ElemType t, std::uint32_t lane) const
    {
        return t == ElemType::F64 ? f64(lane) : double(f32(lane));
    }

    /** Generic float write honouring the element type. */
    void
    setFAs(ElemType t, std::uint32_t lane, double v)
    {
        if (t == ElemType::F64)
            setF64(lane, v);
        else
            setF32(lane, float(v));
    }
};

/** Number of architectural vector registers (ymm0..ymm15). */
constexpr int NUM_VREGS = 16;

/** Number of architectural scalar registers made visible. */
constexpr int NUM_SREGS = 32;

/** Architectural vector register file. */
class VecRegFile
{
  public:
    VecValue &
    operator[](int idx)
    {
        via_assert(idx >= 0 && idx < NUM_VREGS,
                   "vreg index out of range: ", idx);
        return _regs[std::size_t(idx)];
    }

    const VecValue &
    operator[](int idx) const
    {
        via_assert(idx >= 0 && idx < NUM_VREGS,
                   "vreg index out of range: ", idx);
        return _regs[std::size_t(idx)];
    }

  private:
    std::array<VecValue, NUM_VREGS> _regs{};
};

} // namespace via

#endif // VIA_ISA_VREG_HH
