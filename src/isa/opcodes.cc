#include "isa/opcodes.hh"

#include "simcore/log.hh"

namespace via
{

bool
isMemOp(Op op)
{
    switch (op) {
      case Op::SLoad:
      case Op::SStore:
      case Op::VLoad:
      case Op::VStore:
      case Op::VGather:
      case Op::VScatter:
      case Op::SsrPopV:
      case Op::SsrPopS:
      case Op::SsrFma:
      case Op::VImacF:
      case Op::VImacStF:
        return true;
      default:
        return false;
    }
}

bool
isViaOp(Op op)
{
    switch (op) {
      case Op::VidxLoadD:
      case Op::VidxLoadC:
      case Op::VidxMov:
      case Op::VidxKeys:
      case Op::VidxVals:
      case Op::VidxCount:
      case Op::VidxClear:
      case Op::VidxAddD:
      case Op::VidxAddC:
      case Op::VidxSubD:
      case Op::VidxSubC:
      case Op::VidxMulD:
      case Op::VidxMulC:
      case Op::VidxBlkMulD:
        return true;
      default:
        return false;
    }
}

bool
isCamOp(Op op)
{
    switch (op) {
      case Op::VidxLoadC:
      case Op::VidxAddC:
      case Op::VidxSubC:
      case Op::VidxMulC:
      case Op::VidxKeys:
      case Op::VidxVals:
        return true;
      default:
        return false;
    }
}

bool
isSsrOp(Op op)
{
    switch (op) {
      case Op::SsrCfg:
      case Op::SsrPopV:
      case Op::SsrPopS:
      case Op::SsrFma:
        return true;
      default:
        return false;
    }
}

bool
isImacOp(Op op)
{
    return op == Op::VImacF || op == Op::VImacStF;
}

FuClass
fuClassOf(Op op)
{
    switch (op) {
      case Op::Nop:
        return FuClass::None;
      case Op::SAlu:
      case Op::SBranch:
        return FuClass::IntAlu;
      case Op::SMul:
        return FuClass::IntMul;
      case Op::SFAdd:
        return FuClass::VecFp;
      case Op::SFMul:
        return FuClass::VecFpMul;
      case Op::SLoad:
      case Op::VLoad:
      case Op::VGather:
      case Op::SsrPopV:
      case Op::SsrPopS:
      case Op::SsrFma:
      case Op::VImacF:
        return FuClass::LoadPort;
      case Op::SStore:
      case Op::VStore:
      case Op::VScatter:
      case Op::VImacStF:
        return FuClass::StorePort;
      case Op::SsrCfg:
        return FuClass::None;
      case Op::VAddF:
      case Op::VSubF:
        return FuClass::VecFp;
      case Op::VMulF:
      case Op::VFmaF:
        return FuClass::VecFpMul;
      case Op::VAddI:
      case Op::VMulI:
      case Op::VAndI:
      case Op::VShrI:
      case Op::VCmpEqI:
      case Op::VCmpLtI:
      case Op::VBroadcastF:
      case Op::VBroadcastI:
      case Op::VIota:
      case Op::VMove:
        return FuClass::VecAlu;
      case Op::VRedSumF:
        return FuClass::VecRed;
      case Op::VCompress:
      case Op::VExpand:
      case Op::VPermute:
      case Op::VConflict:
      case Op::VMergeIdx:
        return FuClass::VecPerm;
      default:
        break;
    }
    if (isViaOp(op))
        return FuClass::Fivu;
    via_panic("fuClassOf: unhandled op ", int(op));
}

std::string_view
mnemonic(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::SAlu: return "salu";
      case Op::SMul: return "smul";
      case Op::SFAdd: return "sfadd";
      case Op::SFMul: return "sfmul";
      case Op::SBranch: return "sbr";
      case Op::SLoad: return "sld";
      case Op::SStore: return "sst";
      case Op::VLoad: return "vld";
      case Op::VStore: return "vst";
      case Op::VGather: return "vgather";
      case Op::VScatter: return "vscatter";
      case Op::VAddF: return "vaddf";
      case Op::VSubF: return "vsubf";
      case Op::VMulF: return "vmulf";
      case Op::VFmaF: return "vfmaf";
      case Op::VAddI: return "vaddi";
      case Op::VMulI: return "vmuli";
      case Op::VAndI: return "vandi";
      case Op::VShrI: return "vshri";
      case Op::VCmpEqI: return "vcmpeqi";
      case Op::VCmpLtI: return "vcmplti";
      case Op::VRedSumF: return "vredsumf";
      case Op::VBroadcastF: return "vbcastf";
      case Op::VBroadcastI: return "vbcasti";
      case Op::VIota: return "viota";
      case Op::VMove: return "vmove";
      case Op::VCompress: return "vcompress";
      case Op::VExpand: return "vexpand";
      case Op::VPermute: return "vpermute";
      case Op::VConflict: return "vconflict";
      case Op::VMergeIdx: return "vmergeidx";
      case Op::VidxLoadD: return "vidx.load.d";
      case Op::VidxLoadC: return "vidx.load.c";
      case Op::VidxMov: return "vidx.mov";
      case Op::VidxKeys: return "vidx.keys";
      case Op::VidxVals: return "vidx.vals";
      case Op::VidxCount: return "vidx.count";
      case Op::VidxClear: return "vidx.clear";
      case Op::VidxAddD: return "vidx.add.d";
      case Op::VidxAddC: return "vidx.add.c";
      case Op::VidxSubD: return "vidx.sub.d";
      case Op::VidxSubC: return "vidx.sub.c";
      case Op::VidxMulD: return "vidx.mul.d";
      case Op::VidxMulC: return "vidx.mul.c";
      case Op::VidxBlkMulD: return "vidx.blkmul.d";
      case Op::SsrCfg: return "ssr.cfg";
      case Op::SsrPopV: return "ssr.popv";
      case Op::SsrPopS: return "ssr.pops";
      case Op::SsrFma: return "ssr.fma";
      case Op::VImacF: return "vimac.f";
      case Op::VImacStF: return "vimac.st.f";
      default: return "<bad-op>";
    }
}

} // namespace via
