/**
 * @file
 * Load/store ordering support for the core model.
 *
 * StoreTracker remembers the most recent stores (a store-buffer worth)
 * so that younger loads to overlapping bytes wait until the store has
 * drained to the cache. Addresses are known at emit time, so this is
 * perfect memory disambiguation — adequate for the streaming kernels
 * studied here and noted as a modelling assumption in the README.
 */

#ifndef VIA_CPU_LSQ_HH
#define VIA_CPU_LSQ_HH

#include <cstdint>
#include <vector>

#include "simcore/types.hh"
#include "trace/trace.hh"

namespace via
{

class Serializer;
class Deserializer;

/**
 * A pool of queue slots occupied for a time interval (LQ/SQ
 * occupancy). Allocation is gated on the earliest-free slot, which
 * is what bounds memory-level parallelism in a real core.
 *
 * Free times are kept as a binary min-heap, so the allocation gate
 * is a O(1) read and a booking is one sift-down — the pools are
 * probed per element access, where a linear min scan over a
 * 72-entry load queue used to dominate the schedule cost.
 */
class SlotPool
{
  public:
    explicit
    SlotPool(std::uint32_t slots)
        : _freeAt(slots > 0 ? slots : 1, 0)
    {}

    /** Earliest tick a slot can be allocated. */
    Tick freeAt() const { return _freeAt[0]; }

    /** Occupy the earliest slot until @p until. */
    void
    reserve(Tick until)
    {
        // Replace the min (root) and sift it down.
        std::size_t i = 0;
        const std::size_t n = _freeAt.size();
        for (;;) {
            std::size_t kid = 2 * i + 1;
            if (kid >= n)
                break;
            if (kid + 1 < n && _freeAt[kid + 1] < _freeAt[kid])
                ++kid;
            if (_freeAt[kid] >= until)
                break;
            _freeAt[i] = _freeAt[kid];
            i = kid;
        }
        _freeAt[i] = until;
    }

    void
    resetTiming()
    {
        for (Tick &t : _freeAt)
            t = 0;
    }

    /** Number of slots in the pool. */
    std::size_t size() const { return _freeAt.size(); }

    /** Slots still occupied at tick @p t. Inspection-only. */
    std::size_t
    busyAt(Tick t) const
    {
        std::size_t n = 0;
        for (Tick f : _freeAt)
            if (f > t)
                ++n;
        return n;
    }

    /** Serialize slot occupancy (checkpoints). */
    void saveState(Serializer &ser) const;
    /** Restore state saved by saveState; validates slot count. */
    void loadState(Deserializer &des);

  private:
    std::vector<Tick> _freeAt; //!< min-heap of per-slot free times
};

/** Ring buffer of in-flight/recent stores for load ordering. */
class StoreTracker
{
  public:
    explicit StoreTracker(std::uint32_t depth);

    /** Record a store of [addr, addr+bytes) completing at @p when. */
    void recordStore(Addr addr, std::uint32_t bytes, Tick when);

    /**
     * Earliest tick a load of [addr, addr+bytes) may observe memory:
     * the max completion among overlapping tracked stores.
     *
     * Load-only phases skip the ring scan: with no store recorded
     * this epoch, no entry can overlap (and no conflict can count).
     */
    Tick
    loadReady(Addr addr, std::uint32_t bytes) const
    {
        if (_maxComplete == 0)
            return 0;
        return loadReadyScan(addr, bytes);
    }

    void resetTiming();

    std::uint64_t conflicts() const { return _conflicts; }

    /** Attach a trace sink for store-forwarding stall events. */
    void setTrace(TraceManager *trace) { _trace = trace; }

    /** Serialize the store ring (checkpoints). */
    void saveState(Serializer &ser) const;
    /** Restore state saved by saveState; validates the depth. */
    void loadState(Deserializer &des);

  private:
    struct StoreRec
    {
        Addr lo = 0;
        Addr hi = 0;
        Tick complete = 0;
    };

    Tick loadReadyScan(Addr addr, std::uint32_t bytes) const;

    std::vector<StoreRec> _ring;
    std::size_t _next = 0;
    /** Upper bound on any tracked complete tick (0 = empty epoch). */
    Tick _maxComplete = 0;
    mutable std::uint64_t _conflicts = 0;
    TraceManager *_trace = nullptr;
};

} // namespace via

#endif // VIA_CPU_LSQ_HH
