/**
 * @file
 * Build MachineParams from key=value configuration, so every
 * harness and the CLI expose the same sweep knobs.
 *
 * Recognized keys (all optional):
 *   sspm_kb, ports, cam_kb, cam_bank      — VIA hardware
 *   rob, dispatch, commit, lq, sq         — core window/widths
 *   l1_kb, l2_kb, l1_lat, l2_lat, mshrs   — caches
 *   dram_lat, dram_bw                     — memory (cycles, B/cyc)
 *   prefetch                              — L2 next-N-line degree
 *   gather_overhead, gather_ports         — indexed-access cost
 *   mispredict, store_forward             — penalty model
 *   via_at_commit                         — strict §IV-E reading
 *   backend                               — base|via|ssr|indexmac
 *   ssr_streams, ssr_setup                — SSR backend knobs
 *   imac_rows, imac_overhead              — IndexMAC backend knobs
 */

#ifndef VIA_CPU_MACHINE_CONFIG_HH
#define VIA_CPU_MACHINE_CONFIG_HH

#include "cpu/core_params.hh"
#include "mem/shared_llc.hh"
#include "simcore/config.hh"
#include "simcore/options.hh"

namespace via
{

/** Table I defaults overridden by whatever @p cfg carries. */
MachineParams machineParamsFrom(const Config &cfg);

/**
 * Register every machineParamsFrom key with an Options registry —
 * defaults mirror the Table I machine so the generated help table
 * shows what each knob resolves to when omitted.
 */
void addMachineOptions(Options &opts);

/**
 * Register the multi-core keys (cores=, partition=, llc_banks=)
 * with the harnesses that implement a cores>1 path. Kept separate
 * from addMachineOptions so a harness without a multi-core mode
 * rejects cores= as an unknown key instead of silently running
 * single-core.
 */
void addMultiCoreOptions(Options &opts);

/**
 * Shared-LLC parameters for a cores>1 run: the private hierarchy's
 * last level scaled by the core count (SharedLlcParams::from), with
 * the llc_banks= override applied.
 */
SharedLlcParams sharedLlcParamsFrom(const Config &cfg,
                                    const MachineParams &params,
                                    unsigned cores);

} // namespace via

#endif // VIA_CPU_MACHINE_CONFIG_HH
