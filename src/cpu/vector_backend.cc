#include "cpu/vector_backend.hh"

#include <algorithm>

#include "power/area_model.hh"
#include "simcore/log.hh"
#include "simcore/serialize.hh"

namespace via
{

namespace
{

/**
 * Leakage of one SSR stream register: a handful of address/stride
 * registers plus a small prefetch FIFO — orders of magnitude below
 * the SSPM macro (0.5 mW for the 16 KB/2p point).
 */
constexpr double ssrStreamLeakMw = 0.015;

/** Leakage of one IndexMAC row-buffer entry (one line + tag). */
constexpr double imacRowLeakMw = 0.020;

} // namespace

// ----------------- Base -----------------------------------------

Fivu::Timing
BaseBackend::dispatch(const Inst &inst, Tick, const OpLatencies &)
{
    via_panic("backend=base cannot execute ", mnemonic(inst.op),
              "; the kernel emitted an accelerator instruction on "
              "a plain vector machine");
}

double
BaseBackend::accelDynamicPj(double sspm_element_pj,
                            double cam_compare_pj) const
{
    // The SSPM exists but is never touched; keep the (zero-valued)
    // formula so base-vs-via deltas stay attributable.
    const SspmStats &ss = _sspm.stats();
    const IndexTableStats &its = _sspm.indexTable().stats();
    return double(ss.elementAccesses()) * sspm_element_pj +
           double(its.comparisons) * cam_compare_pj;
}

double
BaseBackend::accelLeakageMw() const
{
    return AreaModel::estimate(_sspm.config()).leakageMw;
}

// ----------------- VIA ------------------------------------------

double
ViaBackend::accelDynamicPj(double sspm_element_pj,
                           double cam_compare_pj) const
{
    const SspmStats &ss = _sspm.stats();
    const IndexTableStats &its = _sspm.indexTable().stats();
    return double(ss.elementAccesses()) * sspm_element_pj +
           double(its.comparisons) * cam_compare_pj;
}

double
ViaBackend::accelLeakageMw() const
{
    return AreaModel::estimate(_sspm.config()).leakageMw;
}

// ----------------- SSR ------------------------------------------

SsrBackend::Stream &
SsrBackend::stream(std::uint32_t s)
{
    via_assert(s < _streams.size(), "stream register ", s,
               " out of range (", _streams.size(), " configured)");
    return _streams[s];
}

Fivu::Timing
SsrBackend::dispatch(const Inst &inst, Tick ready,
                     const OpLatencies &lat)
{
    via_assert(inst.op == Op::SsrCfg,
               "non-cfg op dispatched to the SSR sequencer: ",
               mnemonic(inst.op));
    // One descriptor write port: back-to-back binds serialize.
    Tick start = _cfgUnit.acquire(ready);
    Tick complete = start + lat.ssrSetup;
    _lastCfgComplete = std::max(_lastCfgComplete, complete);
    return Fivu::Timing{start, complete};
}

void
SsrBackend::registerStats(StatSet &stats)
{
    stats.addScalar("ssr.binds", "stream descriptors programmed",
                    &_stats.binds);
    stats.addScalar("ssr.pops", "stream pop/fused instructions",
                    &_stats.pops);
    stats.addScalar("ssr.elements", "elements streamed in",
                    &_stats.elements);
}

void
SsrBackend::saveState(Serializer &ser) const
{
    ser.tag("SSRB");
    ser.put(std::uint32_t(_streams.size()));
    for (const Stream &s : _streams) {
        ser.put(std::uint8_t(s.kind));
        ser.put(s.base);
        ser.put(s.dataType);
        ser.put(s.idxBase);
        ser.put(s.idxType);
        ser.put(s.cursor);
    }
    ser.put(_lastCfgComplete);
    _cfgUnit.saveState(ser);
    ser.put(_stats.binds);
    ser.put(_stats.pops);
    ser.put(_stats.elements);
}

void
SsrBackend::loadState(Deserializer &des)
{
    des.expectTag("SSRB");
    if (des.get<std::uint32_t>() != _streams.size())
        throw SerializeError("SSR stream count mismatch");
    for (Stream &s : _streams) {
        s.kind = Stream::Kind(des.get<std::uint8_t>());
        s.base = des.get<Addr>();
        s.dataType = des.get<ElemType>();
        s.idxBase = des.get<Addr>();
        s.idxType = des.get<ElemType>();
        s.cursor = des.get<std::uint64_t>();
    }
    _lastCfgComplete = des.get<Tick>();
    _cfgUnit.loadState(des);
    _stats.binds = des.get<std::uint64_t>();
    _stats.pops = des.get<std::uint64_t>();
    _stats.elements = des.get<std::uint64_t>();
}

double
SsrBackend::accelDynamicPj(double sspm_element_pj,
                           double cam_compare_pj) const
{
    (void)cam_compare_pj;
    // Each streamed element moves through the stream FIFO, an
    // SSPM-port-class transfer; binds rewrite a descriptor (~a few
    // element writes).
    return double(_stats.elements + 4 * _stats.binds) *
           sspm_element_pj;
}

double
SsrBackend::accelLeakageMw() const
{
    return double(_streams.size()) * ssrStreamLeakMw;
}

// ----------------- IndexMAC -------------------------------------

bool
IndexMacBackend::touchLine(Addr addr)
{
    std::uint64_t line = std::uint64_t(addr) / _lineBytes;
    auto it = std::find(_rows.begin(), _rows.end(), line);
    if (it != _rows.end()) {
        // Move-to-front LRU.
        std::rotate(_rows.begin(), it, it + 1);
        ++_stats.rowHits;
        return true;
    }
    std::rotate(_rows.begin(), _rows.end() - 1, _rows.end());
    _rows.front() = line;
    ++_stats.rowMisses;
    return false;
}

Fivu::Timing
IndexMacBackend::dispatch(const Inst &inst, Tick,
                          const OpLatencies &)
{
    via_panic("backend=indexmac has no dispatched accelerator "
              "instructions (got ", mnemonic(inst.op),
              "); vimac ops flow through the memory pipeline");
}

void
IndexMacBackend::registerStats(StatSet &stats)
{
    stats.addScalar("imac.ops", "indexed-MAC macro-ops",
                    &_stats.ops);
    stats.addScalar("imac.row_hits",
                    "lanes served by the row buffer",
                    &_stats.rowHits);
    stats.addScalar("imac.row_misses",
                    "lanes paying a cache access",
                    &_stats.rowMisses);
}

void
IndexMacBackend::saveState(Serializer &ser) const
{
    ser.tag("IMAC");
    ser.put(std::uint32_t(_rows.size()));
    for (std::uint64_t line : _rows)
        ser.put(line);
    ser.put(_stats.ops);
    ser.put(_stats.rowHits);
    ser.put(_stats.rowMisses);
}

void
IndexMacBackend::loadState(Deserializer &des)
{
    des.expectTag("IMAC");
    if (des.get<std::uint32_t>() != _rows.size())
        throw SerializeError("IndexMAC row-buffer size mismatch");
    for (std::uint64_t &line : _rows)
        line = des.get<std::uint64_t>();
    _stats.ops = des.get<std::uint64_t>();
    _stats.rowHits = des.get<std::uint64_t>();
    _stats.rowMisses = des.get<std::uint64_t>();
}

double
IndexMacBackend::accelDynamicPj(double sspm_element_pj,
                                double cam_compare_pj) const
{
    (void)sspm_element_pj;
    // The MAC lanes' cache traffic is charged by the cache counters;
    // the extra hardware is the row-buffer tag match per lane.
    return double(_stats.rowHits + _stats.rowMisses) *
           cam_compare_pj;
}

double
IndexMacBackend::accelLeakageMw() const
{
    return double(_rows.size()) * imacRowLeakMw;
}

// ----------------- factory --------------------------------------

std::unique_ptr<VectorBackend>
makeBackend(const BackendParams &params, Fivu &fivu,
            const Sspm &sspm, std::uint32_t line_bytes)
{
    via_assert(params.ssrStreams > 0, "ssr_streams must be > 0");
    via_assert(params.imacRows > 0, "imac_rows must be > 0");
    switch (params.kind) {
      case BackendKind::Base:
        return std::make_unique<BaseBackend>(fivu, sspm);
      case BackendKind::Via:
        return std::make_unique<ViaBackend>(fivu, sspm);
      case BackendKind::Ssr:
        return std::make_unique<SsrBackend>(fivu, sspm, params);
      case BackendKind::IndexMac:
        return std::make_unique<IndexMacBackend>(fivu, sspm, params,
                                                 line_bytes);
    }
    via_panic("makeBackend: bad backend kind");
}

} // namespace via
