#include "cpu/multi_machine.hh"

#include <algorithm>

#include "simcore/log.hh"

namespace via
{

MachineParams
MultiMachine::privateParams(const MachineParams &params)
{
    MachineParams p = params;
    via_assert(!p.mem.levels.empty(), "hierarchy needs a level");
    // Keep only L1 private; deeper levels become the shared LLC.
    // The private prefetcher is off (MemSystem skips it in shared
    // mode anyway); the LLC prefetches instead.
    p.mem.levels.resize(1);
    p.mem.prefetch.degree = 0;
    return p;
}

MultiMachine::MultiMachine(const MachineParams &params,
                           unsigned cores,
                           const SharedLlcParams &llc_params)
    : _params(params), _llc(std::make_unique<SharedLlc>(llc_params))
{
    via_assert(cores >= 1, "need at least one core");
    via_assert(cores <= 32, "directory sharer mask holds 32 cores");
    MachineParams per_core = privateParams(params);
    for (unsigned c = 0; c < cores; ++c)
        _cores.push_back(std::make_unique<Machine>(per_core, _store,
                                                   *_llc, c));
    _llc->registerStats(_stats);
}

MultiMachine::MultiMachine(const MachineParams &params,
                           unsigned cores)
    : MultiMachine(params, cores,
                   SharedLlcParams::from(params.mem, cores))
{
}

Tick
MultiMachine::cycles() const
{
    Tick worst = 0;
    for (const auto &c : _cores)
        worst = std::max(worst, c->cycles());
    return worst;
}

void
MultiMachine::enableTracing(std::size_t limit)
{
    for (auto &c : _cores)
        c->enableTracing(limit);
    _llc->setTrace(_cores.front()->trace());
}

void
MultiMachine::attachCheckers()
{
    for (auto &c : _cores)
        c->attachChecker();
}

} // namespace via
