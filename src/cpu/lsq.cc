#include "cpu/lsq.hh"

#include <algorithm>
#include <functional>

#include "simcore/log.hh"
#include "simcore/serialize.hh"

namespace via
{

StoreTracker::StoreTracker(std::uint32_t depth)
    : _ring(std::max<std::uint32_t>(depth, 1))
{
}

void
StoreTracker::recordStore(Addr addr, std::uint32_t bytes, Tick when)
{
    _ring[_next] = StoreRec{addr, addr + bytes, when};
    _next = (_next + 1) % _ring.size();
    if (when > _maxComplete)
        _maxComplete = when;
}

Tick
StoreTracker::loadReadyScan(Addr addr, std::uint32_t bytes) const
{
    Addr lo = addr;
    Addr hi = addr + bytes;
    Tick ready = 0;
    for (const auto &st : _ring) {
        if (st.hi > lo && st.lo < hi && st.complete > ready) {
            ready = st.complete;
            ++_conflicts;
        }
    }
    if (ready > 0 && _trace != nullptr && _trace->enabled()) {
        TraceEvent ev;
        ev.kind = TraceEventKind::LsqForwardStall;
        ev.comp = TraceComponent::Lsq;
        ev.start = ev.end = ready;
        ev.a0 = addr;
        _trace->emit(ev);
    }
    return ready;
}

void
StoreTracker::resetTiming()
{
    std::fill(_ring.begin(), _ring.end(), StoreRec{});
    _next = 0;
    _maxComplete = 0;
}

void
SlotPool::saveState(Serializer &ser) const
{
    ser.tag("SLOT");
    ser.putVec(_freeAt);
}

void
SlotPool::loadState(Deserializer &des)
{
    des.expectTag("SLOT");
    auto v = des.getVec<Tick>();
    if (v.size() != _freeAt.size())
        throw SerializeError("slot pool size mismatch");
    _freeAt = std::move(v);
    // Timing depends only on the multiset of free times; restore the
    // heap invariant regardless of the order the file stored.
    std::make_heap(_freeAt.begin(), _freeAt.end(),
                   std::greater<Tick>());
}

void
StoreTracker::saveState(Serializer &ser) const
{
    ser.tag("STRK");
    ser.put(std::uint64_t(_ring.size()));
    for (const StoreRec &st : _ring) {
        ser.put(st.lo);
        ser.put(st.hi);
        ser.put(st.complete);
    }
    ser.put(std::uint64_t(_next));
    ser.put(_conflicts);
}

void
StoreTracker::loadState(Deserializer &des)
{
    des.expectTag("STRK");
    std::uint64_t n = des.get();
    if (n != _ring.size())
        throw SerializeError("store tracker depth mismatch");
    _maxComplete = 0;
    for (StoreRec &st : _ring) {
        st.lo = des.get<Addr>();
        st.hi = des.get<Addr>();
        st.complete = des.get<Tick>();
        if (st.complete > _maxComplete)
            _maxComplete = st.complete;
    }
    _next = std::size_t(des.get());
    if (_next >= _ring.size())
        throw SerializeError("store tracker cursor out of range");
    _conflicts = des.get<std::uint64_t>();
}

} // namespace via
