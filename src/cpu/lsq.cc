#include "cpu/lsq.hh"

#include <algorithm>

#include "simcore/log.hh"

namespace via
{

StoreTracker::StoreTracker(std::uint32_t depth)
    : _ring(std::max<std::uint32_t>(depth, 1))
{
}

void
StoreTracker::recordStore(Addr addr, std::uint32_t bytes, Tick when)
{
    _ring[_next] = StoreRec{addr, addr + bytes, when};
    _next = (_next + 1) % _ring.size();
}

Tick
StoreTracker::loadReady(Addr addr, std::uint32_t bytes) const
{
    Addr lo = addr;
    Addr hi = addr + bytes;
    Tick ready = 0;
    for (const auto &st : _ring) {
        if (st.hi > lo && st.lo < hi && st.complete > ready) {
            ready = st.complete;
            ++_conflicts;
        }
    }
    if (ready > 0 && _trace != nullptr && _trace->enabled()) {
        TraceEvent ev;
        ev.kind = TraceEventKind::LsqForwardStall;
        ev.comp = TraceComponent::Lsq;
        ev.start = ev.end = ready;
        ev.a0 = addr;
        _trace->emit(ev);
    }
    return ready;
}

void
StoreTracker::resetTiming()
{
    std::fill(_ring.begin(), _ring.end(), StoreRec{});
    _next = 0;
}

} // namespace via
