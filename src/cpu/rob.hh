/**
 * @file
 * Analytic reorder-buffer model.
 *
 * The ROB bounds how far dispatch can run ahead of commit: the i-th
 * instruction cannot dispatch before instruction (i - robSize) has
 * committed. Commit itself is in order and commit-width limited.
 */

#ifndef VIA_CPU_ROB_HH
#define VIA_CPU_ROB_HH

#include <cstdint>
#include <vector>

#include "cpu/fu_pool.hh"
#include "simcore/types.hh"

namespace via
{

/** Ring of per-entry commit ticks plus the in-order commit front. */
class RobModel
{
  public:
    RobModel(std::uint32_t rob_size, std::uint32_t commit_width);

    /**
     * Earliest dispatch tick for the next instruction given ROB
     * occupancy: the commit time of the entry being reused.
     */
    Tick dispatchReady() const;

    /**
     * Commit the next instruction (in order) once it completed at
     * @p complete. Returns the commit tick.
     */
    Tick commit(Tick complete);

    /** Commit tick of the youngest committed instruction. */
    Tick commitFront() const { return _lastCommit; }

    /** Number of instructions pushed so far. */
    SeqNum count() const { return _count; }

    /** ROB capacity (entries). */
    std::size_t size() const { return _ring.size(); }

    /**
     * Entries still occupied at tick @p t: pushed instructions whose
     * commit tick lies in the future. Inspection-only (debugger).
     */
    std::size_t
    occupancyAt(Tick t) const
    {
        std::size_t n = 0;
        const std::size_t live =
            _count < _ring.size() ? std::size_t(_count) : _ring.size();
        for (std::size_t i = 0; i < live; ++i)
            if (_ring[i] > t)
                ++n;
        return n;
    }

    /** Reset for a new kernel run. */
    void resetTiming();

    /** Serialize the commit ring (checkpoints). */
    void saveState(Serializer &ser) const;
    /** Restore state saved by saveState; validates the ROB size. */
    void loadState(Deserializer &des);

  private:
    std::vector<Tick> _ring; //!< commit tick per (seq % robSize)
    Resource _commitPorts;
    Tick _lastCommit = 0;
    SeqNum _count = 0;
};

} // namespace via

#endif // VIA_CPU_ROB_HH
