/**
 * @file
 * The pluggable vector-unit backend a Machine is built over.
 *
 * The core timing model is backend-agnostic: it routes the
 * backend-specific instructions (VIA's vidx.* family, SSR's stream
 * configuration) through VectorBackend::dispatch, asks the backend
 * whether a memory instruction has an extra eligibility constraint
 * (SSR pops wait for the stream descriptor to land), and delegates
 * the accelerator's share of the energy accounting.
 *
 * Four backends exist:
 *   Base     — plain vector ISA; no indexed-access hardware. The
 *              dispatch hook is unreachable (no vidx/ssr emits).
 *   Via      — the paper's smart scratchpad + FIVU; dispatch
 *              forwards to the Fivu timing model unchanged, so a
 *              Machine built over ViaBackend is cycle-identical to
 *              the pre-backend-interface simulator.
 *   Ssr      — stream semantic registers (arXiv 2011.08070): affine
 *              or indirect streams bound to architected stream
 *              registers; pops read the next elements with no
 *              explicit address computation, at a stream-setup cost
 *              per bind and bounded by the register count.
 *   IndexMac — indexed multiply-accumulate through the cache
 *              hierarchy (arXiv 2311.07241): MAC-at-the-L1 macro-ops
 *              whose row buffer short-circuits repeated hits to the
 *              same accumulator line.
 *
 * Byte-identity contract: ViaBackend and BaseBackend register no
 * extra statistics and serialize no extra state, so stats dumps and
 * checkpoints of backend=via machines are byte-identical to the
 * pre-refactor simulator (gated by check_backend_via_identical).
 */

#ifndef VIA_CPU_VECTOR_BACKEND_HH
#define VIA_CPU_VECTOR_BACKEND_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/backend_params.hh"
#include "isa/inst.hh"
#include "isa/vreg.hh"
#include "simcore/resource.hh"
#include "simcore/stats.hh"
#include "via/fivu.hh"
#include "via/sspm.hh"

namespace via
{

class Serializer;
class Deserializer;

/** Timing, statistics and energy hooks of one accelerator model. */
class VectorBackend
{
  public:
    VectorBackend(Fivu &fivu, const Sspm &sspm)
        : _fivu(fivu), _sspm(sspm)
    {}
    virtual ~VectorBackend() = default;

    virtual BackendKind kind() const = 0;

    /**
     * Dispatch one backend-specific instruction (a VIA op, or an
     * SSR stream bind) whose operands are ready at @p ready.
     * Backends without such instructions treat a call as a kernel
     * bug and abort.
     */
    virtual Fivu::Timing dispatch(const Inst &inst, Tick ready,
                                  const OpLatencies &lat) = 0;

    /**
     * Earliest tick a memory instruction may begin its cache
     * accesses, given operands ready at @p ready. The default has no
     * extra constraint; SSR gates stream pops on the last stream
     * bind having completed.
     */
    virtual Tick
    memEligible(const Inst &inst, Tick ready)
    {
        (void)inst;
        return ready;
    }

    /**
     * Register backend-specific statistics. Via/Base add nothing —
     * the Machine registers the SSPM/CAM/FIVU counters itself, and
     * the dump must stay byte-identical across the refactor.
     */
    virtual void registerStats(StatSet &stats) { (void)stats; }

    /** Reset timing (not statistics) between kernels. */
    virtual void resetTiming() { _fivu.resetTiming(); }

    /**
     * Serialize backend state appended to the machine checkpoint.
     * Via/Base write nothing (checkpoint byte-identity); stateful
     * backends tag and write their stream/row-buffer state.
     */
    virtual void saveState(Serializer &ser) const { (void)ser; }
    /** Restore state written by saveState. */
    virtual void loadState(Deserializer &des) { (void)des; }

    /**
     * Accelerator dynamic energy beyond what the core/cache/DRAM
     * counters already capture, in pJ. The per-event costs come from
     * the energy model (cpu code stays unit-cost agnostic).
     *
     * @param sspm_element_pj one 4-byte scratchpad port transfer
     * @param cam_compare_pj one comparator/tag activation
     */
    virtual double accelDynamicPj(double sspm_element_pj,
                                  double cam_compare_pj) const = 0;

    /** Accelerator leakage power in mW (integrated by the caller). */
    virtual double accelLeakageMw() const = 0;

  protected:
    Fivu &_fivu;
    const Sspm &_sspm;
};

/**
 * Plain vector ISA. Keeps the (unused) SSPM's dynamic/leakage terms
 * exactly as the pre-backend energy model charged them, so baseline
 * energy numbers are unchanged: an idle SSPM contributes zero
 * dynamic energy but still leaks.
 */
class BaseBackend : public VectorBackend
{
  public:
    using VectorBackend::VectorBackend;

    BackendKind kind() const override { return BackendKind::Base; }
    Fivu::Timing dispatch(const Inst &inst, Tick ready,
                          const OpLatencies &lat) override;
    double accelDynamicPj(double sspm_element_pj,
                          double cam_compare_pj) const override;
    double accelLeakageMw() const override;
};

/** The paper's VIA accelerator: forwards to the Fivu model. */
class ViaBackend : public VectorBackend
{
  public:
    using VectorBackend::VectorBackend;

    BackendKind kind() const override { return BackendKind::Via; }

    Fivu::Timing
    dispatch(const Inst &inst, Tick ready,
             const OpLatencies &lat) override
    {
        return _fivu.dispatch(inst, ready, lat);
    }

    double accelDynamicPj(double sspm_element_pj,
                          double cam_compare_pj) const override;
    double accelLeakageMw() const override;
};

/** SSR architectural + timing statistics. */
struct SsrStats
{
    std::uint64_t binds = 0;    //!< ssr.cfg stream descriptors set
    std::uint64_t pops = 0;     //!< pop/fused instructions executed
    std::uint64_t elements = 0; //!< elements streamed in
};

/**
 * Stream semantic registers. Architectural stream state (base,
 * cursor, element types) lives here because it is shared by the
 * emission path regardless of ExecPolicy, exactly like the SSPM's
 * contents for the VIA backend.
 */
class SsrBackend : public VectorBackend
{
  public:
    /** One architected stream register. */
    struct Stream
    {
        enum class Kind : std::uint8_t { None, Affine, Indirect };
        Kind kind = Kind::None;
        Addr base = 0;        //!< data base address
        ElemType dataType = ElemType::F32;
        Addr idxBase = 0;     //!< indirect: index array base
        ElemType idxType = ElemType::I32;
        std::uint64_t cursor = 0; //!< elements consumed so far
    };

    SsrBackend(Fivu &fivu, const Sspm &sspm,
               const BackendParams &params)
        : VectorBackend(fivu, sspm),
          _streams(params.ssrStreams)
    {}

    BackendKind kind() const override { return BackendKind::Ssr; }
    Fivu::Timing dispatch(const Inst &inst, Tick ready,
                          const OpLatencies &lat) override;

    Tick
    memEligible(const Inst &inst, Tick ready) override
    {
        if (isSsrOp(inst.op) && _lastCfgComplete > ready)
            return _lastCfgComplete;
        return ready;
    }

    void registerStats(StatSet &stats) override;

    void
    resetTiming() override
    {
        VectorBackend::resetTiming();
        _cfgUnit.resetTiming();
        _lastCfgComplete = 0;
    }

    void saveState(Serializer &ser) const override;
    void loadState(Deserializer &des) override;

    double accelDynamicPj(double sspm_element_pj,
                          double cam_compare_pj) const override;
    double accelLeakageMw() const override;

    // --- emission-side API (Machine ssr* emits) ------------------
    std::uint32_t numStreams() const
    {
        return std::uint32_t(_streams.size());
    }
    Stream &stream(std::uint32_t s);
    SsrStats &archStats() { return _stats; }
    const SsrStats &archStats() const { return _stats; }

  private:
    std::vector<Stream> _streams;
    Resource _cfgUnit{1}; //!< one descriptor write per cycle
    Tick _lastCfgComplete = 0;
    SsrStats _stats;
};

/** IndexMAC architectural + timing statistics. */
struct ImacStats
{
    std::uint64_t ops = 0;       //!< vimac.* macro-ops executed
    std::uint64_t rowHits = 0;   //!< lanes served by the row buffer
    std::uint64_t rowMisses = 0; //!< lanes paying a cache access
};

/**
 * Indexed MAC through the cache hierarchy. The row buffer tracks the
 * last N accumulator lines touched by vimac ops; a lane hitting a
 * buffered line skips its cache access (the MAC unit operates on the
 * buffered copy). Contents persist across resetTiming like cache
 * tags — the locality is architectural, not per-kernel.
 */
class IndexMacBackend : public VectorBackend
{
  public:
    IndexMacBackend(Fivu &fivu, const Sspm &sspm,
                    const BackendParams &params,
                    std::uint32_t line_bytes)
        : VectorBackend(fivu, sspm),
          _rows(params.imacRows, NO_LINE),
          _lineBytes(line_bytes)
    {}

    BackendKind
    kind() const override
    {
        return BackendKind::IndexMac;
    }

    Fivu::Timing dispatch(const Inst &inst, Tick ready,
                          const OpLatencies &lat) override;
    void registerStats(StatSet &stats) override;
    void saveState(Serializer &ser) const override;
    void loadState(Deserializer &des) override;

    double accelDynamicPj(double sspm_element_pj,
                          double cam_compare_pj) const override;
    double accelLeakageMw() const override;

    // --- emission-side API (Machine vimac* emits) ----------------
    /**
     * Consult-and-update the row buffer for the line holding
     * @p addr. @return true on hit (the lane's cache access is
     * filtered); on miss the line is inserted, evicting the LRU
     * entry.
     */
    bool touchLine(Addr addr);
    ImacStats &archStats() { return _stats; }
    const ImacStats &archStats() const { return _stats; }

  private:
    static constexpr std::uint64_t NO_LINE = ~std::uint64_t(0);

    /** Row-buffer entries, most recently used first. */
    std::vector<std::uint64_t> _rows;
    std::uint32_t _lineBytes;
    ImacStats _stats;
};

/** Factory over BackendParams (Machine construction). */
std::unique_ptr<VectorBackend>
makeBackend(const BackendParams &params, Fivu &fivu,
            const Sspm &sspm, std::uint32_t line_bytes);

} // namespace via

#endif // VIA_CPU_VECTOR_BACKEND_HH
