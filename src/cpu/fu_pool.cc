#include "cpu/fu_pool.hh"

#include <algorithm>

#include "cpu/core_params.hh"
#include "simcore/log.hh"
#include "simcore/serialize.hh"

namespace via
{

FuPool::FuPool(const CoreParams &params)
{
    for (std::size_t c = 1; c < std::size_t(FuClass::NumClasses);
         ++c) {
        _resources[c] =
            Resource(params.unitsFor(FuClass(c)));
    }
}

Resource &
FuPool::forClass(FuClass cls)
{
    via_assert(cls != FuClass::None && cls < FuClass::NumClasses,
               "no resource for FU class ", int(cls));
    return _resources[std::size_t(cls)];
}

const Resource &
FuPool::forClass(FuClass cls) const
{
    return const_cast<FuPool *>(this)->forClass(cls);
}

void
FuPool::resetTiming()
{
    for (auto &r : _resources)
        r.resetTiming();
}

void
FuPool::saveState(Serializer &ser) const
{
    ser.tag("FUPL");
    for (const auto &r : _resources)
        r.saveState(ser);
}

void
FuPool::loadState(Deserializer &des)
{
    des.expectTag("FUPL");
    for (auto &r : _resources)
        r.loadState(des);
}

} // namespace via
