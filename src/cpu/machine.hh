/**
 * @file
 * The Machine facade: functional execution + timing in one push.
 *
 * Kernels program the simulated core through an assembler-like API.
 * Each emit executes the instruction's architectural semantics
 * immediately (vector register file, SSPM, backing memory) and folds
 * its timing metadata into the out-of-order core model. Control flow
 * lives in the host kernel code and is treated as perfectly
 * predicted (see DESIGN.md Section 5).
 *
 * Register identifiers are plain handles; the kernel is responsible
 * for its own (trivial) register allocation out of NUM_SREGS scalar
 * and NUM_VREGS vector registers.
 */

#ifndef VIA_CPU_MACHINE_HH
#define VIA_CPU_MACHINE_HH

#include <array>
#include <cstdint>
#include <memory>

#include "cpu/core_params.hh"
#include "cpu/ooo_core.hh"
#include "cpu/vector_backend.hh"
#include "isa/inst.hh"
#include "isa/vreg.hh"
#include "mem/backing_store.hh"
#include "mem/mem_system.hh"
#include "simcore/event_queue.hh"
#include "simcore/stats.hh"
#include "trace/trace.hh"
#include "via/fivu.hh"
#include "via/sspm.hh"

namespace via
{

namespace check
{
class TimingInvariantChecker;
}

namespace sample
{
class FunctionalExecutor;
}

/**
 * Decides, per instruction, whether the machine folds it into the
 * detailed timing schedule or runs it through the functional warming
 * path (src/sample). Implemented by the interval-sampling driver; a
 * null policy means always detailed. Architectural results are
 * identical either way — the emit API executes semantics before the
 * policy is consulted.
 */
class ExecPolicy
{
  public:
    virtual ~ExecPolicy() = default;

    /** True: detailed timing for @p inst. False: functional warm. */
    virtual bool detailedNext(const Inst &inst) = 0;
};

/** Handle to a vector register. */
struct VReg
{
    int id = -1;
};

/** Handle to a scalar register. */
struct SReg
{
    int id = -1;
};

/** "No register" for optional dependence operands. */
inline constexpr SReg NO_SREG{-1};

/** Destination selector for vidx arithmetic (paper: `output`). */
enum class ViaOut : std::uint8_t { Vrf, Sspm };

/** The simulated machine: state + emit API. */
class Machine
{
  public:
    explicit Machine(const MachineParams &params);

    /**
     * Construct one core of a multi-core machine: architectural
     * memory is the caller's @p shared_store (shared by all cores),
     * and this core's private cache levels route their misses to
     * @p llc tagged with @p core_id. The caller (MultiMachine) owns
     * both and must outlive this Machine.
     */
    Machine(const MachineParams &params, BackingStore &shared_store,
            SharedLlc &llc, unsigned core_id);

    /**
     * Runs the attached invariant checker (if any) and aborts on
     * violation; with VIA_CHECK=1 every Machine teardown therefore
     * verifies the whole run. Out of line for the checker's type.
     */
    ~Machine();

    // --- subsystem access ---------------------------------------
    BackingStore &mem() { return *_mem; }
    const BackingStore &mem() const { return *_mem; }
    MemSystem &memSystem() { return *_memSys; }
    const MemSystem &memSystem() const { return *_memSys; }
    Sspm &sspm() { return *_sspm; }
    const Sspm &sspm() const { return *_sspm; }
    Fivu &fivu() { return *_fivu; }
    const Fivu &fivu() const { return *_fivu; }
    /** The vector-unit backend this machine was built over. */
    VectorBackend &backend() { return *_backend; }
    const VectorBackend &backend() const { return *_backend; }
    BackendKind backendKind() const { return _backend->kind(); }
    OoOCore &core() { return *_core; }
    const OoOCore &core() const { return *_core; }
    /**
     * Simulated-time event queue: schedule callbacks at future
     * ticks (stat sampling, watchdogs); they fire as the commit
     * front passes their times.
     */
    EventQueue &events() { return _events; }
    const MachineParams &params() const { return _params; }
    StatSet &stats() { return _stats; }
    const StatSet &stats() const { return _stats; }

    /**
     * Turn on event tracing with a ring of @p limit events, wiring
     * the sink through every subsystem. Tracing is per-Machine (no
     * shared state), so traced Machines on different sweep threads
     * stay race-free and deterministic, and it is observation-only:
     * timing and statistics are bit-identical with tracing off.
     */
    void enableTracing(std::size_t limit);

    /** The attached trace sink, or nullptr when tracing is off. */
    TraceManager *trace() { return _trace.get(); }
    const TraceManager *trace() const { return _trace.get(); }

    /**
     * Attach a timing-invariant checker (src/check) observing this
     * machine; no-op if one is already attached. Constructed
     * automatically when VIA_CHECK is set in the environment.
     * Observation-only: timing is bit-identical with or without it.
     */
    check::TimingInvariantChecker &attachChecker();

    /** The attached checker, or nullptr. */
    check::TimingInvariantChecker *checker() { return _checker.get(); }

    /**
     * Open a named kernel phase at the current makespan (shows as a
     * span on the trace's kernel track). No-op when not tracing.
     */
    void tracePhase(const std::string &name);

    /** Element type of values (F32 by default, 4-byte SSPM blocks). */
    ElemType valueType() const { return _params.valueType; }
    /** Element type of indices (I32 by default). */
    ElemType indexType() const { return _params.indexType; }
    /** Lanes per vector op for the value type. */
    std::uint32_t vl() const { return lanesFor(_params.valueType); }

    /** Makespan so far (commit tick of the youngest instruction). */
    Tick cycles() const { return _core->finishTick(); }

    /**
     * Select detailed vs functional execution per instruction
     * (nullptr reverts to always-detailed). Non-owning: the policy
     * must outlive the machine or be detached before it goes away.
     */
    void setExecPolicy(ExecPolicy *policy) { _policy = policy; }
    ExecPolicy *execPolicy() { return _policy; }

    /** The functional fast-forward executor and its statistics. */
    sample::FunctionalExecutor &functional() { return *_func; }
    const sample::FunctionalExecutor &
    functional() const
    {
        return *_func;
    }

    /**
     * Serialize the complete machine state: architectural memory and
     * registers, cache/DRAM/SSPM/CAM/core microarchitectural state,
     * statistics, and the simulated clock. Throws SerializeError if
     * the event queue has pending callbacks (they cannot be
     * serialized); drain or let them fire before checkpointing.
     */
    void saveState(Serializer &ser) const;
    /**
     * Restore state saved by saveState into this machine. The
     * machine must be configured identically (element types, cache
     * geometry, SSPM size, core sizing) or SerializeError is thrown.
     */
    void loadState(Deserializer &des);

    // --- architectural state (tests, result extraction) ----------
    VecValue &vreg(VReg r);
    const VecValue &vreg(VReg r) const;
    std::uint64_t sregRaw(SReg r) const;
    std::int64_t sregI(SReg r) const;
    void setSregI(SReg r, std::int64_t v); //!< host-side poke

    // ==============================================================
    // Scalar emits
    // ==============================================================

    /** Materialize an immediate (no input dependencies). */
    void simm(SReg dst, std::int64_t value);

    /**
     * Scalar ALU op with host-computed result: models the dependency
     * and latency; the semantic value is supplied by the kernel.
     */
    void salu(SReg dst, std::int64_t result, SReg a = NO_SREG,
              SReg b = NO_SREG);

    /** Scalar multiply (3-cycle class). */
    void smul(SReg dst, std::int64_t result, SReg a = NO_SREG,
              SReg b = NO_SREG);

    /** Scalar FP add: dst(F) = a(F) + b(F) as doubles. */
    void sfadd(SReg dst, SReg a, SReg b);
    /** Scalar FP multiply: dst(F) = a(F) * b(F) as doubles. */
    void sfmul(SReg dst, SReg a, SReg b);

    /** A well-predicted conditional branch (loop back-edges). */
    void sbranch(SReg cond = NO_SREG);

    /**
     * A data-dependent conditional branch, predicted by a 2-bit
     * counter at @p site. Mispredictions stall the front end for
     * mispredictPenalty cycles past the branch's resolution — this
     * is what makes sorted-merge loops slow on real hardware.
     *
     * @param cond register the branch resolves against
     * @param site static branch identity (per source location)
     * @param taken actual outcome this execution
     */
    void sbranchData(SReg cond, std::uint64_t site, bool taken);

    /** Scalar load of `bytes` (zero-extended into the register). */
    void sload(SReg dst, Addr addr, std::uint32_t bytes = 8,
               SReg addr_dep = NO_SREG);

    /** Scalar store of the low `bytes` of @p src. */
    void sstore(Addr addr, SReg src, std::uint32_t bytes = 8,
                SReg addr_dep = NO_SREG);

    /**
     * Scalar FP load: reads one element of type @p t from memory and
     * holds it in the register as a double (sregF view).
     */
    void sloadF(SReg dst, Addr addr, ElemType t,
                SReg addr_dep = NO_SREG);

    /** Scalar FP store of sregF(src) as one element of type @p t. */
    void sstoreF(Addr addr, SReg src, ElemType t,
                 SReg addr_dep = NO_SREG);

    // ==============================================================
    // Vector emits (vl < 0 means "full vector for this elem type")
    // ==============================================================

    void vload(VReg dst, Addr addr, ElemType t, int vl = -1,
               SReg addr_dep = NO_SREG);
    void vstore(Addr addr, VReg src, ElemType t, int vl = -1,
                SReg addr_dep = NO_SREG);

    /** dst[l] = mem[base + idx[l]*elemBytes(t)] for active lanes. */
    void vgather(VReg dst, Addr base, VReg idx, ElemType t,
                 int vl = -1);
    /** mem[base + idx[l]*elemBytes(t)] = src[l]. */
    void vscatter(Addr base, VReg idx, VReg src, ElemType t,
                  int vl = -1);

    void vbroadcastF(VReg dst, double v);
    void vbroadcastI(VReg dst, std::int64_t v);
    /** dst[l] = base + l*step for all lanes. */
    void viotaI(VReg dst, std::int64_t base, std::int64_t step = 1);
    /**
     * Materialize an arbitrary integer lane pattern (compilers load
     * such constants from the constant pool; modelled as one vector
     * ALU op). Missing lanes read zero.
     */
    void vpatternI(VReg dst, const std::vector<std::int64_t> &lanes);
    void vmove(VReg dst, VReg src);

    void vaddF(VReg dst, VReg a, VReg b, int vl = -1);
    void vsubF(VReg dst, VReg a, VReg b, int vl = -1);
    void vmulF(VReg dst, VReg a, VReg b, int vl = -1);
    /** dst[l] = a[l]*b[l] + c[l]. */
    void vfmaF(VReg dst, VReg a, VReg b, VReg c, int vl = -1);

    void vaddI(VReg dst, VReg a, VReg b, int vl = -1);
    void vsubI(VReg dst, VReg a, VReg b, int vl = -1);
    void vmulI(VReg dst, VReg a, VReg b, int vl = -1);
    /** dst[l] = (a[l] == b[l]) ? 1 : 0. */
    void vcmpEqI(VReg dst, VReg a, VReg b, int vl = -1);
    /** dst[l] = (a[l] <  b[l]) ? 1 : 0. */
    void vcmpLtI(VReg dst, VReg a, VReg b, int vl = -1);

    /** Horizontal FP sum of active lanes into a scalar register. */
    void vredsumF(SReg dst, VReg src, int vl = -1);
    /** Read a scalar register as the value type's float. */
    double sregF(SReg r) const;
    /** Host-side poke of a float into a scalar register. */
    void setSregF(SReg r, double v);

    /** dst[l] = a[l] & imm. */
    void vandI(VReg dst, VReg src, std::int64_t imm, int vl = -1);
    /** dst[l] = a[l] >> shift (arithmetic). */
    void vshrI(VReg dst, VReg src, std::uint32_t shift, int vl = -1);

    /** Pack lanes with mask[l] != 0 to the front of dst. */
    void vcompress(VReg dst, VReg src, VReg mask, int vl = -1);
    /** Scatter front lanes of src to positions with mask[l] != 0. */
    void vexpand(VReg dst, VReg src, VReg mask, int vl = -1);
    /**
     * vexpand with an immediate bitmask (AVX-512 k-register style):
     * dst[l] = (mask >> l) & 1 ? src[k++] : 0. The optional scalar
     * dependence models the mask arriving from a header load.
     */
    void vexpandMask(VReg dst, VReg src, std::uint32_t mask,
                     int vl = -1, SReg mask_dep = NO_SREG);
    /** dst[l] = src[perm[l] mod vl]. */
    void vpermute(VReg dst, VReg src, VReg perm, int vl = -1);
    /** AVX512CD-like: dst[l] = bitmask of lanes j<l, idx[j]==idx[l]. */
    void vconflict(VReg dst, VReg idx, int vl = -1);
    /**
     * Conflict-merge macro-op (the permutation sequence of [39]):
     * dst[l] = sum of src[j] over all lanes j with idx[j] == idx[l].
     * After this, a scatter by idx is conflict-safe: the last write
     * per duplicate index carries the full combined value.
     */
    void vmergeIdx(VReg dst, VReg src, VReg idx, int vl = -1);

    // ==============================================================
    // VIA emits (paper Section IV-C)
    // ==============================================================

    /** vidx.clear full mode. */
    void vidxClear();
    /** vidx.clear segment mode: valid bits in [lo, hi). */
    void vidxClearSegment(std::uint64_t lo, std::uint64_t hi);
    /** vidx.count: element count register -> scalar register. */
    void vidxCount(SReg dst);

    /** vidx.load.d: SSPM[idx[l]] = data[l] (direct-mapped). */
    void vidxLoadD(VReg data, VReg idx, int vl = -1);
    /** vidx.load.c: CAM insert/overwrite key[l] -> data[l]. */
    void vidxLoadC(VReg data, VReg keys, int vl = -1);
    /** vidx.mov: dst[l] = SSPM[idx[l]] (invalid entries read 0). */
    void vidxMov(VReg dst, VReg idx, int vl = -1);
    /** vidx.keys: dst[l] = indexTable[slot_offset + l]. */
    void vidxKeys(VReg dst, std::uint32_t slot_offset, int vl = -1);
    /** vidx.vals: dst[l] = SRAM[slot_offset + l]. */
    void vidxVals(VReg dst, std::uint32_t slot_offset, int vl = -1);

    /**
     * vidx.{add,sub,mul}.d — direct-mapped mode.
     * Reads SSPM[idx[l]], combines with data[l]; the result goes to
     * @p dst (out == Vrf) or to SSPM[idx[l] + offset] (out == Sspm).
     */
    void vidxAddD(VReg data, VReg idx, ViaOut out, VReg dst,
                  std::int64_t offset, int vl = -1);
    void vidxSubD(VReg data, VReg idx, ViaOut out, VReg dst,
                  std::int64_t offset, int vl = -1);
    void vidxMulD(VReg data, VReg idx, ViaOut out, VReg dst,
                  std::int64_t offset, int vl = -1);

    /**
     * vidx.{add,sub,mul}.c — CAM mode.
     * out == Vrf: dst[l] = match ? SSPM[slot] op data[l] : 0.
     * out == Sspm: union read-modify-write — matching keys combine
     * in place, absent keys insert data[l] (SpMA semantics).
     * A full CAM on insert is a fatal error (kernels must tile).
     */
    void vidxAddC(VReg data, VReg keys, ViaOut out, VReg dst,
                  int vl = -1);
    void vidxSubC(VReg data, VReg keys, ViaOut out, VReg dst,
                  int vl = -1);
    void vidxMulC(VReg data, VReg keys, ViaOut out, VReg dst,
                  int vl = -1);

    /**
     * vidx.blkmul.d — CSB block multiply-accumulate.
     * For each active lane: col = idx[l] & ((1<<idx_offset)-1),
     * row = idx[l] >> idx_offset;
     * SSPM[row + offset] += SSPM[col] * data[l].
     */
    void vidxBlkMulD(VReg data, VReg idx, std::uint32_t idx_offset,
                     std::int64_t offset, int vl = -1);

    // ==============================================================
    // SSR emits (backend=ssr; arXiv 2011.08070)
    // ==============================================================

    /**
     * ssr.cfg affine: bind stream register @p s to the unit-stride
     * sequence of @p t elements starting at @p base. Resets the
     * stream's cursor.
     */
    void ssrBindAffine(std::uint32_t s, Addr base, ElemType t);

    /**
     * ssr.cfg indirect: bind stream register @p s so each pop reads
     * the next index from @p idx_base and returns
     * mem[data_base + index * elemBytes(data_t)].
     */
    void ssrBindIndirect(std::uint32_t s, Addr idx_base,
                         ElemType idx_t, Addr data_base,
                         ElemType data_t);

    /**
     * ssr.popv: dst[l] = the stream's next @p vl elements; the
     * cursor advances by @p advance elements (default: vl — pass a
     * larger value to skip padding, e.g. SELL chunks with fewer
     * active rows than the chunk height).
     */
    void ssrPopV(VReg dst, std::uint32_t s, int vl = -1,
                 int advance = -1);

    /** ssr.pops: dst = the stream's next element (FP view for FP
     *  data types, integer view otherwise). */
    void ssrPopS(SReg dst, std::uint32_t s);

    /**
     * ssr.fma: acc[l] += val[l] * gather[l] where val streams from
     * @p val_s (affine) and gather[l] reads the data array of
     * indirect stream @p idx_s at its next indices — the fused
     * stream-FMA that replaces the load/gather/FMA triple. Both
     * cursors advance by @p advance (default vl).
     */
    void ssrFma(VReg acc, std::uint32_t val_s, std::uint32_t idx_s,
                int vl = -1, int advance = -1);

    // ==============================================================
    // IndexMAC emits (backend=indexmac; arXiv 2311.07241)
    // ==============================================================

    /**
     * vimac.f: acc[l] += val[l] * mem[base + idx[l]*elemBytes(vt)]
     * for active lanes. Lanes whose source line sits in the row
     * buffer skip their cache access.
     */
    void vimacF(VReg acc, Addr base, VReg idx, VReg val, int n = -1);

    /**
     * vimac.st.f: mem[base + idx[l]*elemBytes(vt)] += val[l], lanes
     * processed in order so duplicate indices accumulate serially
     * (no software conflict handling needed). Row-buffer hits skip
     * the cache access.
     */
    void vimacStF(Addr base, VReg idx, VReg val, int n = -1);

  private:
    enum class ArithKind : std::uint8_t { Add, Sub, Mul };

    /** Common constructor; null pointers mean single-core. */
    Machine(const MachineParams &params, BackingStore *shared_store,
            SharedLlc *llc, unsigned core_id);

    std::uint32_t resolveVl(ElemType t, int vl) const;
    Inst makeInst(Op op, int vl, std::int16_t dst, std::int16_t s0,
                  std::int16_t s1 = REG_NONE,
                  std::int16_t s2 = REG_NONE);

    /**
     * Route one emitted instruction: detailed schedule (default) or
     * functional warming, per the attached ExecPolicy. Every emit
     * funnels through here after its architectural execution.
     */
    void issue(const Inst &inst);
    static std::int16_t vid(VReg r);
    static std::int16_t sid(SReg r);

    /** The backend downcast to SSR; fatal on any other kind. */
    SsrBackend &ssr();
    /** The backend downcast to IndexMAC; fatal on any other kind. */
    IndexMacBackend &imac();

    double combineF(ArithKind k, double a, double b) const;
    void vidxArithD(Op op, ArithKind k, VReg data, VReg idx,
                    ViaOut out, VReg dst, std::int64_t offset,
                    int vl);
    void vidxArithC(Op op, ArithKind k, VReg data, VReg keys,
                    ViaOut out, VReg dst, int vl);

    MachineParams _params;
    BackingStore _store;
    /** Architectural memory: own _store, or the shared multi-core
     *  store. All emit semantics go through this pointer. */
    BackingStore *_mem = &_store;
    std::unique_ptr<MemSystem> _memSys;
    std::unique_ptr<Sspm> _sspm;
    std::unique_ptr<Fivu> _fivu;
    std::unique_ptr<VectorBackend> _backend;
    std::unique_ptr<OoOCore> _core;
    std::unique_ptr<sample::FunctionalExecutor> _func;
    ExecPolicy *_policy = nullptr;

    VecRegFile _vrf;
    std::array<std::uint64_t, NUM_SREGS> _srf{};

    EventQueue _events;
    StatSet _stats;
    SeqNum _seq = 0;
    std::unique_ptr<TraceManager> _trace;
    /** Declared last: detaches from _core before it is destroyed. */
    std::unique_ptr<check::TimingInvariantChecker> _checker;
};

} // namespace via

#endif // VIA_CPU_MACHINE_HH
