/**
 * @file
 * Analytic out-of-order core model.
 *
 * OoOCore consumes the dynamic instruction stream in program order
 * and computes, per instruction, its dispatch, issue, completion and
 * commit ticks using greedy list scheduling over:
 *
 *   - dispatch bandwidth (in order, dispatchWidth/cycle),
 *   - ROB occupancy (dispatch stalls until the reused entry retired),
 *   - data dependencies through the register ready table,
 *   - functional-unit bandwidth per class,
 *   - L1 load/store ports: gathers and scatters issue one cache
 *     access per active element,
 *   - memory ordering: loads wait for overlapping older stores,
 *   - the vector backend: VIA instructions become eligible only when
 *     non-speculative (commit-time execution, paper Section IV-E)
 *     and serialize on the FIVU/SSPM ports; SSR stream binds occupy
 *     the descriptor sequencer and gate later pops; backends may
 *     also constrain when a memory instruction becomes eligible
 *     (VectorBackend::memEligible).
 *
 * The model folds each pushed Inst into O(window) state; it keeps no
 * instruction history of its own. Branches are treated as perfectly
 * predicted. When a TraceManager is attached (src/trace), the
 * computed lifecycle ticks of every instruction are emitted as
 * observation-only events; with no manager attached the hook is a
 * single null check.
 */

#ifndef VIA_CPU_OOO_CORE_HH
#define VIA_CPU_OOO_CORE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cpu/core_params.hh"
#include "cpu/fu_pool.hh"
#include "cpu/lsq.hh"
#include "cpu/rob.hh"
#include "cpu/vector_backend.hh"
#include "isa/inst.hh"
#include "mem/mem_system.hh"
#include "simcore/event_queue.hh"
#include "simcore/stats.hh"
#include "simcore/types.hh"
#include "trace/trace.hh"
#include "via/fivu.hh"

namespace via
{

/** Lifecycle ticks of one instruction through the core. */
struct InstTiming
{
    Tick dispatch = 0;
    Tick issue = 0;
    Tick complete = 0;
    Tick commit = 0;
};

/**
 * Observer of per-instruction lifecycle timing. Implemented by the
 * invariant checker (src/check); observation-only — implementations
 * must not feed anything back into the schedule.
 */
class TimingObserver
{
  public:
    virtual ~TimingObserver() = default;

    /** Called once per push, after the schedule folded @p inst in. */
    virtual void onInstTiming(const Inst &inst,
                              const InstTiming &timing) = 0;

    /**
     * Called when core timing is reset (new measurement interval);
     * cross-interval monotonicity no longer holds after this.
     */
    virtual void onTimingReset() = 0;
};

/** Core-level statistics. */
struct CoreStats
{
    std::uint64_t insts = 0;
    std::uint64_t viaInsts = 0;
    std::uint64_t memInsts = 0;
    std::uint64_t vectorInsts = 0;
    std::uint64_t scalarInsts = 0;
    std::uint64_t cacheAccesses = 0; //!< element accesses issued
    std::uint64_t gatherElements = 0;
    std::uint64_t branches = 0;      //!< data-dependent branches
    std::uint64_t mispredicts = 0;
    std::uint64_t commitTick = 0;    //!< running makespan
};

/** Greedy list-scheduling OoO timing model. */
class OoOCore
{
  public:
    /**
     * @param params core sizing
     * @param mem the shared memory hierarchy
     * @param backend the vector-unit backend (shared with the
     *        Machine facade, which owns it)
     */
    OoOCore(const CoreParams &params, MemSystem &mem,
            VectorBackend &backend);

    /** Fold one instruction (program order) into the schedule. */
    void push(const Inst &inst);

    /** Commit tick of the youngest instruction (the makespan). */
    Tick finishTick() const { return _rob.commitFront(); }

    /** Completion tick of the youngest value written (drain). */
    Tick lastComplete() const { return _lastComplete; }

    /**
     * Reset all timing state for a new measurement interval.
     *
     * @param keep_predictor keep the branch counter table. The
     *        sampling driver warms the predictor during functional
     *        fast-forward and must not throw that state away at the
     *        start of each measurement interval.
     */
    void resetTiming(bool keep_predictor = false);

    /**
     * Warm the branch predictor without timing: predicts and trains
     * the counter table exactly as push() would, but books no core
     * resources and touches no CoreStats.
     *
     * @return true when the warmed prediction was a mispredict
     */
    bool warmBranch(const Inst &inst);

    const CoreParams &params() const { return _params; }
    CoreStats &stats() { return _stats; }
    const CoreStats &stats() const { return _stats; }

    /** Register core statistics under "core.". */
    void registerStats(StatSet &stats) const;

    /**
     * Attach an event queue that is advanced to each commit tick:
     * events scheduled on it (periodic stat sampling, watchdogs)
     * fire at the right simulated times as the kernel runs.
     */
    void attachEvents(EventQueue *events) { _events = events; }

    /**
     * Attach a trace sink (nullptr detaches). The core emits one
     * InstRetired record per push and stamps any events the
     * functional layer staged for the same instruction.
     */
    void setTrace(TraceManager *trace);

    /** Lifecycle ticks of the most recently pushed instruction. */
    const InstTiming &lastTiming() const { return _lastTiming; }

    /** Read-only views of the schedule structures (debugger). */
    const RobModel &rob() const { return _rob; }
    const SlotPool &loadQueue() const { return _loadQueue; }
    const SlotPool &storeQueue() const { return _storeQueue; }
    const StoreTracker &stores() const { return _stores; }

    /** Attach a timing observer (notified on every push/reset). */
    void addTimingObserver(TimingObserver *obs);
    /** Detach a previously attached observer (no-op if absent). */
    void removeTimingObserver(TimingObserver *obs);

    /** Serialize schedule state, predictor, and statistics. */
    void saveState(Serializer &ser) const;
    /**
     * Restore state saved by saveState. Observers are notified via
     * onTimingReset: the restored schedule is a new timing epoch.
     */
    void loadState(Deserializer &des);

  private:
    /** Combined scalar+vector register-ready table. */
    static constexpr int NUM_REGS = NUM_SREGS + NUM_VREGS;

    Tick regReady(std::int16_t reg) const;
    void setRegReady(std::int16_t reg, Tick when);

    /** Predict and train the counter for one data-dependent branch.
     *  @return true on mispredict */
    bool predictAndTrain(const Inst &inst);

    /** Schedule the memory accesses of @p inst; returns data-ready. */
    Tick scheduleMem(const Inst &inst, Tick issue);

    CoreParams _params;
    MemSystem &_mem;
    VectorBackend &_backend;
    EventQueue *_events = nullptr;

    FuPool _fus;
    Resource _dispatchPorts;
    RobModel _rob;
    StoreTracker _stores;
    SlotPool _loadQueue;
    SlotPool _storeQueue;

    std::array<Tick, NUM_REGS> _regReady{};
    Tick _lastDispatch = 0;
    Tick _lastComplete = 0;
    Tick _lastBranchResolve = 0; //!< non-speculative point

    /** 2-bit saturating counters for data-dependent branches. */
    std::unordered_map<std::uint32_t, std::uint8_t> _branchTable;

    CoreStats _stats;
    TraceManager *_trace = nullptr;
    InstTiming _lastTiming;
    std::vector<TimingObserver *> _timingObservers;
};

} // namespace via

#endif // VIA_CPU_OOO_CORE_HH
