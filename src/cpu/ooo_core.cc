#include "cpu/ooo_core.hh"

#include <algorithm>

#include "simcore/log.hh"
#include "simcore/selfprof.hh"
#include "simcore/serialize.hh"

namespace via
{

OoOCore::OoOCore(const CoreParams &params, MemSystem &mem,
                 VectorBackend &backend)
    : _params(params), _mem(mem), _backend(backend), _fus(params),
      _dispatchPorts(params.dispatchWidth),
      _rob(params.robSize, params.commitWidth),
      _stores(params.storeBuffer),
      _loadQueue(params.lqEntries),
      _storeQueue(params.sqEntries)
{
}

Tick
OoOCore::regReady(std::int16_t reg) const
{
    if (reg == REG_NONE)
        return 0;
    via_assert(reg >= 0 && reg < NUM_REGS, "bad register id ", reg);
    return _regReady[std::size_t(reg)];
}

void
OoOCore::setRegReady(std::int16_t reg, Tick when)
{
    if (reg == REG_NONE)
        return;
    via_assert(reg >= 0 && reg < NUM_REGS, "bad register id ", reg);
    _regReady[std::size_t(reg)] = when;
}

Tick
OoOCore::scheduleMem(const Inst &inst, Tick issue)
{
    // Each access grabs an L1 port slot, respects store ordering,
    // then walks the hierarchy. The instruction's data is ready when
    // the slowest access returns.
    bool indexed = inst.op == Op::VGather || inst.op == Op::VScatter;
    Tick port_occ = indexed ? _params.latencies.gatherPortFactor : 1;
    Tick data_ready = issue;
    for (std::uint8_t a = 0; a < inst.numAccesses; ++a) {
        const MemAccess &acc = inst.accesses[a];
        ++_stats.cacheAccesses;

        Tick ready = issue;
        SlotPool &queue = acc.isWrite ? _storeQueue : _loadQueue;
        // A load/store queue entry must be free before the access
        // can leave the core: this bounds memory-level parallelism.
        ready = std::max(ready, queue.freeAt());
        if (!acc.isWrite) {
            Tick fwd = _stores.loadReady(acc.addr, acc.bytes);
            if (fwd > 0) {
                // The load consumes a store still in flight: wait
                // for the line plus the forwarding-replay penalty.
                ready = std::max(
                    ready,
                    fwd + _params.latencies.storeForwardPenalty);
            }
        }

        Resource &port = _fus.forClass(acc.isWrite
                                           ? FuClass::StorePort
                                           : FuClass::LoadPort);
        Tick start = port.acquire(ready, port_occ);
        MemResult res = _mem.access(acc.addr, acc.bytes, acc.isWrite,
                                    start);
        queue.reserve(res.complete);
        if (acc.isWrite) {
            _stores.recordStore(acc.addr, acc.bytes, res.complete);
            // Stores retire into the cache; the instruction itself
            // completes once the access is issued.
            data_ready = std::max(data_ready, start + 1);
        } else {
            data_ready = std::max(data_ready, res.complete);
        }
    }
    return data_ready;
}

void
OoOCore::push(const Inst &inst)
{
    selfprof::Scope prof(selfprof::Domain::Core);
    ++_stats.insts;
    FuClass cls = fuClassOf(inst.op);

    if (logLevel() >= LogLevel::Debug) {
        via_debug("[", inst.seq, "] ", mnemonic(inst.op),
                  " vl=", int(inst.vl), " dst=", inst.dst,
                  " src=", inst.src[0], ",", inst.src[1], ",",
                  inst.src[2], " mem=", int(inst.numAccesses),
                  " sspm=", inst.sspmReads, "r/", inst.sspmWrites,
                  "w");
    }

    // ---- dispatch: in order, width-limited, ROB-bounded ----------
    Tick disp_ready = std::max(_lastDispatch, _rob.dispatchReady());
    Tick dispatch = _dispatchPorts.acquire(disp_ready);
    _lastDispatch = dispatch;

    // ---- operand readiness ---------------------------------------
    Tick ready = dispatch;
    for (std::int16_t src : inst.src)
        ready = std::max(ready, regReady(src));

    Tick issue = ready;
    Tick complete;
    if (inst.isVia()) {
        ++_stats.viaInsts;
        // VIA instructions must be non-speculative before touching
        // the SSPM (Section IV-E). With perfect branch prediction
        // that means all older branches resolved; the conservative
        // commit-time reading is available for the ablation.
        Tick safe = _params.viaAtCommit ? _rob.commitFront()
                                        : _lastBranchResolve;
        Tick eligible = std::max(ready, safe);
        Fivu::Timing t = _backend.dispatch(inst, eligible,
                                           _params.latencies);
        issue = t.start;
        complete = t.complete;
    } else if (inst.op == Op::SsrCfg) {
        // Stream binds occupy the backend's descriptor sequencer,
        // not a core FU; later pops wait on the bind's completion
        // through memEligible.
        Fivu::Timing t = _backend.dispatch(inst, ready,
                                           _params.latencies);
        issue = t.start;
        complete = t.complete;
    } else if (inst.isMem()) {
        ++_stats.memInsts;
        if (inst.op == Op::VGather || inst.op == Op::VScatter)
            _stats.gatherElements += inst.numAccesses;
        // Address generation / AGU issue, no earlier than any
        // backend constraint (SSR pops wait for their stream's
        // descriptor to land). The default backend hook returns
        // ready unchanged.
        Resource &agu = _fus.forClass(cls);
        issue = agu.acquire(_backend.memEligible(inst, ready));
        Tick fixed = _params.latencies.latencyOf(inst.op);
        complete = std::max(scheduleMem(inst, issue), issue + fixed);
    } else if (cls == FuClass::None) {
        complete = ready;
    } else {
        Resource &fu = _fus.forClass(cls);
        issue = fu.acquire(ready);
        complete = issue + _params.latencies.latencyOf(inst.op);
    }

    if (inst.vl > 0)
        ++_stats.vectorInsts;
    else
        ++_stats.scalarInsts;

    bool mispredicted = false;
    if (inst.op == Op::SBranch) {
        _lastBranchResolve = std::max(_lastBranchResolve, complete);
        if (inst.isDataBranch) {
            ++_stats.branches;
            if (predictAndTrain(inst)) {
                ++_stats.mispredicts;
                mispredicted = true;
                // Front-end redirect: nothing younger dispatches
                // until the branch resolves plus the refill delay.
                _lastDispatch = std::max(
                    _lastDispatch,
                    complete + _params.latencies.mispredictPenalty);
            }
        }
    }

    setRegReady(inst.dst, complete);
    _lastComplete = std::max(_lastComplete, complete);

    // ---- in-order commit -----------------------------------------
    Tick commit = _rob.commit(complete);
    _stats.commitTick = commit;
    _lastTiming = InstTiming{dispatch, issue, complete, commit};

    for (TimingObserver *obs : _timingObservers)
        obs->onInstTiming(inst, _lastTiming);

    if (_trace != nullptr && _trace->enabled()) {
        TraceEvent ev;
        ev.kind = TraceEventKind::InstRetired;
        ev.comp = TraceComponent::Core;
        ev.op = inst.op;
        ev.start = dispatch;
        ev.end = commit;
        ev.a0 = inst.seq;
        ev.a1 = issue;
        ev.a2 = complete;
        _trace->emit(ev);
        if (mispredicted) {
            TraceEvent mp;
            mp.kind = TraceEventKind::BranchMispredict;
            mp.comp = TraceComponent::Core;
            mp.op = inst.op;
            mp.start = mp.end = complete;
            mp.a0 = inst.branchSite;
            _trace->emit(mp);
        }
        // Functional-layer events (CAM matches etc.) staged while
        // this instruction executed architecturally get its window.
        _trace->flushStaged(issue, complete, inst.op);
    }

    // Simulated-time observers (stat sampling etc.) run as the
    // commit front passes their scheduled ticks.
    if (_events && commit > _events->curTick())
        _events->advanceTo(commit);
}

void
OoOCore::setTrace(TraceManager *trace)
{
    _trace = trace;
    _stores.setTrace(trace);
}

bool
OoOCore::predictAndTrain(const Inst &inst)
{
    // 2-bit saturating counter, weakly-taken initial state.
    std::uint8_t &ctr = _branchTable.try_emplace(
        inst.branchSite, 2).first->second;
    bool predict_taken = ctr >= 2;
    bool mispredicted = predict_taken != inst.branchTaken;
    if (inst.branchTaken && ctr < 3)
        ++ctr;
    else if (!inst.branchTaken && ctr > 0)
        --ctr;
    return mispredicted;
}

bool
OoOCore::warmBranch(const Inst &inst)
{
    if (inst.op != Op::SBranch || !inst.isDataBranch)
        return false;
    return predictAndTrain(inst);
}

void
OoOCore::resetTiming(bool keep_predictor)
{
    _fus.resetTiming();
    _dispatchPorts.resetTiming();
    _rob.resetTiming();
    _stores.resetTiming();
    _loadQueue.resetTiming();
    _storeQueue.resetTiming();
    _regReady.fill(0);
    _lastDispatch = 0;
    _lastComplete = 0;
    _lastBranchResolve = 0;
    if (!keep_predictor)
        _branchTable.clear();
    _backend.resetTiming();
    // Forgetting only the DRAM pipe would leave cache MSHRs holding
    // absolute ticks from the previous epoch; reset the whole
    // hierarchy's in-flight bookings.
    _mem.resetTiming();

    for (TimingObserver *obs : _timingObservers)
        obs->onTimingReset();
}

void
OoOCore::saveState(Serializer &ser) const
{
    ser.tag("CORE");
    _fus.saveState(ser);
    _dispatchPorts.saveState(ser);
    _rob.saveState(ser);
    _stores.saveState(ser);
    _loadQueue.saveState(ser);
    _storeQueue.saveState(ser);
    ser.put(std::uint64_t(NUM_REGS));
    for (Tick t : _regReady)
        ser.put(t);
    ser.put(_lastDispatch);
    ser.put(_lastComplete);
    ser.put(_lastBranchResolve);
    // Sorted by site so the byte stream does not depend on the
    // hash map's iteration order (capture -> restore -> capture must
    // produce identical bytes).
    std::vector<std::pair<std::uint32_t, std::uint8_t>> sites(
        _branchTable.begin(), _branchTable.end());
    std::sort(sites.begin(), sites.end());
    ser.put(std::uint64_t(sites.size()));
    for (const auto &[site, ctr] : sites) {
        ser.put(site);
        ser.put(ctr);
    }
    ser.put(_stats.insts);
    ser.put(_stats.viaInsts);
    ser.put(_stats.memInsts);
    ser.put(_stats.vectorInsts);
    ser.put(_stats.scalarInsts);
    ser.put(_stats.cacheAccesses);
    ser.put(_stats.gatherElements);
    ser.put(_stats.branches);
    ser.put(_stats.mispredicts);
    ser.put(_stats.commitTick);
    ser.put(_lastTiming.dispatch);
    ser.put(_lastTiming.issue);
    ser.put(_lastTiming.complete);
    ser.put(_lastTiming.commit);
}

void
OoOCore::loadState(Deserializer &des)
{
    des.expectTag("CORE");
    _fus.loadState(des);
    _dispatchPorts.loadState(des);
    _rob.loadState(des);
    _stores.loadState(des);
    _loadQueue.loadState(des);
    _storeQueue.loadState(des);
    if (des.get<std::uint64_t>() != std::uint64_t(NUM_REGS))
        throw SerializeError("register file size mismatch");
    for (Tick &t : _regReady)
        t = des.get<Tick>();
    _lastDispatch = des.get<Tick>();
    _lastComplete = des.get<Tick>();
    _lastBranchResolve = des.get<Tick>();
    std::uint64_t sites = des.get();
    _branchTable.clear();
    for (std::uint64_t i = 0; i < sites; ++i) {
        auto site = des.get<std::uint32_t>();
        auto ctr = des.get<std::uint8_t>();
        _branchTable[site] = ctr;
    }
    _stats.insts = des.get<std::uint64_t>();
    _stats.viaInsts = des.get<std::uint64_t>();
    _stats.memInsts = des.get<std::uint64_t>();
    _stats.vectorInsts = des.get<std::uint64_t>();
    _stats.scalarInsts = des.get<std::uint64_t>();
    _stats.cacheAccesses = des.get<std::uint64_t>();
    _stats.gatherElements = des.get<std::uint64_t>();
    _stats.branches = des.get<std::uint64_t>();
    _stats.mispredicts = des.get<std::uint64_t>();
    _stats.commitTick = des.get<std::uint64_t>();
    _lastTiming.dispatch = des.get<Tick>();
    _lastTiming.issue = des.get<Tick>();
    _lastTiming.complete = des.get<Tick>();
    _lastTiming.commit = des.get<Tick>();

    // The restored schedule is a fresh timing epoch for observers
    // (the invariant checker must drop cross-epoch monotonicity).
    for (TimingObserver *obs : _timingObservers)
        obs->onTimingReset();
}

void
OoOCore::addTimingObserver(TimingObserver *obs)
{
    via_assert(obs != nullptr, "null timing observer");
    _timingObservers.push_back(obs);
}

void
OoOCore::removeTimingObserver(TimingObserver *obs)
{
    auto it = std::find(_timingObservers.begin(),
                        _timingObservers.end(), obs);
    if (it != _timingObservers.end())
        _timingObservers.erase(it);
}

void
OoOCore::registerStats(StatSet &stats) const
{
    stats.addScalar("core.insts", "dynamic instructions",
                    &_stats.insts);
    stats.addScalar("core.via_insts", "VIA instructions",
                    &_stats.viaInsts);
    stats.addScalar("core.mem_insts", "memory instructions",
                    &_stats.memInsts);
    stats.addScalar("core.vector_insts", "vector instructions",
                    &_stats.vectorInsts);
    stats.addScalar("core.scalar_insts", "scalar instructions",
                    &_stats.scalarInsts);
    stats.addScalar("core.cache_accesses",
                    "element accesses issued to L1",
                    &_stats.cacheAccesses);
    stats.addScalar("core.gather_elements",
                    "elements moved by gathers/scatters",
                    &_stats.gatherElements);
    stats.addScalar("core.branches", "data-dependent branches",
                    &_stats.branches);
    stats.addScalar("core.mispredicts", "branch mispredictions",
                    &_stats.mispredicts);
    stats.addScalar("core.cycles", "commit tick of youngest inst",
                    &_stats.commitTick);
    stats.addFormula("core.ipc", "instructions per cycle", [this] {
        return _stats.commitTick
                   ? double(_stats.insts) / double(_stats.commitTick)
                   : 0.0;
    });
}

} // namespace via
