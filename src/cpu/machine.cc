#include "cpu/machine.hh"

#include <algorithm>

#include "check/invariants.hh"
#include "sample/functional.hh"
#include "simcore/log.hh"
#include "simcore/serialize.hh"

namespace via
{

namespace
{

/** Pack a host double into a raw lane container for element type t. */
std::uint64_t
fToRaw(ElemType t, double v)
{
    VecValue tmp;
    tmp.setFAs(t, 0, v);
    return tmp.raw[0];
}

/** Unpack a raw lane container as a double for element type t. */
double
rawToF(ElemType t, std::uint64_t raw)
{
    VecValue tmp;
    tmp.raw[0] = raw;
    return tmp.fAs(t, 0);
}

} // namespace

Machine::Machine(const MachineParams &params)
    : Machine(params, nullptr, nullptr, 0)
{
}

Machine::Machine(const MachineParams &params,
                 BackingStore &shared_store, SharedLlc &llc,
                 unsigned core_id)
    : Machine(params, &shared_store, &llc, core_id)
{
}

Machine::Machine(const MachineParams &params,
                 BackingStore *shared_store, SharedLlc *llc,
                 unsigned core_id)
    : _params(params),
      _memSys(std::make_unique<MemSystem>(params.mem)),
      _sspm(std::make_unique<Sspm>(params.via)),
      _fivu(std::make_unique<Fivu>(params.via)),
      _backend(makeBackend(params.backend, *_fivu, *_sspm,
                           _memSys->lineBytes())),
      _core(std::make_unique<OoOCore>(params.core, *_memSys,
                                      *_backend)),
      _func(std::make_unique<sample::FunctionalExecutor>(*_memSys,
                                                         *_core))
{
    if (shared_store != nullptr)
        _mem = shared_store;
    // Attach before registering stats so the hierarchy knows to
    // skip its (unused) private DRAM counters.
    if (llc != nullptr)
        _memSys->attachShared(llc, core_id);
    _core->attachEvents(&_events);
    _memSys->registerStats(_stats);
    _core->registerStats(_stats);
    _func->registerStats(_stats);

    const SspmStats &ss = _sspm->stats();
    _stats.addScalar("sspm.direct_reads", "direct-mapped reads",
                     &ss.directReads);
    _stats.addScalar("sspm.direct_writes", "direct-mapped writes",
                     &ss.directWrites);
    _stats.addScalar("sspm.cam_reads", "CAM-mode reads",
                     &ss.camReads);
    _stats.addScalar("sspm.cam_writes", "CAM-mode writes",
                     &ss.camWrites);
    _stats.addScalar("sspm.bitmap_clears", "flash clears",
                     &ss.bitmapClears);

    const IndexTableStats &its = _sspm->indexTable().stats();
    _stats.addScalar("cam.searches", "index table searches",
                     &its.searches);
    _stats.addScalar("cam.comparisons",
                     "comparators activated (energy proxy)",
                     &its.comparisons);
    _stats.addScalar("cam.banks_searched",
                     "banks not clock-gated during searches",
                     &its.banksSearched);
    _stats.addScalar("cam.inserts", "new tracked indices",
                     &its.inserts);
    _stats.addScalar("cam.overflows", "rejected inserts (table full)",
                     &its.overflows);

    const FivuStats &fs = _fivu->stats();
    _stats.addScalar("fivu.insts", "VIA instructions executed",
                     &fs.viaInsts);
    _stats.addScalar("fivu.busy_cycles", "FIVU occupancy",
                     &fs.busyCycles);
    _stats.addScalar("fivu.sspm_read_cycles",
                     "cycles spent on SSPM read phases",
                     &fs.sspmReadCycles);
    _stats.addScalar("fivu.sspm_write_cycles",
                     "cycles spent on SSPM write phases",
                     &fs.sspmWriteCycles);

    // Via/Base register nothing here, keeping the dump (and every
    // fingerprint over it) byte-identical to the pre-backend layout.
    _backend->registerStats(_stats);

    if (check::envEnabled())
        attachChecker();
}

Machine::~Machine()
{
    if (_checker && check::envEnabled())
        _checker->checkOrDie();
}

check::TimingInvariantChecker &
Machine::attachChecker()
{
    if (!_checker)
        _checker =
            std::make_unique<check::TimingInvariantChecker>(*this);
    return *_checker;
}

void
Machine::enableTracing(std::size_t limit)
{
    _trace = std::make_unique<TraceManager>(limit);
    _core->setTrace(_trace.get());
    _memSys->setTrace(_trace.get());
    _sspm->setTrace(_trace.get());
    _fivu->setTrace(_trace.get());
}

void
Machine::tracePhase(const std::string &name)
{
    if (_trace)
        _trace->beginPhase(name, cycles());
}

VecValue &
Machine::vreg(VReg r)
{
    return _vrf[r.id];
}

const VecValue &
Machine::vreg(VReg r) const
{
    return _vrf[r.id];
}

std::uint64_t
Machine::sregRaw(SReg r) const
{
    via_assert(r.id >= 0 && r.id < NUM_SREGS, "bad sreg ", r.id);
    return _srf[std::size_t(r.id)];
}

std::int64_t
Machine::sregI(SReg r) const
{
    return std::int64_t(sregRaw(r));
}

void
Machine::setSregI(SReg r, std::int64_t v)
{
    via_assert(r.id >= 0 && r.id < NUM_SREGS, "bad sreg ", r.id);
    _srf[std::size_t(r.id)] = std::uint64_t(v);
}

double
Machine::sregF(SReg r) const
{
    double out;
    std::uint64_t raw = sregRaw(r);
    std::memcpy(&out, &raw, sizeof(out));
    return out;
}

void
Machine::setSregF(SReg r, double v)
{
    std::uint64_t raw;
    std::memcpy(&raw, &v, sizeof(raw));
    via_assert(r.id >= 0 && r.id < NUM_SREGS, "bad sreg ", r.id);
    _srf[std::size_t(r.id)] = raw;
}

std::uint32_t
Machine::resolveVl(ElemType t, int vl) const
{
    std::uint32_t max = lanesFor(t);
    if (vl < 0)
        return max;
    via_assert(std::uint32_t(vl) <= max, "vl ", vl,
               " exceeds lanes for this element type (", max, ")");
    return std::uint32_t(vl);
}

std::int16_t
Machine::vid(VReg r)
{
    via_assert(r.id >= 0 && r.id < NUM_VREGS, "bad vreg ", r.id);
    return std::int16_t(NUM_SREGS + r.id);
}

std::int16_t
Machine::sid(SReg r)
{
    if (r.id < 0)
        return REG_NONE;
    via_assert(r.id < NUM_SREGS, "bad sreg ", r.id);
    return std::int16_t(r.id);
}

Inst
Machine::makeInst(Op op, int vl, std::int16_t dst, std::int16_t s0,
                  std::int16_t s1, std::int16_t s2)
{
    Inst inst;
    inst.op = op;
    inst.vl = std::uint8_t(vl < 0 ? 0 : vl);
    inst.dst = dst;
    inst.src = {s0, s1, s2};
    inst.seq = _seq++;
    return inst;
}

void
Machine::issue(const Inst &inst)
{
    if (_policy == nullptr || _policy->detailedNext(inst))
        _core->push(inst);
    else
        _func->execute(inst);
}

void
Machine::saveState(Serializer &ser) const
{
    // Event callbacks are std::functions and cannot be serialized;
    // the drivers checkpoint at kernel boundaries where the queue
    // has drained.
    if (!_events.empty())
        throw SerializeError("cannot checkpoint a machine with "
                             "pending events");
    if (_mem != &_store)
        throw SerializeError("multi-core machines cannot be "
                             "checkpointed (shared memory)");

    ser.tag("MACH");
    ser.put(_params.valueType);
    ser.put(_params.indexType);
    ser.put(_events.curTick());
    ser.put(_seq);
    for (int r = 0; r < NUM_VREGS; ++r)
        for (std::uint64_t raw : _vrf[r].raw)
            ser.put(raw);
    for (std::uint64_t s : _srf)
        ser.put(s);
    _store.saveState(ser);
    _memSys->saveState(ser);
    _sspm->saveState(ser);
    _fivu->saveState(ser);
    _core->saveState(ser);
    // Appended last; Via/Base backends write nothing, so their
    // checkpoints are byte-identical to the pre-backend format.
    _backend->saveState(ser);
}

void
Machine::loadState(Deserializer &des)
{
    if (!_events.empty())
        throw SerializeError("cannot restore over pending events");
    if (_mem != &_store)
        throw SerializeError("multi-core machines cannot be "
                             "restored (shared memory)");

    des.expectTag("MACH");
    if (des.get<ElemType>() != _params.valueType ||
        des.get<ElemType>() != _params.indexType)
        throw SerializeError("machine element type mismatch");
    Tick tick = des.get<Tick>();
    SeqNum seq = des.get<SeqNum>();
    for (int r = 0; r < NUM_VREGS; ++r)
        for (std::uint64_t &raw : _vrf[r].raw)
            raw = des.get<std::uint64_t>();
    for (std::uint64_t &s : _srf)
        s = des.get<std::uint64_t>();
    _store.loadState(des);
    _memSys->loadState(des);
    _sspm->loadState(des);
    _fivu->loadState(des);
    _core->loadState(des);
    _backend->loadState(des);
    _seq = seq;
    _events.resetTick(tick);
}

// ================= scalar ======================================

void
Machine::simm(SReg dst, std::int64_t value)
{
    setSregI(dst, value);
    issue(makeInst(Op::SAlu, 0, sid(dst), REG_NONE));
}

void
Machine::salu(SReg dst, std::int64_t result, SReg a, SReg b)
{
    setSregI(dst, result);
    issue(makeInst(Op::SAlu, 0, sid(dst), sid(a), sid(b)));
}

void
Machine::smul(SReg dst, std::int64_t result, SReg a, SReg b)
{
    setSregI(dst, result);
    issue(makeInst(Op::SMul, 0, sid(dst), sid(a), sid(b)));
}

void
Machine::sfadd(SReg dst, SReg a, SReg b)
{
    setSregF(dst, sregF(a) + sregF(b));
    issue(makeInst(Op::SFAdd, 0, sid(dst), sid(a), sid(b)));
}

void
Machine::sfmul(SReg dst, SReg a, SReg b)
{
    setSregF(dst, sregF(a) * sregF(b));
    issue(makeInst(Op::SFMul, 0, sid(dst), sid(a), sid(b)));
}

void
Machine::sbranch(SReg cond)
{
    issue(makeInst(Op::SBranch, 0, REG_NONE, sid(cond)));
}

void
Machine::sbranchData(SReg cond, std::uint64_t site, bool taken)
{
    Inst inst = makeInst(Op::SBranch, 0, REG_NONE, sid(cond));
    inst.isDataBranch = true;
    inst.branchSite = std::uint32_t(site);
    inst.branchTaken = taken;
    issue(inst);
}

void
Machine::sload(SReg dst, Addr addr, std::uint32_t bytes,
               SReg addr_dep)
{
    via_assert(bytes >= 1 && bytes <= 8, "bad scalar load size");
    std::uint64_t raw = 0;
    _mem->read(addr, &raw, bytes);
    if (bytes == 4) {
        // Sign-extend 32-bit loads: indices are int32.
        raw = std::uint64_t(std::int64_t(std::int32_t(raw)));
    }
    via_assert(dst.id >= 0 && dst.id < NUM_SREGS, "bad sreg");
    _srf[std::size_t(dst.id)] = raw;

    Inst inst = makeInst(Op::SLoad, 0, sid(dst), sid(addr_dep));
    inst.addAccess(addr, bytes, false);
    issue(inst);
}

void
Machine::sstore(Addr addr, SReg src, std::uint32_t bytes,
                SReg addr_dep)
{
    via_assert(bytes >= 1 && bytes <= 8, "bad scalar store size");
    std::uint64_t raw = sregRaw(src);
    _mem->write(addr, &raw, bytes);

    Inst inst = makeInst(Op::SStore, 0, REG_NONE, sid(src),
                         sid(addr_dep));
    inst.addAccess(addr, bytes, true);
    issue(inst);
}

void
Machine::sloadF(SReg dst, Addr addr, ElemType t, SReg addr_dep)
{
    double v;
    if (t == ElemType::F64) {
        v = _mem->load<double>(addr);
    } else {
        via_assert(t == ElemType::F32, "sloadF needs an FP type");
        v = double(_mem->load<float>(addr));
    }
    setSregF(dst, v);

    Inst inst = makeInst(Op::SLoad, 0, sid(dst), sid(addr_dep));
    inst.addAccess(addr, elemBytes(t), false);
    issue(inst);
}

void
Machine::sstoreF(Addr addr, SReg src, ElemType t, SReg addr_dep)
{
    double v = sregF(src);
    if (t == ElemType::F64) {
        _mem->store<double>(addr, v);
    } else {
        via_assert(t == ElemType::F32, "sstoreF needs an FP type");
        _mem->store<float>(addr, float(v));
    }

    Inst inst = makeInst(Op::SStore, 0, REG_NONE, sid(src),
                         sid(addr_dep));
    inst.addAccess(addr, elemBytes(t), true);
    issue(inst);
}

// ================= vector memory ================================

void
Machine::vload(VReg dst, Addr addr, ElemType t, int vl, SReg addr_dep)
{
    std::uint32_t n = resolveVl(t, vl);
    std::uint32_t eb = elemBytes(t);
    VecValue &d = _vrf[dst.id];
    for (std::uint32_t l = 0; l < n; ++l) {
        std::uint64_t raw = 0;
        _mem->read(addr + Addr(l) * eb, &raw, eb);
        if (t == ElemType::I32)
            raw = std::uint64_t(std::int64_t(std::int32_t(raw)));
        d.raw[l] = raw;
    }
    for (std::uint32_t l = n; l < MAX_LANES; ++l)
        d.raw[l] = 0;

    Inst inst = makeInst(Op::VLoad, int(n), vid(dst), sid(addr_dep));
    inst.addAccess(addr, n * eb, false);
    issue(inst);
}

void
Machine::vstore(Addr addr, VReg src, ElemType t, int vl,
                SReg addr_dep)
{
    std::uint32_t n = resolveVl(t, vl);
    std::uint32_t eb = elemBytes(t);
    const VecValue &s = _vrf[src.id];
    for (std::uint32_t l = 0; l < n; ++l)
        _mem->write(addr + Addr(l) * eb, &s.raw[l], eb);

    Inst inst = makeInst(Op::VStore, int(n), REG_NONE, vid(src),
                         sid(addr_dep));
    inst.addAccess(addr, n * eb, true);
    issue(inst);
}

void
Machine::vgather(VReg dst, Addr base, VReg idx, ElemType t, int vl)
{
    std::uint32_t n = resolveVl(t, vl);
    std::uint32_t eb = elemBytes(t);
    const VecValue &ix = _vrf[idx.id];
    VecValue &d = _vrf[dst.id];

    Inst inst = makeInst(Op::VGather, int(n), vid(dst), vid(idx));
    for (std::uint32_t l = 0; l < n; ++l) {
        Addr a = base + Addr(ix.i(l)) * eb;
        std::uint64_t raw = 0;
        _mem->read(a, &raw, eb);
        if (t == ElemType::I32)
            raw = std::uint64_t(std::int64_t(std::int32_t(raw)));
        d.raw[l] = raw;
        inst.addAccess(a, eb, false);
    }
    for (std::uint32_t l = n; l < MAX_LANES; ++l)
        d.raw[l] = 0;
    issue(inst);
}

void
Machine::vscatter(Addr base, VReg idx, VReg src, ElemType t, int vl)
{
    std::uint32_t n = resolveVl(t, vl);
    std::uint32_t eb = elemBytes(t);
    const VecValue &ix = _vrf[idx.id];
    const VecValue &s = _vrf[src.id];

    Inst inst = makeInst(Op::VScatter, int(n), REG_NONE, vid(idx),
                         vid(src));
    for (std::uint32_t l = 0; l < n; ++l) {
        Addr a = base + Addr(ix.i(l)) * eb;
        _mem->write(a, &s.raw[l], eb);
        inst.addAccess(a, eb, true);
    }
    issue(inst);
}

// ================= vector arithmetic ============================

void
Machine::vbroadcastF(VReg dst, double v)
{
    ElemType t = valueType();
    VecValue &d = _vrf[dst.id];
    for (std::uint32_t l = 0; l < lanesFor(t); ++l)
        d.setFAs(t, l, v);
    issue(makeInst(Op::VBroadcastF, int(lanesFor(t)), vid(dst),
                         REG_NONE));
}

void
Machine::vbroadcastI(VReg dst, std::int64_t v)
{
    VecValue &d = _vrf[dst.id];
    for (std::uint32_t l = 0; l < MAX_LANES; ++l)
        d.setI(l, v);
    issue(makeInst(Op::VBroadcastI, int(MAX_LANES), vid(dst),
                         REG_NONE));
}

void
Machine::viotaI(VReg dst, std::int64_t base, std::int64_t step)
{
    VecValue &d = _vrf[dst.id];
    for (std::uint32_t l = 0; l < MAX_LANES; ++l)
        d.setI(l, base + std::int64_t(l) * step);
    issue(makeInst(Op::VIota, int(MAX_LANES), vid(dst),
                         REG_NONE));
}

void
Machine::vpatternI(VReg dst, const std::vector<std::int64_t> &lanes)
{
    via_assert(lanes.size() <= MAX_LANES, "pattern too wide");
    VecValue &d = _vrf[dst.id];
    for (std::uint32_t l = 0; l < MAX_LANES; ++l)
        d.setI(l, l < lanes.size() ? lanes[l] : 0);
    issue(makeInst(Op::VIota, int(MAX_LANES), vid(dst),
                         REG_NONE));
}

void
Machine::vmove(VReg dst, VReg src)
{
    _vrf[dst.id] = _vrf[src.id];
    issue(makeInst(Op::VMove, int(vl()), vid(dst), vid(src)));
}

double
Machine::combineF(ArithKind k, double a, double b) const
{
    switch (k) {
      case ArithKind::Add:
        return a + b;
      case ArithKind::Sub:
        return a - b;
      case ArithKind::Mul:
        return a * b;
    }
    via_panic("bad arith kind");
}

void
Machine::vaddF(VReg dst, VReg a, VReg b, int vl_)
{
    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, vl_);
    VecValue &d = _vrf[dst.id];
    const VecValue &x = _vrf[a.id];
    const VecValue &y = _vrf[b.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.setFAs(t, l, x.fAs(t, l) + y.fAs(t, l));
    issue(makeInst(Op::VAddF, int(n), vid(dst), vid(a),
                         vid(b)));
}

void
Machine::vsubF(VReg dst, VReg a, VReg b, int vl_)
{
    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, vl_);
    VecValue &d = _vrf[dst.id];
    const VecValue &x = _vrf[a.id];
    const VecValue &y = _vrf[b.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.setFAs(t, l, x.fAs(t, l) - y.fAs(t, l));
    issue(makeInst(Op::VSubF, int(n), vid(dst), vid(a),
                         vid(b)));
}

void
Machine::vmulF(VReg dst, VReg a, VReg b, int vl_)
{
    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, vl_);
    VecValue &d = _vrf[dst.id];
    const VecValue &x = _vrf[a.id];
    const VecValue &y = _vrf[b.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.setFAs(t, l, x.fAs(t, l) * y.fAs(t, l));
    issue(makeInst(Op::VMulF, int(n), vid(dst), vid(a),
                         vid(b)));
}

void
Machine::vfmaF(VReg dst, VReg a, VReg b, VReg c, int vl_)
{
    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, vl_);
    VecValue &d = _vrf[dst.id];
    const VecValue &x = _vrf[a.id];
    const VecValue &y = _vrf[b.id];
    const VecValue &z = _vrf[c.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.setFAs(t, l, x.fAs(t, l) * y.fAs(t, l) + z.fAs(t, l));
    issue(makeInst(Op::VFmaF, int(n), vid(dst), vid(a), vid(b),
                         vid(c)));
}

void
Machine::vaddI(VReg dst, VReg a, VReg b, int vl_)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    VecValue &d = _vrf[dst.id];
    const VecValue &x = _vrf[a.id];
    const VecValue &y = _vrf[b.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.setI(l, x.i(l) + y.i(l));
    issue(makeInst(Op::VAddI, int(n), vid(dst), vid(a),
                         vid(b)));
}

void
Machine::vsubI(VReg dst, VReg a, VReg b, int vl_)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    VecValue &d = _vrf[dst.id];
    const VecValue &x = _vrf[a.id];
    const VecValue &y = _vrf[b.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.setI(l, x.i(l) - y.i(l));
    issue(makeInst(Op::VAddI, int(n), vid(dst), vid(a),
                         vid(b)));
}

void
Machine::vmulI(VReg dst, VReg a, VReg b, int vl_)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    VecValue &d = _vrf[dst.id];
    const VecValue &x = _vrf[a.id];
    const VecValue &y = _vrf[b.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.setI(l, x.i(l) * y.i(l));
    issue(makeInst(Op::VMulI, int(n), vid(dst), vid(a),
                         vid(b)));
}

void
Machine::vandI(VReg dst, VReg src, std::int64_t imm, int vl_)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    VecValue &d = _vrf[dst.id];
    const VecValue &x = _vrf[src.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.setI(l, x.i(l) & imm);
    issue(makeInst(Op::VAndI, int(n), vid(dst), vid(src)));
}

void
Machine::vshrI(VReg dst, VReg src, std::uint32_t shift, int vl_)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    VecValue &d = _vrf[dst.id];
    const VecValue &x = _vrf[src.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.setI(l, x.i(l) >> shift);
    issue(makeInst(Op::VShrI, int(n), vid(dst), vid(src)));
}

void
Machine::vcmpEqI(VReg dst, VReg a, VReg b, int vl_)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    VecValue &d = _vrf[dst.id];
    const VecValue &x = _vrf[a.id];
    const VecValue &y = _vrf[b.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.setI(l, x.i(l) == y.i(l) ? 1 : 0);
    issue(makeInst(Op::VCmpEqI, int(n), vid(dst), vid(a),
                         vid(b)));
}

void
Machine::vcmpLtI(VReg dst, VReg a, VReg b, int vl_)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    VecValue &d = _vrf[dst.id];
    const VecValue &x = _vrf[a.id];
    const VecValue &y = _vrf[b.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.setI(l, x.i(l) < y.i(l) ? 1 : 0);
    issue(makeInst(Op::VCmpLtI, int(n), vid(dst), vid(a),
                         vid(b)));
}

void
Machine::vredsumF(SReg dst, VReg src, int vl_)
{
    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, vl_);
    const VecValue &s = _vrf[src.id];
    double sum = 0.0;
    for (std::uint32_t l = 0; l < n; ++l)
        sum += s.fAs(t, l);
    setSregF(dst, sum);
    issue(makeInst(Op::VRedSumF, int(n), sid(dst), vid(src)));
}

void
Machine::vcompress(VReg dst, VReg src, VReg mask, int vl_)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    const VecValue s = _vrf[src.id]; // copy: dst may alias src
    const VecValue m = _vrf[mask.id];
    VecValue &d = _vrf[dst.id];
    std::uint32_t k = 0;
    for (std::uint32_t l = 0; l < n; ++l)
        if (m.i(l) != 0)
            d.raw[k++] = s.raw[l];
    for (; k < MAX_LANES; ++k)
        d.raw[k] = 0;
    issue(makeInst(Op::VCompress, int(n), vid(dst), vid(src),
                         vid(mask)));
}

void
Machine::vexpand(VReg dst, VReg src, VReg mask, int vl_)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    const VecValue s = _vrf[src.id];
    const VecValue m = _vrf[mask.id];
    VecValue &d = _vrf[dst.id];
    std::uint32_t k = 0;
    for (std::uint32_t l = 0; l < n; ++l)
        d.raw[l] = (m.i(l) != 0) ? s.raw[k++] : 0;
    for (std::uint32_t l = n; l < MAX_LANES; ++l)
        d.raw[l] = 0;
    issue(makeInst(Op::VExpand, int(n), vid(dst), vid(src),
                         vid(mask)));
}

void
Machine::vexpandMask(VReg dst, VReg src, std::uint32_t mask, int vl_,
                     SReg mask_dep)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    const VecValue s = _vrf[src.id];
    VecValue &d = _vrf[dst.id];
    std::uint32_t k = 0;
    for (std::uint32_t l = 0; l < n; ++l)
        d.raw[l] = ((mask >> l) & 1u) ? s.raw[k++] : 0;
    for (std::uint32_t l = n; l < MAX_LANES; ++l)
        d.raw[l] = 0;
    issue(makeInst(Op::VExpand, int(n), vid(dst), vid(src),
                         sid(mask_dep)));
}

void
Machine::vpermute(VReg dst, VReg src, VReg perm, int vl_)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    const VecValue s = _vrf[src.id];
    const VecValue p = _vrf[perm.id];
    VecValue &d = _vrf[dst.id];
    for (std::uint32_t l = 0; l < n; ++l) {
        auto sel = std::uint64_t(p.i(l)) % n;
        d.raw[l] = s.raw[sel];
    }
    issue(makeInst(Op::VPermute, int(n), vid(dst), vid(src),
                         vid(perm)));
}

void
Machine::vconflict(VReg dst, VReg idx, int vl_)
{
    std::uint32_t n = vl_ < 0 ? MAX_LANES : std::uint32_t(vl_);
    const VecValue ix = _vrf[idx.id];
    VecValue &d = _vrf[dst.id];
    for (std::uint32_t l = 0; l < n; ++l) {
        std::int64_t mask = 0;
        for (std::uint32_t j = 0; j < l; ++j)
            if (ix.i(j) == ix.i(l))
                mask |= std::int64_t(1) << j;
        d.setI(l, mask);
    }
    for (std::uint32_t l = n; l < MAX_LANES; ++l)
        d.raw[l] = 0;
    issue(makeInst(Op::VConflict, int(n), vid(dst), vid(idx)));
}

void
Machine::vmergeIdx(VReg dst, VReg src, VReg idx, int vl_)
{
    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, vl_);
    const VecValue s = _vrf[src.id];
    const VecValue ix = _vrf[idx.id];
    VecValue &d = _vrf[dst.id];
    for (std::uint32_t l = 0; l < n; ++l) {
        double sum = 0.0;
        for (std::uint32_t j = 0; j < n; ++j)
            if (ix.i(j) == ix.i(l))
                sum += s.fAs(t, j);
        d.setFAs(t, l, sum);
    }
    for (std::uint32_t l = n; l < MAX_LANES; ++l)
        d.raw[l] = 0;
    issue(makeInst(Op::VMergeIdx, int(n), vid(dst), vid(src),
                         vid(idx)));
}

// ================= VIA ==========================================

void
Machine::vidxClear()
{
    _sspm->clearAll();
    issue(makeInst(Op::VidxClear, 0, REG_NONE, REG_NONE));
}

void
Machine::vidxClearSegment(std::uint64_t lo, std::uint64_t hi)
{
    _sspm->clearSegment(lo, hi);
    issue(makeInst(Op::VidxClear, 0, REG_NONE, REG_NONE));
}

void
Machine::vidxCount(SReg dst)
{
    setSregI(dst, _sspm->count());
    issue(makeInst(Op::VidxCount, 0, sid(dst), REG_NONE));
}

void
Machine::vidxLoadD(VReg data, VReg idx, int vl_)
{
    std::uint32_t n = resolveVl(valueType(), vl_);
    const VecValue &d = _vrf[data.id];
    const VecValue &ix = _vrf[idx.id];
    for (std::uint32_t l = 0; l < n; ++l)
        _sspm->writeDirect(std::uint64_t(ix.i(l)), d.raw[l]);

    Inst inst = makeInst(Op::VidxLoadD, int(n), REG_NONE, vid(data),
                         vid(idx));
    inst.sspmWrites = std::uint16_t(n);
    issue(inst);
}

void
Machine::vidxLoadC(VReg data, VReg keys, int vl_)
{
    std::uint32_t n = resolveVl(valueType(), vl_);
    const VecValue &d = _vrf[data.id];
    const VecValue &k = _vrf[keys.id];
    for (std::uint32_t l = 0; l < n; ++l) {
        auto slot = _sspm->camWrite(k.i(l), d.raw[l]);
        if (slot == IndexTable::NO_SLOT)
            via_fatal("SSPM index table overflow on vidx.load.c; "
                      "the kernel must tile rows to the CAM size (",
                      _sspm->config().camEntries(), " entries)");
    }

    Inst inst = makeInst(Op::VidxLoadC, int(n), REG_NONE, vid(data),
                         vid(keys));
    inst.sspmWrites = std::uint16_t(n);
    inst.camSearches = std::uint16_t(n);
    issue(inst);
}

void
Machine::vidxMov(VReg dst, VReg idx, int vl_)
{
    std::uint32_t n = resolveVl(valueType(), vl_);
    const VecValue ix = _vrf[idx.id];
    VecValue &d = _vrf[dst.id];
    for (std::uint32_t l = 0; l < n; ++l)
        d.raw[l] = _sspm->readDirect(std::uint64_t(ix.i(l)));
    for (std::uint32_t l = n; l < MAX_LANES; ++l)
        d.raw[l] = 0;

    Inst inst = makeInst(Op::VidxMov, int(n), vid(dst), vid(idx));
    inst.sspmReads = std::uint16_t(n);
    issue(inst);
}

void
Machine::vidxKeys(VReg dst, std::uint32_t slot_offset, int vl_)
{
    std::uint32_t n = resolveVl(indexType(), vl_);
    VecValue &d = _vrf[dst.id];
    std::uint32_t count = _sspm->count();
    for (std::uint32_t l = 0; l < n; ++l) {
        std::uint32_t slot = slot_offset + l;
        d.setI(l, slot < count ? _sspm->keyAt(slot) : 0);
    }
    for (std::uint32_t l = n; l < MAX_LANES; ++l)
        d.raw[l] = 0;

    Inst inst = makeInst(Op::VidxKeys, int(n), vid(dst), REG_NONE);
    inst.sspmReads = std::uint16_t(n);
    issue(inst);
}

void
Machine::vidxVals(VReg dst, std::uint32_t slot_offset, int vl_)
{
    std::uint32_t n = resolveVl(valueType(), vl_);
    VecValue &d = _vrf[dst.id];
    std::uint32_t count = _sspm->count();
    for (std::uint32_t l = 0; l < n; ++l) {
        std::uint32_t slot = slot_offset + l;
        d.raw[l] = slot < count ? _sspm->valueAt(slot) : 0;
    }
    for (std::uint32_t l = n; l < MAX_LANES; ++l)
        d.raw[l] = 0;

    Inst inst = makeInst(Op::VidxVals, int(n), vid(dst), REG_NONE);
    inst.sspmReads = std::uint16_t(n);
    issue(inst);
}

void
Machine::vidxArithD(Op op, ArithKind k, VReg data, VReg idx,
                    ViaOut out, VReg dst, std::int64_t offset,
                    int vl_)
{
    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, vl_);
    const VecValue d = _vrf[data.id];
    const VecValue ix = _vrf[idx.id];

    Inst inst = makeInst(op, int(n),
                         out == ViaOut::Vrf ? vid(dst) : REG_NONE,
                         vid(data), vid(idx));
    inst.sspmReads = std::uint16_t(n);

    if (out == ViaOut::Vrf) {
        VecValue &o = _vrf[dst.id];
        for (std::uint32_t l = 0; l < n; ++l) {
            double cur = rawToF(t, _sspm->readDirect(
                                       std::uint64_t(ix.i(l))));
            o.setFAs(t, l, combineF(k, cur, d.fAs(t, l)));
        }
        for (std::uint32_t l = n; l < MAX_LANES; ++l)
            o.raw[l] = 0;
    } else {
        // Lanes are processed in order; software merges duplicate
        // indices beforehand (vconflict), as in the paper's
        // histogram kernel.
        for (std::uint32_t l = 0; l < n; ++l) {
            auto src_idx = std::uint64_t(ix.i(l));
            double cur = rawToF(t, _sspm->readDirect(src_idx));
            double res = combineF(k, cur, d.fAs(t, l));
            _sspm->writeDirect(std::uint64_t(ix.i(l) + offset),
                               fToRaw(t, res));
        }
        inst.sspmWrites = std::uint16_t(n);
    }
    issue(inst);
}

void
Machine::vidxAddD(VReg data, VReg idx, ViaOut out, VReg dst,
                  std::int64_t offset, int vl_)
{
    vidxArithD(Op::VidxAddD, ArithKind::Add, data, idx, out, dst,
               offset, vl_);
}

void
Machine::vidxSubD(VReg data, VReg idx, ViaOut out, VReg dst,
                  std::int64_t offset, int vl_)
{
    vidxArithD(Op::VidxSubD, ArithKind::Sub, data, idx, out, dst,
               offset, vl_);
}

void
Machine::vidxMulD(VReg data, VReg idx, ViaOut out, VReg dst,
                  std::int64_t offset, int vl_)
{
    vidxArithD(Op::VidxMulD, ArithKind::Mul, data, idx, out, dst,
               offset, vl_);
}

void
Machine::vidxArithC(Op op, ArithKind k, VReg data, VReg keys,
                    ViaOut out, VReg dst, int vl_)
{
    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, vl_);
    const VecValue d = _vrf[data.id];
    const VecValue ks = _vrf[keys.id];

    Inst inst = makeInst(op, int(n),
                         out == ViaOut::Vrf ? vid(dst) : REG_NONE,
                         vid(data), vid(keys));
    inst.sspmReads = std::uint16_t(n);
    inst.camSearches = std::uint16_t(n);

    if (out == ViaOut::Vrf) {
        VecValue &o = _vrf[dst.id];
        for (std::uint32_t l = 0; l < n; ++l) {
            bool found = false;
            std::uint64_t raw = _sspm->camRead(ks.i(l), found);
            double res = found
                             ? combineF(k, rawToF(t, raw),
                                        d.fAs(t, l))
                             : 0.0;
            o.setFAs(t, l, res);
        }
        for (std::uint32_t l = n; l < MAX_LANES; ++l)
            o.raw[l] = 0;
    } else {
        // Union read-modify-write (SpMA): matches combine in place,
        // misses insert the incoming value.
        for (std::uint32_t l = 0; l < n; ++l) {
            double incoming = d.fAs(t, l);
            auto combine = [&](std::uint64_t cur_raw,
                               std::uint64_t new_raw) {
                double cur = rawToF(t, cur_raw);
                double inc = rawToF(t, new_raw);
                return fToRaw(t, combineF(k, cur, inc));
            };
            auto slot = _sspm->camUpdate(ks.i(l),
                                         fToRaw(t, incoming),
                                         combine);
            if (slot == IndexTable::NO_SLOT)
                via_fatal("SSPM index table overflow on ",
                          mnemonic(op), "; tile rows to ",
                          _sspm->config().camEntries(), " entries");
        }
        inst.sspmWrites = std::uint16_t(n);
    }
    issue(inst);
}

void
Machine::vidxAddC(VReg data, VReg keys, ViaOut out, VReg dst, int vl_)
{
    vidxArithC(Op::VidxAddC, ArithKind::Add, data, keys, out, dst,
               vl_);
}

void
Machine::vidxSubC(VReg data, VReg keys, ViaOut out, VReg dst, int vl_)
{
    vidxArithC(Op::VidxSubC, ArithKind::Sub, data, keys, out, dst,
               vl_);
}

void
Machine::vidxMulC(VReg data, VReg keys, ViaOut out, VReg dst, int vl_)
{
    vidxArithC(Op::VidxMulC, ArithKind::Mul, data, keys, out, dst,
               vl_);
}

void
Machine::vidxBlkMulD(VReg data, VReg idx, std::uint32_t idx_offset,
                     std::int64_t offset, int vl_)
{
    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, vl_);
    via_assert(idx_offset > 0 && idx_offset < 32,
               "bad in-block index split ", idx_offset);
    const VecValue d = _vrf[data.id];
    const VecValue ix = _vrf[idx.id];
    const std::int64_t col_mask = (std::int64_t(1) << idx_offset) - 1;

    for (std::uint32_t l = 0; l < n; ++l) {
        std::int64_t packed = ix.i(l);
        auto col = std::uint64_t(packed & col_mask);
        auto row = std::uint64_t(packed >> idx_offset);
        double x = rawToF(t, _sspm->readDirect(col));
        double acc = rawToF(t, _sspm->readDirect(row + offset));
        acc += x * d.fAs(t, l);
        _sspm->writeDirect(row + std::uint64_t(offset),
                           fToRaw(t, acc));
    }

    Inst inst = makeInst(Op::VidxBlkMulD, int(n), REG_NONE,
                         vid(data), vid(idx));
    inst.sspmReads = std::uint16_t(2 * n);
    inst.sspmWrites = std::uint16_t(n);
    issue(inst);
}

// ================= SSR ==========================================

SsrBackend &
Machine::ssr()
{
    if (_backend->kind() != BackendKind::Ssr)
        via_fatal("SSR emit on a backend=",
                  backendName(_backend->kind()), " machine");
    return static_cast<SsrBackend &>(*_backend);
}

void
Machine::ssrBindAffine(std::uint32_t s, Addr base, ElemType t)
{
    SsrBackend &b = ssr();
    SsrBackend::Stream &st = b.stream(s);
    st.kind = SsrBackend::Stream::Kind::Affine;
    st.base = base;
    st.dataType = t;
    st.cursor = 0;
    ++b.archStats().binds;
    issue(makeInst(Op::SsrCfg, 0, REG_NONE, REG_NONE));
}

void
Machine::ssrBindIndirect(std::uint32_t s, Addr idx_base,
                         ElemType idx_t, Addr data_base,
                         ElemType data_t)
{
    SsrBackend &b = ssr();
    SsrBackend::Stream &st = b.stream(s);
    st.kind = SsrBackend::Stream::Kind::Indirect;
    st.base = data_base;
    st.dataType = data_t;
    st.idxBase = idx_base;
    st.idxType = idx_t;
    st.cursor = 0;
    ++b.archStats().binds;
    issue(makeInst(Op::SsrCfg, 0, REG_NONE, REG_NONE));
}

void
Machine::ssrPopV(VReg dst, std::uint32_t s, int vl_, int advance)
{
    SsrBackend &b = ssr();
    SsrBackend::Stream &st = b.stream(s);
    via_assert(st.kind != SsrBackend::Stream::Kind::None,
               "ssr.popv from unbound stream ", s);
    ElemType t = st.dataType;
    std::uint32_t n = resolveVl(t, vl_);
    std::uint32_t eb = elemBytes(t);
    VecValue &d = _vrf[dst.id];

    Inst inst = makeInst(Op::SsrPopV, int(n), vid(dst), REG_NONE);
    if (st.kind == SsrBackend::Stream::Kind::Affine) {
        Addr a = st.base + Addr(st.cursor) * eb;
        for (std::uint32_t l = 0; l < n; ++l) {
            std::uint64_t raw = 0;
            _mem->read(a + Addr(l) * eb, &raw, eb);
            if (t == ElemType::I32)
                raw = std::uint64_t(std::int64_t(std::int32_t(raw)));
            d.raw[l] = raw;
        }
        inst.addAccess(a, n * eb, false);
    } else {
        // The streamer fetches the next n indices, then their data.
        std::uint32_t ib = elemBytes(st.idxType);
        Addr ia = st.idxBase + Addr(st.cursor) * ib;
        inst.addAccess(ia, n * ib, false);
        for (std::uint32_t l = 0; l < n; ++l) {
            std::uint64_t iraw = 0;
            _mem->read(ia + Addr(l) * ib, &iraw, ib);
            auto idx = std::int64_t(std::int32_t(iraw));
            Addr da = st.base + Addr(idx) * eb;
            std::uint64_t raw = 0;
            _mem->read(da, &raw, eb);
            if (t == ElemType::I32)
                raw = std::uint64_t(std::int64_t(std::int32_t(raw)));
            d.raw[l] = raw;
            inst.addAccess(da, eb, false);
        }
    }
    for (std::uint32_t l = n; l < MAX_LANES; ++l)
        d.raw[l] = 0;

    st.cursor += advance < 0 ? n : std::uint32_t(advance);
    ++b.archStats().pops;
    b.archStats().elements += n;
    issue(inst);
}

void
Machine::ssrPopS(SReg dst, std::uint32_t s)
{
    SsrBackend &b = ssr();
    SsrBackend::Stream &st = b.stream(s);
    via_assert(st.kind != SsrBackend::Stream::Kind::None,
               "ssr.pops from unbound stream ", s);
    ElemType t = st.dataType;
    std::uint32_t eb = elemBytes(t);

    Inst inst = makeInst(Op::SsrPopS, 0, sid(dst), REG_NONE);
    Addr da;
    if (st.kind == SsrBackend::Stream::Kind::Affine) {
        da = st.base + Addr(st.cursor) * eb;
    } else {
        std::uint32_t ib = elemBytes(st.idxType);
        Addr ia = st.idxBase + Addr(st.cursor) * ib;
        std::uint64_t iraw = 0;
        _mem->read(ia, &iraw, ib);
        da = st.base + Addr(std::int64_t(std::int32_t(iraw))) * eb;
        inst.addAccess(ia, ib, false);
    }
    std::uint64_t raw = 0;
    _mem->read(da, &raw, eb);
    inst.addAccess(da, eb, false);
    if (t == ElemType::F32 || t == ElemType::F64) {
        setSregF(dst, rawToF(t, raw));
    } else {
        if (eb == 4)
            raw = std::uint64_t(std::int64_t(std::int32_t(raw)));
        setSregI(dst, std::int64_t(raw));
    }

    st.cursor += 1;
    ++b.archStats().pops;
    ++b.archStats().elements;
    issue(inst);
}

void
Machine::ssrFma(VReg acc, std::uint32_t val_s, std::uint32_t idx_s,
                int vl_, int advance)
{
    SsrBackend &b = ssr();
    SsrBackend::Stream &vs = b.stream(val_s);
    SsrBackend::Stream &is = b.stream(idx_s);
    via_assert(vs.kind == SsrBackend::Stream::Kind::Affine,
               "ssr.fma value stream must be affine");
    via_assert(is.kind == SsrBackend::Stream::Kind::Indirect,
               "ssr.fma gather stream must be indirect");

    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, vl_);
    std::uint32_t veb = elemBytes(vs.dataType);
    std::uint32_t deb = elemBytes(is.dataType);
    std::uint32_t ib = elemBytes(is.idxType);
    VecValue &a = _vrf[acc.id];

    // acc is both read and written: name it as a source so the
    // scheduler sees the accumulation chain.
    Inst inst = makeInst(Op::SsrFma, int(n), vid(acc), vid(acc));
    Addr va = vs.base + Addr(vs.cursor) * veb;
    inst.addAccess(va, n * veb, false);
    Addr ia = is.idxBase + Addr(is.cursor) * ib;
    inst.addAccess(ia, n * ib, false);

    for (std::uint32_t l = 0; l < n; ++l) {
        std::uint64_t vraw = 0;
        _mem->read(va + Addr(l) * veb, &vraw, veb);
        std::uint64_t iraw = 0;
        _mem->read(ia + Addr(l) * ib, &iraw, ib);
        Addr da = is.base +
                  Addr(std::int64_t(std::int32_t(iraw))) * deb;
        std::uint64_t graw = 0;
        _mem->read(da, &graw, deb);
        inst.addAccess(da, deb, false);

        double prod = rawToF(vs.dataType, vraw) *
                      rawToF(is.dataType, graw);
        a.setFAs(t, l, a.fAs(t, l) + prod);
    }

    std::uint32_t adv = advance < 0 ? n : std::uint32_t(advance);
    vs.cursor += adv;
    is.cursor += adv;
    ++b.archStats().pops;
    b.archStats().elements += 2 * std::uint64_t(n);
    issue(inst);
}

// ================= IndexMAC =====================================

IndexMacBackend &
Machine::imac()
{
    if (_backend->kind() != BackendKind::IndexMac)
        via_fatal("IndexMAC emit on a backend=",
                  backendName(_backend->kind()), " machine");
    return static_cast<IndexMacBackend &>(*_backend);
}

void
Machine::vimacF(VReg acc, Addr base, VReg idx, VReg val, int n_)
{
    IndexMacBackend &b = imac();
    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, n_);
    std::uint32_t eb = elemBytes(t);
    const VecValue ix = _vrf[idx.id];
    const VecValue v = _vrf[val.id];
    VecValue &a = _vrf[acc.id];

    Inst inst = makeInst(Op::VImacF, int(n), vid(acc), vid(idx),
                         vid(val), vid(acc));
    for (std::uint32_t l = 0; l < n; ++l) {
        Addr da = base + Addr(ix.i(l)) * eb;
        std::uint64_t raw = 0;
        _mem->read(da, &raw, eb);
        a.setFAs(t, l,
                 a.fAs(t, l) + v.fAs(t, l) * rawToF(t, raw));
        // A lane whose line sits in the row buffer is served by the
        // MAC unit's buffered copy — no cache access.
        if (!b.touchLine(da))
            inst.addAccess(da, eb, false);
    }
    ++b.archStats().ops;
    issue(inst);
}

void
Machine::vimacStF(Addr base, VReg idx, VReg val, int n_)
{
    IndexMacBackend &b = imac();
    ElemType t = valueType();
    std::uint32_t n = resolveVl(t, n_);
    std::uint32_t eb = elemBytes(t);
    const VecValue ix = _vrf[idx.id];
    const VecValue v = _vrf[val.id];

    Inst inst = makeInst(Op::VImacStF, int(n), REG_NONE, vid(idx),
                         vid(val));
    // Lanes accumulate in order inside the MAC unit, so duplicate
    // indices combine correctly without software conflict handling.
    for (std::uint32_t l = 0; l < n; ++l) {
        Addr da = base + Addr(ix.i(l)) * eb;
        std::uint64_t raw = 0;
        _mem->read(da, &raw, eb);
        std::uint64_t res =
            fToRaw(t, rawToF(t, raw) + v.fAs(t, l));
        _mem->write(da, &res, eb);
        if (!b.touchLine(da))
            inst.addAccess(da, eb, true);
    }
    ++b.archStats().ops;
    issue(inst);
}

} // namespace via
