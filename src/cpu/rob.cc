#include "cpu/rob.hh"

#include <algorithm>

#include "simcore/log.hh"
#include "simcore/serialize.hh"

namespace via
{

RobModel::RobModel(std::uint32_t rob_size, std::uint32_t commit_width)
    : _ring(std::max<std::uint32_t>(rob_size, 1), 0),
      _commitPorts(commit_width)
{
}

Tick
RobModel::dispatchReady() const
{
    // The slot the next instruction will occupy holds the commit
    // tick of the instruction robSize older (0 if none yet).
    return _ring[_count % _ring.size()];
}

Tick
RobModel::commit(Tick complete)
{
    // In-order commit: cannot retire before the previous
    // instruction's commit cycle; at most commitWidth per cycle.
    Tick at = _commitPorts.acquire(std::max(complete, _lastCommit));
    _lastCommit = at;
    _ring[_count % _ring.size()] = at;
    ++_count;
    return at;
}

void
RobModel::resetTiming()
{
    std::fill(_ring.begin(), _ring.end(), Tick(0));
    _commitPorts.resetTiming();
    _lastCommit = 0;
    _count = 0;
}

void
RobModel::saveState(Serializer &ser) const
{
    ser.tag("ROBM");
    ser.putVec(_ring);
    _commitPorts.saveState(ser);
    ser.put(_lastCommit);
    ser.put(_count);
}

void
RobModel::loadState(Deserializer &des)
{
    des.expectTag("ROBM");
    auto ring = des.getVec<Tick>();
    if (ring.size() != _ring.size())
        throw SerializeError("ROB size mismatch");
    _ring = std::move(ring);
    _commitPorts.loadState(des);
    _lastCommit = des.get<Tick>();
    _count = des.get<SeqNum>();
}

} // namespace via
