/**
 * @file
 * Parameters of the simulated out-of-order core (paper Table I).
 *
 * The defaults model a Haswell-class x86 core at 2 GHz with AVX2-like
 * 256-bit vectors, which is the machine class the paper simulates in
 * gem5 and compares against for area.
 */

#ifndef VIA_CPU_CORE_PARAMS_HH
#define VIA_CPU_CORE_PARAMS_HH

#include <cstdint>
#include <ostream>

#include "cpu/backend_params.hh"
#include "isa/inst.hh"
#include "isa/vreg.hh"
#include "mem/mem_system.hh"
#include "simcore/types.hh"
#include "via/via_config.hh"

namespace via
{

/** Issue/commit widths, window sizes, and FU counts. */
struct CoreParams
{
    double clockGhz = 2.0;

    std::uint32_t dispatchWidth = 4; //!< insts renamed+dispatched/cycle
    std::uint32_t commitWidth = 4;
    std::uint32_t robSize = 192;

    // Functional-unit counts.
    std::uint32_t intAluUnits = 4;
    std::uint32_t intMulUnits = 1;
    std::uint32_t vecAluUnits = 2;
    std::uint32_t vecFpUnits = 2;
    std::uint32_t vecFpMulUnits = 2;
    std::uint32_t vecRedUnits = 1;
    std::uint32_t vecPermUnits = 1;
    std::uint32_t loadPorts = 2;  //!< L1D read ports
    std::uint32_t storePorts = 1; //!< L1D write ports

    /** Stores tracked for load-ordering (store buffer depth). */
    std::uint32_t storeBuffer = 64;

    /** Load-queue entries: bounds loads in flight. */
    std::uint32_t lqEntries = 72;
    /** Store-queue entries: bounds stores awaiting cache drain. */
    std::uint32_t sqEntries = 56;

    /**
     * VIA execution eligibility (Section IV-E). The hardware defers
     * VIA instructions until they are non-speculative. In this
     * perfect-branch-prediction trace model the faithful equivalent
     * is "all older branches resolved" (false, default). Setting
     * true instead delays each VIA instruction until every older
     * instruction has *committed* — a strictly more conservative
     * reading used by the commit-mode ablation benchmark.
     */
    bool viaAtCommit = false;

    OpLatencies latencies;

    /** Units available for a given FU class. */
    std::uint32_t unitsFor(FuClass cls) const;
};

/** Everything needed to build a Machine. */
struct MachineParams
{
    CoreParams core;
    MemSystemParams mem = MemSystemParams::defaults();
    ViaConfig via;
    BackendParams backend;
    ElemType valueType = ElemType::F32;
    ElemType indexType = ElemType::I32;

    /** Print a Table I-style parameter summary. */
    void print(std::ostream &os) const;
};

} // namespace via

#endif // VIA_CPU_CORE_PARAMS_HH
