/**
 * @file
 * Which vector-unit backend a Machine is built over, plus the
 * backend-specific sizing knobs.
 *
 * Kept header-only and dependency-free so parameter structs and
 * option parsing can include it without dragging in the backend
 * implementations themselves (cpu/vector_backend.hh).
 */

#ifndef VIA_CPU_BACKEND_PARAMS_HH
#define VIA_CPU_BACKEND_PARAMS_HH

#include <cstdint>
#include <string_view>

namespace via
{

/** The accelerator model plugged into the core. */
enum class BackendKind : std::uint8_t
{
    Base = 0, //!< plain vector ISA, no indexed-access hardware
    Via,      //!< the paper's smart scratchpad + FIVU
    Ssr,      //!< stream semantic registers (arXiv 2011.08070)
    IndexMac, //!< indexed MAC through the caches (arXiv 2311.07241)
};

/** Backend selection and sizing. */
struct BackendParams
{
    BackendKind kind = BackendKind::Via;
    /** SSR: architected stream registers (bounds SsrCfg targets). */
    std::uint32_t ssrStreams = 4;
    /** IndexMAC: row-buffer entries tracking hot accumulator lines. */
    std::uint32_t imacRows = 4;
};

/** Canonical lowercase name for a backend kind. */
constexpr std::string_view
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Base: return "base";
      case BackendKind::Via: return "via";
      case BackendKind::Ssr: return "ssr";
      case BackendKind::IndexMac: return "indexmac";
    }
    return "<bad-backend>";
}

/**
 * Parse a backend name. @return true and set @p out on success;
 * false for unknown names (callers decide whether that is fatal or
 * an exit-2 usage error).
 */
inline bool
parseBackendKind(std::string_view name, BackendKind &out)
{
    if (name == "base") { out = BackendKind::Base; return true; }
    if (name == "via") { out = BackendKind::Via; return true; }
    if (name == "ssr") { out = BackendKind::Ssr; return true; }
    if (name == "indexmac") {
        out = BackendKind::IndexMac;
        return true;
    }
    return false;
}

} // namespace via

#endif // VIA_CPU_BACKEND_PARAMS_HH
