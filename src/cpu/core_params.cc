#include "cpu/core_params.hh"

#include "simcore/log.hh"

namespace via
{

std::uint32_t
CoreParams::unitsFor(FuClass cls) const
{
    switch (cls) {
      case FuClass::None:
        return 0;
      case FuClass::IntAlu:
        return intAluUnits;
      case FuClass::IntMul:
        return intMulUnits;
      case FuClass::VecAlu:
        return vecAluUnits;
      case FuClass::VecFp:
        return vecFpUnits;
      case FuClass::VecFpMul:
        return vecFpMulUnits;
      case FuClass::VecRed:
        return vecRedUnits;
      case FuClass::VecPerm:
        return vecPermUnits;
      case FuClass::LoadPort:
        return loadPorts;
      case FuClass::StorePort:
        return storePorts;
      case FuClass::Fivu:
        return 1;
      default:
        via_panic("unitsFor: bad FU class");
    }
}

void
MachineParams::print(std::ostream &os) const
{
    os << "Core (Table I)\n"
       << "  clock               " << core.clockGhz << " GHz\n"
       << "  pipeline            out-of-order, dispatch "
       << core.dispatchWidth << "-wide, commit " << core.commitWidth
       << "-wide\n"
       << "  ROB                 " << core.robSize << " entries\n"
       << "  vector width        " << VECTOR_BITS << " bit (AVX2-like, "
       << lanesFor(valueType) << " lanes of "
       << 8 * elemBytes(valueType) << "-bit)\n"
       << "  L1D ports           " << core.loadPorts << " load, "
       << core.storePorts << " store\n";
    os << "Memory hierarchy\n";
    for (const auto &l : mem.levels) {
        os << "  " << l.name << "                 "
           << l.sizeBytes / 1024 << " KB, " << l.assoc << "-way, "
           << l.hitLatency << "-cycle, " << l.mshrs << " MSHRs\n";
    }
    os << "  dram                " << mem.dram.latency
       << "-cycle latency, " << mem.dram.bytesPerCycle
       << " B/cycle (" << mem.dram.bytesPerCycle * core.clockGhz
       << " GB/s)\n";
    os << "  backend             " << backendName(backend.kind);
    if (backend.kind == BackendKind::Ssr)
        os << " (" << backend.ssrStreams << " stream registers)";
    else if (backend.kind == BackendKind::IndexMac)
        os << " (" << backend.imacRows << " row-buffer entries)";
    os << "\n";
    os << "VIA (" << via.name() << ")\n"
       << "  SSPM                " << via.sspmBytes / 1024 << " KB, "
       << via.ports << " ports, " << via.valueBytes
       << "-byte blocks\n"
       << "  index table (CAM)   " << via.camBytes / 1024 << " KB, "
       << via.camEntries() << " entries, banks of "
       << via.bankEntries << "\n";
}

} // namespace via
