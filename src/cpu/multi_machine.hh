/**
 * @file
 * The multi-core machine: N Machines over one shared LLC and DRAM.
 *
 * Each core is a full single-core Machine (private L1, SSPM, FIVU,
 * index table, OoO core) whose architectural memory is this
 * object's shared BackingStore and whose last private cache level
 * misses into the shared SharedLlc. Parallel kernels
 * (src/kernels/parallel.hh) drive the cores with partitioned work;
 * each core's emit stream is independent, so per-core timing stays
 * deterministic and the shared level resolves contention and
 * coherence analytically.
 *
 * cores=1 drivers must construct a plain Machine instead: the
 * single-core path is bit-identical to the pre-multicore simulator
 * and is what the benchmark fingerprints are pinned to.
 */

#ifndef VIA_CPU_MULTI_MACHINE_HH
#define VIA_CPU_MULTI_MACHINE_HH

#include <memory>
#include <vector>

#include "cpu/machine.hh"
#include "mem/shared_llc.hh"

namespace via
{

/** N cores, one shared LLC, one shared DRAM, one shared memory. */
class MultiMachine
{
  public:
    /**
     * Build @p cores cores from @p params. Each core keeps only the
     * first (L1) private cache level; the remaining levels are
     * replaced by the shared LLC described by @p llc_params
     * (typically SharedLlcParams::from(params.mem, cores)).
     */
    MultiMachine(const MachineParams &params, unsigned cores,
                 const SharedLlcParams &llc_params);

    /** Convenience: derive the LLC from the last private level. */
    MultiMachine(const MachineParams &params, unsigned cores);

    unsigned cores() const { return unsigned(_cores.size()); }
    Machine &core(unsigned i) { return *_cores.at(i); }
    const Machine &core(unsigned i) const { return *_cores.at(i); }

    BackingStore &mem() { return _store; }
    const BackingStore &mem() const { return _store; }
    SharedLlc &llc() { return *_llc; }
    const SharedLlc &llc() const { return *_llc; }

    /** Shared-level statistics (llc.*, dram.*). Per-core counters
     *  live in core(i).stats(). */
    StatSet &stats() { return _stats; }

    /** Makespan: the slowest core's commit front. */
    Tick cycles() const;

    /**
     * Enable tracing on every core (independent per-core rings) and
     * attribute shared-level events to core 0's sink.
     */
    void enableTracing(std::size_t limit);

    /** Attach invariant checkers to every core. */
    void attachCheckers();

    const MachineParams &params() const { return _params; }

    /** The per-core parameter derivation (exposed for tests). */
    static MachineParams privateParams(const MachineParams &params);

  private:
    MachineParams _params;
    BackingStore _store;
    std::unique_ptr<SharedLlc> _llc;
    std::vector<std::unique_ptr<Machine>> _cores;
    StatSet _stats;
};

} // namespace via

#endif // VIA_CPU_MULTI_MACHINE_HH
