/**
 * @file
 * Bandwidth-limited resources for the list-scheduling core model.
 *
 * A Resource with k units and occupancy 1 models a structure that
 * accepts k operations per cycle (an issue port group, a cache port,
 * a pipelined FU). acquire() greedily grabs the earliest free unit
 * at or after the requested tick, which is exactly the greedy list
 * scheduler used by tools like llvm-mca.
 */

#ifndef VIA_CPU_FU_POOL_HH
#define VIA_CPU_FU_POOL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/opcodes.hh"
#include "simcore/resource.hh"
#include "simcore/types.hh"

namespace via
{

struct CoreParams;
class Serializer;
class Deserializer;

/** One Resource per functional-unit class. */
class FuPool
{
  public:
    explicit FuPool(const CoreParams &params);

    Resource &forClass(FuClass cls);
    const Resource &forClass(FuClass cls) const;

    void resetTiming();

    /** Serialize every class resource (checkpoints). */
    void saveState(Serializer &ser) const;
    /** Restore state saved by saveState. */
    void loadState(Deserializer &des);

  private:
    std::array<Resource,
               std::size_t(FuClass::NumClasses)> _resources;
};

} // namespace via

#endif // VIA_CPU_FU_POOL_HH
