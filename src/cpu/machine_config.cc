#include "cpu/machine_config.hh"

#include "simcore/log.hh"

namespace via
{

MachineParams
machineParamsFrom(const Config &cfg)
{
    MachineParams p;

    p.via = ViaConfig::make(
        cfg.getUInt("sspm_kb", 16),
        std::uint32_t(cfg.getUInt("ports", 2)));
    if (cfg.has("cam_kb"))
        p.via.camBytes = cfg.getUInt("cam_kb", 4) * 1024;
    p.via.bankEntries =
        std::uint32_t(cfg.getUInt("cam_bank", p.via.bankEntries));

    std::string be = cfg.getString("backend", "via");
    if (!parseBackendKind(be, p.backend.kind))
        via_fatal("unknown backend '", be,
                  "' (expected base|via|ssr|indexmac)");
    p.backend.ssrStreams = std::uint32_t(
        cfg.getUInt("ssr_streams", p.backend.ssrStreams));
    p.backend.imacRows = std::uint32_t(
        cfg.getUInt("imac_rows", p.backend.imacRows));

    CoreParams &core = p.core;
    core.robSize = std::uint32_t(cfg.getUInt("rob", core.robSize));
    core.dispatchWidth = std::uint32_t(
        cfg.getUInt("dispatch", core.dispatchWidth));
    core.commitWidth =
        std::uint32_t(cfg.getUInt("commit", core.commitWidth));
    core.lqEntries =
        std::uint32_t(cfg.getUInt("lq", core.lqEntries));
    core.sqEntries =
        std::uint32_t(cfg.getUInt("sq", core.sqEntries));
    core.viaAtCommit = cfg.getBool("via_at_commit",
                                   core.viaAtCommit);

    OpLatencies &lat = core.latencies;
    lat.gatherOverhead =
        cfg.getUInt("gather_overhead", lat.gatherOverhead);
    lat.gatherPortFactor =
        cfg.getUInt("gather_ports", lat.gatherPortFactor);
    lat.mispredictPenalty =
        cfg.getUInt("mispredict", lat.mispredictPenalty);
    lat.storeForwardPenalty =
        cfg.getUInt("store_forward", lat.storeForwardPenalty);
    lat.ssrSetup = cfg.getUInt("ssr_setup", lat.ssrSetup);
    lat.imacOverhead =
        cfg.getUInt("imac_overhead", lat.imacOverhead);

    MemSystemParams &mem = p.mem;
    if (cfg.has("l1_kb"))
        mem.levels[0].sizeBytes = cfg.getUInt("l1_kb", 32) * 1024;
    if (cfg.has("l2_kb"))
        mem.levels[1].sizeBytes = cfg.getUInt("l2_kb", 1024) * 1024;
    mem.levels[0].hitLatency =
        cfg.getUInt("l1_lat", mem.levels[0].hitLatency);
    mem.levels[1].hitLatency =
        cfg.getUInt("l2_lat", mem.levels[1].hitLatency);
    if (cfg.has("mshrs")) {
        mem.levels[0].mshrs =
            std::uint32_t(cfg.getUInt("mshrs", 16));
        mem.levels[1].mshrs = 2 * mem.levels[0].mshrs;
    }
    mem.dram.latency = cfg.getUInt("dram_lat", mem.dram.latency);
    mem.dram.bytesPerCycle =
        cfg.getDouble("dram_bw", mem.dram.bytesPerCycle);
    mem.prefetch.degree = std::uint32_t(
        cfg.getUInt("prefetch", mem.prefetch.degree));

    return p;
}

void
addMachineOptions(Options &opts)
{
    // Defaults below are what machineParamsFrom resolves each key to
    // when it is omitted; pull them from the default structs so the
    // help table cannot drift from the model.
    MachineParams d;
    d.via = ViaConfig::make(16, 2);
    const CoreParams &core = d.core;
    const OpLatencies &lat = core.latencies;
    const MemSystemParams &mem = d.mem;

    opts.addUInt("sspm_kb", 16, "VIA scratchpad (SSPM) size in KB",
                 1)
        .addUInt("ports", 2, "SSPM ports (element moves per cycle)",
                 1)
        .addUInt("cam_kb", d.via.camBytes / 1024,
                 "VIA CAM capacity in KB", 1)
        .addUInt("cam_bank", d.via.bankEntries,
                 "CAM entries compared per bank access", 1)
        .addUInt("rob", core.robSize, "reorder-buffer entries", 1)
        .addUInt("dispatch", core.dispatchWidth,
                 "instructions dispatched per cycle", 1)
        .addUInt("commit", core.commitWidth,
                 "instructions committed per cycle", 1)
        .addUInt("lq", core.lqEntries, "load-queue entries", 1)
        .addUInt("sq", core.sqEntries, "store-queue entries", 1)
        .addBool("via_at_commit", core.viaAtCommit,
                 "strict commit-time VIA execution (Section IV-E)")
        .addString("backend", "via",
                   "vector backend: base|via|ssr|indexmac")
        .addUInt("ssr_streams", d.backend.ssrStreams,
                 "SSR architected stream registers", 1, 32)
        .addUInt("imac_rows", d.backend.imacRows,
                 "IndexMAC row-buffer entries", 1, 64)
        .addUInt("ssr_setup", lat.ssrSetup,
                 "SSR stream bind (ssr.cfg) cycles", 1)
        .addUInt("imac_overhead", lat.imacOverhead,
                 "indexed-MAC macro-op issue overhead cycles", 1)
        .addUInt("gather_overhead", lat.gatherOverhead,
                 "fixed gather/scatter startup cycles")
        .addUInt("gather_ports", lat.gatherPortFactor,
                 "L1 port cycles per gathered element", 1)
        .addUInt("mispredict", lat.mispredictPenalty,
                 "branch mispredict refill cycles")
        .addUInt("store_forward", lat.storeForwardPenalty,
                 "store-to-load forwarding replay cycles")
        .addUInt("l1_kb", mem.levels[0].sizeBytes / 1024,
                 "L1D capacity in KB", 1)
        .addUInt("l2_kb", mem.levels[1].sizeBytes / 1024,
                 "L2 capacity in KB", 1)
        .addUInt("l1_lat", mem.levels[0].hitLatency,
                 "L1D hit latency in cycles", 1)
        .addUInt("l2_lat", mem.levels[1].hitLatency,
                 "L2 hit latency in cycles", 1)
        .addUInt("mshrs", mem.levels[0].mshrs,
                 "L1 MSHRs (L2 gets twice as many)", 1)
        .addUInt("dram_lat", mem.dram.latency,
                 "DRAM access latency in cycles", 1)
        .addDouble("dram_bw", mem.dram.bytesPerCycle,
                   "DRAM bandwidth in bytes per core cycle", 0.001)
        .addUInt("prefetch", mem.prefetch.degree,
                 "L2 next-N-line prefetch degree", 0, 64);
}

void
addMultiCoreOptions(Options &opts)
{
    SharedLlcParams d;
    opts.addUInt("cores", 1,
                 "number of cores (1 = the bit-identical "
                 "single-core machine)",
                 1, 32)
        .addString("partition", "static",
                   "multi-core work partitioning: static|steal")
        .addUInt("llc_banks", d.banks,
                 "shared-LLC bank pipes (cores>1)", 1, 64);
}

SharedLlcParams
sharedLlcParamsFrom(const Config &cfg, const MachineParams &params,
                    unsigned cores)
{
    SharedLlcParams llc = SharedLlcParams::from(params.mem, cores);
    llc.banks = std::uint32_t(cfg.getUInt("llc_banks", llc.banks));
    return llc;
}

} // namespace via
