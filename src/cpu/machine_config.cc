#include "cpu/machine_config.hh"

namespace via
{

MachineParams
machineParamsFrom(const Config &cfg)
{
    MachineParams p;

    p.via = ViaConfig::make(
        cfg.getUInt("sspm_kb", 16),
        std::uint32_t(cfg.getUInt("ports", 2)));
    if (cfg.has("cam_kb"))
        p.via.camBytes = cfg.getUInt("cam_kb", 4) * 1024;
    p.via.bankEntries =
        std::uint32_t(cfg.getUInt("cam_bank", p.via.bankEntries));

    CoreParams &core = p.core;
    core.robSize = std::uint32_t(cfg.getUInt("rob", core.robSize));
    core.dispatchWidth = std::uint32_t(
        cfg.getUInt("dispatch", core.dispatchWidth));
    core.commitWidth =
        std::uint32_t(cfg.getUInt("commit", core.commitWidth));
    core.lqEntries =
        std::uint32_t(cfg.getUInt("lq", core.lqEntries));
    core.sqEntries =
        std::uint32_t(cfg.getUInt("sq", core.sqEntries));
    core.viaAtCommit = cfg.getBool("via_at_commit",
                                   core.viaAtCommit);

    OpLatencies &lat = core.latencies;
    lat.gatherOverhead =
        cfg.getUInt("gather_overhead", lat.gatherOverhead);
    lat.gatherPortFactor =
        cfg.getUInt("gather_ports", lat.gatherPortFactor);
    lat.mispredictPenalty =
        cfg.getUInt("mispredict", lat.mispredictPenalty);
    lat.storeForwardPenalty =
        cfg.getUInt("store_forward", lat.storeForwardPenalty);

    MemSystemParams &mem = p.mem;
    if (cfg.has("l1_kb"))
        mem.levels[0].sizeBytes = cfg.getUInt("l1_kb", 32) * 1024;
    if (cfg.has("l2_kb"))
        mem.levels[1].sizeBytes = cfg.getUInt("l2_kb", 1024) * 1024;
    mem.levels[0].hitLatency =
        cfg.getUInt("l1_lat", mem.levels[0].hitLatency);
    mem.levels[1].hitLatency =
        cfg.getUInt("l2_lat", mem.levels[1].hitLatency);
    if (cfg.has("mshrs")) {
        mem.levels[0].mshrs =
            std::uint32_t(cfg.getUInt("mshrs", 16));
        mem.levels[1].mshrs = 2 * mem.levels[0].mshrs;
    }
    mem.dram.latency = cfg.getUInt("dram_lat", mem.dram.latency);
    mem.dram.bytesPerCycle =
        cfg.getDouble("dram_bw", mem.dram.bytesPerCycle);
    mem.prefetch.degree = std::uint32_t(
        cfg.getUInt("prefetch", mem.prefetch.degree));

    return p;
}

} // namespace via
