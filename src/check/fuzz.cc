#include "check/fuzz.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "check/invariants.hh"
#include "cpu/machine.hh"
#include "cpu/multi_machine.hh"
#include "kernels/dispatch.hh"
#include "kernels/histogram.hh"
#include "kernels/parallel.hh"
#include "kernels/reference.hh"
#include "kernels/spma.hh"
#include "kernels/spmm.hh"
#include "kernels/stencil.hh"
#include "simcore/log.hh"
#include "simcore/parallel.hh"
#include "sparse/convert.hh"
#include "sparse/csc.hh"
#include "sparse/generators.hh"

namespace via
{
namespace check
{

namespace
{

/**
 * Per-seed context threaded through every kernel run. Diagnostics
 * go through `out`, not straight to stderr: seeds may run on worker
 * threads, and buffering keeps a parallel campaign's output
 * bit-identical to a serial one.
 */
struct SeedCtx
{
    const FuzzOptions &opts;
    FuzzStats &stats;
    std::uint64_t seed;
    std::string &out;
};

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    std::va_list args;
    va_start(args, fmt);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n > 0)
        out.append(buf, std::min(std::size_t(n), sizeof(buf) - 1));
}

void
printReplay(const SeedCtx &ctx, const std::string &kernel,
            bool multicore = false)
{
    appendf(ctx.out, "replay: via_fuzz seeds=1 seed=%llu kernel=%s",
            static_cast<unsigned long long>(ctx.seed),
            kernel.c_str());
    // Single-core replay lines stay byte-identical to the
    // pre-multicore fuzzer; only a multi-core failure needs the
    // extra knob to reproduce.
    if (multicore)
        appendf(ctx.out, " cores=%u", ctx.opts.cores);
    appendf(ctx.out, "\n");
}

/** The seed's partitioning policy (even = static, odd = steal). */
kernels::Partition
seedPartition(std::uint64_t seed)
{
    return (seed & 1) ? kernels::Partition::Steal
                      : kernels::Partition::Static;
}

/**
 * The accelerated slot's variant= tag. With the default backend the
 * campaign output stays byte-identical to the pre-backend fuzzer
 * ("variant=via").
 */
std::string
accelTag(const MachineParams &params)
{
    return "variant=" +
           std::string(backendName(params.backend.kind));
}

/**
 * Run one kernel variant on a fresh machine with an invariant
 * checker attached; @p body executes the kernel and returns whether
 * the result matched the golden reference.
 *
 * @return false when the campaign must stop (failure recorded)
 */
bool
runOne(const SeedCtx &ctx, const MachineParams &params,
       const std::string &kernel, const std::string &label,
       const std::function<bool(Machine &)> &body)
{
    Machine m(params);
    TimingInvariantChecker &checker = m.attachChecker();
    bool ref_ok = body(m);
    if (ctx.opts.inject)
        ctx.opts.inject(m);
    bool inv_ok = checker.checkAll();
    ++ctx.stats.kernelRuns;
    if (ref_ok && inv_ok)
        return true;

    ++ctx.stats.failures;
    appendf(ctx.out,
            "via_fuzz: FAIL %s config=%s seed=%llu (%s)\n",
            label.c_str(), params.via.name().c_str(),
            static_cast<unsigned long long>(ctx.seed),
            !ref_ok ? "reference mismatch"
                    : "invariant violation");
    if (!inv_ok)
        ctx.out += checker.report();
    printReplay(ctx, kernel);
    return false;
}

/**
 * Multi-core counterpart of runOne: a fresh opts.cores-core
 * MultiMachine with an invariant checker attached to every core;
 * @p body runs the parallel kernel and returns whether the result
 * matched the golden. The inject hook hits core 0, so the self-test
 * covers the multi-core checkers too.
 */
bool
runOneMulti(const SeedCtx &ctx, const MachineParams &params,
            const std::string &kernel, const std::string &label,
            const std::function<bool(MultiMachine &)> &body)
{
    MultiMachine mm(params, ctx.opts.cores);
    mm.attachCheckers();
    bool ref_ok = body(mm);
    if (ctx.opts.inject)
        ctx.opts.inject(mm.core(0));
    bool inv_ok = true;
    unsigned bad_core = 0;
    for (unsigned c = 0; c < mm.cores() && inv_ok; ++c) {
        if (!mm.core(c).checker()->checkAll()) {
            inv_ok = false;
            bad_core = c;
        }
    }
    ++ctx.stats.kernelRuns;
    if (ref_ok && inv_ok)
        return true;

    ++ctx.stats.failures;
    appendf(ctx.out,
            "via_fuzz: FAIL %s cores=%u partition=%s config=%s "
            "seed=%llu (%s)\n",
            label.c_str(), ctx.opts.cores,
            kernels::partitionName(seedPartition(ctx.seed)),
            params.via.name().c_str(),
            static_cast<unsigned long long>(ctx.seed),
            !ref_ok ? "reference mismatch" : "invariant violation");
    if (!inv_ok) {
        appendf(ctx.out, "core %u:\n", bad_core);
        ctx.out += mm.core(bad_core).checker()->report();
    }
    printReplay(ctx, kernel, true);
    return false;
}

bool
fuzzSpmv(const SeedCtx &ctx, const MachineParams &params, Rng &rng)
{
    Csr a = genAdversarial(rng);
    DenseVector x = randomVector(a.cols(), rng);
    DenseVector golden = a.multiply(x);
    for (const std::string &fmt : kernels::spmvFormats()) {
        auto diff = [&](kernels::SpmvResult res) {
            return allClose(res.y, golden);
        };
        if (!runOne(ctx, params, "spmv",
                    "kernel=spmv format=" + fmt + " variant=base",
                    [&](Machine &m) {
                        return diff(kernels::spmvBaseline(m, a, x,
                                                          fmt));
                    }))
            return false;
        if (!runOne(ctx, params, "spmv",
                    "kernel=spmv format=" + fmt + " " +
                        accelTag(params),
                    [&](Machine &m) {
                        return diff(
                            kernels::spmvAccel(m, a, x, fmt));
                    }))
            return false;
    }
    if (ctx.opts.cores > 1) {
        kernels::Partition part = seedPartition(ctx.seed);
        // Only csr and csb have parallel variants (spc5/sell are
        // sequential over their block/chunk streams).
        for (const std::string &fmt : {"csr", "csb"}) {
            for (bool via : {false, true}) {
                if (!runOneMulti(
                        ctx, params, "spmv",
                        "kernel=spmv format=" + fmt + " variant=" +
                            (via ? "via" : "base"),
                        [&](MultiMachine &mm) {
                            return allClose(
                                kernels::spmvParallel(mm, a, x, fmt,
                                                      part, via)
                                    .y,
                                golden);
                        }))
                    return false;
            }
        }
    }
    return true;
}

bool
fuzzSpma(const SeedCtx &ctx, const MachineParams &params, Rng &rng)
{
    Csr a = genAdversarial(rng);
    // Addition needs conformal shapes: B reuses A's dimensions with
    // an independent structure.
    Csr b = genUniform(a.rows(), a.cols(),
                       std::min(1.0, 0.05 + rng.uniform() * 0.3),
                       rng);
    Csr golden = addCsr(a, b);
    auto diff = [&](const kernels::SpmaResult &res) {
        return closeElements(res.c, golden, 1e-3);
    };
    if (!runOne(ctx, params, "spma",
                "kernel=spma variant=scalar", [&](Machine &m) {
                    return diff(kernels::spmaScalarCsr(m, a, b));
                }))
        return false;
    if (!runOne(ctx, params, "spma",
                "kernel=spma " + accelTag(params),
                [&](Machine &m) {
                    return diff(kernels::spmaAccel(m, a, b));
                }))
        return false;
    if (ctx.opts.cores > 1) {
        kernels::Partition part = seedPartition(ctx.seed);
        for (bool via : {false, true}) {
            if (!runOneMulti(ctx, params, "spma",
                             std::string("kernel=spma variant=") +
                                 (via ? "via" : "scalar"),
                             [&](MultiMachine &mm) {
                                 return diff(kernels::spmaParallel(
                                     mm, a, b, part, via));
                             }))
                return false;
        }
    }
    return true;
}

bool
fuzzSpmm(const SeedCtx &ctx, const MachineParams &params, Rng &rng)
{
    Csr a = genAdversarial(rng);
    Csr b_csr = genUniform(a.cols(), std::max<Index>(1, a.rows()),
                           std::min(1.0,
                                    0.05 + rng.uniform() * 0.25),
                           rng);
    Csc b = Csc::fromCsr(b_csr);
    Csr golden = mulCsr(a, b_csr);
    auto diff = [&](const kernels::SpmmResult &res) {
        return closeElements(res.c, golden, 1e-2);
    };
    if (!runOne(ctx, params, "spmm",
                "kernel=spmm variant=scalar", [&](Machine &m) {
                    return diff(kernels::spmmScalarInner(m, a, b));
                }))
        return false;
    // The VIA kernel loads whole A rows into the CAM; rows longer
    // than the table cannot run on this configuration. The other
    // backends have no such capacity cliff.
    bool via_fits =
        params.backend.kind != BackendKind::Via ||
        a.maxRowNnz() <= Index(params.via.camEntries());
    if (!via_fits)
        ++ctx.stats.skipped;
    else if (!runOne(ctx, params, "spmm",
                     "kernel=spmm " + accelTag(params),
                     [&](Machine &m) {
                         return diff(kernels::spmmAccel(m, a, b));
                     }))
        return false;
    if (ctx.opts.cores > 1) {
        kernels::Partition part = seedPartition(ctx.seed);
        for (bool via : {false, true}) {
            if (via && !via_fits) {
                ++ctx.stats.skipped;
                continue;
            }
            if (!runOneMulti(ctx, params, "spmm",
                             std::string("kernel=spmm variant=") +
                                 (via ? "via" : "scalar"),
                             [&](MultiMachine &mm) {
                                 return diff(kernels::spmmParallel(
                                     mm, a, b, part, via));
                             }))
                return false;
        }
    }
    return true;
}

bool
fuzzHistogram(const SeedCtx &ctx, const MachineParams &params,
              Rng &rng)
{
    auto buckets = Index(1 + rng.below(512));
    auto count = std::size_t(rng.below(513));
    std::vector<Index> keys(count);
    bool skewed = rng.chance(0.5);
    Index hot = Index(rng.below(std::uint64_t(buckets)));
    for (auto &k : keys)
        k = (skewed && rng.chance(0.8))
                ? hot
                : Index(rng.below(std::uint64_t(buckets)));
    std::vector<Value> golden = kernels::refHistogram(keys, buckets);
    auto diff = [&](const kernels::HistResult &res) {
        return res.hist == golden;
    };
    if (!runOne(ctx, params, "histogram",
                "kernel=histogram variant=scalar",
                [&](Machine &m) {
                    return diff(
                        kernels::histScalar(m, keys, buckets));
                }))
        return false;
    if (!runOne(ctx, params, "histogram",
                "kernel=histogram variant=vector",
                [&](Machine &m) {
                    return diff(
                        kernels::histVector(m, keys, buckets));
                }))
        return false;
    if (!runOne(ctx, params, "histogram",
                "kernel=histogram " + accelTag(params),
                [&](Machine &m) {
                    return diff(
                        kernels::histAccel(m, keys, buckets));
                }))
        return false;
    if (ctx.opts.cores > 1) {
        kernels::Partition part = seedPartition(ctx.seed);
        for (bool via : {false, true}) {
            if (!runOneMulti(
                    ctx, params, "histogram",
                    std::string("kernel=histogram variant=") +
                        (via ? "via" : "vector"),
                    [&](MultiMachine &mm) {
                        return diff(kernels::histParallel(
                            mm, keys, buckets, part, via));
                    }))
                return false;
        }
    }
    return true;
}

bool
fuzzStencil(const SeedCtx &ctx, const MachineParams &params,
            Rng &rng)
{
    // The 4x4 valid convolution needs at least a 4x4 image; odd,
    // non-multiple-of-VL sides exercise the edge handling.
    auto side = Index(4 + rng.below(21));
    DenseMatrix img(side, side);
    for (auto &p : img.data())
        p = Value(rng.uniform() * 255.0);
    DenseMatrix golden = kernels::refConvolve4x4(img);
    auto diff = [&](const kernels::StencilResult &res) {
        return allClose(res.out.data(), golden.data());
    };
    if (!runOne(ctx, params, "stencil",
                "kernel=stencil variant=vector", [&](Machine &m) {
                    return diff(kernels::stencilVector(m, img));
                }))
        return false;
    if (!runOne(ctx, params, "stencil",
                "kernel=stencil " + accelTag(params),
                [&](Machine &m) {
                    return diff(kernels::stencilAccel(m, img));
                }))
        return false;
    if (ctx.opts.cores > 1) {
        kernels::Partition part = seedPartition(ctx.seed);
        for (bool via : {false, true}) {
            if (!runOneMulti(
                    ctx, params, "stencil",
                    std::string("kernel=stencil variant=") +
                        (via ? "via" : "vector"),
                    [&](MultiMachine &mm) {
                        return diff(kernels::stencilParallel(
                            mm, img, part, via));
                    }))
                return false;
        }
    }
    return true;
}

/** One seed's complete, order-independent verdict. */
struct SeedResult
{
    FuzzStats stats;
    std::string out;
};

/**
 * Run one seed across every configuration and requested kernel,
 * stopping at the seed's first failure (one replay line per bad
 * seed). Self-contained: writes only into the returned result, so
 * seeds can run on any thread in any order.
 */
SeedResult
runSeed(const FuzzOptions &opts,
        const std::vector<MachineParams> &configs,
        std::uint64_t seed)
{
    SeedResult res;
    SeedCtx ctx{opts, res.stats, seed, res.out};
    if (opts.verbose)
        appendf(res.out, "via_fuzz: seed %llu\n",
                static_cast<unsigned long long>(seed));
    for (const MachineParams &params : configs) {
        // Each kernel draws from its own stream so adding a kernel
        // or config never shifts another's inputs.
        auto sub = [&](std::uint64_t salt) {
            return Rng(seed * 0x9e3779b97f4a7c15ull + salt);
        };
        bool ok = true;
        if (opts.kernel == "all" || opts.kernel == "spmv") {
            Rng r = sub(1);
            ok = fuzzSpmv(ctx, params, r);
        }
        if (ok && (opts.kernel == "all" || opts.kernel == "spma")) {
            Rng r = sub(2);
            ok = fuzzSpma(ctx, params, r);
        }
        if (ok && (opts.kernel == "all" || opts.kernel == "spmm")) {
            Rng r = sub(3);
            ok = fuzzSpmm(ctx, params, r);
        }
        if (ok &&
            (opts.kernel == "all" || opts.kernel == "histogram")) {
            Rng r = sub(4);
            ok = fuzzHistogram(ctx, params, r);
        }
        if (ok &&
            (opts.kernel == "all" || opts.kernel == "stencil")) {
            Rng r = sub(5);
            ok = fuzzStencil(ctx, params, r);
        }
        if (!ok)
            return res;
    }
    ++res.stats.seedsRun;
    return res;
}

} // namespace

std::vector<MachineParams>
fuzzConfigs()
{
    std::vector<MachineParams> configs;

    // The paper's default machine (16 KB SSPM, 2 ports).
    configs.push_back(MachineParams{});

    // Capacity-starved: small SSPM/CAM, small L1, few MSHRs —
    // forces CAM tiling, SSPM chunking and MSHR back-pressure.
    MachineParams small;
    small.via = ViaConfig::make(4, 2);
    small.mem.levels[0].sizeBytes = 8 * 1024;
    small.mem.levels[0].mshrs = 4;
    configs.push_back(small);

    // Bandwidth-rich: wide SSPM ports plus next-line prefetching,
    // exercising the prefetch writeback path and port pipelining.
    MachineParams wide;
    wide.via = ViaConfig::make(16, 4);
    wide.mem.prefetch.degree = 2;
    configs.push_back(wide);

    return configs;
}

Csr
genAdversarial(Rng &rng)
{
    auto n = Index(2 + rng.below(39));
    Csr base;
    switch (rng.below(6)) {
    case 0:
        base = genUniform(n, n, 0.02 + rng.uniform() * 0.3, rng);
        break;
    case 1:
        base = genBanded(n,
                         Index(1 + rng.below(std::uint64_t(
                                   std::max<Index>(1, n / 4)))),
                         0.2 + rng.uniform() * 0.8, rng);
        break;
    case 2: {
        Index n2 = 2;
        while (2 * n2 <= n)
            n2 *= 2;
        base = genRmat(n2,
                       1 + rng.below(std::uint64_t(n2) *
                                     std::uint64_t(n2) / 2),
                       rng);
        break;
    }
    case 3:
        base = genBlocked(
            n,
            Index(1 + rng.below(std::min<std::uint64_t>(n, 8))),
            0.2 + rng.uniform() * 0.6, 0.3 + rng.uniform() * 0.7,
            rng);
        break;
    case 4:
        base = genDiagHeavy(n, rng.uniform() * 4.0, rng);
        break;
    default:
        // Extremes: fully dense, or entirely empty (structural
        // zero matrix — every row and column is empty).
        if (rng.chance(0.5))
            base = genUniform(n, n, 1.0, rng);
        else
            base = Csr::fromCoo(Coo(n, n));
        break;
    }

    Coo coo = base.toCoo();
    // The family may have rounded the size (RMAT is a power of
    // two); adversarial structure goes by the actual dimensions.
    n = coo.rows();

    // Duplicate coordinates: re-add existing elements so fromCoo's
    // merge path runs (the COO->CSR dedup rare-structure case).
    if (!coo.elems().empty() && rng.chance(0.5)) {
        std::size_t dups = 1 + rng.below(4);
        for (std::size_t d = 0; d < dups; ++d) {
            const Triplet &t =
                coo.elems()[rng.below(coo.elems().size())];
            coo.add(t.row, t.col, Value(rng.uniform() - 0.5));
        }
    }

    // A small dense block somewhere: nnz/row skew inside an
    // otherwise sparse structure.
    if (rng.chance(0.4)) {
        auto side = Index(
            std::min<std::uint64_t>(n, 2 + rng.below(5)));
        auto r0 = Index(rng.below(std::uint64_t(n - side + 1)));
        auto c0 = Index(rng.below(std::uint64_t(n - side + 1)));
        for (Index r = 0; r < side; ++r)
            for (Index c = 0; c < side; ++c)
                coo.add(r0 + r, c0 + c,
                        Value(rng.uniform() - 0.5));
    }

    // Empty rows and columns: knock out everything in a random row
    // band and a random column band.
    if (rng.chance(0.6)) {
        auto r_lo = Index(rng.below(n));
        auto r_hi = Index(
            std::min<std::uint64_t>(n, r_lo + 1 + rng.below(4)));
        auto c_lo = Index(rng.below(n));
        auto c_hi = Index(
            std::min<std::uint64_t>(n, c_lo + 1 + rng.below(4)));
        auto &elems = coo.elems();
        elems.erase(
            std::remove_if(elems.begin(), elems.end(),
                           [&](const Triplet &t) {
                               return (t.row >= r_lo &&
                                       t.row < r_hi) ||
                                      (t.col >= c_lo &&
                                       t.col < c_hi);
                           }),
            elems.end());
    }

    return Csr::fromCoo(std::move(coo));
}

FuzzStats
runFuzz(const FuzzOptions &opts)
{
    std::vector<MachineParams> configs = fuzzConfigs();
    for (MachineParams &params : configs)
        params.backend.kind = opts.backend;

    SweepExecutor exec(opts.threads);
    std::vector<SeedResult> results =
        exec.run(std::size_t(opts.seeds), [&](std::size_t i) {
            return runSeed(opts, configs, opts.firstSeed + i);
        });

    // Emit and aggregate in seed order, regardless of which thread
    // finished first.
    FuzzStats stats;
    for (const SeedResult &res : results) {
        if (!res.out.empty())
            std::fputs(res.out.c_str(), stderr);
        stats.seedsRun += res.stats.seedsRun;
        stats.kernelRuns += res.stats.kernelRuns;
        stats.skipped += res.stats.skipped;
        stats.failures += res.stats.failures;
    }
    return stats;
}

} // namespace check
} // namespace via
