/**
 * @file
 * Deterministic differential fuzzing of the kernels (the validation
 * subsystem's second half; see docs/validation.md).
 *
 * Each seed deterministically generates an adversarial input —
 * sparse structures with empty rows/columns, duplicate coordinates,
 * banded/power-law/dense-block mixes, skewed histogram keys, odd
 * image sizes — and runs the kernels across several machine
 * configurations, baseline and VIA variants alike. Every run is
 * diffed against the host golden reference, and a
 * TimingInvariantChecker verifies the timing model's internal
 * consistency. Each seed runs to its first failure and prints a
 * single replayable line, so `via_fuzz seed=S kernel=K` reproduces
 * it exactly; the campaign itself runs every seed, so one bad seed
 * never masks another.
 *
 * Seeds share no state (each draws from its own splitmix64
 * sub-streams), so with threads > 1 the campaign fans out over a
 * SweepExecutor. Per-seed output is buffered and printed in seed
 * order after collection: a threads=N run is bit-identical to a
 * serial one.
 */

#ifndef VIA_CHECK_FUZZ_HH
#define VIA_CHECK_FUZZ_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cpu/core_params.hh"
#include "simcore/rng.hh"
#include "sparse/csr.hh"

namespace via
{

class Machine;

namespace check
{

/** Fuzz campaign configuration. */
struct FuzzOptions
{
    std::uint64_t seeds = 100;    //!< number of seeds to run
    std::uint64_t firstSeed = 1;  //!< first seed (replay: seeds=1)
    std::string kernel = "all";   //!< all | spmv | spma | spmm |
                                  //!< histogram | stencil
    unsigned threads = 1;         //!< worker threads (0 = hardware)
    bool verbose = false;         //!< per-seed progress on stderr

    /**
     * The accelerated variant every seed differentials against the
     * host goldens: the VIA kernels by default, or the SSR /
     * IndexMAC baseline backends (machines are built over the
     * matching VectorBackend). backend=base re-runs the software
     * kernels in the accelerated slot — a self-consistency mode.
     * cores>1 requires Via (only the VIA kernels have parallel
     * variants).
     */
    BackendKind backend = BackendKind::Via;

    /**
     * With cores > 1 each seed additionally runs the parallel
     * kernel variants (src/kernels/parallel.hh) on a cores-core
     * MultiMachine, diffed against the same host goldens with an
     * invariant checker on every core. The partitioning policy
     * alternates with the seed's parity (even = static, odd =
     * steal), so both schedulers fuzz without a separate knob; a
     * failing multi-core run's replay line carries cores=N.
     */
    unsigned cores = 1;

    /**
     * Self-test hook: applied to each machine after its kernel ran
     * but before the invariant checks, so a deliberate counter
     * perturbation must be caught and reported with a replay seed.
     */
    std::function<void(Machine &)> inject;
};

/** Campaign totals. */
struct FuzzStats
{
    std::uint64_t seedsRun = 0;   //!< seeds that completed clean
    std::uint64_t kernelRuns = 0; //!< kernel x config x variant runs
    std::uint64_t skipped = 0;    //!< input exceeded a config's CAM
    std::uint64_t failures = 0;   //!< mismatches + violations
};

/**
 * The machine configurations every seed is run across: the paper's
 * default plus a small-SSPM/small-cache point and a wide-port point
 * with prefetching, so capacity- and bandwidth-dependent paths all
 * execute.
 */
std::vector<MachineParams> fuzzConfigs();

/**
 * Deterministically generate one adversarial sparse matrix from
 * @p rng: a random structural family, with deliberate empty rows,
 * empty columns, duplicate coordinates (merged by construction) and
 * dense sub-blocks mixed in. Dimensions stay small (<= ~40) so a
 * campaign of hundreds of seeds runs in seconds.
 */
Csr genAdversarial(Rng &rng);

/**
 * Run the campaign (parallel when opts.threads != 1; per-seed
 * verdicts and output are deterministic at any thread count).
 * Returns the totals; failures != 0 means at least one replay line
 * ("replay: via_fuzz seeds=1 seed=... kernel=...", with a trailing
 * " cores=N" when the failing run was multi-core) was printed.
 */
FuzzStats runFuzz(const FuzzOptions &opts);

} // namespace check
} // namespace via

#endif // VIA_CHECK_FUZZ_HH
