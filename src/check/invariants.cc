#include "check/invariants.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "cpu/machine.hh"
#include "simcore/log.hh"
#include "trace/summary.hh"

namespace via
{
namespace check
{

bool
envEnabled()
{
    const char *v = std::getenv("VIA_CHECK");
    if (v == nullptr)
        return false;
    std::string s(v);
    for (char &c : s)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return s == "1" || s == "on" || s == "true" || s == "yes";
}

TimingInvariantChecker::TimingInvariantChecker(Machine &machine)
    : _machine(machine)
{
    _machine.core().addTimingObserver(this);
}

TimingInvariantChecker::~TimingInvariantChecker()
{
    _machine.core().removeTimingObserver(this);
}

void
TimingInvariantChecker::fail(const char *invariant,
                             std::string detail)
{
    ++_violationCount;
    if (_violations.size() < maxRecorded)
        _violations.push_back(Violation{invariant, std::move(detail)});
}

void
TimingInvariantChecker::onInstTiming(const Inst &inst,
                                     const InstTiming &t)
{
    ++_instsSeen;

    auto detail = [&] {
        std::ostringstream os;
        os << mnemonic(inst.op) << " seq=" << inst.seq
           << " dispatch=" << t.dispatch << " issue=" << t.issue
           << " complete=" << t.complete << " commit=" << t.commit;
        return os.str();
    };

    if (!(t.dispatch <= t.issue && t.issue <= t.complete &&
          t.complete <= t.commit))
        fail("inst-monotone", detail());

    if (t.commit < _lastCommit)
        fail("commit-order",
             detail() + " < previous commit " +
                 std::to_string(_lastCommit));
    _lastCommit = t.commit;
}

void
TimingInvariantChecker::onTimingReset()
{
    _lastCommit = 0;
    _timingReset = true;
}

void
TimingInvariantChecker::checkCaches()
{
    MemSystem &mem = _machine.memSystem();
    for (std::size_t i = 0; i < mem.numLevels(); ++i) {
        const Cache &cache = mem.level(i);
        const CacheStats &cs = cache.stats();
        std::uint64_t classified =
            cs.hits + cs.misses() + cs.mshrMerges;
        if (cs.accesses() != classified) {
            std::ostringstream os;
            os << cache.params().name << ": accesses "
               << cs.accesses() << " != hits " << cs.hits
               << " + misses " << cs.misses() << " + merges "
               << cs.mshrMerges;
            fail("cache-accounting", os.str());
        }
    }
}

void
TimingInvariantChecker::checkDram()
{
    const Dram &dram = _machine.memSystem().dram();
    const DramStats &ds = dram.stats();
    if (ds.busyCycles != dram.pipeBusy()) {
        std::ostringstream os;
        os << "busy_cycles " << ds.busyCycles
           << " != pipe bookings " << dram.pipeBusy();
        fail("dram-busy-reconcile", os.str());
    }
    // The pipe has width 1, so cumulative busy time can never exceed
    // the furthest cycle ever booked. The horizon resets with timing
    // (busy does not), so the bound only holds reset-free.
    if (!_timingReset && ds.busyCycles > dram.pipeHorizon()) {
        std::ostringstream os;
        os << "busy_cycles " << ds.busyCycles
           << " > pipe horizon " << dram.pipeHorizon();
        fail("dram-busy-bound", os.str());
    }
}

void
TimingInvariantChecker::checkCam()
{
    const Sspm &sspm = _machine.sspm();
    const IndexTable &table = sspm.indexTable();
    const IndexTableStats &its = table.stats();
    const SspmStats &ss = sspm.stats();
    std::uint32_t bank = sspm.config().bankEntries;

    if (its.comparisons != its.banksSearched * bank) {
        std::ostringstream os;
        os << "comparisons " << its.comparisons
           << " != banks_searched " << its.banksSearched << " x "
           << bank << " bank entries";
        fail("cam-comparators", os.str());
    }
    if (its.hits > its.searches)
        fail("cam-hits-bound",
             "hits " + std::to_string(its.hits) + " > searches " +
                 std::to_string(its.searches));
    if (its.inserts > its.searches)
        fail("cam-inserts-bound",
             "inserts " + std::to_string(its.inserts) +
                 " > searches " + std::to_string(its.searches));
    // Inserts minus clears bounds the live count: every tracked key
    // was inserted after the last clear.
    if (table.count() > its.inserts)
        fail("cam-live-count",
             "live count " + std::to_string(table.count()) +
                 " > lifetime inserts " +
                 std::to_string(its.inserts));
    if (table.count() > table.capacity())
        fail("cam-capacity",
             "live count " + std::to_string(table.count()) +
                 " > capacity " + std::to_string(table.capacity()));

    // Every CAM-mode SSPM write searches the table (findOrInsert);
    // reads search unless they ride an update's search, so searches
    // land between the write count and total CAM traffic.
    if (ss.camWrites > its.searches ||
        its.searches > ss.camReads + ss.camWrites) {
        std::ostringstream os;
        os << "searches " << its.searches << " outside [cam_writes "
           << ss.camWrites << ", cam_reads + cam_writes "
           << ss.camReads + ss.camWrites << "]";
        fail("sspm-cam-traffic", os.str());
    }
}

void
TimingInvariantChecker::checkFivu()
{
    const FivuStats &fs = _machine.fivu().stats();
    if (fs.busyCycles < fs.sspmReadCycles + fs.sspmWriteCycles) {
        std::ostringstream os;
        os << "busy " << fs.busyCycles << " < read phases "
           << fs.sspmReadCycles << " + write phases "
           << fs.sspmWriteCycles;
        fail("fivu-occupancy", os.str());
    }
}

void
TimingInvariantChecker::checkCore()
{
    const OoOCore &core = _machine.core();
    // Commit is in order and no earlier than completion, so the
    // final commit front covers every completion ever scheduled.
    if (core.finishTick() < core.lastComplete()) {
        std::ostringstream os;
        os << "commit front " << core.finishTick()
           << " < last completion " << core.lastComplete();
        fail("core-drain", os.str());
    }
}

void
TimingInvariantChecker::checkTrace()
{
    const TraceManager *trace = _machine.trace();
    if (trace == nullptr || !trace->enabled())
        return;
    Tick total = _machine.cycles();
    TraceSummary summary = summarizeTrace(*trace, total);
    for (std::size_t c = 0;
         c < std::size_t(TraceComponent::COUNT); ++c) {
        const ComponentSummary &cs = summary.comps[c];
        if (cs.busy + cs.idle != total || cs.busy > total) {
            std::ostringstream os;
            os << "component " << c << ": busy " << cs.busy
               << " + idle " << cs.idle << " != total " << total;
            fail("trace-busy-idle", os.str());
        }
    }
}

void
TimingInvariantChecker::finalize()
{
    if (_finalized)
        return;
    _finalized = true;
    checkCaches();
    checkDram();
    checkCam();
    checkFivu();
    checkCore();
    checkTrace();
}

bool
TimingInvariantChecker::checkAll()
{
    finalize();
    return ok();
}

std::string
TimingInvariantChecker::report() const
{
    std::ostringstream os;
    os << "invariant violations: " << _violationCount << " ("
       << _instsSeen << " insts observed)\n";
    for (const Violation &v : _violations)
        os << "  [" << v.invariant << "] " << v.detail << "\n";
    if (_violationCount > _violations.size())
        os << "  ... " << (_violationCount - _violations.size())
           << " more not recorded\n";
    return os.str();
}

void
TimingInvariantChecker::checkOrDie()
{
    finalize();
    if (ok())
        return;
    std::fputs(report().c_str(), stderr);
    via_fatal("timing invariant check failed (",
              _violationCount, " violations)");
}

} // namespace check
} // namespace via
