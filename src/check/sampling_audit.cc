#include "check/sampling_audit.hh"

#include <cmath>
#include <cstdio>

#include "cpu/machine.hh"

namespace via
{
namespace check
{

std::string
SamplingAudit::summary() const
{
    char buf[160];
    if (exact) {
        std::snprintf(buf, sizeof(buf),
                      "sampling audit: %s (exact run, %.0f vs %.0f "
                      "detailed cycles)",
                      ok ? "ok" : "FAIL", sampledCycles,
                      detailedCycles);
    } else {
        std::snprintf(buf, sizeof(buf),
                      "sampling audit: %s (%.2f%% error vs detailed,"
                      " bound %.2f%%, %llu windows)",
                      ok ? "ok" : "FAIL", relError * 100.0,
                      bound * 100.0,
                      static_cast<unsigned long long>(intervals));
    }
    return buf;
}

SamplingAudit
auditEstimate(const MachineParams &params,
              const sample::SampleEstimate &est,
              const std::function<void(Machine &)> &body,
              double bound)
{
    SamplingAudit audit;
    audit.bound = bound;
    audit.sampledCycles = est.cycles;
    audit.intervals = est.intervals;
    audit.exact = est.exact;

    Machine detailed(params);
    body(detailed);
    audit.detailedCycles = double(detailed.cycles());

    if (audit.detailedCycles > 0.0) {
        audit.relError =
            std::abs(audit.sampledCycles - audit.detailedCycles) /
            audit.detailedCycles;
    } else {
        audit.relError = audit.sampledCycles > 0.0 ? 1.0 : 0.0;
    }
    audit.ok = audit.exact ? audit.relError == 0.0
                           : audit.relError <= bound;
    return audit;
}

SamplingAudit
auditSampling(const MachineParams &params,
              const sample::SampleOptions &opts,
              const std::function<void(Machine &)> &body,
              double bound)
{
    Machine sampled(params);
    sample::SampleOptions sopts = opts;
    sopts.mode = sample::SimMode::Sampled;
    sample::SampleEstimate est =
        sample::runWith(sampled, sopts, [&] { body(sampled); });
    return auditEstimate(params, est, body, bound);
}

} // namespace check
} // namespace via
