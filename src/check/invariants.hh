/**
 * @file
 * Timing-model invariant checking (the validation subsystem).
 *
 * TimingInvariantChecker attaches to a Machine as a TimingObserver
 * and verifies, per instruction and at end of run, a catalog of
 * internal-consistency invariants the analytic timing model must
 * uphold (see docs/validation.md for the full list):
 *
 *   - per-instruction lifecycle ticks are monotone
 *     (dispatch <= issue <= complete <= commit),
 *   - commit ticks are monotone across instructions (in-order
 *     commit),
 *   - every cache access is classified exactly once
 *     (accesses == hits + misses + MSHR merges, per level),
 *   - DRAM busy cycles reconcile with the pipe's bookings exactly,
 *     and never exceed the pipe's booked horizon,
 *   - CAM counters reconcile (comparisons == banks x bank size;
 *     hits/inserts bounded by searches; live count bounded by
 *     inserts and capacity),
 *   - SSPM traffic and CAM searches agree
 *     (camWrites <= searches <= camReads + camWrites),
 *   - FIVU occupancy covers its SSPM port phases,
 *   - trace roll-up busy + idle == run cycles per component.
 *
 * The checker is observation-only: it never feeds anything back into
 * the schedule, so timing with and without it attached is
 * bit-identical. Set VIA_CHECK=1 in the environment to auto-attach a
 * checker to every Machine; its checks then run in the Machine
 * destructor and abort the process on violation, which turns every
 * existing test binary into an invariant regression net.
 */

#ifndef VIA_CHECK_INVARIANTS_HH
#define VIA_CHECK_INVARIANTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/ooo_core.hh"
#include "simcore/types.hh"

namespace via
{

class Machine;

namespace check
{

/** True when VIA_CHECK is set to 1/on/true in the environment. */
bool envEnabled();

/** One recorded invariant violation. */
struct Violation
{
    std::string invariant; //!< short stable name, e.g. "inst-monotone"
    std::string detail;    //!< human-readable specifics
};

/** Machine-wide timing/counter invariant checker. */
class TimingInvariantChecker : public TimingObserver
{
  public:
    /** Attach to @p machine's core; detaches in the destructor. */
    explicit TimingInvariantChecker(Machine &machine);
    ~TimingInvariantChecker() override;

    TimingInvariantChecker(const TimingInvariantChecker &) = delete;
    TimingInvariantChecker &
    operator=(const TimingInvariantChecker &) = delete;

    // --- TimingObserver -------------------------------------------
    void onInstTiming(const Inst &inst,
                      const InstTiming &timing) override;
    void onTimingReset() override;

    // --- end-of-run checks ----------------------------------------

    /**
     * Run the aggregate (counter-reconciliation) checks against the
     * machine's current statistics. Idempotent: repeated calls do
     * not duplicate violations.
     */
    void finalize();

    /** finalize() and return whether no invariant was violated. */
    bool checkAll();

    /**
     * finalize() and, on violation, print the report to stderr and
     * exit — called from ~Machine when VIA_CHECK is set.
     */
    void checkOrDie();

    bool ok() const { return _violations.empty(); }
    const std::vector<Violation> &
    violations() const
    {
        return _violations;
    }
    /** Violations observed in total (recording caps at a limit). */
    std::uint64_t violationCount() const { return _violationCount; }
    std::uint64_t instsSeen() const { return _instsSeen; }

    /** Multi-line description of every recorded violation. */
    std::string report() const;

  private:
    void fail(const char *invariant, std::string detail);

    void checkCaches();
    void checkDram();
    void checkCam();
    void checkFivu();
    void checkCore();
    void checkTrace();

    /** Cap on recorded (not counted) violations. */
    static constexpr std::size_t maxRecorded = 16;

    Machine &_machine;
    std::vector<Violation> _violations;
    std::uint64_t _violationCount = 0;
    std::uint64_t _instsSeen = 0;
    Tick _lastCommit = 0;
    /** A timing reset happened: skip cross-reset bound checks. */
    bool _timingReset = false;
    bool _finalized = false;
};

} // namespace check
} // namespace via

#endif // VIA_CHECK_INVARIANTS_HH
