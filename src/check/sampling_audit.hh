/**
 * @file
 * Sampled-vs-detailed error-bound audit (the validation subsystem's
 * third leg, next to differential fuzzing and the timing-invariant
 * catalog; see docs/validation.md and docs/sampling.md).
 *
 * Interval sampling extrapolates whole-run cycles from measured
 * windows, so its one quantitative promise is a bounded error
 * against the detailed model. The audit makes that promise
 * checkable on any small input: run the same kernel body once
 * detailed and once sampled on identically configured machines and
 * compare end-to-end cycles. `via_sim mode=sampled` runs it
 * automatically under VIA_CHECK=1 and folds the verdict into its
 * exit code, and tests/test_sample.cc pins the bound in ctest.
 *
 * An estimate flagged `exact` (the run was too short to ever
 * fast-forward) must match the detailed cycle count to the cycle —
 * the sampled machine executed every instruction detailed, so any
 * difference is a policy-plumbing bug, not sampling noise.
 */

#ifndef VIA_CHECK_SAMPLING_AUDIT_HH
#define VIA_CHECK_SAMPLING_AUDIT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "cpu/core_params.hh"
#include "sample/sampling.hh"

namespace via
{

class Machine;

namespace check
{

/** Outcome of one sampled-vs-detailed comparison. */
struct SamplingAudit
{
    double detailedCycles = 0.0; //!< exact makespan, detailed run
    double sampledCycles = 0.0;  //!< extrapolated (or exact) cycles
    double relError = 0.0; //!< |sampled - detailed| / detailed
    double bound = 0.0;    //!< the tolerance this audit applied
    std::uint64_t intervals = 0; //!< measured windows in the estimate
    bool exact = false;          //!< the sampled run never fast-forwarded
    bool ok = false;             //!< within bound (exact: to the cycle)

    /** One-line human-readable verdict. */
    std::string summary() const;
};

/**
 * Audit an existing estimate: run @p body once on a fresh detailed
 * machine configured with @p params and compare against @p est.
 * Use this when the sampled run already happened (via_sim).
 */
SamplingAudit
auditEstimate(const MachineParams &params,
              const sample::SampleEstimate &est,
              const std::function<void(Machine &)> &body,
              double bound = 0.05);

/**
 * Run @p body under detailed and sampled execution on identically
 * configured machines and compare end-to-end cycles.
 */
SamplingAudit
auditSampling(const MachineParams &params,
              const sample::SampleOptions &opts,
              const std::function<void(Machine &)> &body,
              double bound = 0.05);

} // namespace check
} // namespace via

#endif // VIA_CHECK_SAMPLING_AUDIT_HH
