#include "power/area_model.hh"

#include <cmath>

#include "simcore/log.hh"

namespace via
{

namespace
{

// Power-law fits over the paper's six synthesis points.
constexpr double AREA_K = 0.01695;
constexpr double AREA_SIZE_EXP = 1.06;
constexpr double AREA_PORT_EXP = 0.68;

constexpr double LEAK_K = 0.0284;
constexpr double LEAK_SIZE_EXP = 0.92;
constexpr double LEAK_PORT_EXP = 0.46;

struct Anchor
{
    std::uint64_t kb;
    std::uint32_t ports;
    double area;
    double leak;
};

// Table II plus the two 8 KB points from Section VI-B.
constexpr Anchor anchors[] = {
    {16, 4, 0.827, 0.69}, {16, 2, 0.515, 0.50},
    {8, 4, 0.430, 0.39},  {8, 2, 0.290, 0.28},
    {4, 4, 0.180, 0.22},  {4, 2, 0.118, 0.14},
};

} // namespace

AreaEstimate
AreaModel::estimate(std::uint64_t sspm_kb, std::uint32_t ports)
{
    via_assert(sspm_kb > 0 && ports > 0, "bad SSPM configuration");
    AreaEstimate e;
    e.areaMm2 = AREA_K * std::pow(double(sspm_kb), AREA_SIZE_EXP) *
                std::pow(double(ports), AREA_PORT_EXP);
    e.leakageMw = LEAK_K * std::pow(double(sspm_kb), LEAK_SIZE_EXP) *
                  std::pow(double(ports), LEAK_PORT_EXP);
    return e;
}

std::optional<AreaEstimate>
AreaModel::paperAnchor(std::uint64_t sspm_kb, std::uint32_t ports)
{
    for (const Anchor &a : anchors)
        if (a.kb == sspm_kb && a.ports == ports)
            return AreaEstimate{a.area, a.leak};
    return std::nullopt;
}

} // namespace via
