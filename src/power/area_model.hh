/**
 * @file
 * Analytic SSPM area/leakage model (paper Table II + Section VI-B).
 *
 * The paper synthesizes the SSPM with Cadence Genus at 22 nm/2 GHz,
 * using the Live Value Table technique for multi-porting, and reports
 * six (size, ports) points. We fit a power law
 *     metric = k * sizeKB^a * ports^b
 * to those points (max error < 10%) so any configuration in the
 * design space can be costed. The paper's exact numbers are kept as
 * calibration anchors and reported next to the model output by
 * bench/table2_area.
 */

#ifndef VIA_POWER_AREA_MODEL_HH
#define VIA_POWER_AREA_MODEL_HH

#include <cstdint>
#include <optional>

#include "via/via_config.hh"

namespace via
{

/** Area and leakage estimate for one SSPM configuration. */
struct AreaEstimate
{
    double areaMm2 = 0.0;
    double leakageMw = 0.0;
};

/** Fitted 22 nm synthesis model. */
class AreaModel
{
  public:
    /** Model estimate for an arbitrary configuration. */
    static AreaEstimate estimate(std::uint64_t sspm_kb,
                                 std::uint32_t ports);

    static AreaEstimate
    estimate(const ViaConfig &cfg)
    {
        return estimate(cfg.sspmBytes / 1024, cfg.ports);
    }

    /**
     * The paper's synthesis result if this configuration is one of
     * the six published points.
     */
    static std::optional<AreaEstimate>
    paperAnchor(std::uint64_t sspm_kb, std::uint32_t ports);

    /** A 22 nm Haswell core is ~17 mm^2 [32]; used for the area-% row. */
    static constexpr double haswellCoreMm2 = 17.0;
};

} // namespace via

#endif // VIA_POWER_AREA_MODEL_HH
