/**
 * @file
 * Event-energy accounting (the paper uses McPAT + CACTI at 22 nm,
 * 0.8 V; Section V-A).
 *
 * Dynamic energy is per-event: each statistic counter in the machine
 * maps to a CACTI-class per-access energy. Leakage integrates the
 * SSPM leakage (area model) and a core leakage constant over the
 * simulated time. The absolute joules matter less than the ratio
 * between baseline and VIA runs — the paper's headline is a 3.8x
 * total-energy reduction for CSB SpMV.
 */

#ifndef VIA_POWER_ENERGY_MODEL_HH
#define VIA_POWER_ENERGY_MODEL_HH

#include <cstdint>

#include "simcore/types.hh"

namespace via
{

class Machine;

/**
 * Per-event energies in picojoules (22 nm class numbers).
 *
 * The per-instruction overhead covers the whole out-of-order engine
 * (fetch, rename, wakeup/select, ROB) — McPAT attributes most of a
 * core's dynamic power there, a few hundred pJ per instruction for
 * a Haswell-class design.
 */
struct EnergyParams
{
    double instOverheadPj = 180.0; //!< OoO engine per instruction
    double scalarOpPj = 15.0;
    double vectorOpPj = 55.0;      //!< 256-bit ALU op
    double l1AccessPj = 20.0;
    double l2AccessPj = 80.0;
    double dramPjPerByte = 60.0;
    double sspmElementPj = 2.0;    //!< one 4-byte SSPM port transfer
    double camComparePj = 0.05;    //!< one comparator activation
    double coreLeakageMw = 150.0;  //!< whole-core leakage
    double clockGhz = 2.0;
};

/** Breakdown of one run's energy. */
struct EnergyBreakdown
{
    double corePj = 0.0;   //!< pipeline + ALUs
    double cachePj = 0.0;  //!< L1 + L2 dynamic
    double dramPj = 0.0;
    double sspmPj = 0.0;   //!< SSPM + CAM dynamic
    double leakagePj = 0.0;

    double
    totalPj() const
    {
        return corePj + cachePj + dramPj + sspmPj + leakagePj;
    }
};

/** Compute the breakdown from a machine's counters. */
EnergyBreakdown computeEnergy(const Machine &m,
                              const EnergyParams &params = {});

class MultiMachine;

/**
 * The breakdown for a multi-core machine: per-core terms summed
 * over every core, plus the shared level the cores' private DRAM
 * counters never see (LLC tag walks at the L2 access energy, shared
 * DRAM traffic per byte). Leakage integrates every core over the
 * makespan — an early-finishing core keeps leaking until the
 * slowest core commits its last instruction.
 */
EnergyBreakdown computeEnergyMulti(const MultiMachine &mm,
                                   const EnergyParams &params = {});

} // namespace via

#endif // VIA_POWER_ENERGY_MODEL_HH
