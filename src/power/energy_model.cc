#include "power/energy_model.hh"

#include "cpu/machine.hh"
#include "cpu/multi_machine.hh"

namespace via
{

EnergyBreakdown
computeEnergy(const Machine &m, const EnergyParams &params)
{
    EnergyBreakdown e;
    const CoreStats &core = m.core().stats();

    e.corePj = double(core.insts) * params.instOverheadPj +
               double(core.scalarInsts) * params.scalarOpPj +
               double(core.vectorInsts) * params.vectorOpPj;

    const MemSystem &mem = m.memSystem();
    for (std::size_t lvl = 0; lvl < mem.numLevels(); ++lvl) {
        const CacheStats &cs = mem.level(lvl).stats();
        double per = lvl == 0 ? params.l1AccessPj
                              : params.l2AccessPj;
        e.cachePj += double(cs.accesses()) * per;
    }
    const DramStats &ds = mem.dram().stats();
    e.dramPj = double(ds.bytesRead + ds.bytesWritten) *
               params.dramPjPerByte;

    // The accelerator's share comes from the backend: SSPM/CAM
    // events for VIA, stream transfers for SSR, row-buffer tag
    // matches for IndexMAC.
    e.sspmPj = m.backend().accelDynamicPj(params.sspmElementPj,
                                          params.camComparePj);

    // Leakage: core + accelerator over the simulated interval.
    double seconds = double(m.cycles()) /
                     (params.clockGhz * 1e9);
    double accel_leak_mw = m.backend().accelLeakageMw();
    e.leakagePj = (params.coreLeakageMw + accel_leak_mw) * 1e-3 *
                  seconds * 1e12;
    return e;
}

EnergyBreakdown
computeEnergyMulti(const MultiMachine &mm,
                   const EnergyParams &params)
{
    EnergyBreakdown total;
    double seconds = double(mm.cycles()) /
                     (params.clockGhz * 1e9);
    for (unsigned i = 0; i < mm.cores(); ++i) {
        const Machine &m = mm.core(i);
        EnergyBreakdown e = computeEnergy(m, params);
        total.corePj += e.corePj;
        total.cachePj += e.cachePj;
        total.dramPj += e.dramPj; // private DRAM: zero in practice
        total.sspmPj += e.sspmPj;
        // Re-integrate this core's leakage over the makespan: the
        // per-machine breakdown stops at the core's own commit
        // front, but an idle core leaks until the slowest finishes.
        double accel_leak_mw = m.backend().accelLeakageMw();
        total.leakagePj += (params.coreLeakageMw + accel_leak_mw) *
                           1e-3 * seconds * 1e12;
    }
    // The shared level: LLC tag walks cost an L2-class access,
    // misses pay the single shared DRAM per byte.
    total.cachePj += double(mm.llc().tags().stats().accesses()) *
                     params.l2AccessPj;
    const DramStats &ds = mm.llc().dram().stats();
    total.dramPj += double(ds.bytesRead + ds.bytesWritten) *
                    params.dramPjPerByte;
    return total;
}

} // namespace via
