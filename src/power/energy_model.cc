#include "power/energy_model.hh"

#include "cpu/machine.hh"
#include "power/area_model.hh"

namespace via
{

EnergyBreakdown
computeEnergy(const Machine &m, const EnergyParams &params)
{
    EnergyBreakdown e;
    const CoreStats &core = m.core().stats();

    e.corePj = double(core.insts) * params.instOverheadPj +
               double(core.scalarInsts) * params.scalarOpPj +
               double(core.vectorInsts) * params.vectorOpPj;

    const MemSystem &mem = m.memSystem();
    for (std::size_t lvl = 0; lvl < mem.numLevels(); ++lvl) {
        const CacheStats &cs = mem.level(lvl).stats();
        double per = lvl == 0 ? params.l1AccessPj
                              : params.l2AccessPj;
        e.cachePj += double(cs.accesses()) * per;
    }
    const DramStats &ds = mem.dram().stats();
    e.dramPj = double(ds.bytesRead + ds.bytesWritten) *
               params.dramPjPerByte;

    const SspmStats &ss = m.sspm().stats();
    e.sspmPj = double(ss.elementAccesses()) * params.sspmElementPj;
    const IndexTableStats &its = m.sspm().indexTable().stats();
    e.sspmPj += double(its.comparisons) * params.camComparePj;

    // Leakage: core + SSPM over the simulated interval.
    double seconds = double(m.cycles()) /
                     (params.clockGhz * 1e9);
    double sspm_leak_mw =
        AreaModel::estimate(m.sspm().config()).leakageMw;
    e.leakagePj = (params.coreLeakageMw + sspm_leak_mw) * 1e-3 *
                  seconds * 1e12;
    return e;
}

} // namespace via
