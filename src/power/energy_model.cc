#include "power/energy_model.hh"

#include "cpu/machine.hh"
#include "cpu/multi_machine.hh"
#include "power/area_model.hh"

namespace via
{

EnergyBreakdown
computeEnergy(const Machine &m, const EnergyParams &params)
{
    EnergyBreakdown e;
    const CoreStats &core = m.core().stats();

    e.corePj = double(core.insts) * params.instOverheadPj +
               double(core.scalarInsts) * params.scalarOpPj +
               double(core.vectorInsts) * params.vectorOpPj;

    const MemSystem &mem = m.memSystem();
    for (std::size_t lvl = 0; lvl < mem.numLevels(); ++lvl) {
        const CacheStats &cs = mem.level(lvl).stats();
        double per = lvl == 0 ? params.l1AccessPj
                              : params.l2AccessPj;
        e.cachePj += double(cs.accesses()) * per;
    }
    const DramStats &ds = mem.dram().stats();
    e.dramPj = double(ds.bytesRead + ds.bytesWritten) *
               params.dramPjPerByte;

    const SspmStats &ss = m.sspm().stats();
    e.sspmPj = double(ss.elementAccesses()) * params.sspmElementPj;
    const IndexTableStats &its = m.sspm().indexTable().stats();
    e.sspmPj += double(its.comparisons) * params.camComparePj;

    // Leakage: core + SSPM over the simulated interval.
    double seconds = double(m.cycles()) /
                     (params.clockGhz * 1e9);
    double sspm_leak_mw =
        AreaModel::estimate(m.sspm().config()).leakageMw;
    e.leakagePj = (params.coreLeakageMw + sspm_leak_mw) * 1e-3 *
                  seconds * 1e12;
    return e;
}

EnergyBreakdown
computeEnergyMulti(const MultiMachine &mm,
                   const EnergyParams &params)
{
    EnergyBreakdown total;
    double seconds = double(mm.cycles()) /
                     (params.clockGhz * 1e9);
    for (unsigned i = 0; i < mm.cores(); ++i) {
        const Machine &m = mm.core(i);
        EnergyBreakdown e = computeEnergy(m, params);
        total.corePj += e.corePj;
        total.cachePj += e.cachePj;
        total.dramPj += e.dramPj; // private DRAM: zero in practice
        total.sspmPj += e.sspmPj;
        // Re-integrate this core's leakage over the makespan: the
        // per-machine breakdown stops at the core's own commit
        // front, but an idle core leaks until the slowest finishes.
        double sspm_leak_mw =
            AreaModel::estimate(m.sspm().config()).leakageMw;
        total.leakagePj += (params.coreLeakageMw + sspm_leak_mw) *
                           1e-3 * seconds * 1e12;
    }
    // The shared level: LLC tag walks cost an L2-class access,
    // misses pay the single shared DRAM per byte.
    total.cachePj += double(mm.llc().tags().stats().accesses()) *
                     params.l2AccessPj;
    const DramStats &ds = mm.llc().dram().stats();
    total.dramPj += double(ds.bytesRead + ds.bytesWritten) *
                    params.dramPjPerByte;
    return total;
}

} // namespace via
