#include "via/fivu.hh"

#include <algorithm>

#include "simcore/log.hh"
#include "simcore/selfprof.hh"
#include "simcore/serialize.hh"

namespace via
{

Tick
Fivu::bookPorts(Tick when, std::uint32_t elems)
{
    // Element moves share the SSPM ports; consecutive VIA
    // instructions pipeline through the pre/post-processing stages,
    // so the ports behave as a bandwidth resource, not a lock.
    Tick last = when;
    for (std::uint32_t e = 0; e < elems; ++e)
        last = _ports.acquire(when + e / _config.ports);
    return last + 1;
}

Fivu::Timing
Fivu::dispatch(const Inst &inst, Tick ready_at, const OpLatencies &lat)
{
    selfprof::Scope prof(selfprof::Domain::Fivu);
    via_assert(inst.isVia(), "non-VIA inst dispatched to the FIVU: ",
               mnemonic(inst.op));

    Tick exec = lat.latencyOf(inst.op);

    // One VIA instruction enters the FIVU per cycle (issue stage);
    // its SSPM phases contend for ports with its neighbours.
    Tick start = std::max(ready_at, _nextFree);
    _nextFree = start + 1;

    Tick read_done = inst.sspmReads
                         ? bookPorts(start, inst.sspmReads)
                         : start + 1;
    Tick exec_done = read_done + exec;
    Tick complete = inst.sspmWrites
                        ? bookPorts(exec_done, inst.sspmWrites)
                        : exec_done;

    ++_stats.viaInsts;
    _stats.busyCycles += complete - start;
    _stats.sspmReadCycles += portCycles(inst.sspmReads);
    _stats.sspmWriteCycles += portCycles(inst.sspmWrites);

    if (_trace != nullptr && _trace->enabled()) {
        auto span = [&](TraceEventKind kind, TraceComponent comp,
                        Tick lo, Tick hi, std::uint64_t a0) {
            TraceEvent ev;
            ev.kind = kind;
            ev.comp = comp;
            ev.op = inst.op;
            ev.start = lo;
            ev.end = hi;
            ev.a0 = a0;
            _trace->emit(ev);
        };
        span(TraceEventKind::FivuBusy, TraceComponent::Fivu, start,
             complete, inst.seq);
        if (inst.sspmReads)
            span(TraceEventKind::SspmReadPhase, TraceComponent::Sspm,
                 start, read_done, inst.sspmReads);
        if (inst.sspmWrites)
            span(TraceEventKind::SspmWritePhase,
                 TraceComponent::Sspm, exec_done, complete,
                 inst.sspmWrites);
        // A phase spanning more than one port cycle means lanes
        // serialized on the SSPM banks.
        Tick extra = portCycles(inst.sspmReads) +
                     portCycles(inst.sspmWrites);
        extra -= (inst.sspmReads ? 1 : 0) +
                 (inst.sspmWrites ? 1 : 0);
        if (extra > 0)
            span(TraceEventKind::SspmPortConflict,
                 TraceComponent::Sspm, complete, complete, extra);
    }
    return Timing{start, complete};
}

void
Fivu::saveState(Serializer &ser) const
{
    ser.tag("FIVU");
    ser.put(_nextFree);
    _ports.saveState(ser);
    ser.put(_stats.viaInsts);
    ser.put(_stats.busyCycles);
    ser.put(_stats.sspmReadCycles);
    ser.put(_stats.sspmWriteCycles);
}

void
Fivu::loadState(Deserializer &des)
{
    des.expectTag("FIVU");
    _nextFree = des.get<Tick>();
    _ports.loadState(des);
    _stats.viaInsts = des.get<std::uint64_t>();
    _stats.busyCycles = des.get<std::uint64_t>();
    _stats.sspmReadCycles = des.get<std::uint64_t>();
    _stats.sspmWriteCycles = des.get<std::uint64_t>();
}

} // namespace via
