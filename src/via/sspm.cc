#include "via/sspm.hh"

#include <algorithm>
#include <sstream>

#include "simcore/log.hh"
#include "simcore/serialize.hh"

namespace via
{

std::string
ViaConfig::name() const
{
    std::ostringstream os;
    os << (sspmBytes / 1024) << '_' << ports << 'p';
    return os.str();
}

ViaConfig
ViaConfig::make(std::uint64_t sspm_kb, std::uint32_t ports)
{
    ViaConfig cfg;
    cfg.sspmBytes = sspm_kb * 1024;
    cfg.ports = ports;
    // The paper pairs an 8 KB SSPM with a 2 KB CAM; we keep that 4:1
    // ratio across all sizes.
    cfg.camBytes = cfg.sspmBytes / 4;
    return cfg;
}

Sspm::Sspm(const ViaConfig &config)
    : _config(config),
      _sram(config.sramEntries(), 0),
      _valid(config.sramEntries(), false),
      _indexTable(std::uint32_t(config.camEntries()),
                  config.bankEntries)
{
    via_assert(config.sramEntries() > 0, "SSPM has no entries");
    via_assert(config.camEntries() <= config.sramEntries(),
               "CAM cannot track more entries than the SRAM holds");
    via_assert(config.ports > 0, "SSPM needs at least one port");
}

void
Sspm::setTrace(TraceManager *trace)
{
    _indexTable.setTrace(trace);
}

void
Sspm::checkIdx(std::uint64_t idx) const
{
    via_assert(idx < _sram.size(), "SSPM index ", idx,
               " out of range (", _sram.size(), " entries); the "
               "kernel must tile its working set to the scratchpad");
}

void
Sspm::writeDirect(std::uint64_t idx, std::uint64_t raw)
{
    checkIdx(idx);
    ++_stats.directWrites;
    _sram[idx] = raw;
    _valid[idx] = true;
}

std::uint64_t
Sspm::readDirect(std::uint64_t idx)
{
    checkIdx(idx);
    ++_stats.directReads;
    if (!_valid[idx]) {
        ++_stats.invalidReads;
        return 0;
    }
    return _sram[idx];
}

bool
Sspm::validAt(std::uint64_t idx) const
{
    checkIdx(idx);
    return _valid[idx];
}

std::int32_t
Sspm::camWrite(std::int64_t key, std::uint64_t raw)
{
    ++_stats.camWrites;
    bool inserted = false;
    std::int32_t slot = _indexTable.findOrInsert(key, inserted);
    if (slot == IndexTable::NO_SLOT)
        return slot;
    checkIdx(std::uint64_t(slot));
    _sram[std::uint64_t(slot)] = raw;
    _valid[std::uint64_t(slot)] = true;
    return slot;
}

std::uint64_t
Sspm::camRead(std::int64_t key, bool &found)
{
    ++_stats.camReads;
    std::int32_t slot = _indexTable.search(key);
    if (slot == IndexTable::NO_SLOT) {
        found = false;
        return 0;
    }
    found = true;
    return _sram[std::uint64_t(slot)];
}

std::int32_t
Sspm::camUpdate(std::int64_t key, std::uint64_t raw,
                const std::function<std::uint64_t(
                    std::uint64_t, std::uint64_t)> &combine)
{
    ++_stats.camWrites;
    bool inserted = false;
    std::int32_t slot = _indexTable.findOrInsert(key, inserted);
    if (slot == IndexTable::NO_SLOT)
        return slot;
    auto uslot = std::uint64_t(slot);
    checkIdx(uslot);
    if (inserted) {
        _sram[uslot] = raw;
    } else {
        ++_stats.camReads;
        _sram[uslot] = combine(_sram[uslot], raw);
    }
    _valid[uslot] = true;
    return slot;
}

std::int64_t
Sspm::keyAt(std::uint32_t slot) const
{
    return _indexTable.keyAt(slot);
}

std::uint64_t
Sspm::valueAt(std::uint32_t slot) const
{
    via_assert(slot < _indexTable.count(),
               "valueAt(", slot, ") beyond element count");
    return _sram[slot];
}

void
Sspm::clearAll()
{
    // Flash zeroing: a single-cycle wide reset of the valid bitmap
    // plus the index table and element count register.
    std::fill(_valid.begin(), _valid.end(), false);
    _indexTable.clear();
    ++_stats.bitmapClears;
}

void
Sspm::clearSegment(std::uint64_t lo, std::uint64_t hi)
{
    via_assert(lo <= hi && hi <= _valid.size(),
               "bad clear segment [", lo, ", ", hi, ")");
    std::fill(_valid.begin() + std::ptrdiff_t(lo),
              _valid.begin() + std::ptrdiff_t(hi), false);
    ++_stats.bitmapClears;
}

void
Sspm::saveState(Serializer &ser) const
{
    ser.tag("SSPM");
    ser.put(std::uint64_t(_sram.size()));
    ser.putVec(_sram);
    ser.putBoolVec(_valid);
    ser.put(_stats.directReads);
    ser.put(_stats.directWrites);
    ser.put(_stats.camReads);
    ser.put(_stats.camWrites);
    ser.put(_stats.bitmapClears);
    ser.put(_stats.invalidReads);
    _indexTable.saveState(ser);
}

void
Sspm::loadState(Deserializer &des)
{
    des.expectTag("SSPM");
    if (des.get<std::uint64_t>() != _sram.size())
        throw SerializeError("SSPM geometry mismatch");
    auto sram = des.getVec<std::uint64_t>(_sram.size());
    auto valid = des.getBoolVec();
    if (sram.size() != _sram.size() || valid.size() != _valid.size())
        throw SerializeError("SSPM geometry mismatch");
    _sram = std::move(sram);
    _valid = std::move(valid);
    _stats.directReads = des.get<std::uint64_t>();
    _stats.directWrites = des.get<std::uint64_t>();
    _stats.camReads = des.get<std::uint64_t>();
    _stats.camWrites = des.get<std::uint64_t>();
    _stats.bitmapClears = des.get<std::uint64_t>();
    _stats.invalidReads = des.get<std::uint64_t>();
    _indexTable.loadState(des);
}

} // namespace via
