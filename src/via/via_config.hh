/**
 * @file
 * Sizing parameters for the VIA hardware (paper Table I / Section VI).
 */

#ifndef VIA_VIA_VIA_CONFIG_HH
#define VIA_VIA_VIA_CONFIG_HH

#include <cstdint>
#include <string>

#include "simcore/types.hh"

namespace via
{

/** SSPM + FIVU configuration. Names like "16_2p" follow the paper. */
struct ViaConfig
{
    std::uint64_t sspmBytes = 16 * 1024; //!< SRAM capacity
    std::uint32_t ports = 2;             //!< SSPM read/write ports
    std::uint64_t camBytes = 4 * 1024;   //!< index table capacity
    std::uint32_t valueBytes = 4;        //!< SRAM block granularity
    std::uint32_t keyBytes = 4;          //!< index width in the CAM
    std::uint32_t bankEntries = 8;       //!< CAM bank size (clock gate)

    /** Entries in the direct-mapped SRAM. */
    std::uint64_t
    sramEntries() const
    {
        return sspmBytes / valueBytes;
    }

    /** Entries in the CAM index table. */
    std::uint64_t
    camEntries() const
    {
        return camBytes / keyBytes;
    }

    /** The paper's configuration label, e.g. "16_2p". */
    std::string name() const;

    /** Named configurations from Table I. */
    static ViaConfig make(std::uint64_t sspm_kb, std::uint32_t ports);
};

} // namespace via

#endif // VIA_VIA_VIA_CONFIG_HH
