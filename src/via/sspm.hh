/**
 * @file
 * The Smart Scratchpad Memory (paper Section IV-A).
 *
 * Three building blocks:
 *   1. the SRAM cells holding values (raw 64-bit containers here;
 *      capacity is counted in valueBytes blocks as in the paper);
 *   2. the valid bitmap used in direct-mapped mode, with flash clear;
 *   3. the index-tracking logic (IndexTable) providing CAM behaviour.
 *
 * Direct-mapped mode: the input index addresses the SRAM directly.
 * CAM mode: the index searches the table; matches yield the SRAM
 * slot, misses on writes allocate the next free slot in order.
 *
 * Both modes coexist: CAM slots grow from entry 0 while direct-mode
 * regions may use higher offsets (the SpMM kernel relies on this).
 */

#ifndef VIA_VIA_SSPM_HH
#define VIA_VIA_SSPM_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "via/index_table.hh"
#include "via/via_config.hh"

namespace via
{

/** SSPM access statistics (element granularity). */
struct SspmStats
{
    std::uint64_t directReads = 0;
    std::uint64_t directWrites = 0;
    std::uint64_t camReads = 0;
    std::uint64_t camWrites = 0;
    std::uint64_t bitmapClears = 0;
    std::uint64_t invalidReads = 0; //!< direct reads of unwritten slots

    std::uint64_t
    elementAccesses() const
    {
        return directReads + directWrites + camReads + camWrites;
    }
};

/** Functional model of the smart scratchpad. */
class Sspm
{
  public:
    explicit Sspm(const ViaConfig &config);

    const ViaConfig &config() const { return _config; }

    // --- direct-mapped mode -------------------------------------

    /** Write one value; sets the valid bit. */
    void writeDirect(std::uint64_t idx, std::uint64_t raw);

    /** Read one value; unwritten entries read as zero. */
    std::uint64_t readDirect(std::uint64_t idx);

    /** True if the entry has been written since the last clear. */
    bool validAt(std::uint64_t idx) const;

    // --- CAM mode ------------------------------------------------

    /**
     * Insert-or-overwrite by key (vidx.load.c).
     * @return the slot used, or IndexTable::NO_SLOT on overflow
     */
    std::int32_t camWrite(std::int64_t key, std::uint64_t raw);

    /**
     * Read by key (the index-matching search).
     * @param found out: whether the key matched
     * @return the stored value, or zero when absent
     */
    std::uint64_t camRead(std::int64_t key, bool &found);

    /**
     * Read-modify-write by key: existing entries are combined with
     * @p raw via @p combine; absent keys are inserted with @p raw.
     * This is the union semantics SpMA relies on.
     *
     * @return the slot used, or NO_SLOT on overflow
     */
    std::int32_t camUpdate(std::int64_t key, std::uint64_t raw,
                           const std::function<std::uint64_t(
                               std::uint64_t, std::uint64_t)> &combine);

    /** Key tracked at a CAM slot (vidx.keys). */
    std::int64_t keyAt(std::uint32_t slot) const;

    /** Value stored at a CAM slot (vidx.vals). */
    std::uint64_t valueAt(std::uint32_t slot) const;

    /** Element count register. */
    std::uint32_t count() const { return _indexTable.count(); }

    /** True when the CAM cannot take another distinct key. */
    bool camFull() const { return _indexTable.full(); }

    /**
     * Valid bits currently set (direct-mode pressure). Counted on
     * demand — inspection/watchpoint use only, not a hot path.
     */
    std::size_t
    validCount() const
    {
        std::size_t n = 0;
        for (bool v : _valid)
            if (v)
                ++n;
        return n;
    }

    /** Raw SRAM word (debugger inspection; no stats side effects). */
    std::uint64_t
    rawAt(std::uint64_t idx) const
    {
        return idx < _sram.size() ? _sram[idx] : 0;
    }

    // --- clearing ------------------------------------------------

    /** vidx.clear full mode: bitmap, index table, element count. */
    void clearAll();

    /** vidx.clear segment mode: valid bits in [lo, hi). */
    void clearSegment(std::uint64_t lo, std::uint64_t hi);

    // --- stats ---------------------------------------------------

    SspmStats &stats() { return _stats; }
    const SspmStats &stats() const { return _stats; }
    IndexTable &indexTable() { return _indexTable; }
    const IndexTable &indexTable() const { return _indexTable; }

    /** Serialize SRAM contents, valid bitmap, stats, index table. */
    void saveState(Serializer &ser) const;
    /** Restore state saved by saveState; validates the geometry. */
    void loadState(Deserializer &des);

    /** Attach a trace sink (forwarded to the index table). */
    void setTrace(TraceManager *trace);

  private:
    void checkIdx(std::uint64_t idx) const;

    ViaConfig _config;
    std::vector<std::uint64_t> _sram;
    std::vector<bool> _valid;
    IndexTable _indexTable;
    SspmStats _stats;
};

} // namespace via

#endif // VIA_VIA_SSPM_HH
