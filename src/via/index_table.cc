#include "via/index_table.hh"

#include "simcore/log.hh"
#include "simcore/serialize.hh"

namespace via
{

IndexTable::IndexTable(std::uint32_t capacity,
                       std::uint32_t bank_entries)
    : _capacity(capacity), _bankEntries(bank_entries)
{
    via_assert(capacity > 0, "index table needs capacity");
    via_assert(bank_entries > 0, "bank size must be positive");
    _keys.reserve(capacity);
}

void
IndexTable::accountSearch()
{
    ++_stats.searches;
    // Only banks containing tracked indices are searched; the rest
    // are clock-gated using the element count register.
    std::uint64_t live = count();
    std::uint64_t banks = (live + _bankEntries - 1) / _bankEntries;
    _stats.banksSearched += banks;
    _stats.comparisons += banks * _bankEntries;
}

std::int32_t
IndexTable::search(std::int64_t key)
{
    accountSearch();
    auto it = _lookup.find(key);
    if (it == _lookup.end()) {
        VIA_TRACE_STAGE(_trace, TraceEventKind::CamMiss,
                        TraceComponent::Cam, std::uint64_t(key));
        return NO_SLOT;
    }
    ++_stats.hits;
    VIA_TRACE_STAGE(_trace, TraceEventKind::CamMatch,
                    TraceComponent::Cam, std::uint64_t(key),
                    std::uint64_t(it->second));
    return it->second;
}

std::int32_t
IndexTable::findOrInsert(std::int64_t key, bool &inserted)
{
    inserted = false;
    accountSearch();
    auto it = _lookup.find(key);
    if (it != _lookup.end()) {
        ++_stats.hits;
        VIA_TRACE_STAGE(_trace, TraceEventKind::CamMatch,
                        TraceComponent::Cam, std::uint64_t(key),
                        std::uint64_t(it->second));
        return it->second;
    }
    if (full()) {
        ++_stats.overflows;
        VIA_TRACE_STAGE(_trace, TraceEventKind::CamOverflow,
                        TraceComponent::Cam, std::uint64_t(key));
        return NO_SLOT;
    }
    auto slot = std::int32_t(_keys.size());
    _keys.push_back(key);
    _lookup.emplace(key, slot);
    ++_stats.inserts;
    inserted = true;
    VIA_TRACE_STAGE(_trace, TraceEventKind::CamInsert,
                    TraceComponent::Cam, std::uint64_t(key),
                    std::uint64_t(slot));
    return slot;
}

std::int64_t
IndexTable::keyAt(std::uint32_t slot) const
{
    via_assert(slot < _keys.size(), "keyAt(", slot,
               ") beyond element count ", _keys.size());
    return _keys[slot];
}

void
IndexTable::clear()
{
    _keys.clear();
    _lookup.clear();
    ++_stats.clears;
    VIA_TRACE_STAGE(_trace, TraceEventKind::CamClear,
                    TraceComponent::Cam, 0);
}

void
IndexTable::saveState(Serializer &ser) const
{
    ser.tag("IDXT");
    ser.put(_capacity);
    ser.put(_bankEntries);
    ser.putVec(_keys);
    ser.put(_stats.searches);
    ser.put(_stats.comparisons);
    ser.put(_stats.banksSearched);
    ser.put(_stats.inserts);
    ser.put(_stats.hits);
    ser.put(_stats.overflows);
    ser.put(_stats.clears);
}

void
IndexTable::loadState(Deserializer &des)
{
    des.expectTag("IDXT");
    if (des.get<std::uint32_t>() != _capacity ||
        des.get<std::uint32_t>() != _bankEntries)
        throw SerializeError("index table geometry mismatch");
    _keys = des.getVec<std::int64_t>(_capacity);
    _lookup.clear();
    for (std::size_t slot = 0; slot < _keys.size(); ++slot)
        _lookup.emplace(_keys[slot], std::int32_t(slot));
    _stats.searches = des.get<std::uint64_t>();
    _stats.comparisons = des.get<std::uint64_t>();
    _stats.banksSearched = des.get<std::uint64_t>();
    _stats.inserts = des.get<std::uint64_t>();
    _stats.hits = des.get<std::uint64_t>();
    _stats.overflows = des.get<std::uint64_t>();
    _stats.clears = des.get<std::uint64_t>();
}

} // namespace via
