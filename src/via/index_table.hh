/**
 * @file
 * The SSPM's index-tracking logic (paper Section IV-A).
 *
 * A CAM over 32-bit indices, organized in banks of eight entries so
 * banks beyond the element count can be clock-gated. Insertion is
 * strictly in order (the next free slot), which is the paper's area
 * optimization over a fully general CAM. A shadow hash map provides
 * O(1) functional lookups while the bank arithmetic charges the
 * energy/comparison cost a real parallel search would incur.
 */

#ifndef VIA_VIA_INDEX_TABLE_HH
#define VIA_VIA_INDEX_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "simcore/types.hh"
#include "trace/trace.hh"

namespace via
{

class Serializer;
class Deserializer;

/** Statistics for the index-tracking logic. */
struct IndexTableStats
{
    std::uint64_t searches = 0;     //!< CAM search operations
    std::uint64_t comparisons = 0;  //!< entry comparators activated
    std::uint64_t banksSearched = 0;//!< banks not clock-gated
    std::uint64_t inserts = 0;
    std::uint64_t hits = 0;         //!< searches that matched
    std::uint64_t overflows = 0;    //!< inserts rejected: table full
    std::uint64_t clears = 0;
};

/** In-order-insert CAM with banked search accounting. */
class IndexTable
{
  public:
    /**
     * @param capacity total entries
     * @param bank_entries entries per clock-gated bank
     */
    IndexTable(std::uint32_t capacity, std::uint32_t bank_entries);

    /** Sentinel returned when a key is absent / table is full. */
    static constexpr std::int32_t NO_SLOT = -1;

    /**
     * CAM search: slot holding @p key, or NO_SLOT.
     * Accounts one parallel search over the live banks.
     */
    std::int32_t search(std::int64_t key);

    /**
     * Search and, if absent, insert in the next free slot.
     *
     * @param key the index to track
     * @param inserted out: true if a new slot was allocated
     * @return the slot, or NO_SLOT if absent and the table is full
     */
    std::int32_t findOrInsert(std::int64_t key, bool &inserted);

    /** Key stored at @p slot (for vidx.keys extraction). */
    std::int64_t keyAt(std::uint32_t slot) const;

    /** Element count register. */
    std::uint32_t count() const { return std::uint32_t(_keys.size()); }

    std::uint32_t capacity() const { return _capacity; }

    /** True when no further insert can succeed. */
    bool full() const { return count() >= _capacity; }

    /** Flash clear: index table and element count. */
    void clear();

    IndexTableStats &stats() { return _stats; }
    const IndexTableStats &stats() const { return _stats; }

    /** Serialize the tracked keys and statistics. */
    void saveState(Serializer &ser) const;
    /**
     * Restore state saved by saveState; validates the geometry and
     * rebuilds the shadow lookup map from the key array.
     */
    void loadState(Deserializer &des);

    /**
     * Attach a trace sink. CAM operations run in the functional
     * layer before the owning instruction is scheduled, so match/
     * miss/insert/overflow records are staged and stamped by the
     * core when the instruction's timing is known.
     */
    void setTrace(TraceManager *trace) { _trace = trace; }

  private:
    /** Charge one parallel search against the live banks. */
    void accountSearch();

    std::uint32_t _capacity;
    std::uint32_t _bankEntries;
    std::vector<std::int64_t> _keys; //!< slot -> key, insertion order
    std::unordered_map<std::int64_t, std::int32_t> _lookup;
    IndexTableStats _stats;
    TraceManager *_trace = nullptr;
};

} // namespace via

#endif // VIA_VIA_INDEX_TABLE_HH
