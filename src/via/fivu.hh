/**
 * @file
 * The Fused Indexed Vector Unit timing model (paper Section IV-B).
 *
 * A VIA instruction flows through:
 *   preprocessing-1: request generation toward the SSPM — one batch
 *     of `ports` element reads per cycle;
 *   preprocessing-2: forward/packing of the returned elements, with
 *     the stall logic holding the FIVU busy until all requests land;
 *   baseline VFU execution;
 *   post-processing: write-back, either to the VRF or back into the
 *     SSPM (again `ports` elements per cycle).
 *
 * The model serializes instructions on the unit (the paper's stall
 * logic) and charges ceil(elements/ports) cycles per SSPM phase.
 */

#ifndef VIA_VIA_FIVU_HH
#define VIA_VIA_FIVU_HH

#include <cstdint>

#include "cpu/fu_pool.hh"
#include "isa/inst.hh"
#include "simcore/types.hh"
#include "trace/trace.hh"
#include "via/via_config.hh"

namespace via
{

/** FIVU occupancy statistics. */
struct FivuStats
{
    std::uint64_t viaInsts = 0;
    std::uint64_t busyCycles = 0;
    std::uint64_t sspmReadCycles = 0;
    std::uint64_t sspmWriteCycles = 0;
};

/** Timing-only model of the FIVU pipeline extension. */
class Fivu
{
  public:
    explicit
    Fivu(const ViaConfig &config)
        : _config(config), _ports(config.ports)
    {}

    /** Result of dispatching one VIA instruction. */
    struct Timing
    {
        Tick start = 0;    //!< when the FIVU accepted the inst
        Tick complete = 0; //!< when the result is architecturally
                           //!< visible (VRF or SSPM)
    };

    /**
     * Dispatch a VIA instruction whose operands are ready at
     * @p ready_at. The instruction waits for the unit, then occupies
     * it for its SSPM read phase, executes, and performs its SSPM
     * write phase.
     */
    Timing dispatch(const Inst &inst, Tick ready_at,
                    const OpLatencies &lat);

    /** First tick the unit can accept a new instruction. */
    Tick nextFree() const { return _nextFree; }

    /** Reset timing (not statistics), e.g. between kernels. */
    void
    resetTiming()
    {
        _nextFree = 0;
        _ports.resetTiming();
    }

    FivuStats &stats() { return _stats; }
    const FivuStats &stats() const { return _stats; }

    /**
     * Attach a trace sink: unit occupancy and the SSPM pre/post
     * phases of every VIA instruction become span events.
     */
    void setTrace(TraceManager *trace) { _trace = trace; }

    /** Cycles to move @p elems elements through the SSPM ports. */
    Tick
    portCycles(std::uint32_t elems) const
    {
        return elems == 0
                   ? 0
                   : (elems + _config.ports - 1) / _config.ports;
    }

    /** Serialize timing state and statistics. */
    void saveState(Serializer &ser) const;
    /** Restore state saved by saveState. */
    void loadState(Deserializer &des);

  private:
    /** Book @p elems SSPM port slots at or after @p when.
     *  @return the cycle after the last booked slot */
    Tick bookPorts(Tick when, std::uint32_t elems);

    ViaConfig _config;
    Resource _ports; //!< SSPM ports: `ports` element moves per cycle
    Tick _nextFree = 0;
    FivuStats _stats;
    TraceManager *_trace = nullptr;
};

} // namespace via

#endif // VIA_VIA_FIVU_HH
