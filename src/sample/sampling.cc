#include "sample/sampling.hh"

#include <cmath>

#include "simcore/log.hh"

namespace via
{
namespace sample
{

SimMode
modeFromString(const std::string &text)
{
    if (text == "detailed")
        return SimMode::Detailed;
    if (text == "functional")
        return SimMode::Functional;
    if (text == "sampled")
        return SimMode::Sampled;
    via_fatal("unknown mode '", text,
              "' (detailed|functional|sampled)");
}

SampleOptions
SampleOptions::fromConfig(const Config &cfg)
{
    SampleOptions opts;
    opts.mode = modeFromString(cfg.getString("mode", "detailed"));
    opts.interval = cfg.getUInt("sample_interval", opts.interval);
    opts.warmup = cfg.getUInt("sample_warmup", opts.warmup);
    opts.measure = cfg.getUInt("sample_measure", opts.measure);
    if (opts.mode == SimMode::Sampled) {
        if (opts.measure == 0)
            via_fatal("sample_measure must be positive");
        if (opts.warmup + opts.measure > opts.interval)
            via_fatal("sample_warmup + sample_measure (",
                      opts.warmup + opts.measure,
                      ") exceeds sample_interval (", opts.interval,
                      ")");
    }
    return opts;
}

void
addSampleOptions(Options &opts)
{
    SampleOptions d;
    opts.addString("mode", "detailed",
                   "simulation mode: detailed|functional|sampled")
        .addUInt("sample_interval", d.interval,
                 "instructions per sampling unit", 1)
        .addUInt("sample_warmup", d.warmup,
                 "detailed warmup instructions per unit")
        .addUInt("sample_measure", d.measure,
                 "measured instructions per unit", 1);
}

Sampler::Sampler(Machine &m, const SampleOptions &opts)
    : _m(m), _opts(opts)
{
    via_assert(opts.measure > 0, "sample_measure must be positive");
    via_assert(opts.warmup + opts.measure <= opts.interval,
               "warmup + measure exceeds the sampling interval");
    _m.setExecPolicy(this);
    // The run starts cold: warmup begins immediately, measurement
    // opens when it completes (nextPhase records the commit base).
    if (_opts.warmup == 0) {
        _phase = Phase::Measure;
        _measureStart = _m.core().stats().commitTick;
    }
}

Sampler::~Sampler()
{
    if (_m.execPolicy() == this)
        _m.setExecPolicy(nullptr);
}

std::uint64_t
Sampler::phaseLen() const
{
    switch (_phase) {
      case Phase::Warmup:
        return _opts.warmup;
      case Phase::Measure:
        return _opts.measure;
      case Phase::FastForward:
        return _opts.interval - _opts.warmup - _opts.measure;
    }
    via_panic("bad sampling phase");
}

void
Sampler::nextPhase()
{
    _inPhase = 0;
    switch (_phase) {
      case Phase::Warmup:
        _phase = Phase::Measure;
        _measureStart = _m.core().stats().commitTick;
        break;
      case Phase::Measure: {
        Tick now = _m.core().stats().commitTick;
        _cpis.push_back(double(now - _measureStart) /
                        double(_opts.measure));
        _phase = Phase::FastForward;
        break;
      }
      case Phase::FastForward:
        // New unit: drop the stale schedule (absolute ticks from
        // before the fast-forward) but keep the warmed predictor.
        _m.core().resetTiming(/*keep_predictor=*/true);
        _phase = Phase::Warmup;
        if (_opts.warmup == 0) {
            _phase = Phase::Measure;
            _measureStart = _m.core().stats().commitTick;
        }
        break;
    }
}

bool
Sampler::detailedNext(const Inst &)
{
    // Transitions happen on entry of the next phase's first
    // instruction, so measurement bookkeeping reads the commit tick
    // *after* the window's last instruction went through the core.
    // A zero-length fast-forward phase (interval == warmup+measure)
    // must be skipped entirely, hence the loop.
    while (_inPhase >= phaseLen())
        nextPhase();
    ++_inPhase;
    ++_insts;
    if (_phase == Phase::FastForward) {
        _fastForwarded = true;
        return false;
    }
    return true;
}

SampleEstimate
Sampler::estimate() const
{
    SampleEstimate est;
    est.totalInsts = _insts;
    est.intervals = _cpis.size();

    // A run too short to close one measurement window ran entirely
    // detailed (warmup and measurement lead each unit): the core's
    // makespan is exact, and likewise if fast-forward never engaged.
    if (_cpis.empty() || !_fastForwarded) {
        est.cycles = double(_m.cycles());
        est.ciLow = est.ciHigh = est.cycles;
        est.cpi = _insts ? est.cycles / double(_insts) : 0.0;
        est.exact = true;
        return est;
    }

    double mean = 0.0;
    for (double c : _cpis)
        mean += c;
    mean /= double(_cpis.size());

    double var = 0.0;
    for (double c : _cpis)
        var += (c - mean) * (c - mean);
    auto n = double(_cpis.size());
    double sdev = n > 1.0 ? std::sqrt(var / (n - 1.0)) : 0.0;
    double half = 1.96 * sdev / std::sqrt(n);

    est.cpi = mean;
    est.cycles = mean * double(_insts);
    est.ciLow = (mean - half) * double(_insts);
    est.ciHigh = (mean + half) * double(_insts);
    return est;
}

} // namespace sample
} // namespace via
