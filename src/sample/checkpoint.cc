#include "sample/checkpoint.hh"

#include <cstdio>

#include "cpu/machine.hh"
#include "simcore/serialize.hh"

namespace via
{
namespace sample
{

Checkpoint
Checkpoint::capture(const Machine &m, const Rng *rng)
{
    Checkpoint cp;
    Serializer ser(cp._bytes);
    ser.put(MAGIC);
    ser.put(VERSION);
    ser.put(std::uint64_t(rng != nullptr));
    if (rng != nullptr)
        for (std::uint64_t w : rng->state())
            ser.put(w);
    m.saveState(ser);
    return cp;
}

void
Checkpoint::restore(Machine &m, Rng *rng) const
{
    Deserializer des(_bytes);
    if (des.get<std::uint64_t>() != MAGIC)
        throw SerializeError("not a VIA checkpoint (bad magic)");
    std::uint64_t version = des.get();
    if (version != VERSION)
        throw SerializeError("checkpoint version " +
                             std::to_string(version) +
                             " not supported (expected " +
                             std::to_string(VERSION) + ")");
    bool has_rng = des.get<std::uint64_t>() != 0;
    if (has_rng) {
        std::array<std::uint64_t, Rng::stateWords> words{};
        for (std::uint64_t &w : words)
            w = des.get<std::uint64_t>();
        if (rng != nullptr)
            rng->setState(words);
    }
    m.loadState(des);
    if (des.remaining() != 0)
        throw SerializeError("checkpoint has trailing bytes");
}

void
Checkpoint::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        throw SerializeError("cannot open '" + path +
                             "' for writing");
    std::size_t written =
        std::fwrite(_bytes.data(), 1, _bytes.size(), f);
    bool ok = written == _bytes.size() && std::fclose(f) == 0;
    if (!ok)
        throw SerializeError("short write to '" + path + "'");
}

Checkpoint
Checkpoint::readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw SerializeError("cannot open '" + path + "'");
    Checkpoint cp;
    std::uint8_t buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        cp._bytes.insert(cp._bytes.end(), buf, buf + got);
    std::fclose(f);

    // Validate the header eagerly so a wrong file fails at load
    // time with a named reason, not deep inside a section restore.
    Deserializer des(cp._bytes);
    if (des.get<std::uint64_t>() != MAGIC)
        throw SerializeError("'" + path +
                             "' is not a VIA checkpoint");
    std::uint64_t version = des.get();
    if (version != VERSION)
        throw SerializeError("'" + path + "' has checkpoint "
                             "version " + std::to_string(version) +
                             " (expected " +
                             std::to_string(VERSION) + ")");
    return cp;
}

Checkpoint
Checkpoint::fromBytes(std::vector<std::uint8_t> bytes)
{
    Checkpoint cp;
    cp._bytes = std::move(bytes);
    return cp;
}

const Checkpoint &
CheckpointCache::get(const std::string &key)
{
    auto it = _images.find(key);
    if (it != _images.end()) {
        ++_hits;
        return it->second;
    }
    ++_misses;
    auto [pos, inserted] =
        _images.emplace(key, Checkpoint::readFile(key));
    return pos->second;
}

void
CheckpointCache::put(const std::string &key, Checkpoint cp)
{
    _images.insert_or_assign(key, std::move(cp));
}

bool
CheckpointCache::contains(const std::string &key) const
{
    return _images.count(key) != 0;
}

std::size_t
CheckpointCache::bytes() const
{
    std::size_t total = 0;
    for (const auto &[key, cp] : _images)
        total += cp.bytes().size();
    return total;
}

void
CheckpointCache::clear()
{
    _images.clear();
    _hits = 0;
    _misses = 0;
}

} // namespace sample
} // namespace via
