/**
 * @file
 * Functional fast-forward execution for sampled simulation.
 *
 * In the execute-at-issue design (DESIGN.md Section 2) every emit
 * performs its architectural semantics — VRF, SRF, backing memory,
 * SSPM, CAM index table — before the instruction reaches the timing
 * layer. Fast-forwarding therefore only has to replace the timing
 * layer: instead of folding the instruction into the out-of-order
 * schedule, the FunctionalExecutor warms the long-lived
 * microarchitectural state a later measurement interval depends on:
 *
 *   - cache tags, LRU order and dirty bits (MemSystem::warmAccess
 *     walks the same level sequence as a detailed access, including
 *     dirty-victim writebacks and last-level prefetches);
 *   - the branch predictor's counter table (OoOCore::warmBranch);
 *   - DRAM byte counters (bandwidth accounting, no pipe cycles).
 *
 * No core resources are booked, so fast-forward cost is the cache
 * walk alone — an order of magnitude cheaper than detailed timing.
 */

#ifndef VIA_SAMPLE_FUNCTIONAL_HH
#define VIA_SAMPLE_FUNCTIONAL_HH

#include <cstdint>

#include "cpu/ooo_core.hh"
#include "isa/inst.hh"
#include "mem/mem_system.hh"
#include "simcore/stats.hh"

namespace via
{
namespace sample
{

/** Statistics of the functional warming path. */
struct FunctionalStats
{
    std::uint64_t insts = 0;       //!< instructions fast-forwarded
    std::uint64_t memAccesses = 0; //!< element accesses warmed
    std::uint64_t branches = 0;    //!< data branches warmed
    std::uint64_t mispredicts = 0; //!< warmed predictions that missed
};

/** Runs instructions without timing while warming microarch state. */
class FunctionalExecutor
{
  public:
    FunctionalExecutor(MemSystem &mem, OoOCore &core)
        : _mem(mem), _core(core)
    {}

    /** Warm the microarchitectural state touched by @p inst. */
    void execute(const Inst &inst);

    FunctionalStats &stats() { return _stats; }
    const FunctionalStats &stats() const { return _stats; }

    /** Register statistics under "sample.". */
    void registerStats(StatSet &stats) const;

  private:
    MemSystem &_mem;
    OoOCore &_core;
    FunctionalStats _stats;
};

} // namespace sample
} // namespace via

#endif // VIA_SAMPLE_FUNCTIONAL_HH
