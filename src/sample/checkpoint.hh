/**
 * @file
 * Machine checkpoints: capture, restore, clone, disk round-trip.
 *
 * A checkpoint is a versioned binary image of the complete machine
 * state after a drain point: architectural memory (backing-store
 * pages and the allocator brk), register files, cache tags/LRU/dirty
 * bits and in-flight bookings, the DRAM pipe, SSPM contents with the
 * CAM index table, the core's schedule state and branch predictor,
 * all statistics, and optionally one RNG stream.
 *
 * Restoring the brk alongside the pages means allocations performed
 * after a restore land at the same simulated addresses as in the
 * original run — which is what makes "restore, then re-run kernel B"
 * bit-identical to "run kernel A, then kernel B" (tests/test_sample).
 *
 * The in-memory image is a flat byte vector, so cloning a warm
 * checkpoint for every sweep point is a memcpy; writeFile/readFile
 * provide the disk round-trip. Any mismatch — wrong magic, newer
 * version, truncated file, different machine geometry — throws
 * SerializeError instead of restoring garbage.
 */

#ifndef VIA_SAMPLE_CHECKPOINT_HH
#define VIA_SAMPLE_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/rng.hh"

namespace via
{

class Machine;

namespace sample
{

/** A complete machine state image (see file comment). */
class Checkpoint
{
  public:
    /** 'VIAC' little-endian. */
    static constexpr std::uint64_t MAGIC = 0x43414956;
    static constexpr std::uint64_t VERSION = 1;

    Checkpoint() = default;

    /**
     * Capture @p m (and optionally the driver's RNG stream, so a
     * restored run draws the same random numbers). Throws
     * SerializeError if the machine's event queue has pending
     * callbacks.
     */
    static Checkpoint capture(const Machine &m,
                              const Rng *rng = nullptr);

    /**
     * Restore into @p m, which must be configured identically to
     * the captured machine. @p rng receives the captured stream
     * state when one was saved (ignored otherwise). Throws
     * SerializeError on any mismatch; the machine may be partially
     * restored after a throw and must be discarded.
     */
    void restore(Machine &m, Rng *rng = nullptr) const;

    /** Cheap in-memory copy (one warm image per sweep point). */
    Checkpoint clone() const { return *this; }

    /** The raw image, header included. */
    const std::vector<std::uint8_t> &bytes() const { return _bytes; }

    /** Write the image to disk; throws SerializeError on IO error. */
    void writeFile(const std::string &path) const;

    /**
     * Read an image from disk. Header validation (magic, version)
     * happens here; geometry validation happens on restore().
     */
    static Checkpoint readFile(const std::string &path);

    /** Wrap an existing byte image (tests). */
    static Checkpoint fromBytes(std::vector<std::uint8_t> bytes);

  private:
    std::vector<std::uint8_t> _bytes;
};

/**
 * An in-memory cache of checkpoint images keyed by name.
 *
 * The serving executor restores a warm matrix image once per batch;
 * without a cache every restore re-reads and re-validates the image
 * from disk. get() reads the file on the first miss and serves every
 * later request from memory, so a per-batch restore costs one
 * memcpy-clone. put() registers an image captured in-process under a
 * caller-chosen key (no disk involved at all); get() for that key
 * never touches the filesystem.
 *
 * A cached image is byte-identical to the file it came from
 * (tests/test_sample verifies restore-from-cache == restore-from-
 * disk bit for bit), so the fast path cannot change results.
 */
class CheckpointCache
{
  public:
    /**
     * The image for @p key. On a miss the key is treated as a file
     * path and read with Checkpoint::readFile (header validation
     * included); on a hit the cached image is returned untouched.
     */
    const Checkpoint &get(const std::string &key);

    /** Register an in-process image under @p key (replaces). */
    void put(const std::string &key, Checkpoint cp);

    bool contains(const std::string &key) const;

    /** Cached images / total cached bytes (footprint reporting). */
    std::size_t size() const { return _images.size(); }
    std::size_t bytes() const;

    /** get() calls served from memory / from disk. */
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

    void clear();

  private:
    std::unordered_map<std::string, Checkpoint> _images;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace sample
} // namespace via

#endif // VIA_SAMPLE_CHECKPOINT_HH
