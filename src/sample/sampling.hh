/**
 * @file
 * Interval sampling (SMARTS-style) over the execute-at-issue stream.
 *
 * The instruction stream is divided into fixed-size units of
 * `interval` instructions. Each unit runs:
 *
 *   warmup   — detailed, after dropping the previous interval's
 *              timing state (branch predictor kept: it was warmed
 *              through the fast-forward);
 *   measure  — detailed; the commit-tick delta over these
 *              instructions yields one CPI sample;
 *   the rest — functional fast-forward (cache tags, predictor and
 *              DRAM byte counters stay warm, no schedule work).
 *
 * Ordering warmup and measurement at the *front* of each unit means
 * even a run shorter than one interval produces a sample. The final
 * estimate extrapolates mean measured CPI over all instructions and
 * reports a 95% confidence interval from the sample variance.
 */

#ifndef VIA_SAMPLE_SAMPLING_HH
#define VIA_SAMPLE_SAMPLING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "sample/functional.hh"
#include "simcore/config.hh"
#include "simcore/options.hh"

namespace via
{
namespace sample
{

/** How the machine executes the instruction stream. */
enum class SimMode
{
    Detailed,   //!< every instruction through the OoO schedule
    Functional, //!< every instruction through the warming path
    Sampled,    //!< interval sampling (this file)
};

/** Parse mode=detailed|functional|sampled (fatal on anything else). */
SimMode modeFromString(const std::string &text);

/** Knobs of the sampling driver. */
struct SampleOptions
{
    SimMode mode = SimMode::Detailed;
    std::uint64_t interval = 100000; //!< instructions per unit
    std::uint64_t warmup = 2000;     //!< detailed warmup per unit
    std::uint64_t measure = 3000;    //!< measured insts per unit

    /**
     * Read mode=, sample_interval=, sample_warmup= and
     * sample_measure= from @p cfg. Fatal if the warmup and
     * measurement phases do not fit in the interval.
     */
    static SampleOptions fromConfig(const Config &cfg);
};

/**
 * Register the sampling keys (mode, sample_interval, sample_warmup,
 * sample_measure) with an Options registry; defaults mirror
 * SampleOptions.
 */
void addSampleOptions(Options &opts);

/** Extrapolated whole-run timing from the measured windows. */
struct SampleEstimate
{
    double cycles = 0.0; //!< extrapolated total cycles
    double cpi = 0.0;    //!< mean measured cycles per instruction
    double ciLow = 0.0;  //!< 95% confidence interval on cycles
    double ciHigh = 0.0;
    std::uint64_t intervals = 0;  //!< complete measured windows
    std::uint64_t totalInsts = 0; //!< all instructions in the run
    bool exact = false; //!< no fast-forward happened: cycles is the
                        //!< detailed makespan, not an extrapolation
};

/**
 * The interval-sampling execution policy. Attaches itself to the
 * machine on construction and detaches on destruction; keep it
 * alive for the whole kernel run, then read estimate().
 */
class Sampler : public ExecPolicy
{
  public:
    /** @param m machine to drive  @param opts sampling knobs */
    Sampler(Machine &m, const SampleOptions &opts);
    ~Sampler() override;

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    bool detailedNext(const Inst &inst) override;

    /** Extrapolate the whole-run cycle count from the samples. */
    SampleEstimate estimate() const;

  private:
    enum class Phase : std::uint8_t { Warmup, Measure, FastForward };

    std::uint64_t phaseLen() const;
    void nextPhase();

    Machine &_m;
    SampleOptions _opts;
    Phase _phase = Phase::Warmup;
    std::uint64_t _inPhase = 0; //!< instructions into current phase
    std::uint64_t _insts = 0;   //!< instructions total
    Tick _measureStart = 0;     //!< commit tick entering measurement
    std::vector<double> _cpis;  //!< one CPI sample per measured window
    bool _fastForwarded = false;
};

/**
 * Whole-run timing under a given mode: runs @p kernel (which emits
 * into @p m) with the right policy attached and returns the cycle
 * estimate. Detailed mode returns the exact makespan; functional
 * mode returns zero cycles (no timing was modelled); sampled mode
 * returns the extrapolation.
 */
template <typename KernelFn>
SampleEstimate
runWith(Machine &m, const SampleOptions &opts, KernelFn &&kernel)
{
    if (opts.mode == SimMode::Detailed) {
        kernel();
        SampleEstimate est;
        est.cycles = double(m.cycles());
        est.ciLow = est.ciHigh = est.cycles;
        est.totalInsts = m.core().stats().insts;
        est.cpi = est.totalInsts
                      ? est.cycles / double(est.totalInsts)
                      : 0.0;
        est.exact = true;
        return est;
    }
    if (opts.mode == SimMode::Functional) {
        struct AllFunctional : ExecPolicy
        {
            bool detailedNext(const Inst &) override { return false; }
        } policy;
        m.setExecPolicy(&policy);
        kernel();
        m.setExecPolicy(nullptr);
        SampleEstimate est;
        est.totalInsts = m.functional().stats().insts;
        return est;
    }
    Sampler sampler(m, opts);
    kernel();
    return sampler.estimate();
}

} // namespace sample
} // namespace via

#endif // VIA_SAMPLE_SAMPLING_HH
