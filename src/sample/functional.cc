#include "sample/functional.hh"

namespace via
{
namespace sample
{

void
FunctionalExecutor::execute(const Inst &inst)
{
    ++_stats.insts;

    for (std::uint8_t a = 0; a < inst.numAccesses; ++a) {
        const MemAccess &acc = inst.accesses[a];
        _mem.warmAccess(acc.addr, acc.bytes, acc.isWrite);
        ++_stats.memAccesses;
    }

    if (inst.op == Op::SBranch && inst.isDataBranch) {
        ++_stats.branches;
        if (_core.warmBranch(inst))
            ++_stats.mispredicts;
    }
}

void
FunctionalExecutor::registerStats(StatSet &stats) const
{
    stats.addScalar("sample.func_insts",
                    "instructions run through functional fast-forward",
                    &_stats.insts);
    stats.addScalar("sample.func_mem_accesses",
                    "element accesses warmed without timing",
                    &_stats.memAccesses);
    stats.addScalar("sample.func_branches",
                    "data branches warmed without timing",
                    &_stats.branches);
    stats.addScalar("sample.func_mispredicts",
                    "warmed predictions that missed",
                    &_stats.mispredicts);
}

} // namespace sample
} // namespace via
