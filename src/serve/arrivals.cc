#include "serve/arrivals.hh"

#include <cmath>
#include <limits>

#include "simcore/log.hh"
#include "simcore/parallel.hh"

namespace via::serve
{

double
expDraw(Rng &rng, double mean)
{
    // uniform() is in [0, 1); 1-u is in (0, 1], so the log is
    // finite and the draw non-negative.
    return -std::log(1.0 - rng.uniform()) * mean;
}

std::uint32_t
sampleClass(const std::vector<RequestClass> &mix, Rng &rng)
{
    via_assert(!mix.empty(), "empty traffic mix");
    double total = 0.0;
    for (const RequestClass &c : mix)
        total += c.weight;
    double u = rng.uniform() * total;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        u -= mix[i].weight;
        if (u < 0.0)
            return std::uint32_t(i);
    }
    return std::uint32_t(mix.size() - 1); // rounding fell off the end
}

std::vector<Request>
openLoopTrace(const std::vector<RequestClass> &mix,
              std::uint64_t requests, double rate_per_mcycle,
              std::uint64_t seed)
{
    via_assert(rate_per_mcycle > 0.0, "open-loop rate must be > 0");
    double mean_gap = 1e6 / rate_per_mcycle;

    Rng rng(seed);
    std::vector<Request> trace;
    trace.reserve(std::size_t(requests));
    double now = 0.0;
    for (std::uint64_t i = 0; i < requests; ++i) {
        now += expDraw(rng, mean_gap);
        Request r;
        r.id = i;
        r.cls = sampleClass(mix, rng);
        r.arrival = Tick(now);
        trace.push_back(r);
    }
    return trace;
}

ClientPool::ClientPool(const std::vector<RequestClass> &mix,
                       unsigned clients, double think_cycles,
                       std::uint64_t seed)
    : _mix(mix), _think(think_cycles), _clients(clients)
{
    via_assert(clients > 0, "closed loop needs at least one client");
    via_assert(think_cycles >= 0.0, "negative think time");
    for (std::size_t c = 0; c < _clients.size(); ++c) {
        _clients[c].rng =
            Rng(SweepExecutor::pointSeed(seed, c));
        // Stagger the first issues like a think interval so the
        // pool does not arrive as one burst at cycle 0.
        _clients[c].next_issue =
            Tick(expDraw(_clients[c].rng, _think));
    }
}

bool
ClientPool::nextIssue(Tick &when) const
{
    bool any = false;
    Tick best = std::numeric_limits<Tick>::max();
    for (const Client &c : _clients) {
        if (!c.in_flight && c.next_issue < best) {
            best = c.next_issue;
            any = true;
        }
    }
    if (any)
        when = best;
    return any;
}

void
ClientPool::issueUpTo(Tick now, std::vector<Request> &out)
{
    // Scan in client order: ties on next_issue resolve to the
    // lowest client id, deterministically.
    for (Client &c : _clients) {
        if (c.in_flight || c.next_issue > now)
            continue;
        Request r;
        r.id = _issued++;
        r.cls = sampleClass(_mix, c.rng);
        r.arrival = c.next_issue;
        out.push_back(r);
        c.in_flight = true;
        c.request = r.id;
    }
}

void
ClientPool::complete(std::uint64_t id, Tick now)
{
    for (Client &c : _clients) {
        if (c.in_flight && c.request == id) {
            c.in_flight = false;
            c.next_issue = now + Tick(expDraw(c.rng, _think));
            return;
        }
    }
    via_fatal("completion for unknown request id ", id);
}

} // namespace via::serve
