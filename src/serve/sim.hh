/**
 * @file
 * The serving simulator: a discrete-event queueing loop over the
 * measured service table.
 *
 * One server (the accelerator machine) drains a FIFO of requests.
 * Whenever the server frees up, the batching scheduler takes the
 * oldest waiting request — its class defines the batch — and
 * coalesces up to batch_max already-arrived requests of the same
 * class, in arrival order, into one batch. The batch's service time
 * and energy come from the ServiceModel; each member's end-to-end
 * latency is its queueing delay plus the whole batch's service time
 * (members complete together, like requests sharing a fused kernel
 * launch).
 *
 * Traffic is either an open-loop Poisson trace or a closed-loop
 * client pool (serve/arrivals.hh). All times are simulated cycles;
 * the loop is single-threaded host code, so for a fixed service
 * table the whole run — trace, batches, every percentile — is a
 * pure function of the configuration and seed.
 */

#ifndef VIA_SERVE_SIM_HH
#define VIA_SERVE_SIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hh"
#include "serve/service.hh"
#include "simcore/stats.hh"

namespace via::serve
{

/** Traffic and scheduling knobs for one serving run. */
struct ServeConfig
{
    bool closed = false;      //!< closed loop instead of open loop
    std::uint64_t requests = 200; //!< requests to serve
    double ratePerMcycle = 2.0;   //!< open loop: arrivals / Mcycle
    unsigned clients = 4;     //!< closed loop: pool size
    double thinkCycles = 50000.0; //!< closed loop: mean think time
    unsigned batchMax = 8;    //!< batching scheduler's limit
    std::uint64_t seed = 1;
    bool keepTrace = false;   //!< record the request trace
};

/** Service-level results of one run. */
struct ServeReport
{
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    Tick makespan = 0; //!< completion cycle of the last request

    /** End-to-end latency (arrival to batch completion), cycles. */
    Distribution latency;
    /** Queueing component only (arrival to batch start), cycles. */
    Distribution queueing;

    double throughputPerMcycle = 0.0;
    double energyPerRequestPj = 0.0;
    double meanBatch = 0.0;
    std::vector<std::uint64_t> perClass; //!< requests per class

    /** The issued trace, in (arrival, id) order (when keepTrace).
     *  May include requests admitted but unserved when the run hit
     *  its request budget. */
    std::vector<Request> trace;
};

/**
 * Run the serving loop. The model must price batches up to
 * cfg.batchMax (fatal otherwise — the scheduler would form batches
 * the model cannot cost).
 */
ServeReport runServe(const std::vector<RequestClass> &mix,
                     const ServiceModel &model,
                     const ServeConfig &cfg);

} // namespace via::serve

#endif // VIA_SERVE_SIM_HH
