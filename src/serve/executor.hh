/**
 * @file
 * The batch executor: measure the service table with the
 * cycle-level simulator.
 *
 * Single-core path (cores=1): each class's matrix is made resident
 * on a fresh machine (kernels::SpmvResident — convert + upload
 * once), warmed with one run, and captured as a PR-4 checkpoint.
 * The warm image sits in a sample::CheckpointCache — optionally
 * round-tripped through disk (warm_dir) — and every batch-size
 * measurement restores it onto a fresh machine (fan-out: one warm
 * image, batchMax restores per class) and runs n requests back to
 * back. The measured cost is the marginal cycles past the warm
 * point; energy is the marginal energy-model total.
 *
 * Multi-core path (cores=N): MultiMachine cannot checkpoint (the
 * shared LLC carries unserializable in-flight analytic state), so
 * each (class, n) point builds a fresh machine, warms it with one
 * parallel run, and measures n more runs. Only csr and csb classes
 * are servable multi-core (kernels::spmvParallel's formats), and
 * because the parallel kernels re-upload per run, multi-core
 * batches amortize scheduling only, not residency — the documented
 * PR-6 limitation.
 *
 * Points fan out across a SweepExecutor; every per-point stream is
 * derived from (seed, point index), so the table is bit-identical
 * at any threads=N.
 */

#ifndef VIA_SERVE_EXECUTOR_HH
#define VIA_SERVE_EXECUTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "kernels/parallel.hh"
#include "serve/request.hh"
#include "serve/service.hh"

namespace via::serve
{

/** How to measure the service table. */
struct ExecutorConfig
{
    MachineParams params{};
    unsigned cores = 1;
    SharedLlcParams llc{}; //!< used when cores > 1
    kernels::Partition partition = kernels::Partition::Static;
    bool via = false;       //!< VIA kernels vs vector baseline
    unsigned batchMax = 8;  //!< largest batch to price
    unsigned threads = 1;   //!< measurement pool width (0 = auto)
    std::uint64_t seed = 1;
    /** When non-empty (cores=1): write each warm image to this
     *  directory and reload it through the CheckpointCache, so the
     *  disk round-trip is part of the measured path exactly once
     *  per class. Empty keeps the image in memory only. */
    std::string warmDir;
};

/**
 * Measure cost/energy for every (class, batch size in 1..batchMax)
 * pair. Fatal when a class cannot run on the requested machine
 * (non-csr/csb formats with cores > 1).
 */
TableServiceModel measureServiceTable(
    const std::vector<RequestClass> &mix, const ExecutorConfig &cfg);

} // namespace via::serve

#endif // VIA_SERVE_EXECUTOR_HH
