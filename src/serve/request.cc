#include "serve/request.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "kernels/dispatch.hh"
#include "simcore/log.hh"
#include "simcore/parallel.hh"
#include "sparse/generators.hh"

namespace via::serve
{

std::string
RequestClass::name() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s:%s:%lld:%g:v%u",
                  kernel.c_str(), format.c_str(),
                  (long long)(rows), density, vecs);
    return buf;
}

namespace
{

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

double
parseNumber(const std::string &tok, const std::string &what,
            const std::string &cls)
{
    char *end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end == nullptr || *end != '\0')
        via_fatal("mix class '", cls, "': bad ", what, " '", tok,
                  "'");
    return v;
}

} // namespace

std::vector<RequestClass>
parseMix(const std::string &spec)
{
    std::vector<RequestClass> mix;
    for (const std::string &entry : splitOn(spec, ',')) {
        if (entry.empty())
            via_fatal("mix has an empty class entry");

        std::string body = entry;
        double weight = 1.0;
        if (auto at = entry.find('@'); at != std::string::npos) {
            body = entry.substr(0, at);
            weight = parseNumber(entry.substr(at + 1), "weight",
                                 entry);
        }

        auto fields = splitOn(body, ':');
        if (fields.size() != 5)
            via_fatal("mix class '", entry, "': expected "
                      "kernel:format:rows:density:vecs[@weight]");

        RequestClass cls;
        cls.kernel = fields[0];
        cls.format = fields[1];
        cls.rows = Index(parseNumber(fields[2], "rows", entry));
        cls.density = parseNumber(fields[3], "density", entry);
        cls.vecs = unsigned(parseNumber(fields[4], "vecs", entry));
        cls.weight = weight;

        if (cls.kernel != "spmv")
            via_fatal("mix class '", entry, "': unknown kernel '",
                      cls.kernel, "' (only spmv is servable)");
        if (!kernels::isSpmvFormat(cls.format))
            via_fatal("mix class '", entry, "': unknown format '",
                      cls.format, "'");
        if (cls.rows <= 0)
            via_fatal("mix class '", entry, "': rows must be > 0");
        if (!(cls.density > 0.0) || cls.density > 1.0)
            via_fatal("mix class '", entry,
                      "': density must be in (0, 1]");
        if (cls.vecs == 0)
            via_fatal("mix class '", entry, "': vecs must be > 0");
        if (!(cls.weight > 0.0))
            via_fatal("mix class '", entry,
                      "': weight must be > 0");
        mix.push_back(std::move(cls));
    }
    return mix;
}

Csr
classMatrix(const RequestClass &cls, std::size_t cls_index,
            std::uint64_t seed)
{
    Rng rng(SweepExecutor::pointSeed(seed, cls_index));
    return genUniform(cls.rows, cls.rows, cls.density, rng);
}

std::string
traceBytes(const std::vector<Request> &trace)
{
    std::ostringstream os;
    for (const Request &r : trace)
        os << r.id << ' ' << r.cls << ' ' << r.arrival << '\n';
    return os.str();
}

} // namespace via::serve
