#include "serve/sim.hh"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>

#include "serve/arrivals.hh"
#include "simcore/log.hh"

namespace via::serve
{

namespace
{

/** Histogram over the collected samples: [0, max] at a resolution
 *  fine enough for stable tail percentiles. */
Distribution
toDistribution(const std::vector<double> &samples)
{
    double hi = 1.0;
    for (double v : samples)
        hi = std::max(hi, v);
    Distribution d(0.0, hi + 1.0, 512);
    for (double v : samples)
        d.sample(v);
    return d;
}

} // namespace

ServeReport
runServe(const std::vector<RequestClass> &mix,
         const ServiceModel &model, const ServeConfig &cfg)
{
    via_assert(!mix.empty(), "empty traffic mix");
    via_assert(cfg.batchMax > 0, "batchMax must be > 0");
    via_assert(model.batchMax() >= cfg.batchMax,
               "service model prices batches up to ",
               model.batchMax(), " but the scheduler forms up to ",
               cfg.batchMax);

    // Traffic sources: exactly one of these is active.
    std::vector<Request> open_trace;
    std::size_t next_open = 0;
    std::unique_ptr<ClientPool> pool;
    if (cfg.closed)
        pool = std::make_unique<ClientPool>(
            mix, cfg.clients, cfg.thinkCycles, cfg.seed);
    else
        open_trace = openLoopTrace(mix, cfg.requests,
                                   cfg.ratePerMcycle, cfg.seed);

    ServeReport report;
    report.perClass.assign(mix.size(), 0);

    std::vector<Request> pending;
    std::vector<double> latencies, queueings;
    double energy_total = 0.0;
    std::uint64_t batch_size_sum = 0;
    Tick now = 0;

    // Admit every arrival at or before t into the pending set.
    auto admit = [&](Tick t) {
        if (cfg.closed) {
            std::size_t before = pending.size();
            pool->issueUpTo(t, pending);
            if (cfg.keepTrace) {
                // issueUpTo scans clients in id order, but the trace
                // contract is (arrival, id) order. Chunks admitted at
                // successive ticks never interleave — everything a
                // later admit issues arrived strictly after the
                // previous admit tick — so sorting each chunk keeps
                // the whole trace monotonic.
                std::vector<Request> chunk(
                    pending.begin() + std::ptrdiff_t(before),
                    pending.end());
                std::sort(chunk.begin(), chunk.end(),
                          [](const Request &a, const Request &b) {
                              if (a.arrival != b.arrival)
                                  return a.arrival < b.arrival;
                              return a.id < b.id;
                          });
                report.trace.insert(report.trace.end(),
                                    chunk.begin(), chunk.end());
            }
        } else {
            while (next_open < open_trace.size() &&
                   open_trace[next_open].arrival <= t) {
                pending.push_back(open_trace[next_open]);
                if (cfg.keepTrace)
                    report.trace.push_back(open_trace[next_open]);
                ++next_open;
            }
        }
    };

    // The next arrival after t, if any traffic remains.
    auto nextArrival = [&](Tick &when) {
        if (cfg.closed)
            return pool->nextIssue(when);
        if (next_open >= open_trace.size())
            return false;
        when = open_trace[next_open].arrival;
        return true;
    };

    while (report.requests < cfg.requests) {
        admit(now);
        if (pending.empty()) {
            Tick when = 0;
            if (!nextArrival(when))
                break; // open loop: trace exhausted
            now = std::max(now, when);
            admit(now);
            continue;
        }

        // The oldest waiting request defines the batch's class;
        // ties on arrival resolve to the lowest id.
        std::size_t head = 0;
        for (std::size_t i = 1; i < pending.size(); ++i) {
            if (pending[i].arrival < pending[head].arrival ||
                (pending[i].arrival == pending[head].arrival &&
                 pending[i].id < pending[head].id))
                head = i;
        }
        std::uint32_t cls = pending[head].cls;

        // Coalesce same-class waiters in (arrival, id) order.
        std::vector<std::size_t> members;
        for (std::size_t i = 0; i < pending.size(); ++i)
            if (pending[i].cls == cls)
                members.push_back(i);
        std::sort(members.begin(), members.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (pending[a].arrival != pending[b].arrival)
                          return pending[a].arrival <
                                 pending[b].arrival;
                      return pending[a].id < pending[b].id;
                  });
        if (members.size() > cfg.batchMax)
            members.resize(cfg.batchMax);
        // The loop condition is checked before batch formation, so
        // without this cap the final batch could push the served
        // count past cfg.requests (inflating throughput, per-class
        // counts and meanBatch). Trim the youngest members — the
        // list is (arrival, id)-sorted, so the cut is deterministic.
        std::uint64_t budget = cfg.requests - report.requests;
        if (members.size() > budget)
            members.resize(std::size_t(budget));

        unsigned n = unsigned(members.size());
        Tick cost = model.cost(cls, n);
        Tick done = now + cost;
        energy_total += model.energyPj(cls, n);
        ++report.batches;
        batch_size_sum += n;
        report.perClass[cls] += n;

        for (std::size_t i : members) {
            const Request &r = pending[i];
            queueings.push_back(double(now - r.arrival));
            latencies.push_back(double(done - r.arrival));
            if (cfg.closed)
                pool->complete(r.id, done);
            ++report.requests;
        }

        // Drop the served members in descending *index* order so
        // each erase leaves the remaining indices valid (members is
        // sorted by arrival, which need not match pending order —
        // the closed-loop pool issues in client order).
        std::sort(members.begin(), members.end(),
                  std::greater<std::size_t>());
        for (std::size_t idx : members)
            pending.erase(pending.begin() + std::ptrdiff_t(idx));

        now = done;
        report.makespan = done;
    }

    report.latency = toDistribution(latencies);
    report.queueing = toDistribution(queueings);
    if (report.makespan > 0)
        report.throughputPerMcycle = double(report.requests) * 1e6 /
                                     double(report.makespan);
    if (report.requests > 0) {
        report.energyPerRequestPj =
            energy_total / double(report.requests);
        report.meanBatch = double(batch_size_sum) /
                           double(report.batches);
    }
    return report;
}

} // namespace via::serve
