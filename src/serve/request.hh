/**
 * @file
 * Request classes and request instances for the serving subsystem.
 *
 * A request class names a workload a client can ask the accelerator
 * to run: a synthetic matrix (rows x rows at a density, generated
 * deterministically from the run seed), a kernel, the sparse format
 * the matrix is resident in, and the number of dense vectors the
 * request multiplies against it (vecs=1 is classic SpMV; vecs>1 is
 * the SpMM-like "multiply a small dense block" shape). A traffic
 * mix is a weighted set of classes.
 *
 * A Request is one instance drawn from the mix: which class, when
 * it arrived, and a stable id (issue order).
 */

#ifndef VIA_SERVE_REQUEST_HH
#define VIA_SERVE_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/types.hh"
#include "sparse/csr.hh"

namespace via::serve
{

/** One workload class of the traffic mix. */
struct RequestClass
{
    std::string kernel = "spmv"; //!< only "spmv" is servable today
    std::string format = "csr";  //!< csr | spc5 | sell | csb
    Index rows = 256;            //!< square matrix side
    double density = 0.05;       //!< nnz fraction
    unsigned vecs = 1;           //!< dense vectors per request
    double weight = 1.0;         //!< share of the traffic mix

    /** Stable display name, e.g. "spmv:csr:256:0.05:v2". */
    std::string name() const;
};

/**
 * Parse a traffic-mix specification: comma-separated classes, each
 * "kernel:format:rows:density:vecs" with an optional "@weight"
 * suffix (default 1). Example:
 *
 *   spmv:csr:256:0.05:1@3,spmv:csb:512:0.02:4@1
 *
 * Fatal (usage error) on malformed fields, unknown kernels or
 * formats, or non-positive weights.
 */
std::vector<RequestClass> parseMix(const std::string &spec);

/**
 * The class's matrix, regenerated deterministically: the generator
 * stream depends only on (@p seed, @p cls_index), so the warm phase,
 * the batch measurements and a re-run of the harness all see the
 * identical matrix.
 */
Csr classMatrix(const RequestClass &cls, std::size_t cls_index,
                std::uint64_t seed);

/** One request instance. */
struct Request
{
    std::uint64_t id = 0;   //!< issue order, dense from 0
    std::uint32_t cls = 0;  //!< index into the mix
    Tick arrival = 0;       //!< simulated arrival cycle
};

/** The byte image of a request trace (determinism tests). */
std::string traceBytes(const std::vector<Request> &trace);

} // namespace via::serve

#endif // VIA_SERVE_REQUEST_HH
