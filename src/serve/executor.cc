#include "serve/executor.hh"

#include <memory>

#include "kernels/dispatch.hh"
#include "power/energy_model.hh"
#include "sample/checkpoint.hh"
#include "simcore/log.hh"
#include "simcore/parallel.hh"
#include "sparse/dense.hh"

namespace via::serve
{

namespace
{

/** One class's warm state (single-core path). */
struct WarmState
{
    std::unique_ptr<kernels::SpmvResident> resident;
    sample::Checkpoint image;
    Tick cycles = 0;
    double energyPj = 0.0;
};

TableServiceModel
measureSingleCore(const std::vector<RequestClass> &mix,
                  const ExecutorConfig &cfg)
{
    SweepExecutor exec(cfg.threads);

    // Phase 1 — one warm machine per class: make the matrix
    // resident, run once, capture the image.
    auto warms = exec.run(mix.size(), [&](std::size_t i) {
        Machine m(cfg.params);
        Csr a = classMatrix(mix[i], i, cfg.seed);
        WarmState w;
        w.resident = std::make_unique<kernels::SpmvResident>(
            m, a, mix[i].format, cfg.via);
        Rng rx(SweepExecutor::pointSeed(cfg.seed,
                                        mix.size() + i));
        w.resident->run(m, randomVector(a.cols(), rx));
        w.image = sample::Checkpoint::capture(m);
        w.cycles = m.cycles();
        w.energyPj = computeEnergy(m).totalPj();
        return w;
    });

    // Stage the images in the cache (single-threaded: the cache is
    // not synchronized). warm_dir routes them through disk so the
    // read-back path runs once per class; every batch restore below
    // is then served from memory.
    sample::CheckpointCache cache;
    std::vector<const sample::Checkpoint *> images(mix.size());
    for (std::size_t i = 0; i < mix.size(); ++i) {
        std::string key;
        if (!cfg.warmDir.empty()) {
            key = cfg.warmDir + "/warm_" + std::to_string(i) +
                  (cfg.via ? "_via" : "_base") + ".ckpt";
            warms[i].image.writeFile(key);
        } else {
            key = "warm:" + std::to_string(i);
            cache.put(key, warms[i].image.clone());
        }
        images[i] = &cache.get(key);
    }

    // Phase 2 — fan out (class x batch size): restore the warm
    // image onto a fresh machine, run the batch, take the marginal
    // cycles and energy.
    std::size_t points = mix.size() * cfg.batchMax;
    struct Point
    {
        Tick cost = 0;
        double energyPj = 0.0;
    };
    auto results = exec.run(points, [&](std::size_t p) {
        std::size_t cls = p / cfg.batchMax;
        unsigned n = unsigned(p % cfg.batchMax) + 1;
        const WarmState &w = warms[cls];

        Machine m(cfg.params);
        images[cls]->restore(m);

        Rng rx(SweepExecutor::pointSeed(cfg.seed,
                                        2 * mix.size() + p));
        Index cols = mix[cls].rows;
        for (unsigned r = 0; r < n; ++r)
            for (unsigned v = 0; v < mix[cls].vecs; ++v)
                w.resident->run(m, randomVector(cols, rx));

        Point pt;
        pt.cost = m.cycles() - w.cycles;
        pt.energyPj = computeEnergy(m).totalPj() - w.energyPj;
        return pt;
    });

    TableServiceModel table(mix.size(), cfg.batchMax);
    for (std::size_t p = 0; p < points; ++p)
        table.set(p / cfg.batchMax,
                  unsigned(p % cfg.batchMax) + 1, results[p].cost,
                  results[p].energyPj);
    return table;
}

TableServiceModel
measureMultiCore(const std::vector<RequestClass> &mix,
                 const ExecutorConfig &cfg)
{
    for (const RequestClass &c : mix)
        if (c.format != "csr" && c.format != "csb")
            via_fatal("class ", c.name(), ": only csr and csb are "
                      "servable with cores > 1");

    SweepExecutor exec(cfg.threads);
    std::size_t points = mix.size() * cfg.batchMax;
    struct Point
    {
        Tick cost = 0;
        double energyPj = 0.0;
    };
    auto results = exec.run(points, [&](std::size_t p) {
        std::size_t cls = p / cfg.batchMax;
        unsigned n = unsigned(p % cfg.batchMax) + 1;
        const RequestClass &rc = mix[cls];

        MultiMachine mm(cfg.params, cfg.cores, cfg.llc);
        Csr a = classMatrix(rc, cls, cfg.seed);

        Rng rx(SweepExecutor::pointSeed(cfg.seed,
                                        2 * mix.size() + p));
        // Warm run (not part of the priced batch).
        kernels::spmvParallel(mm, a, randomVector(a.cols(), rx),
                              rc.format, cfg.partition, cfg.via);
        Tick warm_cycles = mm.cycles();
        double warm_energy = computeEnergyMulti(mm).totalPj();

        for (unsigned r = 0; r < n; ++r)
            for (unsigned v = 0; v < rc.vecs; ++v)
                kernels::spmvParallel(mm, a,
                                      randomVector(a.cols(), rx),
                                      rc.format, cfg.partition,
                                      cfg.via);

        Point pt;
        pt.cost = mm.cycles() - warm_cycles;
        pt.energyPj =
            computeEnergyMulti(mm).totalPj() - warm_energy;
        return pt;
    });

    TableServiceModel table(mix.size(), cfg.batchMax);
    for (std::size_t p = 0; p < points; ++p)
        table.set(p / cfg.batchMax,
                  unsigned(p % cfg.batchMax) + 1, results[p].cost,
                  results[p].energyPj);
    return table;
}

} // namespace

TableServiceModel
measureServiceTable(const std::vector<RequestClass> &mix,
                    const ExecutorConfig &cfg)
{
    via_assert(!mix.empty(), "empty traffic mix");
    via_assert(cfg.batchMax > 0, "batchMax must be > 0");
    if (cfg.cores > 1)
        return measureMultiCore(mix, cfg);
    return measureSingleCore(mix, cfg);
}

} // namespace via::serve
