/**
 * @file
 * The service model: what a batch costs.
 *
 * The serving DES (serve/sim.hh) is a service-level simulation — it
 * never runs the cycle-level machine itself. It asks a ServiceModel
 * what a batch of n same-class requests costs in cycles and energy,
 * and the model answers from a table the batch executor measured
 * with the cycle-level simulator up front (serve/executor.hh).
 *
 * This is exact, not an approximation: kernel timing is
 * value-independent for a fixed matrix structure, so every batch of
 * n class-c requests costs the same as the measured one. Splitting
 * measurement from queueing also makes determinism trivial — the
 * table is bit-identical at any measurement thread count, and the
 * DES itself is single-threaded host code.
 */

#ifndef VIA_SERVE_SERVICE_HH
#define VIA_SERVE_SERVICE_HH

#include <cstdint>
#include <vector>

#include "simcore/types.hh"

namespace via::serve
{

/** Batch costs for every (class, batch size) the DES can form. */
class ServiceModel
{
  public:
    virtual ~ServiceModel() = default;

    /** Largest batch the model can price. */
    virtual unsigned batchMax() const = 0;

    /** Service cycles for n same-class requests run as one batch. */
    virtual Tick cost(std::size_t cls, unsigned n) const = 0;

    /** Dynamic + leakage energy of that batch, picojoules. */
    virtual double energyPj(std::size_t cls, unsigned n) const = 0;
};

/** A dense measured table (the batch executor's product). */
class TableServiceModel : public ServiceModel
{
  public:
    TableServiceModel(std::size_t classes, unsigned batch_max)
        : _batch_max(batch_max),
          _cost(classes * batch_max, 0),
          _energy(classes * batch_max, 0.0)
    {
    }

    void
    set(std::size_t cls, unsigned n, Tick cost, double energy_pj)
    {
        _cost.at(index(cls, n)) = cost;
        _energy.at(index(cls, n)) = energy_pj;
    }

    unsigned batchMax() const override { return _batch_max; }

    Tick
    cost(std::size_t cls, unsigned n) const override
    {
        return _cost.at(index(cls, n));
    }

    double
    energyPj(std::size_t cls, unsigned n) const override
    {
        return _energy.at(index(cls, n));
    }

  private:
    std::size_t
    index(std::size_t cls, unsigned n) const
    {
        return cls * _batch_max + (n - 1);
    }

    unsigned _batch_max;
    std::vector<Tick> _cost;
    std::vector<double> _energy;
};

} // namespace via::serve

#endif // VIA_SERVE_SERVICE_HH
