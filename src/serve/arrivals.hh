/**
 * @file
 * Arrival generation for the serving simulator.
 *
 * Two traffic shapes, both deterministic per seed:
 *
 *  - Open loop: a Poisson process at a configured rate. The whole
 *    trace (arrival cycle + class per request) is generated up
 *    front from one RNG stream, so the same seed always yields the
 *    byte-identical trace regardless of host thread count.
 *
 *  - Closed loop: a fixed pool of clients, each keeping at most one
 *    request outstanding and thinking an exponential time between
 *    its completion and its next issue. Issue times depend on
 *    completions, so the closed-loop "generator" is a per-client
 *    state machine the serving DES advances; each client draws from
 *    its own splitmix-derived stream (SweepExecutor::pointSeed), so
 *    the interleaving is reproducible too.
 */

#ifndef VIA_SERVE_ARRIVALS_HH
#define VIA_SERVE_ARRIVALS_HH

#include <cstdint>
#include <vector>

#include "serve/request.hh"
#include "simcore/rng.hh"

namespace via::serve
{

/** Exponential draw with mean @p mean (cycles), never negative. */
double expDraw(Rng &rng, double mean);

/**
 * Sample a class index from the mix's weights using one uniform
 * draw from @p rng.
 */
std::uint32_t sampleClass(const std::vector<RequestClass> &mix,
                          Rng &rng);

/**
 * The open-loop trace: @p requests Poisson arrivals at
 * @p rate_per_mcycle requests per million cycles, classes sampled
 * by mix weight. Arrivals are non-decreasing; ids are issue order.
 */
std::vector<Request> openLoopTrace(
    const std::vector<RequestClass> &mix, std::uint64_t requests,
    double rate_per_mcycle, std::uint64_t seed);

/**
 * The closed-loop client pool. The DES calls nextIssue()/issue() to
 * pull the earliest pending issue into the system and complete() to
 * schedule a client's next request after its think time.
 */
class ClientPool
{
  public:
    /**
     * @param clients pool size (concurrency limit)
     * @param think_cycles mean think time between a completion and
     *        the client's next issue; the initial issues are also
     *        staggered by one think draw so the pool does not arrive
     *        as a single burst at cycle 0
     */
    ClientPool(const std::vector<RequestClass> &mix,
               unsigned clients, double think_cycles,
               std::uint64_t seed);

    /** The earliest cycle any client wants to issue; false if every
     *  client is waiting on an in-flight request. */
    bool nextIssue(Tick &when) const;

    /**
     * Materialize every issue due at or before @p now as Requests
     * (appended to @p out), marking those clients in-flight. Ids
     * continue from the previous issue count.
     */
    void issueUpTo(Tick now, std::vector<Request> &out);

    /** Client owning request @p id finished at @p now: think, then
     *  schedule its next issue. */
    void complete(std::uint64_t id, Tick now);

    std::uint64_t issued() const { return _issued; }

  private:
    struct Client
    {
        Rng rng{0};
        Tick next_issue = 0; //!< valid when !in_flight
        bool in_flight = false;
        std::uint64_t request = 0; //!< id of the in-flight request
    };

    const std::vector<RequestClass> &_mix;
    double _think;
    std::vector<Client> _clients;
    std::uint64_t _issued = 0;
};

} // namespace via::serve

#endif // VIA_SERVE_ARRIVALS_HH
