/**
 * @file
 * A shared last-level cache with banked bandwidth and a directory
 * coherence filter, for the multi-core machine.
 *
 * Each core's private MemSystem routes its last-private-level misses
 * and dirty writebacks here instead of to a private DRAM. The LLC
 * models three effects the single-core hierarchy cannot:
 *
 *  - contention: accesses serialize on one of `banks` bank pipes
 *    (selected by line address), each a per-cycle Resource, so
 *    aggregate LLC bandwidth saturates at `banks` lines/cycle;
 *  - coherence: a line-granular directory tracks which cores hold a
 *    copy and which (if any) holds it modified. A write invalidates
 *    remote copies; a read of a modified line forces a dirty forward
 *    from the owner (writeback into the LLC plus a core-to-core
 *    transfer penalty). Functional data always lives in the shared
 *    BackingStore, so the filter is a pure timing/statistics model;
 *  - a single shared DRAM behind the tags, which all cores' misses
 *    serialize on.
 *
 * Timing is analytic, like MemSystem: no event scheduling, and
 * out-of-order bookings across cores are legal because Resource
 * clamps acquisitions before its window base.
 */

#ifndef VIA_MEM_SHARED_LLC_HH
#define VIA_MEM_SHARED_LLC_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mem_system.hh"
#include "mem/mem_types.hh"
#include "simcore/resource.hh"
#include "simcore/stats.hh"
#include "simcore/types.hh"

namespace via
{

class MemSystem;

/** Geometry and timing of the shared level. */
struct SharedLlcParams
{
    CacheParams cache;   //!< tags of the shared level
    DramParams dram;     //!< the single shared DRAM behind it
    PrefetchParams prefetch;
    std::uint32_t banks = 8;     //!< parallel bank pipes
    Tick dirtyForwardLatency = 16; //!< core-to-core transfer penalty

    /**
     * Derive shared-level parameters from a single-core hierarchy:
     * the last level's geometry scaled by the core count (capacity
     * and MSHRs), the same DRAM, the same prefetch policy.
     */
    static SharedLlcParams from(const MemSystemParams &mem,
                                unsigned cores);
};

/** Coherence and contention statistics, raw for StatSet. */
struct SharedLlcStats
{
    std::uint64_t invalidations = 0; //!< remote private copies dropped
    std::uint64_t dirtyForwards = 0; //!< modified lines forwarded
    std::uint64_t bankQueueCycles = 0; //!< waited for a bank pipe
    /**
     * Requests that found an MSHR entry whose fill issues later in
     * simulated time (booked by a core whose emission runs ahead)
     * and fetched the line themselves instead of merging.
     */
    std::uint64_t earlyFetches = 0;
};

/** The shared level: banked tags + directory + one DRAM. */
class SharedLlc
{
  public:
    explicit SharedLlc(const SharedLlcParams &params);

    /**
     * Register core @p core_id's private hierarchy so coherence
     * actions can invalidate its cached copies. Core ids must be
     * dense from zero.
     */
    void attachCore(unsigned core_id, MemSystem *mem);

    /**
     * Timed access from @p core for one line that missed the
     * private levels. Books a bank pipe, applies coherence actions
     * against other cores' private caches, walks the LLC tags, and
     * serves misses from the shared DRAM.
     *
     * @return tick at which the line is available to the core
     */
    Tick access(unsigned core, Addr line_addr, bool is_write,
                Tick when);

    /**
     * A dirty line evicted from @p core's private levels lands in
     * the LLC (write-allocate). Consumes a bank slot and possibly
     * DRAM bandwidth but never delays the evicting access.
     */
    void writeback(unsigned core, Addr line_addr, Tick when);

    /** Untimed twin of access() for functional fast-forward. */
    void warmAccess(unsigned core, Addr line_addr, bool is_write);

    /** Untimed twin of writeback(). */
    void warmWriteback(unsigned core, Addr line_addr);

    /** Forget timing bookings (banks, MSHRs, DRAM pipe). */
    void resetTiming();

    /** Register llc.* and dram.* statistics. */
    void registerStats(StatSet &stats) const;

    /** Attach a trace sink (LLC probes on the CacheL2 track). */
    void setTrace(TraceManager *trace);

    const SharedLlcParams &params() const { return _params; }
    Cache &tags() { return _tags; }
    const Cache &tags() const { return _tags; }
    Dram &dram() { return _dram; }
    const Dram &dram() const { return _dram; }
    SharedLlcStats &stats() { return _stats; }
    const SharedLlcStats &stats() const { return _stats; }
    unsigned cores() const { return unsigned(_cores.size()); }

    /** Bank index serving @p line_addr (exposed for tests). */
    std::uint32_t bankOf(Addr line_addr) const;

  private:
    /** Directory entry: which cores cache the line, who owns it. */
    struct DirEntry
    {
        std::uint32_t sharers = 0; //!< bitmask of caching cores
        int owner = -1;            //!< core with a modified copy
    };

    /**
     * Apply the coherence filter for an access by @p core and
     * update the directory. Returns the extra latency (a dirty
     * forward); invalidations of remote private copies happen as a
     * side effect.
     */
    Tick coherenceActions(unsigned core, Addr line_addr,
                          bool is_write);

    /** Drop every core's private copies of an LLC victim. */
    void backInvalidate(Addr line_addr);

    /** Invalidate @p line_addr in core @p c's private levels. */
    bool invalidatePrivate(unsigned c, Addr line_addr);

    SharedLlcParams _params;
    Cache _tags;
    Dram _dram;
    std::vector<Resource> _banks;
    std::vector<MemSystem *> _cores;
    std::unordered_map<Addr, DirEntry> _dir;
    SharedLlcStats _stats;
    std::uint64_t _prefetches = 0;
    TraceManager *_trace = nullptr;
};

} // namespace via

#endif // VIA_MEM_SHARED_LLC_HH
