/**
 * @file
 * Sparse paged functional memory plus a bump allocator.
 *
 * The backing store holds the architectural contents of simulated
 * memory. Timing is handled entirely by MemSystem; this class is
 * purely functional so the kernels can be checked for correctness
 * against golden references.
 */

#ifndef VIA_MEM_BACKING_STORE_HH
#define VIA_MEM_BACKING_STORE_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "simcore/log.hh"
#include "simcore/types.hh"

namespace via
{

class Serializer;
class Deserializer;

/** Byte-addressable sparse memory with typed helpers. */
class BackingStore
{
  public:
    static constexpr std::uint64_t pageBytes = 1 << 16;

    BackingStore() = default;

    /** Raw byte access. */
    void
    read(Addr addr, void *dst, std::size_t bytes) const
    {
        // Fast path for the overwhelmingly common case: a small
        // access inside the most recently touched page.
        std::uint64_t off = addr % pageBytes;
        if (addr / pageBytes == _lastPn && off + bytes <= pageBytes) {
            std::memcpy(dst, _lastPage + off, bytes);
            return;
        }
        readSlow(addr, dst, bytes);
    }

    void
    write(Addr addr, const void *src, std::size_t bytes)
    {
        std::uint64_t off = addr % pageBytes;
        if (addr / pageBytes == _lastPn && off + bytes <= pageBytes) {
            std::memcpy(_lastPage + off, src, bytes);
            return;
        }
        writeSlow(addr, src, bytes);
    }

    /** Typed scalar access for trivially copyable types. */
    template <typename T>
    T
    load(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(Addr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &v, sizeof(T));
    }

    /**
     * Allocate a region of simulated memory.
     *
     * @param bytes region size
     * @param align required alignment (power of two)
     * @return base address of the region
     */
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 64);

    /** Copy a host array into simulated memory; returns its base. */
    template <typename T>
    Addr
    allocArray(const std::vector<T> &host, std::uint64_t align = 64)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        Addr base = alloc(host.size() * sizeof(T), align);
        if (!host.empty())
            write(base, host.data(), host.size() * sizeof(T));
        return base;
    }

    /** Copy a simulated array back out to the host. */
    template <typename T>
    std::vector<T>
    readArray(Addr base, std::size_t count) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::vector<T> out(count);
        if (count)
            read(base, out.data(), count * sizeof(T));
        return out;
    }

    /** Bytes currently handed out by the allocator. */
    std::uint64_t allocated() const { return _brk - allocBase; }

    /** Number of physical pages materialized. */
    std::size_t pagesTouched() const { return _pages.size(); }

    /**
     * Serialize every materialized page and the allocator brk. The
     * brk is part of the architectural state: restoring it makes
     * allocations after the restore land at the same addresses as
     * in the original run, which is what checkpoint bit-identity
     * relies on.
     */
    void saveState(Serializer &ser) const;
    /** Restore state saved by saveState (replaces all pages). */
    void loadState(Deserializer &des);

  private:
    /** First address the allocator hands out (avoid address 0). */
    static constexpr Addr allocBase = 0x10000;

    void readSlow(Addr addr, void *dst, std::size_t bytes) const;
    void writeSlow(Addr addr, const void *src, std::size_t bytes);
    std::uint8_t *pageFor(Addr addr);
    const std::uint8_t *pageForRead(Addr addr) const;

    mutable std::unordered_map<std::uint64_t,
                               std::unique_ptr<std::uint8_t[]>> _pages;
    // Last-page cache: accesses are overwhelmingly local, and the
    // page arrays never move once materialized, so one remembered
    // (page number, pointer) pair skips the hash on the common path.
    mutable std::uint64_t _lastPn = ~std::uint64_t(0);
    mutable std::uint8_t *_lastPage = nullptr;
    Addr _brk = allocBase;
};

} // namespace via

#endif // VIA_MEM_BACKING_STORE_HH
