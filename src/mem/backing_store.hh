/**
 * @file
 * Sparse paged functional memory plus a bump allocator.
 *
 * The backing store holds the architectural contents of simulated
 * memory. Timing is handled entirely by MemSystem; this class is
 * purely functional so the kernels can be checked for correctness
 * against golden references.
 */

#ifndef VIA_MEM_BACKING_STORE_HH
#define VIA_MEM_BACKING_STORE_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "simcore/log.hh"
#include "simcore/types.hh"

namespace via
{

/** Byte-addressable sparse memory with typed helpers. */
class BackingStore
{
  public:
    static constexpr std::uint64_t pageBytes = 1 << 16;

    BackingStore() = default;

    /** Raw byte access. */
    void read(Addr addr, void *dst, std::size_t bytes) const;
    void write(Addr addr, const void *src, std::size_t bytes);

    /** Typed scalar access for trivially copyable types. */
    template <typename T>
    T
    load(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(Addr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &v, sizeof(T));
    }

    /**
     * Allocate a region of simulated memory.
     *
     * @param bytes region size
     * @param align required alignment (power of two)
     * @return base address of the region
     */
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 64);

    /** Copy a host array into simulated memory; returns its base. */
    template <typename T>
    Addr
    allocArray(const std::vector<T> &host, std::uint64_t align = 64)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        Addr base = alloc(host.size() * sizeof(T), align);
        if (!host.empty())
            write(base, host.data(), host.size() * sizeof(T));
        return base;
    }

    /** Copy a simulated array back out to the host. */
    template <typename T>
    std::vector<T>
    readArray(Addr base, std::size_t count) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::vector<T> out(count);
        if (count)
            read(base, out.data(), count * sizeof(T));
        return out;
    }

    /** Bytes currently handed out by the allocator. */
    std::uint64_t allocated() const { return _brk - allocBase; }

    /** Number of physical pages materialized. */
    std::size_t pagesTouched() const { return _pages.size(); }

  private:
    /** First address the allocator hands out (avoid address 0). */
    static constexpr Addr allocBase = 0x10000;

    std::uint8_t *pageFor(Addr addr);
    const std::uint8_t *pageForRead(Addr addr) const;

    mutable std::unordered_map<std::uint64_t,
                               std::unique_ptr<std::uint8_t[]>> _pages;
    Addr _brk = allocBase;
};

} // namespace via

#endif // VIA_MEM_BACKING_STORE_HH
