#include "mem/shared_llc.hh"

#include <algorithm>

#include "mem/mem_system.hh"
#include "simcore/log.hh"

namespace via
{

SharedLlcParams
SharedLlcParams::from(const MemSystemParams &mem, unsigned cores)
{
    via_assert(cores > 0, "shared LLC needs at least one core");
    SharedLlcParams p;
    p.cache = mem.levels.back();
    p.cache.name = "llc";
    p.cache.sizeBytes *= cores;
    p.cache.mshrs *= cores;
    p.dram = mem.dram;
    p.prefetch = mem.prefetch;
    return p;
}

SharedLlc::SharedLlc(const SharedLlcParams &params)
    : _params(params), _tags(params.cache), _dram(params.dram)
{
    via_assert(params.banks > 0, "LLC needs at least one bank");
    _banks.assign(params.banks, Resource(1));
    // The time-aware MSHR gate needs fill intervals (see
    // Cache::mshrFreeAt(Tick)); private caches skip the bookkeeping.
    _tags.trackFillSpans(true);
}

void
SharedLlc::attachCore(unsigned core_id, MemSystem *mem)
{
    via_assert(mem != nullptr, "null core hierarchy");
    via_assert(core_id == _cores.size(),
               "cores must attach densely in id order, got ",
               core_id, " after ", _cores.size());
    via_assert(core_id < 32, "directory sharer mask holds 32 cores");
    _cores.push_back(mem);
}

std::uint32_t
SharedLlc::bankOf(Addr line_addr) const
{
    Addr line = line_addr / _params.cache.lineBytes;
    return std::uint32_t(line % _banks.size());
}

bool
SharedLlc::invalidatePrivate(unsigned c, Addr line_addr)
{
    bool dirty = false;
    MemSystem &mem = *_cores[c];
    for (std::size_t i = 0; i < mem.numLevels(); ++i)
        dirty = mem.level(i).invalidate(line_addr) || dirty;
    return dirty;
}

Tick
SharedLlc::coherenceActions(unsigned core, Addr line_addr,
                            bool is_write)
{
    DirEntry &e = _dir[line_addr];
    const std::uint32_t me = std::uint32_t(1) << core;
    Tick extra = 0;

    if (e.owner >= 0 && unsigned(e.owner) != core) {
        // A remote core holds the line modified: it writes the line
        // back into the LLC and forwards it (invalidate-on-forward,
        // the simple end of MESI). The requester pays the
        // core-to-core transfer latency.
        invalidatePrivate(unsigned(e.owner), line_addr);
        e.sharers &= ~(std::uint32_t(1) << unsigned(e.owner));
        e.owner = -1;
        ++_stats.invalidations;
        ++_stats.dirtyForwards;
        extra = _params.dirtyForwardLatency;
    }

    if (is_write) {
        // Invalidate every other sharer's private copies.
        std::uint32_t others = e.sharers & ~me;
        for (unsigned c = 0; others != 0; ++c, others >>= 1)
            if (others & 1) {
                invalidatePrivate(c, line_addr);
                ++_stats.invalidations;
            }
        e.sharers = me;
        e.owner = int(core);
    } else {
        e.sharers |= me;
        if (e.owner == int(core))
            e.owner = -1; // self downgrade: line now clean-shared
    }
    return extra;
}

void
SharedLlc::backInvalidate(Addr line_addr)
{
    auto it = _dir.find(line_addr);
    if (it == _dir.end())
        return;
    std::uint32_t sharers = it->second.sharers;
    for (unsigned c = 0; sharers != 0; ++c, sharers >>= 1)
        if (sharers & 1) {
            invalidatePrivate(c, line_addr);
            ++_stats.invalidations;
        }
    _dir.erase(it);
}

Tick
SharedLlc::access(unsigned core, Addr line_addr, bool is_write,
                  Tick when)
{
    via_assert(core < _cores.size(), "access from unattached core ",
               core);
    bool tracing = _trace != nullptr && _trace->enabled();

    // Contention: the access holds its bank's pipe for one cycle.
    Tick start = _banks[bankOf(line_addr)].acquire(when);
    _stats.bankQueueCycles += start - when;

    Tick extra = coherenceActions(core, line_addr, is_write);
    // A dirty forward writes the owner's line back into the tags.
    if (extra > 0)
        _tags.access(line_addr, true);

    // Merge with an in-flight fill from any core (shared MSHRs) —
    // but only if that fill has actually issued by this request's
    // tick. Emission order across cores is not simulated-time
    // order: a core running ahead may have booked a fill that, from
    // this request's viewpoint, lies in the future. Stalling on it
    // would charge tens of thousands of phantom cycles; in time
    // order THIS request reaches memory first, so it fetches the
    // line itself and tightens the MSHR entry to the earlier fill.
    Tick inflight, inflight_issue;
    if (_tags.mshrLookup(line_addr, start, inflight,
                         inflight_issue)) {
        if (tracing) {
            TraceEvent ev;
            ev.kind = TraceEventKind::CacheMiss;
            ev.comp = TraceComponent::CacheL2;
            ev.start = ev.end = start;
            ev.a0 = line_addr;
            _trace->emit(ev);
        }
        _tags.mergeTouch(line_addr, is_write);
        if (inflight_issue <= start)
            return std::max(inflight,
                            start + _params.cache.hitLatency) +
                   extra;
        // In hardware this transfer happens once, at the earlier
        // time; the leading core's booking already paid the pipe
        // occupancy and byte counters, so the reordered fetch
        // charges only the idle-pipe latency instead of booking
        // (and double-counting) a second transfer.
        ++_stats.earlyFetches;
        Tick complete = std::max(start + _params.dram.latency,
                                 start + _params.cache.hitLatency);
        if (complete < inflight)
            _tags.mshrReserve(line_addr, complete, 0, start);
        return complete + extra;
    }

    auto res = _tags.access(line_addr, is_write);
    if (tracing) {
        TraceEvent ev;
        ev.kind = res.hit ? TraceEventKind::CacheHit
                          : TraceEventKind::CacheMiss;
        ev.comp = TraceComponent::CacheL2;
        ev.start = ev.end = start;
        ev.a0 = line_addr;
        _trace->emit(ev);
    }
    if (res.victimDirty) {
        _dram.serve(_params.cache.lineBytes, start, true);
        backInvalidate(res.victimLine);
    }

    if (res.hit)
        return start + _params.cache.hitLatency + extra;

    // Miss: gate on a shared MSHR, fill from the shared DRAM, and
    // prefetch the next lines behind the demand fill. The gate must
    // be the time-aware query: cores book the shared tags at
    // interleaved ticks, and the reservation-heap shortcut would
    // serialize a core behind the completions of whichever core
    // booked last (see Cache::mshrFreeAt(Tick)).
    Tick issue = _tags.mshrFreeAt(start);
    Tick fill = _dram.serve(_params.cache.lineBytes, issue, false);
    Tick complete =
        std::max(fill, issue + _params.cache.hitLatency);
    _tags.mshrReserve(line_addr, complete, issue - start, issue);

    const std::uint64_t line = _params.cache.lineBytes;
    for (std::uint32_t d = 1; d <= _params.prefetch.degree; ++d) {
        Addr target = line_addr + Addr(d) * line;
        Tick pf_inflight;
        if (_tags.contains(target) ||
            _tags.mshrLookup(target, issue, pf_inflight))
            continue;
        Tick pf_fill = _dram.serve(line, issue, false);
        auto pf = _tags.access(target, false);
        if (pf.victimDirty) {
            _dram.serve(line, pf_fill, true);
            backInvalidate(pf.victimLine);
        }
        _tags.mshrReserve(target, pf_fill, 0, issue);
        ++_prefetches;
    }
    return complete + extra;
}

void
SharedLlc::writeback(unsigned core, Addr line_addr, Tick when)
{
    via_assert(core < _cores.size(),
               "writeback from unattached core ", core);
    Tick start = _banks[bankOf(line_addr)].acquire(when);
    _stats.bankQueueCycles += start - when;

    // The evicting core loses its copy; the LLC copy becomes the
    // (dirty) home. No forward latency: nobody waits on a victim.
    DirEntry &e = _dir[line_addr];
    e.sharers &= ~(std::uint32_t(1) << core);
    if (e.owner == int(core))
        e.owner = -1;

    auto res = _tags.access(line_addr, true);
    if (res.victimDirty) {
        _dram.serve(_params.cache.lineBytes, start, true);
        backInvalidate(res.victimLine);
    }
}

void
SharedLlc::warmAccess(unsigned core, Addr line_addr, bool is_write)
{
    // Mirror the timed path's tag traffic, including the forward
    // writeback, so warm and detailed runs classify identically.
    if (coherenceActions(core, line_addr, is_write) > 0)
        _tags.warmAccess(line_addr, true);
    auto res = _tags.warmAccess(line_addr, is_write);
    if (res.victimDirty) {
        _dram.warmTraffic(_params.cache.lineBytes, true);
        backInvalidate(res.victimLine);
    }
    if (res.hit)
        return;
    _dram.warmTraffic(_params.cache.lineBytes, false);
    const std::uint64_t line = _params.cache.lineBytes;
    for (std::uint32_t d = 1; d <= _params.prefetch.degree; ++d) {
        Addr target = line_addr + Addr(d) * line;
        if (_tags.contains(target))
            continue;
        _dram.warmTraffic(line, false);
        auto pf = _tags.warmAccess(target, false);
        if (pf.victimDirty) {
            _dram.warmTraffic(line, true);
            backInvalidate(pf.victimLine);
        }
        ++_prefetches;
    }
}

void
SharedLlc::warmWriteback(unsigned core, Addr line_addr)
{
    DirEntry &e = _dir[line_addr];
    e.sharers &= ~(std::uint32_t(1) << core);
    if (e.owner == int(core))
        e.owner = -1;
    auto res = _tags.warmAccess(line_addr, true);
    if (res.victimDirty) {
        _dram.warmTraffic(_params.cache.lineBytes, true);
        backInvalidate(res.victimLine);
    }
}

void
SharedLlc::resetTiming()
{
    _tags.resetTiming();
    _dram.resetTiming();
    for (Resource &bank : _banks)
        bank.resetTiming();
}

void
SharedLlc::setTrace(TraceManager *trace)
{
    _trace = trace;
    _tags.setTrace(trace, TraceComponent::CacheL2);
    _dram.setTrace(trace);
}

void
SharedLlc::registerStats(StatSet &stats) const
{
    const CacheStats &cs = _tags.stats();
    stats.addScalar("llc.reads", "read accesses", &cs.reads);
    stats.addScalar("llc.writes", "write accesses", &cs.writes);
    stats.addScalar("llc.hits", "accesses served by the tags",
                    &cs.hits);
    stats.addScalar("llc.read_misses", "read misses", &cs.readMisses);
    stats.addScalar("llc.write_misses", "write misses",
                    &cs.writeMisses);
    stats.addScalar("llc.mshr_merges",
                    "secondary misses merged with in-flight fills",
                    &cs.mshrMerges);
    stats.addScalar("llc.writebacks", "dirty evictions",
                    &cs.writebacks);
    stats.addFormula("llc.miss_rate", "(misses + merges) / accesses",
                     [&cs] {
                         auto acc = cs.accesses();
                         return acc ? double(cs.demandMisses()) /
                                          double(acc)
                                    : 0.0;
                     });
    stats.addScalar("llc.invalidations",
                    "private copies dropped by coherence",
                    &_stats.invalidations);
    stats.addScalar("llc.dirty_forwards",
                    "modified lines forwarded core-to-core",
                    &_stats.dirtyForwards);
    stats.addScalar("llc.bank_queue_cycles",
                    "cycles accesses waited for a bank pipe",
                    &_stats.bankQueueCycles);
    stats.addScalar("llc.mshr_stall_cycles",
                    "cycles misses waited for a shared MSHR",
                    &cs.mshrStallCycles);
    stats.addScalar("llc.early_fetches",
                    "merges refused because the fill issues later",
                    &_stats.earlyFetches);
    stats.addScalar("llc.prefetches",
                    "lines fetched by the LLC prefetcher",
                    &_prefetches);

    const DramStats &ds = _dram.stats();
    stats.addScalar("dram.requests", "shared DRAM requests",
                    &ds.requests);
    stats.addScalar("dram.bytes_read", "bytes read from shared DRAM",
                    &ds.bytesRead);
    stats.addScalar("dram.bytes_written",
                    "bytes written to shared DRAM", &ds.bytesWritten);
    stats.addScalar("dram.busy_cycles", "shared DRAM pipe busy cycles",
                    &ds.busyCycles);
    stats.addScalar("dram.queue_cycles",
                    "cycles requests waited for the shared DRAM pipe",
                    &ds.queueCycles);
}

} // namespace via
