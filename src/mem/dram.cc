#include "mem/dram.hh"

#include <algorithm>
#include <cmath>

#include "simcore/log.hh"
#include "simcore/selfprof.hh"
#include "simcore/serialize.hh"

namespace via
{

Dram::Dram(const DramParams &params)
    : _params(params), _pipe(1)
{
    via_assert(params.bytesPerCycle > 0.0,
               "DRAM bandwidth must be positive");
}

Tick
Dram::serve(std::uint64_t bytes, Tick when, bool is_write)
{
    selfprof::Scope prof(selfprof::Domain::Dram);
    ++_stats.requests;
    if (is_write)
        _stats.bytesWritten += bytes;
    else
        _stats.bytesRead += bytes;

    auto xfer = std::max<Tick>(
        1, Tick(std::ceil(double(bytes) / _params.bytesPerCycle)));
    Tick start = _pipe.acquire(when, xfer);
    _stats.queueCycles += start - when;
    _stats.busyCycles += xfer;

    // Burst start/end: the span is the pipe occupancy (bandwidth),
    // not the access latency, so busy roll-ups read as utilization.
    if (_trace != nullptr && _trace->enabled()) {
        TraceEvent ev;
        ev.kind = TraceEventKind::DramBurst;
        ev.comp = TraceComponent::Dram;
        ev.start = start;
        ev.end = start + xfer;
        ev.a0 = bytes;
        ev.a1 = is_write ? 1 : 0;
        _trace->emit(ev);
    }
    return start + _params.latency + xfer;
}

void
Dram::saveState(Serializer &ser) const
{
    ser.tag("DRAM");
    ser.put(_params.latency);
    ser.putDouble(_params.bytesPerCycle);
    _pipe.saveState(ser);
    ser.put(_stats.requests);
    ser.put(_stats.bytesRead);
    ser.put(_stats.bytesWritten);
    ser.put(_stats.busyCycles);
    ser.put(_stats.queueCycles);
}

void
Dram::loadState(Deserializer &des)
{
    des.expectTag("DRAM");
    if (des.get<Tick>() != _params.latency ||
        des.getDouble() != _params.bytesPerCycle)
        throw SerializeError("DRAM parameter mismatch");
    _pipe.loadState(des);
    _stats.requests = des.get<std::uint64_t>();
    _stats.bytesRead = des.get<std::uint64_t>();
    _stats.bytesWritten = des.get<std::uint64_t>();
    _stats.busyCycles = des.get<std::uint64_t>();
    _stats.queueCycles = des.get<std::uint64_t>();
}

} // namespace via
