#include "mem/backing_store.hh"

#include <algorithm>

namespace via
{

std::uint8_t *
BackingStore::pageFor(Addr addr)
{
    std::uint64_t pn = addr / pageBytes;
    auto &page = _pages[pn];
    if (!page) {
        page = std::make_unique<std::uint8_t[]>(pageBytes);
        std::memset(page.get(), 0, pageBytes);
    }
    return page.get();
}

const std::uint8_t *
BackingStore::pageForRead(Addr addr) const
{
    // Reads of untouched memory observe zeroes; materialize the page
    // so the caller can memcpy uniformly. (mutable map)
    return const_cast<BackingStore *>(this)->pageFor(addr);
}

void
BackingStore::read(Addr addr, void *dst, std::size_t bytes) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (bytes > 0) {
        std::uint64_t off = addr % pageBytes;
        std::size_t chunk = std::min<std::size_t>(bytes,
                                                  pageBytes - off);
        std::memcpy(out, pageForRead(addr) + off, chunk);
        addr += chunk;
        out += chunk;
        bytes -= chunk;
    }
}

void
BackingStore::write(Addr addr, const void *src, std::size_t bytes)
{
    auto *in = static_cast<const std::uint8_t *>(src);
    while (bytes > 0) {
        std::uint64_t off = addr % pageBytes;
        std::size_t chunk = std::min<std::size_t>(bytes,
                                                  pageBytes - off);
        std::memcpy(pageFor(addr) + off, in, chunk);
        addr += chunk;
        in += chunk;
        bytes -= chunk;
    }
}

Addr
BackingStore::alloc(std::uint64_t bytes, std::uint64_t align)
{
    via_assert(align && (align & (align - 1)) == 0,
               "alignment must be a power of two, got ", align);
    _brk = (_brk + align - 1) & ~(align - 1);
    Addr base = _brk;
    _brk += std::max<std::uint64_t>(bytes, 1);
    return base;
}

} // namespace via
