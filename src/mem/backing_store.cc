#include "mem/backing_store.hh"

#include <algorithm>

#include "simcore/serialize.hh"

namespace via
{

std::uint8_t *
BackingStore::pageFor(Addr addr)
{
    std::uint64_t pn = addr / pageBytes;
    if (pn == _lastPn)
        return _lastPage;
    auto &page = _pages[pn];
    if (!page) {
        page = std::make_unique<std::uint8_t[]>(pageBytes);
        std::memset(page.get(), 0, pageBytes);
    }
    _lastPn = pn;
    _lastPage = page.get();
    return _lastPage;
}

const std::uint8_t *
BackingStore::pageForRead(Addr addr) const
{
    // Reads of untouched memory observe zeroes; materialize the page
    // so the caller can memcpy uniformly. (mutable map)
    return const_cast<BackingStore *>(this)->pageFor(addr);
}

void
BackingStore::readSlow(Addr addr, void *dst, std::size_t bytes) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (bytes > 0) {
        std::uint64_t off = addr % pageBytes;
        std::size_t chunk = std::min<std::size_t>(bytes,
                                                  pageBytes - off);
        std::memcpy(out, pageForRead(addr) + off, chunk);
        addr += chunk;
        out += chunk;
        bytes -= chunk;
    }
}

void
BackingStore::writeSlow(Addr addr, const void *src, std::size_t bytes)
{
    auto *in = static_cast<const std::uint8_t *>(src);
    while (bytes > 0) {
        std::uint64_t off = addr % pageBytes;
        std::size_t chunk = std::min<std::size_t>(bytes,
                                                  pageBytes - off);
        std::memcpy(pageFor(addr) + off, in, chunk);
        addr += chunk;
        in += chunk;
        bytes -= chunk;
    }
}

Addr
BackingStore::alloc(std::uint64_t bytes, std::uint64_t align)
{
    via_assert(align && (align & (align - 1)) == 0,
               "alignment must be a power of two, got ", align);
    _brk = (_brk + align - 1) & ~(align - 1);
    Addr base = _brk;
    _brk += std::max<std::uint64_t>(bytes, 1);
    return base;
}

void
BackingStore::saveState(Serializer &ser) const
{
    ser.tag("BSTR");
    ser.put(pageBytes);
    ser.put(_brk);
    // Sorted by page number so the byte stream does not depend on
    // the hash map's iteration order.
    std::vector<std::uint64_t> pns;
    pns.reserve(_pages.size());
    for (const auto &[pn, page] : _pages)
        pns.push_back(pn);
    std::sort(pns.begin(), pns.end());
    ser.put(std::uint64_t(pns.size()));
    for (std::uint64_t pn : pns) {
        ser.put(pn);
        ser.putBytes(_pages.at(pn).get(), pageBytes);
    }
}

void
BackingStore::loadState(Deserializer &des)
{
    des.expectTag("BSTR");
    if (des.get<std::uint64_t>() != pageBytes)
        throw SerializeError("backing store page size mismatch");
    Addr brk = des.get<Addr>();
    std::uint64_t n = des.get();
    decltype(_pages) pages;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t pn = des.get();
        auto page = std::make_unique<std::uint8_t[]>(pageBytes);
        des.getBytes(page.get(), pageBytes);
        pages[pn] = std::move(page);
    }
    _pages = std::move(pages);
    _lastPn = ~std::uint64_t(0);
    _lastPage = nullptr;
    _brk = brk;
}

} // namespace via
