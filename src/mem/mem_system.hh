/**
 * @file
 * The assembled memory hierarchy: N cache levels over DRAM.
 *
 * MemSystem computes the completion time of each access analytically
 * by walking the levels, charging hit latencies, reserving MSHRs on
 * misses, and serializing on the DRAM pipe. It is deterministic and
 * needs no event scheduling, yet reproduces the latency/bandwidth
 * behaviour the VIA paper's results hinge on.
 */

#ifndef VIA_MEM_MEM_SYSTEM_HH
#define VIA_MEM_MEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mem_types.hh"
#include "simcore/stats.hh"
#include "simcore/types.hh"

namespace via
{

class SharedLlc;

/** Parameters for the full hierarchy. */
struct MemSystemParams
{
    std::vector<CacheParams> levels;
    DramParams dram;
    PrefetchParams prefetch;

    /** A Haswell-like two-level default (Table I). */
    static MemSystemParams defaults();
};

/** Cache levels over a DRAM pipe with analytic access timing. */
class MemSystem
{
  public:
    explicit MemSystem(const MemSystemParams &params);

    /**
     * Perform one timed access.
     *
     * The access is split into cache lines; the result is the
     * completion of the slowest line. Stores complete when the line
     * is owned in L1 (write-allocate).
     *
     * @param addr byte address
     * @param bytes access size
     * @param is_write store access
     * @param when issue tick
     */
    MemResult access(Addr addr, std::uint64_t bytes, bool is_write,
                     Tick when);

    /**
     * Warm the hierarchy without timing (functional fast-forward).
     *
     * Walks the same level sequence as access() — tag installs, LRU
     * updates, dirty-victim writebacks, last-level prefetches — and
     * classifies each line into the regular hit/miss counters, but
     * books no MSHRs, no ports, and no DRAM pipe cycles. DRAM byte
     * counters advance via Dram::warmTraffic. The resulting tag,
     * LRU and dirty state is identical to a detailed run of the
     * same access stream.
     */
    void warmAccess(Addr addr, std::uint64_t bytes, bool is_write);

    /**
     * Forget all in-flight timing bookings — cache MSHRs and the
     * DRAM pipe — without touching tags or statistics. Called by
     * OoOCore::resetTiming between measurement intervals.
     */
    void resetTiming();

    /** Line size of the first level. */
    std::uint32_t lineBytes() const;

    /** Invalidate caches and reset DRAM pipe (not statistics). */
    void flush();

    std::size_t numLevels() const { return _levels.size(); }
    Cache &level(std::size_t i) { return *_levels.at(i); }
    const Cache &level(std::size_t i) const { return *_levels.at(i); }
    Dram &dram() { return _dram; }
    const Dram &dram() const { return _dram; }

    /**
     * Route last-private-level misses and writebacks to a shared
     * LLC instead of the private DRAM (multi-core mode). The private
     * DRAM then serves no traffic, the private prefetcher is
     * disabled (the shared level prefetches), and @p core_id tags
     * this hierarchy's requests for coherence and contention.
     */
    void attachShared(SharedLlc *shared, unsigned core_id);

    SharedLlc *shared() const { return _shared; }
    unsigned coreId() const { return _coreId; }

    /** Register all hierarchy statistics under "mem.". */
    void registerStats(StatSet &stats) const;

    /**
     * Attach a trace sink to the hierarchy: hit/miss instants are
     * emitted per level, MSHR occupancy by each cache, bursts by
     * the DRAM pipe.
     */
    void setTrace(TraceManager *trace);

    /** Lines fetched by the prefetcher (statistic). */
    std::uint64_t prefetches() const { return _prefetches; }

    /** Serialize every level, the DRAM and the prefetch counter. */
    void saveState(Serializer &ser) const;
    /** Restore state saved by saveState; validates the topology. */
    void loadState(Deserializer &des);

  private:
    /** Timed access for one line. */
    MemResult accessLine(Addr line_addr, bool is_write, Tick when);

    /** Untimed warming walk for one line. */
    void warmLine(Addr line_addr, bool is_write);

    /** Issue next-line prefetches after a demand miss. */
    void prefetchAfter(Addr line_addr, Tick when);

    /** Untimed next-line prefetch warming after a demand miss. */
    void warmPrefetch(Addr line_addr);

    /** Trace track for cache level @p i (L1, then L2 and below). */
    static TraceComponent levelComponent(std::size_t i);

    MemSystemParams _params;
    std::vector<std::unique_ptr<Cache>> _levels;
    Dram _dram;
    std::uint64_t _prefetches = 0;
    TraceManager *_trace = nullptr;
    SharedLlc *_shared = nullptr;
    unsigned _coreId = 0;
};

} // namespace via

#endif // VIA_MEM_MEM_SYSTEM_HH
