#include "mem/mem_system.hh"

#include <algorithm>

#include "mem/shared_llc.hh"
#include "simcore/log.hh"
#include "simcore/selfprof.hh"
#include "simcore/serialize.hh"

namespace via
{

MemSystemParams
MemSystemParams::defaults()
{
    MemSystemParams p;
    CacheParams l1;
    l1.name = "l1d";
    l1.sizeBytes = 32 * 1024;
    l1.assoc = 8;
    l1.lineBytes = 64;
    l1.hitLatency = 4;
    l1.mshrs = 16;
    CacheParams l2;
    l2.name = "l2";
    l2.sizeBytes = 1024 * 1024;
    l2.assoc = 16;
    l2.lineBytes = 64;
    l2.hitLatency = 12;
    l2.mshrs = 32;
    p.levels = {l1, l2};
    p.dram.latency = 180;
    // Single-channel DDR3-1600 (gem5's classic default): 12.8 GB/s
    // peak = 6.4 B/cycle at 2 GHz.
    p.dram.bytesPerCycle = 6.4;
    return p;
}

MemSystem::MemSystem(const MemSystemParams &params)
    : _params(params), _dram(params.dram)
{
    via_assert(!params.levels.empty(),
               "memory hierarchy needs at least one cache level");
    std::uint32_t line = params.levels.front().lineBytes;
    for (const auto &lp : params.levels) {
        via_assert(lp.lineBytes == line,
                   "all levels must share one line size");
        _levels.push_back(std::make_unique<Cache>(lp));
    }
}

void
MemSystem::attachShared(SharedLlc *shared, unsigned core_id)
{
    via_assert(shared != nullptr, "null shared LLC");
    via_assert(shared->params().cache.lineBytes == lineBytes(),
               "shared LLC line size must match the private levels");
    _shared = shared;
    _coreId = core_id;
    shared->attachCore(core_id, this);
}

std::uint32_t
MemSystem::lineBytes() const
{
    return _params.levels.front().lineBytes;
}

void
MemSystem::flush()
{
    for (auto &lvl : _levels)
        lvl->flush();
    _dram.resetTiming();
}

MemResult
MemSystem::accessLine(Addr line_addr, bool is_write, Tick when)
{
    bool tracing = _trace != nullptr && _trace->enabled();

    // Fast path: an L1 hit with no fill still in flight behaves
    // exactly like the full walk below (no merge possible, no
    // writeback on a hit) but costs one tag probe. tryHit books the
    // hit itself; a miss falls through having touched nothing.
    Cache &l1f = *_levels.front();
    if (!tracing && l1f.quiescentAt(when) &&
        l1f.tryHit(line_addr, is_write))
        return MemResult{when + l1f.params().hitLatency, 0};

    Tick latency = 0;
    int hit_level = -1;
    auto probe_event = [&](std::size_t level, bool hit) {
        TraceEvent ev;
        ev.kind = hit ? TraceEventKind::CacheHit
                      : TraceEventKind::CacheMiss;
        ev.comp = levelComponent(level);
        ev.start = ev.end = when;
        ev.a0 = line_addr;
        _trace->emit(ev);
    };

    // Walk the tags to find where the line comes from, accounting
    // writebacks and merging with in-flight fetches.
    for (std::size_t i = 0; i < _levels.size(); ++i) {
        Cache &cache = *_levels[i];
        latency += cache.params().hitLatency;

        // A miss to a line already being fetched merges with the
        // outstanding fill — no new MSHR is needed. The merge is a
        // secondary miss: counting it through access() would book a
        // hit (the tag was pre-installed when the primary miss
        // allocated) and silently inflate the hit rate.
        Tick inflight;
        if (cache.mshrLookup(line_addr, when, inflight)) {
            cache.mergeTouch(line_addr, is_write);
            if (tracing)
                probe_event(i, false);
            return MemResult{std::max(inflight, when + latency),
                             int(i)};
        }

        auto res = cache.access(line_addr, is_write);
        if (tracing)
            probe_event(i, res.hit);

        // A dirty eviction writes back into the level below (or DRAM
        // at the last level). The writeback consumes bandwidth but
        // does not delay this access.
        if (res.victimDirty) {
            if (i + 1 < _levels.size())
                _levels[i + 1]->access(res.victimLine, true);
            else if (_shared)
                _shared->writeback(_coreId, res.victimLine, when);
            else
                _dram.serve(cache.params().lineBytes, when, true);
        }

        if (res.hit) {
            hit_level = int(i);
            break;
        }
    }

    if (hit_level == 0)
        return MemResult{when + latency, 0};

    if (hit_level < 0 && _shared == nullptr &&
        _params.prefetch.degree > 0)
        prefetchAfter(line_addr, when);

    // The miss leaves L1 only when an L1 MSHR is available; a
    // DRAM-bound miss additionally needs a last-level MSHR.
    Cache &l1 = *_levels.front();
    Cache &last = *_levels.back();
    Tick issue = std::max(when, l1.mshrFreeAt());
    if (hit_level < 0 && _levels.size() > 1)
        issue = std::max(issue, last.mshrFreeAt());
    Tick stall = issue - when;

    Tick complete;
    if (hit_level > 0) {
        complete = issue + latency;
    } else {
        // The shared LLC (multi-core) or the private DRAM fills the
        // line; either way the fill serializes behind this
        // hierarchy's private latencies.
        Tick fill =
            _shared ? _shared->access(_coreId, line_addr, is_write,
                                      issue)
                    : _dram.serve(last.params().lineBytes, issue,
                                  false);
        complete = std::max(fill, issue + latency);
        if (_levels.size() > 1)
            last.mshrReserve(line_addr, complete, 0, issue);
    }
    l1.mshrReserve(line_addr, complete, stall, issue);
    return MemResult{complete, hit_level};
}

void
MemSystem::prefetchAfter(Addr line_addr, Tick when)
{
    // Next-N-line prefetch into the last level: consumes DRAM
    // bandwidth and tag space but never blocks the demand miss.
    Cache &last = *_levels.back();
    const std::uint64_t line = last.params().lineBytes;
    for (std::uint32_t d = 1; d <= _params.prefetch.degree; ++d) {
        Addr target = line_addr + Addr(d) * line;
        Tick inflight;
        if (last.contains(target) ||
            last.mshrLookup(target, when, inflight))
            continue;
        Tick fill = _dram.serve(line, when, false);
        auto res = last.access(target, false);
        // The victim cannot leave before the prefetched line that
        // evicts it has arrived: charge the writeback at fill time,
        // not at demand time.
        if (res.victimDirty)
            _dram.serve(line, fill, true);
        last.mshrReserve(target, fill, 0, when);
        ++_prefetches;
    }
}

void
MemSystem::warmLine(Addr line_addr, bool is_write)
{
    // Same level walk as accessLine, minus every timing effect. In
    // detailed mode a line with an in-flight fill merges via
    // mergeTouch (LRU/dirty refresh on the pre-installed tag); here
    // there are no fills in flight, so warmAccess classifies the
    // same touch as a hit — tag, LRU and dirty outcomes match.
    for (std::size_t i = 0; i < _levels.size(); ++i) {
        Cache &cache = *_levels[i];
        auto res = cache.warmAccess(line_addr, is_write);
        if (res.victimDirty) {
            if (i + 1 < _levels.size())
                _levels[i + 1]->warmAccess(res.victimLine, true);
            else if (_shared)
                _shared->warmWriteback(_coreId, res.victimLine);
            else
                _dram.warmTraffic(cache.params().lineBytes, true);
        }
        if (res.hit)
            return;
    }

    if (_shared) {
        _shared->warmAccess(_coreId, line_addr, is_write);
        return;
    }
    _dram.warmTraffic(_levels.back()->params().lineBytes, false);
    if (_params.prefetch.degree > 0)
        warmPrefetch(line_addr);
}

void
MemSystem::warmPrefetch(Addr line_addr)
{
    Cache &last = *_levels.back();
    const std::uint64_t line = last.params().lineBytes;
    for (std::uint32_t d = 1; d <= _params.prefetch.degree; ++d) {
        Addr target = line_addr + Addr(d) * line;
        if (last.contains(target))
            continue;
        _dram.warmTraffic(line, false);
        auto res = last.warmAccess(target, false);
        if (res.victimDirty)
            _dram.warmTraffic(line, true);
        ++_prefetches;
    }
}

void
MemSystem::warmAccess(Addr addr, std::uint64_t bytes, bool is_write)
{
    selfprof::Scope prof(selfprof::Domain::Cache);
    via_assert(bytes > 0, "zero-byte memory access");
    const std::uint64_t line = lineBytes();
    Addr first = addr & ~(Addr(line) - 1);
    Addr last = (addr + bytes - 1) & ~(Addr(line) - 1);
    for (Addr la = first; la <= last; la += line)
        warmLine(la, is_write);
}

void
MemSystem::resetTiming()
{
    for (auto &lvl : _levels)
        lvl->resetTiming();
    _dram.resetTiming();
}

void
MemSystem::saveState(Serializer &ser) const
{
    ser.tag("MSYS");
    ser.put(std::uint64_t(_levels.size()));
    for (const auto &lvl : _levels)
        lvl->saveState(ser);
    _dram.saveState(ser);
    ser.put(_prefetches);
}

void
MemSystem::loadState(Deserializer &des)
{
    des.expectTag("MSYS");
    if (des.get<std::uint64_t>() != _levels.size())
        throw SerializeError("cache level count mismatch");
    for (auto &lvl : _levels)
        lvl->loadState(des);
    _dram.loadState(des);
    _prefetches = des.get<std::uint64_t>();
}

TraceComponent
MemSystem::levelComponent(std::size_t i)
{
    return i == 0 ? TraceComponent::CacheL1 : TraceComponent::CacheL2;
}

void
MemSystem::setTrace(TraceManager *trace)
{
    _trace = trace;
    for (std::size_t i = 0; i < _levels.size(); ++i)
        _levels[i]->setTrace(trace, levelComponent(i));
    _dram.setTrace(trace);
}

MemResult
MemSystem::access(Addr addr, std::uint64_t bytes, bool is_write,
                  Tick when)
{
    selfprof::Scope prof(selfprof::Domain::Cache);
    via_assert(bytes > 0, "zero-byte memory access");
    const std::uint64_t line = lineBytes();
    Addr first = addr & ~(Addr(line) - 1);
    Addr last = (addr + bytes - 1) & ~(Addr(line) - 1);

    // Element accesses rarely straddle a line boundary.
    if (first == last) [[likely]]
        return accessLine(first, is_write, when);

    MemResult worst{when, 0};
    for (Addr la = first; la <= last; la += line) {
        MemResult r = accessLine(la, is_write, when);
        if (r.complete > worst.complete)
            worst = r;
    }
    return worst;
}

void
MemSystem::registerStats(StatSet &stats) const
{
    for (std::size_t i = 0; i < _levels.size(); ++i) {
        const Cache &cache = *_levels[i];
        const CacheStats &cs = cache.stats();
        std::string prefix = "mem." + cache.params().name + ".";
        stats.addScalar(prefix + "reads", "read accesses", &cs.reads);
        stats.addScalar(prefix + "writes", "write accesses",
                        &cs.writes);
        stats.addScalar(prefix + "hits", "accesses served by the tags",
                        &cs.hits);
        stats.addScalar(prefix + "read_misses", "read misses",
                        &cs.readMisses);
        stats.addScalar(prefix + "write_misses", "write misses",
                        &cs.writeMisses);
        stats.addScalar(prefix + "mshr_merges",
                        "secondary misses merged with in-flight fills",
                        &cs.mshrMerges);
        stats.addScalar(prefix + "writebacks", "dirty evictions",
                        &cs.writebacks);
        stats.addFormula(prefix + "miss_rate",
                         "(misses + merges) / accesses",
                         [&cs] {
                             auto acc = cs.accesses();
                             return acc ? double(cs.demandMisses()) /
                                              double(acc)
                                        : 0.0;
                         });
    }
    // In shared-LLC mode the private DRAM and prefetcher serve no
    // traffic; their stats live on the shared level instead.
    if (_shared != nullptr)
        return;
    const DramStats &ds = _dram.stats();
    stats.addScalar("mem.dram.requests", "DRAM requests",
                    &ds.requests);
    stats.addScalar("mem.dram.bytes_read", "bytes read from DRAM",
                    &ds.bytesRead);
    stats.addScalar("mem.dram.bytes_written", "bytes written to DRAM",
                    &ds.bytesWritten);
    stats.addScalar("mem.dram.busy_cycles", "DRAM pipe busy cycles",
                    &ds.busyCycles);
    stats.addScalar("mem.dram.queue_cycles",
                    "cycles requests waited for the DRAM pipe",
                    &ds.queueCycles);
    stats.addScalar("mem.prefetches",
                    "lines fetched by the L2 prefetcher",
                    &_prefetches);
}

} // namespace via
