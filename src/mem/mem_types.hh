/**
 * @file
 * Shared parameter and result types for the memory hierarchy.
 */

#ifndef VIA_MEM_MEM_TYPES_HH
#define VIA_MEM_MEM_TYPES_HH

#include <cstdint>
#include <string>

#include "simcore/types.hh"

namespace via
{

/** Geometry and timing of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t lineBytes = 64;
    Tick hitLatency = 4;       //!< cycles from access to data
    std::uint32_t mshrs = 16;  //!< outstanding misses supported
};

/** Timing of the DRAM pipe. */
struct DramParams
{
    Tick latency = 200;          //!< load-to-use cycles on an idle pipe
    double bytesPerCycle = 12.8; //!< peak sustained bandwidth
    std::uint32_t queueDepth = 64;
};

/**
 * Next-N-line prefetcher at the last cache level. Disabled by
 * default to match the paper's baseline configuration; the
 * ablation benchmark shows how much of VIA's win survives an
 * aggressive prefetcher.
 */
struct PrefetchParams
{
    std::uint32_t degree = 0; //!< lines fetched ahead (0 = off)
};

/** Outcome of a timed memory access. */
struct MemResult
{
    Tick complete = 0;   //!< tick at which the data is available
    int levelServed = 0; //!< 0-based cache level, or -1 for DRAM
};

} // namespace via

#endif // VIA_MEM_MEM_TYPES_HH
