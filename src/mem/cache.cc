#include "mem/cache.hh"

#include <algorithm>

#include "simcore/log.hh"

namespace via
{

Cache::Cache(const CacheParams &params)
    : _params(params)
{
    via_assert(params.lineBytes &&
                   (params.lineBytes & (params.lineBytes - 1)) == 0,
               "line size must be a power of two");
    via_assert(params.assoc > 0, "associativity must be positive");
    std::uint64_t lines = params.sizeBytes / params.lineBytes;
    via_assert(lines % params.assoc == 0,
               "cache geometry does not divide evenly: ", lines,
               " lines, assoc ", params.assoc);
    _numSets = lines / params.assoc;
    via_assert(_numSets > 0, "cache too small for one set");
    _lines.resize(lines);
    _mshrBusyUntil.assign(params.mshrs, 0);
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return std::size_t((line_addr / _params.lineBytes) % _numSets);
}

Cache::LookupResult
Cache::access(Addr line_addr, bool is_write)
{
    via_assert(line_addr % _params.lineBytes == 0,
               "unaligned line address");
    if (is_write)
        ++_stats.writes;
    else
        ++_stats.reads;

    Line *set = &_lines[setIndex(line_addr) * _params.assoc];
    Line *victim = set;
    for (std::uint32_t way = 0; way < _params.assoc; ++way) {
        Line &line = set[way];
        if (line.valid && line.tag == line_addr) {
            line.lruStamp = ++_lruClock;
            line.dirty = line.dirty || is_write;
            ++_stats.hits;
            return LookupResult{true, false, 0};
        }
        // Prefer invalid ways, then the least recently used one.
        if (!victim->valid)
            continue;
        if (!line.valid || line.lruStamp < victim->lruStamp)
            victim = &set[way];
    }

    if (is_write)
        ++_stats.writeMisses;
    else
        ++_stats.readMisses;

    LookupResult res;
    res.hit = false;
    if (victim->valid && victim->dirty) {
        res.victimDirty = true;
        res.victimLine = victim->tag;
        ++_stats.writebacks;
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->dirty = is_write;
    victim->lruStamp = ++_lruClock;
    return res;
}

void
Cache::mergeTouch(Addr line_addr, bool is_write)
{
    via_assert(line_addr % _params.lineBytes == 0,
               "unaligned line address");
    if (is_write)
        ++_stats.writes;
    else
        ++_stats.reads;
    ++_stats.mshrMerges;

    // The primary miss pre-installed the tag; refresh its recency
    // and dirty state. If it was since evicted the merge still
    // completes off the in-flight fill, so nothing else to do.
    Line *set = &_lines[setIndex(line_addr) * _params.assoc];
    for (std::uint32_t way = 0; way < _params.assoc; ++way) {
        Line &line = set[way];
        if (line.valid && line.tag == line_addr) {
            line.lruStamp = ++_lruClock;
            line.dirty = line.dirty || is_write;
            return;
        }
    }
}

bool
Cache::contains(Addr line_addr) const
{
    const Line *set = &_lines[setIndex(line_addr) * _params.assoc];
    for (std::uint32_t way = 0; way < _params.assoc; ++way)
        if (set[way].valid && set[way].tag == line_addr)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &line : _lines)
        line = Line{};
    _inflight.clear();
    std::fill(_mshrBusyUntil.begin(), _mshrBusyUntil.end(), Tick(0));
}

bool
Cache::mshrLookup(Addr line_addr, Tick when, Tick &complete) const
{
    // An entry whose completion is in the past is a fill that
    // already landed, not an in-flight miss. It is reclaimed by the
    // horizon sweep in mshrReserve; a const lookup never mutates.
    auto it = _inflight.find(line_addr);
    if (it == _inflight.end() || it->second <= when)
        return false;
    complete = it->second;
    return true;
}

Tick
Cache::mshrFreeAt() const
{
    return *std::min_element(_mshrBusyUntil.begin(),
                             _mshrBusyUntil.end());
}

void
Cache::mshrReserve(Addr line_addr, Tick complete, Tick stall,
                   Tick issue)
{
    auto slot = std::min_element(_mshrBusyUntil.begin(),
                                 _mshrBusyUntil.end());
    *slot = complete;
    _inflight[line_addr] = complete;
    _stats.mshrStallCycles += stall;

    if (_trace != nullptr && _trace->enabled()) {
        TraceEvent ev;
        ev.kind = TraceEventKind::MshrAlloc;
        ev.comp = _traceComp;
        ev.start = std::min(issue, complete);
        ev.end = complete;
        ev.a0 = line_addr;
        ev.a1 = stall;
        _trace->emit(ev);
    }
    // Bound the inflight map: drop entries that completed long ago.
    if (_inflight.size() > 4 * _mshrBusyUntil.size())
        pruneInflight(mshrFreeAt());
}

void
Cache::pruneInflight(Tick horizon)
{
    for (auto it = _inflight.begin(); it != _inflight.end();) {
        if (it->second <= horizon)
            it = _inflight.erase(it);
        else
            ++it;
    }
}

} // namespace via
