#include "mem/cache.hh"

#include <algorithm>
#include <functional>

#include "simcore/log.hh"
#include "simcore/serialize.hh"

namespace via
{

Cache::Cache(const CacheParams &params)
    : _params(params)
{
    via_assert(params.lineBytes &&
                   (params.lineBytes & (params.lineBytes - 1)) == 0,
               "line size must be a power of two");
    via_assert(params.assoc > 0, "associativity must be positive");
    std::uint64_t lines = params.sizeBytes / params.lineBytes;
    via_assert(lines % params.assoc == 0,
               "cache geometry does not divide evenly: ", lines,
               " lines, assoc ", params.assoc);
    _numSets = lines / params.assoc;
    via_assert(_numSets > 0, "cache too small for one set");
    while ((std::uint32_t(1) << _lineShift) < params.lineBytes)
        ++_lineShift;
    _setsPow2 = (_numSets & (_numSets - 1)) == 0;
    _lines.resize(lines);
    _mshrBusyUntil.assign(params.mshrs, 0);
}

Cache::LookupResult
Cache::access(Addr line_addr, bool is_write)
{
    via_assert((line_addr & (_params.lineBytes - 1)) == 0,
               "unaligned line address");
    if (is_write)
        ++_stats.writes;
    else
        ++_stats.reads;

    Line *set = &_lines[setIndex(line_addr) * _params.assoc];
    Line *victim = set;
    for (std::uint32_t way = 0; way < _params.assoc; ++way) {
        Line &line = set[way];
        if (line.valid && line.tag == line_addr) {
            line.lruStamp = ++_lruClock;
            line.dirty = line.dirty || is_write;
            ++_stats.hits;
            return LookupResult{true, false, 0};
        }
        // Prefer invalid ways, then the least recently used one.
        if (!victim->valid)
            continue;
        if (!line.valid || line.lruStamp < victim->lruStamp)
            victim = &set[way];
    }

    if (is_write)
        ++_stats.writeMisses;
    else
        ++_stats.readMisses;

    LookupResult res;
    res.hit = false;
    if (victim->valid && victim->dirty) {
        res.victimDirty = true;
        res.victimLine = victim->tag;
        ++_stats.writebacks;
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->dirty = is_write;
    victim->lruStamp = ++_lruClock;
    return res;
}

void
Cache::mergeTouch(Addr line_addr, bool is_write)
{
    via_assert((line_addr & (_params.lineBytes - 1)) == 0,
               "unaligned line address");
    if (is_write)
        ++_stats.writes;
    else
        ++_stats.reads;
    ++_stats.mshrMerges;

    // The primary miss pre-installed the tag; refresh its recency
    // and dirty state. If it was since evicted the merge still
    // completes off the in-flight fill, so nothing else to do.
    Line *set = &_lines[setIndex(line_addr) * _params.assoc];
    for (std::uint32_t way = 0; way < _params.assoc; ++way) {
        Line &line = set[way];
        if (line.valid && line.tag == line_addr) {
            line.lruStamp = ++_lruClock;
            line.dirty = line.dirty || is_write;
            return;
        }
    }
}

bool
Cache::contains(Addr line_addr) const
{
    const Line *set = &_lines[setIndex(line_addr) * _params.assoc];
    for (std::uint32_t way = 0; way < _params.assoc; ++way)
        if (set[way].valid && set[way].tag == line_addr)
            return true;
    return false;
}

bool
Cache::containsDirty(Addr line_addr) const
{
    const Line *set = &_lines[setIndex(line_addr) * _params.assoc];
    for (std::uint32_t way = 0; way < _params.assoc; ++way)
        if (set[way].valid && set[way].tag == line_addr)
            return set[way].dirty;
    return false;
}

bool
Cache::invalidate(Addr line_addr)
{
    Line *set = &_lines[setIndex(line_addr) * _params.assoc];
    for (std::uint32_t way = 0; way < _params.assoc; ++way) {
        Line &line = set[way];
        if (line.valid && line.tag == line_addr) {
            bool dirty = line.dirty;
            line = Line{};
            return dirty;
        }
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : _lines)
        line = Line{};
    _inflight.clear();
    _inflightHorizon = 0;
    std::fill(_mshrBusyUntil.begin(), _mshrBusyUntil.end(), Tick(0));
    _recentFills.clear();
    _fillNext = 0;
}

bool
Cache::mshrLookup(Addr line_addr, Tick when, Tick &complete) const
{
    // An entry whose completion is in the past is a fill that
    // already landed, not an in-flight miss. It is reclaimed by the
    // horizon sweep in mshrReserve; a const lookup never mutates.
    auto it = _inflight.find(line_addr);
    if (it == _inflight.end() || it->second.complete <= when)
        return false;
    complete = it->second.complete;
    return true;
}

bool
Cache::mshrLookup(Addr line_addr, Tick when, Tick &complete,
                  Tick &issue) const
{
    auto it = _inflight.find(line_addr);
    if (it == _inflight.end() || it->second.complete <= when)
        return false;
    complete = it->second.complete;
    issue = it->second.issue;
    return true;
}

Tick
Cache::mshrFreeAt() const
{
    return _mshrBusyUntil[0];
}

Tick
Cache::mshrFreeAt(Tick when) const
{
    const std::size_t cap = _mshrBusyUntil.size();
    // A fill occupies an MSHR over [issue, complete): an interval
    // booked entirely in the future holds no slot at `when`. The
    // ring is bounded (4 x cap), so the scan is cheap.
    std::vector<Tick> live;
    live.reserve(cap);
    for (const auto &f : _recentFills)
        if (f.issue <= when && when < f.complete)
            live.push_back(f.complete);
    if (live.size() < cap)
        return when;
    // A slot frees once the in-flight count drops below capacity:
    // at the (live - cap + 1)-th earliest completion.
    std::size_t k = live.size() - cap;
    std::nth_element(live.begin(),
                     live.begin() + std::ptrdiff_t(k), live.end());
    return live[k];
}

void
Cache::mshrReserve(Addr line_addr, Tick complete, Tick stall,
                   Tick issue)
{
    // _mshrBusyUntil is a min-heap: replace the root (the earliest
    // free slot) and sift it down.
    std::size_t i = 0;
    const std::size_t n = _mshrBusyUntil.size();
    for (;;) {
        std::size_t kid = 2 * i + 1;
        if (kid >= n)
            break;
        if (kid + 1 < n &&
            _mshrBusyUntil[kid + 1] < _mshrBusyUntil[kid])
            ++kid;
        if (_mshrBusyUntil[kid] >= complete)
            break;
        _mshrBusyUntil[i] = _mshrBusyUntil[kid];
        i = kid;
    }
    _mshrBusyUntil[i] = complete;

    _inflight[line_addr] = Inflight{complete,
                                    std::min(issue, complete)};
    if (complete > _inflightHorizon)
        _inflightHorizon = complete;
    _stats.mshrStallCycles += stall;

    // Record the occupancy interval for mshrFreeAt(Tick). The ring
    // overwrites oldest-first; fills evicted while still live make
    // the query optimistic, never more conservative.
    if (_trackFills) {
        if (_recentFills.empty())
            _recentFills.reserve(4 * n);
        FillSpan span{std::min(issue, complete), complete};
        if (_recentFills.size() < 4 * n) {
            _recentFills.push_back(span);
        } else {
            _recentFills[_fillNext] = span;
            _fillNext = (_fillNext + 1) % _recentFills.size();
        }
    }

    if (_trace != nullptr && _trace->enabled()) {
        TraceEvent ev;
        ev.kind = TraceEventKind::MshrAlloc;
        ev.comp = _traceComp;
        ev.start = std::min(issue, complete);
        ev.end = complete;
        ev.a0 = line_addr;
        ev.a1 = stall;
        _trace->emit(ev);
    }
    // Bound the inflight map: drop entries that completed long ago.
    if (_inflight.size() > 4 * _mshrBusyUntil.size())
        pruneInflight(mshrFreeAt());
}

void
Cache::pruneInflight(Tick horizon)
{
    for (auto it = _inflight.begin(); it != _inflight.end();) {
        if (it->second.complete <= horizon)
            it = _inflight.erase(it);
        else
            ++it;
    }
}

void
Cache::resetTiming()
{
    _inflight.clear();
    _inflightHorizon = 0;
    std::fill(_mshrBusyUntil.begin(), _mshrBusyUntil.end(), Tick(0));
    _recentFills.clear();
    _fillNext = 0;
}

void
Cache::saveState(Serializer &ser) const
{
    ser.tag("CACH");
    ser.put(_params.sizeBytes);
    ser.put(_params.assoc);
    ser.put(_params.lineBytes);
    ser.put(std::uint32_t(_mshrBusyUntil.size()));

    ser.put(std::uint64_t(_lines.size()));
    for (const Line &line : _lines) {
        ser.put(line.tag);
        ser.put(std::uint8_t((line.valid ? 1 : 0) |
                             (line.dirty ? 2 : 0)));
        ser.put(line.lruStamp);
    }
    ser.put(_lruClock);

    ser.put(_stats.reads);
    ser.put(_stats.writes);
    ser.put(_stats.hits);
    ser.put(_stats.readMisses);
    ser.put(_stats.writeMisses);
    ser.put(_stats.mshrMerges);
    ser.put(_stats.writebacks);
    ser.put(_stats.mshrStallCycles);

    // Sorted by address so the byte stream does not depend on the
    // hash map's iteration order.
    std::vector<std::pair<Addr, Tick>> inflight;
    inflight.reserve(_inflight.size());
    for (const auto &[addr, entry] : _inflight)
        inflight.push_back({addr, entry.complete});
    std::sort(inflight.begin(), inflight.end());
    ser.put(std::uint64_t(inflight.size()));
    for (const auto &[addr, complete] : inflight) {
        ser.put(addr);
        ser.put(complete);
    }
    ser.putVec(_mshrBusyUntil);
}

void
Cache::loadState(Deserializer &des)
{
    des.expectTag("CACH");
    if (des.get<std::uint64_t>() != _params.sizeBytes ||
        des.get<std::uint32_t>() != _params.assoc ||
        des.get<std::uint32_t>() != _params.lineBytes ||
        des.get<std::uint32_t>() != _mshrBusyUntil.size())
        throw SerializeError("cache geometry mismatch (" +
                             _params.name + ")");

    std::uint64_t n = des.get();
    if (n != _lines.size())
        throw SerializeError("cache line count mismatch");
    for (Line &line : _lines) {
        line.tag = des.get<Addr>();
        auto flags = des.get<std::uint8_t>();
        line.valid = (flags & 1) != 0;
        line.dirty = (flags & 2) != 0;
        line.lruStamp = des.get<std::uint64_t>();
    }
    _lruClock = des.get<std::uint64_t>();

    _stats.reads = des.get<std::uint64_t>();
    _stats.writes = des.get<std::uint64_t>();
    _stats.hits = des.get<std::uint64_t>();
    _stats.readMisses = des.get<std::uint64_t>();
    _stats.writeMisses = des.get<std::uint64_t>();
    _stats.mshrMerges = des.get<std::uint64_t>();
    _stats.writebacks = des.get<std::uint64_t>();
    _stats.mshrStallCycles = des.get<std::uint64_t>();

    std::uint64_t inflight = des.get();
    _inflight.clear();
    _inflightHorizon = 0;
    for (std::uint64_t i = 0; i < inflight; ++i) {
        Addr addr = des.get<Addr>();
        Tick complete = des.get<Tick>();
        _inflight[addr] = Inflight{complete, 0};
        if (complete > _inflightHorizon)
            _inflightHorizon = complete;
    }
    auto mshrs = des.getVec<Tick>();
    if (mshrs.size() != _mshrBusyUntil.size())
        throw SerializeError("MSHR count mismatch");
    _mshrBusyUntil = std::move(mshrs);
    // Timing depends only on the multiset of busy times; restore the
    // heap invariant regardless of the order the file stored.
    std::make_heap(_mshrBusyUntil.begin(), _mshrBusyUntil.end(),
                   std::greater<Tick>());
}

} // namespace via
