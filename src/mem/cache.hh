/**
 * @file
 * A set-associative write-back, write-allocate cache tag model.
 *
 * Cache tracks tags and dirty bits functionally (data lives in
 * BackingStore) and accounts for MSHR occupancy so that a stream of
 * misses is throttled to the number of outstanding-miss registers.
 * Timing is computed analytically by MemSystem, which walks the
 * levels on each access.
 */

#ifndef VIA_MEM_CACHE_HH
#define VIA_MEM_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/mem_types.hh"
#include "simcore/types.hh"
#include "trace/trace.hh"

namespace via
{

class Serializer;
class Deserializer;

/**
 * Per-level statistics, exposed raw for StatSet registration.
 *
 * Every access is classified exactly once: hit, miss, or MSHR merge
 * (a secondary miss to a line already in flight). The invariant
 * checker (src/check) relies on reads + writes == hits + misses +
 * mshrMerges holding at all times.
 */
struct CacheStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t hits = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t mshrMerges = 0; //!< secondary misses merged in flight
    std::uint64_t writebacks = 0;
    std::uint64_t mshrStallCycles = 0;

    std::uint64_t accesses() const { return reads + writes; }
    std::uint64_t misses() const { return readMisses + writeMisses; }
    /** Misses including secondary (merged) ones. */
    std::uint64_t demandMisses() const { return misses() + mshrMerges; }
};

/** One level of set-associative cache with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /** Outcome of a tag lookup. */
    struct LookupResult
    {
        bool hit = false;
        bool victimDirty = false; //!< an eviction wrote back a line
        Addr victimLine = 0;      //!< line address of the writeback
    };

    /**
     * Access one cache line: probe the tags, allocate on miss (LRU
     * victim), update dirty bit for writes.
     *
     * @param line_addr line-aligned address
     * @param is_write store access (sets dirty on the allocated line)
     * @return hit/miss and any dirty eviction
     */
    LookupResult access(Addr line_addr, bool is_write);

    /**
     * Hit-only probe: on a hit, performs exactly what access() would
     * (LRU touch, dirty update, hit accounting) and returns true. On
     * a miss, mutates and counts nothing — the caller falls back to
     * the full access() walk, which repeats the probe and books the
     * miss. This is MemSystem's single-branch L1 fast path.
     */
    bool
    tryHit(Addr line_addr, bool is_write)
    {
        Line *set = &_lines[setIndex(line_addr) * _params.assoc];
        for (std::uint32_t way = 0; way < _params.assoc; ++way) {
            Line &line = set[way];
            if (line.valid && line.tag == line_addr) {
                line.lruStamp = ++_lruClock;
                line.dirty = line.dirty || is_write;
                if (is_write)
                    ++_stats.writes;
                else
                    ++_stats.reads;
                ++_stats.hits;
                return true;
            }
        }
        return false;
    }

    /**
     * True when no in-flight fill can complete after @p when: every
     * mshrLookup at @p when would report a miss. Gates the L1 hit
     * fast path without a hash probe per access.
     */
    bool
    quiescentAt(Tick when) const
    {
        return when >= _inflightHorizon;
    }

    /**
     * Account an access that merged with an in-flight fill. The tag
     * was installed when the primary miss allocated, so a regular
     * access() would misclassify the merge as a hit; this counts it
     * as an mshrMerge instead and only touches LRU/dirty state.
     */
    void mergeTouch(Addr line_addr, bool is_write);

    /** Probe without modifying state (for tests/inspection). */
    bool contains(Addr line_addr) const;

    /** Probe without modifying state; true when present and dirty. */
    bool containsDirty(Addr line_addr) const;

    /**
     * Coherence invalidation: drop @p line_addr if present.
     * @return true when the dropped line was dirty (the caller owns
     *         propagating the writeback / dirty-forward)
     */
    bool invalidate(Addr line_addr);

    /** Invalidate everything (e.g. between benchmark phases). */
    void flush();

    /**
     * Warm-only access (functional fast-forward): identical tag,
     * LRU, dirty and hit/miss accounting to access(), but since no
     * timed fills are in flight an access that would merge with an
     * MSHR in detailed mode hits on the pre-installed tag here. Both
     * classifications keep accesses == hits + misses + merges.
     */
    LookupResult warmAccess(Addr line_addr, bool is_write)
    {
        return access(line_addr, is_write);
    }

    /**
     * Forget in-flight miss bookings (absolute ticks) without
     * touching tags or statistics. Needed between measurement
     * intervals: a stale completion tick from before the reset would
     * stall every post-reset miss behind it.
     */
    void resetTiming();

    /**
     * Earliest tick a new miss can allocate an MSHR (the earliest
     * slot-free time). The caller gates the miss's issue on this and
     * then calls mshrReserve with the resulting completion.
     */
    Tick mshrFreeAt() const;

    /**
     * Earliest tick at or after @p when with a free MSHR, judged by
     * the in-flight fills themselves rather than the reservation
     * heap. The heap assumes reservations arrive in time order —
     * true for a private cache fed by one core's monotone dispatch,
     * wrong for a shared cache fed by interleaved core timelines:
     * after one core books a stretch of misses, the heap holds only
     * that core's latest completions, and a sibling core accessing
     * at an earlier tick would be gated behind them even though at
     * its tick most MSHRs are genuinely free. Counting the fills
     * actually in flight at @p when is booking-order-independent.
     * Requires trackFillSpans(true).
     */
    Tick mshrFreeAt(Tick when) const;

    /** Record fill intervals for mshrFreeAt(Tick) (shared LLC). */
    void trackFillSpans(bool on) { _trackFills = on; }

    /**
     * Occupy the earliest MSHR slot until @p complete for the miss
     * to @p line_addr. @p stall (issue delay caused by MSHR
     * pressure) is recorded for statistics; @p issue (when the miss
     * left this level) bounds the traced MSHR-occupancy span.
     */
    void mshrReserve(Addr line_addr, Tick complete, Tick stall = 0,
                     Tick issue = 0);

    /** Attach a trace sink, attributing events to track @p comp. */
    void
    setTrace(TraceManager *trace, TraceComponent comp)
    {
        _trace = trace;
        _traceComp = comp;
    }

    /** If the line has an in-flight miss, returns its completion. */
    bool mshrLookup(Addr line_addr, Tick when, Tick &complete) const;

    /**
     * As above, but also reports when the in-flight fill issued.
     * A shared cache fed by interleaved core timelines needs the
     * issue tick to decide whether a merge is physically sensible:
     * a fill booked by a core running ahead in simulated time has
     * not issued yet from a lagging requester's viewpoint — the
     * lagging request is first in time order and must fetch the
     * line itself rather than stall until the future fill lands.
     */
    bool mshrLookup(Addr line_addr, Tick when, Tick &complete,
                    Tick &issue) const;

    const CacheParams &params() const { return _params; }
    CacheStats &stats() { return _stats; }
    const CacheStats &stats() const { return _stats; }

    /** Serialize tags, LRU, dirty bits, MSHRs, stats (checkpoints). */
    void saveState(Serializer &ser) const;
    /** Restore state saved by saveState; validates the geometry. */
    void loadState(Deserializer &des);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    /**
     * Line size is a power of two (asserted in the constructor), so
     * the line number is a shift; the set fold is a mask when the
     * set count cooperates and a modulo otherwise.
     */
    std::size_t
    setIndex(Addr line_addr) const
    {
        Addr line = line_addr >> _lineShift;
        if (_setsPow2)
            return std::size_t(line) & (_numSets - 1);
        return std::size_t(line % _numSets);
    }

    /** Drop in-flight entries whose fills completed by @p horizon. */
    void pruneInflight(Tick horizon);

    CacheParams _params;
    std::size_t _numSets;
    unsigned _lineShift = 0;
    bool _setsPow2 = false;
    std::vector<Line> _lines; //!< numSets * assoc, row-major by set
    std::uint64_t _lruClock = 0;
    CacheStats _stats;

    /** Outstanding miss completion times, by line address. */
    /**
     * One in-flight fill. The issue tick exists for the time-aware
     * queries only (shared LLC); checkpoints persist just the
     * completion, restoring issue = 0 ("issued long ago"), which is
     * exact for the private hierarchies that checkpoints cover.
     */
    struct Inflight
    {
        Tick complete = 0;
        Tick issue = 0;
    };
    std::unordered_map<Addr, Inflight> _inflight;
    /** Latest completion among _inflight entries (0 = none). */
    Tick _inflightHorizon = 0;

    /**
     * Issue/completion intervals of recent fills, a bounded ring
     * for the time-aware mshrFreeAt(Tick) occupancy query. Opt-in
     * (trackFillSpans) so private caches do not pay the per-miss
     * append; not checkpointed: only the shared LLC (which has no
     * checkpoint path) enables and consults it.
     */
    struct FillSpan
    {
        Tick issue = 0;
        Tick complete = 0;
    };
    std::vector<FillSpan> _recentFills;
    std::size_t _fillNext = 0;
    bool _trackFills = false;
    /** Completion times occupying MSHR slots (a min-heap). */
    std::vector<Tick> _mshrBusyUntil;

    TraceManager *_trace = nullptr;
    TraceComponent _traceComp = TraceComponent::CacheL1;
};

} // namespace via

#endif // VIA_MEM_CACHE_HH
