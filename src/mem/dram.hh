/**
 * @file
 * A bandwidth-limited DRAM pipe model.
 *
 * The controller is modelled as a single pipe with a fixed access
 * latency plus a transfer time proportional to the request size.
 * Back-to-back requests serialize on the pipe, which is what creates
 * the bandwidth wall that sparse kernels run into.
 */

#ifndef VIA_MEM_DRAM_HH
#define VIA_MEM_DRAM_HH

#include <cstdint>

#include "mem/mem_types.hh"
#include "simcore/resource.hh"
#include "simcore/types.hh"
#include "trace/trace.hh"

namespace via
{

class Serializer;
class Deserializer;

/** DRAM statistics, raw counters for StatSet registration. */
struct DramStats
{
    std::uint64_t requests = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t busyCycles = 0;  //!< pipe occupied (bandwidth used)
    std::uint64_t queueCycles = 0; //!< time requests waited for pipe
};

/** Single-pipe DRAM timing model. */
class Dram
{
  public:
    explicit Dram(const DramParams &params);

    /**
     * Serve one request.
     *
     * @param bytes request size
     * @param when issue tick
     * @param is_write write traffic (affects stats only)
     * @return tick at which the data is available (reads) or the
     *         request is retired (writes)
     */
    Tick serve(std::uint64_t bytes, Tick when, bool is_write);

    /**
     * Account traffic without booking the pipe (functional
     * fast-forward): request and byte counters advance so bandwidth
     * statistics stay meaningful, but busyCycles and the pipe
     * resource are untouched — the busy-vs-pipe reconciliation
     * audited by src/check therefore still holds in warmed runs.
     */
    void
    warmTraffic(std::uint64_t bytes, bool is_write)
    {
        ++_stats.requests;
        if (is_write)
            _stats.bytesWritten += bytes;
        else
            _stats.bytesRead += bytes;
    }

    /** Serialize pipe bookings and statistics (checkpoints). */
    void saveState(Serializer &ser) const;
    /** Restore state saved by saveState. */
    void loadState(Deserializer &des);

    const DramParams &params() const { return _params; }
    DramStats &stats() { return _stats; }
    const DramStats &stats() const { return _stats; }

    /** Reset timing state (not statistics). */
    void resetTiming() { _pipe.resetTiming(); }

    /** Cumulative cycles the pipe was occupied (never reset). */
    std::uint64_t pipeBusy() const { return _pipe.busy(); }

    /** Latest tick the pipe has been booked to (timing-reset aware). */
    Tick pipeHorizon() const { return _pipe.horizon(); }

    /** Attach a trace sink for burst start/end events. */
    void setTrace(TraceManager *trace) { _trace = trace; }

  private:
    DramParams _params;
    /**
     * The data pipe, booked per cycle: requests with late issue
     * times never block earlier-time requests of other program
     * positions (no head-of-line artifact).
     */
    Resource _pipe;
    DramStats _stats;
    TraceManager *_trace = nullptr;
};

} // namespace via

#endif // VIA_MEM_DRAM_HH
