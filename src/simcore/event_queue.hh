/**
 * @file
 * A deterministic tick-based event queue.
 *
 * The timing models in this repository are cycle-driven state machines
 * clocked by OoOCore, but several components (DRAM controller, drain
 * logic, statistics dumps) want to schedule work at a future tick.
 * EventQueue provides that service with deterministic ordering:
 * events that fire on the same tick execute in scheduling order.
 */

#ifndef VIA_SIMCORE_EVENT_QUEUE_HH
#define VIA_SIMCORE_EVENT_QUEUE_HH

#include <cstddef>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "simcore/types.hh"

namespace via
{

/**
 * Deterministic priority queue of events.
 *
 * Invariants:
 *  - run() never executes an event scheduled before curTick();
 *  - two events on the same tick run in the order they were scheduled.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks (core cycles). */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule an action at an absolute tick.
     *
     * @param when absolute tick; must be >= curTick()
     * @param action callback to run
     * @param name debug label
     * @return an id usable with cancel()
     */
    std::uint64_t schedule(Tick when, std::function<void()> action,
                           std::string name = {});

    /** Schedule relative to now. */
    std::uint64_t
    scheduleIn(Tick delta, std::function<void()> action,
               std::string name = {})
    {
        return schedule(_curTick + delta, std::move(action),
                        std::move(name));
    }

    /** Lazily cancel a pending event; safe if it already fired. */
    void cancel(std::uint64_t id);

    /** True if no live events remain. */
    bool empty() const { return live() == 0; }

    /** Number of live (non-cancelled, pending) events. */
    std::size_t live() const;

    /** Tick of the next live event, or MAX_TICK when empty. */
    Tick nextTick();

    /**
     * Run events until the queue is empty or the next event lies
     * beyond @p limit. Advances curTick() to each event's time.
     *
     * @return number of events executed
     */
    std::size_t run(Tick limit = MAX_TICK);

    /**
     * Advance time to @p when, executing every event scheduled up to
     * and including that tick. curTick() ends at exactly @p when.
     */
    void advanceTo(Tick when);

    /** Total events ever executed (statistic). */
    std::uint64_t executed() const { return _executed; }

    /**
     * Jump curTick without running anything (checkpoint restore).
     * Only meaningful when the queue is empty — pending callbacks
     * cannot be serialized, so the checkpoint layer rejects a save
     * or restore with live events before calling this.
     */
    void resetTick(Tick when) { _curTick = when; }

  private:
    /** A scheduled callback, owned by value inside the heap. */
    struct Event
    {
        Tick when = 0;
        std::uint64_t id = 0; //!< tie-breaker: scheduling order
        std::function<void()> action;
        std::string name;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    /** Drop cancelled events from the top of the heap. */
    void skim();

    Tick _curTick = 0;
    std::uint64_t _nextId = 0;
    std::uint64_t _executed = 0;
    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>> _queue;
    std::unordered_set<std::uint64_t> _pending;   //!< ids in _queue
    std::unordered_set<std::uint64_t> _cancelled; //!< pending+dead
};

} // namespace via

#endif // VIA_SIMCORE_EVENT_QUEUE_HH
