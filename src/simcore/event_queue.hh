/**
 * @file
 * A deterministic tick-based event queue.
 *
 * The timing models in this repository are cycle-driven state machines
 * clocked by OoOCore, but several components (periodic stat sampling,
 * watchdogs, drain logic) want to schedule work at a future tick.
 * EventQueue provides that service with deterministic ordering:
 * events that fire on the same tick execute in scheduling order.
 *
 * Events are slab-allocated: each scheduled event occupies a slot in
 * a recycled vector, the pending order lives in a binary min-heap of
 * slot indices, and the callback is a plain function pointer plus a
 * context pointer — no std::function allocation, no per-event
 * std::string. Debug names are string literals (borrowed, never
 * copied). Event ids encode their slot and a monotone sequence
 * number, so cancel() is O(1) with no side table; a cancelled slot
 * is reclaimed when the heap pops past it, which bounds all
 * bookkeeping by the number of genuinely pending events.
 */

#ifndef VIA_SIMCORE_EVENT_QUEUE_HH
#define VIA_SIMCORE_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcore/log.hh"
#include "simcore/types.hh"

namespace via
{

/**
 * Deterministic priority queue of events.
 *
 * Invariants:
 *  - run() never executes an event scheduled before curTick();
 *  - two events on the same tick run in the order they were scheduled.
 */
class EventQueue
{
  public:
    /** Event callback: a free function over a context pointer. */
    using Callback = void (*)(void *ctx);

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks (core cycles). */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when absolute tick; must be >= curTick()
     * @param fn callback to run
     * @param ctx opaque pointer passed to @p fn; must outlive the
     *            event
     * @param name debug label; borrowed (pass a string literal)
     * @return an id usable with cancel()
     */
    std::uint64_t schedule(Tick when, Callback fn, void *ctx,
                           const char *name = nullptr);

    /** Schedule relative to now. */
    std::uint64_t
    scheduleIn(Tick delta, Callback fn, void *ctx,
               const char *name = nullptr)
    {
        return schedule(_curTick + delta, fn, ctx, name);
    }

    /**
     * Schedule a member function on @p obj:
     *   q.schedule<&Timeline::tick>(when, &timeline);
     */
    template <auto MF, class T>
    std::uint64_t
    schedule(Tick when, T *obj, const char *name = nullptr)
    {
        return schedule(when, &memberThunk<MF, T>, obj, name);
    }

    template <auto MF, class T>
    std::uint64_t
    scheduleIn(Tick delta, T *obj, const char *name = nullptr)
    {
        return schedule<MF, T>(_curTick + delta, obj, name);
    }

    /** Lazily cancel a pending event; safe if it already fired. */
    void cancel(std::uint64_t id);

    /** True if no live events remain. */
    bool empty() const { return _live == 0; }

    /** Number of live (non-cancelled, pending) events. */
    std::size_t live() const { return _live; }

    /** Tick of the next live event, or MAX_TICK when empty. */
    Tick nextTick();

    /**
     * Run events until the queue is empty or the next event lies
     * beyond @p limit. Advances curTick() to each event's time.
     *
     * @return number of events executed
     */
    std::size_t run(Tick limit = MAX_TICK);

    /**
     * Advance time to @p when, executing every event scheduled up to
     * and including that tick. curTick() ends at exactly @p when.
     * The empty-queue case (the overwhelmingly common one on the
     * per-instruction path) is a branch and a store.
     */
    void
    advanceTo(Tick when)
    {
        via_assert(when >= _curTick, "advanceTo(", when,
                   ") is in the past, now=", _curTick);
        if (_heap.empty()) {
            _curTick = when;
            return;
        }
        run(when);
        _curTick = when;
    }

    /** Total events ever executed (statistic). */
    std::uint64_t executed() const { return _executed; }

    /**
     * Jump curTick without running anything (checkpoint restore).
     * Only meaningful when the queue is empty — pending callbacks
     * cannot be serialized, so the checkpoint layer rejects a save
     * or restore with live events before calling this.
     */
    void resetTick(Tick when) { _curTick = when; }

    /**
     * Slots allocated in the slab (live + cancelled-but-unpopped +
     * free). Exposed so tests can assert that cancellation
     * bookkeeping stays bounded on long runs.
     */
    std::size_t slabSize() const { return _slab.size(); }

    /** Cancelled events not yet reclaimed from the heap. */
    std::size_t
    cancelledPending() const
    {
        return _heap.size() - _live;
    }

  private:
    /** A scheduled callback, held by value in the slab. */
    struct Event
    {
        Tick when = 0;
        std::uint64_t id = 0; //!< (seq << slotBits) | slot
        Callback fn = nullptr; //!< nullptr marks a cancelled slot
        void *ctx = nullptr;
        const char *name = nullptr;
    };

    /** Slot-index width inside an event id. */
    static constexpr unsigned slotBits = 20;
    static constexpr std::uint64_t slotMask =
        (std::uint64_t(1) << slotBits) - 1;

    template <auto MF, class T>
    static void
    memberThunk(void *ctx)
    {
        (static_cast<T *>(ctx)->*MF)();
    }

    bool heapLess(std::uint32_t a, std::uint32_t b) const;
    void heapPush(std::uint32_t slot);
    void heapPop();
    std::uint32_t allocSlot();

    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::size_t _live = 0;
    std::vector<Event> _slab;
    std::vector<std::uint32_t> _freeSlots;
    std::vector<std::uint32_t> _heap; //!< slot indices, min (when,id)
};

} // namespace via

#endif // VIA_SIMCORE_EVENT_QUEUE_HH
