/**
 * @file
 * Logging and error reporting in the gem5 tradition.
 *
 * panic()  - an internal simulator invariant was violated (a bug);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  - the simulation cannot continue due to a user error
 *            (bad configuration, invalid input); exits cleanly.
 * warn()   - something may be modelled imperfectly but execution can
 *            continue.
 * inform() - status messages with no negative connotation.
 */

#ifndef VIA_SIMCORE_LOG_HH
#define VIA_SIMCORE_LOG_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace via
{

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel { Quiet = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity; messages above the level are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Fold a parameter pack into a string via ostringstream. */
template <typename... Args>
std::string
fmtCat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace via

/** Abort: an invariant of the simulator itself was violated. */
#define via_panic(...) \
    ::via::detail::panicImpl(__FILE__, __LINE__, \
                             ::via::detail::fmtCat(__VA_ARGS__))

/** Exit(1): the user asked for something the simulator cannot do. */
#define via_fatal(...) \
    ::via::detail::fatalImpl(__FILE__, __LINE__, \
                             ::via::detail::fmtCat(__VA_ARGS__))

/** Non-fatal: functionality may be modelled imperfectly. */
#define via_warn(...) \
    ::via::detail::warnImpl(::via::detail::fmtCat(__VA_ARGS__))

/** Status message for the user. */
#define via_inform(...) \
    ::via::detail::informImpl(::via::detail::fmtCat(__VA_ARGS__))

/** Developer chatter, hidden unless LogLevel::Debug. */
#define via_debug(...) \
    ::via::detail::debugImpl(::via::detail::fmtCat(__VA_ARGS__))

/** Condition-checked panic, in the spirit of gem5's panic_if. */
#define via_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            via_panic("assertion '" #cond "' failed: ", \
                      ::via::detail::fmtCat(__VA_ARGS__)); \
        } \
    } while (0)

#endif // VIA_SIMCORE_LOG_HH
