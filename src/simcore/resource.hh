/**
 * @file
 * A bandwidth resource booked per cycle on a sliding window.
 */

#ifndef VIA_SIMCORE_RESOURCE_HH
#define VIA_SIMCORE_RESOURCE_HH

#include <cstdint>
#include <vector>

#include "simcore/types.hh"

namespace via
{

class Serializer;
class Deserializer;

/**
 * k operations per cycle, booked on a sliding window of cycles.
 *
 * Unlike a "k units with next-free times" model, per-cycle booking
 * has no head-of-line blocking: an instruction whose operands are
 * ready far in the future books a future cycle without starving
 * younger, already-ready instructions — exactly how issue ports and
 * cache ports behave in an out-of-order core.
 *
 * Bookings before the window base (older than any live instruction's
 * dispatch tick) can no longer occur because dispatch is monotone;
 * the window slides forward accordingly.
 */
class Resource
{
  public:
    explicit Resource(std::uint32_t units = 1);

    /**
     * Book @p occupancy consecutive cycles with spare capacity at or
     * after @p when.
     *
     * The single-cycle booking (nearly every call on the
     * per-instruction path) is inlined: one bounds check, one
     * window-slide check, then a scan that almost always stops on
     * its first probe.
     *
     * @return the first booked cycle
     */
    Tick
    acquire(Tick when, Tick occupancy = 1)
    {
        if (occupancy == 1) [[likely]] {
            if (when < _base)
                when = _base;
            maybeSlide(when + 1);
            std::size_t idx = std::size_t(when) & (windowSize - 1);
            while (_counts[idx] >= _units) [[unlikely]] {
                ++when;
                idx = (idx + 1) & (windowSize - 1);
                maybeSlide(when + 1);
            }
            ++_counts[idx];
            ++_busy;
            if (when + 1 > _horizon)
                _horizon = when + 1;
            return when;
        }
        return acquireSlow(when, occupancy);
    }

    /** Release all bookings (new kernel run). */
    void resetTiming();

    std::uint32_t units() const { return _units; }

    /** Total busy slot-cycles accumulated (utilization statistic). */
    std::uint64_t busy() const { return _busy; }

    /**
     * One past the latest cycle ever booked (0 if none). Reset by
     * resetTiming, unlike busy(); busy-vs-horizon reconciliation must
     * therefore be skipped across timing resets.
     */
    Tick horizon() const { return _horizon; }

    /** Serialize booking state (checkpoints). */
    void saveState(Serializer &ser) const;
    /** Restore state saved by saveState; validates unit count. */
    void loadState(Deserializer &des);

  private:
    /** Cycles tracked by the sliding window (a power of two). */
    static constexpr std::size_t windowSize = 1 << 16;

    std::uint16_t &slot(Tick t);

    /** Slide check, inline; the slide itself is rare and cold. */
    void
    maybeSlide(Tick t)
    {
        if (t >= _base + windowSize) [[unlikely]]
            slide(t);
    }

    void slide(Tick when);
    Tick acquireSlow(Tick when, Tick occupancy);

    std::uint32_t _units = 1;
    std::vector<std::uint16_t> _counts;
    Tick _base = 0; //!< first cycle represented by the window
    std::uint64_t _busy = 0;
    Tick _horizon = 0; //!< one past the latest booked cycle
};


} // namespace via

#endif // VIA_SIMCORE_RESOURCE_HH
