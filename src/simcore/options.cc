#include "simcore/options.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "simcore/log.hh"
#include "simcore/selfprof.hh"

namespace via
{

namespace
{

const char *
typeName(OptType t)
{
    switch (t) {
    case OptType::String: return "string";
    case OptType::Int: return "int";
    case OptType::UInt: return "uint";
    case OptType::Double: return "double";
    case OptType::Bool: return "bool";
    }
    return "?";
}

bool
parseBool(const std::string &v, bool &out)
{
    if (v == "1" || v == "true" || v == "yes" || v == "on") {
        out = true;
        return true;
    }
    if (v == "0" || v == "false" || v == "no" || v == "off") {
        out = false;
        return true;
    }
    return false;
}

/** Format a range bound without trailing zeros. */
std::string
boundStr(double v)
{
    char buf[32];
    if (v == std::int64_t(v) && std::abs(v) < 9.0e15)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

} // namespace

Options::Options(std::string binary, std::string description)
    : _binary(std::move(binary)),
      _description(std::move(description))
{
    addFlag("help", "print this key table and exit");
}

Options &
Options::add(OptionSpec spec)
{
    via_assert(!spec.key.empty(), "empty option key");
    via_assert(find(spec.key) == nullptr, "option '", spec.key,
               "' registered twice in ", _binary);
    _specs.push_back(std::move(spec));
    return *this;
}

Options &
Options::addString(const std::string &key, const std::string &dflt,
                   const std::string &help)
{
    return add({key, OptType::String, dflt, help});
}

Options &
Options::addInt(const std::string &key, std::int64_t dflt,
                const std::string &help, std::int64_t min,
                std::int64_t max)
{
    OptionSpec spec{key, OptType::Int, std::to_string(dflt), help};
    spec.min = double(min);
    spec.max = double(max);
    return add(std::move(spec));
}

Options &
Options::addUInt(const std::string &key, std::uint64_t dflt,
                 const std::string &help, std::uint64_t min,
                 std::uint64_t max)
{
    OptionSpec spec{key, OptType::UInt, std::to_string(dflt), help};
    spec.min = double(min);
    spec.max = double(max);
    return add(std::move(spec));
}

Options &
Options::addDouble(const std::string &key, double dflt,
                   const std::string &help, double min, double max)
{
    OptionSpec spec{key, OptType::Double, boundStr(dflt), help};
    spec.min = min;
    spec.max = max;
    return add(std::move(spec));
}

Options &
Options::addBool(const std::string &key, bool dflt,
                 const std::string &help)
{
    return add({key, OptType::Bool, dflt ? "1" : "0", help});
}

Options &
Options::addFlag(const std::string &key, const std::string &help)
{
    return addBool(key, false, help);
}

bool
Options::knows(const std::string &key) const
{
    return find(key) != nullptr;
}

const OptionSpec *
Options::find(const std::string &key) const
{
    for (const OptionSpec &spec : _specs)
        if (spec.key == key)
            return &spec;
    return nullptr;
}

std::vector<std::string>
Options::keys() const
{
    std::vector<std::string> out;
    out.reserve(_specs.size());
    for (const OptionSpec &spec : _specs)
        out.push_back(spec.key);
    std::sort(out.begin(), out.end());
    return out;
}

std::string
Options::checkValue(const OptionSpec &spec,
                    const std::string &value) const
{
    auto rangeCheck = [&](double v) -> std::string {
        if (v < spec.min || v > spec.max)
            return "value " + value + " out of range [" +
                   boundStr(spec.min) + ", " + boundStr(spec.max) +
                   "]";
        return "";
    };

    switch (spec.type) {
    case OptType::String:
        return "";
    case OptType::Bool: {
        bool b;
        if (!parseBool(value, b))
            return "expected a boolean (1/0/true/false), got '" +
                   value + "'";
        return "";
    }
    case OptType::Int:
    case OptType::UInt: {
        try {
            std::size_t pos = 0;
            std::int64_t v = std::stoll(value, &pos);
            if (pos != value.size())
                throw std::invalid_argument(value);
            if (spec.type == OptType::UInt && v < 0)
                return "expected a non-negative integer, got '" +
                       value + "'";
            return rangeCheck(double(v));
        } catch (const std::exception &) {
            return "expected an integer, got '" + value + "'";
        }
    }
    case OptType::Double: {
        try {
            std::size_t pos = 0;
            double v = std::stod(value, &pos);
            if (pos != value.size())
                throw std::invalid_argument(value);
            return rangeCheck(v);
        } catch (const std::exception &) {
            return "expected a number, got '" + value + "'";
        }
    }
    }
    return "";
}

void
Options::usageError(const std::string &message) const
{
    std::fprintf(stderr, "%s: %s\n", _binary.c_str(),
                 message.c_str());
    std::fprintf(stderr, "valid keys:");
    for (const std::string &key : keys())
        std::fprintf(stderr, " %s", key.c_str());
    std::fprintf(stderr, "\n(run %s help=1 for the key table)\n",
                 _binary.c_str());
    std::exit(2);
}

void
Options::parse(const std::vector<std::string> &args)
{
    via_assert(!_parsed, "Options::parse called twice");
    _parsed = true;

    bool help = false;
    for (const std::string &arg : args) {
        if (arg == "--help" || arg == "-h") {
            help = true;
            continue;
        }
        auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0)
            usageError("malformed argument '" + arg +
                       "' (expected key=value)");
        std::string key = arg.substr(0, eq);
        std::string value = arg.substr(eq + 1);

        const OptionSpec *spec = find(key);
        if (spec == nullptr)
            usageError("unknown key '" + key + "'");
        if (_values.has(key))
            usageError("duplicate key '" + key +
                       "' (each key may be given once)");
        std::string diag = checkValue(*spec, value);
        if (!diag.empty())
            usageError("key '" + key + "': " + diag);
        _values.set(key, value);
    }

    if (help || getBool("help")) {
        printHelp(std::cout);
        std::exit(0);
    }
}

void
Options::parse(int argc, char **argv, int first)
{
    std::vector<std::string> args;
    for (int i = first; i < argc; ++i)
        args.emplace_back(argv[i]);
    parse(args);
}

const OptionSpec &
Options::require(const std::string &key, OptType type) const
{
    const OptionSpec *spec = find(key);
    via_assert(spec != nullptr, _binary, " reads unregistered key '",
               key, "'");
    via_assert(spec->type == type, "key '", key, "' is ",
               typeName(spec->type), ", read as ", typeName(type));
    return *spec;
}

std::string
Options::getString(const std::string &key) const
{
    const OptionSpec &spec = require(key, OptType::String);
    return _values.getString(key, spec.dflt);
}

std::int64_t
Options::getInt(const std::string &key) const
{
    const OptionSpec &spec = require(key, OptType::Int);
    return _values.getInt(key, std::stoll(spec.dflt));
}

std::uint64_t
Options::getUInt(const std::string &key) const
{
    const OptionSpec &spec = require(key, OptType::UInt);
    return _values.getUInt(key, std::stoull(spec.dflt));
}

double
Options::getDouble(const std::string &key) const
{
    const OptionSpec &spec = require(key, OptType::Double);
    return _values.getDouble(key, std::stod(spec.dflt));
}

bool
Options::getBool(const std::string &key) const
{
    const OptionSpec &spec = require(key, OptType::Bool);
    return _values.getBool(key, spec.dflt == "1");
}

bool
Options::given(const std::string &key) const
{
    return _values.has(key);
}

void
Options::printHelp(std::ostream &os) const
{
    os << _binary << " — " << _description << "\n\n";
    os << "usage: " << _binary << " [key=value ...]\n\n";

    std::vector<const OptionSpec *> sorted;
    for (const OptionSpec &spec : _specs)
        sorted.push_back(&spec);
    std::sort(sorted.begin(), sorted.end(),
              [](const OptionSpec *a, const OptionSpec *b) {
                  return a->key < b->key;
              });

    std::size_t key_w = 3, type_w = 4, dflt_w = 7;
    for (const OptionSpec *spec : sorted) {
        key_w = std::max(key_w, spec->key.size());
        type_w = std::max(
            type_w, std::string(typeName(spec->type)).size());
        dflt_w = std::max(dflt_w, spec->dflt.size());
    }

    char line[256];
    std::snprintf(line, sizeof(line), "  %-*s  %-*s  %-*s  %s\n",
                  int(key_w), "key", int(type_w), "type",
                  int(dflt_w), "default", "description");
    os << line;
    for (const OptionSpec *spec : sorted) {
        std::snprintf(line, sizeof(line), "  %-*s  %-*s  %-*s  %s\n",
                      int(key_w), spec->key.c_str(), int(type_w),
                      typeName(spec->type), int(dflt_w),
                      spec->dflt.c_str(), spec->help.c_str());
        os << line;
    }
}

void
addThreadsOption(Options &opts)
{
    opts.addUInt("threads", 0,
                 "worker threads (0 = hardware concurrency)");
}

void
addSelfProfOption(Options &opts)
{
    opts.addFlag("selfprof",
                 "report host wall-time by simulator component at "
                 "exit");
}

void
applySelfProfOption(const Options &opts)
{
    if (!opts.getBool("selfprof"))
        return;
    selfprof::enable(true);
    selfprof::installAtExitReport();
}

} // namespace via
