#include "simcore/log.hh"

#include <atomic>
#include <cstdio>
#include <stdexcept>

namespace via
{

namespace
{
// Atomic so concurrent sweep workers (simcore/parallel.hh) can read
// the level while another thread configures it; relaxed is enough
// because the level carries no other data.
std::atomic<LogLevel> g_level{LogLevel::Warn};
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace via
