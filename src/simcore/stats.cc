#include "simcore/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "simcore/log.hh"

namespace via
{

Distribution::Distribution(double bucket_lo, double bucket_hi,
                           std::size_t n_buckets)
    : _lo(bucket_lo), _hi(bucket_hi),
      _buckets(std::max<std::size_t>(n_buckets, 1), 0)
{
    via_assert(bucket_hi > bucket_lo, "empty bucket range");
}

void
Distribution::sample(double v)
{
    if (_count == 0) {
        _min = _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    ++_count;
    _sum += v;

    // Clamp in the double domain before any integer conversion: a
    // cast of NaN or a value outside int64's range is undefined
    // behaviour, so out-of-range samples (v == _hi included, which
    // floors to one past the last bucket) are routed to the end
    // buckets without ever casting them.
    double width = (_hi - _lo) / double(_buckets.size());
    double pos = std::floor((v - _lo) / width);
    std::size_t idx;
    if (!(pos > 0.0))
        idx = 0; // below range, first bucket, or NaN
    else if (pos >= double(_buckets.size()))
        idx = _buckets.size() - 1;
    else
        idx = static_cast<std::size_t>(pos);
    ++_buckets[idx];
}

double
Distribution::percentile(double p) const
{
    if (_count == 0)
        return 0.0; // empty-histogram guard
    if (!(p > 0.0))
        return _min;
    if (p >= 100.0)
        return _max;

    // Rank of the target sample (1-based, fractional).
    double target = p / 100.0 * double(_count);
    double width = (_hi - _lo) / double(_buckets.size());
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        std::uint64_t n = _buckets[i];
        if (n == 0)
            continue;
        if (double(below + n) >= target) {
            // Interpolate within the crossing bucket: assume its n
            // samples spread evenly across the bucket's width.
            double frac = (target - double(below)) / double(n);
            double v = _lo + width * (double(i) + frac);
            // End buckets absorb out-of-range samples, so their
            // nominal edges can overshoot the data; clamp to the
            // exact observed range.
            return std::min(std::max(v, _min), _max);
        }
        below += n;
    }
    return _max;
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _count = 0;
    _sum = _min = _max = 0.0;
}

StatId
StatSet::insert(Entry entry)
{
    // Re-registering a name replaces the view but keeps the id, so
    // interned handles stay valid.
    auto it = _index.find(entry.name);
    if (it != _index.end()) {
        _entries[it->second] = std::move(entry);
        return it->second;
    }
    StatId id = _entries.size();
    _index.emplace(entry.name, id);
    _entries.push_back(std::move(entry));
    return id;
}

StatId
StatSet::addScalar(const std::string &name, const std::string &desc,
                   const std::uint64_t *value)
{
    via_assert(value, "null counter for stat ", name);
    Entry e;
    e.name = name;
    e.desc = desc;
    e.kind = Kind::U64;
    e.ptr = value;
    return insert(std::move(e));
}

StatId
StatSet::addScalar(const std::string &name, const std::string &desc,
                   const double *value)
{
    via_assert(value, "null counter for stat ", name);
    Entry e;
    e.name = name;
    e.desc = desc;
    e.kind = Kind::F64;
    e.ptr = value;
    return insert(std::move(e));
}

StatId
StatSet::addFormula(const std::string &name, const std::string &desc,
                    std::function<double()> fn)
{
    via_assert(fn, "null formula for stat ", name);
    Entry e;
    e.name = name;
    e.desc = desc;
    e.kind = Kind::Formula;
    e.fn = std::move(fn);
    return insert(std::move(e));
}

StatId
StatSet::id(const std::string &name) const
{
    auto it = _index.find(name);
    if (it == _index.end())
        via_fatal("unknown statistic '", name, "'");
    return it->second;
}

double
StatSet::get(const std::string &name) const
{
    return get(id(name));
}

bool
StatSet::has(const std::string &name) const
{
    return _index.count(name) != 0;
}

std::vector<StatId>
StatSet::sortedIds() const
{
    std::vector<StatId> ids(_entries.size());
    for (StatId i = 0; i < ids.size(); ++i)
        ids[i] = i;
    std::sort(ids.begin(), ids.end(), [this](StatId a, StatId b) {
        return _entries[a].name < _entries[b].name;
    });
    return ids;
}

std::vector<std::string>
StatSet::names() const
{
    std::vector<std::string> out;
    out.reserve(_entries.size());
    for (StatId i : sortedIds())
        out.push_back(_entries[i].name);
    return out;
}

void
StatSet::dumpJson(std::ostream &os) const
{
    // Values are formatted into a local buffer rather than through
    // the stream's (caller-controlled, possibly truncating) float
    // settings: counters print as exact integers, everything else
    // with max_digits10 so a parse-back round-trips bit-exactly.
    char buf[40];
    os << "{";
    bool first = true;
    for (StatId i : sortedIds()) {
        const Entry &e = _entries[i];
        if (!first)
            os << ",";
        first = false;
        double v = eval(e);
        os << "\n  \"" << e.name << "\": ";
        if (!std::isfinite(v)) {
            os << "null";
        } else if (v == std::floor(v) && std::abs(v) < 9.0e15) {
            // Integral and within the double-exact range: print
            // without a decimal point or exponent (9e15 < 2^53).
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(v));
            os << buf;
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", v);
            os << buf;
        }
    }
    os << "\n}\n";
}

void
StatSet::dump(std::ostream &os) const
{
    for (StatId i : sortedIds()) {
        const Entry &e = _entries[i];
        os << std::left << std::setw(40) << e.name << ' '
           << std::right << std::setw(16) << eval(e);
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
}

} // namespace via
