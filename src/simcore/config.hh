/**
 * @file
 * A flat key/value configuration dictionary.
 *
 * Benchmarks and examples accept "key=value" overrides on the command
 * line; Config parses them and hands typed values to the parameter
 * structs. Unknown keys are a fatal() (user error), malformed values
 * likewise.
 */

#ifndef VIA_SIMCORE_CONFIG_HH
#define VIA_SIMCORE_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace via
{

/** String-typed configuration with checked typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Parse a list of "key=value" tokens (e.g. argv tail). */
    static Config fromArgs(const std::vector<std::string> &args);

    /** Set or overwrite a key. */
    void set(const std::string &key, const std::string &value);

    /** True if the key is present. */
    bool has(const std::string &key) const;

    /** Typed getters with defaults; fatal() on malformed values. */
    std::string getString(const std::string &key,
                          const std::string &dflt) const;
    std::int64_t getInt(const std::string &key, std::int64_t dflt) const;
    std::uint64_t getUInt(const std::string &key,
                          std::uint64_t dflt) const;
    double getDouble(const std::string &key, double dflt) const;
    bool getBool(const std::string &key, bool dflt) const;

    /** All keys, for validation / help output. */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> _values;
};

} // namespace via

#endif // VIA_SIMCORE_CONFIG_HH
