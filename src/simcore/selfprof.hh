/**
 * @file
 * A lightweight host wall-time self-profiler for the simulator.
 *
 * Attributes host time to coarse simulator components (core, cache,
 * DRAM, FIVU, event queue) so a performance regression in one
 * subsystem is diagnosable without an external profiler. Enabled at
 * runtime via the shared selfprof=1 key; when disabled, each
 * instrumentation point costs a single predictable branch on a
 * global flag — no clock reads, no atomics.
 *
 * Attribution is exclusive: a Scope's time excludes nested Scopes
 * (e.g. Core excludes the Cache time of the memory accesses it
 * issues), so the per-domain percentages add up meaningfully. A
 * thread-local chain of active scopes makes this correct on the
 * SweepExecutor worker threads too; the accumulators are relaxed
 * atomics shared by all threads.
 */

#ifndef VIA_SIMCORE_SELFPROF_HH
#define VIA_SIMCORE_SELFPROF_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>

namespace via::selfprof
{

/** Components host time is attributed to. */
enum class Domain : std::uint8_t
{
    Core,       //!< OoOCore scheduling (dispatch/issue/commit)
    Cache,      //!< MemSystem/Cache walks
    Dram,       //!< DRAM pipe
    Fivu,       //!< VIA unit dispatch
    EventQueue, //!< simulated-time event execution
    N
};

/** Printable name of @p d. */
const char *domainName(Domain d);

namespace detail
{

extern std::atomic<bool> gEnabled;

struct DomainAccum
{
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};
};

extern std::array<DomainAccum,
                  std::size_t(Domain::N)> gAccum;

} // namespace detail

/** True when profiling is on (the inline fast-path check). */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

/** Turn profiling on or off (on: scopes start accumulating). */
void enable(bool on);

/** Zero all accumulators. */
void reset();

/** Per-domain totals. */
struct DomainStats
{
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;
};

/** Snapshot the accumulated totals for @p d. */
DomainStats stats(Domain d);

/** Print the attribution table (exclusive ns, share, calls). */
void report(std::ostream &os);

/** Print report() to stderr when the process exits (idempotent). */
void installAtExitReport();

/**
 * RAII instrumentation point. Near-zero cost when profiling is off:
 * the constructor reads one global flag and skips the clock.
 */
class Scope
{
  public:
    explicit Scope(Domain d)
    {
        if (!enabled())
            return;
        _active = true;
        _domain = d;
        _parent = tlCurrent;
        tlCurrent = this;
        _start = std::chrono::steady_clock::now();
    }

    ~Scope()
    {
        if (!_active)
            return;
        auto now = std::chrono::steady_clock::now();
        auto total = std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - _start)
                .count());
        // Exclusive time: subtract what nested scopes consumed.
        std::uint64_t own =
            total > _childNs ? total - _childNs : 0;
        auto &acc = detail::gAccum[std::size_t(_domain)];
        acc.ns.fetch_add(own, std::memory_order_relaxed);
        acc.calls.fetch_add(1, std::memory_order_relaxed);
        tlCurrent = _parent;
        if (_parent != nullptr)
            _parent->_childNs += total;
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    static thread_local Scope *tlCurrent;

    bool _active = false;
    Domain _domain = Domain::Core;
    Scope *_parent = nullptr;
    std::uint64_t _childNs = 0;
    std::chrono::steady_clock::time_point _start;
};

} // namespace via::selfprof

#endif // VIA_SIMCORE_SELFPROF_HH
