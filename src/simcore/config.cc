#include "simcore/config.hh"

#include <cstdlib>
#include <stdexcept>

#include "simcore/log.hh"

namespace via
{

Config
Config::fromArgs(const std::vector<std::string> &args)
{
    Config cfg;
    for (const auto &arg : args) {
        auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0)
            via_fatal("malformed config argument '", arg,
                      "' (expected key=value)");
        cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    _values[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return _values.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    auto it = _values.find(key);
    return it == _values.end() ? dflt : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    try {
        std::size_t pos = 0;
        auto v = std::stoll(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument(it->second);
        return v;
    } catch (const std::exception &) {
        via_fatal("config key '", key, "' is not an integer: '",
                  it->second, "'");
    }
}

std::uint64_t
Config::getUInt(const std::string &key, std::uint64_t dflt) const
{
    auto v = getInt(key, std::int64_t(dflt));
    if (v < 0)
        via_fatal("config key '", key, "' must be non-negative");
    return std::uint64_t(v);
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    try {
        std::size_t pos = 0;
        double v = std::stod(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument(it->second);
        return v;
    } catch (const std::exception &) {
        via_fatal("config key '", key, "' is not a number: '",
                  it->second, "'");
    }
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return dflt;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    via_fatal("config key '", key, "' is not a boolean: '", v, "'");
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(_values.size());
    for (const auto &kv : _values)
        out.push_back(kv.first);
    return out;
}

} // namespace via
