/**
 * @file
 * A small statistics framework in the spirit of gem5's Stats package.
 *
 * Components own plain counters and register named views of them in a
 * StatSet. The set can be dumped as a human-readable table or queried
 * programmatically by the benchmark harnesses.
 */

#ifndef VIA_SIMCORE_STATS_HH
#define VIA_SIMCORE_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace via
{

/**
 * An online distribution: count, sum, min, max, mean and a fixed
 * bucket histogram.
 */
class Distribution
{
  public:
    /**
     * @param bucket_lo inclusive lower bound of the first bucket
     * @param bucket_hi exclusive upper bound of the last bucket
     * @param n_buckets number of equal-width buckets
     */
    Distribution(double bucket_lo = 0.0, double bucket_hi = 1.0,
                 std::size_t n_buckets = 10);

    /** Record one sample. */
    void sample(double v);

    /** Remove all samples. */
    void reset();

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _min; }
    double max() const { return _max; }
    double mean() const { return _count ? _sum / _count : 0.0; }

    /** Bucket counters; out-of-range samples land in the end buckets. */
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    double bucketLo() const { return _lo; }
    double bucketHi() const { return _hi; }

  private:
    double _lo, _hi;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * A named collection of statistic views.
 *
 * Views are non-owning: the registering component guarantees the
 * referenced counter outlives the StatSet (both usually live in the
 * same Machine).
 */
class StatSet
{
  public:
    /** Register a view over an integer counter. */
    void addScalar(const std::string &name, const std::string &desc,
                   const std::uint64_t *value);

    /** Register a view over a floating-point value. */
    void addScalar(const std::string &name, const std::string &desc,
                   const double *value);

    /** Register a derived quantity computed on demand. */
    void addFormula(const std::string &name, const std::string &desc,
                    std::function<double()> fn);

    /** Look up a statistic by name; fatal() if absent. */
    double get(const std::string &name) const;

    /** True if a statistic with this name exists. */
    bool has(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Print "name  value  # desc" rows, sorted by name. */
    void dump(std::ostream &os) const;

    /** Print the statistics as a flat JSON object. */
    void dumpJson(std::ostream &os) const;

  private:
    struct Entry
    {
        std::string desc;
        std::function<double()> eval;
    };

    std::map<std::string, Entry> _entries;
};

} // namespace via

#endif // VIA_SIMCORE_STATS_HH
