/**
 * @file
 * A small statistics framework in the spirit of gem5's Stats package.
 *
 * Components own plain counters and register named views of them in a
 * StatSet. The set can be dumped as a human-readable table or queried
 * programmatically by the benchmark harnesses.
 *
 * Entries live in a flat vector; a StatId is an index into it, so a
 * caller on a hot path interns the name once (id()) and reads the
 * value with an O(1) get(StatId) instead of a string-keyed map
 * lookup per sample. Dump output is sorted by name at dump time and
 * is byte-identical regardless of registration order.
 */

#ifndef VIA_SIMCORE_STATS_HH
#define VIA_SIMCORE_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace via
{

/**
 * An online distribution: count, sum, min, max, mean and a fixed
 * bucket histogram.
 */
class Distribution
{
  public:
    /**
     * @param bucket_lo inclusive lower bound of the first bucket
     * @param bucket_hi exclusive upper bound of the last bucket
     * @param n_buckets number of equal-width buckets
     */
    Distribution(double bucket_lo = 0.0, double bucket_hi = 1.0,
                 std::size_t n_buckets = 10);

    /** Record one sample. */
    void sample(double v);

    /** Remove all samples. */
    void reset();

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _min; }
    double max() const { return _max; }
    double mean() const { return _count ? _sum / _count : 0.0; }

    /** Bucket counters; out-of-range samples land in the end buckets. */
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    double bucketLo() const { return _lo; }
    double bucketHi() const { return _hi; }

    /**
     * The @p p-th percentile (p in [0, 100]) estimated from the
     * bucket histogram with linear interpolation inside the bucket
     * that crosses the target rank. The estimate is clamped to the
     * observed [min, max] (out-of-range samples land in the end
     * buckets, whose nominal edges can lie beyond the data), so
     * percentile(0) == min() and percentile(100) == max() exactly.
     * An empty distribution returns 0.0.
     */
    double percentile(double p) const;

    /** Tail-latency conveniences (serving report, SLO tracking). */
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

  private:
    double _lo, _hi;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Interned handle to one statistic inside a StatSet. */
using StatId = std::size_t;

/**
 * A named collection of statistic views.
 *
 * Views are non-owning: the registering component guarantees the
 * referenced counter outlives the StatSet (both usually live in the
 * same Machine).
 */
class StatSet
{
  public:
    /** Register a view over an integer counter. */
    StatId addScalar(const std::string &name, const std::string &desc,
                     const std::uint64_t *value);

    /** Register a view over a floating-point value. */
    StatId addScalar(const std::string &name, const std::string &desc,
                     const double *value);

    /** Register a derived quantity computed on demand. */
    StatId addFormula(const std::string &name,
                      const std::string &desc,
                      std::function<double()> fn);

    /** Intern a name into its id; fatal() if absent. */
    StatId id(const std::string &name) const;

    /** O(1) read through an interned id. */
    double
    get(StatId id) const
    {
        return eval(_entries[id]);
    }

    /** Look up a statistic by name; fatal() if absent. */
    double get(const std::string &name) const;

    /** True if a statistic with this name exists. */
    bool has(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Print "name  value  # desc" rows, sorted by name. */
    void dump(std::ostream &os) const;

    /** Print the statistics as a flat JSON object. */
    void dumpJson(std::ostream &os) const;

  private:
    /**
     * Scalar views keep their raw pointer (no std::function
     * indirection on reads); only formulas pay for one.
     */
    enum class Kind : std::uint8_t { U64, F64, Formula };

    struct Entry
    {
        std::string name;
        std::string desc;
        Kind kind = Kind::U64;
        const void *ptr = nullptr;
        std::function<double()> fn;
    };

    double
    eval(const Entry &e) const
    {
        switch (e.kind) {
        case Kind::U64:
            return double(
                *static_cast<const std::uint64_t *>(e.ptr));
        case Kind::F64:
            return *static_cast<const double *>(e.ptr);
        case Kind::Formula:
            return e.fn();
        }
        return 0.0;
    }

    StatId insert(Entry entry);
    /** Entry indices sorted by name (dump order). */
    std::vector<StatId> sortedIds() const;

    std::vector<Entry> _entries;
    std::unordered_map<std::string, StatId> _index;
};

} // namespace via

#endif // VIA_SIMCORE_STATS_HH
