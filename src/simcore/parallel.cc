#include "simcore/parallel.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "simcore/log.hh"

namespace via
{

SweepExecutor::SweepExecutor(unsigned threads)
    : _threads(threads ? threads : hardwareThreads())
{
}

unsigned
SweepExecutor::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

std::uint64_t
SweepExecutor::pointSeed(std::uint64_t base, std::size_t index)
{
    // One splitmix64 round over base + index * golden ratio; the
    // same finalizer Rng uses to expand its seed, so point streams
    // are as decorrelated as independently-seeded Rngs.
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull *
                                 (std::uint64_t(index) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

void
SweepExecutor::forEach(std::size_t count,
                       const std::function<void(std::size_t)> &fn)
    const
{
    via_assert(fn, "SweepExecutor needs a point function");
    std::size_t workers = std::min<std::size_t>(_threads, count);
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker = [&] {
        for (;;) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                // Stop handing out further points; in-flight ones
                // finish so joins stay clean.
                next.store(count, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace via
