#include "simcore/event_queue.hh"

#include <algorithm>

#include "simcore/selfprof.hh"

namespace via
{

bool
EventQueue::heapLess(std::uint32_t a, std::uint32_t b) const
{
    const Event &ea = _slab[a];
    const Event &eb = _slab[b];
    if (ea.when != eb.when)
        return ea.when < eb.when;
    // Ids carry the monotone sequence number in their high bits, so
    // comparing them directly recovers scheduling order.
    return ea.id < eb.id;
}

void
EventQueue::heapPush(std::uint32_t slot)
{
    _heap.push_back(slot);
    std::push_heap(_heap.begin(), _heap.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                       return heapLess(b, a);
                   });
}

void
EventQueue::heapPop()
{
    std::pop_heap(_heap.begin(), _heap.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      return heapLess(b, a);
                  });
    _heap.pop_back();
}

std::uint32_t
EventQueue::allocSlot()
{
    if (!_freeSlots.empty()) {
        std::uint32_t slot = _freeSlots.back();
        _freeSlots.pop_back();
        return slot;
    }
    via_assert(_slab.size() < slotMask, "event slab exhausted");
    _slab.emplace_back();
    return std::uint32_t(_slab.size() - 1);
}

std::uint64_t
EventQueue::schedule(Tick when, Callback fn, void *ctx,
                     const char *name)
{
    via_assert(when >= _curTick, "event '", name ? name : "",
               "' scheduled in the past: ", when, " < ", _curTick);
    via_assert(fn != nullptr, "event '", name ? name : "",
               "' has no action");
    std::uint32_t slot = allocSlot();
    std::uint64_t id = (_nextSeq++ << slotBits) | slot;
    _slab[slot] = Event{when, id, fn, ctx, name};
    heapPush(slot);
    ++_live;
    return id;
}

void
EventQueue::cancel(std::uint64_t id)
{
    // Lazy cancellation: blank the slot's callback and let run()
    // reclaim it when the heap pops past it. Cancelling an id that
    // already fired (or was never scheduled) is a harmless no-op —
    // the slot either holds a different id by now or is free.
    auto slot = std::size_t(id & slotMask);
    if (slot >= _slab.size())
        return;
    Event &ev = _slab[slot];
    if (ev.id != id || ev.fn == nullptr)
        return;
    ev.fn = nullptr;
    --_live;
}

Tick
EventQueue::nextTick()
{
    while (!_heap.empty()) {
        std::uint32_t slot = _heap.front();
        if (_slab[slot].fn != nullptr)
            return _slab[slot].when;
        heapPop();
        _freeSlots.push_back(slot);
    }
    return MAX_TICK;
}

std::size_t
EventQueue::run(Tick limit)
{
    selfprof::Scope prof(selfprof::Domain::EventQueue);
    std::size_t count = 0;
    while (!_heap.empty()) {
        std::uint32_t slot = _heap.front();
        Event &ev = _slab[slot];
        if (ev.fn == nullptr) {
            // Reclaim a cancelled slot.
            heapPop();
            _freeSlots.push_back(slot);
            continue;
        }
        if (ev.when > limit)
            break;
        via_assert(ev.when >= _curTick, "time went backwards");
        // Copy the event out and free its slot before running the
        // callback, so the callback may schedule new events (which
        // mutate the slab and heap) safely.
        Callback fn = ev.fn;
        void *ctx = ev.ctx;
        Tick when = ev.when;
        // Blank the slot so cancel() of this (now fired) id sees a
        // dead slot instead of stale state.
        ev.fn = nullptr;
        heapPop();
        _freeSlots.push_back(slot);
        _curTick = when;
        ++_executed;
        ++count;
        --_live;
        fn(ctx);
    }
    return count;
}

} // namespace via
