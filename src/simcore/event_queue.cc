#include "simcore/event_queue.hh"

#include "simcore/log.hh"

namespace via
{

std::uint64_t
EventQueue::schedule(Tick when, std::function<void()> action,
                     std::string name)
{
    via_assert(when >= _curTick,
               "event '", name, "' scheduled in the past: ", when,
               " < ", _curTick);
    via_assert(action, "event '", name, "' has no action");
    std::uint64_t id = _nextId++;
    _queue.push(Event{when, id, std::move(action), std::move(name)});
    _pending.insert(id);
    return id;
}

void
EventQueue::cancel(std::uint64_t id)
{
    // Lazy cancellation: remember the id and skip it when popped.
    // Cancelling an id that already fired (or was never scheduled)
    // is a harmless no-op.
    if (_pending.erase(id))
        _cancelled.insert(id);
}

std::size_t
EventQueue::live() const
{
    return _pending.size();
}

void
EventQueue::skim()
{
    while (!_queue.empty()) {
        auto it = _cancelled.find(_queue.top().id);
        if (it == _cancelled.end())
            return;
        _cancelled.erase(it);
        _queue.pop();
    }
}

Tick
EventQueue::nextTick()
{
    skim();
    return _queue.empty() ? MAX_TICK : _queue.top().when;
}

std::size_t
EventQueue::run(Tick limit)
{
    std::size_t count = 0;
    for (;;) {
        skim();
        if (_queue.empty() || _queue.top().when > limit)
            break;
        // Move the action out before popping so the event may
        // schedule new events (which mutate the heap) safely.
        Event ev = _queue.top();
        _queue.pop();
        _pending.erase(ev.id);
        via_assert(ev.when >= _curTick, "time went backwards");
        _curTick = ev.when;
        ++_executed;
        ++count;
        ev.action();
    }
    return count;
}

void
EventQueue::advanceTo(Tick when)
{
    via_assert(when >= _curTick, "advanceTo(", when,
               ") is in the past, now=", _curTick);
    run(when);
    _curTick = when;
}

} // namespace via
