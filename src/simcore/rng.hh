/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic pieces of the simulator (workload generators, the
 * synthetic corpus) draw from Rng so that a given seed reproduces a
 * bit-identical experiment. The generator is splitmix64 seeded
 * xoshiro256**, which is fast and statistically solid for this use.
 */

#ifndef VIA_SIMCORE_RNG_HH
#define VIA_SIMCORE_RNG_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace via
{

/** Deterministic 64-bit PRNG with convenience distributions. */
class Rng
{
  public:
    explicit
    Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 to fill the xoshiro state from one seed word.
        std::uint64_t x = seed;
        for (auto &word : _s) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value (xoshiro256**). */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free variant is overkill
        // here; modulo bias is negligible for our bounds (< 2^32).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + std::int64_t(below(std::uint64_t(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial. */
    bool chance(double p) { return uniform() < p; }

    /** Number of 64-bit state words (xoshiro256). */
    static constexpr std::size_t stateWords = 4;

    /** Capture the generator state (machine checkpoints). */
    std::array<std::uint64_t, stateWords>
    state() const
    {
        return {_s[0], _s[1], _s[2], _s[3]};
    }

    /** Restore a state captured by state(). */
    void
    setState(const std::array<std::uint64_t, stateWords> &s)
    {
        for (std::size_t i = 0; i < stateWords; ++i)
            _s[i] = s[i];
    }

  private:
    std::uint64_t _s[4];
};

} // namespace via

#endif // VIA_SIMCORE_RNG_HH
