/**
 * @file
 * Binary serialization helpers for machine checkpoints.
 *
 * The format is deliberately simple: every integral value is written
 * as 8 little-endian bytes, doubles as their 8-byte bit pattern, and
 * containers as a count followed by their elements. Each component
 * prefixes its state with a 4-character section tag so a truncated or
 * mismatched stream fails with a named section instead of silently
 * misaligned reads. All read-side failures (underflow, bad tag,
 * geometry mismatch) throw SerializeError; the checkpoint layer
 * (src/sample) turns that into a rejected restore.
 */

#ifndef VIA_SIMCORE_SERIALIZE_HH
#define VIA_SIMCORE_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace via
{

/** Raised on any malformed, truncated, or incompatible stream. */
class SerializeError : public std::runtime_error
{
  public:
    explicit
    SerializeError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Appends typed values to a byte buffer. */
class Serializer
{
  public:
    /** @param out destination buffer (appended to, not cleared) */
    explicit
    Serializer(std::vector<std::uint8_t> &out)
        : _out(out)
    {}

    /** Write any integral (or enum) value as 8 LE bytes. */
    template <typename T>
    void
    put(T v)
    {
        static_assert(std::is_integral_v<T> || std::is_enum_v<T>);
        auto raw = std::uint64_t(v);
        for (int i = 0; i < 8; ++i)
            _out.push_back(std::uint8_t(raw >> (8 * i)));
    }

    /** Write a double as its 8-byte bit pattern. */
    void
    putDouble(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        put(bits);
    }

    /** Write raw bytes (fixed-size payloads, e.g. memory pages). */
    void
    putBytes(const void *data, std::size_t bytes)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        _out.insert(_out.end(), p, p + bytes);
    }

    /** Write a vector of integral values: count, then elements. */
    template <typename T>
    void
    putVec(const std::vector<T> &v)
    {
        put(std::uint64_t(v.size()));
        for (const T &e : v)
            put(e);
    }

    /** Write a vector<bool> (bit-packed containers lack data()). */
    void
    putBoolVec(const std::vector<bool> &v)
    {
        put(std::uint64_t(v.size()));
        for (bool b : v)
            put(std::uint8_t(b ? 1 : 0));
    }

    /** Open a named section: 4-character tag. */
    void
    tag(const char (&t)[5])
    {
        putBytes(t, 4);
    }

  private:
    std::vector<std::uint8_t> &_out;
};

/** Reads typed values back; throws SerializeError on any problem. */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t size)
        : _data(data), _size(size)
    {}

    explicit
    Deserializer(const std::vector<std::uint8_t> &buf)
        : Deserializer(buf.data(), buf.size())
    {}

    /** Read one integral value written by Serializer::put. */
    template <typename T = std::uint64_t>
    T
    get()
    {
        static_assert(std::is_integral_v<T> || std::is_enum_v<T>);
        need(8);
        std::uint64_t raw = 0;
        for (int i = 0; i < 8; ++i)
            raw |= std::uint64_t(_data[_pos + std::size_t(i)])
                   << (8 * i);
        _pos += 8;
        return T(raw);
    }

    double
    getDouble()
    {
        std::uint64_t bits = get();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void
    getBytes(void *dst, std::size_t bytes)
    {
        need(bytes);
        std::memcpy(dst, _data + _pos, bytes);
        _pos += bytes;
    }

    /**
     * Read a vector of integral values.
     *
     * @param max_count sanity bound on the element count (guards
     *        against allocating gigabytes from a corrupt stream)
     */
    template <typename T>
    std::vector<T>
    getVec(std::uint64_t max_count = std::uint64_t(1) << 32)
    {
        std::uint64_t n = get();
        if (n > max_count)
            throw SerializeError("container count " +
                                 std::to_string(n) +
                                 " exceeds sanity bound");
        checkCount(n);
        std::vector<T> v;
        v.reserve(std::size_t(n));
        for (std::uint64_t i = 0; i < n; ++i)
            v.push_back(get<T>());
        return v;
    }

    std::vector<bool>
    getBoolVec(std::uint64_t max_count = std::uint64_t(1) << 32)
    {
        std::uint64_t n = get();
        if (n > max_count)
            throw SerializeError("bitmap count too large");
        checkCount(n);
        std::vector<bool> v(std::size_t(n), false);
        for (std::uint64_t i = 0; i < n; ++i)
            v[std::size_t(i)] = get<std::uint8_t>() != 0;
        return v;
    }

    /** Consume a section tag; mismatch names both sides. */
    void
    expectTag(const char (&t)[5])
    {
        char got[5] = {0, 0, 0, 0, 0};
        getBytes(got, 4);
        if (std::memcmp(got, t, 4) != 0)
            throw SerializeError(
                std::string("bad section tag: expected '") + t +
                "', found '" + got + "'");
    }

    /** Bytes left unread (0 when fully consumed). */
    std::size_t remaining() const { return _size - _pos; }

  private:
    void
    need(std::size_t bytes)
    {
        if (_size - _pos < bytes)
            throw SerializeError("truncated stream: need " +
                                 std::to_string(bytes) +
                                 " bytes, have " +
                                 std::to_string(_size - _pos));
    }

    /** Each element occupies 8 bytes; reject impossible counts. */
    void
    checkCount(std::uint64_t n)
    {
        if (n > (_size - _pos) / 8)
            throw SerializeError("truncated stream: container "
                                 "larger than remaining bytes");
    }

    const std::uint8_t *_data;
    std::size_t _size;
    std::size_t _pos = 0;
};

} // namespace via

#endif // VIA_SIMCORE_SERIALIZE_HH
