#include "simcore/resource.hh"

#include <algorithm>

#include "simcore/log.hh"

namespace via
{

Resource::Resource(std::uint32_t units)
    : _units(std::max<std::uint32_t>(units, 1)),
      _counts(windowSize, 0)
{
}

std::uint16_t &
Resource::slot(Tick t)
{
    return _counts[std::size_t(t % windowSize)];
}

void
Resource::slide(Tick when)
{
    if (when < _base + windowSize)
        return;
    // Clear the cycles that fall out of the window. Bookings there
    // are in the past relative to every future request (dispatch is
    // monotone), so dropping them is safe.
    Tick new_base = when - windowSize / 2;
    via_assert(new_base > _base, "window slide went backwards");
    Tick clear_from = _base;
    Tick clear_to = std::min(new_base, _base + windowSize);
    for (Tick t = clear_from; t < clear_to; ++t)
        slot(t) = 0;
    _base = new_base;
}

Tick
Resource::acquire(Tick when, Tick occupancy)
{
    via_assert(occupancy >= 1, "zero occupancy booking");
    when = std::max(when, _base);
    slide(when + occupancy);

    for (;;) {
        // Find `occupancy` consecutive cycles with spare capacity.
        bool ok = true;
        for (Tick o = 0; o < occupancy; ++o) {
            if (slot(when + o) >= _units) {
                when = when + o + 1;
                slide(when + occupancy);
                ok = false;
                break;
            }
        }
        if (ok)
            break;
    }
    for (Tick o = 0; o < occupancy; ++o)
        ++slot(when + o);
    _busy += occupancy;
    _horizon = std::max(_horizon, when + occupancy);
    return when;
}

void
Resource::resetTiming()
{
    std::fill(_counts.begin(), _counts.end(), std::uint16_t(0));
    _base = 0;
    _horizon = 0;
}


} // namespace via
