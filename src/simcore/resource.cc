#include "simcore/resource.hh"

#include <algorithm>

#include "simcore/log.hh"
#include "simcore/serialize.hh"

namespace via
{

Resource::Resource(std::uint32_t units)
    : _units(std::max<std::uint32_t>(units, 1)),
      _counts(windowSize, 0)
{
}

std::uint16_t &
Resource::slot(Tick t)
{
    return _counts[std::size_t(t % windowSize)];
}

void
Resource::slide(Tick when)
{
    // Clear the cycles that fall out of the window. Bookings there
    // are in the past relative to every future request (dispatch is
    // monotone), so dropping them is safe.
    Tick new_base = when - windowSize / 2;
    via_assert(new_base > _base, "window slide went backwards");
    Tick clear_from = _base;
    Tick clear_to = std::min(new_base, _base + windowSize);
    for (Tick t = clear_from; t < clear_to; ++t)
        slot(t) = 0;
    _base = new_base;
}

Tick
Resource::acquireSlow(Tick when, Tick occupancy)
{
    via_assert(occupancy >= 1, "zero occupancy booking");
    when = std::max(when, _base);
    maybeSlide(when + occupancy);

    for (;;) {
        // Find `occupancy` consecutive cycles with spare capacity.
        bool ok = true;
        for (Tick o = 0; o < occupancy; ++o) {
            if (slot(when + o) >= _units) {
                when = when + o + 1;
                maybeSlide(when + occupancy);
                ok = false;
                break;
            }
        }
        if (ok)
            break;
    }
    for (Tick o = 0; o < occupancy; ++o)
        ++slot(when + o);
    _busy += occupancy;
    _horizon = std::max(_horizon, when + occupancy);
    return when;
}

void
Resource::resetTiming()
{
    std::fill(_counts.begin(), _counts.end(), std::uint16_t(0));
    _base = 0;
    _horizon = 0;
}

void
Resource::saveState(Serializer &ser) const
{
    ser.tag("RSRC");
    ser.put(_units);
    ser.put(_base);
    ser.put(_busy);
    ser.put(_horizon);
    // Nonzero bookings live only in [_base, _horizon): cycles below
    // _base were cleared when the window slid, cycles at or beyond
    // _horizon were never booked. Storing just that slice keeps
    // checkpoints compact without losing a single booking.
    Tick live = _horizon > _base
                    ? std::min<Tick>(_horizon - _base, windowSize)
                    : 0;
    ser.put(live);
    for (Tick t = 0; t < live; ++t) {
        auto &self = const_cast<Resource &>(*this);
        ser.put(self.slot(_base + t));
    }
}

void
Resource::loadState(Deserializer &des)
{
    des.expectTag("RSRC");
    auto units = des.get<std::uint32_t>();
    if (units != _units)
        throw SerializeError("resource unit count mismatch");
    _base = des.get<Tick>();
    _busy = des.get<std::uint64_t>();
    _horizon = des.get<Tick>();
    Tick live = des.get<Tick>();
    if (live > windowSize)
        throw SerializeError("resource window overflow");
    std::fill(_counts.begin(), _counts.end(), std::uint16_t(0));
    for (Tick t = 0; t < live; ++t)
        slot(_base + t) = des.get<std::uint16_t>();
}


} // namespace via
