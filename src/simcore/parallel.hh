/**
 * @file
 * SweepExecutor — deterministic parallel execution of independent
 * simulation points.
 *
 * Every benchmark figure is a sweep of (machine configuration x
 * input x kernel) points that share no simulator state: each point
 * builds its own Machine and draws its randomness from a per-point
 * Rng seeded with pointSeed(base, index). The executor fans the
 * points out over a thread pool and collects results in submission
 * order, so a run with threads=N prints output bit-identical to a
 * serial threads=1 run.
 *
 * Point functions must be self-contained: no writes to global
 * mutable state (the simulator's only global, the log level, is
 * atomic but should only be set before the sweep starts) and no
 * printing from inside a point — formatting belongs after
 * collection, in submission order.
 */

#ifndef VIA_SIMCORE_PARALLEL_HH
#define VIA_SIMCORE_PARALLEL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

namespace via
{

/** A fixed-width pool that runs indexed jobs in submission order. */
class SweepExecutor
{
  public:
    /** @param threads worker count; 0 means hardware concurrency. */
    explicit SweepExecutor(unsigned threads = 0);

    /** Resolved worker count (never 0). */
    unsigned threads() const { return _threads; }

    /** Worker count used for threads=0 (at least 1). */
    static unsigned hardwareThreads();

    /**
     * The RNG seed for point @p index of a sweep with base seed
     * @p base: a splitmix64 mix so neighbouring indices get
     * decorrelated streams. Depends only on (base, index) — never
     * on thread identity or scheduling — so a sweep is reproducible
     * at any thread count.
     */
    static std::uint64_t pointSeed(std::uint64_t base,
                                   std::size_t index);

    /**
     * Evaluate fn(0) .. fn(count-1) across the pool and return the
     * results indexed by point, regardless of completion order.
     * The result type must be default-constructible and movable.
     * The first exception a point throws is rethrown here after the
     * remaining workers drain.
     */
    template <typename Fn>
    auto
    run(std::size_t count, Fn &&fn) const
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using R = std::invoke_result_t<Fn &, std::size_t>;
        // vector<bool> packs bits; concurrent writes to distinct
        // points would race. Return a struct or int instead.
        static_assert(!std::is_same_v<R, bool>,
                      "SweepExecutor::run cannot collect bool");
        std::vector<R> out(count);
        forEach(count, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Run fn(i) for i in [0, count) with no result collection. */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &fn) const;

  private:
    unsigned _threads;
};

} // namespace via

#endif // VIA_SIMCORE_PARALLEL_HH
