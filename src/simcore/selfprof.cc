#include "simcore/selfprof.hh"

#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace via::selfprof
{

namespace detail
{

std::atomic<bool> gEnabled{false};
std::array<DomainAccum, std::size_t(Domain::N)> gAccum{};

} // namespace detail

thread_local Scope *Scope::tlCurrent = nullptr;

const char *
domainName(Domain d)
{
    switch (d) {
    case Domain::Core: return "core";
    case Domain::Cache: return "cache";
    case Domain::Dram: return "dram";
    case Domain::Fivu: return "fivu";
    case Domain::EventQueue: return "event-queue";
    case Domain::N: break;
    }
    return "?";
}

void
enable(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

void
reset()
{
    for (auto &acc : detail::gAccum) {
        acc.ns.store(0, std::memory_order_relaxed);
        acc.calls.store(0, std::memory_order_relaxed);
    }
}

DomainStats
stats(Domain d)
{
    const auto &acc = detail::gAccum[std::size_t(d)];
    return {acc.ns.load(std::memory_order_relaxed),
            acc.calls.load(std::memory_order_relaxed)};
}

void
report(std::ostream &os)
{
    std::uint64_t total_ns = 0;
    for (std::size_t i = 0; i < std::size_t(Domain::N); ++i)
        total_ns += stats(Domain(i)).ns;

    os << "selfprof: host wall-time by simulator component\n";
    char line[128];
    std::snprintf(line, sizeof(line), "  %-12s %12s %7s %14s\n",
                  "component", "ms", "share", "scopes");
    os << line;
    for (std::size_t i = 0; i < std::size_t(Domain::N); ++i) {
        DomainStats s = stats(Domain(i));
        double share = total_ns
                           ? 100.0 * double(s.ns) / double(total_ns)
                           : 0.0;
        std::snprintf(line, sizeof(line),
                      "  %-12s %12.3f %6.1f%% %14llu\n",
                      domainName(Domain(i)), double(s.ns) / 1e6,
                      share,
                      static_cast<unsigned long long>(s.calls));
        os << line;
    }
    std::snprintf(line, sizeof(line), "  %-12s %12.3f\n", "total",
                  double(total_ns) / 1e6);
    os << line;
}

void
installAtExitReport()
{
    static bool installed = false;
    if (installed)
        return;
    installed = true;
    std::atexit([] { report(std::cerr); });
}

} // namespace via::selfprof
