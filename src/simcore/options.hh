/**
 * @file
 * The shared typed command-line options registry.
 *
 * Every harness in this repository — the bench/ figure binaries,
 * via_sim, via_fuzz and bench_report — takes "key=value" arguments.
 * Options is the one parser they all share: each binary registers
 * its keys (type, default, help text, optional numeric range) and
 * parse() enforces a uniform contract:
 *
 *   - unknown key        -> message + sorted valid-key list, exit 2
 *   - duplicate key      -> hard error, exit 2 (a repeated key on
 *                           one command line is almost always a
 *                           typo silently dropping the first value)
 *   - malformed value    -> type/range diagnosis, exit 2
 *   - help=1 or --help   -> generated key table, exit 0
 *
 * Parsed values land in a plain Config, so the existing typed
 * consumers (machineParamsFrom, SampleOptions::fromConfig,
 * TraceOptions::fromConfig) keep working unchanged. Programmatic
 * Config::set stays last-wins — sweep mode's per-point overrides
 * rely on that — only command-line redefinition is rejected.
 */

#ifndef VIA_SIMCORE_OPTIONS_HH
#define VIA_SIMCORE_OPTIONS_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "simcore/config.hh"

namespace via
{

/** Value type of one registered option. */
enum class OptType
{
    String,
    Int,    //!< signed 64-bit
    UInt,   //!< unsigned 64-bit
    Double,
    Bool,   //!< 1/0, true/false, yes/no, on/off
};

/** One registered key: type, default, help text, numeric range. */
struct OptionSpec
{
    std::string key;
    OptType type = OptType::String;
    std::string dflt; //!< default, as it would be typed ("" = none)
    std::string help;
    double min = std::numeric_limits<double>::lowest();
    double max = std::numeric_limits<double>::max();
};

/**
 * A per-binary registry of OptionSpecs plus the parsed values.
 *
 * Typical use:
 *
 *   Options opts("fig10_spmv", "Figure 10 SpMV speedup");
 *   opts.addUInt("count", 24, "corpus matrices");
 *   addMachineOptions(opts);
 *   opts.parse(argc, argv);          // exits on error or help
 *   const Config &cfg = opts.config();
 */
class Options
{
  public:
    Options(std::string binary, std::string description);

    /** Register a key; fatal (programmer error) on duplicates. */
    Options &add(OptionSpec spec);

    /** Typed registration conveniences. */
    Options &addString(const std::string &key,
                       const std::string &dflt,
                       const std::string &help);
    Options &addInt(const std::string &key, std::int64_t dflt,
                    const std::string &help,
                    std::int64_t min =
                        std::numeric_limits<std::int64_t>::min(),
                    std::int64_t max =
                        std::numeric_limits<std::int64_t>::max());
    Options &addUInt(const std::string &key, std::uint64_t dflt,
                     const std::string &help,
                     std::uint64_t min = 0,
                     std::uint64_t max = std::uint64_t(1) << 62);
    Options &addDouble(
        const std::string &key, double dflt,
        const std::string &help,
        double min = std::numeric_limits<double>::lowest(),
        double max = std::numeric_limits<double>::max());
    Options &addBool(const std::string &key, bool dflt,
                     const std::string &help);
    /** A bool defaulting to false (the common "flag" shape). */
    Options &addFlag(const std::string &key,
                     const std::string &help);

    /** True if @p key is registered. */
    bool knows(const std::string &key) const;

    /**
     * Parse "key=value" tokens (and --help). On any user error the
     * process exits with status 2 after printing the diagnosis and
     * the sorted valid-key list; help exits 0. Call at most once.
     */
    void parse(const std::vector<std::string> &args);
    /** argv convenience; parses argv[first..argc). */
    void parse(int argc, char **argv, int first = 1);

    /**
     * Typed getters. The registry's default applies when the key
     * was not given; reading an unregistered key or one of another
     * type is a fatal programmer error, so a binary can only read
     * keys its help output documents.
     */
    std::string getString(const std::string &key) const;
    std::int64_t getInt(const std::string &key) const;
    std::uint64_t getUInt(const std::string &key) const;
    double getDouble(const std::string &key) const;
    bool getBool(const std::string &key) const;

    /** True if the key was given on the command line. */
    bool given(const std::string &key) const;

    /** The parsed values (command-line keys only, validated). */
    const Config &config() const { return _values; }

    /** Print the generated key table (help=1 / --help). */
    void printHelp(std::ostream &os) const;

    /** Sorted registered keys (help, docs, error messages). */
    std::vector<std::string> keys() const;

    const std::string &binary() const { return _binary; }
    const std::string &description() const { return _description; }

  private:
    const OptionSpec *find(const std::string &key) const;
    const OptionSpec &require(const std::string &key,
                              OptType type) const;
    /** Validate one value against its spec; returns a diagnosis or
     *  the empty string when the value is well-formed. */
    std::string checkValue(const OptionSpec &spec,
                           const std::string &value) const;
    [[noreturn]] void usageError(const std::string &message) const;

    std::string _binary;
    std::string _description;
    std::vector<OptionSpec> _specs;
    Config _values;
    bool _parsed = false;
};

/**
 * Shared key groups living at this layer. Binaries compose exactly
 * the groups whose features they wire up, so the help table never
 * advertises a key the binary ignores. Higher-layer groups are
 * declared next to their consumers: addMachineOptions
 * (cpu/machine_config.hh), addSampleOptions (sample/sampling.hh),
 * addTraceOptions (trace/trace_io.hh).
 */

/** threads=N for SweepExecutor-based harnesses. */
void addThreadsOption(Options &opts);
/** selfprof=1: host wall-time self-profile report at exit. */
void addSelfProfOption(Options &opts);

/**
 * Act on the shared selfprof=1 key: enables the self-profiler and
 * installs the at-exit report (simcore/selfprof.hh). Call once
 * right after parse().
 */
void applySelfProfOption(const Options &opts);

} // namespace via

#endif // VIA_SIMCORE_OPTIONS_HH
