/**
 * @file
 * Fundamental simulator-wide type aliases.
 */

#ifndef VIA_SIMCORE_TYPES_HH
#define VIA_SIMCORE_TYPES_HH

#include <cstdint>

namespace via
{

/** Simulated time, measured in core clock cycles. */
using Tick = std::uint64_t;

/** A simulated physical address. */
using Addr = std::uint64_t;

/** A per-instruction sequence number (program order). */
using SeqNum = std::uint64_t;

/** Sentinel for "no tick" / "not scheduled". */
constexpr Tick MAX_TICK = ~Tick(0);

} // namespace via

#endif // VIA_SIMCORE_TYPES_HH
