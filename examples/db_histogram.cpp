/**
 * @file
 * Database-style histogram for query planning (paper Section II-E):
 * build an equi-width histogram over a skewed "sales amount" column
 * to estimate selectivities, on the simulated machine with the
 * scalar, vector (conflict-detect) and VIA kernels.
 */

#include <cstdio>
#include <vector>

#include "cpu/machine.hh"
#include "kernels/histogram.hh"
#include "kernels/reference.hh"
#include "simcore/rng.hh"

using namespace via;

namespace
{

/** A skewed column: many small transactions, a fat tail. */
std::vector<Index>
salesColumn(std::size_t rows, Index buckets, Rng &rng)
{
    std::vector<Index> col(rows);
    for (auto &v : col) {
        // Approximate lognormal via the product of uniforms.
        double u = rng.uniform() * rng.uniform() * rng.uniform();
        v = Index(double(buckets - 1) * u);
    }
    return col;
}

} // namespace

int
main()
{
    const std::size_t rows = 20000;
    const Index buckets = 1024;
    Rng rng(11);
    auto column = salesColumn(rows, buckets, rng);

    MachineParams params;

    Machine m1(params), m2(params), m3(params);
    auto scalar = kernels::histScalar(m1, column, buckets);
    auto vec = kernels::histVector(m2, column, buckets);
    auto viak = kernels::histVia(m3, column, buckets);

    auto want = kernels::refHistogram(column, buckets);
    bool ok = viak.hist == want && vec.hist == want &&
              scalar.hist == want;
    std::printf("%zu rows into %d buckets, all kernels exact: %s\n",
                rows, buckets, ok ? "yes" : "NO");

    std::printf("%-22s %12s %9s\n", "kernel", "cycles", "speedup");
    auto row = [&](const char *name, Tick c) {
        std::printf("%-22s %12llu %8.2fx\n", name,
                    static_cast<unsigned long long>(c),
                    double(scalar.cycles) / double(c));
    };
    row("scalar", scalar.cycles);
    row("vector (AVX512CD)", vec.cycles);
    row("VIA", viak.cycles);

    // Query-planning use: estimate selectivity of amount < 10% max.
    double below = 0.0, total = 0.0;
    for (Index b = 0; b < buckets; ++b) {
        total += double(viak.hist[std::size_t(b)]);
        if (b < buckets / 10)
            below += double(viak.hist[std::size_t(b)]);
    }
    std::printf("\nestimated selectivity of `amount < p10`: %.1f%%\n",
                100.0 * below / total);
    return 0;
}
