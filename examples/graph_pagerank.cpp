/**
 * @file
 * PageRank on a power-law graph — the "SpMV is the key graph
 * kernel" motivation from the paper's introduction (GraphBLAS).
 *
 * Each PageRank iteration is y = alpha * A^T x + (1-alpha)/N; the
 * SpMV runs on the simulated machine with and without VIA and the
 * example reports both the ranking and the cycle advantage.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "cpu/machine.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/csc.hh"
#include "sparse/generators.hh"

using namespace via;

namespace
{

/** Column-normalized transpose of the adjacency matrix. */
Csr
pagerankOperator(const Csr &adj)
{
    // out-degree of each vertex
    std::vector<double> outdeg(std::size_t(adj.rows()), 0.0);
    Coo coo = adj.toCoo();
    for (const Triplet &t : coo.elems())
        outdeg[std::size_t(t.row)] += 1.0;
    Coo op(adj.cols(), adj.rows());
    for (const Triplet &t : coo.elems())
        op.add(t.col, t.row, Value(1.0 / outdeg[std::size_t(t.row)]));
    return Csr::fromCoo(std::move(op));
}

} // namespace

int
main()
{
    const Index n = 1024;
    const int iterations = 10;
    const float alpha = 0.85f;

    Rng rng(2024);
    Csr adj = genRmat(n, 8 * std::size_t(n), rng);
    Csr op = pagerankOperator(adj);
    std::printf("graph: %d vertices, %zu edges\n", n, adj.nnz());

    MachineParams params;

    auto run = [&](bool use_via, Tick &cycles) {
        DenseVector rank(std::size_t(n), Value(1.0 / double(n)));
        Machine m(params);
        Csb csb = use_via ? Csb::fromCsr(op, kernels::viaCsbBeta(m))
                          : Csb();
        for (int it = 0; it < iterations; ++it) {
            auto res = use_via
                           ? kernels::spmvViaCsb(m, csb, rank)
                           : kernels::spmvVectorCsr(m, op, rank);
            for (std::size_t v = 0; v < rank.size(); ++v)
                rank[v] = alpha * res.y[v] +
                          (1.0f - alpha) / float(n);
        }
        cycles = m.cycles();
        return rank;
    };

    Tick base_cycles = 0, via_cycles = 0;
    DenseVector base_rank = run(false, base_cycles);
    DenseVector via_rank = run(true, via_cycles);

    std::printf("ranks agree: %s\n",
                allClose(base_rank, via_rank, 1e-3, 1e-5) ? "yes"
                                                          : "NO");
    std::printf("%d iterations: baseline %llu cycles, VIA %llu "
                "cycles (%.2fx)\n",
                iterations,
                static_cast<unsigned long long>(base_cycles),
                static_cast<unsigned long long>(via_cycles),
                double(base_cycles) / double(via_cycles));

    // Top-5 vertices.
    std::vector<Index> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), Index(0));
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](Index a, Index b) {
                          return via_rank[std::size_t(a)] >
                                 via_rank[std::size_t(b)];
                      });
    std::printf("top vertices:");
    for (int i = 0; i < 5; ++i)
        std::printf(" %d(%.4f)", order[std::size_t(i)],
                    double(via_rank[std::size_t(order[
                        std::size_t(i)])]));
    std::printf("\n");
    return 0;
}
