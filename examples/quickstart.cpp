/**
 * @file
 * Quickstart: build a machine, run SpMV three ways (scalar, vector,
 * VIA+CSB), check the results and compare cycle counts.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart
 */

#include <cstdio>

#include "cpu/machine.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/generators.hh"

int
main()
{
    using namespace via;

    // 1. A sparse matrix (1% dense, 512x512) and a dense vector.
    Rng rng(42);
    Csr a = genUniform(512, 512, 0.01, rng);
    DenseVector x = randomVector(a.cols(), rng);
    std::printf("matrix: %dx%d, %zu non-zeros\n", a.rows(),
                a.cols(), a.nnz());

    // 2. The machine: Table I defaults — OoO core, 32 KB L1 / 1 MB
    //    L2 / DDR3, and a 16 KB 2-port SSPM.
    MachineParams params;

    // 3. Run the kernels. Each variant executes functionally on the
    //    simulated machine *and* is timed cycle-accurately.
    Machine m_scalar(params);
    auto scalar = kernels::spmvScalarCsr(m_scalar, a, x);

    Machine m_vector(params);
    auto vector = kernels::spmvVectorCsr(m_vector, a, x);

    Machine m_via(params);
    Csb csb = Csb::fromCsr(a, kernels::viaCsbBeta(m_via));
    auto viak = kernels::spmvViaCsb(m_via, csb, x);

    // 4. Verify against the host golden kernel.
    DenseVector golden = a.multiply(x);
    std::printf("results match golden: scalar=%s vector=%s via=%s\n",
                allClose(scalar.y, golden) ? "yes" : "NO",
                allClose(vector.y, golden) ? "yes" : "NO",
                allClose(viak.y, golden) ? "yes" : "NO");

    // 5. Compare.
    std::printf("\n%-22s %12s %9s\n", "kernel", "cycles", "speedup");
    auto row = [&](const char *name, Tick cycles) {
        std::printf("%-22s %12llu %8.2fx\n", name,
                    static_cast<unsigned long long>(cycles),
                    double(scalar.cycles) / double(cycles));
    };
    row("scalar CSR", scalar.cycles);
    row("vector CSR (gather)", vector.cycles);
    row("VIA CSB (scratchpad)", viak.cycles);

    std::printf("\nSSPM activity: %llu direct reads, "
                "%llu direct writes\n",
                static_cast<unsigned long long>(
                    m_via.sspm().stats().directReads),
                static_cast<unsigned long long>(
                    m_via.sspm().stats().directWrites));
    return 0;
}
