/**
 * @file
 * Gaussian smoothing of a synthetic image — the stencil use case of
 * paper Section IV-F2. Applies the 4x4 filter twice (stronger blur)
 * on the simulated machine with the baseline vector kernel and with
 * VIA, and verifies both against the host reference.
 */

#include <cstdio>

#include "cpu/machine.hh"
#include "kernels/reference.hh"
#include "kernels/stencil.hh"
#include "simcore/rng.hh"

using namespace via;

namespace
{

/** A synthetic "photograph": soft gradients plus speckle noise. */
DenseMatrix
makeImage(Index side, Rng &rng)
{
    DenseMatrix img(side, side);
    for (Index y = 0; y < side; ++y) {
        for (Index x = 0; x < side; ++x) {
            double v = 96.0 + 64.0 * double(x + y) / double(2 * side);
            if (rng.chance(0.05))
                v += rng.uniform() * 120.0 - 60.0; // speckle
            img.at(y, x) = Value(v);
        }
    }
    return img;
}

double
meanAbs(const DenseMatrix &m)
{
    double acc = 0.0;
    for (Value v : m.data())
        acc += std::abs(double(v));
    return acc / double(m.data().size());
}

} // namespace

int
main()
{
    const Index side = 192;
    Rng rng(7);
    DenseMatrix img = makeImage(side, rng);
    std::printf("image: %dx%d px\n", side, side);

    MachineParams params;

    Tick base_cycles = 0, via_cycles = 0;
    DenseMatrix out_base, out_via;
    {
        Machine m(params);
        DenseMatrix pass1 =
            kernels::stencilVector(m, img).out;
        out_base = kernels::stencilVector(m, pass1).out;
        base_cycles = m.cycles();
    }
    {
        Machine m(params);
        DenseMatrix pass1 = kernels::stencilVia(m, img).out;
        out_via = kernels::stencilVia(m, pass1).out;
        via_cycles = m.cycles();
    }

    DenseMatrix golden =
        kernels::refConvolve4x4(kernels::refConvolve4x4(img));
    double err = 0.0;
    for (std::size_t i = 0; i < golden.data().size(); ++i)
        err = std::max(err, std::abs(double(golden.data()[i]) -
                                     double(out_via.data()[i])));

    std::printf("two blur passes -> %dx%d output, mean |px| %.1f, "
                "max err vs reference %.2e\n",
                out_via.rows(), out_via.cols(), meanAbs(out_via),
                err);
    std::printf("baseline %llu cycles, VIA %llu cycles (%.2fx)\n",
                static_cast<unsigned long long>(base_cycles),
                static_cast<unsigned long long>(via_cycles),
                double(base_cycles) / double(via_cycles));
    return 0;
}
