/**
 * @file
 * Conjugate gradient on a simulated machine — the HPCG motivation
 * from the paper's introduction (SpMV dominates the conjugate
 * gradient benchmark that rates supercomputers).
 *
 * Solves A x = b for a symmetric positive-definite banded system.
 * The SpMV inside every CG iteration runs on the simulated machine
 * (baseline vs VIA); the surrounding vector updates are host-side,
 * mirroring how HPCG spends its time.
 */

#include <cmath>
#include <cstdio>

#include "cpu/machine.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/generators.hh"

using namespace via;

namespace
{

/** SPD system: tridiagonal-ish Laplacian with noise. */
Csr
makeSystem(Index n, Rng &rng)
{
    Coo coo(n, n);
    for (Index i = 0; i < n; ++i) {
        coo.add(i, i, Value(4.0 + rng.uniform()));
        if (i + 1 < n) {
            Value off = Value(-1.0 - 0.1 * rng.uniform());
            coo.add(i, i + 1, off);
            coo.add(i + 1, i, off);
        }
        if (i + 16 < n) {
            coo.add(i, i + 16, -0.5f);
            coo.add(i + 16, i, -0.5f);
        }
    }
    return Csr::fromCoo(std::move(coo));
}

double
dot(const DenseVector &a, const DenseVector &b)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += double(a[i]) * double(b[i]);
    return acc;
}

/** CG with the SpMV on the simulated machine. */
int
solve(const Csr &a, const DenseVector &b, bool use_via,
      Tick &cycles, double &final_res)
{
    auto n = std::size_t(a.rows());
    DenseVector x(n, 0.0f), r = b, p = b, ap(n);
    double rs = dot(r, r);
    const double tol = 1e-6 * std::sqrt(rs);

    MachineParams params;
    Machine m(params);
    Csb csb = use_via ? Csb::fromCsr(a, kernels::viaCsbBeta(m))
                      : Csb();

    int it = 0;
    for (; it < 200; ++it) {
        ap = use_via ? kernels::spmvViaCsb(m, csb, p).y
                     : kernels::spmvVectorCsr(m, a, p).y;
        double alpha = rs / dot(p, ap);
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += Value(alpha) * p[i];
            r[i] -= Value(alpha) * ap[i];
        }
        double rs_new = dot(r, r);
        if (std::sqrt(rs_new) < tol) {
            rs = rs_new;
            ++it;
            break;
        }
        double beta = rs_new / rs;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = r[i] + Value(beta) * p[i];
        rs = rs_new;
    }
    cycles = m.cycles();
    final_res = std::sqrt(rs);
    return it;
}

} // namespace

int
main()
{
    const Index n = 1024;
    Rng rng(3);
    Csr a = makeSystem(n, rng);
    DenseVector b = randomVector(n, rng);
    std::printf("CG on a %dx%d SPD system (%zu nnz)\n", n, n,
                a.nnz());

    Tick base_cycles = 0, via_cycles = 0;
    double base_res = 0, via_res = 0;
    int base_it = solve(a, b, false, base_cycles, base_res);
    int via_it = solve(a, b, true, via_cycles, via_res);

    std::printf("baseline: %3d iterations, %10llu cycles, "
                "residual %.2e\n",
                base_it,
                static_cast<unsigned long long>(base_cycles),
                base_res);
    std::printf("VIA:      %3d iterations, %10llu cycles, "
                "residual %.2e  (%.2fx)\n",
                via_it,
                static_cast<unsigned long long>(via_cycles),
                via_res, double(base_cycles) / double(via_cycles));
    bool converged = base_res < 1e-3 && via_res < 1e-3;
    std::printf("both converged: %s\n", converged ? "yes" : "NO");
    return converged ? 0 : 1;
}
