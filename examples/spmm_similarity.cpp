/**
 * @file
 * Sparse feature co-occurrence via SpMM — the AI motivation from
 * the paper's introduction (SpMM in SVM/gradient-descent training).
 *
 * Rows of A are samples with sparse binary-ish features; A * A^T is
 * the sample-similarity Gram matrix. Runs the scalar inner-product
 * baseline against the VIA CAM kernel and verifies the results.
 */

#include <cstdio>

#include "cpu/machine.hh"
#include "kernels/spmm.hh"
#include "simcore/rng.hh"
#include "sparse/convert.hh"
#include "sparse/csc.hh"
#include "sparse/generators.hh"

using namespace via;

int
main()
{
    const Index samples = 160;
    const Index features = 160;
    Rng rng(5);
    Csr a = genUniform(samples, features, 0.06, rng);

    // B = A^T in CSC (shares A's layout column-wise).
    Csc b = [&] {
        Coo coo = a.toCoo();
        Coo t(a.cols(), a.rows());
        for (const Triplet &e : coo.elems())
            t.add(e.col, e.row, e.value);
        return Csc::fromCoo(std::move(t));
    }();

    std::printf("Gram matrix of %d samples x %d features "
                "(%zu non-zeros)\n",
                samples, features, a.nnz());

    MachineParams params;
    Machine m1(params), m2(params);
    auto scalar = kernels::spmmScalarInner(m1, a, b);
    auto viak = kernels::spmmViaInner(m2, a, b);

    // Host golden: A * A^T.
    Csr at = [&] {
        Coo coo = a.toCoo();
        Coo t(a.cols(), a.rows());
        for (const Triplet &e : coo.elems())
            t.add(e.col, e.row, e.value);
        return Csr::fromCoo(std::move(t));
    }();
    Csr golden = mulCsr(a, at);

    std::printf("results match golden: scalar=%s via=%s "
                "(%zu non-zeros in C)\n",
                closeElements(scalar.c, golden, 1e-3) ? "yes" : "NO",
                closeElements(viak.c, golden, 1e-3) ? "yes" : "NO",
                golden.nnz());
    std::printf("scalar %llu cycles, VIA %llu cycles (%.2fx)\n",
                static_cast<unsigned long long>(scalar.cycles),
                static_cast<unsigned long long>(viak.cycles),
                double(scalar.cycles) / double(viak.cycles));
    return 0;
}
