/**
 * @file
 * Figure 9 — design space exploration of the SSPM.
 *
 * Sweeps {4 KB, 16 KB} x {2, 4} ports for the three kernels and
 * reports speedup normalized to each kernel's own 4_2p
 * configuration, exactly as the paper's Figure 9 does.
 *
 * Paper: SpMV +2% (4_4p), +26% (16_2p), +33% (16_4p);
 *        SpMA +4%, +16%, +20%;  SpMM +8%, +5%, +11%.
 *
 * Usage: fig9_dse [count=N] [seed=S] [max_rows=R] [spmm_rows=R2]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/spma.hh"
#include "kernels/spmm.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

namespace
{

struct Cfg
{
    const char *name;
    std::uint64_t kb;
    std::uint32_t ports;
};

const Cfg configs[] = {
    {"4_2p", 4, 2},
    {"4_4p", 4, 4},
    {"16_2p", 16, 2},
    {"16_4p", 16, 4},
};

MachineParams
paramsFor(const Cfg &cfg)
{
    MachineParams p;
    p.via = ViaConfig::make(cfg.kb, cfg.ports);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = bench::parseArgs(argc, argv);

    CorpusSpec spec;
    spec.count = cfg.getUInt("count", 8);
    // Large matrices are needed for the SSPM-size axis to matter:
    // small inputs fit a single CSB block / CAM tile at every size.
    spec.minRows = 1024;
    spec.maxRows = Index(cfg.getUInt("max_rows", 8192));
    spec.seed = cfg.getUInt("seed", 1);
    auto corpus = buildCorpus(spec);

    // SpMA stresses the CAM: denser rows so the 4 KB configuration
    // has to tile where the 16 KB one does not.
    CorpusSpec add_spec = spec;
    add_spec.minRows = 1024;
    add_spec.maxRows = Index(cfg.getUInt("spma_rows", 4096));
    add_spec.minDensity = 0.01;
    auto add_corpus = buildCorpus(add_spec);

    CorpusSpec mm_spec = spec;
    mm_spec.maxRows = Index(cfg.getUInt("spmm_rows", 256));
    mm_spec.minRows = 96;
    mm_spec.minDensity = 0.01;
    mm_spec.count = std::min<std::size_t>(spec.count, 6);
    auto mm_corpus = buildCorpus(mm_spec);

    Rng rng(99);

    // cycles[kernel][config] accumulated as geomean inputs.
    std::vector<double> spmv[4], spma[4], spmm[4];

    for (std::size_t c = 0; c < 4; ++c) {
        MachineParams params = paramsFor(configs[c]);
        for (const auto &entry : corpus) {
            const Csr &a = entry.matrix;
            DenseVector x = randomVector(a.cols(), rng);
            {
                Machine m(params);
                Csb csb = Csb::fromCsr(a, kernels::viaCsbBeta(m));
                spmv[c].push_back(double(
                    kernels::spmvViaCsb(m, csb, x).cycles));
            }
        }
        for (const auto &entry : add_corpus) {
            Machine m(params);
            spma[c].push_back(double(
                kernels::spmaViaCsr(m, entry.matrix,
                                    entry.matrix).cycles));
        }
        for (const auto &entry : mm_corpus) {
            const Csr &a = entry.matrix;
            Machine m(params);
            if (a.maxRowNnz() >
                Index(m.sspm().config().camEntries()))
                continue;
            Csc b = Csc::fromCsr(a);
            spmm[c].push_back(double(
                kernels::spmmViaInner(m, a, b).cycles));
        }
        std::printf("finished config %s\n", configs[c].name);
    }

    auto norm = [](std::vector<double> *cyc, std::size_t c) {
        // speedup of config c over config 0, geomean over corpus
        std::vector<double> sp;
        for (std::size_t i = 0; i < cyc[c].size(); ++i)
            sp.push_back(cyc[0][i] / cyc[c][i]);
        return bench::geomean(sp);
    };

    std::printf("\n== Figure 9: speedup vs SSPM size/ports "
                "(normalized to 4_2p) ==\n");
    std::vector<std::vector<std::string>> rows;
    const double paper_spmv[] = {1.00, 1.02, 1.26, 1.33};
    const double paper_spma[] = {1.00, 1.04, 1.16, 1.20};
    const double paper_spmm[] = {1.00, 1.08, 1.05, 1.11};
    for (std::size_t c = 0; c < 4; ++c) {
        rows.push_back(
            {configs[c].name, bench::fmt(norm(spmv, c)),
             bench::fmt(paper_spmv[c]), bench::fmt(norm(spma, c)),
             bench::fmt(paper_spma[c]), bench::fmt(norm(spmm, c)),
             bench::fmt(paper_spmm[c])});
    }
    bench::printTable({"config", "SpMV", "(paper)", "SpMA",
                       "(paper)", "SpMM", "(paper)"},
                      rows);
    return 0;
}
