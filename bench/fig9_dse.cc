/**
 * @file
 * Figure 9 — design space exploration of the SSPM.
 *
 * Sweeps {4 KB, 16 KB} x {2, 4} ports for the three kernels and
 * reports speedup normalized to each kernel's own 4_2p
 * configuration, exactly as the paper's Figure 9 does.
 *
 * Paper: SpMV +2% (4_4p), +26% (16_2p), +33% (16_4p);
 *        SpMA +4%, +16%, +20%;  SpMM +8%, +5%, +11%.
 *
 * Every (config, matrix, kernel) point is independent, so the sweep
 * fans out over a SweepExecutor; results are collected in
 * submission order, making the table bit-identical at any thread
 * count. Dense vectors are drawn per matrix (pointSeed) so every
 * configuration sees the same input.
 *
 * Usage: fig9_dse [count=N] [seed=S] [max_rows=R] [spmm_rows=R2]
 *                 [threads=T]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/spma.hh"
#include "kernels/spmm.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

namespace
{

struct Cfg
{
    const char *name;
    std::uint64_t kb;
    std::uint32_t ports;
};

const Cfg configs[] = {
    {"4_2p", 4, 2},
    {"4_4p", 4, 4},
    {"16_2p", 16, 2},
    {"16_4p", 16, 4},
};

constexpr std::size_t NUM_CFGS = 4;

MachineParams
paramsFor(const Cfg &cfg)
{
    MachineParams p;
    p.via = ViaConfig::make(cfg.kb, cfg.ports);
    return p;
}

enum Kernel { KSpmv, KSpma, KSpmm };

struct Point
{
    Kernel kernel;
    std::size_t cfg;
    std::size_t idx;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "fig9_dse", "Figure 9: SSPM size x port design space");
    opts.addUInt("count", 8, "corpus matrices", 1)
        .addUInt("max_rows", 8192, "largest corpus dimension", 1)
        .addUInt("seed", 1, "corpus generator seed")
        .addUInt("spma_rows", 4096,
                 "largest SpMA corpus dimension", 1)
        .addUInt("spmm_rows", 256,
                 "largest SpMM corpus dimension", 1);
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    SweepExecutor exec = bench::makeExecutor(opts);

    CorpusSpec spec;
    spec.count = opts.getUInt("count");
    // Large matrices are needed for the SSPM-size axis to matter:
    // small inputs fit a single CSB block / CAM tile at every size.
    spec.minRows = 1024;
    spec.maxRows = Index(opts.getUInt("max_rows"));
    spec.seed = opts.getUInt("seed");
    auto corpus = buildCorpus(spec);

    // SpMA stresses the CAM: denser rows so the 4 KB configuration
    // has to tile where the 16 KB one does not.
    CorpusSpec add_spec = spec;
    add_spec.minRows = 1024;
    add_spec.maxRows = Index(opts.getUInt("spma_rows"));
    add_spec.minDensity = 0.01;
    auto add_corpus = buildCorpus(add_spec);

    CorpusSpec mm_spec = spec;
    mm_spec.maxRows = Index(opts.getUInt("spmm_rows"));
    mm_spec.minRows = 96;
    mm_spec.minDensity = 0.01;
    mm_spec.count = std::min<std::size_t>(spec.count, 6);
    auto mm_corpus = buildCorpus(mm_spec);

    // One x per matrix, identical across configurations so the
    // speedup ratios compare like with like.
    std::vector<DenseVector> xs;
    xs.reserve(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        Rng rng(SweepExecutor::pointSeed(99, i));
        xs.push_back(randomVector(corpus[i].matrix.cols(), rng));
    }

    // Matrices whose densest row exceeds a configuration's CAM are
    // excluded for *all* configurations (smallest CAM in the sweep)
    // so the per-config cycle vectors stay aligned.
    std::uint64_t min_cam = paramsFor(configs[0]).via.camEntries();
    for (const Cfg &c : configs)
        min_cam = std::min(min_cam, paramsFor(c).via.camEntries());
    std::vector<std::size_t> mm_ok;
    for (std::size_t i = 0; i < mm_corpus.size(); ++i)
        if (mm_corpus[i].matrix.maxRowNnz() <= Index(min_cam))
            mm_ok.push_back(i);

    std::vector<Point> points;
    for (std::size_t c = 0; c < NUM_CFGS; ++c) {
        for (std::size_t i = 0; i < corpus.size(); ++i)
            points.push_back({KSpmv, c, i});
        for (std::size_t i = 0; i < add_corpus.size(); ++i)
            points.push_back({KSpma, c, i});
        for (std::size_t i = 0; i < mm_ok.size(); ++i)
            points.push_back({KSpmm, c, mm_ok[i]});
    }

    // Progress goes to stderr so stdout stays byte-identical
    // across thread counts.
    std::fprintf(stderr, "running %zu points on %u threads\n",
                 points.size(), exec.threads());
    auto cycles = exec.run(points.size(), [&](std::size_t p) {
        const Point &pt = points[p];
        MachineParams params = paramsFor(configs[pt.cfg]);
        Machine m(params);
        switch (pt.kernel) {
          case KSpmv: {
            const Csr &a = corpus[pt.idx].matrix;
            Csb csb = Csb::fromCsr(a, kernels::viaCsbBeta(m));
            return double(
                kernels::spmvViaCsb(m, csb, xs[pt.idx]).cycles);
          }
          case KSpma: {
            const Csr &a = add_corpus[pt.idx].matrix;
            return double(kernels::spmaViaCsr(m, a, a).cycles);
          }
          default: {
            const Csr &a = mm_corpus[pt.idx].matrix;
            Csc b = Csc::fromCsr(a);
            return double(kernels::spmmViaInner(m, a, b).cycles);
          }
        }
    });

    // cycles[kernel][config] accumulated as geomean inputs.
    std::vector<double> spmv[NUM_CFGS], spma[NUM_CFGS],
        spmm[NUM_CFGS];
    for (std::size_t p = 0; p < points.size(); ++p) {
        const Point &pt = points[p];
        auto &bucket = pt.kernel == KSpmv   ? spmv[pt.cfg]
                       : pt.kernel == KSpma ? spma[pt.cfg]
                                            : spmm[pt.cfg];
        bucket.push_back(cycles[p]);
    }

    auto norm = [](std::vector<double> *cyc, std::size_t c) {
        // speedup of config c over config 0, geomean over corpus
        std::vector<double> sp;
        for (std::size_t i = 0; i < cyc[c].size(); ++i)
            sp.push_back(cyc[0][i] / cyc[c][i]);
        return bench::geomean(sp);
    };

    std::printf("\n== Figure 9: speedup vs SSPM size/ports "
                "(normalized to 4_2p) ==\n");
    std::vector<std::vector<std::string>> rows;
    const double paper_spmv[] = {1.00, 1.02, 1.26, 1.33};
    const double paper_spma[] = {1.00, 1.04, 1.16, 1.20};
    const double paper_spmm[] = {1.00, 1.08, 1.05, 1.11};
    for (std::size_t c = 0; c < NUM_CFGS; ++c) {
        rows.push_back(
            {configs[c].name, bench::fmt(norm(spmv, c)),
             bench::fmt(paper_spmv[c]), bench::fmt(norm(spma, c)),
             bench::fmt(paper_spma[c]), bench::fmt(norm(spmm, c)),
             bench::fmt(paper_spmm[c])});
    }
    bench::printTable({"config", "SpMV", "(paper)", "SpMA",
                       "(paper)", "SpMM", "(paper)"},
                      rows);
    return 0;
}
