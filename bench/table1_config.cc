/**
 * @file
 * Table I — simulation parameters.
 *
 * Prints the machine configuration used throughout the evaluation,
 * mirroring the paper's Table I. Override any parameter with
 * key=value arguments (e.g. sspm_kb=4 ports=4).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "cpu/core_params.hh"

int
main(int argc, char **argv)
{
    using namespace via;
    Config cfg = bench::parseArgs(argc, argv);

    MachineParams params;
    params.via = ViaConfig::make(cfg.getUInt("sspm_kb", 16),
                                 std::uint32_t(cfg.getUInt("ports",
                                                           2)));

    std::printf("== Table I: simulation parameters ==\n\n");
    params.print(std::cout);
    return 0;
}
