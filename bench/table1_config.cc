/**
 * @file
 * Table I — simulation parameters.
 *
 * Prints the machine configuration used throughout the evaluation,
 * mirroring the paper's Table I. Override any parameter with
 * key=value arguments (e.g. sspm_kb=4 ports=4).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "cpu/core_params.hh"

int
main(int argc, char **argv)
{
    using namespace via;
    Options opts("table1_config",
                 "Table I: the evaluation's machine parameters");
    opts.addUInt("sspm_kb", 16, "SSPM capacity in KB", 1)
        .addUInt("ports", 2, "SSPM ports", 1);
    opts.parse(argc, argv);

    MachineParams params;
    params.via =
        ViaConfig::make(opts.getUInt("sspm_kb"),
                        std::uint32_t(opts.getUInt("ports")));

    std::printf("== Table I: simulation parameters ==\n\n");
    params.print(std::cout);
    return 0;
}
