/**
 * @file
 * Ablation — sensitivity of the SpMA result to the branch
 * misprediction penalty.
 *
 * The scalar sorted-merge baseline is limited by unpredictable
 * compare branches; this sweep shows how the VIA speedup scales
 * with the modelled front-end redirect cost (0 = oracle predictor).
 *
 * Usage: ablation_branch_penalty [count=N] [seed=S] [threads=T]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/spma.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "ablation_branch_penalty",
        "Ablation: branch mispredict penalty vs SpMA speedup");
    opts.addUInt("count", 6, "corpus matrices", 1)
        .addUInt("seed", 1, "corpus generator seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    CorpusSpec spec;
    spec.count = opts.getUInt("count");
    spec.minRows = 512;
    spec.maxRows = 2048;
    spec.minDensity = 0.004;
    spec.seed = opts.getUInt("seed");
    auto corpus = buildCorpus(spec);

    std::printf("== Ablation: mispredict penalty vs SpMA speedup "
                "==\n");
    // Siblings are drawn once (seed 31, as the serial sweep did per
    // penalty) so every penalty point sees identical inputs.
    std::vector<Csr> siblings;
    {
        Rng rng(31);
        for (const auto &entry : corpus)
            siblings.push_back(bench::makeSibling(entry.matrix,
                                                  rng));
    }

    const Tick penalties[] = {Tick(0), Tick(7), Tick(14), Tick(20)};
    const std::size_t n_pen = std::size(penalties);
    SweepExecutor exec = bench::makeExecutor(opts);
    auto speedups =
        exec.run(n_pen * corpus.size(), [&](std::size_t p) {
            std::size_t pen = p / corpus.size();
            std::size_t i = p % corpus.size();
            MachineParams params;
            params.core.latencies.mispredictPenalty =
                penalties[pen];
            const Csr &a = corpus[i].matrix;
            const Csr &b = siblings[i];
            Machine m1(params), m2(params);
            double base =
                double(kernels::spmaScalarCsr(m1, a, b).cycles);
            double viac =
                double(kernels::spmaViaCsr(m2, a, b).cycles);
            return base / viac;
        });

    std::vector<std::vector<std::string>> rows;
    for (std::size_t pen = 0; pen < n_pen; ++pen) {
        std::vector<double> sp(
            speedups.begin() + pen * corpus.size(),
            speedups.begin() + (pen + 1) * corpus.size());
        rows.push_back({std::to_string(penalties[pen]) + " cycles",
                        bench::fmt(bench::geomean(sp)) + "x"});
    }
    bench::printTable({"penalty", "VIA-SpMA speedup"}, rows);
    return 0;
}
