/**
 * @file
 * Ablation — sensitivity of the SpMA result to the branch
 * misprediction penalty.
 *
 * The scalar sorted-merge baseline is limited by unpredictable
 * compare branches; this sweep shows how the VIA speedup scales
 * with the modelled front-end redirect cost (0 = oracle predictor).
 *
 * Usage: ablation_branch_penalty [count=N] [seed=S]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/spma.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Config cfg = bench::parseArgs(argc, argv);
    CorpusSpec spec;
    spec.count = cfg.getUInt("count", 6);
    spec.minRows = 512;
    spec.maxRows = 2048;
    spec.minDensity = 0.004;
    spec.seed = cfg.getUInt("seed", 1);
    auto corpus = buildCorpus(spec);

    std::printf("== Ablation: mispredict penalty vs SpMA speedup "
                "==\n");
    std::vector<std::vector<std::string>> rows;
    for (Tick penalty : {Tick(0), Tick(7), Tick(14), Tick(20)}) {
        MachineParams params;
        params.core.latencies.mispredictPenalty = penalty;
        std::vector<double> sp;
        Rng rng(31);
        for (const auto &entry : corpus) {
            const Csr &a = entry.matrix;
            Csr b = bench::makeSibling(a, rng);
            Machine m1(params), m2(params);
            double base = double(
                kernels::spmaScalarCsr(m1, a, b).cycles);
            double viac =
                double(kernels::spmaViaCsr(m2, a, b).cycles);
            sp.push_back(base / viac);
        }
        rows.push_back({std::to_string(penalty) + " cycles",
                        bench::fmt(bench::geomean(sp)) + "x"});
    }
    bench::printTable({"penalty", "VIA-SpMA speedup"}, rows);
    return 0;
}
