/**
 * @file
 * Ablation — sensitivity of the headline SpMV result to the gather
 * cost model (DESIGN.md section 4.4).
 *
 * The paper's challenge 1 rests on gathers being expensive (22+
 * cycles best case). This sweep varies the fixed gather overhead
 * and the per-element port occupancy and reports the VIA-CSB
 * speedup over software CSB for each point, showing how much of the
 * result the gather model accounts for.
 *
 * Usage: ablation_gather_cost [count=N] [seed=S] [max_rows=R]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Config cfg = bench::parseArgs(argc, argv);
    CorpusSpec spec;
    spec.count = cfg.getUInt("count", 6);
    spec.maxRows = Index(cfg.getUInt("max_rows", 2048));
    spec.seed = cfg.getUInt("seed", 1);
    auto corpus = buildCorpus(spec);

    struct Point
    {
        Tick overhead;
        Tick port_factor;
    };
    const Point points[] = {{0, 1}, {8, 1}, {18, 1}, {18, 2},
                            {30, 2}};

    Rng rng(44);
    std::printf("== Ablation: gather cost vs VIA-CSB speedup ==\n");
    std::vector<std::vector<std::string>> rows;
    for (const Point &pt : points) {
        MachineParams params;
        params.core.latencies.gatherOverhead = pt.overhead;
        params.core.latencies.gatherPortFactor = pt.port_factor;

        std::vector<double> sp;
        Rng local(44);
        for (const auto &entry : corpus) {
            const Csr &a = entry.matrix;
            DenseVector x = randomVector(a.cols(), local);
            Machine m1(params), m2(params);
            Csb csb = Csb::fromCsr(a, kernels::viaCsbBeta(m1));
            double base =
                double(kernels::spmvVectorCsb(m1, csb, x).cycles);
            double viac =
                double(kernels::spmvViaCsb(m2, csb, x).cycles);
            sp.push_back(base / viac);
        }
        rows.push_back({std::to_string(pt.overhead) + " cycles",
                        std::to_string(pt.port_factor),
                        bench::fmt(bench::geomean(sp)) + "x"});
        (void)rng;
    }
    bench::printTable({"gather overhead", "port slots/elem",
                       "VIA-CSB speedup"},
                      rows);
    return 0;
}
