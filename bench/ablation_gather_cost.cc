/**
 * @file
 * Ablation — sensitivity of the headline SpMV result to the gather
 * cost model (DESIGN.md section 4.4).
 *
 * The paper's challenge 1 rests on gathers being expensive (22+
 * cycles best case). This sweep varies the fixed gather overhead
 * and the per-element port occupancy and reports the VIA-CSB
 * speedup over software CSB for each point, showing how much of the
 * result the gather model accounts for.
 *
 * Usage: ablation_gather_cost [count=N] [seed=S] [max_rows=R]
 *        [threads=T]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "ablation_gather_cost",
        "Ablation: gather cost vs VIA-CSB speedup");
    opts.addUInt("count", 6, "corpus matrices", 1)
        .addUInt("max_rows", 2048, "largest corpus dimension", 1)
        .addUInt("seed", 1, "corpus generator seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    CorpusSpec spec;
    spec.count = opts.getUInt("count");
    spec.maxRows = Index(opts.getUInt("max_rows"));
    spec.seed = opts.getUInt("seed");
    auto corpus = buildCorpus(spec);

    struct Point
    {
        Tick overhead;
        Tick port_factor;
    };
    const Point points[] = {{0, 1}, {8, 1}, {18, 1}, {18, 2},
                            {30, 2}};

    std::printf("== Ablation: gather cost vs VIA-CSB speedup ==\n");
    // The serial sweep re-seeded Rng(44) per cost point; drawing
    // the vectors once preserves identical inputs at every point.
    std::vector<DenseVector> xs;
    {
        Rng rng(44);
        for (const auto &entry : corpus)
            xs.push_back(randomVector(entry.matrix.cols(), rng));
    }

    const std::size_t n_points = std::size(points);
    SweepExecutor exec = bench::makeExecutor(opts);
    auto speedups =
        exec.run(n_points * corpus.size(), [&](std::size_t p) {
            const Point &pt = points[p / corpus.size()];
            std::size_t i = p % corpus.size();
            MachineParams params;
            params.core.latencies.gatherOverhead = pt.overhead;
            params.core.latencies.gatherPortFactor =
                pt.port_factor;

            const Csr &a = corpus[i].matrix;
            Machine m1(params), m2(params);
            Csb csb = Csb::fromCsr(a, kernels::viaCsbBeta(m1));
            double base =
                double(kernels::spmvVectorCsb(m1, csb,
                                              xs[i]).cycles);
            double viac =
                double(kernels::spmvViaCsb(m2, csb,
                                           xs[i]).cycles);
            return base / viac;
        });

    std::vector<std::vector<std::string>> rows;
    for (std::size_t pn = 0; pn < n_points; ++pn) {
        std::vector<double> sp(
            speedups.begin() + pn * corpus.size(),
            speedups.begin() + (pn + 1) * corpus.size());
        rows.push_back({std::to_string(points[pn].overhead) +
                            " cycles",
                        std::to_string(points[pn].port_factor),
                        bench::fmt(bench::geomean(sp)) + "x"});
    }
    bench::printTable({"gather overhead", "port slots/elem",
                       "VIA-CSB speedup"},
                      rows);
    return 0;
}
