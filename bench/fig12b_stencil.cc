/**
 * @file
 * Figure 12.b — 4x4 Gaussian filter speedup on 128/256/512 px
 * images. Paper average: 3.39x over the vector baseline.
 *
 * Images are drawn serially up front; the three sizes then run as
 * independent points on a SweepExecutor (threads=N), bit-identical
 * at any thread count.
 *
 * Usage: fig12b_stencil [seed=S] [sspm_kb=K] [ports=P] [threads=T]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "cpu/machine_config.hh"
#include "kernels/stencil.hh"
#include "simcore/rng.hh"

using namespace via;

namespace
{

DenseMatrix
randomImage(Index side, Rng &rng)
{
    DenseMatrix img(side, side);
    for (auto &p : img.data())
        p = Value(rng.uniform() * 255.0);
    return img;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "fig12b_stencil",
        "Figure 12.b: 4x4 Gaussian filter, VIA vs vector baseline");
    addMachineOptions(opts);
    opts.addUInt("seed", 9, "image generator seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    Rng rng(opts.getUInt("seed"));

    MachineParams params = machineParamsFrom(opts.config());

    std::printf("== Figure 12.b: 4x4 Gaussian filter ==\n");
    const Index sides[] = {128, 256, 512};
    std::vector<DenseMatrix> images;
    for (Index side : sides)
        images.push_back(randomImage(side, rng));

    SweepExecutor exec = bench::makeExecutor(opts);
    struct Point
    {
        Tick vecCycles = 0;
        Tick viaCycles = 0;
    };
    auto results = exec.run(images.size(), [&](std::size_t i) {
        Machine m1(params), m2(params);
        auto vec = kernels::stencilVector(m1, images[i]);
        auto viak = kernels::stencilVia(m2, images[i]);
        return Point{vec.cycles, viak.cycles};
    });

    std::vector<std::vector<std::string>> rows;
    std::vector<double> speedups;
    for (std::size_t i = 0; i < results.size(); ++i) {
        double sp = double(results[i].vecCycles) /
                    double(results[i].viaCycles);
        speedups.push_back(sp);
        rows.push_back({std::to_string(sides[i]) + "px",
                        std::to_string(results[i].vecCycles),
                        std::to_string(results[i].viaCycles),
                        bench::fmt(sp)});
    }
    rows.push_back({"average", "-", "-",
                    bench::fmt(bench::geomean(speedups))});
    rows.push_back({"paper avg", "-", "-", "3.39"});
    bench::printTable({"image", "vector cyc", "VIA cyc", "speedup"},
                      rows);
    return 0;
}
