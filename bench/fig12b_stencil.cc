/**
 * @file
 * Figure 12.b — 4x4 Gaussian filter speedup on 128/256/512 px
 * images. Paper average: 3.39x over the vector baseline.
 *
 * Usage: fig12b_stencil [seed=S] [sspm_kb=K] [ports=P]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "cpu/machine_config.hh"
#include "kernels/stencil.hh"
#include "simcore/rng.hh"

using namespace via;

namespace
{

DenseMatrix
randomImage(Index side, Rng &rng)
{
    DenseMatrix img(side, side);
    for (auto &p : img.data())
        p = Value(rng.uniform() * 255.0);
    return img;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = bench::parseArgs(argc, argv);
    Rng rng(cfg.getUInt("seed", 9));

    MachineParams params = machineParamsFrom(cfg);

    std::printf("== Figure 12.b: 4x4 Gaussian filter ==\n");
    std::vector<std::vector<std::string>> rows;
    std::vector<double> speedups;
    for (Index side : {128, 256, 512}) {
        DenseMatrix img = randomImage(side, rng);
        Machine m1(params), m2(params);
        auto vec = kernels::stencilVector(m1, img);
        auto viak = kernels::stencilVia(m2, img);
        double sp = double(vec.cycles) / double(viak.cycles);
        speedups.push_back(sp);
        rows.push_back({std::to_string(side) + "px",
                        std::to_string(vec.cycles),
                        std::to_string(viak.cycles),
                        bench::fmt(sp)});
    }
    rows.push_back({"average", "-", "-",
                    bench::fmt(bench::geomean(speedups))});
    rows.push_back({"paper avg", "-", "-", "3.39"});
    bench::printTable({"image", "vector cyc", "VIA cyc", "speedup"},
                      rows);
    return 0;
}
