/**
 * @file
 * Figure 10 — SpMV speedup of the VIA kernels over the software
 * implementations of the same format, bucketed by CSB block density.
 *
 * Paper result: CSB 4.22x average; CSR 1.25x; SPC5 1.24x;
 * Sell-C-sigma 1.31x. Matrices are sorted by non-zeros per CSB block
 * and split evenly into four categories; the x-axis label is the
 * median nnz/block of each category.
 *
 * Matrices are independent simulation points: each runs on its own
 * worker thread (threads=N, default hardware concurrency) with a
 * per-matrix RNG seed, and rows print in submission order, so the
 * output is bit-identical at any thread count.
 *
 * Usage: fig10_spmv [count=N] [seed=S] [max_rows=R] [sspm_kb=K]
 *                   [ports=P] [corpus_dir=PATH] [threads=T]
 *                   [mode=detailed|sampled] [sample_interval=N]
 *                   [sample_warmup=N] [sample_measure=N]
 *                   [trace=PATH] [trace_format=perfetto|konata]
 *                   [trace_limit=N] [trace_summary=1]
 *                   [cores=N] [partition=static|steal] [llc_banks=B]
 *
 * With cores>1 the CSR and CSB columns compare the parallel kernel
 * variants on the multi-core machine (docs/multicore.md); SPC5 and
 * Sell-C-sigma are inherently sequential over their block/chunk
 * streams and keep their single-core numbers. cores>1 requires
 * mode=detailed. cores=1 (the default) is the unchanged,
 * bit-identical single-core path.
 *
 * mode=sampled replaces every kernel's detailed cycle count with
 * the interval-sampling extrapolation (docs/sampling.md), making
 * corpora with far larger matrices (max_rows in the hundreds of
 * thousands) tractable at a bounded cycle error.
 *
 * With trace=PATH, the VIA CSB run of every matrix writes its own
 * event trace, suffixed with the matrix name before the extension
 * (e.g. trace=fig10.json -> fig10_uniform_03.json).
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "cpu/machine_config.hh"
#include "cpu/multi_machine.hh"
#include "kernels/backend_kernels.hh"
#include "kernels/parallel.hh"
#include "kernels/runner.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"
#include "sparse/structure_stats.hh"

using namespace via;

namespace
{

struct PerMatrix
{
    double nnzPerBlock = 0.0;
    double spCsr = 0.0;  //!< VIA speedup over software, per format
    double spSpc5 = 0.0;
    double spSell = 0.0;
    double spCsb = 0.0;       //!< vs the vectorized CSB kernel
    double spCsbScalar = 0.0; //!< vs the scalar CSB reference
    std::string line;         //!< per-matrix report, printed in order
};

MachineParams
makeParams(const Config &cfg)
{
    return machineParamsFrom(cfg);
}

/**
 * The accelerated column's kernel per format, selected by backend=.
 * backend=via (the default) runs the historical VIA kernels, so the
 * default output is unchanged; backend=base degenerates to software
 * vs software (every speedup 1.0 by construction).
 */
struct AccelKernels
{
    kernels::SpmvResult (*csr)(Machine &, const Csr &,
                               const DenseVector &);
    kernels::SpmvResult (*spc5)(Machine &, const Spc5 &,
                                const DenseVector &);
    kernels::SpmvResult (*sell)(Machine &, const SellCSigma &,
                                const DenseVector &);
    kernels::SpmvResult (*csb)(Machine &, const Csb &,
                               const DenseVector &);
};

AccelKernels
accelKernels(BackendKind kind)
{
    using namespace kernels;
    switch (kind) {
      case BackendKind::Base:
        return {spmvVectorCsr, spmvVectorSpc5, spmvVectorSell,
                spmvVectorCsb};
      case BackendKind::Via:
        return {spmvViaCsr, spmvViaSpc5, spmvViaSell, spmvViaCsb};
      case BackendKind::Ssr:
        return {spmvSsrCsr, spmvSsrSpc5, spmvSsrSell, spmvSsrCsb};
      case BackendKind::IndexMac:
        return {spmvImacCsr, spmvImacSpc5, spmvImacSell,
                spmvImacCsb};
    }
    via_fatal("unhandled backend kind");
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "fig10_spmv",
        "Figure 10: SpMV speedup of VIA over software formats");
    addMachineOptions(opts);
    addMultiCoreOptions(opts);
    sample::addSampleOptions(opts);
    addTraceOptions(opts);
    opts.addString("corpus_dir", "",
                   "load MatrixMarket corpus from this directory "
                   "instead of generating one")
        .addUInt("count", 24, "generated corpus matrices", 1)
        .addUInt("max_rows", 4096, "largest corpus dimension", 1)
        .addUInt("seed", 1, "corpus generator seed")
        .addUInt("vec_seed", 1234, "dense-vector seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    MachineParams params = makeParams(opts.config());

    std::vector<CorpusEntry> corpus;
    if (opts.given("corpus_dir")) {
        corpus = loadCorpusDir(opts.getString("corpus_dir"));
    } else {
        CorpusSpec spec;
        spec.count = opts.getUInt("count");
        spec.maxRows = Index(opts.getUInt("max_rows"));
        spec.seed = opts.getUInt("seed");
        corpus = buildCorpus(spec);
    }

    SweepExecutor exec = bench::makeExecutor(opts);
    std::uint64_t vec_seed = opts.getUInt("vec_seed");
    TraceOptions topts = bench::traceOptions(opts);
    sample::SampleOptions sopts = bench::sampleOptions(opts);

    auto cores = unsigned(opts.getUInt("cores"));
    auto part =
        kernels::parsePartition(opts.getString("partition"));
    if (cores > 1 && sopts.mode != sample::SimMode::Detailed)
        via_fatal("cores>1 supports mode=detailed only");
    if (cores > 1 && params.backend.kind != BackendKind::Via)
        via_fatal("cores>1 runs the VIA parallel kernels; backend=",
                  backendName(params.backend.kind),
                  " is single-core only");
    AccelKernels accel = accelKernels(params.backend.kind);
    SharedLlcParams llcp =
        sharedLlcParamsFrom(opts.config(), params, cores);

    auto results = exec.run(corpus.size(), [&](std::size_t i) {
        const auto &entry = corpus[i];
        const Csr &a = entry.matrix;
        Rng rng(SweepExecutor::pointSeed(vec_seed, i));
        DenseVector x = randomVector(a.cols(), rng);
        PerMatrix pm;

        // Under mode=sampled the estimate replaces the detailed
        // makespan; in detailed mode runWith returns it exactly.
        auto run = [&](auto &&kernel, auto &&fmt) {
            Machine m(params);
            auto est = sample::runWith(m, sopts,
                                       [&] { kernel(m, fmt, x); });
            return est.cycles;
        };

        Index beta = [&] {
            Machine probe(params);
            return kernels::viaCsbBeta(probe);
        }();
        Csb csb = Csb::fromCsr(a, beta);
        auto vl = Index(lanesFor(params.valueType));
        Spc5 spc5 = Spc5::fromCsr(a, vl);
        SellCSigma sell = SellCSigma::fromCsr(a, vl, 4 * vl);

        // cores>1: the csr/csb columns compare the parallel kernel
        // variants on the multi-core machine; each run gets a fresh
        // machine set, and the makespan is the slowest core.
        auto run_par = [&](const std::string &fmt, bool via) {
            MultiMachine mm(params, cores, llcp);
            return double(kernels::spmvParallel(mm, a, x, fmt, part,
                                                via)
                              .cycles);
        };

        pm.nnzPerBlock = csb.meanNnzPerNonEmptyBlock();
        pm.spCsr = cores == 1
                       ? run(kernels::spmvVectorCsr, a) /
                             run(accel.csr, a)
                       : run_par("csr", false) / run_par("csr", true);
        pm.spSpc5 = run(kernels::spmvVectorSpc5, spc5) /
                    run(accel.spc5, spc5);
        pm.spSell = run(kernels::spmvVectorSell, sell) /
                    run(accel.sell, sell);
        // The headline kernel (the backend's CSB) is the traced one.
        double via_csb = [&] {
            Machine m(params);
            enableTracing(m, topts);
            m.tracePhase("spmv_csb");
            auto est = sample::runWith(
                m, sopts, [&] { accel.csb(m, csb, x); });
            finishTracing(m, topts, "_" + entry.name);
            return est.cycles;
        }();
        pm.spCsb = cores == 1
                       ? run(kernels::spmvVectorCsb, csb) / via_csb
                       : run_par("csb", false) / run_par("csb", true);
        // The vs-scalar reference column stays single-core: there is
        // no parallel scalar-CSB kernel to compare against.
        pm.spCsbScalar =
            run(kernels::spmvScalarCsb, csb) / via_csb;

        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "  %-28s nnz/blk %8.1f  csr %5.2fx  spc5 "
                      "%5.2fx  sell %5.2fx  csb %5.2fx (%5.2fx vs "
                      "scalar)",
                      entry.name.c_str(), pm.nnzPerBlock, pm.spCsr,
                      pm.spSpc5, pm.spSell, pm.spCsb,
                      pm.spCsbScalar);
        pm.line = buf;
        return pm;
    });
    for (const PerMatrix &pm : results)
        std::printf("%s\n", pm.line.c_str());

    // Bucket by block density as the paper does.
    std::vector<double> keys;
    for (const auto &r : results)
        keys.push_back(r.nnzPerBlock);
    auto bucket = evenBuckets(keys, 4);

    std::printf("\n== Figure 10: VIA-SpMV speedup over software, by "
                "CSB block density ==\n");
    std::vector<std::vector<std::string>> rows;
    std::vector<double> all_csr, all_spc5, all_sell, all_csb,
        all_csb_s;
    for (std::size_t cat = 0; cat < 4; ++cat) {
        std::vector<double> med_key, csr, spc5, sell, csb, csb_s;
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (bucket[i] != cat)
                continue;
            med_key.push_back(results[i].nnzPerBlock);
            csr.push_back(results[i].spCsr);
            spc5.push_back(results[i].spSpc5);
            sell.push_back(results[i].spSell);
            csb.push_back(results[i].spCsb);
            csb_s.push_back(results[i].spCsbScalar);
        }
        if (csr.empty())
            continue;
        all_csr.insert(all_csr.end(), csr.begin(), csr.end());
        all_spc5.insert(all_spc5.end(), spc5.begin(), spc5.end());
        all_sell.insert(all_sell.end(), sell.begin(), sell.end());
        all_csb.insert(all_csb.end(), csb.begin(), csb.end());
        all_csb_s.insert(all_csb_s.end(), csb_s.begin(),
                         csb_s.end());
        std::sort(med_key.begin(), med_key.end());
        rows.push_back({"cat" + std::to_string(cat + 1) +
                            " (nnz/blk~" +
                            bench::fmt(med_key[med_key.size() / 2],
                                       0) + ")",
                        bench::fmt(bench::geomean(csr)),
                        bench::fmt(bench::geomean(spc5)),
                        bench::fmt(bench::geomean(sell)),
                        bench::fmt(bench::geomean(csb)),
                        bench::fmt(bench::geomean(csb_s))});
    }
    rows.push_back({"average", bench::fmt(bench::geomean(all_csr)),
                    bench::fmt(bench::geomean(all_spc5)),
                    bench::fmt(bench::geomean(all_sell)),
                    bench::fmt(bench::geomean(all_csb)),
                    bench::fmt(bench::geomean(all_csb_s))});
    rows.push_back({"paper avg", "1.25", "1.24", "1.31", "4.22",
                    "-"});
    bench::printTable({"category", "CSR", "SPC5", "Sell-C-s",
                       "CSB/vec", "CSB/scalar"},
                      rows);
    return 0;
}
