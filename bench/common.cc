#include "common.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "simcore/log.hh"

namespace via::bench
{

Csr
makeSibling(const Csr &a, Rng &rng)
{
    Coo coo(a.rows(), a.cols());
    Coo src = a.toCoo();
    for (const Triplet &t : src.elems()) {
        if (rng.chance(0.6))
            coo.add(t.row, t.col, Value(rng.uniform() * 2 - 1));
        if (rng.chance(0.4))
            coo.add(t.row,
                    Index(rng.below(std::uint64_t(a.cols()))),
                    Value(rng.uniform() * 2 - 1));
    }
    coo.canonicalize();
    return Csr::fromCoo(std::move(coo));
}

Config
parseArgs(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    return Config::fromArgs(args);
}

SweepExecutor
makeExecutor(const Config &cfg)
{
    return SweepExecutor(unsigned(cfg.getUInt("threads", 0)));
}

sample::SampleOptions
sampleOptions(const Config &cfg)
{
    sample::SampleOptions opts =
        sample::SampleOptions::fromConfig(cfg);
    if (opts.mode == sample::SimMode::Functional)
        via_fatal("mode=functional models no timing; the bench "
                  "harnesses need detailed or sampled");
    return opts;
}

TraceOptions
traceOptions(const Config &cfg)
{
    TraceOptions opts = TraceOptions::fromConfig(cfg);
    if (opts.summary && cfg.getUInt("threads", 0) != 1) {
        std::fprintf(stderr,
                     "trace_summary=1 requires threads=1 in the "
                     "bench harnesses (the roll-up would interleave "
                     "across workers); ignoring\n");
        opts.summary = false;
    }
    return opts;
}

void
printTable(const std::vector<std::string> &header,
           const std::vector<std::vector<std::string>> &rows)
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%-*s  ", int(widths[c]), row[c].c_str());
        std::printf("\n");
    };

    print_row(header);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows)
        print_row(row);
}

std::string
fmt(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    via_assert(!values.empty(), "geomean of empty set");
    double acc = 0.0;
    for (double v : values) {
        via_assert(v > 0.0, "geomean needs positive values, got ", v);
        acc += std::log(v);
    }
    return std::exp(acc / double(values.size()));
}

} // namespace via::bench
