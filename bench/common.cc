#include "common.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "simcore/log.hh"

namespace via::bench
{

Csr
makeSibling(const Csr &a, Rng &rng)
{
    Coo coo(a.rows(), a.cols());
    Coo src = a.toCoo();
    for (const Triplet &t : src.elems()) {
        if (rng.chance(0.6))
            coo.add(t.row, t.col, Value(rng.uniform() * 2 - 1));
        if (rng.chance(0.4))
            coo.add(t.row,
                    Index(rng.below(std::uint64_t(a.cols()))),
                    Value(rng.uniform() * 2 - 1));
    }
    coo.canonicalize();
    return Csr::fromCoo(std::move(coo));
}

Options
benchOptions(const std::string &binary,
             const std::string &description)
{
    Options opts(binary, description);
    addThreadsOption(opts);
    addSelfProfOption(opts);
    return opts;
}

SweepExecutor
makeExecutor(const Options &opts)
{
    return SweepExecutor(unsigned(opts.getUInt("threads")));
}

sample::SampleOptions
sampleOptions(const Options &opts)
{
    sample::SampleOptions sopts =
        sample::SampleOptions::fromConfig(opts.config());
    if (sopts.mode == sample::SimMode::Functional)
        via_fatal("mode=functional models no timing; the bench "
                  "harnesses need detailed or sampled");
    return sopts;
}

TraceOptions
traceOptions(const Options &opts)
{
    TraceOptions topts = TraceOptions::fromConfig(opts.config());
    if (topts.summary && opts.getUInt("threads") != 1) {
        std::fprintf(stderr,
                     "trace_summary=1 requires threads=1 in the "
                     "bench harnesses (the roll-up would interleave "
                     "across workers); ignoring\n");
        topts.summary = false;
    }
    return topts;
}

void
printTable(const std::vector<std::string> &header,
           const std::vector<std::vector<std::string>> &rows)
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%-*s  ", int(widths[c]), row[c].c_str());
        std::printf("\n");
    };

    print_row(header);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows)
        print_row(row);
}

std::string
fmt(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    via_assert(!values.empty(), "geomean of empty set");
    double acc = 0.0;
    for (double v : values) {
        via_assert(v > 0.0, "geomean needs positive values, got ", v);
        acc += std::log(v);
    }
    return std::exp(acc / double(values.size()));
}

} // namespace via::bench
