/**
 * @file
 * Ablation — CAM bank size and clock gating (DESIGN.md section 4.3).
 *
 * The index table is split into banks of 8 so banks beyond the
 * element count are clock-gated. Performance is unaffected (the
 * search is still single-cycle-per-port); what changes is the
 * comparator energy. This sweep reports comparator activations and
 * CAM energy for the SpMM kernel across bank sizes, including the
 * no-gating extreme (bank = whole table).
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/spmm.hh"
#include "power/energy_model.hh"
#include "simcore/rng.hh"
#include "sparse/csc.hh"
#include "sparse/generators.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Config cfg = bench::parseArgs(argc, argv);
    Rng rng(cfg.getUInt("seed", 3));
    auto n = Index(cfg.getUInt("rows", 160));
    Csr a = genUniform(n, n, 0.05, rng);
    Csc b = Csc::fromCsr(a);

    std::printf("== Ablation: CAM bank size (SpMM, %dx%d) ==\n", n,
                n);
    std::vector<std::vector<std::string>> rows;
    double base_comparisons = 0.0;
    for (std::uint32_t bank : {1u, 4u, 8u, 16u, 64u, 1024u}) {
        MachineParams params;
        params.via.bankEntries = bank;
        Machine m(params);
        kernels::spmmViaInner(m, a, b);
        double comparisons = m.stats().get("cam.comparisons");
        double searches = m.stats().get("cam.searches");
        EnergyParams ep;
        double cam_pj = comparisons * ep.camComparePj;
        if (bank == 1)
            base_comparisons = comparisons;
        rows.push_back(
            {std::to_string(bank), bench::fmt(searches, 0),
             bench::fmt(comparisons, 0),
             bench::fmt(comparisons / base_comparisons, 2) + "x",
             bench::fmt(cam_pj / 1e3, 1) + " nJ"});
    }
    bench::printTable({"bank entries", "searches", "comparisons",
                       "vs bank=1", "CAM energy"},
                      rows);
    std::printf("\n(bank=1 gates per entry — ideal but costly "
                "control; bank=1024 never gates. The paper picks "
                "8.)\n");
    return 0;
}
