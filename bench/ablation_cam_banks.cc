/**
 * @file
 * Ablation — CAM bank size and clock gating (DESIGN.md section 4.3).
 *
 * The index table is split into banks of 8 so banks beyond the
 * element count are clock-gated. Performance is unaffected (the
 * search is still single-cycle-per-port); what changes is the
 * comparator energy. This sweep reports comparator activations and
 * CAM energy for the SpMM kernel across bank sizes, including the
 * no-gating extreme (bank = whole table).
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/spmm.hh"
#include "power/energy_model.hh"
#include "simcore/rng.hh"
#include "sparse/csc.hh"
#include "sparse/generators.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "ablation_cam_banks",
        "Ablation: CAM bank size vs SpMM search cost");
    opts.addUInt("rows", 160, "matrix dimension", 1)
        .addUInt("seed", 3, "matrix generator seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    Rng rng(opts.getUInt("seed"));
    auto n = Index(opts.getUInt("rows"));
    Csr a = genUniform(n, n, 0.05, rng);
    Csc b = Csc::fromCsr(a);

    std::printf("== Ablation: CAM bank size (SpMM, %dx%d) ==\n", n,
                n);
    const std::uint32_t banks[] = {1u, 4u, 8u, 16u, 64u, 1024u};
    SweepExecutor exec = bench::makeExecutor(opts);
    struct Counts
    {
        double searches = 0.0;
        double comparisons = 0.0;
    };
    auto counts =
        exec.run(std::size(banks), [&](std::size_t i) {
            MachineParams params;
            params.via.bankEntries = banks[i];
            Machine m(params);
            kernels::spmmViaInner(m, a, b);
            return Counts{m.stats().get("cam.searches"),
                          m.stats().get("cam.comparisons")};
        });

    std::vector<std::vector<std::string>> rows;
    double base_comparisons = counts[0].comparisons;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        EnergyParams ep;
        double cam_pj = counts[i].comparisons * ep.camComparePj;
        rows.push_back(
            {std::to_string(banks[i]),
             bench::fmt(counts[i].searches, 0),
             bench::fmt(counts[i].comparisons, 0),
             bench::fmt(counts[i].comparisons / base_comparisons,
                        2) +
                 "x",
             bench::fmt(cam_pj / 1e3, 1) + " nJ"});
    }
    bench::printTable({"bank entries", "searches", "comparisons",
                       "vs bank=1", "CAM energy"},
                      rows);
    std::printf("\n(bank=1 gates per entry — ideal but costly "
                "control; bank=1024 never gates. The paper picks "
                "8.)\n");
    return 0;
}
