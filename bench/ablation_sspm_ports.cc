/**
 * @file
 * Ablation — fine-grained SSPM port sweep (DESIGN.md section 4.2).
 *
 * Figure 9 samples {2, 4} ports; this sweep runs 1..8 ports at
 * 16 KB to locate where the FIVU stops being port-bound for each
 * kernel class (vidx.blkmul moves 3 elements per lane, so it
 * saturates later than the 1-element vidx ops).
 *
 * Usage: ablation_sspm_ports [count=N] [seed=S] [max_rows=R]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/histogram.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Config cfg = bench::parseArgs(argc, argv);
    CorpusSpec spec;
    spec.count = cfg.getUInt("count", 6);
    spec.maxRows = Index(cfg.getUInt("max_rows", 2048));
    spec.seed = cfg.getUInt("seed", 1);
    auto corpus = buildCorpus(spec);

    Rng rng(33);
    std::vector<DenseVector> xs;
    for (const auto &entry : corpus)
        xs.push_back(randomVector(entry.matrix.cols(), rng));
    auto keys = [&] {
        std::vector<Index> k(8192);
        for (auto &v : k)
            v = Index(rng.below(2048));
        return k;
    }();

    std::printf("== Ablation: SSPM port sweep (16 KB) ==\n");
    std::vector<std::vector<std::string>> rows;
    std::vector<double> base_spmv, base_hist;
    for (std::uint32_t ports : {1u, 2u, 4u, 8u}) {
        MachineParams params;
        params.via = ViaConfig::make(16, ports);

        std::vector<double> spmv;
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            Machine m(params);
            Csb csb = Csb::fromCsr(corpus[i].matrix,
                                   kernels::viaCsbBeta(m));
            spmv.push_back(double(
                kernels::spmvViaCsb(m, csb, xs[i]).cycles));
        }
        Machine mh(params);
        double hist =
            double(kernels::histVia(mh, keys, 2048).cycles);

        if (ports == 1) {
            base_spmv = spmv;
            base_hist = {hist};
        }
        std::vector<double> sp;
        for (std::size_t i = 0; i < spmv.size(); ++i)
            sp.push_back(base_spmv[i] / spmv[i]);
        rows.push_back({std::to_string(ports),
                        bench::fmt(bench::geomean(sp)) + "x",
                        bench::fmt(base_hist[0] / hist) + "x"});
    }
    bench::printTable({"ports", "SpMV-CSB vs 1p", "hist vs 1p"},
                      rows);
    return 0;
}
