/**
 * @file
 * Ablation — fine-grained SSPM port sweep (DESIGN.md section 4.2).
 *
 * Figure 9 samples {2, 4} ports; this sweep runs 1..8 ports at
 * 16 KB to locate where the FIVU stops being port-bound for each
 * kernel class (vidx.blkmul moves 3 elements per lane, so it
 * saturates later than the 1-element vidx ops).
 *
 * Usage: ablation_sspm_ports [count=N] [seed=S] [max_rows=R]
 *        [threads=T]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/histogram.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "ablation_sspm_ports",
        "Ablation: SSPM port count vs SpMV speedup");
    opts.addUInt("count", 6, "corpus matrices", 1)
        .addUInt("max_rows", 2048, "largest corpus dimension", 1)
        .addUInt("seed", 1, "corpus generator seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    CorpusSpec spec;
    spec.count = opts.getUInt("count");
    spec.maxRows = Index(opts.getUInt("max_rows"));
    spec.seed = opts.getUInt("seed");
    auto corpus = buildCorpus(spec);

    Rng rng(33);
    std::vector<DenseVector> xs;
    for (const auto &entry : corpus)
        xs.push_back(randomVector(entry.matrix.cols(), rng));
    auto keys = [&] {
        std::vector<Index> k(8192);
        for (auto &v : k)
            v = Index(rng.below(2048));
        return k;
    }();

    std::printf("== Ablation: SSPM port sweep (16 KB) ==\n");
    const std::uint32_t port_counts[] = {1u, 2u, 4u, 8u};
    const std::size_t n_ports = std::size(port_counts);
    // Per port count: one point per matrix plus one histogram run.
    const std::size_t per_cfg = corpus.size() + 1;
    SweepExecutor exec = bench::makeExecutor(opts);
    auto cycles =
        exec.run(n_ports * per_cfg, [&](std::size_t p) {
            MachineParams params;
            params.via =
                ViaConfig::make(16, port_counts[p / per_cfg]);
            std::size_t i = p % per_cfg;
            Machine m(params);
            if (i == corpus.size())
                return double(
                    kernels::histVia(m, keys, 2048).cycles);
            Csb csb = Csb::fromCsr(corpus[i].matrix,
                                   kernels::viaCsbBeta(m));
            return double(
                kernels::spmvViaCsb(m, csb, xs[i]).cycles);
        });

    std::vector<std::vector<std::string>> rows;
    for (std::size_t c = 0; c < n_ports; ++c) {
        std::vector<double> sp;
        for (std::size_t i = 0; i < corpus.size(); ++i)
            sp.push_back(cycles[i] / cycles[c * per_cfg + i]);
        double hist_sp = cycles[corpus.size()] /
                         cycles[c * per_cfg + corpus.size()];
        rows.push_back({std::to_string(port_counts[c]),
                        bench::fmt(bench::geomean(sp)) + "x",
                        bench::fmt(hist_sp) + "x"});
    }
    bench::printTable({"ports", "SpMV-CSB vs 1p", "hist vs 1p"},
                      rows);
    return 0;
}
