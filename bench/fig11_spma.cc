/**
 * @file
 * Figure 11 — SpMA speedup of VIA over the scalar sorted-merge
 * baseline, with matrices sorted by nnz and split into four
 * categories. Paper average: 6.14x.
 *
 * C = A + B where B is a structural sibling of A (60% shared
 * positions, 40% fresh ones), matching how matrices of the same
 * discretization are combined in applications.
 *
 * Matrices run as independent points on a SweepExecutor
 * (threads=N); the sibling of each matrix is drawn from a
 * per-point seed, so output is bit-identical at any thread count.
 *
 * Usage: fig11_spma [count=N] [seed=S] [max_rows=R] [threads=T]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "cpu/machine_config.hh"
#include "kernels/spma.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"
#include "sparse/csr.hh"
#include "sparse/structure_stats.hh"

using namespace via;


int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "fig11_spma",
        "Figure 11: SpMA speedup of VIA over the scalar merge");
    addMachineOptions(opts);
    opts.addUInt("count", 16, "corpus matrices", 1)
        .addUInt("max_rows", 4096, "largest corpus dimension", 1)
        .addUInt("seed", 1, "corpus generator seed")
        .addUInt("sibling_seed", 77, "sibling-matrix seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    CorpusSpec spec;
    spec.count = opts.getUInt("count");
    spec.maxRows = Index(opts.getUInt("max_rows"));
    spec.seed = opts.getUInt("seed");
    auto corpus = buildCorpus(spec);

    MachineParams params = machineParamsFrom(opts.config());
    SweepExecutor exec = bench::makeExecutor(opts);
    std::uint64_t sib_seed = opts.getUInt("sibling_seed");

    struct PerMatrix
    {
        double nnz = 0.0;
        double speedup = 0.0;
    };
    auto results = exec.run(corpus.size(), [&](std::size_t i) {
        const Csr &a = corpus[i].matrix;
        Rng rng(SweepExecutor::pointSeed(sib_seed, i));
        Csr b = bench::makeSibling(a, rng);

        Machine m1(params), m2(params);
        auto scalar = kernels::spmaScalarCsr(m1, a, b);
        auto viak = kernels::spmaViaCsr(m2, a, b);
        return PerMatrix{double(a.nnz() + b.nnz()),
                         double(scalar.cycles) /
                             double(viak.cycles)};
    });

    std::vector<double> nnzs, speedups;
    for (std::size_t i = 0; i < results.size(); ++i) {
        nnzs.push_back(results[i].nnz);
        speedups.push_back(results[i].speedup);
        std::printf("  %-28s nnz %8.0f  speedup %5.2fx\n",
                    corpus[i].name.c_str(), results[i].nnz,
                    results[i].speedup);
    }

    auto bucket = evenBuckets(nnzs, 4);
    std::printf("\n== Figure 11: VIA-SpMA speedup over scalar merge,"
                " by nnz ==\n");
    std::vector<std::vector<std::string>> rows;
    for (std::size_t cat = 0; cat < 4; ++cat) {
        std::vector<double> key, sp;
        for (std::size_t i = 0; i < speedups.size(); ++i) {
            if (bucket[i] == cat) {
                key.push_back(nnzs[i]);
                sp.push_back(speedups[i]);
            }
        }
        if (sp.empty())
            continue;
        std::sort(key.begin(), key.end());
        rows.push_back({"cat" + std::to_string(cat + 1) + " (nnz~" +
                            bench::fmt(key[key.size() / 2], 0) + ")",
                        bench::fmt(bench::geomean(sp))});
    }
    rows.push_back({"average", bench::fmt(bench::geomean(speedups))});
    rows.push_back({"paper avg", "6.14"});
    bench::printTable({"category", "speedup"}, rows);
    return 0;
}
