/**
 * @file
 * Table II — area and leakage power of the SSPM configurations
 * (22 nm, 2 GHz synthesis; reproduced by the calibrated analytic
 * model in power/area_model).
 */

#include <cstdio>

#include "common.hh"
#include "power/area_model.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Options opts("table2_area",
                 "Table II: SSPM area and leakage (22 nm)");
    opts.parse(argc, argv);

    std::printf("== Table II: SSPM area and leakage (22 nm) ==\n\n");

    struct Row
    {
        std::uint64_t kb;
        std::uint32_t ports;
    };
    const Row rows_in[] = {{16, 4}, {16, 2}, {8, 4}, {8, 2},
                           {4, 4},  {4, 2},  {32, 2}, {64, 2}};

    std::vector<std::vector<std::string>> rows;
    for (const Row &r : rows_in) {
        AreaEstimate e = AreaModel::estimate(r.kb, r.ports);
        auto anchor = AreaModel::paperAnchor(r.kb, r.ports);
        rows.push_back(
            {std::to_string(r.kb) + "_" + std::to_string(r.ports) +
                 "p",
             bench::fmt(e.areaMm2, 3),
             anchor ? bench::fmt(anchor->areaMm2, 3) : "-",
             bench::fmt(e.leakageMw, 2),
             anchor ? bench::fmt(anchor->leakageMw, 2) : "-",
             bench::fmt(100.0 * e.areaMm2 /
                            AreaModel::haswellCoreMm2,
                        1) + "%"});
    }
    bench::printTable({"config", "area mm2", "paper", "leak mW",
                       "paper", "vs core"},
                      rows);

    std::printf("\n(The >16 KB rows extrapolate the fitted power "
                "law beyond the paper's synthesis points.)\n");
    return 0;
}
