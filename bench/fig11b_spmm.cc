/**
 * @file
 * Section VII-C — SpMM speedup of VIA over the scalar inner-product
 * baseline (Algorithm 3). Paper average: 6.00x.
 *
 * C = A * A^T: both operands share structure, which is the common
 * use in graph analytics (triangle counting, similarity).
 * The quadratic pair enumeration of the inner-product formulation
 * makes large matrices expensive to simulate (as the paper also
 * found, limiting its corpus to 20k rows); the default sizes here
 * are small and can be raised with max_rows=.
 *
 * Matrices run as independent points on a SweepExecutor
 * (threads=N); output is bit-identical at any thread count.
 *
 * Usage: fig11b_spmm [count=N] [seed=S] [max_rows=R] [threads=T]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "cpu/machine_config.hh"
#include "kernels/spmm.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"
#include "sparse/csc.hh"
#include "sparse/structure_stats.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "fig11b_spmm",
        "Figure 11.b: SpMM speedup of VIA over scalar CSR x CSC");
    addMachineOptions(opts);
    opts.addUInt("count", 8, "corpus matrices", 1)
        .addUInt("max_rows", 320, "largest corpus dimension", 1)
        .addUInt("seed", 1, "corpus generator seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    CorpusSpec spec;
    spec.count = opts.getUInt("count");
    spec.minRows = 96;
    spec.maxRows = Index(opts.getUInt("max_rows"));
    spec.seed = opts.getUInt("seed");
    auto corpus = buildCorpus(spec);

    MachineParams params = machineParamsFrom(opts.config());
    SweepExecutor exec = bench::makeExecutor(opts);

    // Decide fits-the-CAM up front so skips print in corpus order
    // and only fitting matrices become sweep points.
    std::vector<std::size_t> fits;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        if (corpus[i].matrix.maxRowNnz() >
            Index(params.via.camEntries()))
            std::printf("  %-28s skipped (row exceeds CAM)\n",
                        corpus[i].name.c_str());
        else
            fits.push_back(i);
    }

    auto speedup_of = exec.run(fits.size(), [&](std::size_t p) {
        const Csr &a = corpus[fits[p]].matrix;
        // B = A^T in CSC shares A's arrays structurally.
        Csc b = [&] {
            Coo coo = a.toCoo();
            Coo t(a.cols(), a.rows());
            for (const Triplet &e : coo.elems())
                t.add(e.col, e.row, e.value);
            return Csc::fromCoo(std::move(t));
        }();

        Machine m1(params), m2(params);
        auto scalar = kernels::spmmScalarInner(m1, a, b);
        auto viak = kernels::spmmViaInner(m2, a, b);
        return double(scalar.cycles) / double(viak.cycles);
    });

    std::vector<double> nnzs, speedups;
    for (std::size_t p = 0; p < fits.size(); ++p) {
        const auto &entry = corpus[fits[p]];
        nnzs.push_back(double(entry.matrix.nnz()));
        speedups.push_back(speedup_of[p]);
        std::printf("  %-28s nnz %7.0f  speedup %5.2fx\n",
                    entry.name.c_str(), nnzs.back(),
                    speedup_of[p]);
    }

    if (speedups.empty()) {
        std::printf("no matrices fit the CAM; lower max_rows\n");
        return 1;
    }

    auto bucket = evenBuckets(nnzs, 4);
    std::printf("\n== SpMM: VIA speedup over scalar inner product, "
                "by nnz ==\n");
    std::vector<std::vector<std::string>> rows;
    for (std::size_t cat = 0; cat < 4; ++cat) {
        std::vector<double> key, sp;
        for (std::size_t i = 0; i < speedups.size(); ++i) {
            if (bucket[i] == cat) {
                key.push_back(nnzs[i]);
                sp.push_back(speedups[i]);
            }
        }
        if (sp.empty())
            continue;
        std::sort(key.begin(), key.end());
        rows.push_back({"cat" + std::to_string(cat + 1) + " (nnz~" +
                            bench::fmt(key[key.size() / 2], 0) + ")",
                        bench::fmt(bench::geomean(sp))});
    }
    rows.push_back({"average", bench::fmt(bench::geomean(speedups))});
    rows.push_back({"paper avg", "6.00"});
    bench::printTable({"category", "speedup"}, rows);
    return 0;
}
