/**
 * @file
 * Ablation — VIA execution eligibility (DESIGN.md section 4.1).
 *
 * The paper executes VIA instructions at commit time to avoid
 * speculative SSPM pollution. In a perfectly-predicted trace model
 * the faithful equivalent is "all older branches resolved"
 * (branch-safe, the default); this ablation also runs the strictly
 * conservative literal reading (every older instruction committed)
 * to show what that serialization would cost.
 *
 * Usage: ablation_commit_mode [count=N] [seed=S] [max_rows=R]
 *        [threads=T]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/spma.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "ablation_commit_mode",
        "Ablation: VIA commit mode (at-commit vs at-issue)");
    opts.addUInt("count", 8, "corpus matrices", 1)
        .addUInt("max_rows", 2048, "largest corpus dimension", 1)
        .addUInt("seed", 1, "corpus generator seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    CorpusSpec spec;
    spec.count = opts.getUInt("count");
    spec.maxRows = Index(opts.getUInt("max_rows"));
    spec.seed = opts.getUInt("seed");
    auto corpus = buildCorpus(spec);

    // Inputs first (serially, seed 66 as before), then every matrix
    // is an independent point on the executor.
    Rng rng(66);
    std::vector<DenseVector> xs;
    for (const auto &entry : corpus)
        xs.push_back(randomVector(entry.matrix.cols(), rng));

    SweepExecutor exec = bench::makeExecutor(opts);
    struct Cost
    {
        double spmv = 0.0;
        double spma = 0.0;
    };
    auto costs = exec.run(corpus.size(), [&](std::size_t i) {
        const Csr &a = corpus[i].matrix;
        const DenseVector &x = xs[i];

        MachineParams fast, strict;
        strict.core.viaAtCommit = true;

        Machine mf(fast), ms(strict);
        Csb csb = Csb::fromCsr(a, kernels::viaCsbBeta(mf));
        double f = double(kernels::spmvViaCsb(mf, csb, x).cycles);
        double s = double(kernels::spmvViaCsb(ms, csb, x).cycles);

        Machine mf2(fast), ms2(strict);
        double f2 = double(kernels::spmaViaCsr(mf2, a, a).cycles);
        double s2 = double(kernels::spmaViaCsr(ms2, a, a).cycles);
        return Cost{s / f, s2 / f2};
    });

    std::vector<double> spmv_cost, spma_cost;
    for (const Cost &c : costs) {
        spmv_cost.push_back(c.spmv);
        spma_cost.push_back(c.spma);
    }

    std::printf("== Ablation: commit-time vs branch-safe VIA "
                "execution ==\n");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"SpMV (CSB)",
                    bench::fmt(bench::geomean(spmv_cost)) + "x"});
    rows.push_back({"SpMA (CSR)",
                    bench::fmt(bench::geomean(spma_cost)) + "x"});
    bench::printTable({"kernel", "slowdown when literal commit-time"},
                      rows);
    return 0;
}
