/**
 * @file
 * Section VII-A energy/bandwidth claims for CSB SpMV:
 *   - total energy (leakage + dynamic) reduced 3.8x,
 *   - achieved memory bandwidth increased 2.5x.
 *
 * Compares the software CSB kernel against VIA-CSB on the corpus
 * and reports energy breakdown ratios and DRAM bytes/cycle.
 *
 * Usage: energy_bw [count=N] [seed=S] [max_rows=R]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "cpu/machine_config.hh"
#include "kernels/runner.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

int
main(int argc, char **argv)
{
    // Serial harness (no sweep executor), so no threads= key.
    Options opts("energy_bw",
                 "Processor energy and DRAM traffic: VIA vs "
                 "vectorized CSB");
    addSelfProfOption(opts);
    addMachineOptions(opts);
    opts.addUInt("count", 10, "corpus matrices", 1)
        .addUInt("max_rows", 4096, "largest corpus dimension", 1)
        .addUInt("seed", 1, "corpus generator seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    // The paper reports these numbers for the *best usage case*
    // (Section VII-A), so the corpus leans on the larger, denser
    // matrices where CSB blocks actually fill.
    CorpusSpec spec;
    spec.count = opts.getUInt("count");
    spec.minRows = 1024;
    spec.maxRows = Index(opts.getUInt("max_rows"));
    spec.minDensity = 0.004;
    spec.seed = opts.getUInt("seed");
    auto corpus = buildCorpus(spec);

    MachineParams params = machineParamsFrom(opts.config());
    Rng rng(55);

    std::vector<double> energy_ratio, bw_ratio, cache_ratio;
    for (const auto &entry : corpus) {
        const Csr &a = entry.matrix;
        DenseVector x = randomVector(a.cols(), rng);

        Machine m1(params);
        Csb csb1 = Csb::fromCsr(a, kernels::viaCsbBeta(m1));
        kernels::spmvVectorCsb(m1, csb1, x);
        auto base = kernels::collectMetrics(m1);

        Machine m2(params);
        kernels::spmvViaCsb(m2, csb1, x);
        auto viam = kernels::collectMetrics(m2);

        // The paper's 3.8x is McPAT scope: processor energy
        // (leakage + dynamic), not DRAM device energy — both
        // machines stream the same matrix bytes, so including DRAM
        // would cap the ratio regardless of the architecture.
        double base_cpu = base.energy.totalPj() -
                          base.energy.dramPj;
        double via_cpu = viam.energy.totalPj() -
                         viam.energy.dramPj;
        energy_ratio.push_back(base_cpu / via_cpu);
        if (viam.dramBytesPerCycle > 0 &&
            base.dramBytesPerCycle > 0)
            bw_ratio.push_back(viam.dramBytesPerCycle /
                               base.dramBytesPerCycle);
        energy_ratio.back() = std::max(energy_ratio.back(), 1e-9);
        cache_ratio.push_back(base.energy.totalPj() /
                              viam.energy.totalPj());
        std::printf("  %-28s energy %5.2fx  bandwidth %5.2fx\n",
                    entry.name.c_str(), energy_ratio.back(),
                    bw_ratio.empty() ? 0.0 : bw_ratio.back());
    }

    std::printf("\n== CSB SpMV: energy and bandwidth "
                "(VIA vs software CSB) ==\n");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"processor energy reduction (McPAT scope)",
                    bench::fmt(bench::geomean(energy_ratio)) + "x",
                    "3.8x"});
    rows.push_back({"achieved DRAM bandwidth gain",
                    bench::fmt(bench::geomean(bw_ratio)) + "x",
                    "2.5x"});
    rows.push_back({"energy reduction incl. DRAM device",
                    bench::fmt(bench::geomean(cache_ratio)) + "x",
                    "-"});
    bench::printTable({"metric", "measured", "paper"}, rows);
    return 0;
}
