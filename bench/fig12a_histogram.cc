/**
 * @file
 * Figure 12.a — histogram speedup. Paper: VIA 5.49x over the Intel
 * scalar kernel and 4.51x over the vector (AVX-512CD) kernel.
 *
 * Inputs: uniform and skewed (hot-bucket) key streams over three
 * sizes; skew is where the store-load-forwarding wall hits the
 * memory-resident baselines hardest.
 *
 * Key streams are drawn serially up front (so they match the
 * historical serial output); the six cases then run as independent
 * points on a SweepExecutor (threads=N), bit-identical at any
 * thread count.
 *
 * Usage: fig12a_histogram [keys=N] [buckets=B] [seed=S] [threads=T]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "cpu/machine_config.hh"
#include "kernels/histogram.hh"
#include "simcore/rng.hh"

using namespace via;

namespace
{

std::vector<Index>
makeKeys(std::size_t count, Index buckets, double hot_frac,
         Rng &rng)
{
    std::vector<Index> keys(count);
    Index hot = std::max<Index>(buckets / 10, 1);
    for (auto &k : keys) {
        if (rng.chance(hot_frac))
            k = Index(rng.below(std::uint64_t(hot)));
        else
            k = Index(rng.below(std::uint64_t(buckets)));
    }
    return keys;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "fig12a_histogram",
        "Figure 12.a: histogram speedup of VIA over scalar and "
        "vector baselines");
    addMachineOptions(opts);
    opts.addUInt("keys", 8192, "keys in the mid-size case", 1)
        .addUInt("buckets", 2048, "histogram buckets", 1)
        .addUInt("seed", 5, "key generator seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    auto base_keys = std::size_t(opts.getUInt("keys"));
    auto buckets = Index(opts.getUInt("buckets"));
    Rng rng(opts.getUInt("seed"));

    MachineParams params = machineParamsFrom(opts.config());

    struct Case
    {
        const char *name;
        std::size_t count;
        double hot;
    };
    const Case cases[] = {
        {"uniform_small", base_keys / 4, 0.0},
        {"uniform_mid", base_keys, 0.0},
        {"uniform_large", base_keys * 4, 0.0},
        {"skewed_small", base_keys / 4, 0.8},
        {"skewed_mid", base_keys, 0.8},
        {"skewed_large", base_keys * 4, 0.8},
    };

    std::printf("== Figure 12.a: histogram speedups ==\n");

    std::vector<std::vector<Index>> inputs;
    for (const Case &c : cases)
        inputs.push_back(makeKeys(c.count, buckets, c.hot, rng));

    SweepExecutor exec = bench::makeExecutor(opts);
    struct Speedups
    {
        double vsScalar = 0.0;
        double vsVector = 0.0;
    };
    auto results =
        exec.run(inputs.size(), [&](std::size_t i) {
            Machine m1(params), m2(params), m3(params);
            auto scalar = kernels::histScalar(m1, inputs[i],
                                              buckets);
            auto vec = kernels::histVector(m2, inputs[i], buckets);
            auto viak = kernels::histVia(m3, inputs[i], buckets);
            return Speedups{
                double(scalar.cycles) / double(viak.cycles),
                double(vec.cycles) / double(viak.cycles)};
        });

    std::vector<std::vector<std::string>> rows;
    std::vector<double> vs_scalar, vs_vector;
    for (std::size_t i = 0; i < results.size(); ++i) {
        vs_scalar.push_back(results[i].vsScalar);
        vs_vector.push_back(results[i].vsVector);
        rows.push_back({cases[i].name,
                        std::to_string(cases[i].count),
                        bench::fmt(results[i].vsScalar),
                        bench::fmt(results[i].vsVector)});
    }
    rows.push_back({"average", "-",
                    bench::fmt(bench::geomean(vs_scalar)),
                    bench::fmt(bench::geomean(vs_vector))});
    rows.push_back({"paper avg", "-", "5.49", "4.51"});
    bench::printTable({"input", "keys", "vs scalar", "vs vector"},
                      rows);
    return 0;
}
