/**
 * @file
 * Ablation — does the headline SpMV win survive a hardware
 * prefetcher? The paper's baseline (like gem5's classic config) has
 * none; a next-N-line L2 prefetcher helps the baseline's streaming
 * and gather misses, so this sweep bounds how much of VIA's
 * advantage is mere latency hiding.
 *
 * Usage: ablation_prefetch [count=N] [seed=S] [max_rows=R]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Config cfg = bench::parseArgs(argc, argv);
    CorpusSpec spec;
    spec.count = cfg.getUInt("count", 6);
    spec.minRows = 1024;
    spec.maxRows = Index(cfg.getUInt("max_rows", 4096));
    spec.minDensity = 0.002;
    spec.seed = cfg.getUInt("seed", 1);
    auto corpus = buildCorpus(spec);

    std::printf("== Ablation: L2 next-N-line prefetcher ==\n");
    std::vector<std::vector<std::string>> rows;
    for (std::uint32_t degree : {0u, 2u, 4u, 8u}) {
        MachineParams params;
        params.mem.prefetch.degree = degree;

        Rng rng(21);
        std::vector<double> sp;
        for (const auto &entry : corpus) {
            const Csr &a = entry.matrix;
            DenseVector x = randomVector(a.cols(), rng);
            Machine m1(params), m2(params);
            Csb csb = Csb::fromCsr(a, kernels::viaCsbBeta(m1));
            double base =
                double(kernels::spmvVectorCsb(m1, csb, x).cycles);
            double viac =
                double(kernels::spmvViaCsb(m2, csb, x).cycles);
            sp.push_back(base / viac);
        }
        rows.push_back({degree == 0 ? "off"
                                    : std::to_string(degree) +
                                          " lines",
                        bench::fmt(bench::geomean(sp)) + "x"});
    }
    bench::printTable({"prefetch", "VIA-CSB speedup"}, rows);
    return 0;
}
