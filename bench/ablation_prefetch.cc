/**
 * @file
 * Ablation — does the headline SpMV win survive a hardware
 * prefetcher? The paper's baseline (like gem5's classic config) has
 * none; a next-N-line L2 prefetcher helps the baseline's streaming
 * and gather misses, so this sweep bounds how much of VIA's
 * advantage is mere latency hiding.
 *
 * Usage: ablation_prefetch [count=N] [seed=S] [max_rows=R]
 *        [threads=T]
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "cpu/machine.hh"
#include "kernels/spmv.hh"
#include "simcore/rng.hh"
#include "sparse/corpus.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Options opts = bench::benchOptions(
        "ablation_prefetch",
        "Ablation: L2 next-N-line prefetcher");
    opts.addUInt("count", 6, "corpus matrices", 1)
        .addUInt("max_rows", 4096, "largest corpus dimension", 1)
        .addUInt("seed", 1, "corpus generator seed");
    opts.parse(argc, argv);
    applySelfProfOption(opts);
    CorpusSpec spec;
    spec.count = opts.getUInt("count");
    spec.minRows = 1024;
    spec.maxRows = Index(opts.getUInt("max_rows"));
    spec.minDensity = 0.002;
    spec.seed = opts.getUInt("seed");
    auto corpus = buildCorpus(spec);

    std::printf("== Ablation: L2 next-N-line prefetcher ==\n");
    // The serial sweep re-seeded Rng(21) per degree; draw once so
    // every degree point sees identical vectors.
    std::vector<DenseVector> xs;
    {
        Rng rng(21);
        for (const auto &entry : corpus)
            xs.push_back(randomVector(entry.matrix.cols(), rng));
    }

    const std::uint32_t degrees[] = {0u, 2u, 4u, 8u};
    const std::size_t n_deg = std::size(degrees);
    SweepExecutor exec = bench::makeExecutor(opts);
    auto speedups =
        exec.run(n_deg * corpus.size(), [&](std::size_t p) {
            MachineParams params;
            params.mem.prefetch.degree = degrees[p / corpus.size()];
            std::size_t i = p % corpus.size();

            const Csr &a = corpus[i].matrix;
            Machine m1(params), m2(params);
            Csb csb = Csb::fromCsr(a, kernels::viaCsbBeta(m1));
            double base =
                double(kernels::spmvVectorCsb(m1, csb,
                                              xs[i]).cycles);
            double viac =
                double(kernels::spmvViaCsb(m2, csb,
                                           xs[i]).cycles);
            return base / viac;
        });

    std::vector<std::vector<std::string>> rows;
    for (std::size_t d = 0; d < n_deg; ++d) {
        std::vector<double> sp(
            speedups.begin() + d * corpus.size(),
            speedups.begin() + (d + 1) * corpus.size());
        rows.push_back({degrees[d] == 0
                            ? "off"
                            : std::to_string(degrees[d]) +
                                  " lines",
                        bench::fmt(bench::geomean(sp)) + "x"});
    }
    bench::printTable({"prefetch", "VIA-CSB speedup"}, rows);
    return 0;
}
