/**
 * @file
 * Host-side microbenchmarks (google-benchmark) for the sparse
 * format library itself: construction/conversion throughput and the
 * golden kernels. These measure the library running natively — not
 * the simulated machine — and guard against regressions in the
 * format code that all experiments depend on.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "kernels/reference.hh"
#include "simcore/options.hh"
#include "simcore/rng.hh"
#include "sparse/convert.hh"
#include "sparse/corpus.hh"
#include "sparse/generators.hh"
#include "sparse/sell_c_sigma.hh"
#include "sparse/spc5.hh"

using namespace via;

namespace
{

Csr
benchMatrix(std::int64_t n)
{
    Rng rng(7);
    return genUniform(Index(n), Index(n), 0.01, rng);
}

void
BM_CsrFromCoo(benchmark::State &state)
{
    Csr m = benchMatrix(state.range(0));
    Coo coo = m.toCoo();
    for (auto _ : state) {
        Csr rebuilt = Csr::fromCoo(coo);
        benchmark::DoNotOptimize(rebuilt.nnz());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(m.nnz()));
}
BENCHMARK(BM_CsrFromCoo)->Arg(512)->Arg(2048);

void
BM_CsbFromCsr(benchmark::State &state)
{
    Csr m = benchMatrix(state.range(0));
    for (auto _ : state) {
        Csb csb = Csb::fromCsr(m, 512);
        benchmark::DoNotOptimize(csb.nnz());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(m.nnz()));
}
BENCHMARK(BM_CsbFromCsr)->Arg(512)->Arg(2048);

void
BM_SellFromCsr(benchmark::State &state)
{
    Csr m = benchMatrix(state.range(0));
    for (auto _ : state) {
        SellCSigma s = SellCSigma::fromCsr(m, 8, 32);
        benchmark::DoNotOptimize(s.nnz());
    }
}
BENCHMARK(BM_SellFromCsr)->Arg(512)->Arg(2048);

void
BM_Spc5FromCsr(benchmark::State &state)
{
    Csr m = benchMatrix(state.range(0));
    for (auto _ : state) {
        Spc5 s = Spc5::fromCsr(m, 8);
        benchmark::DoNotOptimize(s.nnz());
    }
}
BENCHMARK(BM_Spc5FromCsr)->Arg(512)->Arg(2048);

void
BM_GoldenSpmv(benchmark::State &state)
{
    Csr m = benchMatrix(state.range(0));
    Rng rng(8);
    DenseVector x = randomVector(m.cols(), rng);
    for (auto _ : state) {
        DenseVector y = m.multiply(x);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(m.nnz()));
}
BENCHMARK(BM_GoldenSpmv)->Arg(512)->Arg(2048);

void
BM_GoldenSpmm(benchmark::State &state)
{
    Csr m = benchMatrix(state.range(0));
    for (auto _ : state) {
        Csr c = mulCsr(m, m);
        benchmark::DoNotOptimize(c.nnz());
    }
}
BENCHMARK(BM_GoldenSpmm)->Arg(256);

void
BM_CorpusBuild(benchmark::State &state)
{
    for (auto _ : state) {
        CorpusSpec spec;
        spec.count = std::size_t(state.range(0));
        spec.maxRows = 512;
        auto corpus = buildCorpus(spec);
        benchmark::DoNotOptimize(corpus.size());
    }
}
BENCHMARK(BM_CorpusBuild)->Arg(4);

} // namespace

// BENCHMARK_MAIN() expanded by hand so key=value arguments go
// through the shared Options contract (help=1 -> table + exit 0,
// unknown key -> exit 2) while --benchmark_* flags still reach
// google-benchmark untouched.
int
main(int argc, char **argv)
{
    Options opts("micro_formats",
                 "Host-side sparse-format microbenchmarks "
                 "(google-benchmark; --benchmark_* flags pass "
                 "through)");
    std::vector<std::string> kv;
    std::vector<char *> gb{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]).starts_with("--benchmark"))
            gb.push_back(argv[i]);
        else
            kv.emplace_back(argv[i]);
    }
    opts.parse(kv);

    int gb_argc = int(gb.size());
    benchmark::Initialize(&gb_argc, gb.data());
    if (benchmark::ReportUnrecognizedArguments(gb_argc, gb.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
