/**
 * @file
 * Shared support for the benchmark harnesses: option parsing and
 * paper-style table printing.
 */

#ifndef VIA_BENCH_COMMON_HH
#define VIA_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "sample/sampling.hh"
#include "simcore/config.hh"
#include "simcore/options.hh"
#include "simcore/parallel.hh"
#include "simcore/rng.hh"
#include "sparse/csr.hh"
#include "trace/trace_io.hh"

namespace via::bench
{

/**
 * A structural sibling of @p a for SpMA workloads: ~60% shared
 * positions, ~40% fresh ones — the mix that makes merge branches
 * unpredictable.
 */
Csr makeSibling(const Csr &a, Rng &rng);

/**
 * The shared options registry of a bench harness: threads= and
 * selfprof= come pre-registered. The harness adds its own keys
 * (and the machine/sample/trace groups it actually wires up), then
 * calls parse().
 */
Options benchOptions(const std::string &binary,
                     const std::string &description);

/**
 * The sweep executor for a harness: honors the shared threads=N
 * key (default 0 = hardware concurrency). Output is bit-identical
 * at every thread count; threads=1 recovers serial execution.
 */
SweepExecutor makeExecutor(const Options &opts);

/**
 * The shared tracing knobs (trace=, trace_format=, trace_limit=,
 * trace_summary=), parsed once per harness. Harness points run on
 * worker threads, so each traced Machine writes its own file (the
 * harness passes a per-point suffix to finishTracing); the stdout
 * roll-up is only honored with threads=1, where output stays
 * deterministic.
 */
TraceOptions traceOptions(const Options &opts);

/**
 * The shared sampled-simulation knobs (mode=, sample_interval=,
 * sample_warmup=, sample_measure=), parsed once per harness. The
 * figures compare cycle counts, so mode=functional (which models no
 * timing) is rejected here; mode=sampled lets a harness take inputs
 * far beyond what detailed simulation sustains, at the documented
 * error bound (docs/sampling.md).
 */
sample::SampleOptions sampleOptions(const Options &opts);

/** Print an aligned table: header row + data rows. */
void printTable(const std::vector<std::string> &header,
                const std::vector<std::vector<std::string>> &rows);

/** Format a double with fixed precision. */
std::string fmt(double v, int precision = 2);

/** Geometric mean of a nonempty vector of positive values. */
double geomean(const std::vector<double> &values);

} // namespace via::bench

#endif // VIA_BENCH_COMMON_HH
