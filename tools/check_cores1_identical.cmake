# cores=1 must take the unchanged single-core code path: the
# benchmark fingerprints (BENCH_simspeed.json) are pinned to it, so
# a run with cores=1 given explicitly is required to be
# byte-identical — report, stats JSON and all — to the same run
# without the key. A drift here means the multi-core plumbing leaked
# into the single-core machine.
#
# Inputs: -DVIA_SIM=<path> -DFIG10=<path>

function(run_pair label out_var)
    execute_process(COMMAND ${ARGN}
                    OUTPUT_VARIABLE out RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${label} exited ${rc}")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# via_sim: kernel report plus the full stats JSON dump.
run_pair("via_sim (plain)" base
         ${VIA_SIM} spmv rows=128 density=0.03 json=1)
run_pair("via_sim (cores=1)" one
         ${VIA_SIM} spmv rows=128 density=0.03 json=1 cores=1)
if(NOT base STREQUAL one)
    message(FATAL_ERROR
            "via_sim cores=1 output differs from the plain "
            "single-core run")
endif()

# fig10_spmv: the speedup table (threads=1 for a serial run; the
# output is order-stable anyway, but keep the comparison strict).
run_pair("fig10_spmv (plain)" base
         ${FIG10} count=2 max_rows=256 threads=1)
run_pair("fig10_spmv (cores=1)" one
         ${FIG10} count=2 max_rows=256 threads=1 cores=1)
if(NOT base STREQUAL one)
    message(FATAL_ERROR
            "fig10_spmv cores=1 output differs from the plain "
            "single-core run")
endif()

message(STATUS "cores=1 output bit-identical for via_sim and "
               "fig10_spmv")
