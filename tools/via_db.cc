/**
 * @file
 * via_db — interactive cycle-level debugger for the VIA simulator.
 *
 * Wraps one kernel run (the same kernels and inputs via_sim drives)
 * in a debug::DebugSession: set breakpoints on opcodes, watch
 * addresses / cache lines / CAM and SSPM pressure, step or run to a
 * cycle or instruction count, inspect ROB/LSQ/SSPM/CAM/cache state,
 * and save/load in-session checkpoints (rewind by deterministic
 * replay, byte-verified). See docs/debugger.md.
 *
 * Usage:
 *   via_db [key=value ...]            interactive (stdin commands)
 *   via_db script=session.dbg ...     scripted, deterministic output
 *
 * Keys:
 *   kernel=K        spmv|spma|spmm|histogram|stencil (default spmv)
 *   format=FMT      spmv format: csr|spc5|sell|csb   (default csb)
 *   mtx=/matrix=    Matrix Market input (else synthetic)
 *   rows=N density=D family=F seed=S  synthetic input (as via_sim)
 *   keys=N buckets=B px=N             histogram / stencil inputs
 *   script=PATH     read commands from PATH instead of stdin
 *   echo=0          suppress command echo in script mode
 *   cores=N         debug the parallel kernels on a MultiMachine
 *                   (backend=via only; checkpoints unsupported)
 *
 * The machine group (backend=, sspm_kb=, rob=, ...) matches every
 * other harness. The observer-based stop engine cannot perturb the
 * schedule, so a stopped-and-continued session prints a `final:`
 * line bit-identical to an uninterrupted run — CTest pins this.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "cpu/machine.hh"
#include "cpu/machine_config.hh"
#include "cpu/multi_machine.hh"
#include "debug/session.hh"
#include "kernels/dispatch.hh"
#include "kernels/parallel.hh"
#include "kernels/reference.hh"
#include "simcore/config.hh"
#include "simcore/log.hh"
#include "simcore/options.hh"
#include "simcore/rng.hh"
#include "sparse/convert.hh"
#include "sparse/csc.hh"
#include "sparse/generators.hh"
#include "sparse/mm_io.hh"

using namespace via;

namespace
{

Options
dbOptions()
{
    Options opts("via_db",
                 "Interactive / scripted cycle-level debugger: run "
                 "one kernel under breakpoints, watchpoints, state "
                 "inspection and checkpoint rewind");
    opts.addString("kernel", "spmv",
                   "kernel to debug: "
                   "spmv|spma|spmm|histogram|stencil")
        .addString("script", "",
                   "command script (default: interactive stdin)")
        .addBool("echo", true, "echo script commands as they run")
        .addString("mtx", "",
                   "Matrix Market input (default: synthetic)")
        .addString("matrix", "", "alias for mtx=")
        .addUInt("rows", 512, "synthetic matrix dimension", 1)
        .addDouble("density", 0.01, "synthetic matrix density",
                   0.0, 1.0)
        .addString("family", "uniform",
                   "synthetic family: "
                   "banded|uniform|rmat|blocked|diag")
        .addUInt("seed", 1, "input generator seed")
        .addString("format", "csb",
                   "spmv sparse format: csr|spc5|sell|csb")
        .addUInt("keys", 16384, "histogram input size", 1)
        .addUInt("buckets", 1024, "histogram buckets", 1)
        .addUInt("px", 64, "stencil image side", 1);
    addMachineOptions(opts);
    addMultiCoreOptions(opts);
    return opts;
}

/** Synthetic-or-file matrix, mirroring via_sim's families. */
Csr
loadMatrix(const Config &cfg, Rng &rng)
{
    if (cfg.has("matrix"))
        return readMatrixMarket(cfg.getString("matrix", ""));
    if (cfg.has("mtx"))
        return readMatrixMarket(cfg.getString("mtx", ""));
    auto n = Index(cfg.getUInt("rows", 512));
    double density = cfg.getDouble("density", 0.01);
    std::string family = cfg.getString("family", "uniform");
    if (family == "banded")
        return genBanded(n, std::max<Index>(1, n / 32),
                         std::min(1.0, density * n / 16.0), rng);
    if (family == "rmat") {
        Index n2 = 1;
        while (2 * n2 <= n)
            n2 *= 2;
        return genRmat(n2,
                       std::size_t(density * double(n2) *
                                   double(n2)),
                       rng);
    }
    if (family == "blocked")
        return genBlocked(n, 16, std::sqrt(density),
                          std::min(0.8, 8 * std::sqrt(density)),
                          rng);
    if (family == "diag")
        return genDiagHeavy(n, std::max(1.0, density * n), rng);
    if (family != "uniform")
        via_fatal("unknown family '", family, "'");
    return genUniform(n, n, density, rng);
}

/**
 * Build the kernel closure: inputs and host goldens are computed
 * once here, so every rewind replay re-runs the identical work.
 */
debug::KernelFn
makeKernel(const std::string &kernel, const Config &cfg,
           unsigned cores, Rng &rng)
{
    const auto part = kernels::parsePartition(
        cfg.getString("partition", "static"));

    if (kernel == "spmv") {
        auto a = std::make_shared<Csr>(loadMatrix(cfg, rng));
        auto x = std::make_shared<DenseVector>(
            randomVector(a->cols(), rng));
        auto golden =
            std::make_shared<DenseVector>(a->multiply(*x));
        std::string fmt = cfg.getString("format", "csb");
        std::printf("target: spmv (%s), %dx%d, %zu nnz\n",
                    fmt.c_str(), a->rows(), a->cols(), a->nnz());
        return [a, x, golden, fmt, part,
                cores](debug::DebugTarget &t) {
            auto res = cores > 1
                           ? kernels::spmvParallel(*t.multi, *a, *x,
                                                   fmt, part, true)
                           : kernels::spmvAccel(*t.machine, *a, *x,
                                                fmt);
            return allClose(res.y, *golden);
        };
    }
    if (kernel == "spma") {
        auto a = std::make_shared<Csr>(loadMatrix(cfg, rng));
        auto b = std::make_shared<Csr>(loadMatrix(cfg, rng));
        auto golden = std::make_shared<Csr>(addCsr(*a, *b));
        std::printf("target: spma, %dx%d, %zu + %zu nnz\n",
                    a->rows(), a->cols(), a->nnz(), b->nnz());
        return [a, b, golden, part, cores](debug::DebugTarget &t) {
            auto res = cores > 1
                           ? kernels::spmaParallel(*t.multi, *a, *b,
                                                   part, true)
                           : kernels::spmaAccel(*t.machine, *a, *b);
            return closeElements(res.c, *golden, 1e-3);
        };
    }
    if (kernel == "spmm") {
        Config small = cfg;
        if (!cfg.has("rows") && !cfg.has("mtx") &&
            !cfg.has("matrix"))
            small.set("rows", "160");
        auto a = std::make_shared<Csr>(loadMatrix(small, rng));
        auto b_csr = std::make_shared<Csr>(loadMatrix(small, rng));
        auto b = std::make_shared<Csc>(Csc::fromCsr(*b_csr));
        auto golden = std::make_shared<Csr>(mulCsr(*a, *b_csr));
        std::printf("target: spmm, %dx%d (%zu nnz) * %dx%d "
                    "(%zu nnz)\n",
                    a->rows(), a->cols(), a->nnz(), b->rows(),
                    b->cols(), b->nnz());
        return [a, b, golden, part, cores](debug::DebugTarget &t) {
            auto res = cores > 1
                           ? kernels::spmmParallel(*t.multi, *a, *b,
                                                   part, true)
                           : kernels::spmmAccel(*t.machine, *a, *b);
            return closeElements(res.c, *golden, 1e-2);
        };
    }
    if (kernel == "histogram") {
        auto count = std::size_t(cfg.getUInt("keys", 16384));
        auto buckets = Index(cfg.getUInt("buckets", 1024));
        auto keys = std::make_shared<std::vector<Index>>(count);
        for (auto &k : *keys)
            k = Index(rng.below(std::uint64_t(buckets)));
        auto golden = std::make_shared<std::vector<Value>>(
            kernels::refHistogram(*keys, buckets));
        std::printf("target: histogram, %zu keys, %d buckets\n",
                    count, buckets);
        return [keys, buckets, golden, part,
                cores](debug::DebugTarget &t) {
            auto res =
                cores > 1
                    ? kernels::histParallel(*t.multi, *keys,
                                            buckets, part, true)
                    : kernels::histAccel(*t.machine, *keys,
                                         buckets);
            return res.hist == *golden;
        };
    }
    if (kernel == "stencil") {
        auto side = Index(cfg.getUInt("px", 64));
        auto img = std::make_shared<DenseMatrix>(side, side);
        for (auto &p : img->data())
            p = Value(rng.uniform() * 255.0);
        auto golden = std::make_shared<DenseMatrix>(
            kernels::refConvolve4x4(*img));
        std::printf("target: stencil, 4x4 Gaussian on %dx%d px\n",
                    side, side);
        return [img, golden, part, cores](debug::DebugTarget &t) {
            auto res =
                cores > 1
                    ? kernels::stencilParallel(*t.multi, *img, part,
                                               true)
                    : kernels::stencilAccel(*t.machine, *img);
            return allClose(res.out.data(), golden->data());
        };
    }
    via_fatal("unknown kernel '", kernel, "'");
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = dbOptions();
    opts.parse(argc, argv);
    const Config &cfg = opts.config();

    const std::string kernel = opts.getString("kernel");
    const auto cores = unsigned(cfg.getUInt("cores", 1));
    MachineParams params = machineParamsFrom(cfg);
    if (cores > 1 && params.backend.kind != BackendKind::Via)
        via_fatal("cores>1 runs the VIA parallel kernels; "
                  "backend=", backendName(params.backend.kind),
                  " is single-core only");

    Rng rng(cfg.getUInt("seed", 1));
    debug::KernelFn kfn = makeKernel(kernel, cfg, cores, rng);

    debug::TargetFactory factory;
    if (cores > 1) {
        SharedLlcParams llcp =
            sharedLlcParamsFrom(cfg, params, cores);
        factory = [params, cores, llcp] {
            debug::DebugTarget t;
            t.multi = std::make_unique<MultiMachine>(params, cores,
                                                     llcp);
            return t;
        };
    } else {
        factory = [params] {
            debug::DebugTarget t;
            t.machine = std::make_unique<Machine>(params);
            return t;
        };
    }

    const std::string script = opts.getString("script");
    std::ifstream script_in;
    debug::SessionConfig scfg;
    if (!script.empty()) {
        script_in.open(script);
        if (!script_in)
            via_fatal("cannot open script '", script, "'");
        scfg.commands = &script_in;
        scfg.echo = cfg.getBool("echo", true);
        scfg.prompt = false;
    } else {
        scfg.commands = &std::cin;
        scfg.echo = false;
        scfg.prompt = true;
    }
    scfg.out = &std::cout;

    debug::DebugSession session(std::move(factory), std::move(kfn),
                                scfg);
    return session.run();
}
