/**
 * @file
 * bench_report — the sampled-simulation regression gate.
 *
 * Runs the fig10 SpMV reference configuration (default machine, VIA
 * CSB kernel, one large uniform matrix) under all three execution
 * modes, wall-clocks each, and compares sampled-mode extrapolated
 * cycles against the detailed makespan. Also measures the
 * checkpoint layer: image size, capture/restore cost, and a
 * SweepExecutor fan-out where every point restores from one shared
 * warm image instead of re-running the kernel, verifying each
 * restored machine reports the identical cycle count.
 *
 * The results are written as JSON (BENCH_sampling.json) and the
 * exit code enforces the subsystem's two quantitative promises:
 *
 *   - sampled-mode end-to-end cycle error <= 5% of detailed
 *   - functional-mode wall-clock speedup >= 10x over detailed
 *
 * CI runs this on every push (see .github/workflows/ci.yml), so a
 * regression in either bound fails the build.
 *
 * Usage:
 *   bench_report [key=value ...]
 *
 * Keys:
 *   rows=N             reference matrix rows       (default 16384)
 *   density=D          reference matrix density    (default 0.005)
 *   seed=S             generator seed              (default 1)
 *   format=FMT         SpMV format                 (default csb)
 *   sample_interval=N  instructions per unit       (default 100000)
 *   sample_warmup=N    detailed warmup per unit    (default 500)
 *   sample_measure=N   measured insts per unit     (default 1500)
 *   repeats=R          timing repetitions, best-of (default 5)
 *   sweep_points=N     restore fan-out width       (default 4)
 *   threads=T          restore fan-out workers     (default 0 = hw)
 *   out=PATH           JSON report path   (default BENCH_sampling.json)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "cpu/machine.hh"
#include "cpu/machine_config.hh"
#include "kernels/dispatch.hh"
#include "kernels/reference.hh"
#include "sample/checkpoint.hh"
#include "sample/sampling.hh"
#include "simcore/config.hh"
#include "simcore/log.hh"
#include "simcore/parallel.hh"
#include "simcore/rng.hh"
#include "sparse/generators.hh"

using namespace via;

namespace
{

bool
validateKeys(const Config &cfg)
{
    static const std::set<std::string> valid = {
        "rows",           "density",       "seed",
        "format",         "sample_interval", "sample_warmup",
        "sample_measure", "repeats",       "sweep_points",
        "threads",        "out",
    };
    bool ok = true;
    for (const std::string &key : cfg.keys()) {
        if (valid.count(key))
            continue;
        std::fprintf(stderr, "bench_report: unknown key '%s'\n",
                     key.c_str());
        ok = false;
    }
    if (!ok) {
        std::fprintf(stderr, "valid keys:");
        for (const std::string &key : valid)
            std::fprintf(stderr, " %s", key.c_str());
        std::fprintf(stderr, "\n");
    }
    return ok;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct ModeTiming
{
    double wall = 0.0; //!< best-of-repeats seconds
    sample::SampleEstimate est;
};

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    Config cfg = Config::fromArgs(args);
    if (!validateKeys(cfg))
        return 2;

    auto rows = Index(cfg.getUInt("rows", 16384));
    double density = cfg.getDouble("density", 0.005);
    std::string fmt = cfg.getString("format", "csb");
    auto repeats = std::size_t(cfg.getUInt("repeats", 5));
    auto sweep_points = std::size_t(cfg.getUInt("sweep_points", 4));
    std::string out_path =
        cfg.getString("out", "BENCH_sampling.json");

    sample::SampleOptions sopts;
    sopts.interval = cfg.getUInt("sample_interval", 100000);
    sopts.warmup = cfg.getUInt("sample_warmup", 500);
    sopts.measure = cfg.getUInt("sample_measure", 1500);

    Rng rng(cfg.getUInt("seed", 1));
    Csr a = genUniform(rows, rows, density, rng);
    DenseVector x = randomVector(a.cols(), rng);
    DenseVector golden = a.multiply(x);
    std::printf("bench_report: SpMV %s on %dx%d, %zu nnz "
                "(fig10 reference machine)\n",
                fmt.c_str(), a.rows(), a.cols(), a.nnz());

    MachineParams params{};

    // The timed region is machine construction + kernel execution:
    // exactly the work a mode changes. Input generation, the golden
    // reference and JSON writing are shared and excluded. Repeats
    // interleave the modes round-robin so that host-load drift over
    // the measurement hits every mode equally — the speedup ratios
    // stay honest even when absolute wall clock wobbles.
    auto timeOnce = [&](sample::SimMode mode, std::size_t r,
                        ModeTiming &best) {
        sample::SampleOptions mopts = sopts;
        mopts.mode = mode;
        auto start = std::chrono::steady_clock::now();
        Machine m(params);
        sample::SampleEstimate est = sample::runWith(
            m, mopts, [&] { kernels::spmvVia(m, a, x, fmt); });
        double wall = secondsSince(start);
        if (r == 0 || wall < best.wall) {
            best.wall = wall;
            best.est = est;
        }
    };

    ModeTiming detailed, functional, sampled;
    for (std::size_t r = 0; r < repeats; ++r) {
        timeOnce(sample::SimMode::Detailed, r, detailed);
        timeOnce(sample::SimMode::Functional, r, functional);
        timeOnce(sample::SimMode::Sampled, r, sampled);
    }

    // One verification run: every mode executes the identical
    // architectural stream, so checking the functional result covers
    // all three.
    {
        Machine m(params);
        sample::SampleOptions mopts = sopts;
        mopts.mode = sample::SimMode::Functional;
        kernels::SpmvResult res;
        sample::runWith(m, mopts,
                        [&] { res = kernels::spmvVia(m, a, x, fmt); });
        if (!allClose(res.y, golden)) {
            std::fprintf(stderr,
                         "bench_report: result MISMATCH in "
                         "functional mode\n");
            return 1;
        }
    }

    double rel_error =
        std::abs(sampled.est.cycles - detailed.est.cycles) /
        detailed.est.cycles;
    double func_speedup = detailed.wall / functional.wall;
    double sampled_speedup = detailed.wall / sampled.wall;

    // Checkpoint leg: capture one warm image, then fan restore out
    // over a SweepExecutor — every point gets the full post-run
    // machine state without re-running the kernel, and must report
    // the identical cycle count.
    Machine warm(params);
    kernels::spmvVia(warm, a, x, fmt);
    Tick warm_cycles = warm.cycles();

    auto cap_start = std::chrono::steady_clock::now();
    sample::Checkpoint cp = sample::Checkpoint::capture(warm);
    double capture_s = secondsSince(cap_start);

    SweepExecutor exec(unsigned(cfg.getUInt("threads", 0)));
    auto restore_start = std::chrono::steady_clock::now();
    std::vector<int> identical =
        exec.run(sweep_points, [&](std::size_t) {
            Machine m(params);
            cp.clone().restore(m);
            return m.cycles() == warm_cycles ? 1 : 0;
        });
    double restore_s = secondsSince(restore_start) /
                       double(sweep_points ? sweep_points : 1);
    bool restore_ok = true;
    for (int id : identical)
        restore_ok = restore_ok && id == 1;

    bool error_ok = rel_error <= 0.05;
    bool speedup_ok = func_speedup >= 10.0;

    std::printf("  detailed    %8.3fs  %12.0f cycles\n",
                detailed.wall, detailed.est.cycles);
    std::printf("  functional  %8.3fs  (%5.1fx, %llu insts)\n",
                functional.wall, func_speedup,
                static_cast<unsigned long long>(
                    functional.est.totalInsts));
    std::printf("  sampled     %8.3fs  %12.0f cycles  (%5.1fx, "
                "%.2f%% error, %llu windows)\n",
                sampled.wall, sampled.est.cycles, sampled_speedup,
                rel_error * 100.0,
                static_cast<unsigned long long>(
                    sampled.est.intervals));
    std::printf("  checkpoint  %zu bytes, capture %.3fs, restore "
                "%.3fs/point x %zu points (%s)\n",
                cp.bytes().size(), capture_s, restore_s,
                sweep_points,
                restore_ok ? "bit-identical" : "MISMATCH");

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr)
        via_fatal("cannot write ", out_path);
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"config\": {\"kernel\": \"spmv\", \"format\": "
                 "\"%s\", \"rows\": %d, \"nnz\": %zu, "
                 "\"sample_interval\": %llu, \"sample_warmup\": "
                 "%llu, \"sample_measure\": %llu},\n",
                 fmt.c_str(), a.rows(), a.nnz(),
                 static_cast<unsigned long long>(sopts.interval),
                 static_cast<unsigned long long>(sopts.warmup),
                 static_cast<unsigned long long>(sopts.measure));
    std::fprintf(f,
                 "  \"detailed\": {\"wall_s\": %.4f, \"cycles\": "
                 "%.0f, \"insts\": %llu},\n",
                 detailed.wall, detailed.est.cycles,
                 static_cast<unsigned long long>(
                     detailed.est.totalInsts));
    std::fprintf(f,
                 "  \"functional\": {\"wall_s\": %.4f, \"speedup\": "
                 "%.2f},\n",
                 functional.wall, func_speedup);
    std::fprintf(f,
                 "  \"sampled\": {\"wall_s\": %.4f, \"speedup\": "
                 "%.2f, \"cycles\": %.0f, \"rel_error\": %.4f, "
                 "\"windows\": %llu, \"ci_low\": %.0f, \"ci_high\": "
                 "%.0f},\n",
                 sampled.wall, sampled_speedup, sampled.est.cycles,
                 rel_error,
                 static_cast<unsigned long long>(
                     sampled.est.intervals),
                 sampled.est.ciLow, sampled.est.ciHigh);
    std::fprintf(f,
                 "  \"checkpoint\": {\"bytes\": %zu, \"capture_s\": "
                 "%.4f, \"restore_s_per_point\": %.4f, "
                 "\"sweep_points\": %zu, \"restore_identical\": "
                 "%s},\n",
                 cp.bytes().size(), capture_s, restore_s,
                 sweep_points, restore_ok ? "true" : "false");
    std::fprintf(f,
                 "  \"pass\": {\"sampled_error_le_5pct\": %s, "
                 "\"functional_speedup_ge_10x\": %s, "
                 "\"restore_identical\": %s}\n",
                 error_ok ? "true" : "false",
                 speedup_ok ? "true" : "false",
                 restore_ok ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    if (!error_ok)
        std::fprintf(stderr,
                     "bench_report: FAIL sampled cycle error %.2f%% "
                     "> 5%%\n",
                     rel_error * 100.0);
    if (!speedup_ok)
        std::fprintf(stderr,
                     "bench_report: FAIL functional speedup %.1fx "
                     "< 10x\n",
                     func_speedup);
    if (!restore_ok)
        std::fprintf(stderr, "bench_report: FAIL restored machines "
                             "diverged from the warm image\n");
    return (error_ok && speedup_ok && restore_ok) ? 0 : 1;
}
