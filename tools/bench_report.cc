/**
 * @file
 * bench_report — the quantitative regression gates.
 *
 * Default leg (sampled simulation): runs the fig10 SpMV reference
 * configuration (default machine, VIA CSB kernel, one large uniform
 * matrix) under all three execution modes, wall-clocks each, and
 * compares sampled-mode extrapolated cycles against the detailed
 * makespan. Also measures the checkpoint layer: image size,
 * capture/restore cost, and a SweepExecutor fan-out where every
 * point restores from one shared warm image instead of re-running
 * the kernel, verifying each restored machine reports the identical
 * cycle count. Results go to BENCH_sampling.json and the exit code
 * enforces:
 *
 *   - sampled-mode end-to-end cycle error <= 5% of detailed
 *   - functional-mode wall-clock speedup >= 10x over detailed
 *
 * simspeed=1 leg (detailed-mode simulator speed): wall-clocks the
 * fig10 SpMV and fig11 SpMA reference workloads in detailed mode
 * (timed region = machine construction + kernel, best-of-repeats),
 * fingerprints the statistics (cycles, instructions, and an FNV-64
 * hash of the full JSON stats dump), and gates against the
 * committed BENCH_simspeed.json:
 *
 *   - the stats fingerprint must match the baseline exactly (a
 *     speedup that changes simulated behavior is a bug, not a win)
 *   - host ns per simulated cycle must not regress >10%
 *
 * serve=1 leg (serving subsystem, docs/serving.md): runs the
 * reference serving configuration — a two-class SpMV mix through
 * the batch executor and the queueing loop, open and closed loop,
 * base and VIA — and fingerprints the simulated results (request
 * counts, makespan, latency percentiles, energy per request).
 * Everything in the fingerprint is simulated-deterministic, so the
 * gate against the committed BENCH_serving.json is exact:
 *
 *   - the serving fingerprint must match the baseline bit-for-bit
 *   - VIA must not lose to the baseline at the p99 latency tail
 *
 * When the baseline file is missing a leg bootstraps: it writes
 * the report and passes. CI runs all legs on every push (see
 * .github/workflows/ci.yml).
 *
 * Usage:
 *   bench_report [key=value ...]      (help=1 for the key table)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "cpu/machine_config.hh"
#include "kernels/dispatch.hh"
#include "kernels/reference.hh"
#include "kernels/spma.hh"
#include "sample/checkpoint.hh"
#include "sample/sampling.hh"
#include "simcore/config.hh"
#include "simcore/log.hh"
#include "simcore/options.hh"
#include "serve/executor.hh"
#include "serve/request.hh"
#include "serve/sim.hh"
#include "simcore/parallel.hh"
#include "simcore/rng.hh"
#include "sparse/generators.hh"

using namespace via;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct ModeTiming
{
    double wall = 0.0; //!< best-of-repeats seconds
    sample::SampleEstimate est;
};

// ==================================================================
// simspeed=1: the detailed-mode simulator speed gate.
// ==================================================================

/**
 * Seed-build wall clocks of the two legs (same timed region, same
 * best-of-3 discipline, measured on the build predating the event
 * queue / stats / schedule fast-path overhaul). The committed
 * report's speedup_vs_seed fields are relative to these.
 */
constexpr double kSeedWallSpmv = 1.4200;
constexpr double kSeedWallSpma = 0.4172;

std::uint64_t
fnv64(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** One timed workload: wall clock plus the stats fingerprint. */
struct SpeedLeg
{
    std::string name;
    double seedWall = 0.0; //!< seed-build wall clock (constant)
    double wall = 0.0;     //!< best-of-repeats seconds
    Tick cycles = 0;
    std::uint64_t insts = 0;
    std::uint64_t statsHash = 0; //!< FNV-64 of the JSON stats dump

    double
    nsPerCycle() const
    {
        return cycles ? wall * 1e9 / double(cycles) : 0.0;
    }
    double
    mips() const
    {
        return wall > 0.0 ? double(insts) / wall / 1e6 : 0.0;
    }
};

/**
 * Time one kernel, best-of @p repeats. The timed region is machine
 * construction + kernel execution — exactly the code the detailed
 * hot path covers; input generation is excluded.
 */
template <typename RunFn>
SpeedLeg
timeLeg(const std::string &name, double seed_wall,
        std::size_t repeats, RunFn &&run)
{
    SpeedLeg leg;
    leg.name = name;
    leg.seedWall = seed_wall;
    for (std::size_t r = 0; r < repeats; ++r) {
        auto start = std::chrono::steady_clock::now();
        Machine m((MachineParams()));
        run(m);
        double wall = secondsSince(start);
        if (r == 0 || wall < leg.wall)
            leg.wall = wall;
        leg.cycles = m.cycles();
        leg.insts = m.core().stats().insts;
        std::ostringstream os;
        m.stats().dumpJson(os);
        leg.statsHash = fnv64(os.str());
    }
    return leg;
}

/** The {...} object following "name" in @p text ("" if absent). */
std::string
jsonSection(const std::string &text, const std::string &name)
{
    auto pos = text.find("\"" + name + "\"");
    if (pos == std::string::npos)
        return "";
    auto open = text.find('{', pos);
    auto close = text.find('}', open);
    if (open == std::string::npos || close == std::string::npos)
        return "";
    return text.substr(open, close - open + 1);
}

bool
jsonNumber(const std::string &sect, const std::string &key,
           double &out)
{
    auto pos = sect.find("\"" + key + "\":");
    if (pos == std::string::npos)
        return false;
    out = std::strtod(sect.c_str() + pos + key.size() + 3, nullptr);
    return true;
}

bool
jsonHash(const std::string &sect, const std::string &key,
         std::uint64_t &out)
{
    auto pos = sect.find("\"" + key + "\": \"");
    if (pos == std::string::npos)
        return false;
    out = std::strtoull(sect.c_str() + pos + key.size() + 5,
                        nullptr, 16);
    return true;
}

int
runSimspeed(const Options &opts)
{
    auto repeats = std::size_t(opts.getUInt("repeats"));
    std::string out_path = opts.getString("simspeed_out");
    std::string base_path = opts.getString("simspeed_baseline");
    if (base_path.empty())
        base_path = out_path;

    std::printf("bench_report: simspeed gate (detailed mode, "
                "best of %zu)\n",
                repeats);

    std::vector<SpeedLeg> legs;
    {
        // fig10 reference workload: SpMV, VIA CSB.
        Rng rng(1);
        Csr a = genUniform(16384, 16384, 0.005, rng);
        DenseVector x = randomVector(a.cols(), rng);
        legs.push_back(timeLeg("spmv", kSeedWallSpmv, repeats,
                               [&](Machine &m) {
                                   kernels::spmvVia(m, a, x, "csb");
                               }));
    }
    {
        // fig11 reference workload: SpMA, VIA CAM.
        Rng rng(1);
        Csr a = genUniform(8192, 8192, 0.004, rng);
        Csr b = genUniform(8192, 8192, 0.004, rng);
        legs.push_back(timeLeg("spma", kSeedWallSpma, repeats,
                               [&](Machine &m) {
                                   kernels::spmaViaCsr(m, a, b);
                               }));
    }

    for (const SpeedLeg &leg : legs)
        std::printf("  %-5s %8.3fs  %10llu cycles  %8llu insts  "
                    "%7.1f ns/cyc  %6.2f MIPS  %5.2fx vs seed\n",
                    leg.name.c_str(), leg.wall,
                    static_cast<unsigned long long>(leg.cycles),
                    static_cast<unsigned long long>(leg.insts),
                    leg.nsPerCycle(), leg.mips(),
                    leg.seedWall / leg.wall);

    // Gate against the committed baseline, if one exists.
    bool stats_ok = true;
    bool speed_ok = true;
    std::ifstream in(base_path);
    if (in) {
        std::stringstream ss;
        ss << in.rdbuf();
        std::string text = ss.str();
        for (const SpeedLeg &leg : legs) {
            std::string sect = jsonSection(text, leg.name);
            double bcycles = 0, binsts = 0, bns = 0;
            std::uint64_t bhash = 0;
            if (sect.empty() ||
                !jsonNumber(sect, "cycles", bcycles) ||
                !jsonNumber(sect, "insts", binsts) ||
                !jsonNumber(sect, "ns_per_cycle", bns) ||
                !jsonHash(sect, "stats_fnv64", bhash)) {
                std::fprintf(stderr,
                             "bench_report: baseline %s lacks leg "
                             "'%s'\n",
                             base_path.c_str(), leg.name.c_str());
                stats_ok = false;
                continue;
            }
            if (double(leg.cycles) != bcycles ||
                double(leg.insts) != binsts ||
                leg.statsHash != bhash) {
                std::fprintf(
                    stderr,
                    "bench_report: FAIL %s stats fingerprint "
                    "changed (cycles %llu vs %.0f, insts %llu vs "
                    "%.0f, hash %016llx vs %016llx)\n",
                    leg.name.c_str(),
                    static_cast<unsigned long long>(leg.cycles),
                    bcycles,
                    static_cast<unsigned long long>(leg.insts),
                    binsts,
                    static_cast<unsigned long long>(leg.statsHash),
                    static_cast<unsigned long long>(bhash));
                stats_ok = false;
            }
            if (leg.nsPerCycle() > bns * 1.10) {
                std::fprintf(stderr,
                             "bench_report: FAIL %s host time "
                             "%.1f ns/cycle > baseline %.1f +10%%\n",
                             leg.name.c_str(), leg.nsPerCycle(),
                             bns);
                speed_ok = false;
            }
        }
    } else {
        std::printf("  no baseline at %s; bootstrapping\n",
                    base_path.c_str());
    }

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr)
        via_fatal("cannot write ", out_path);
    std::fprintf(f, "{\n");
    for (const SpeedLeg &leg : legs)
        std::fprintf(
            f,
            "  \"%s\": {\"wall_s\": %.4f, \"cycles\": %llu, "
            "\"insts\": %llu, \"ns_per_cycle\": %.3f, \"mips\": "
            "%.3f, \"stats_fnv64\": \"%016llx\", \"seed_wall_s\": "
            "%.4f, \"speedup_vs_seed\": %.2f},\n",
            leg.name.c_str(), leg.wall,
            static_cast<unsigned long long>(leg.cycles),
            static_cast<unsigned long long>(leg.insts),
            leg.nsPerCycle(), leg.mips(),
            static_cast<unsigned long long>(leg.statsHash),
            leg.seedWall, leg.seedWall / leg.wall);
    std::fprintf(f,
                 "  \"pass\": {\"stats_identical\": %s, "
                 "\"ns_per_cycle_within_10pct\": %s}\n}\n",
                 stats_ok ? "true" : "false",
                 speed_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    return (stats_ok && speed_ok) ? 0 : 1;
}

// ==================================================================
// serve=1: the serving-subsystem regression gate.
// ==================================================================

/** One serving scenario, base and VIA on identical traffic. */
struct ServeLeg
{
    std::string name;
    serve::ServeReport base;
    serve::ServeReport via;

    double
    speedupP99() const
    {
        return via.latency.p99() > 0.0
                   ? base.latency.p99() / via.latency.p99()
                   : 0.0;
    }

    /** Canonical byte image of every simulated-deterministic
     *  quantity the leg reports; the gate hashes this. */
    std::string
    fingerprint() const
    {
        char buf[512];
        auto one = [&](const serve::ServeReport &r) {
            std::snprintf(
                buf, sizeof(buf),
                "req=%llu batches=%llu makespan=%llu "
                "p50=%.17g p95=%.17g p99=%.17g q99=%.17g "
                "pj=%.17g;",
                static_cast<unsigned long long>(r.requests),
                static_cast<unsigned long long>(r.batches),
                static_cast<unsigned long long>(r.makespan),
                r.latency.p50(), r.latency.p95(), r.latency.p99(),
                r.queueing.p99(), r.energyPerRequestPj);
            return std::string(buf);
        };
        return name + ":base " + one(base) + "via " + one(via);
    }
};

int
runServing(const Options &opts)
{
    std::string out_path = opts.getString("serve_out");
    std::string base_path = opts.getString("serve_baseline");
    if (base_path.empty())
        base_path = out_path;

    // The reference serving configuration: two SpMV classes (CSR and
    // SELL-C-sigma), arrivals fast enough that the scheduler
    // actually batches, measured on the default single-core machine.
    auto mix = serve::parseMix(
        "spmv:csr:96:0.05:1,spmv:sell:96:0.05:1@2");
    serve::ExecutorConfig ex;
    ex.batchMax = 4;
    ex.threads = unsigned(opts.getUInt("threads"));
    ex.seed = 1;
    serve::ExecutorConfig exv = ex;
    exv.via = true;

    std::printf("bench_report: serving gate (%zu classes, "
                "batch<=%u)\n",
                mix.size(), ex.batchMax);
    serve::TableServiceModel base_table =
        serve::measureServiceTable(mix, ex);
    serve::TableServiceModel via_table =
        serve::measureServiceTable(mix, exv);

    std::vector<ServeLeg> legs;
    {
        serve::ServeConfig sc;
        sc.requests = 200;
        sc.ratePerMcycle = 2000.0; // ~500-cycle gaps vs ~700 service
        sc.batchMax = 4;
        sc.seed = 1;
        legs.push_back({"open", runServe(mix, base_table, sc),
                        runServe(mix, via_table, sc)});
    }
    {
        serve::ServeConfig sc;
        sc.closed = true;
        sc.requests = 200;
        sc.clients = 8;
        sc.thinkCycles = 500.0;
        sc.batchMax = 4;
        sc.seed = 1;
        legs.push_back({"closed", runServe(mix, base_table, sc),
                        runServe(mix, via_table, sc)});
    }

    for (const ServeLeg &leg : legs)
        std::printf("  %-6s base p99 %6.0f  via p99 %6.0f  "
                    "(%.3fx)  mean batch %.2f  energy %0.f/%0.f "
                    "pJ/req\n",
                    leg.name.c_str(), leg.base.latency.p99(),
                    leg.via.latency.p99(), leg.speedupP99(),
                    leg.base.meanBatch, leg.base.energyPerRequestPj,
                    leg.via.energyPerRequestPj);

    bool finger_ok = true;
    bool tail_ok = true;
    std::ifstream in(base_path);
    if (in) {
        std::stringstream ss;
        ss << in.rdbuf();
        std::string text = ss.str();
        for (const ServeLeg &leg : legs) {
            std::string sect = jsonSection(text, leg.name);
            std::uint64_t bhash = 0;
            if (sect.empty() ||
                !jsonHash(sect, "fingerprint_fnv64", bhash)) {
                std::fprintf(stderr,
                             "bench_report: baseline %s lacks "
                             "serving leg '%s'\n",
                             base_path.c_str(), leg.name.c_str());
                finger_ok = false;
                continue;
            }
            std::uint64_t hash = fnv64(leg.fingerprint());
            if (hash != bhash) {
                std::fprintf(
                    stderr,
                    "bench_report: FAIL %s serving fingerprint "
                    "changed (%016llx vs %016llx): %s\n",
                    leg.name.c_str(),
                    static_cast<unsigned long long>(hash),
                    static_cast<unsigned long long>(bhash),
                    leg.fingerprint().c_str());
                // Per-field breakdown against the baseline record,
                // so a drifting leg points at the quantity that
                // moved instead of just two hashes.
                struct Field
                {
                    const char *key;
                    double actual;
                };
                const Field fields[] = {
                    {"requests", double(leg.base.requests)},
                    {"batches", double(leg.base.batches)},
                    {"mean_batch", leg.base.meanBatch},
                    {"makespan_cycles", double(leg.base.makespan)},
                    {"base_p99", leg.base.latency.p99()},
                    {"via_p99", leg.via.latency.p99()},
                    {"via_speedup_p99", leg.speedupP99()},
                    {"base_pj_per_request",
                     leg.base.energyPerRequestPj},
                    {"via_pj_per_request",
                     leg.via.energyPerRequestPj},
                };
                for (const Field &fd : fields) {
                    double expect = 0;
                    if (!jsonNumber(sect, fd.key, expect)) {
                        std::fprintf(stderr,
                                     "  %-20s missing from "
                                     "baseline, actual %.6g\n",
                                     fd.key, fd.actual);
                        continue;
                    }
                    // The JSON rounds (%.2f/%.1f/%.3f), so compare
                    // at the printed precision, not bit-exactly.
                    bool differs =
                        std::fabs(expect - fd.actual) > 5e-4 *
                            std::max(1.0, std::fabs(expect));
                    std::fprintf(stderr,
                                 "  %-20s expected %-12.6g actual "
                                 "%-12.6g%s\n",
                                 fd.key, expect, fd.actual,
                                 differs ? "  <-- differs" : "");
                }
                finger_ok = false;
            }
        }
    } else {
        std::printf("  no baseline at %s; bootstrapping\n",
                    base_path.c_str());
    }
    for (const ServeLeg &leg : legs) {
        if (leg.speedupP99() < 1.0) {
            std::fprintf(stderr,
                         "bench_report: FAIL %s VIA p99 %.0f worse "
                         "than base %.0f\n",
                         leg.name.c_str(), leg.via.latency.p99(),
                         leg.base.latency.p99());
            tail_ok = false;
        }
    }

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr)
        via_fatal("cannot write ", out_path);
    std::fprintf(f, "{\n");
    for (const ServeLeg &leg : legs)
        std::fprintf(
            f,
            "  \"%s\": {\"requests\": %llu, \"batches\": %llu, "
            "\"mean_batch\": %.2f, \"makespan_cycles\": %llu, "
            "\"base_p99\": %.1f, \"via_p99\": %.1f, "
            "\"via_speedup_p99\": %.3f, \"base_pj_per_request\": "
            "%.1f, \"via_pj_per_request\": %.1f, "
            "\"fingerprint_fnv64\": \"%016llx\"},\n",
            leg.name.c_str(),
            static_cast<unsigned long long>(leg.base.requests),
            static_cast<unsigned long long>(leg.base.batches),
            leg.base.meanBatch,
            static_cast<unsigned long long>(leg.base.makespan),
            leg.base.latency.p99(), leg.via.latency.p99(),
            leg.speedupP99(), leg.base.energyPerRequestPj,
            leg.via.energyPerRequestPj,
            static_cast<unsigned long long>(
                fnv64(leg.fingerprint())));
    std::fprintf(f,
                 "  \"pass\": {\"fingerprint_identical\": %s, "
                 "\"via_p99_no_worse\": %s}\n}\n",
                 finger_ok ? "true" : "false",
                 tail_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    return (finger_ok && tail_ok) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("bench_report",
                 "Quantitative regression gates: sampled "
                 "simulation and checkpointing (default), or "
                 "detailed-mode simulator speed (simspeed=1)");
    opts.addUInt("rows", 16384, "reference matrix rows", 1)
        .addDouble("density", 0.005, "reference matrix density",
                   0.0, 1.0)
        .addUInt("seed", 1, "generator seed")
        .addString("format", "csb", "SpMV format: csr|spc5|sell|csb")
        .addString("backend", "via",
                   "sampling-leg accelerated backend: "
                   "base|via|ssr|indexmac (the simspeed/serve "
                   "regression gates stay pinned to via)")
        .addUInt("sample_interval", 100000,
                 "instructions per sampling unit", 1)
        .addUInt("sample_warmup", 500,
                 "detailed warmup instructions per unit")
        .addUInt("sample_measure", 1500,
                 "measured instructions per unit", 1)
        .addUInt("repeats", 5, "timing repetitions, best-of", 1)
        .addUInt("sweep_points", 4, "restore fan-out width")
        .addString("out", "BENCH_sampling.json",
                   "sampling-leg JSON report path")
        .addFlag("simspeed",
                 "run the detailed-mode simulator speed gate "
                 "instead of the sampling leg")
        .addString("simspeed_out", "BENCH_simspeed.json",
                   "simspeed-leg JSON report path")
        .addString("simspeed_baseline", "",
                   "baseline JSON to gate against (default: the "
                   "simspeed_out path)")
        .addFlag("serve",
                 "run the serving-subsystem gate instead of the "
                 "sampling leg")
        .addString("serve_out", "BENCH_serving.json",
                   "serving-leg JSON report path")
        .addString("serve_baseline", "",
                   "baseline JSON to gate against (default: the "
                   "serve_out path)");
    addThreadsOption(opts);
    addSelfProfOption(opts);
    opts.parse(argc, argv);
    applySelfProfOption(opts);

    // Validate before dispatching to any leg so a typo'd backend is
    // a usage error (exit 2), the same contract as an unknown key.
    BackendKind backend = BackendKind::Via;
    if (!parseBackendKind(opts.getString("backend"), backend)) {
        std::fprintf(stderr,
                     "bench_report: unknown backend '%s' (expected "
                     "base|via|ssr|indexmac)\n",
                     opts.getString("backend").c_str());
        return 2;
    }

    if (opts.getBool("simspeed"))
        return runSimspeed(opts);
    if (opts.getBool("serve"))
        return runServing(opts);

    auto rows = Index(opts.getUInt("rows"));
    double density = opts.getDouble("density");
    std::string fmt = opts.getString("format");
    auto repeats = std::size_t(opts.getUInt("repeats"));
    auto sweep_points = std::size_t(opts.getUInt("sweep_points"));
    std::string out_path = opts.getString("out");

    sample::SampleOptions sopts;
    sopts.interval = opts.getUInt("sample_interval");
    sopts.warmup = opts.getUInt("sample_warmup");
    sopts.measure = opts.getUInt("sample_measure");

    Rng rng(opts.getUInt("seed"));
    Csr a = genUniform(rows, rows, density, rng);
    DenseVector x = randomVector(a.cols(), rng);
    DenseVector golden = a.multiply(x);
    std::printf("bench_report: SpMV %s on %dx%d, %zu nnz "
                "(fig10 reference machine)\n",
                fmt.c_str(), a.rows(), a.cols(), a.nnz());

    MachineParams params{};
    params.backend.kind = backend;

    // The timed region is machine construction + kernel execution:
    // exactly the work a mode changes. Input generation, the golden
    // reference and JSON writing are shared and excluded. Repeats
    // interleave the modes round-robin so that host-load drift over
    // the measurement hits every mode equally — the speedup ratios
    // stay honest even when absolute wall clock wobbles.
    auto timeOnce = [&](sample::SimMode mode, std::size_t r,
                        ModeTiming &best) {
        sample::SampleOptions mopts = sopts;
        mopts.mode = mode;
        auto start = std::chrono::steady_clock::now();
        Machine m(params);
        sample::SampleEstimate est = sample::runWith(
            m, mopts, [&] { kernels::spmvAccel(m, a, x, fmt); });
        double wall = secondsSince(start);
        if (r == 0 || wall < best.wall) {
            best.wall = wall;
            best.est = est;
        }
    };

    ModeTiming detailed, functional, sampled;
    for (std::size_t r = 0; r < repeats; ++r) {
        timeOnce(sample::SimMode::Detailed, r, detailed);
        timeOnce(sample::SimMode::Functional, r, functional);
        timeOnce(sample::SimMode::Sampled, r, sampled);
    }

    // One verification run: every mode executes the identical
    // architectural stream, so checking the functional result covers
    // all three.
    {
        Machine m(params);
        sample::SampleOptions mopts = sopts;
        mopts.mode = sample::SimMode::Functional;
        kernels::SpmvResult res;
        sample::runWith(m, mopts,
                        [&] { res = kernels::spmvAccel(m, a, x, fmt); });
        if (!allClose(res.y, golden)) {
            std::fprintf(stderr,
                         "bench_report: result MISMATCH in "
                         "functional mode\n");
            return 1;
        }
    }

    double rel_error =
        std::abs(sampled.est.cycles - detailed.est.cycles) /
        detailed.est.cycles;
    double func_speedup = detailed.wall / functional.wall;
    double sampled_speedup = detailed.wall / sampled.wall;

    // Checkpoint leg: capture one warm image, then fan restore out
    // over a SweepExecutor — every point gets the full post-run
    // machine state without re-running the kernel, and must report
    // the identical cycle count.
    Machine warm(params);
    kernels::spmvAccel(warm, a, x, fmt);
    Tick warm_cycles = warm.cycles();

    auto cap_start = std::chrono::steady_clock::now();
    sample::Checkpoint cp = sample::Checkpoint::capture(warm);
    double capture_s = secondsSince(cap_start);

    SweepExecutor exec(unsigned(opts.getUInt("threads")));
    auto restore_start = std::chrono::steady_clock::now();
    std::vector<int> identical =
        exec.run(sweep_points, [&](std::size_t) {
            Machine m(params);
            cp.clone().restore(m);
            return m.cycles() == warm_cycles ? 1 : 0;
        });
    double restore_s = secondsSince(restore_start) /
                       double(sweep_points ? sweep_points : 1);
    bool restore_ok = true;
    for (int id : identical)
        restore_ok = restore_ok && id == 1;

    bool error_ok = rel_error <= 0.05;
    bool speedup_ok = func_speedup >= 10.0;

    std::printf("  detailed    %8.3fs  %12.0f cycles\n",
                detailed.wall, detailed.est.cycles);
    std::printf("  functional  %8.3fs  (%5.1fx, %llu insts)\n",
                functional.wall, func_speedup,
                static_cast<unsigned long long>(
                    functional.est.totalInsts));
    std::printf("  sampled     %8.3fs  %12.0f cycles  (%5.1fx, "
                "%.2f%% error, %llu windows)\n",
                sampled.wall, sampled.est.cycles, sampled_speedup,
                rel_error * 100.0,
                static_cast<unsigned long long>(
                    sampled.est.intervals));
    std::printf("  checkpoint  %zu bytes, capture %.3fs, restore "
                "%.3fs/point x %zu points (%s)\n",
                cp.bytes().size(), capture_s, restore_s,
                sweep_points,
                restore_ok ? "bit-identical" : "MISMATCH");

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr)
        via_fatal("cannot write ", out_path);
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"config\": {\"kernel\": \"spmv\", \"format\": "
                 "\"%s\", \"rows\": %d, \"nnz\": %zu, "
                 "\"sample_interval\": %llu, \"sample_warmup\": "
                 "%llu, \"sample_measure\": %llu},\n",
                 fmt.c_str(), a.rows(), a.nnz(),
                 static_cast<unsigned long long>(sopts.interval),
                 static_cast<unsigned long long>(sopts.warmup),
                 static_cast<unsigned long long>(sopts.measure));
    std::fprintf(f,
                 "  \"detailed\": {\"wall_s\": %.4f, \"cycles\": "
                 "%.0f, \"insts\": %llu},\n",
                 detailed.wall, detailed.est.cycles,
                 static_cast<unsigned long long>(
                     detailed.est.totalInsts));
    std::fprintf(f,
                 "  \"functional\": {\"wall_s\": %.4f, \"speedup\": "
                 "%.2f},\n",
                 functional.wall, func_speedup);
    std::fprintf(f,
                 "  \"sampled\": {\"wall_s\": %.4f, \"speedup\": "
                 "%.2f, \"cycles\": %.0f, \"rel_error\": %.4f, "
                 "\"windows\": %llu, \"ci_low\": %.0f, \"ci_high\": "
                 "%.0f},\n",
                 sampled.wall, sampled_speedup, sampled.est.cycles,
                 rel_error,
                 static_cast<unsigned long long>(
                     sampled.est.intervals),
                 sampled.est.ciLow, sampled.est.ciHigh);
    std::fprintf(f,
                 "  \"checkpoint\": {\"bytes\": %zu, \"capture_s\": "
                 "%.4f, \"restore_s_per_point\": %.4f, "
                 "\"sweep_points\": %zu, \"restore_identical\": "
                 "%s},\n",
                 cp.bytes().size(), capture_s, restore_s,
                 sweep_points, restore_ok ? "true" : "false");
    std::fprintf(f,
                 "  \"pass\": {\"sampled_error_le_5pct\": %s, "
                 "\"functional_speedup_ge_10x\": %s, "
                 "\"restore_identical\": %s}\n",
                 error_ok ? "true" : "false",
                 speedup_ok ? "true" : "false",
                 restore_ok ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    if (!error_ok)
        std::fprintf(stderr,
                     "bench_report: FAIL sampled cycle error %.2f%% "
                     "> 5%%\n",
                     rel_error * 100.0);
    if (!speedup_ok)
        std::fprintf(stderr,
                     "bench_report: FAIL functional speedup %.1fx "
                     "< 10x\n",
                     func_speedup);
    if (!restore_ok)
        std::fprintf(stderr, "bench_report: FAIL restored machines "
                             "diverged from the warm image\n");
    return (error_ok && speedup_ok && restore_ok) ? 0 : 1;
}
