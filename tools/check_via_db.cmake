# Run one scripted via_db session and require a clean exit plus
# every expected output fragment. CTest's PASS_REGULAR_EXPRESSION
# ignores the exit status, and the debugger reports verification
# failures through it — so the smoke tests go through this script
# instead (same idea as tests/check_exit_code.cmake).
#
# Usage:
#   cmake -DVIA_DB=<path> -DARGS=<space-separated args>
#         -DREQUIRE=<|-separated output fragments>
#         -P check_via_db.cmake

separate_arguments(ARG_LIST UNIX_COMMAND "${ARGS}")
execute_process(COMMAND ${VIA_DB} ${ARG_LIST}
                OUTPUT_VARIABLE out ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "via_db ${ARGS}: exited ${rc}\n${out}${err}")
endif()
string(REPLACE "|" ";" fragments "${REQUIRE}")
foreach(frag IN LISTS fragments)
    string(FIND "${out}" "${frag}" at)
    if(at EQUAL -1)
        message(FATAL_ERROR
                "via_db ${ARGS}: output lacks '${frag}'\n${out}")
    endif()
endforeach()
message(STATUS "via_db ${ARGS}: ok")
