/**
 * @file
 * via_fuzz — deterministic differential fuzzer for the simulator.
 *
 * Generates adversarial sparse inputs from seeded RNG, runs every
 * kernel (baseline and VIA variants) across several machine
 * configurations, diffs each result against the host golden
 * reference, and verifies the timing model's internal invariants
 * with a TimingInvariantChecker. Every failing seed prints a
 * replayable line, and the campaign exits nonzero:
 *
 *   replay: via_fuzz seeds=1 seed=<S> kernel=<K> [cores=<N>]
 *
 * Usage:
 *   via_fuzz [key=value ...]
 *
 * Keys:
 *   seeds=N    seeds to run                       (default 100)
 *   seed=S     first seed                         (default 1)
 *   kernel=K   all|spmv|spma|spmm|histogram|stencil (default all)
 *   backend=B  base|via|ssr|indexmac (default via): the accelerated
 *              variant run against the host goldens. ssr/indexmac
 *              fuzz the baseline-accelerator kernels on machines
 *              built over the matching VectorBackend; base re-runs
 *              the software kernels in the accelerated slot.
 *              cores>1 requires backend=via (only the VIA kernels
 *              have parallel variants).
 *   threads=N  parallel seed workers; 0 = hardware (default 1).
 *              Per-seed verdicts and output are identical at any
 *              thread count.
 *   cores=N    with N > 1, each seed also runs the parallel kernel
 *              variants on an N-core machine (docs/multicore.md);
 *              the partition policy alternates with seed parity
 *              (even = static, odd = steal)
 *   verbose=1  per-seed progress on stderr
 *   inject=1   self-test: perturb a cache counter after each run so
 *              the checker must catch it and print the replay seed
 *
 * See docs/validation.md for the invariant catalog.
 */

#include <cstdio>
#include <set>
#include <string>

#include "check/fuzz.hh"
#include "check/invariants.hh"
#include "cpu/machine.hh"
#include "simcore/options.hh"

using namespace via;

int
main(int argc, char **argv)
{
    Options args("via_fuzz",
                 "Deterministic differential fuzzer: adversarial "
                 "inputs, every kernel, result + invariant checks");
    args.addUInt("seeds", 100, "seeds to run", 1)
        .addUInt("seed", 1, "first seed")
        .addString("kernel", "all",
                   "all|spmv|spma|spmm|histogram|stencil")
        .addString("backend", "via",
                   "accelerated variant: base|via|ssr|indexmac")
        .addUInt("threads", 1,
                 "parallel seed workers (0 = hardware concurrency)")
        .addUInt("cores", 1,
                 "also fuzz the parallel kernels on an N-core "
                 "machine (1 = single-core only)",
                 1, 32)
        .addFlag("verbose", "per-seed progress on stderr")
        .addFlag("inject",
                 "self-test: corrupt a cache counter after each "
                 "run so the checker must catch it");
    addSelfProfOption(args);
    args.parse(argc, argv);
    applySelfProfOption(args);

    check::FuzzOptions opts;
    opts.seeds = args.getUInt("seeds");
    opts.firstSeed = args.getUInt("seed");
    opts.kernel = args.getString("kernel");
    opts.threads = unsigned(args.getUInt("threads"));
    opts.cores = unsigned(args.getUInt("cores"));
    opts.verbose = args.getBool("verbose");

    static const std::set<std::string> kernels = {
        "all", "spmv", "spma", "spmm", "histogram", "stencil"};
    if (!kernels.count(opts.kernel)) {
        std::fprintf(stderr, "via_fuzz: unknown kernel '%s'\n",
                     opts.kernel.c_str());
        return 2;
    }

    std::string backend = args.getString("backend");
    if (!parseBackendKind(backend, opts.backend)) {
        std::fprintf(stderr,
                     "via_fuzz: unknown backend '%s' (expected "
                     "base|via|ssr|indexmac)\n",
                     backend.c_str());
        return 2;
    }
    if (opts.cores > 1 && opts.backend != BackendKind::Via) {
        std::fprintf(stderr,
                     "via_fuzz: cores>1 fuzzes the VIA parallel "
                     "kernels; backend=%s is single-core only\n",
                     backend.c_str());
        return 2;
    }

    if (args.getBool("inject")) {
        // Deliberately corrupt a cache counter after each kernel
        // run: the invariant checker must flag every run and print
        // a replayable seed (exercised by CTest).
        opts.inject = [](Machine &m) {
            m.memSystem().level(0).stats().reads += 1;
        };
    }

    check::FuzzStats stats = check::runFuzz(opts);
    std::printf("via_fuzz: %llu/%llu seeds, %llu kernel runs "
                "(%llu skipped), %llu failures\n",
                static_cast<unsigned long long>(stats.seedsRun),
                static_cast<unsigned long long>(opts.seeds),
                static_cast<unsigned long long>(stats.kernelRuns),
                static_cast<unsigned long long>(stats.skipped),
                static_cast<unsigned long long>(stats.failures));
    return stats.failures == 0 ? 0 : 1;
}
