# The serving harness must be deterministic in the worker count: the
# service table is measured by a SweepExecutor whose per-point seeds
# are index-derived (simcore/parallel.hh), and the queueing loop
# itself is single-threaded host code. A threads=N run is therefore
# required to be byte-identical — report, JSON and all — to the
# serial run, for both arrival generators.
#
# Inputs: -DVIA_SERVE=<path>

function(run_pair label out_var)
    execute_process(COMMAND ${ARGN}
                    OUTPUT_VARIABLE out RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${label} exited ${rc}")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

set(mix "mix=spmv:csr:96:0.05:1,spmv:sell:96:0.05:1@2")

# Open loop, JSON report (covers every emitted number).
run_pair("open threads=1" base
         ${VIA_SERVE} requests=24 ${mix} batch=4 json=1 threads=1)
run_pair("open threads=4" four
         ${VIA_SERVE} requests=24 ${mix} batch=4 json=1 threads=4)
if(NOT base STREQUAL four)
    message(FATAL_ERROR
            "via_serve open-loop output differs between threads=1 "
            "and threads=4")
endif()

# Closed loop, text report plus the request trace.
run_pair("closed threads=1" base
         ${VIA_SERVE} arrivals=closed requests=24 clients=3 ${mix}
         batch=4 trace=1 threads=1)
run_pair("closed threads=4" four
         ${VIA_SERVE} arrivals=closed requests=24 clients=3 ${mix}
         batch=4 trace=1 threads=4)
if(NOT base STREQUAL four)
    message(FATAL_ERROR
            "via_serve closed-loop output differs between threads=1 "
            "and threads=4")
endif()

message(STATUS "via_serve output bit-identical across threads=N "
               "for both arrival generators")
