# Acceptance check for the tracing subsystem, run as a CTest:
#
#   cmake -DVIA_SIM=<via_sim> -DOUT=<file.json> -P check_trace_json.cmake
#
# Runs `via_sim kernel=spmv trace=... trace_format=perfetto
# trace_summary=1` and verifies that
#   - the output file parses as JSON (string(JSON) is fatal on
#     malformed input) and has a non-trivial traceEvents array,
#   - the trace contains events from the core, the cache, and the
#     SSPM (their rows appear in the summary, which only lists
#     components with at least one event),
#   - every component row in the busy/stall roll-up accounts for
#     exactly the run's reported cycle count (busy + stall == total).

if(NOT VIA_SIM OR NOT OUT)
    message(FATAL_ERROR "usage: cmake -DVIA_SIM=... -DOUT=... -P "
                        "check_trace_json.cmake")
endif()

execute_process(
    COMMAND ${VIA_SIM} kernel=spmv rows=128 density=0.03
            trace=${OUT} trace_format=perfetto trace_summary=1
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "via_sim failed (${rc}):\n${run_out}${run_err}")
endif()

file(READ ${OUT} json)
string(JSON n_events LENGTH ${json} traceEvents)
if(n_events LESS 10)
    message(FATAL_ERROR "only ${n_events} trace events")
endif()
# Spot-check that an element of the array is a well-formed event.
string(JSON first_ph GET ${json} traceEvents 0 ph)
if(NOT first_ph MATCHES "^[MXiBE]$")
    message(FATAL_ERROR "unexpected ph '${first_ph}' in first event")
endif()

foreach(comp core l1d sspm)
    if(NOT run_out MATCHES "\n  ${comp} ")
        message(FATAL_ERROR "no ${comp} row in the trace summary:\n"
                            "${run_out}")
    endif()
endforeach()

string(REGEX MATCH "trace summary \\(([0-9]+) cycles\\)" _ "${run_out}")
if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "no trace summary header in:\n${run_out}")
endif()
set(cycles ${CMAKE_MATCH_1})

# Component rows look like:
#   core             455        1074           0        1074  100.0%
set(row_re "  ([a-z0-9]+) +[0-9]+ +([0-9]+) +([0-9]+) +([0-9]+)  +[0-9.]+%")
string(REGEX MATCHALL "${row_re}" rows "${run_out}")
list(LENGTH rows n_rows)
if(n_rows LESS 3)
    message(FATAL_ERROR "only ${n_rows} summary rows in:\n${run_out}")
endif()
foreach(row ${rows})
    string(REGEX MATCH "${row_re}" _ "${row}")
    math(EXPR busy_plus_stall "${CMAKE_MATCH_2} + ${CMAKE_MATCH_3}")
    if(NOT CMAKE_MATCH_4 EQUAL cycles OR
       NOT busy_plus_stall EQUAL cycles)
        message(FATAL_ERROR "component ${CMAKE_MATCH_1}: busy "
                "${CMAKE_MATCH_2} + stall ${CMAKE_MATCH_3} does not "
                "account for the ${cycles}-cycle run")
    endif()
endforeach()

message(STATUS "trace OK: ${n_events} events, ${n_rows} component "
               "rows over ${cycles} cycles")
