# Checkpoint round trip through the CLI: run a kernel and write the
# post-run image, then restore it into a fresh machine and run again.
# Both invocations must self-verify (exit 0), and the restore must
# report that it consumed the file. Driven by add_test in
# tools/CMakeLists.txt with -DVIA_SIM=... -DCP=<scratch path>.

execute_process(
    COMMAND ${VIA_SIM} spmv rows=128 density=0.03 checkpoint=${CP}
    RESULT_VARIABLE save_rc
    OUTPUT_VARIABLE save_out
    ERROR_VARIABLE save_out)
if(NOT save_rc EQUAL 0)
    message(FATAL_ERROR "checkpoint run failed (${save_rc}):\n${save_out}")
endif()
if(NOT save_out MATCHES "checkpoint written to")
    message(FATAL_ERROR "no checkpoint confirmation:\n${save_out}")
endif()
if(NOT EXISTS ${CP})
    message(FATAL_ERROR "checkpoint file ${CP} was not written")
endif()

execute_process(
    COMMAND ${VIA_SIM} spmv rows=128 density=0.03 restore=${CP}
    RESULT_VARIABLE load_rc
    OUTPUT_VARIABLE load_out
    ERROR_VARIABLE load_out)
if(NOT load_rc EQUAL 0)
    message(FATAL_ERROR "restore run failed (${load_rc}):\n${load_out}")
endif()
if(NOT load_out MATCHES "restored machine state from")
    message(FATAL_ERROR "no restore confirmation:\n${load_out}")
endif()
if(NOT load_out MATCHES "result check: ok")
    message(FATAL_ERROR "restored run failed self-check:\n${load_out}")
endif()

# A corrupt image must be rejected with a nonzero exit, not
# half-applied. (Byte-level truncation cases live in
# tests/test_sample.cc; here the CLI error path is what's probed.)
file(WRITE ${CP}.trunc "not a checkpoint")
execute_process(
    COMMAND ${VIA_SIM} spmv rows=128 density=0.03 restore=${CP}.trunc
    RESULT_VARIABLE bad_rc
    OUTPUT_VARIABLE bad_out
    ERROR_VARIABLE bad_out)
if(bad_rc EQUAL 0)
    message(FATAL_ERROR "restore accepted a corrupt image:\n${bad_out}")
endif()

file(REMOVE ${CP} ${CP}.trunc)
